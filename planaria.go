// Package planaria is the public API of the Planaria reproduction — a
// memory-side composite prefetcher for mobile system caches (Liu & Chen,
// "Planaria: Pattern Directed Cross-page Composite Prefetcher", DAC 2024)
// together with the trace-driven memory-system simulator used to evaluate
// it.
//
// The package wraps the internal implementation with a small surface:
//
//   - Simulator runs a memory trace through the system cache, a chosen
//     prefetcher and the LPDDR4 model, and returns a Result.
//   - Workloads and GenerateTrace produce the ten synthetic mobile
//     application traces used by the paper's evaluation (Table 2).
//   - Custom prefetchers implement the Prefetcher interface and plug into
//     the simulator alongside the built-ins.
//
// A minimal run:
//
//	sim, _ := planaria.NewSimulator(planaria.Options{Prefetcher: "planaria"})
//	res, _ := sim.Run(planaria.GenerateTrace("CFM", 100_000))
//	fmt.Printf("hit rate %.1f%%, AMAT %.1f cycles\n", 100*res.HitRate, res.AMAT)
package planaria

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Access is one memory-bus request: the input unit of the simulator. Addr is
// a physical byte address (block aligned internally), Cycle the arrival time
// in memory-controller cycles; accesses must be supplied in non-decreasing
// cycle order.
type Access struct {
	Addr   uint64
	Cycle  uint64
	Write  bool
	Device string // SoC agent mnemonic: cpu0..cpu7, gpu, npu, isp, dsp
}

// Options configures a Simulator. The zero value selects the paper's system
// (4 MB 16-way SC over four LPDDR4 channels) with no prefetcher.
type Options struct {
	// Prefetcher selects the hardware prefetcher by name; see
	// Prefetchers for the list. Empty means "none".
	Prefetcher string
	// Custom, when non-nil, overrides Prefetcher with a user
	// implementation; the constructor is called once per DRAM channel.
	Custom func(channel int) Prefetcher

	// Tournament, when non-empty, overrides Prefetcher with a tournament
	// over the named built-ins: the listed prefetchers become the
	// components, in priority order (component 0 is the fallback), under
	// the set-dueling meta-predictor (docs/PREFETCHERS.md). Each name must
	// be a built-in that supports shadow prediction — currently planaria
	// and its variants, nextline, stride, markov and accel; bop and spp do
	// not qualify and are rejected by NewSimulator.
	Tournament []string
	// TournamentCustom, when non-nil, appends user components to the
	// tournament after the named ones; the constructor is called once per
	// DRAM channel. When Tournament is empty, the custom components join
	// the default planaria-tournament set (planaria, stride, markov,
	// accel).
	TournamentCustom func(channel int) []Component

	// CacheBytes is the per-channel SC slice capacity (default 1 MiB —
	// one quarter of the paper's 4 MB SC).
	CacheBytes int
	// CacheWays is the SC associativity (default 16).
	CacheWays int
	// CachePolicy selects the replacement policy: "lru" (default),
	// "srrip", "drrip" or "random".
	CachePolicy string
	// SCHitLatency is the SC hit time in cycles (default 30).
	SCHitLatency uint64
	// PrefetchLatency is the cycles before a prefetched block becomes
	// usable (default 110).
	PrefetchLatency uint64
	// MaxPrefetchPerTrigger caps prefetches accepted per demand access
	// (default 16).
	MaxPrefetchPerTrigger int
}

// Prefetcher is the public plug-in interface, mirroring the paper's
// decoupled design: Train observes every demand access (the learning phase);
// Issue returns block addresses to prefetch (the issuing phase). Block
// addresses returned by Issue are byte addresses of 64-byte blocks on the
// same channel as the triggering access.
type Prefetcher interface {
	Name() string
	Train(a Access, miss bool)
	Issue(a Access, miss bool) []uint64
	// StorageBits returns the hardware budget of the prefetcher's
	// metadata in bits (used by the power model and storage report).
	StorageBits() int
}

// Component is the public tournament-entrant interface: a Prefetcher that
// can additionally predict without side effects. Peek returns the block
// addresses the component would issue for the access without mutating any
// learned state — the tournament calls it on every component for every
// trigger to score its meta-predictor, so it must be cheap and pure.
type Component interface {
	Prefetcher
	Peek(a Access, miss bool) []uint64
}

// customAdapter bridges a public Prefetcher to the internal interface.
type customAdapter struct{ p Prefetcher }

func (c customAdapter) Name() string     { return c.p.Name() }
func (c customAdapter) StorageBits() int { return c.p.StorageBits() }
func (c customAdapter) Reset()           {}

func (c customAdapter) Train(a prefetch.Access) {
	c.p.Train(Access{Addr: uint64(a.Block.Addr()), Cycle: a.Cycle, Write: a.Write}, a.Miss)
}

func (c customAdapter) Issue(a prefetch.Access) []addr.BlockNum {
	targets := c.p.Issue(Access{Addr: uint64(a.Block.Addr()), Cycle: a.Cycle, Write: a.Write}, a.Miss)
	out := make([]addr.BlockNum, 0, len(targets))
	for _, t := range targets {
		out = append(out, addr.Addr(t).Block())
	}
	return out
}

// componentAdapter bridges a public Component (custom tournament entrant)
// to the internal Component interface.
type componentAdapter struct{ customAdapter }

func (c componentAdapter) Peek(a prefetch.Access, dst []addr.BlockNum) []addr.BlockNum {
	targets := c.p.(Component).Peek(Access{Addr: uint64(a.Block.Addr()), Cycle: a.Cycle, Write: a.Write}, a.Miss)
	for _, t := range targets {
		dst = append(dst, addr.Addr(t).Block())
	}
	return dst
}

// defaultTournamentSet is the component list behind the built-in
// planaria-tournament, reused when Options.TournamentCustom is given
// without Options.Tournament.
var defaultTournamentSet = []string{"planaria", "stride", "markov", "accel"}

// tournamentFactory builds the per-channel constructor for
// Options.Tournament / Options.TournamentCustom, validating the component
// names eagerly so NewSimulator fails fast on a non-Component built-in.
func tournamentFactory(opts Options) (func(int) prefetch.Prefetcher, error) {
	names := opts.Tournament
	if len(names) == 0 {
		names = defaultTournamentSet
	}
	factories := make([]func(int) prefetch.Prefetcher, len(names))
	for i, name := range names {
		f, err := sim.NamedPrefetcher(name)
		if err != nil {
			return nil, err
		}
		if _, ok := f(0).(prefetch.Component); !ok {
			return nil, fmt.Errorf("planaria: prefetcher %q cannot enter a tournament (no shadow prediction)", name)
		}
		factories[i] = f
	}
	return func(ch int) prefetch.Prefetcher {
		comps := make([]prefetch.Component, 0, len(factories)+2)
		for _, f := range factories {
			comps = append(comps, f(ch).(prefetch.Component))
		}
		if opts.TournamentCustom != nil {
			for _, c := range opts.TournamentCustom(ch) {
				comps = append(comps, componentAdapter{customAdapter{p: c}})
			}
		}
		return prefetch.NewTournament(prefetch.TournamentConfig{Name: "tournament"}, comps...)
	}, nil
}

// Prefetchers lists the built-in prefetcher names accepted by
// Options.Prefetcher: none, nextline, stride, markov, accel, bop, spp,
// planaria and the planaria-slp / planaria-tlp / planaria-serial /
// planaria-parallel / planaria-tournament variants.
func Prefetchers() []string { return sim.PrefetcherNames() }

// Result summarises one simulation run.
type Result struct {
	Workload   string
	Prefetcher string

	DemandReads  uint64
	DemandWrites uint64

	HitRate  float64 // SC demand hit rate
	AMAT     float64 // average memory access time of demand reads, cycles
	IPC      float64 // estimated instructions per cycle (relative model)
	Coverage float64 // fraction of would-be misses removed by prefetching
	Accuracy float64 // useful prefetch fills / prefetch fills

	DRAMTraffic    uint64  // total block transfers (reads + writes)
	PrefetchReads  uint64  // prefetch-originated DRAM reads
	PrefetchIssued uint64  // prefetches entering the queue
	EnergyPJ       float64 // memory-system energy, picojoules
	AvgPowerMW     float64 // at the 1600 MHz controller clock
	StorageBits    int     // prefetcher metadata across channels
	Cycles         uint64  // wall-clock duration
}

func resultFrom(rep metrics.Report) Result {
	model := metrics.DefaultIPCModel()
	return Result{
		Workload:       rep.Workload,
		Prefetcher:     rep.Prefetcher,
		DemandReads:    rep.DemandReads,
		DemandWrites:   rep.DemandWrites,
		HitRate:        rep.HitRate(),
		AMAT:           rep.AMAT,
		IPC:            model.IPC(rep.AMAT),
		Coverage:       rep.Coverage(),
		Accuracy:       rep.Accuracy(),
		DRAMTraffic:    rep.Traffic(),
		PrefetchReads:  rep.DRAM.PrefReads,
		PrefetchIssued: rep.Prefetch.Issued,
		EnergyPJ:       rep.Energy.Total(),
		AvgPowerMW:     rep.PowerMW(1600),
		StorageBits:    rep.StorageBits,
		Cycles:         rep.Cycles,
	}
}

// Simulator is one configured instance of the memory-system model. It is
// single-use: build, feed one trace (via Run or Step), read the Result.
type Simulator struct {
	eng      *sim.Engine
	workload string
	finished bool
}

// NewSimulator builds a simulator from opts.
func NewSimulator(opts Options) (*Simulator, error) {
	cfg := sim.DefaultConfig()
	switch {
	case opts.Custom != nil:
		cfg.NewPrefetcher = func(ch int) prefetch.Prefetcher {
			return customAdapter{p: opts.Custom(ch)}
		}
	case len(opts.Tournament) > 0 || opts.TournamentCustom != nil:
		f, err := tournamentFactory(opts)
		if err != nil {
			return nil, err
		}
		cfg.NewPrefetcher = f
	case opts.Prefetcher != "":
		f, err := sim.NamedPrefetcher(opts.Prefetcher)
		if err != nil {
			return nil, err
		}
		cfg.NewPrefetcher = f
	}
	if opts.CacheBytes > 0 {
		cfg.Cache.SizeBytes = opts.CacheBytes
	}
	if opts.CacheWays > 0 {
		cfg.Cache.Ways = opts.CacheWays
	}
	if opts.CachePolicy != "" {
		pol, err := cache.ParsePolicy(opts.CachePolicy)
		if err != nil {
			return nil, err
		}
		cfg.Cache.Policy = pol
	}
	if err := cfg.Cache.Validate(); err != nil {
		return nil, err
	}
	if opts.SCHitLatency > 0 {
		cfg.SCHitLatency = opts.SCHitLatency
	}
	if opts.PrefetchLatency > 0 {
		cfg.PrefetchLatency = opts.PrefetchLatency
	}
	if opts.MaxPrefetchPerTrigger > 0 {
		cfg.MaxPerTrigger = opts.MaxPrefetchPerTrigger
	}
	return &Simulator{eng: sim.New(cfg)}, nil
}

func toRecord(a Access) (trace.Record, error) {
	dev := trace.CPU0
	if a.Device != "" {
		d, err := trace.ParseDevice(a.Device)
		if err != nil {
			return trace.Record{}, err
		}
		dev = d
	}
	return trace.Record{Addr: addr.Addr(a.Addr), Cycle: a.Cycle, Device: dev, Write: a.Write}, nil
}

// Step feeds one access into the simulator.
func (s *Simulator) Step(a Access) error {
	if s.finished {
		return fmt.Errorf("planaria: simulator already finished")
	}
	rec, err := toRecord(a)
	if err != nil {
		return err
	}
	return s.eng.Step(rec)
}

// Run feeds a whole trace and returns the result. It may be called once.
func (s *Simulator) Run(accesses []Access) (Result, error) {
	for _, a := range accesses {
		if err := s.Step(a); err != nil {
			return Result{}, err
		}
	}
	return s.Finish(), nil
}

// Finish flushes the memory system and returns the result. Further Steps
// are rejected.
func (s *Simulator) Finish() Result {
	s.finished = true
	return resultFrom(s.eng.Finish(s.workload))
}

// SetWorkloadName labels the result (cosmetic).
func (s *Simulator) SetWorkloadName(name string) { s.workload = name }

// WorkloadInfo describes one catalog application (Table 2 of the paper).
type WorkloadInfo struct {
	Name        string
	Abbr        string
	Description string
}

// Workloads lists the ten Table 2 applications.
func Workloads() []WorkloadInfo {
	cat := workloads.Catalog()
	out := make([]WorkloadInfo, len(cat))
	for i, p := range cat {
		out[i] = WorkloadInfo{Name: p.Name, Abbr: p.Abbr, Description: p.Description}
	}
	return out
}

// GenerateTrace synthesises n accesses of the named catalog application
// (by Table 2 abbreviation). It panics on an unknown abbreviation; use
// Workloads to enumerate valid names.
func GenerateTrace(abbr string, n int) []Access {
	p, ok := workloads.ByAbbr(abbr)
	if !ok {
		panic(fmt.Sprintf("planaria: unknown workload %q", abbr))
	}
	t := p.Generate(n)
	out := make([]Access, len(t))
	for i, r := range t {
		out[i] = Access{Addr: uint64(r.Addr), Cycle: r.Cycle, Write: r.Write, Device: r.Device.String()}
	}
	return out
}

func toTrace(accesses []Access) (trace.Trace, error) {
	t := make(trace.Trace, len(accesses))
	for i, a := range accesses {
		rec, err := toRecord(a)
		if err != nil {
			return nil, err
		}
		t[i] = rec
	}
	return t, nil
}

// OverlapRate computes the paper's Figure 3/4 metric on a trace: the mean
// window-to-window footprint overlap across all pages (1 = perfectly stable
// snapshots).
func OverlapRate(accesses []Access) (float64, error) {
	t, err := toTrace(accesses)
	if err != nil {
		return 0, err
	}
	return analysis.OverlapRate(t), nil
}

// NeighborProportion computes the paper's Figure 5 metric: for each distance
// threshold in dists, the fraction of pages with a "learnable neighbour"
// whose observed footprint differs by at most diffBits.
func NeighborProportion(accesses []Access, dists []uint64, diffBits int) ([]float64, error) {
	t, err := toTrace(accesses)
	if err != nil {
		return nil, err
	}
	return analysis.NeighborProportion(t, dists, diffBits), nil
}

// RunWorkload is the one-call convenience: simulate n accesses of the named
// application under the named prefetcher.
func RunWorkload(abbr, prefetcher string, n int) (Result, error) {
	s, err := NewSimulator(Options{Prefetcher: prefetcher})
	if err != nil {
		return Result{}, err
	}
	s.SetWorkloadName(abbr)
	return s.Run(GenerateTrace(abbr, n))
}
