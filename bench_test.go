package planaria

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md, experiment index). Each benchmark runs the
// corresponding experiment end to end and reports the headline values as
// custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Benchmarks use a reduced trace length per
// app (benchRequests) so the full suite completes in minutes; run
// cmd/experiments for the full-scale numbers recorded in EXPERIMENTS.md.

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

// benchRequests is the per-app trace length used by the benchmark harness.
const benchRequests = 150_000

func benchOpts() experiments.Options {
	return experiments.Options{Requests: benchRequests}
}

// BenchmarkFig2Snapshot regenerates Figure 2: the access timeline of a hot
// page, showing footprint visits with non-deterministic intra-visit order.
func BenchmarkFig2Snapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := experiments.Fig2(io.Discard, benchOpts())
		b.ReportMetric(float64(n), "accesses")
	}
}

// BenchmarkFig4OverlapRate regenerates Figure 4: mean footprint overlap rate
// across program phases (paper: > 80 %).
func BenchmarkFig4OverlapRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		avg := experiments.Fig4(io.Discard, benchOpts())
		b.ReportMetric(100*avg, "overlap_%")
	}
}

// BenchmarkFig5Neighbors regenerates Figure 5: the learnable-neighbour
// proportion at distance thresholds 4 and 64 (paper: 26.95 % / 39.26 %).
func BenchmarkFig5Neighbors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		at4, at64 := experiments.Fig5(io.Discard, benchOpts())
		b.ReportMetric(100*at4, "neighbors@4_%")
		b.ReportMetric(100*at64, "neighbors@64_%")
	}
}

// BenchmarkFig7HitRate regenerates Figure 7: SC hit rate per prefetcher.
func BenchmarkFig7HitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := experiments.Fig7(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var none, pl float64
		for _, m := range reps {
			none += m["none"].HitRate()
			pl += m["planaria"].HitRate()
		}
		n := float64(len(reps))
		b.ReportMetric(100*none/n, "hit_none_%")
		b.ReportMetric(100*pl/n, "hit_planaria_%")
	}
}

// BenchmarkFig8AMAT regenerates Figure 8 and the Section 1 AMAT table:
// Planaria's AMAT reduction vs none/BOP/SPP (paper: 24.3/21.3/15.1 %).
func BenchmarkFig8AMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := experiments.Fig7(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		vsNone, vsBOP, vsSPP := experiments.Fig8(io.Discard, reps)
		b.ReportMetric(100*vsNone, "amat_vs_none_%")
		b.ReportMetric(100*vsBOP, "amat_vs_bop_%")
		b.ReportMetric(100*vsSPP, "amat_vs_spp_%")
	}
}

// BenchmarkFig9Breakdown regenerates Figure 9: SLP's share of the composite
// improvement (paper: ≈ 80 % overall, TLP dominant on Fort).
func BenchmarkFig9Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		avg, perApp, err := experiments.Fig9(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*avg, "slp_share_%")
		b.ReportMetric(100*perApp["Fort"], "slp_share_fort_%")
	}
}

// BenchmarkFig10Power regenerates Figure 10: memory-system power overhead
// per prefetcher (paper: BOP +13.5 %, SPP +9.7 %, Planaria +0.5 %).
func BenchmarkFig10Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := experiments.Fig7(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		pl, bop, spp := experiments.Fig10(io.Discard, reps)
		b.ReportMetric(100*bop, "power_bop_%")
		b.ReportMetric(100*spp, "power_spp_%")
		b.ReportMetric(100*pl, "power_planaria_%")
	}
}

// BenchmarkTableIPC regenerates the abstract's IPC uplifts (paper:
// +28.9/+21.9/+15.3 % vs none/BOP/SPP).
func BenchmarkTableIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := experiments.Fig7(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		vsNone, vsBOP, vsSPP := experiments.TableIPC(io.Discard, reps)
		b.ReportMetric(100*vsNone, "ipc_vs_none_%")
		b.ReportMetric(100*vsBOP, "ipc_vs_bop_%")
		b.ReportMetric(100*vsSPP, "ipc_vs_spp_%")
	}
}

// BenchmarkTableTraffic regenerates the Section 1 traffic-overhead table
// (paper: BOP +23.4 %, SPP +15.9 %).
func BenchmarkTableTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := experiments.Fig7(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		bop, spp, pl := experiments.TableTraffic(io.Discard, reps)
		b.ReportMetric(100*bop, "traffic_bop_%")
		b.ReportMetric(100*spp, "traffic_spp_%")
		b.ReportMetric(100*pl, "traffic_planaria_%")
	}
}

// BenchmarkTableStorage regenerates the Section 6 storage figure (paper:
// 345.2 KB ≈ 8.4 % of the 4 MB SC).
func BenchmarkTableStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kb, err := experiments.TableStorage(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(kb, "storage_KB")
	}
}

// BenchmarkAblationCoordinator compares decoupled vs serial vs parallel
// coordination (the Section 2 design claim).
func BenchmarkAblationCoordinator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCoordinator(io.Discard, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDistance sweeps the TLP distance threshold.
func BenchmarkAblationDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDistance(io.Discard, benchOpts(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPTSize sweeps the SLP pattern-table capacity.
func BenchmarkAblationPTSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPTSize(io.Discard, benchOpts(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheStudy regenerates the Section 1 claim: replacement policies
// and extra capacity do not rescue the SC, while prefetching on the
// baseline cache does.
func BenchmarkCacheStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		amats, err := experiments.CacheStudy(io.Discard, benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(amats["4MB lru"], "amat_4MB_lru")
		b.ReportMetric(amats["8MB drrip"], "amat_8MB_drrip")
		b.ReportMetric(amats["4MB+planaria"], "amat_4MB_planaria")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (requests per
// second) under the full Planaria configuration — the engineering metric for
// the simulator substrate itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr := GenerateTrace("CFM", 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSimulator(Options{Prefetcher: "planaria"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "req/s")
}
