// Command benchguard compares `go test -bench` output against the pinned
// reference numbers in BENCH_baseline.json and fails (exit 1) on regression:
// more than 10 % lower req/s or more than 15 % more allocs/op by default.
// CI runs it after the bench job so performance regressions fail the build
// instead of silently accumulating (see docs/PERFORMANCE.md).
//
// Usage:
//
//	go test -bench=EngineStep -benchmem -count=5 -run='^$' ./internal/sim/ | tee bench.txt
//	go run ./cmd/benchguard -bench bench.txt -baseline BENCH_baseline.json
//
// Benchmarks present in the baseline but missing from the bench output are
// reported and fail the run (a silently-skipped guard is no guard);
// benchmarks in the output but not in the baseline are informational only.
//
// A baseline entry may set "relative_to": "<OtherBenchmark>"; its req/s is
// then gated against that benchmark's measured req/s in the same run rather
// than the pinned absolute — the host-independent way to bound an overhead,
// used to keep event tracing (EngineStepTraced) within 10% of the untraced
// engine (see docs/TRACING.md) and telemetry (EngineStepTelemetry) within
// 10% as well (see docs/OBSERVABILITY.md).
//
// With -repeats the -count samples are treated as seeded repeats: each
// benchmark reduces to its mean ± 95 % confidence half-interval (Student-t,
// the sweep farm's statistics) instead of the median, and a gate only fails
// when the whole band clears the threshold — mean + CI95 below a req/s
// floor, mean − CI95 above an allocs/op ceiling. One noisy sample on a
// loaded CI host widens the band instead of failing the build:
//
//	go test -bench=EngineStep -benchmem -count=5 -run='^$' ./internal/sim/ | tee bench.txt
//	go run ./cmd/benchguard -bench bench.txt -baseline BENCH_baseline.json -repeats
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sweepfarm"
)

type baselineEntry struct {
	ReqPerS     float64 `json:"req_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// RelativeTo names another benchmark in the same run: instead of the
	// absolute req/s pin (kept as documentation), the guard compares this
	// benchmark's measured req/s against the named one's measured req/s,
	// using the same slowdown tolerance. This pins an *overhead ratio* —
	// e.g. EngineStepTraced must stay within 10% of EngineStep — which
	// holds across hosts of different absolute speed, where a fixed req/s
	// pin would not.
	RelativeTo string `json:"relative_to,omitempty"`
	// Tolerance, when > 0, overrides the global -max-slowdown fraction for
	// this entry's req/s gate (absolute or relative). It expresses pins
	// whose expected gap differs from the default 10% — e.g. the
	// four-way tournament trains every component on every access, so it
	// legitimately runs well below the plain composite and is pinned at a
	// wider ratio against EngineStep instead of being left ungated.
	Tolerance float64 `json:"tolerance,omitempty"`
}

type baseline struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

// result is one benchmark's reduction across -count runs: the median point
// estimate by default, or — under -repeats — the mean with its 95 %
// confidence half-intervals (zero CI fields mean "point estimate", which
// degrades every band gate to the exact point comparison).
type result struct {
	ReqPerS     float64
	AllocsPerOp float64
	ReqCI95     float64
	AllocsCI95  float64
	samples     int
}

func main() {
	benchPath := flag.String("bench", "bench.txt", "captured `go test -bench` output")
	basePath := flag.String("baseline", "BENCH_baseline.json", "pinned reference numbers")
	maxSlowdown := flag.Float64("max-slowdown", 0.10, "fail when req/s drops below baseline by more than this fraction")
	maxAllocGrowth := flag.Float64("max-alloc-growth", 0.15, "fail when allocs/op exceeds baseline by more than this fraction")
	repeats := flag.Bool("repeats", false, "treat the -count samples as seeded repeats: reduce each benchmark by mean instead of median and gate on the mean±CI95 band (Student-t, the sweep farm's statistics) so one noisy sample widens the interval instead of failing the build")
	flag.Parse()

	base, err := readBaseline(*basePath)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*benchPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	results, err := parseBench(f, *repeats)
	if err != nil {
		fatal(err)
	}

	lines, failures := compare(base, results, *maxSlowdown, *maxAllocGrowth)
	for _, l := range lines {
		fmt.Println(l)
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchguard: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: all benchmarks within tolerance")
}

// compare checks every pinned benchmark against the measured reductions and
// returns the human-readable report lines plus the list of failures. Zero
// baselines get explicit semantics instead of vanishing into ratio
// arithmetic: a 0 allocs/op baseline means "this path must stay
// allocation-free", so any allocation at all fails (a relative threshold on
// zero would either pass everything or divide to Inf/NaN); a 0 req/s
// baseline cannot express a meaningful slowdown bound, so the benchmark is
// reported as unpinned-for-throughput rather than silently passing.
//
// Results carrying confidence half-intervals (the -repeats reduction) are
// gated on the band edge nearest the pass region: req/s fails only when
// mean + CI95 is still below the floor, allocs/op only when mean − CI95 is
// still above the ceiling. Point estimates have zero-width bands, so the
// gates reduce to the plain comparisons. The allocation-free pin stays
// strict either way — a zero-alloc path that allocates has regressed no
// matter how noisy the timing was.
func compare(base baseline, results map[string]result, maxSlowdown, maxAllocGrowth float64) (lines, failures []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from bench output", name))
			continue
		}
		slowdown := maxSlowdown
		if want.Tolerance > 0 {
			slowdown = want.Tolerance
		}
		status := "ok"
		switch {
		case math.IsNaN(got.ReqPerS) || math.IsNaN(want.ReqPerS):
			failures = append(failures, fmt.Sprintf("%s: req/s is NaN (measured %v, baseline %v)",
				name, got.ReqPerS, want.ReqPerS))
			status = "FAIL"
		case want.RelativeTo != "":
			// Relative pin: compare against the referenced benchmark's
			// measured req/s from the same run, so the gate expresses an
			// overhead bound instead of an absolute speed.
			ref, ok := results[want.RelativeTo]
			switch {
			case !ok:
				failures = append(failures, fmt.Sprintf("%s: relative baseline %s missing from bench output",
					name, want.RelativeTo))
				status = "FAIL"
			case math.IsNaN(ref.ReqPerS) || ref.ReqPerS == 0:
				failures = append(failures, fmt.Sprintf("%s: relative baseline %s has unusable req/s %v",
					name, want.RelativeTo, ref.ReqPerS))
				status = "FAIL"
			case got.ReqPerS+got.ReqCI95 < ref.ReqPerS*(1-slowdown):
				failures = append(failures, fmt.Sprintf("%s: req/s %.0f%s is %.1f%% below %s's %.0f (overhead limit %.0f%%)",
					name, got.ReqPerS, bandSuffix(got.ReqCI95), 100*(1-got.ReqPerS/ref.ReqPerS), want.RelativeTo, ref.ReqPerS, 100*slowdown))
				status = "FAIL"
			default:
				status = fmt.Sprintf("ok (%.1f%% vs %s)", 100*(1-got.ReqPerS/ref.ReqPerS), want.RelativeTo)
			}
		case want.ReqPerS == 0:
			status = "no req/s pin"
		case got.ReqPerS+got.ReqCI95 < want.ReqPerS*(1-slowdown):
			failures = append(failures, fmt.Sprintf("%s: req/s %.0f%s is %.1f%% below baseline %.0f (limit %.0f%%)",
				name, got.ReqPerS, bandSuffix(got.ReqCI95), 100*(1-got.ReqPerS/want.ReqPerS), want.ReqPerS, 100*slowdown))
			status = "FAIL"
		}
		switch {
		case math.IsNaN(got.AllocsPerOp) || math.IsNaN(want.AllocsPerOp):
			failures = append(failures, fmt.Sprintf("%s: allocs/op is NaN (measured %v, baseline %v)",
				name, got.AllocsPerOp, want.AllocsPerOp))
			status = "FAIL"
		case want.AllocsPerOp == 0 && got.AllocsPerOp > 0:
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f on a pinned allocation-free baseline",
				name, got.AllocsPerOp))
			status = "FAIL"
		case want.AllocsPerOp > 0 && got.AllocsPerOp-got.AllocsCI95 > want.AllocsPerOp*(1+maxAllocGrowth):
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f%s is %.1f%% above baseline %.0f (limit %.0f%%)",
				name, got.AllocsPerOp, bandSuffix(got.AllocsCI95), 100*(got.AllocsPerOp/want.AllocsPerOp-1), want.AllocsPerOp, 100*maxAllocGrowth))
			status = "FAIL"
		}
		lines = append(lines, fmt.Sprintf("%-30s req/s %12.0f%s (base %12.0f)  allocs/op %8.0f (base %8.0f)  n=%d  %s",
			name, got.ReqPerS, bandSuffix(got.ReqCI95), want.ReqPerS, got.AllocsPerOp, want.AllocsPerOp, got.samples, status))
	}
	extra := make([]string, 0, len(results))
	for name := range results {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		got := results[name]
		lines = append(lines, fmt.Sprintf("%-30s req/s %12.0f                      allocs/op %8.0f            n=%d  (no baseline)",
			name, got.ReqPerS, got.AllocsPerOp, got.samples))
	}
	return lines, failures
}

func readBaseline(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("%s: no benchmarks pinned", path)
	}
	return b, nil
}

// bandSuffix renders a "±CI" suffix for results that carry a confidence
// half-interval, and nothing for point estimates.
func bandSuffix(ci float64) string {
	if ci <= 0 {
		return ""
	}
	return fmt.Sprintf("±%.0f", ci)
}

// parseBench extracts per-benchmark reductions from `go test -bench` output.
// Each line is "BenchmarkName-P  N  <value unit>...": the GOMAXPROCS suffix
// and the Benchmark prefix are stripped so names match the baseline keys,
// and repeated lines (-count) are reduced by median per metric — or, when
// banded, by mean plus the Student-t 95 % confidence half-interval
// (sweepfarm.NewStat, the same statistics the sweep farm reports).
func parseBench(r interface{ Read([]byte) (int, error) }, banded bool) (map[string]result, error) {
	type samples struct{ req, allocs []float64 }
	acc := map[string]*samples{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := acc[name]
		if s == nil {
			s = &samples{}
			acc[name] = s
		}
		// fields[1] is the iteration count; after it come value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "req/s":
				s.req = append(s.req, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result, len(acc))
	for name, s := range acc {
		if banded {
			req, allocs := sweepfarm.NewStat(s.req), sweepfarm.NewStat(s.allocs)
			out[name] = result{
				ReqPerS: req.Mean, ReqCI95: req.CI95,
				AllocsPerOp: allocs.Mean, AllocsCI95: allocs.CI95,
				samples: len(s.req),
			}
		} else {
			out[name] = result{ReqPerS: median(s.req), AllocsPerOp: median(s.allocs), samples: len(s.req)}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
