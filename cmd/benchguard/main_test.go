package main

import (
	"math"
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: repro/internal/sim
BenchmarkEngineStep-4        	      30	  45108086 ns/op	   2200000 req/s	 4315856 B/op	   15200 allocs/op
BenchmarkEngineStep-4        	      30	  45108086 ns/op	   2400000 req/s	 4315856 B/op	   15300 allocs/op
BenchmarkEngineStep-4        	      30	  45108086 ns/op	   2300000 req/s	 4315856 B/op	   15100 allocs/op
BenchmarkEngineStepParallel-4	      28	  41000000 ns/op	   2500000 req/s	 7151137 B/op	   15219 allocs/op
PASS
ok  	repro/internal/sim	10.0s
`

func TestParseBenchMedians(t *testing.T) {
	res, err := parseBench(strings.NewReader(benchOut), false)
	if err != nil {
		t.Fatal(err)
	}
	step, ok := res["EngineStep"]
	if !ok {
		t.Fatalf("EngineStep missing (got %v)", res)
	}
	if step.ReqPerS != 2300000 {
		t.Errorf("median req/s = %v, want 2300000", step.ReqPerS)
	}
	if step.AllocsPerOp != 15200 {
		t.Errorf("median allocs/op = %v, want 15200", step.AllocsPerOp)
	}
	if step.samples != 3 {
		t.Errorf("samples = %d, want 3", step.samples)
	}
	par := res["EngineStepParallel"]
	if par.ReqPerS != 2500000 || par.samples != 1 {
		t.Errorf("EngineStepParallel = %+v", par)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n"), false); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

// TestParseBenchBanded: the -repeats reduction is the mean with a Student-t
// 95% half-interval per metric; a single-sample benchmark keeps a zero-width
// band (N=1 has no dispersion estimate) and so gates exactly like a point.
func TestParseBenchBanded(t *testing.T) {
	res, err := parseBench(strings.NewReader(benchOut), true)
	if err != nil {
		t.Fatal(err)
	}
	step := res["EngineStep"]
	if step.ReqPerS != 2_300_000 {
		t.Errorf("mean req/s = %v, want 2300000", step.ReqPerS)
	}
	// Samples 2.2e6/2.3e6/2.4e6: std = 1e5, CI95 = 4.303·1e5/√3 ≈ 248435.
	if step.ReqCI95 < 240_000 || step.ReqCI95 > 260_000 {
		t.Errorf("req/s CI95 = %v, want ≈248435", step.ReqCI95)
	}
	if step.AllocsPerOp != 15_200 || step.AllocsCI95 <= 0 {
		t.Errorf("allocs band = %v±%v, want mean 15200 with a positive CI", step.AllocsPerOp, step.AllocsCI95)
	}
	par := res["EngineStepParallel"]
	if par.ReqCI95 != 0 || par.AllocsCI95 != 0 {
		t.Errorf("single-sample bands = %+v, want zero-width", par)
	}
}

// TestCompareBanded: with a confidence band, a gate fires only when the
// whole band clears the threshold — a mean just under the req/s floor whose
// band reaches back over it passes, a band entirely below fails, and the
// allocation ceiling mirrors that on the lower band edge. The
// allocation-free pin ignores the band: a zero-alloc path that allocates
// has regressed regardless of noise.
func TestCompareBanded(t *testing.T) {
	base := baseline{Benchmarks: map[string]baselineEntry{
		"EngineStep": {ReqPerS: 2_000_000, AllocsPerOp: 100},
	}}
	// Mean 4% below the 10% floor, band wide enough to reach it: pass.
	results := map[string]result{
		"EngineStep": {ReqPerS: 1_730_000, ReqCI95: 100_000, AllocsPerOp: 100, samples: 5},
	}
	if _, failures := compare(base, results, 0.10, 0.15); len(failures) != 0 {
		t.Fatalf("band overlapping the floor failed: %v", failures)
	}
	// Whole band below the floor: fail, and the message shows the band.
	results["EngineStep"] = result{ReqPerS: 1_730_000, ReqCI95: 50_000, AllocsPerOp: 100, samples: 5}
	_, failures := compare(base, results, 0.10, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "±50000") {
		t.Fatalf("band fully below the floor not caught: %v", failures)
	}
	// Allocs mean above the ceiling but band reaching under it: pass; band
	// fully above: fail.
	results["EngineStep"] = result{ReqPerS: 2_000_000, AllocsPerOp: 118, AllocsCI95: 5, samples: 5}
	if _, failures := compare(base, results, 0.10, 0.15); len(failures) != 0 {
		t.Fatalf("alloc band overlapping the ceiling failed: %v", failures)
	}
	results["EngineStep"] = result{ReqPerS: 2_000_000, AllocsPerOp: 130, AllocsCI95: 5, samples: 5}
	if _, failures := compare(base, results, 0.10, 0.15); len(failures) != 1 {
		t.Fatalf("alloc band fully above the ceiling not caught: %v", failures)
	}
	// Allocation-free pin stays strict under a band.
	base.Benchmarks["HotPath"] = baselineEntry{AllocsPerOp: 0}
	results["HotPath"] = result{AllocsPerOp: 1, AllocsCI95: 3, samples: 5}
	results["EngineStep"] = result{ReqPerS: 2_000_000, AllocsPerOp: 100, samples: 5}
	_, failures = compare(base, results, 0.10, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocation-free") {
		t.Fatalf("banded allocation-free violation not caught: %v", failures)
	}
}

// TestCompareZeroBaselines: a pinned 0 allocs/op means allocation-free —
// any measured allocation fails — and a 0 req/s pin is reported as
// informational rather than silently passing through the ratio arithmetic.
func TestCompareZeroBaselines(t *testing.T) {
	base := baseline{Benchmarks: map[string]baselineEntry{
		"HotPath": {ReqPerS: 0, AllocsPerOp: 0},
	}}
	results := map[string]result{
		"HotPath": {ReqPerS: 100, AllocsPerOp: 3, samples: 1},
	}
	_, failures := compare(base, results, 0.10, 0.15)
	if len(failures) != 1 {
		t.Fatalf("failures = %v, want exactly the allocation-free violation", failures)
	}
	if !strings.Contains(failures[0], "allocation-free") {
		t.Errorf("failure %q does not name the allocation-free pin", failures[0])
	}

	// Truly allocation-free output passes, and the zero req/s pin stays
	// visible as unpinned instead of vanishing.
	results["HotPath"] = result{ReqPerS: 100, AllocsPerOp: 0, samples: 1}
	lines, failures := compare(base, results, 0.10, 0.15)
	if len(failures) != 0 {
		t.Fatalf("clean allocation-free run failed: %v", failures)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "no req/s pin") {
		t.Errorf("lines = %v, want the zero req/s pin flagged as informational", lines)
	}
}

// TestCompareRegression: the ordinary relative thresholds still fire.
func TestCompareRegression(t *testing.T) {
	base := baseline{Benchmarks: map[string]baselineEntry{
		"EngineStep": {ReqPerS: 2_000_000, AllocsPerOp: 100},
	}}
	results := map[string]result{
		"EngineStep": {ReqPerS: 1_500_000, AllocsPerOp: 130, samples: 3},
	}
	_, failures := compare(base, results, 0.10, 0.15)
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want req/s and allocs/op regressions", failures)
	}
	if _, f := compare(base, map[string]result{}, 0.10, 0.15); len(f) != 1 || !strings.Contains(f[0], "missing") {
		t.Errorf("missing benchmark not reported: %v", f)
	}
}

// TestCompareNaN: NaN in either column is a hard failure, never a silent
// pass (every comparison against NaN is false, so the threshold checks
// alone would wave it through).
func TestCompareNaN(t *testing.T) {
	nan := math.NaN()
	base := baseline{Benchmarks: map[string]baselineEntry{
		"EngineStep": {ReqPerS: nan, AllocsPerOp: nan},
	}}
	results := map[string]result{
		"EngineStep": {ReqPerS: 2_000_000, AllocsPerOp: 100, samples: 1},
	}
	_, failures := compare(base, results, 0.10, 0.15)
	if len(failures) != 2 {
		t.Fatalf("NaN baseline failures = %v, want both metrics flagged", failures)
	}
}

// TestCompareRelativeTo: a relative_to pin gates req/s against the named
// benchmark's measured value in the same run, not the absolute pin.
func TestCompareRelativeTo(t *testing.T) {
	base := baseline{Benchmarks: map[string]baselineEntry{
		"EngineStep":       {ReqPerS: 2_000_000, AllocsPerOp: 100},
		"EngineStepTraced": {ReqPerS: 1_900_000, AllocsPerOp: 110, RelativeTo: "EngineStep"},
	}}
	// The host is slower than the pinned absolute across the board, but the
	// traced run is within 10% of the untraced one: only the absolute pin
	// may fire, and here the untraced run stays inside its own tolerance.
	results := map[string]result{
		"EngineStep":       {ReqPerS: 1_850_000, AllocsPerOp: 100, samples: 3},
		"EngineStepTraced": {ReqPerS: 1_800_000, AllocsPerOp: 110, samples: 3},
	}
	lines, failures := compare(base, results, 0.10, 0.15)
	if len(failures) != 0 {
		t.Fatalf("within-overhead run failed: %v", failures)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "vs EngineStep") {
			found = true
		}
	}
	if !found {
		t.Errorf("relative comparison not reported: %v", lines)
	}

	// Traced falls more than 10% below untraced: the overhead gate fires
	// even though the traced absolute pin alone would pass.
	results["EngineStepTraced"] = result{ReqPerS: 1_600_000, AllocsPerOp: 110, samples: 3}
	results["EngineStep"] = result{ReqPerS: 2_000_000, AllocsPerOp: 100, samples: 3}
	_, failures = compare(base, results, 0.10, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "overhead limit") {
		t.Fatalf("overhead regression not caught: %v", failures)
	}

	// The reference benchmark missing from the run is a hard failure — an
	// unanchored relative pin guards nothing.
	delete(results, "EngineStep")
	results["EngineStepTraced"] = result{ReqPerS: 1_900_000, AllocsPerOp: 110, samples: 3}
	_, failures = compare(base, results, 0.10, 0.15)
	foundMissing := false
	for _, f := range failures {
		if strings.Contains(f, "relative baseline EngineStep missing") {
			foundMissing = true
		}
	}
	if !foundMissing {
		t.Fatalf("missing reference not reported: %v", failures)
	}
}

// TestCompareTolerance: a per-entry tolerance widens (or tightens) the
// req/s gate for that entry only, for both relative and absolute pins. The
// tournament is the motivating case: all components train on every access,
// so it legitimately sits far below the plain composite, and the default
// 10% overhead gate would make a relative pin impossible.
func TestCompareTolerance(t *testing.T) {
	base := baseline{Benchmarks: map[string]baselineEntry{
		"EngineStep": {ReqPerS: 2_000_000, AllocsPerOp: 100},
		"EngineStepTournament": {ReqPerS: 1_200_000, AllocsPerOp: 150,
			RelativeTo: "EngineStep", Tolerance: 0.45},
	}}
	// Tournament at 60% of EngineStep: inside its widened 45% gate, far
	// outside the default 10% one.
	results := map[string]result{
		"EngineStep":           {ReqPerS: 2_000_000, AllocsPerOp: 100, samples: 3},
		"EngineStepTournament": {ReqPerS: 1_200_000, AllocsPerOp: 150, samples: 3},
	}
	if _, failures := compare(base, results, 0.10, 0.15); len(failures) != 0 {
		t.Fatalf("within-tolerance run failed: %v", failures)
	}
	// Below the widened gate it still fires.
	results["EngineStepTournament"] = result{ReqPerS: 1_000_000, AllocsPerOp: 150, samples: 3}
	_, failures := compare(base, results, 0.10, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "overhead limit 45%") {
		t.Fatalf("tolerance gate did not fire: %v", failures)
	}
	// The per-entry tolerance never leaks onto other entries: the sibling
	// absolute pin keeps the global fraction.
	results["EngineStepTournament"] = result{ReqPerS: 1_200_000, AllocsPerOp: 150, samples: 3}
	results["EngineStep"] = result{ReqPerS: 1_700_000, AllocsPerOp: 100, samples: 3}
	_, failures = compare(base, results, 0.10, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "EngineStep: req/s") {
		t.Fatalf("global gate lost: %v", failures)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("empty median = %v", m)
	}
}
