package main

import (
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: repro/internal/sim
BenchmarkEngineStep-4        	      30	  45108086 ns/op	   2200000 req/s	 4315856 B/op	   15200 allocs/op
BenchmarkEngineStep-4        	      30	  45108086 ns/op	   2400000 req/s	 4315856 B/op	   15300 allocs/op
BenchmarkEngineStep-4        	      30	  45108086 ns/op	   2300000 req/s	 4315856 B/op	   15100 allocs/op
BenchmarkEngineStepParallel-4	      28	  41000000 ns/op	   2500000 req/s	 7151137 B/op	   15219 allocs/op
PASS
ok  	repro/internal/sim	10.0s
`

func TestParseBenchMedians(t *testing.T) {
	res, err := parseBench(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	step, ok := res["EngineStep"]
	if !ok {
		t.Fatalf("EngineStep missing (got %v)", res)
	}
	if step.ReqPerS != 2300000 {
		t.Errorf("median req/s = %v, want 2300000", step.ReqPerS)
	}
	if step.AllocsPerOp != 15200 {
		t.Errorf("median allocs/op = %v, want 15200", step.AllocsPerOp)
	}
	if step.samples != 3 {
		t.Errorf("samples = %d, want 3", step.samples)
	}
	par := res["EngineStepParallel"]
	if par.ReqPerS != 2500000 || par.samples != 1 {
		t.Errorf("EngineStepParallel = %+v", par)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("empty median = %v", m)
	}
}
