// Command tracegen synthesises memory-bus traces for the Table 2 catalog
// applications and writes them in the binary or text trace encoding.
//
// Usage:
//
//	tracegen -app Fort -n 1000000 -o fort.bin
//	tracegen -app CFM -n 5000 -text -o -        # text to stdout
//	tracegen -list                              # show the catalog
//	tracegen -app HoK -n 200000 -stats          # summary only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "CFM", "catalog application abbreviation")
	n := flag.Int("n", 1_000_000, "number of requests")
	out := flag.String("o", "-", "output file ('-' for stdout)")
	text := flag.Bool("text", false, "write the text encoding instead of binary")
	stats := flag.Bool("stats", false, "print trace statistics instead of the trace")
	list := flag.Bool("list", false, "list the workload catalog and exit")
	seed := flag.Int64("seed", 0, "override the profile seed (0 keeps the default)")
	profileFile := flag.String("profile", "", "JSON profile file (overrides -app)")
	dumpProfile := flag.Bool("dump-profile", false, "print the selected profile as JSON and exit")
	flag.Parse()

	if *list {
		for _, p := range workloads.Catalog() {
			fmt.Printf("%-5s %-20s %s\n", p.Abbr, p.Name, p.Description)
		}
		return
	}

	var p workloads.Profile
	if *profileFile != "" {
		f, err := os.Open(*profileFile)
		if err != nil {
			fatal(err)
		}
		pp, err := workloads.ReadProfile(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		p = pp
	} else {
		pp, ok := workloads.ByAbbr(*app)
		if !ok {
			fatal(fmt.Errorf("unknown app %q (have %v)", *app, workloads.Abbrs()))
		}
		p = pp
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *dumpProfile {
		if err := workloads.WriteProfile(os.Stdout, p); err != nil {
			fatal(err)
		}
		return
	}
	t := p.Generate(*n)

	if *stats {
		fmt.Printf("%s (%s), %d requests\n%s", p.Name, p.Abbr, *n, trace.Analyze(t))
		return
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	var err error
	if *text {
		err = trace.WriteText(w, t)
	} else {
		err = trace.WriteAll(w, t)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
