// Command planaria-sim runs the memory-system simulator on one workload (a
// catalog app or a trace file) under one prefetcher and prints the full
// report.
//
// Usage:
//
//	planaria-sim -app CFM -pf planaria -n 400000
//	planaria-sim -trace trace.bin -pf spp
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "CFM", "catalog application abbreviation (see Table 2)")
	traceFile := flag.String("trace", "", "binary trace file (overrides -app)")
	pf := flag.String("pf", "planaria", fmt.Sprintf("prefetcher %v", sim.PrefetcherNames()))
	n := flag.Int("n", 800_000, "requests to generate when using -app")
	verbose := flag.Bool("v", false, "print detailed DRAM/cache counters")
	flag.Parse()

	var (
		t    trace.Trace
		name string
	)
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tt, err := trace.ReadAllFrom(f)
		if err != nil {
			fatal(err)
		}
		t, name = tt, *traceFile
	} else {
		p, ok := workloads.ByAbbr(*app)
		if !ok {
			fatal(fmt.Errorf("unknown app %q (have %v)", *app, workloads.Abbrs()))
		}
		t, name = p.Generate(*n), p.Abbr
	}

	factory, err := sim.NamedPrefetcher(*pf)
	if err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.NewPrefetcher = factory
	eng := sim.New(cfg)
	rep, err := eng.Run(t, name)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
	if *verbose {
		fmt.Printf("\ncache: %+v\n", rep.Cache)
		fmt.Printf("dram:  %+v\n", rep.DRAM)
		fmt.Printf("queue: %+v\n", rep.Prefetch)
		fmt.Printf("late prefetch hits: %d\n", rep.LatePrefetchHits)
		fmt.Printf("cycles: %d\n", rep.Cycles)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "planaria-sim:", err)
	os.Exit(1)
}
