// Command planaria-sim runs the memory-system simulator on one workload (a
// catalog app or a trace file) under one prefetcher and prints the full
// report.
//
// Usage:
//
//	planaria-sim -app CFM -pf planaria -n 400000
//	planaria-sim -trace trace.bin -pf spp
//	planaria-sim -app CFM -tournament -attrib
//
// Observability (see docs/OBSERVABILITY.md):
//
//	planaria-sim -app CFM -pf planaria -json out.json -sample-every 50000
//	planaria-sim -app CFM -pf planaria -cpuprofile cpu.out -memprofile mem.out
//
// Decision-level tracing and live introspection (see docs/TRACING.md):
//
//	planaria-sim -app CFM -pf planaria -trace-out run.trace.json -attrib
//	planaria-sim -app CFM -pf planaria -progress -debug-addr localhost:6060
//
// Live telemetry and structured logging (see docs/OBSERVABILITY.md):
//
//	planaria-sim -app CFM -pf planaria -telemetry -json out.json  # report carries the telemetry summary
//	planaria-sim -app CFM -pf planaria -debug-addr :6060          # Prometheus text format at /metrics
//	planaria-sim -app CFM -pf planaria -log-level debug -log-json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/events"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// logger is the process-wide structured logger; replaced right after flag
// parsing with one honoring -log-level/-log-json. The default keeps fatal()
// usable for flag-validation errors that fire before the replacement.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	app := flag.String("app", "CFM", "catalog application abbreviation (see Table 2)")
	traceFile := flag.String("trace", "", "binary trace file (overrides -app)")
	pf := flag.String("pf", "planaria", fmt.Sprintf("prefetcher %v", sim.PrefetcherNames()))
	tournament := flag.Bool("tournament", false, "shorthand for -pf planaria-tournament: the composite plus the stride/markov/accel components under the set-dueling meta-predictor (docs/PREFETCHERS.md)")
	n := flag.Int("n", 800_000, "requests to generate when using -app")
	verbose := flag.Bool("v", false, "print detailed DRAM/cache counters")
	warmup := flag.Float64("warmup", 0, "fraction of the trace run before statistics start (0 disables)")
	parallel := flag.Bool("parallel", true, "run the four channel slices concurrently (bit-identical reports; -parallel=false forces the serial engine)")
	subshards := flag.Int("subshards", 0, "address-hashed sub-shards per channel (power of two; 0 = auto from GOMAXPROCS, 1 = the unsharded paper geometry; values > 1 change the simulated geometry — see the report's parallel: line — and scale -parallel past 4 workers)")
	stream := flag.Bool("stream", true, "stream records to the engine in O(chunk) memory instead of materializing the trace (bit-identical reports; -stream=false materializes)")
	useMmap := flag.Bool("mmap", true, "memory-map the -trace file and decode records straight from the mapping (falls back to buffered reads when mapping is unavailable; -mmap=false forces the buffered reader)")
	jsonPath := flag.String("json", "", "write a JSON run artifact (manifest + report + time series) to this path")
	sampleEvery := flag.Uint64("sample-every", 0, "emit a windowed time-series sample every N requests (0 disables)")
	sampleCycles := flag.Uint64("sample-cycles", 0, "emit a windowed time-series sample every N trace cycles (0 disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile (runtime/pprof) to this path")
	traceOut := flag.String("trace-out", "", "record decision events and write a Chrome trace-event JSON (Perfetto-loadable) to this path")
	attrib := flag.Bool("attrib", false, "record decision events and print the per-prefetcher attribution table")
	debugAddr := flag.String("debug-addr", "", "serve live run introspection (progress, attribution, metrics, expvar, pprof) on this address, e.g. localhost:6060")
	progress := flag.Bool("progress", false, "print a one-line progress report to stderr every second")
	telemetryOn := flag.Bool("telemetry", false, "enable live metrics instruments (latency histograms, per-component counters); implied by -debug-addr and -progress unless set explicitly; adds the telemetry summary to reports and -json artifacts (docs/OBSERVABILITY.md)")
	logLevel := flag.String("log-level", "info", "minimum structured-log level on stderr: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines instead of key=value text")
	flag.Parse()

	level, lerr := telemetry.ParseLevel(*logLevel)
	if lerr != nil {
		fatal(lerr)
	}
	logger = telemetry.NewLogger(os.Stderr, level, *logJSON).
		With("tool", "planaria-sim", "run_id", telemetry.NewRunID())

	// -debug-addr (/metrics) and -progress (live p99) both want the
	// instruments; an explicit -telemetry flag — either value — wins.
	enableTelemetry := *telemetryOn || *debugAddr != "" || *progress
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "telemetry" {
			enableTelemetry = *telemetryOn
		}
	})

	// Build the record stream: from a binary trace file (never materialized
	// when -stream; the file's size declares the record count so warmup
	// fractions still work) or from the seeded workload generator.
	var (
		s       trace.Stream
		name    string
		seed    int64
		records int
	)
	if *traceFile != "" {
		name = *traceFile
		switch {
		case *stream && *useMmap:
			// Memory-mapped replay: records decode straight from the
			// mapped file (OpenMapped falls back to buffered reads by
			// itself when the platform cannot map).
			mt, err := trace.OpenMapped(*traceFile)
			if err != nil {
				fatal(err)
			}
			defer mt.Close()
			ms, err := mt.Stream()
			if err != nil {
				fatal(err)
			}
			s, records = ms, mt.Len()
		case *stream:
			f, err := os.Open(*traceFile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			rs := trace.NewReader(f).Stream()
			fi, err := f.Stat()
			if err != nil {
				fatal(err)
			}
			if rc := trace.RecordCount(fi.Size()); rc >= 0 {
				rs.WithLen(rc)
				records = rc
			}
			s = rs
		default:
			f, err := os.Open(*traceFile)
			if err != nil {
				fatal(err)
			}
			tt, err := trace.ReadAllFrom(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			s, records = tt.Stream(), len(tt)
		}
	} else {
		p, ok := workloads.ByAbbr(*app)
		if !ok {
			fatal(fmt.Errorf("unknown app %q (have %v)", *app, workloads.Abbrs()))
		}
		name, seed, records = p.Abbr, p.Seed, *n
		if *stream {
			s = p.Stream(*n)
		} else {
			s = p.Generate(*n).Stream()
		}
	}

	if *tournament {
		*pf = "planaria-tournament"
	}
	factory, err := sim.NamedPrefetcher(*pf)
	if err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.SampleEvery = *sampleEvery
	cfg.SampleEveryCycles = *sampleCycles
	cfg.ParallelChannels = *parallel
	if *subshards == 0 {
		*subshards = sim.AutoSubShards()
	}
	cfg.SubShards = *subshards
	// Event tracing: -trace-out needs the per-channel rings; -attrib and
	// -debug-addr only need the attribution counters (ring size 0).
	if *traceOut != "" {
		cfg.Events = &events.Config{RingSize: events.DefaultRingSize}
	} else if *attrib || *debugAddr != "" {
		cfg.Events = &events.Config{}
	}
	var counters *events.RunCounters
	if *progress || *debugAddr != "" {
		counters = &events.RunCounters{}
		counters.SetTotal(int64(records))
		cfg.Counters = counters
	}
	var reg *telemetry.Registry
	if enableTelemetry {
		reg = telemetry.NewRegistry()
		cfg.Telemetry = reg
	}
	eng := sim.New(cfg)

	var debug *obs.DebugServer
	if *debugAddr != "" {
		d, err := obs.StartDebugServer(*debugAddr, obs.DebugConfig{
			Counters:   counters,
			Recorder:   eng.Events(),
			Telemetry:  reg,
			Tool:       "planaria-sim",
			Workload:   name,
			Prefetcher: eng.PrefetcherName(),
		})
		if err != nil {
			fatal(err)
		}
		debug = d
		defer debug.Close()
		logger.Info("debug endpoint ready", "url", "http://"+debug.Addr()+"/")
	}
	var stopProgress func()
	if *progress {
		stopProgress = startProgressPrinter(counters)
		defer stopProgress()
	}

	var stopProfile func() error
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		stopProfile = stop
		defer stop()
	}

	man := obs.NewManifest("planaria-sim")
	man.Workload, man.Prefetcher = name, eng.PrefetcherName()
	man.TraceLen, man.Requests = records, records
	man.Warmup = *warmup
	man.SampleEvery = *sampleEvery
	man.Seed = seed
	start := time.Now()

	// Ctrl-C / SIGTERM cancel the run cooperatively: the engine stops at
	// the next chunk boundary and hands back a partial report, which is
	// printed (and written as an artifact) like any other degraded run.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	rep, err := eng.RunWarmStreamCtx(ctx, s, name, *warmup)
	stopSignals()
	if stopProgress != nil {
		stopProgress()
	}
	if err != nil && !rep.Truncated {
		// Nothing ran (e.g. a warmup fraction on an unsized stream): a
		// configuration error, not a degraded run — no partial results
		// worth salvaging.
		fatal(err)
	}
	man.WallTimeSec = time.Since(start).Seconds()
	man.RecordFailure(err, &rep)
	if err != nil {
		reason := "failed"
		if errors.Is(err, context.Canceled) {
			reason = "interrupted"
		}
		logger.Error("run "+reason+"; partial report covers records before the failure position",
			"err", err, "failed_at", rep.FailedAt)
	}

	fmt.Print(rep)
	if *verbose {
		fmt.Printf("\ncache: %+v\n", rep.Cache)
		fmt.Printf("dram:  %+v\n", rep.DRAM)
		fmt.Printf("queue: %+v\n", rep.Prefetch)
		fmt.Printf("late prefetch hits: %d\n", rep.LatePrefetchHits)
		fmt.Printf("cycles: %d\n", rep.Cycles)
	}

	// Event-level outputs. All of these are exported even on a truncated
	// run — a trace of the records before a failure is exactly what one
	// debugs with.
	var attribSnap *events.AttribSnapshot
	if rec := eng.Events(); rec != nil {
		attribSnap = rec.Attrib()
	}
	if *attrib && attribSnap != nil {
		printAttrib(attribSnap)
	}
	if *traceOut != "" {
		if werr := writeChromeTrace(*traceOut, eng, name); werr != nil {
			fatal(werr)
		}
		fmt.Printf("wrote %s (Chrome trace-event JSON; open in ui.perfetto.dev)\n", *traceOut)
	}
	if *jsonPath != "" {
		art := obs.Artifact{Manifest: man, Report: &rep, Attribution: attribSnap}
		if err := obs.WriteFile(*jsonPath, art); err != nil {
			fatal(err)
		}
		samples := 0
		if rep.Series != nil {
			samples = len(rep.Series.Samples)
		}
		fmt.Printf("wrote %s (%d time-series samples)\n", *jsonPath, samples)
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fatal(err)
		}
	}
	if err != nil {
		// Degraded run: everything salvageable was printed and written;
		// the exit status still reports the failure. os.Exit skips the
		// deferred cleanups, so flush the profile and close the debug
		// server explicitly.
		if stopProfile != nil {
			stopProfile()
		}
		if debug != nil {
			debug.Close()
		}
		os.Exit(1)
	}
}

// startProgressPrinter logs a one-line progress report every second: records
// done, live req/s and — on telemetry-enabled runs — the live p99 demand read
// latency from the merged DRAM histogram. The returned stop function is
// idempotent.
func startProgressPrinter(c *events.RunCounters) func() {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				p := c.Progress()
				attrs := []any{
					"records", p.Records,
					"req_per_s", int64(p.ReqPerSec),
				}
				if p.Total > 0 {
					attrs = append(attrs,
						"total", p.Total,
						"pct", fmt.Sprintf("%.1f", 100*p.Fraction),
						"eta_s", int64(p.ETASec))
				}
				if p.P99DemandLatCycles > 0 {
					attrs = append(attrs, "p99_demand_lat_cycles", p.P99DemandLatCycles)
				}
				logger.Info("progress", attrs...)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// printAttrib renders the attribution table the way docs/TRACING.md shows it:
// one row per sub-prefetcher with its lifecycle totals, then the arbitration
// suppression histogram.
func printAttrib(s *events.AttribSnapshot) {
	fmt.Println("\nprefetch lifecycle attribution (event-level):")
	fmt.Printf("  %-10s %10s %10s %10s %10s %14s\n",
		"origin", "issued", "filled", "used", "late", "evicted-unused")
	for _, o := range s.Origins {
		fmt.Printf("  %-10s %10d %10d %10d %10d %14d\n",
			o.Origin, o.Issued, o.Filled, o.Used, o.Late, o.EvictedUnused)
	}
	if len(s.Suppression) > 0 {
		fmt.Println("  arbitration suppression reasons:")
		for _, r := range []string{
			"slp-priority", "no-metadata", "disabled",
			"leader-region", "meta-trust", "meta-fallback",
		} {
			if n, ok := s.Suppression[r]; ok {
				fmt.Printf("    %-14s %10d\n", r, n)
			}
		}
	}
	fmt.Printf("  learning: %d SLP promotions, %d SLP snapshots, %d TLP neighbor matches\n",
		s.SLPPromotions, s.SLPSnapshots, s.TLPNeighborMatches)
	if s.DroppedEvents > 0 {
		fmt.Printf("  (ring overflow dropped %d events; attribution counters are unaffected)\n",
			s.DroppedEvents)
	}
}

// writeChromeTrace exports the engine's event rings to path.
func writeChromeTrace(path string, eng *sim.Engine, workload string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := events.TraceMeta{Tool: "planaria-sim", Workload: workload, Prefetcher: eng.PrefetcherName()}
	if err := events.WriteChromeTrace(f, eng.Events(), meta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
