// Command planaria-sim runs the memory-system simulator on one workload (a
// catalog app or a trace file) under one prefetcher and prints the full
// report.
//
// Usage:
//
//	planaria-sim -app CFM -pf planaria -n 400000
//	planaria-sim -trace trace.bin -pf spp
//
// Observability (see docs/OBSERVABILITY.md):
//
//	planaria-sim -app CFM -pf planaria -json out.json -sample-every 50000
//	planaria-sim -app CFM -pf planaria -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "CFM", "catalog application abbreviation (see Table 2)")
	traceFile := flag.String("trace", "", "binary trace file (overrides -app)")
	pf := flag.String("pf", "planaria", fmt.Sprintf("prefetcher %v", sim.PrefetcherNames()))
	n := flag.Int("n", 800_000, "requests to generate when using -app")
	verbose := flag.Bool("v", false, "print detailed DRAM/cache counters")
	warmup := flag.Float64("warmup", 0, "fraction of the trace run before statistics start (0 disables)")
	parallel := flag.Bool("parallel", true, "run the four channel slices concurrently (bit-identical reports; -parallel=false forces the serial engine)")
	stream := flag.Bool("stream", true, "stream records to the engine in O(chunk) memory instead of materializing the trace (bit-identical reports; -stream=false materializes)")
	jsonPath := flag.String("json", "", "write a JSON run artifact (manifest + report + time series) to this path")
	sampleEvery := flag.Uint64("sample-every", 0, "emit a windowed time-series sample every N requests (0 disables)")
	sampleCycles := flag.Uint64("sample-cycles", 0, "emit a windowed time-series sample every N trace cycles (0 disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile (runtime/pprof) to this path")
	flag.Parse()

	// Build the record stream: from a binary trace file (never materialized
	// when -stream; the file's size declares the record count so warmup
	// fractions still work) or from the seeded workload generator.
	var (
		s       trace.Stream
		name    string
		seed    int64
		records int
	)
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		name = *traceFile
		if *stream {
			rs := trace.NewReader(f).Stream()
			fi, err := f.Stat()
			if err != nil {
				fatal(err)
			}
			if rc := trace.RecordCount(fi.Size()); rc >= 0 {
				rs.WithLen(rc)
				records = rc
			}
			s = rs
		} else {
			tt, err := trace.ReadAllFrom(f)
			if err != nil {
				fatal(err)
			}
			s, records = tt.Stream(), len(tt)
		}
	} else {
		p, ok := workloads.ByAbbr(*app)
		if !ok {
			fatal(fmt.Errorf("unknown app %q (have %v)", *app, workloads.Abbrs()))
		}
		name, seed, records = p.Abbr, p.Seed, *n
		if *stream {
			s = p.Stream(*n)
		} else {
			s = p.Generate(*n).Stream()
		}
	}

	factory, err := sim.NamedPrefetcher(*pf)
	if err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.SampleEvery = *sampleEvery
	cfg.SampleEveryCycles = *sampleCycles
	cfg.ParallelChannels = *parallel
	eng := sim.New(cfg)

	var stopProfile func() error
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		stopProfile = stop
		defer stop()
	}

	man := obs.NewManifest("planaria-sim")
	man.Workload, man.Prefetcher = name, eng.PrefetcherName()
	man.TraceLen, man.Requests = records, records
	man.Warmup = *warmup
	man.SampleEvery = *sampleEvery
	man.Seed = seed
	start := time.Now()

	// Ctrl-C / SIGTERM cancel the run cooperatively: the engine stops at
	// the next chunk boundary and hands back a partial report, which is
	// printed (and written as an artifact) like any other degraded run.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	rep, err := eng.RunWarmStreamCtx(ctx, s, name, *warmup)
	stopSignals()
	if err != nil && !rep.Truncated {
		// Nothing ran (e.g. a warmup fraction on an unsized stream): a
		// configuration error, not a degraded run — no partial results
		// worth salvaging.
		fatal(err)
	}
	man.WallTimeSec = time.Since(start).Seconds()
	man.RecordFailure(err, &rep)
	if err != nil {
		reason := "failed"
		if errors.Is(err, context.Canceled) {
			reason = "interrupted"
		}
		fmt.Fprintf(os.Stderr, "planaria-sim: run %s: %v\nplanaria-sim: partial report covers records before position %d\n",
			reason, err, rep.FailedAt)
	}

	fmt.Print(rep)
	if *verbose {
		fmt.Printf("\ncache: %+v\n", rep.Cache)
		fmt.Printf("dram:  %+v\n", rep.DRAM)
		fmt.Printf("queue: %+v\n", rep.Prefetch)
		fmt.Printf("late prefetch hits: %d\n", rep.LatePrefetchHits)
		fmt.Printf("cycles: %d\n", rep.Cycles)
	}
	if *jsonPath != "" {
		if err := obs.WriteFile(*jsonPath, obs.Artifact{Manifest: man, Report: &rep}); err != nil {
			fatal(err)
		}
		samples := 0
		if rep.Series != nil {
			samples = len(rep.Series.Samples)
		}
		fmt.Printf("wrote %s (%d time-series samples)\n", *jsonPath, samples)
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fatal(err)
		}
	}
	if err != nil {
		// Degraded run: everything salvageable was printed and written;
		// the exit status still reports the failure. os.Exit skips the
		// deferred profile stop, so flush it explicitly.
		if stopProfile != nil {
			stopProfile()
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "planaria-sim:", err)
	os.Exit(1)
}
