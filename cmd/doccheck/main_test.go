package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMarkdown(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "GOOD.md"), strings.Join([]string{
		"# Title here",
		"## A section, with `code` and **bold**!",
		"Link back to [readme](../README.md) and to",
		"[the section](#a-section-with-code-and-bold).",
		"External [ok](https://example.com/x#y) is skipped.",
		"```",
		"[not a link](inside/a/code.block)",
		"```",
	}, "\n"))
	write(t, filepath.Join(dir, "README.md"), strings.Join([]string{
		"# Readme",
		"[good](docs/GOOD.md#title-here)",
		"[missing file](docs/NOPE.md)",
		"[missing anchor](docs/GOOD.md#no-such-heading)",
	}, "\n"))

	files, err := collectMarkdown([]string{filepath.Join(dir, "README.md"), filepath.Join(dir, "docs")})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("collectMarkdown = %v, want 2 files", files)
	}
	problems := checkMarkdown(files)
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want exactly the two planted breaks", problems)
	}
	for _, want := range []string{"NOPE.md", "no-such-heading"} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no problem mentions %q: %v", want, problems)
		}
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Title here":                             "title-here",
		"A section, with `code` and **b**!":      "a-section-with-code-and-b",
		"SLP — storage-level (the paper's §4.1)": "slp--storage-level-the-papers-41",
		"Which doc do I read?":                   "which-doc-do-i-read",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckPkgDocs(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "p.go"), `// Package p is a doccheck fixture.
package p

// Documented is fine.
type Documented struct{}

// Method is fine.
func (Documented) Method() {}

func (Documented) Naked() {}

type Undocumented struct{}

// Grouped constants share one doc comment.
const (
	A = iota
	B
)

var Exposed = 1

type hidden struct{}

// methods on unexported receivers are exempt even when exported.
func (hidden) Exported() {}

func internal() {}
`)
	write(t, filepath.Join(dir, "p_test.go"), `package p

func TestHelperWithoutDoc() {} // test files are excluded entirely
`)

	problems, err := checkPkgDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range problems {
		i := strings.Index(p, "exported ")
		names = append(names, p[i:])
	}
	want := []string{
		"exported method Naked has no doc comment",
		"exported type Undocumented has no doc comment",
		"exported var Exposed has no doc comment",
	}
	if len(problems) != len(want) {
		t.Fatalf("problems = %v, want %v", problems, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("problem %d = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestRepoDocsClean runs the two checks over the repository's own docs and
// the internal/prefetch package — the same invocation CI uses — so a broken
// link or an undocumented export fails `go test` locally too.
func TestRepoDocsClean(t *testing.T) {
	root := "../.."
	files, err := collectMarkdown([]string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "docs"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if problems := checkMarkdown(files); len(problems) > 0 {
		t.Errorf("markdown problems:\n%s", strings.Join(problems, "\n"))
	}
	problems, err := checkPkgDocs(filepath.Join(root, "internal", "prefetch"))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Errorf("doc-comment problems:\n%s", strings.Join(problems, "\n"))
	}
}
