// doccheck is the documentation guardrail behind the CI docs job: it
// verifies that relative markdown links (including #anchors) resolve, and
// that every exported identifier in the given Go packages carries a doc
// comment. Standard library only.
//
// Usage:
//
//	go run ./cmd/doccheck -md README.md -md docs -pkg ./internal/prefetch
//
// Each -md argument is a markdown file or a directory of *.md files; each
// -pkg argument is a Go package directory (non-recursive, test files are
// ignored). Problems are printed one per line and the exit status is 1 if
// any were found.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var mds, pkgs multiFlag
	flag.Var(&mds, "md", "markdown file or directory to link-check (repeatable)")
	flag.Var(&pkgs, "pkg", "Go package directory to doc-comment-check (repeatable)")
	flag.Parse()
	if len(mds) == 0 && len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "doccheck: nothing to do (pass -md and/or -pkg)")
		os.Exit(2)
	}

	var problems []string
	files, err := collectMarkdown(mds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	problems = append(problems, checkMarkdown(files)...)
	for _, dir := range pkgs {
		ps, err := checkPkgDocs(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}

	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// collectMarkdown expands the -md arguments into a sorted list of .md files.
func collectMarkdown(args []string) ([]string, error) {
	seen := map[string]bool{}
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			seen[a] = true
			continue
		}
		ents, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
				seen[filepath.Join(a, e.Name())] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out, nil
}

// linkRe matches inline markdown links [text](target) and
// [text](target "title"). Images (![alt](…)) match too via the [text] part.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdown verifies every relative link in the given files: the target
// file must exist, and a #fragment must name a heading anchor in the target
// (GitHub slug rules). External schemes and bare in-repo code spans are
// ignored.
func checkMarkdown(files []string) []string {
	var problems []string
	anchors := map[string]map[string]bool{} // md path -> available anchors
	anchorsOf := func(path string) map[string]bool {
		if a, ok := anchors[path]; ok {
			return a
		}
		a := headingAnchors(path)
		anchors[path] = a
		return a
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", f, err))
			continue
		}
		for n, line := range strings.Split(stripFencedBlocks(string(data)), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				path, frag, _ := strings.Cut(target, "#")
				dest := f
				if path != "" {
					dest = filepath.Join(filepath.Dir(f), path)
					if _, err := os.Stat(dest); err != nil {
						problems = append(problems,
							fmt.Sprintf("%s:%d: broken link %q: %s does not exist", f, n+1, target, dest))
						continue
					}
				}
				if frag == "" {
					continue
				}
				if !strings.HasSuffix(dest, ".md") {
					continue // cannot anchor-check non-markdown targets
				}
				if !anchorsOf(dest)[strings.ToLower(frag)] {
					problems = append(problems,
						fmt.Sprintf("%s:%d: broken anchor %q: no heading %q in %s", f, n+1, target, frag, dest))
				}
			}
		}
	}
	return problems
}

// stripFencedBlocks blanks out ``` fenced code blocks (line structure is
// preserved so reported line numbers stay correct).
func stripFencedBlocks(s string) string {
	lines := strings.Split(s, "\n")
	fenced := false
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "```") {
			fenced = !fenced
			lines[i] = ""
			continue
		}
		if fenced {
			lines[i] = ""
		}
	}
	return strings.Join(lines, "\n")
}

// headingAnchors returns the set of GitHub-style anchors for a markdown
// file's headings: lowercase, markdown formatting stripped, non-alphanumerics
// dropped, spaces to hyphens, duplicates suffixed -1, -2, …
func headingAnchors(path string) map[string]bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	out := map[string]bool{}
	counts := map[string]int{}
	for _, line := range strings.Split(stripFencedBlocks(string(data)), "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == trimmed || (text != "" && text[0] != ' ') {
			continue // not a heading (e.g. a #fragment in prose)
		}
		slug := slugify(strings.TrimSpace(text))
		if n := counts[slug]; n > 0 {
			out[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			out[slug] = true
		}
		counts[slug]++
	}
	return out
}

var inlineMd = regexp.MustCompile("`([^`]*)`|\\*\\*([^*]*)\\*\\*|\\*([^*]*)\\*|\\[([^\\]]*)\\]\\([^)]*\\)")

// slugify lowercases a heading and reduces it to a GitHub anchor.
func slugify(h string) string {
	h = inlineMd.ReplaceAllString(h, "$1$2$3$4")
	var b strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// checkPkgDocs parses the package in dir (tests excluded) and reports every
// exported identifier — type, function, method, const, var — that has no doc
// comment. A doc comment on a const/var/type group covers the whole group.
func checkPkgDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || methodOfUnexported(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Doc != nil {
						continue // group doc covers every spec
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									kind := "var"
									if d.Tok == token.CONST {
										kind = "const"
									}
									report(n.Pos(), kind, n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// methodOfUnexported reports whether f is a method whose receiver base type
// is unexported (such methods are invisible in godoc and exempt).
func methodOfUnexported(f *ast.FuncDecl) bool {
	if f.Recv == nil || len(f.Recv.List) == 0 {
		return false
	}
	t := f.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}
