// Command experiments regenerates the paper's evaluation figures and tables
// on the synthetic workload catalog.
//
// Usage:
//
//	experiments [-n requests] [-run id]
//
// where id is one of: all, fig2, fig4, fig5, fig7, fig8, fig9, fig10,
// tab-ipc, tab-traffic, tab-storage.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", 800_000, "requests per application trace")
	warmup := flag.Float64("warmup", 0.2, "fraction of each trace run before statistics start (0 < w < 0.9; negative disables)")
	run := flag.String("run", "all", "experiment id (all, fig2, fig4, fig5, fig7, fig8, fig9, fig9b, fig10, tab-ipc, tab-traffic, tab-storage, cache-study, abl-coord, abl-dist, abl-pt, csv)")
	flag.Parse()

	opts := experiments.Options{Requests: *n, Warmup: *warmup}
	w := os.Stdout
	var err error
	switch *run {
	case "all":
		err = experiments.RunAll(w, opts)
	case "fig2":
		experiments.Fig2(w, opts)
	case "fig4":
		experiments.Fig4(w, opts)
	case "fig5":
		experiments.Fig5(w, opts)
	case "fig7":
		_, err = experiments.Fig7(w, opts)
	case "fig8", "tab-ipc", "tab-traffic", "fig10":
		r, e := experiments.Fig7(w, opts)
		if e != nil {
			err = e
			break
		}
		switch *run {
		case "fig8":
			experiments.Fig8(w, r)
		case "tab-ipc":
			experiments.TableIPC(w, r)
		case "tab-traffic":
			experiments.TableTraffic(w, r)
		case "fig10":
			experiments.Fig10(w, r)
		}
	case "fig9":
		_, _, err = experiments.Fig9(w, opts)
	case "fig9b":
		_, err = experiments.Fig9b(w, opts)
	case "tab-storage":
		experiments.TableStorage(w)
	case "cache-study":
		_, err = experiments.CacheStudy(w, opts, nil)
	case "abl-coord":
		_, err = experiments.AblationCoordinator(w, opts)
	case "abl-dist":
		_, err = experiments.AblationDistance(w, opts, nil)
	case "abl-pt":
		_, err = experiments.AblationPTSize(w, opts, nil)
	case "csv":
		r, e := experiments.Sweep(experiments.EvalPrefetchers, opts)
		if e != nil {
			err = e
			break
		}
		err = experiments.WriteCSV(w, r)
	default:
		err = fmt.Errorf("unknown experiment %q", *run)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
