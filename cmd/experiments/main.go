// Command experiments regenerates the paper's evaluation figures and tables
// on the synthetic workload catalog.
//
// Usage:
//
//	experiments [-n requests] [-run id]
//
// where id is one of: all, fig2, fig4, fig5, fig7, fig8, fig9, fig10,
// tab-ipc, tab-traffic, tab-storage.
//
// Observability (see docs/OBSERVABILITY.md):
//
//	experiments -run fig7 -json fig7.json            # one combined artifact
//	experiments -run fig7 -artifact-dir out/         # one artifact per cell
//	experiments -run fig8 -sample-every 50000 -json fig8.json
//	experiments -validate-artifact out.json          # parse + validate, exit
//	experiments -validate-trace run.trace.json       # parse + validate a Chrome trace, exit
//	experiments -validate-metrics scrape.prom        # parse + validate a /metrics scrape, exit
//	experiments -run all -debug-addr localhost:6060  # live progress + pprof while the sweep runs
//
// Sweep farm (see EXPERIMENTS.md, "Sweep farm"): -repeats > 1 or -grid
// switches to the resumable grid runner, which checkpoints one artifact per
// (cell, repeat) into -artifact-dir, resumes whatever is already there, and
// reports mean ± 95 % CI per metric:
//
//	experiments -repeats 5 -artifact-dir farm/ -csv farm.csv   # R=5 with resume
//	experiments -grid grid.json -artifact-dir farm/ -latex t.tex
//
// Interrupting a farm run (SIGINT/SIGTERM) checkpoints cleanly; re-running
// the same command executes only the jobs that have no valid artifact.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweepfarm"
	"repro/internal/telemetry"
)

// logger is the process-wide structured logger; replaced right after flag
// parsing with one honoring -log-level/-log-json. The default keeps fail()
// usable for flag-validation errors that fire before the replacement.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	n := flag.Int("n", 800_000, "requests per application trace")
	warmup := flag.Float64("warmup", 0.2, "fraction of each trace run before statistics start (0 < w < 0.9; negative disables)")
	parallel := flag.Bool("parallel", true, "run each simulation's channel slices concurrently (-parallel=false forces the serial engine)")
	subshards := flag.Int("subshards", 0, "address-hashed sub-shards per channel for every run (power of two; 0 = auto from GOMAXPROCS, 1 = the unsharded paper geometry; values > 1 change the simulated geometry and scale each run past 4 workers)")
	stream := flag.Bool("stream", true, "stream records to each engine in O(chunk) memory (bit-identical reports; -stream=false materializes traces)")
	run := flag.String("run", "all", "experiment id (all, fig2, fig4, fig5, fig7, fig8, fig9, fig9b, fig10, tab-ipc, tab-traffic, tab-storage, cache-study, abl-coord, abl-dist, abl-pt, csv)")
	jsonPath := flag.String("json", "", "write a combined JSON run artifact to this path")
	artifactDir := flag.String("artifact-dir", "", "write one JSON artifact per (app, prefetcher) sweep cell into this directory")
	sampleEvery := flag.Uint64("sample-every", 0, "emit a windowed time-series sample every N requests inside each run (0 disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile (runtime/pprof) to this path")
	validate := flag.String("validate-artifact", "", "read and validate the JSON artifact at this path, then exit (CI smoke check)")
	validateTrace := flag.String("validate-trace", "", "read and validate the Chrome trace-event JSON at this path, then exit (CI smoke check)")
	validateMetrics := flag.String("validate-metrics", "", "read and validate the Prometheus text exposition at this path (a saved /metrics scrape), then exit (CI smoke check)")
	debugAddr := flag.String("debug-addr", "", "serve live sweep introspection (progress, expvar, pprof) on this address, e.g. localhost:6060")
	extraPF := flag.String("extra-pf", "", "comma-separated extra prefetchers added to the fig7/csv sweep set, e.g. planaria-tournament (see sim.PrefetcherNames)")
	repeats := flag.Int("repeats", 1, "seeded repeats per sweep cell; values > 1 run the resumable sweep farm and report mean ± 95% CI (see EXPERIMENTS.md)")
	gridPath := flag.String("grid", "", "JSON grid spec (apps × prefetchers × variants × repeats) run on the sweep farm; overrides -run")
	csvOut := flag.String("csv", "", "farm mode: write the grouped statistics CSV (mean/std/ci95 per metric) to this path")
	latexOut := flag.String("latex", "", "farm mode: write LaTeX hit-rate and AMAT tables to this path")
	logLevel := flag.String("log-level", "info", "minimum structured-log level on stderr: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines instead of key=value text")
	flag.Parse()

	level, lerr := telemetry.ParseLevel(*logLevel)
	if lerr != nil {
		fail(lerr)
	}
	logger = telemetry.NewLogger(os.Stderr, level, *logJSON).
		With("tool", "experiments", "run_id", telemetry.NewRunID())

	var extras []string
	if *extraPF != "" {
		for _, pf := range strings.Split(*extraPF, ",") {
			pf = strings.TrimSpace(pf)
			if pf == "" {
				continue
			}
			if _, err := sim.NamedPrefetcher(pf); err != nil {
				fail(err)
			}
			extras = append(extras, pf)
		}
	}

	if *validate != "" {
		art, err := obs.ReadFile(*validate)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: valid (schema %d, tool %s, %d cells, %d summary values)\n",
			*validate, art.Manifest.SchemaVersion, art.Manifest.Tool,
			len(art.Cells), len(art.Summary))
		return
	}
	if *validateTrace != "" {
		f, err := os.Open(*validateTrace)
		if err != nil {
			fail(err)
		}
		n, err := events.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: valid (%d trace events)\n", *validateTrace, n)
		return
	}
	if *validateMetrics != "" {
		f, err := os.Open(*validateMetrics)
		if err != nil {
			fail(err)
		}
		err = telemetry.ValidateExposition(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: valid Prometheus text exposition\n", *validateMetrics)
		return
	}

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer stop()
	}

	if *subshards == 0 {
		*subshards = sim.AutoSubShards()
	}
	opts := experiments.Options{
		Requests:         *n,
		Warmup:           *warmup,
		SampleEvery:      *sampleEvery,
		ArtifactDir:      *artifactDir,
		Serial:           !*parallel,
		SubShards:        *subshards,
		NoStream:         !*stream,
		ExtraPrefetchers: extras,
	}
	if *debugAddr != "" {
		counters := &events.RunCounters{}
		counters.Start()
		opts.Counters = counters
		d, derr := obs.StartDebugServer(*debugAddr, obs.DebugConfig{
			Counters: counters,
			Tool:     "experiments",
			Workload: *run,
		})
		if derr != nil {
			fail(derr)
		}
		defer d.Close()
		logger.Info("debug endpoint ready", "url", "http://"+d.Addr()+"/")
	}
	w := os.Stdout

	if *gridPath != "" || *repeats > 1 {
		if err := runFarm(w, *gridPath, *repeats, opts, *csvOut, *latexOut); err != nil {
			fail(err)
		}
		return
	}

	man := obs.NewManifest("experiments")
	man.Requests = *n
	man.Warmup = *warmup
	man.SampleEvery = *sampleEvery
	start := time.Now()

	// Each case prints its text tables and, where natural, contributes
	// sweep cells and headline scalars to the combined -json artifact.
	summary := map[string]float64{}
	var reps map[string]map[string]metrics.Report
	var err error
	switch *run {
	case "all":
		reps, err = experiments.RunAll(w, opts)
	case "fig2":
		summary["fig2_timeline_accesses"] = float64(experiments.Fig2(w, opts))
	case "fig4":
		summary["fig4_overlap_rate_avg"] = experiments.Fig4(w, opts)
	case "fig5":
		at4, at64 := experiments.Fig5(w, opts)
		summary["fig5_neighbors_at4"] = at4
		summary["fig5_neighbors_at64"] = at64
	case "fig7":
		reps, err = experiments.Fig7(w, opts)
	case "fig8", "tab-ipc", "tab-traffic", "fig10":
		r, e := experiments.Fig7(w, opts)
		if e != nil {
			err = e
			break
		}
		reps = r
		switch *run {
		case "fig8":
			vsNone, vsBOP, vsSPP := experiments.Fig8(w, r)
			summary["fig8_amat_reduction_vs_none"] = vsNone
			summary["fig8_amat_reduction_vs_bop"] = vsBOP
			summary["fig8_amat_reduction_vs_spp"] = vsSPP
		case "tab-ipc":
			vsNone, vsBOP, vsSPP := experiments.TableIPC(w, r)
			summary["ipc_uplift_vs_none"] = vsNone
			summary["ipc_uplift_vs_bop"] = vsBOP
			summary["ipc_uplift_vs_spp"] = vsSPP
		case "tab-traffic":
			bop, spp, pl := experiments.TableTraffic(w, r)
			summary["traffic_overhead_bop"] = bop
			summary["traffic_overhead_spp"] = spp
			summary["traffic_overhead_planaria"] = pl
		case "fig10":
			pl, bop, spp := experiments.Fig10(w, r)
			summary["power_overhead_planaria"] = pl
			summary["power_overhead_bop"] = bop
			summary["power_overhead_spp"] = spp
		}
	case "fig9":
		var avg float64
		avg, _, err = experiments.Fig9(w, opts)
		summary["fig9_slp_share_avg"] = avg
	case "fig9b":
		var avg float64
		avg, err = experiments.Fig9b(w, opts)
		summary["fig9b_slp_share_avg"] = avg
	case "tab-storage":
		var kb float64
		kb, err = experiments.TableStorage(w)
		summary["planaria_storage_kb"] = kb
	case "cache-study":
		var amats map[string]float64
		amats, err = experiments.CacheStudy(w, opts, nil)
		for k, v := range amats {
			summary["cache_study_amat:"+k] = v
		}
	case "abl-coord":
		_, err = experiments.AblationCoordinator(w, opts)
	case "abl-dist":
		_, err = experiments.AblationDistance(w, opts, nil)
	case "abl-pt":
		_, err = experiments.AblationPTSize(w, opts, nil)
	case "csv":
		r, e := experiments.Sweep(opts.EvalSet(), opts)
		if e != nil {
			err = e
			break
		}
		reps = r
		err = experiments.WriteCSV(w, r)
	default:
		err = fmt.Errorf("unknown experiment %q", *run)
	}
	// A failed run still writes the artifact when one was requested: the
	// sweep functions hand back the cells that completed, and the manifest
	// records the failure — a degraded run leaves evidence, not nothing
	// (docs/OBSERVABILITY.md, "Failure model"). The exit status reports
	// the failure either way.
	man.RecordFailure(err, nil)
	if *jsonPath != "" {
		man.WallTimeSec = time.Since(start).Seconds()
		art := obs.Artifact{Manifest: man}
		if len(summary) > 0 {
			art.Summary = summary
		}
		if len(reps) > 0 {
			art.Cells = experiments.Cells(reps)
		}
		if werr := obs.WriteFile(*jsonPath, art); werr != nil {
			fail(werr)
		}
		partial := ""
		if err != nil {
			partial = "partial, "
		}
		fmt.Fprintf(w, "wrote %s (%s%d cells, %d summary values)\n",
			*jsonPath, partial, len(art.Cells), len(art.Summary))
	}
	if err != nil {
		fail(err)
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fail(err)
		}
	}
}

// runFarm executes the sweep-farm path: a grid loaded from -grid (or the
// default catalog × EvalSet grid), R repeats per cell, resumable through
// opts.ArtifactDir. SIGINT/SIGTERM cancel at the next chunk boundary —
// completed jobs stay checkpointed, so re-running the same command picks up
// where the interrupt landed.
func runFarm(w io.Writer, gridPath string, repeats int, opts experiments.Options, csvOut, latexOut string) error {
	grid := sweepfarm.Grid{Prefetchers: opts.EvalSet()}
	if gridPath != "" {
		g, err := sweepfarm.LoadGrid(gridPath)
		if err != nil {
			return err
		}
		grid = g
	}
	if repeats > 1 {
		// An explicit -repeats wins over the grid file's value; -repeats 1
		// (the flag default) defers to the file.
		grid.Repeats = repeats
	}
	if err := grid.Validate(); err != nil {
		return err
	}

	// Mirror Options.warmup's 0→default resolution: the farm's Config holds
	// the resolved fraction (no sentinel), so equal effective configurations
	// hash — and resume — equally.
	warmup := opts.Warmup
	if warmup == 0 {
		warmup = 0.2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := &sweepfarm.Runner{
		Grid: grid,
		Base: sweepfarm.Config{
			Requests:    opts.Requests,
			Warmup:      warmup,
			Serial:      opts.Serial,
			SubShards:   opts.SubShards,
			NoStream:    opts.NoStream,
			SampleEvery: opts.SampleEvery,
		},
		ArtifactDir: opts.ArtifactDir,
		Counters:    opts.Counters,
		Verbose:     os.Stderr,
		Materialize: experiments.TraceFor,
	}
	res, runErr := runner.Run(ctx)
	if res != nil {
		sweepfarm.TableHitRate(w, res)
		sweepfarm.TableAMAT(w, res)
		sweepfarm.TablePower(w, res)
		fmt.Fprintf(w, "\nfarm: %d jobs executed, %d resumed, %d failed\n",
			res.Executed, res.Resumed, res.Failed)
		if csvOut != "" {
			if err := writeFarmFile(csvOut, func(f io.Writer) error {
				return sweepfarm.WriteGroupedCSV(f, res)
			}); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", csvOut)
		}
		if latexOut != "" {
			if err := writeFarmFile(latexOut, func(f io.Writer) error {
				if err := sweepfarm.WriteLaTeX(f, res, "hit_rate"); err != nil {
					return err
				}
				return sweepfarm.WriteLaTeX(f, res, "amat_cycles")
			}); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", latexOut)
		}
	}
	return runErr
}

func writeFarmFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
