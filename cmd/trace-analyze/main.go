// Command trace-analyze runs the paper's trace-characterisation experiments
// (Figures 2, 4 and 5) on a trace file or a generated catalog workload.
//
// Usage:
//
//	trace-analyze -app CFM -n 400000 -what overlap
//	trace-analyze -trace fort.bin -what neighbors
//	trace-analyze -app HoK -what snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "CFM", "catalog application abbreviation")
	traceFile := flag.String("trace", "", "binary trace file (overrides -app)")
	n := flag.Int("n", 400_000, "requests to generate when using -app")
	what := flag.String("what", "all", "analysis: overlap, neighbors, snapshot, stats, all")
	diff := flag.Int("diff", 4, "bitmap difference threshold for the neighbour test")
	flag.Parse()

	var (
		t    trace.Trace
		name string
	)
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tt, err := trace.ReadAllFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		t, name = tt, *traceFile
	} else {
		p, ok := workloads.ByAbbr(*app)
		if !ok {
			fatal(fmt.Errorf("unknown app %q (have %v)", *app, workloads.Abbrs()))
		}
		t, name = p.Generate(*n), p.Abbr
	}

	fmt.Printf("trace: %s (%d records)\n", name, len(t))
	run := func(kind string) {
		switch kind {
		case "stats":
			fmt.Print(trace.Analyze(t))
		case "overlap":
			fmt.Printf("footprint overlap rate (Fig. 4 method): %.1f%%\n", 100*analysis.OverlapRate(t))
		case "neighbors":
			dists := []uint64{4, 8, 16, 32, 64}
			props := analysis.NeighborProportion(t, dists, *diff)
			fmt.Printf("learnable neighbours (diff <= %d bits):\n", *diff)
			for i, d := range dists {
				fmt.Printf("  distance <= %-3d  %5.1f%%\n", d, 100*props[i])
			}
		case "snapshot":
			hot := analysis.HottestPages(t, 1)
			if len(hot) == 0 {
				fmt.Println("empty trace")
				return
			}
			pts := analysis.PageTimeline(t, hot[0])
			fmt.Printf("footprint snapshot of hottest page %#x (%d accesses):\n", uint64(hot[0]), len(pts))
			limit := pts
			if len(limit) > 80 {
				limit = limit[:80]
			}
			for _, pt := range limit {
				fmt.Printf("  cycle %10d  block %2d |%s*\n", pt.Cycle, pt.Offset, strings.Repeat(" ", pt.Offset))
			}
			if len(pts) > 80 {
				fmt.Printf("  ... (%d more)\n", len(pts)-80)
			}
		default:
			fatal(fmt.Errorf("unknown analysis %q", kind))
		}
	}
	if *what == "all" {
		for _, k := range []string{"stats", "overlap", "neighbors", "snapshot"} {
			run(k)
		}
		return
	}
	run(*what)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace-analyze:", err)
	os.Exit(1)
}
