package planaria_test

import (
	"fmt"

	planaria "repro"
)

// The simplest way to use the library: one call simulates a catalog workload
// under a named prefetcher.
func ExampleRunWorkload() {
	res, err := planaria.RunWorkload("CFM", "planaria", 50_000)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Workload, res.Prefetcher, res.DemandReads+res.DemandWrites)
	// Output: CFM planaria 50000
}

// Building a simulator explicitly allows configuration and streaming input.
func ExampleNewSimulator() {
	sim, err := planaria.NewSimulator(planaria.Options{
		Prefetcher:  "spp",
		CachePolicy: "drrip",
	})
	if err != nil {
		panic(err)
	}
	// Feed accesses one by one (here: two reads of the same block, the
	// second of which hits).
	_ = sim.Step(planaria.Access{Addr: 0x4000, Cycle: 0})
	_ = sim.Step(planaria.Access{Addr: 0x4000, Cycle: 500})
	res := sim.Finish()
	fmt.Printf("%.2f\n", res.HitRate)
	// Output: 0.50
}

// The workload catalog mirrors Table 2 of the paper.
func ExampleWorkloads() {
	for _, w := range planaria.Workloads()[:3] {
		fmt.Println(w.Abbr, w.Name)
	}
	// Output:
	// CFM Cross Fire Mobile
	// HoK Honor of Kings
	// Id-V Identity V
}

// A custom prefetcher plugs in through Options.Custom; this one prefetches
// the next block after every miss.
func ExamplePrefetcher() {
	type nextLine struct{ planaria.Prefetcher }
	_ = nextLine{} // see examples/customprefetcher for a full implementation

	sim, err := planaria.NewSimulator(planaria.Options{
		Custom: func(channel int) planaria.Prefetcher { return simpleNextLine{} },
	})
	if err != nil {
		panic(err)
	}
	_ = sim.Step(planaria.Access{Addr: 0x0, Cycle: 0})     // miss, prefetches 0x40
	_ = sim.Step(planaria.Access{Addr: 0x40, Cycle: 1000}) // covered by the prefetch
	res := sim.Finish()
	fmt.Printf("%.2f\n", res.HitRate)
	// Output: 0.50
}

type simpleNextLine struct{}

func (simpleNextLine) Name() string                { return "next" }
func (simpleNextLine) StorageBits() int            { return 0 }
func (simpleNextLine) Train(planaria.Access, bool) {}
func (s simpleNextLine) Issue(a planaria.Access, miss bool) []uint64 {
	if !miss {
		return nil
	}
	return []uint64{a.Addr + 64}
}
