package planaria

import (
	"strings"
	"testing"
)

func TestWorkloadsCatalog(t *testing.T) {
	ws := Workloads()
	if len(ws) != 10 {
		t.Fatalf("workloads = %d, want 10", len(ws))
	}
	for _, w := range ws {
		if w.Name == "" || w.Abbr == "" || w.Description == "" {
			t.Fatalf("incomplete workload info %+v", w)
		}
	}
}

func TestGenerateTraceShape(t *testing.T) {
	tr := GenerateTrace("CFM", 5000)
	if len(tr) != 5000 {
		t.Fatalf("trace length %d", len(tr))
	}
	var prev uint64
	for i, a := range tr {
		if a.Cycle < prev {
			t.Fatalf("cycle order violated at %d", i)
		}
		prev = a.Cycle
		if a.Addr%64 != 0 {
			t.Fatalf("unaligned address %#x", a.Addr)
		}
		if a.Device == "" {
			t.Fatal("missing device")
		}
	}
}

func TestGenerateTracePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenerateTrace("XYZ", 10)
}

func TestRunWorkloadEveryPrefetcher(t *testing.T) {
	for _, pf := range Prefetchers() {
		res, err := RunWorkload("HI3", pf, 20000)
		if err != nil {
			t.Fatalf("%s: %v", pf, err)
		}
		if res.DemandReads == 0 || res.AMAT <= 0 {
			t.Fatalf("%s: degenerate result %+v", pf, res)
		}
	}
}

func TestPlanariaBeatsNoneOnWorkload(t *testing.T) {
	base, err := RunWorkload("KO", "none", 150_000)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := RunWorkload("KO", "planaria", 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if pl.HitRate <= base.HitRate {
		t.Fatalf("planaria hit rate %.3f not above baseline %.3f", pl.HitRate, base.HitRate)
	}
	if pl.AMAT >= base.AMAT {
		t.Fatalf("planaria AMAT %.1f not below baseline %.1f", pl.AMAT, base.AMAT)
	}
	if pl.IPC <= base.IPC {
		t.Fatalf("planaria IPC %.3f not above baseline %.3f", pl.IPC, base.IPC)
	}
	// Power-efficiency claim: Planaria's extra traffic stays small.
	if float64(pl.DRAMTraffic) > 1.10*float64(base.DRAMTraffic) {
		t.Fatalf("planaria traffic %d exceeds +10%% of baseline %d", pl.DRAMTraffic, base.DRAMTraffic)
	}
}

func TestSimulatorRejectsBadConfig(t *testing.T) {
	if _, err := NewSimulator(Options{Prefetcher: "bogus"}); err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
	if _, err := NewSimulator(Options{CacheBytes: 100}); err == nil {
		t.Fatal("invalid cache geometry accepted")
	}
}

func TestStepAfterFinishRejected(t *testing.T) {
	s, err := NewSimulator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(Access{Addr: 0x1000}); err != nil {
		t.Fatal(err)
	}
	s.Finish()
	if err := s.Step(Access{Addr: 0x2000, Cycle: 10}); err == nil {
		t.Fatal("step after finish accepted")
	}
}

func TestStepRejectsUnknownDevice(t *testing.T) {
	s, _ := NewSimulator(Options{})
	if err := s.Step(Access{Addr: 0x1000, Device: "quantum"}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

// echoPrefetcher next-line prefetches through the public interface.
type echoPrefetcher struct{ issued int }

func (e *echoPrefetcher) Name() string       { return "echo" }
func (e *echoPrefetcher) StorageBits() int   { return 8 }
func (e *echoPrefetcher) Train(Access, bool) {}
func (e *echoPrefetcher) Issue(a Access, miss bool) []uint64 {
	if !miss {
		return nil
	}
	e.issued++
	return []uint64{a.Addr + 64}
}

func TestCustomPrefetcherPlugsIn(t *testing.T) {
	var pfs []*echoPrefetcher
	s, err := NewSimulator(Options{Custom: func(ch int) Prefetcher {
		p := &echoPrefetcher{}
		pfs = append(pfs, p)
		return p
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pfs) != 4 {
		t.Fatalf("custom constructor called %d times, want 4 (one per channel)", len(pfs))
	}
	res, err := s.Run(GenerateTrace("CFM", 20000))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range pfs {
		total += p.issued
	}
	if total == 0 {
		t.Fatal("custom prefetcher never consulted")
	}
	if res.PrefetchIssued == 0 {
		t.Fatal("custom prefetches did not reach the queue")
	}
	if res.Prefetcher != "echo" {
		t.Fatalf("prefetcher name %q", res.Prefetcher)
	}
}

func TestResultFieldsPopulated(t *testing.T) {
	res, err := RunWorkload("TikT", "planaria", 60000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "TikT" || !strings.HasPrefix(res.Prefetcher, "planaria") {
		t.Fatalf("labels %q/%q", res.Workload, res.Prefetcher)
	}
	if res.EnergyPJ <= 0 || res.AvgPowerMW <= 0 || res.Cycles == 0 {
		t.Fatalf("energy/cycles unset: %+v", res)
	}
	if res.StorageBits <= 0 {
		t.Fatal("storage bits unset")
	}
	if res.Accuracy <= 0 || res.Accuracy > 1 || res.Coverage <= 0 || res.Coverage > 1 {
		t.Fatalf("accuracy/coverage out of range: %+v", res)
	}
}
