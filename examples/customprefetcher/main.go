// Custom prefetcher example: plug a user-defined prefetcher into the
// simulator through the public Prefetcher interface and race it against the
// built-ins on a TLP-friendly workload.
//
// The custom prefetcher here is a tiny "page ditto" heuristic: remember the
// last footprint bitmap seen for each of a handful of pages and, on a miss
// to a page with no history, replay the most recently completed page's
// footprint — a deliberately crude cousin of Planaria's TLP.
//
// Because it also implements Peek (a side-effect-free prediction), ditto
// qualifies as a planaria.Component and can enter the tournament
// meta-prefetcher next to the built-in set: the set-dueling selector then
// learns per page region whether ditto or one of the built-ins deserves to
// issue (docs/PREFETCHERS.md).
//
//	go run ./examples/customprefetcher
package main

import (
	"fmt"
	"log"

	planaria "repro"
)

const (
	blockBytes    = 64
	pageBytes     = 4096
	segmentBlocks = 16
)

// dittoPrefetcher is the example implementation of planaria.Prefetcher.
type dittoPrefetcher struct {
	// lastBits is the footprint (16-bit bitmap of the channel segment)
	// of the most recently active page, replayed onto history-less pages.
	lastPage uint64
	lastBits uint16
	curPage  uint64
	curBits  uint16
}

func (d *dittoPrefetcher) Name() string     { return "ditto" }
func (d *dittoPrefetcher) StorageBits() int { return 2 * (64 + 16) }

func (d *dittoPrefetcher) Train(a planaria.Access, miss bool) {
	page := a.Addr / pageBytes
	segOff := uint(a.Addr / blockBytes % segmentBlocks)
	if page != d.curPage {
		// The previous page's accumulation is "complete": publish it.
		if d.curBits != 0 {
			d.lastPage, d.lastBits = d.curPage, d.curBits
		}
		d.curPage, d.curBits = page, 0
	}
	d.curBits |= 1 << segOff
}

func (d *dittoPrefetcher) Issue(a planaria.Access, miss bool) []uint64 {
	return d.Peek(a, miss)
}

// Peek is the prediction without any learning side effects (ditto's Issue
// never had any, so they coincide); implementing it makes dittoPrefetcher a
// planaria.Component, eligible for Options.TournamentCustom below.
func (d *dittoPrefetcher) Peek(a planaria.Access, miss bool) []uint64 {
	if !miss || d.lastBits == 0 {
		return nil
	}
	page := a.Addr / pageBytes
	if page == d.lastPage {
		return nil
	}
	segBase := a.Addr / blockBytes / segmentBlocks * segmentBlocks * blockBytes
	var out []uint64
	for off := uint(0); off < segmentBlocks; off++ {
		if d.lastBits&(1<<off) != 0 {
			target := segBase + uint64(off)*blockBytes
			if target != a.Addr {
				out = append(out, target)
			}
		}
	}
	return out
}

func main() {
	const app = "Fort" // neighbour-rich workload (TLP's home turf)
	const requests = 200_000
	trace := planaria.GenerateTrace(app, requests)

	type row struct {
		label string
		run   func() (planaria.Result, error)
	}
	rows := []row{
		{"none", func() (planaria.Result, error) {
			s, err := planaria.NewSimulator(planaria.Options{Prefetcher: "none"})
			if err != nil {
				return planaria.Result{}, err
			}
			return s.Run(trace)
		}},
		{"ditto (custom)", func() (planaria.Result, error) {
			s, err := planaria.NewSimulator(planaria.Options{
				Custom: func(ch int) planaria.Prefetcher { return &dittoPrefetcher{} },
			})
			if err != nil {
				return planaria.Result{}, err
			}
			return s.Run(trace)
		}},
		{"planaria", func() (planaria.Result, error) {
			s, err := planaria.NewSimulator(planaria.Options{Prefetcher: "planaria"})
			if err != nil {
				return planaria.Result{}, err
			}
			return s.Run(trace)
		}},
		{"tournament+ditto", func() (planaria.Result, error) {
			// ditto joins the default tournament set (planaria, stride,
			// markov, accel); the set-dueling selector decides per page
			// region which of the five issues.
			s, err := planaria.NewSimulator(planaria.Options{
				TournamentCustom: func(ch int) []planaria.Component {
					return []planaria.Component{&dittoPrefetcher{}}
				},
			})
			if err != nil {
				return planaria.Result{}, err
			}
			return s.Run(trace)
		}},
	}

	fmt.Printf("workload %s, %d requests\n\n", app, requests)
	fmt.Printf("%-16s %10s %10s %10s %10s\n", "prefetcher", "hit rate", "AMAT", "accuracy", "traffic")
	for _, r := range rows {
		res, err := r.run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %9.1f%% %10.1f %9.1f%% %10d\n",
			r.label, 100*res.HitRate, res.AMAT, 100*res.Accuracy, res.DRAMTraffic)
	}
	fmt.Println("\nthe crude ditto heuristic helps a little; Planaria's coordinated")
	fmt.Println("SLP+TLP does the same job with far better accuracy. In the")
	fmt.Println("tournament, ditto only issues where the selector learned to trust")
	fmt.Println("it, so a weak component cannot drag the composite down.")
}
