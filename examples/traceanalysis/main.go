// Trace analysis: reproduce the paper's two trace-characterisation
// observations through the public API.
//
// Observation 1 (Section 3.1): per-page footprint snapshots are stable
// across program phases — the window overlap rate exceeds 80 %.
//
// Observation 2 (Section 4.1): a significant fraction of pages have a
// "learnable neighbour" close in address space with a nearly identical
// footprint, and the fraction grows with the distance threshold.
//
//	go run ./examples/traceanalysis
package main

import (
	"fmt"
	"log"

	planaria "repro"
)

func main() {
	const requests = 150_000
	dists := []uint64{4, 8, 16, 32, 64}

	fmt.Printf("%-6s %10s", "app", "overlap")
	for _, d := range dists {
		fmt.Printf("  nbr@%-3d", d)
	}
	fmt.Println()

	var overlapSum float64
	nbrSums := make([]float64, len(dists))
	apps := planaria.Workloads()
	for _, w := range apps {
		trace := planaria.GenerateTrace(w.Abbr, requests)
		overlap, err := planaria.OverlapRate(trace)
		if err != nil {
			log.Fatal(err)
		}
		props, err := planaria.NeighborProportion(trace, dists, 4)
		if err != nil {
			log.Fatal(err)
		}
		overlapSum += overlap
		fmt.Printf("%-6s %9.1f%%", w.Abbr, 100*overlap)
		for i, p := range props {
			nbrSums[i] += p
			fmt.Printf("  %5.1f%%", 100*p)
		}
		fmt.Println()
	}
	n := float64(len(apps))
	fmt.Printf("%-6s %9.1f%%", "avg", 100*overlapSum/n)
	for _, s := range nbrSums {
		fmt.Printf("  %5.1f%%", 100*s/n)
	}
	fmt.Println()
	fmt.Println("\npaper: overlap > 80% on average; neighbours 26.95% @4 → 39.26% @64")
}
