// App sweep: run every Table 2 application under every built-in prefetcher
// and print the hit-rate / AMAT / power matrix — a compact rendition of the
// paper's Figures 7, 8 and 10 through the public API.
//
//	go run ./examples/appsweep [-n requests]
package main

import (
	"flag"
	"fmt"
	"log"

	planaria "repro"
)

func main() {
	n := flag.Int("n", 150_000, "requests per application")
	flag.Parse()

	prefetchers := []string{"none", "bop", "spp", "planaria"}
	fmt.Printf("%-6s", "app")
	for _, pf := range prefetchers {
		fmt.Printf("  %22s", pf)
	}
	fmt.Println()
	fmt.Printf("%-6s", "")
	for range prefetchers {
		fmt.Printf("  %8s %6s %6s", "hit", "amat", "mW")
	}
	fmt.Println()

	type agg struct{ amatNone, amatPl float64 }
	var sums agg
	apps := planaria.Workloads()
	for _, w := range apps {
		trace := planaria.GenerateTrace(w.Abbr, *n)
		fmt.Printf("%-6s", w.Abbr)
		var results []planaria.Result
		for _, pf := range prefetchers {
			s, err := planaria.NewSimulator(planaria.Options{Prefetcher: pf})
			if err != nil {
				log.Fatal(err)
			}
			s.SetWorkloadName(w.Abbr)
			res, err := s.Run(trace)
			if err != nil {
				log.Fatal(err)
			}
			results = append(results, res)
			fmt.Printf("  %7.1f%% %6.1f %6.1f", 100*res.HitRate, res.AMAT, res.AvgPowerMW)
		}
		fmt.Println()
		sums.amatNone += results[0].AMAT
		sums.amatPl += results[len(results)-1].AMAT
	}
	fmt.Printf("\nPlanaria mean AMAT reduction vs no prefetcher: %.1f%%\n",
		100*(1-sums.amatPl/sums.amatNone))
}
