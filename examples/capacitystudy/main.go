// Capacity study: the paper's opening observation (Section 1) is that
// neither state-of-the-art replacement policies nor more capacity
// significantly improve the system cache, because the traffic reaching it is
// what the higher-level caches could not catch. This example sweeps policy
// and capacity through the public API and contrasts them with prefetching
// on the baseline configuration.
//
//	go run ./examples/capacitystudy
package main

import (
	"fmt"
	"log"

	planaria "repro"
)

func main() {
	const requests = 150_000
	apps := []string{"CFM", "HoK", "KO"}

	type variant struct {
		label string
		opts  planaria.Options
	}
	variants := []variant{
		{"4MB lru", planaria.Options{Prefetcher: "none"}},
		{"4MB srrip", planaria.Options{Prefetcher: "none", CachePolicy: "srrip"}},
		{"4MB drrip", planaria.Options{Prefetcher: "none", CachePolicy: "drrip"}},
		{"8MB lru", planaria.Options{Prefetcher: "none", CacheBytes: 2 << 20}},
		{"4MB + planaria", planaria.Options{Prefetcher: "planaria"}},
	}

	fmt.Printf("%-16s %12s %12s\n", "variant", "hit rate", "AMAT")
	for _, v := range variants {
		var hit, amat float64
		for _, app := range apps {
			s, err := planaria.NewSimulator(v.opts)
			if err != nil {
				log.Fatal(err)
			}
			s.SetWorkloadName(app)
			res, err := s.Run(planaria.GenerateTrace(app, requests))
			if err != nil {
				log.Fatal(err)
			}
			hit += res.HitRate
			amat += res.AMAT
		}
		n := float64(len(apps))
		fmt.Printf("%-16s %11.1f%% %12.1f\n", v.label, 100*hit/n, amat/n)
	}
	fmt.Println("\nbetter replacement buys a point or two; doubling capacity a bit more;")
	fmt.Println("the dedicated prefetcher on the baseline cache beats both.")
}
