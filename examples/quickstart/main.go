// Quickstart: simulate one mobile workload under the Planaria prefetcher and
// the no-prefetcher baseline, and print the headline comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	planaria "repro"
)

func main() {
	const app = "CFM" // Cross Fire Mobile, Table 2
	const requests = 200_000

	fmt.Printf("simulating %d requests of %s ...\n\n", requests, app)
	trace := planaria.GenerateTrace(app, requests)

	baselineSim, err := planaria.NewSimulator(planaria.Options{Prefetcher: "none"})
	if err != nil {
		log.Fatal(err)
	}
	baselineSim.SetWorkloadName(app)
	baseline, err := baselineSim.Run(trace)
	if err != nil {
		log.Fatal(err)
	}

	planariaSim, err := planaria.NewSimulator(planaria.Options{Prefetcher: "planaria"})
	if err != nil {
		log.Fatal(err)
	}
	planariaSim.SetWorkloadName(app)
	withPF, err := planariaSim.Run(trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "no prefetch", "planaria")
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "SC hit rate", 100*baseline.HitRate, 100*withPF.HitRate)
	fmt.Printf("%-22s %12.1f %12.1f\n", "AMAT (cycles)", baseline.AMAT, withPF.AMAT)
	fmt.Printf("%-22s %12.3f %12.3f\n", "est. IPC", baseline.IPC, withPF.IPC)
	fmt.Printf("%-22s %12d %12d\n", "DRAM transfers", baseline.DRAMTraffic, withPF.DRAMTraffic)
	fmt.Printf("%-22s %12.1f %12.1f\n", "avg power (mW)", baseline.AvgPowerMW, withPF.AvgPowerMW)
	fmt.Printf("\nprefetch accuracy %.1f%%, coverage %.1f%%, metadata %.1f KB\n",
		100*withPF.Accuracy, 100*withPF.Coverage, float64(withPF.StorageBits)/8/1024)

	amatCut := (baseline.AMAT - withPF.AMAT) / baseline.AMAT
	fmt.Printf("AMAT reduction: %.1f%% (paper reports 24.3%% on average over ten apps)\n", 100*amatCut)
}
