// Package sweepfarm runs experiment grids as a resumable, repeated,
// statistically-rigorous job queue — the machinery behind
// `experiments -run all -repeats R` and the thin experiments.Sweep wrapper.
//
// A Grid is the cross product (apps × prefetchers × config variants); each
// cell of the grid runs R seeded repeats. Every (cell, repeat) pair is one
// job: jobs fan out to a bounded worker pool, each job simulates one full
// run (internal/sim) and, when an artifact directory is configured,
// checkpoints its result to disk as a versioned JSON artifact in the
// internal/obs schema (v3: repeat index, seed and configuration hash in the
// manifest) the moment it completes.
//
// Seeding is deterministic: repeat 0 keeps the catalog profile's seed — so
// an R=1 grid reproduces the paper's single-pass point estimates (and the
// legacy Sweep output) bit for bit — while repeats ≥ 1 derive fresh seeds
// from the cell key and repeat index alone. Two runs of the same grid
// therefore simulate exactly the same set of traces, regardless of worker
// count, interruption or host.
//
// Resume: on startup the runner scans the artifact directory and accepts a
// job's artifact only when its manifest matches the planned job exactly —
// same workload, prefetcher, repeat index, seed, request count and
// configuration hash, and no recorded failure. Matching jobs are loaded
// instead of executed; anything missing, stale or failed is re-run. An
// interrupted grid (SIGINT cancels the context; in-flight jobs stop at the
// next chunk boundary and are not checkpointed) thus continues where it
// left off, and the resumed aggregates are byte-identical to an
// uninterrupted run (pinned under -race by TestRunnerInterruptResume).
//
// Aggregation reduces each complete cell's repeats to mean, sample standard
// deviation and a Student-t 95 % confidence half-interval per metric.
// Paper-ready outputs: a grouped CSV (mean/std/ci columns per metric), a
// LaTeX table and the Figure 7/8/10-style text tables annotated with ±CI
// when R > 1. See EXPERIMENTS.md ("Sweep farm") and docs/OBSERVABILITY.md
// (schema v3).
package sweepfarm
