package sweepfarm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config is the full simulation configuration of one grid cell — every
// knob that changes the numbers a run produces. Its Hash fingerprints the
// cell for resume validation: a cached artifact is only reused when the
// planned job hashes to the same value.
type Config struct {
	Requests    int     // trace length per run
	Warmup      float64 // resolved warmup fraction in [0, 0.9] (no 0→default sentinel)
	Serial      bool    // force the single-goroutine engine
	SubShards   int     // sim.Config.SubShards (simulated geometry)
	NoStream    bool    // materialize traces instead of streaming
	SampleEvery uint64  // windowed time-series sampling period
}

// normalize clamps the warmup fraction the same way the engine would, so
// equal effective configurations hash equally.
func (c Config) normalize() Config {
	switch {
	case math.IsNaN(c.Warmup) || c.Warmup < 0:
		c.Warmup = 0
	case c.Warmup > 0.9:
		c.Warmup = 0.9
	}
	if c.Requests <= 0 {
		c.Requests = 800_000
	}
	return c
}

// Hash returns the configuration fingerprint recorded in artifact
// manifests (obs.Manifest.ConfigHash, schema v3): a 64-bit FNV-1a over the
// canonical field encoding, rendered as 16 hex digits. Streaming vs
// materialized input is excluded — reports are pinned bit-identical either
// way — so artifacts stay valid across that debugging switch.
func (c Config) Hash() string {
	c = c.normalize()
	h := fnv.New64a()
	fmt.Fprintf(h, "requests=%d|warmup=%g|serial=%t|subshards=%d|sample=%d",
		c.Requests, c.Warmup, c.Serial, c.SubShards, c.SampleEvery)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Variant is one named configuration override inside a grid. Zero/nil
// fields inherit the runner's base configuration; pointers distinguish "not
// set" from an explicit zero (e.g. warmup 0 = disabled).
type Variant struct {
	Name        string   `json:"name"`
	Requests    int      `json:"requests,omitempty"`
	Warmup      *float64 `json:"warmup,omitempty"`
	SubShards   *int     `json:"sub_shards,omitempty"`
	SampleEvery *uint64  `json:"sample_every,omitempty"`
}

// apply overlays the variant on a base configuration.
func (v Variant) apply(base Config) Config {
	if v.Requests > 0 {
		base.Requests = v.Requests
	}
	if v.Warmup != nil {
		base.Warmup = *v.Warmup
	}
	if v.SubShards != nil {
		base.SubShards = *v.SubShards
	}
	if v.SampleEvery != nil {
		base.SampleEvery = *v.SampleEvery
	}
	return base.normalize()
}

// Grid is the experiment cross product: apps × prefetchers × variants,
// each cell repeated Repeats times with deterministic seeds.
type Grid struct {
	// Apps lists catalog abbreviations (workloads.Abbrs); empty selects
	// the full Table 2 catalog.
	Apps []string `json:"apps,omitempty"`
	// Prefetchers lists named prefetchers (sim.PrefetcherNames); required.
	Prefetchers []string `json:"prefetchers"`
	// Variants lists configuration overrides; empty means one unnamed
	// base variant.
	Variants []Variant `json:"variants,omitempty"`
	// Repeats is R, the seeded repeats per cell; values below 1 mean 1.
	Repeats int `json:"repeats,omitempty"`
}

// normalized fills the grid's defaults: all catalog apps, one base
// variant, at least one repeat.
func (g Grid) normalized() Grid {
	if len(g.Apps) == 0 {
		g.Apps = workloads.Abbrs()
	}
	if len(g.Variants) == 0 {
		g.Variants = []Variant{{}}
	}
	if g.Repeats < 1 {
		g.Repeats = 1
	}
	return g
}

// Validate rejects grids that could not run cleanly: unknown apps or
// prefetchers, duplicates (which would collide on artifact paths), or no
// prefetchers. LoadGrid and cmd/experiments validate eagerly for fast
// feedback; Runner.Run enforces only the structural part, so a single
// unresolvable cell degrades to a per-job error instead of sinking the
// whole grid (the Sweep partial-results contract).
func (g Grid) Validate() error {
	if err := g.validateStructure(); err != nil {
		return err
	}
	g = g.normalized()
	for _, a := range g.Apps {
		if _, ok := workloads.ByAbbr(a); !ok {
			return fmt.Errorf("sweepfarm: unknown app %q", a)
		}
	}
	for _, pf := range g.Prefetchers {
		if _, err := sim.NamedPrefetcher(pf); err != nil {
			return fmt.Errorf("sweepfarm: %w", err)
		}
	}
	return nil
}

// validateStructure checks the grid shape alone (no name resolution).
func (g Grid) validateStructure() error {
	g = g.normalized()
	if len(g.Prefetchers) == 0 {
		return errors.New("sweepfarm: grid has no prefetchers")
	}
	seen := map[string]bool{}
	for _, a := range g.Apps {
		if seen["a:"+a] {
			return fmt.Errorf("sweepfarm: duplicate app %q", a)
		}
		seen["a:"+a] = true
	}
	for _, pf := range g.Prefetchers {
		if seen["p:"+pf] {
			return fmt.Errorf("sweepfarm: duplicate prefetcher %q", pf)
		}
		seen["p:"+pf] = true
	}
	for _, v := range g.Variants {
		if seen["v:"+v.Name] {
			return fmt.Errorf("sweepfarm: duplicate variant name %q", v.Name)
		}
		seen["v:"+v.Name] = true
	}
	return nil
}

// LoadGrid reads a JSON grid spec (see EXPERIMENTS.md, "Sweep farm") and
// validates it. Unknown fields are rejected so a typoed knob fails loudly
// instead of silently running the default.
func LoadGrid(path string) (Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return Grid{}, fmt.Errorf("sweepfarm: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweepfarm: grid %s: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		return Grid{}, fmt.Errorf("%w (grid %s)", err, path)
	}
	return g, nil
}

// CellKey identifies one grid cell.
type CellKey struct {
	App        string
	Prefetcher string
	Variant    string // variant name; "" = the base variant
}

// String renders "app/prefetcher" or "app/prefetcher@variant".
func (k CellKey) String() string {
	if k.Variant == "" {
		return k.App + "/" + k.Prefetcher
	}
	return k.App + "/" + k.Prefetcher + "@" + k.Variant
}

// Job is one schedulable unit: a cell repeat with its resolved seed and
// configuration.
type Job struct {
	Cell   CellKey
	Repeat int
	Seed   int64
	Config Config
}

// String renders "app/prefetcher[@variant] r<N>".
func (j Job) String() string { return fmt.Sprintf("%s r%d", j.Cell, j.Repeat) }

// ArtifactName is the job's checkpoint file inside the artifact directory.
func (j Job) ArtifactName() string {
	v := j.Cell.Variant
	if v == "" {
		v = "base"
	}
	return fmt.Sprintf("%s_%s_%s_r%d.json",
		sanitize(j.Cell.App), sanitize(j.Cell.Prefetcher), sanitize(v), j.Repeat)
}

// sanitize maps a key component onto the filename-safe alphabet.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		}
		return '_'
	}, s)
}

// SeedFor derives the workload seed of one cell repeat. Repeat 0 keeps the
// catalog profile's own seed (base), so single-repeat grids reproduce the
// paper's point estimates — and the legacy Sweep output — bit for bit.
// Later repeats hash the cell key and repeat index (FNV-1a), independent of
// everything else, so the same grid always simulates the same trace set.
func SeedFor(key CellKey, repeat int, base int64) int64 {
	if repeat == 0 {
		return base
	}
	h := fnv.New64a()
	io.WriteString(h, key.App)
	h.Write([]byte{0})
	io.WriteString(h, key.Prefetcher)
	h.Write([]byte{0})
	io.WriteString(h, key.Variant)
	fmt.Fprintf(h, "\x00r%d", repeat)
	s := int64(h.Sum64() >> 1) // keep it non-negative for readability
	if s == 0 {
		s = int64(repeat)
	}
	return s
}

// RepeatResult is one completed repeat of a cell.
type RepeatResult struct {
	Seed    int64
	Resumed bool // satisfied from a prior run's artifact, not executed
	Report  metrics.Report
}

// CellResult collects a cell's repeats (indexed by repeat; nil entries
// failed or were cancelled) and, once complete, its per-metric aggregate.
type CellResult struct {
	Key     CellKey
	Config  Config
	Repeats []*RepeatResult
	// Agg holds mean/std/CI95 per metric name (see Metrics), computed for
	// complete cells only.
	Agg Aggregate
}

// Complete reports whether every repeat of the cell produced a report.
func (c *CellResult) Complete() bool {
	for _, r := range c.Repeats {
		if r == nil {
			return false
		}
	}
	return len(c.Repeats) > 0
}

// Result is the outcome of one Runner.Run: every planned cell in
// deterministic plan order plus scheduling counters.
type Result struct {
	Grid     Grid          // normalized grid that was planned
	Cells    []*CellResult // plan order: app-major, then prefetcher, then variant
	Executed int           // jobs simulated in this run
	Resumed  int           // jobs satisfied from the artifact directory
	Failed   int           // jobs that errored or were cancelled
}

// ReportGrid flattens the named variant's complete cells into the
// map[app][prefetcher]Report shape the experiments figures consume, using
// each cell's repeat-0 report (the catalog-seeded run).
func (r *Result) ReportGrid(variant string) map[string]map[string]metrics.Report {
	out := make(map[string]map[string]metrics.Report)
	for _, c := range r.Cells {
		if c.Key.Variant != variant || !c.Complete() {
			continue
		}
		if out[c.Key.App] == nil {
			out[c.Key.App] = make(map[string]metrics.Report)
		}
		out[c.Key.App][c.Key.Prefetcher] = c.Repeats[0].Report
	}
	return out
}

// Runner executes one grid. Zero-value fields select defaults; only Grid
// and Base are required.
type Runner struct {
	Grid Grid
	Base Config // cell configuration before variant overlays

	// ArtifactDir enables checkpointing and resume: every completed job
	// writes one schema-v3 artifact here, and Run starts by scanning the
	// directory, re-executing only jobs without a valid matching
	// artifact. Empty disables both (everything runs in memory).
	ArtifactDir string

	// Workers bounds the pool; 0 means GOMAXPROCS.
	Workers int

	// Counters, when non-nil, receives additive processed-record progress
	// from every executed run, with SetTotal primed to the records the
	// plan still has to simulate (resumed jobs excluded).
	Counters *events.RunCounters

	// Verbose, when non-nil, receives one line per scheduling decision
	// (resumed/done/failed per job).
	Verbose io.Writer

	// Materialize supplies traces for NoStream cells (the hook through
	// which experiments plugs its byte-capped TraceFor cache); nil falls
	// back to direct generation. Streaming cells never call it.
	Materialize func(workloads.Profile, int) trace.Trace

	// JobDone, when non-nil, is called after a job's result is
	// checkpointed and recorded — the hook the resume tests use to cancel
	// mid-grid at a deterministic point. Called concurrently from worker
	// goroutines.
	JobDone func(Job, metrics.Report)
}

// Run plans the grid, resumes whatever the artifact directory already
// holds, executes the remaining jobs on the worker pool, and aggregates
// complete cells. On failure it degrades instead of discarding the grid:
// the returned Result still carries every completed cell, and the error
// joins one entry per failed job (cell key and repeat in each message) via
// errors.Join. Cancelling ctx stops workers at the next chunk boundary;
// in-flight jobs are not checkpointed, so a later Run over the same
// artifact directory re-executes exactly the unfinished jobs.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	grid := r.Grid.normalized()
	if err := grid.validateStructure(); err != nil {
		return nil, err
	}

	// Plan: deterministic order — app-major, then prefetcher, variant,
	// repeat — so error lists, artifacts and outputs are stable.
	type planned struct {
		job  Job
		cell *CellResult
	}
	var cells []*CellResult
	var plan []planned
	for _, app := range grid.Apps {
		p, _ := workloads.ByAbbr(app)
		for _, pf := range grid.Prefetchers {
			for _, v := range grid.Variants {
				key := CellKey{App: app, Prefetcher: pf, Variant: v.Name}
				cfg := v.apply(r.Base.normalize())
				cell := &CellResult{Key: key, Config: cfg, Repeats: make([]*RepeatResult, grid.Repeats)}
				cells = append(cells, cell)
				for rep := 0; rep < grid.Repeats; rep++ {
					plan = append(plan, planned{
						job:  Job{Cell: key, Repeat: rep, Seed: SeedFor(key, rep, p.Seed), Config: cfg},
						cell: cell,
					})
				}
			}
		}
	}

	res := &Result{Grid: grid, Cells: cells}

	// Resume scan: accept only artifacts that provably belong to the
	// planned job (see resume.go).
	resumed := make(map[int]metrics.Report)
	if r.ArtifactDir != "" {
		for i, pl := range plan {
			rep, ok := r.resumeJob(pl.job)
			if !ok {
				continue
			}
			resumed[i] = rep
			pl.cell.Repeats[pl.job.Repeat] = &RepeatResult{Seed: pl.job.Seed, Resumed: true, Report: rep}
			r.logf("resume %s (artifact %s)", pl.job, pl.job.ArtifactName())
		}
	}
	res.Resumed = len(resumed)

	if r.Counters != nil {
		var total int64
		for i, pl := range plan {
			if _, ok := resumed[i]; !ok {
				total += int64(pl.job.Config.Requests)
			}
		}
		// The counter set may be shared across sequential grids/figures
		// (cmd/experiments -debug-addr), so the expected total extends
		// whatever has already been processed instead of replacing it —
		// fraction and ETA stay meaningful mid-RunAll.
		r.Counters.SetTotal(r.Counters.Records() + total)
	}

	// The manifest template is built once: git describe is a subprocess
	// and the environment fields are identical across the grid.
	manTemplate := newManifest()

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	jobCh := make(chan int)
	go func() {
		defer close(jobCh)
		for i := range plan {
			if _, ok := resumed[i]; ok {
				continue
			}
			select {
			case jobCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	errs := make([]error, len(plan))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				pl := plan[i]
				rep, err := r.runJob(ctx, pl.job)
				if err != nil {
					errs[i] = fmt.Errorf("cell %s: %w", pl.job, err)
					r.logf("failed %s: %v", pl.job, err)
					continue
				}
				if r.ArtifactDir != "" {
					if err := r.writeJobArtifact(manTemplate, pl.job, rep); err != nil {
						errs[i] = fmt.Errorf("cell %s: %w", pl.job, err)
						continue
					}
				}
				// Each job owns its distinct Repeats slot, so no lock is
				// needed for the write (the slice itself never changes).
				pl.cell.Repeats[pl.job.Repeat] = &RepeatResult{Seed: pl.job.Seed, Report: rep}
				r.logf("done %s", pl.job)
				if r.JobDone != nil {
					r.JobDone(pl.job, rep)
				}
			}
		}()
	}
	wg.Wait()

	var joined []error
	for i, pl := range plan {
		switch {
		case errs[i] != nil:
			res.Failed++
			joined = append(joined, errs[i])
		case pl.cell.Repeats[pl.job.Repeat] == nil:
			// Never scheduled or cancelled before completing.
			res.Failed++
		default:
			if !pl.cell.Repeats[pl.job.Repeat].Resumed {
				res.Executed++
			}
		}
	}
	if err := ctx.Err(); err != nil {
		joined = append(joined, fmt.Errorf("sweepfarm: grid interrupted (%d/%d jobs done): %w",
			res.Executed+res.Resumed, len(plan), err))
	}

	for _, c := range cells {
		if c.Complete() {
			c.Agg = AggregateCell(c)
		}
	}
	return res, errors.Join(joined...)
}

// runJob simulates one cell repeat: the catalog profile reseeded for the
// repeat, the named prefetcher, and the cell's configuration, driven
// through the cancellable streaming engine (partial reports of cancelled
// runs are discarded — only completed jobs checkpoint).
func (r *Runner) runJob(ctx context.Context, j Job) (metrics.Report, error) {
	p, ok := workloads.ByAbbr(j.Cell.App)
	if !ok {
		return metrics.Report{}, fmt.Errorf("sweepfarm: unknown app %q", j.Cell.App)
	}
	p.Seed = j.Seed
	factory, err := sim.NamedPrefetcher(j.Cell.Prefetcher)
	if err != nil {
		return metrics.Report{}, err
	}
	cfg := sim.DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.SampleEvery = j.Config.SampleEvery
	cfg.ParallelChannels = !j.Config.Serial
	cfg.SubShards = j.Config.SubShards
	cfg.Counters = r.Counters
	eng := sim.New(cfg)

	var s trace.Stream
	if j.Config.NoStream {
		gen := r.Materialize
		if gen == nil {
			gen = workloads.Profile.Generate
		}
		s = gen(p, j.Config.Requests).Stream()
	} else {
		s = p.Stream(j.Config.Requests)
	}
	return eng.RunWarmStreamCtx(ctx, s, p.Abbr, j.Config.Warmup)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Verbose != nil {
		fmt.Fprintf(r.Verbose, "sweepfarm: "+format+"\n", args...)
	}
}

// writeJobArtifact checkpoints one completed job (see resume.go for the
// matching read side).
func (r *Runner) writeJobArtifact(man manifestTemplate, j Job, rep metrics.Report) error {
	return writeArtifact(filepath.Join(r.ArtifactDir, j.ArtifactName()), man, j, rep)
}
