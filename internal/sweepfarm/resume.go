package sweepfarm

// The resume protocol. Every completed job checkpoints one obs.Artifact
// (schema v3); a later run over the same directory loads a job's artifact
// instead of re-simulating only when the manifest proves it is the same
// run: workload, prefetcher, repeat index, seed, request count, warmup,
// sampling period and the full configuration hash all must match, and the
// artifact must not record a failure or a truncated report. Everything
// else — a missing file, a corrupt file, a changed configuration, a
// partial result from an interrupted run — is treated as stale and the job
// executes again. Validation is deliberately redundant (the config hash
// already covers requests/warmup/sampling): the plain fields keep
// artifacts self-describing and guard against a hash collision or a
// future hash-format change silently accepting a foreign artifact.

import (
	"repro/internal/metrics"
	"repro/internal/obs"
	"path/filepath"
)

// manifestTemplate is the per-grid constant part of every checkpoint
// manifest, captured once per Run (git describe is a subprocess).
type manifestTemplate struct{ man obs.Manifest }

func newManifest() manifestTemplate {
	return manifestTemplate{man: obs.NewManifest("sweepfarm")}
}

// writeArtifact records one completed job at path.
func writeArtifact(path string, t manifestTemplate, j Job, rep metrics.Report) error {
	man := t.man
	man.Workload = j.Cell.App
	man.Prefetcher = j.Cell.Prefetcher
	man.Requests = j.Config.Requests
	man.Warmup = j.Config.Warmup
	man.SampleEvery = j.Config.SampleEvery
	man.Seed = j.Seed
	man.Repeat = j.Repeat
	man.ConfigHash = j.Config.Hash()
	man.TraceLen = j.Config.Requests
	return obs.WriteFile(path, obs.Artifact{Manifest: man, Report: &rep})
}

// resumeJob tries to satisfy a planned job from the artifact directory.
func (r *Runner) resumeJob(j Job) (metrics.Report, bool) {
	art, err := obs.ReadFile(filepath.Join(r.ArtifactDir, j.ArtifactName()))
	if err != nil {
		return metrics.Report{}, false
	}
	if !artifactMatches(art, j) {
		return metrics.Report{}, false
	}
	return *art.Report, true
}

// artifactMatches reports whether an on-disk artifact is exactly the
// planned job's completed result.
func artifactMatches(art obs.Artifact, j Job) bool {
	m := art.Manifest
	switch {
	case art.Report == nil || art.Report.Truncated:
		return false
	case m.Failure != "":
		return false
	case m.Workload != j.Cell.App || m.Prefetcher != j.Cell.Prefetcher:
		return false
	case m.Repeat != j.Repeat || m.Seed != j.Seed:
		return false
	case m.Requests != j.Config.Requests || m.Warmup != j.Config.Warmup:
		return false
	case m.SampleEvery != j.Config.SampleEvery:
		return false
	case m.ConfigHash != j.Config.Hash():
		return false
	}
	return true
}
