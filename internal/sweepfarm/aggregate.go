package sweepfarm

import (
	"math"

	"repro/internal/metrics"
)

// Metrics lists the per-run scalar metrics the farm aggregates, in the
// column order of the grouped CSV. The names match the single-run CSV
// (experiments.WriteCSV) where the metrics overlap.
var Metrics = []string{
	"hit_rate", "amat_cycles", "ipc_est", "coverage", "accuracy",
	"traffic", "energy_uj",
}

// MetricValue extracts one named metric from a report. Unknown names
// return NaN so a typo surfaces in the output instead of reading as zero.
func MetricValue(rep metrics.Report, name string) float64 {
	switch name {
	case "hit_rate":
		return rep.HitRate()
	case "amat_cycles":
		return rep.AMAT
	case "ipc_est":
		return metrics.DefaultIPCModel().IPC(rep.AMAT)
	case "coverage":
		return rep.Coverage()
	case "accuracy":
		return rep.Accuracy()
	case "traffic":
		return float64(rep.Traffic())
	case "energy_uj":
		return rep.Energy.Total() / 1e6
	}
	return math.NaN()
}

// Stat summarises one metric over a cell's repeats.
type Stat struct {
	N    int     // repeats aggregated
	Mean float64 // sample mean
	Std  float64 // sample standard deviation (n−1 denominator; 0 when N=1)
	CI95 float64 // 95 % confidence half-interval, Student-t (0 when N=1)
}

// Aggregate maps metric name → statistic for one cell.
type Aggregate map[string]Stat

// tCrit95 holds the two-sided 95 % Student-t critical values for 1–30
// degrees of freedom; beyond 30 the normal approximation (1.96) is close
// enough for reporting purposes. With the tiny repeat counts a grid
// realistically runs (R = 3–10), using t instead of z is the difference
// between an honest interval and one ~40 % too narrow.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical returns the two-sided 95 % t critical value for df degrees of
// freedom.
func tCritical(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= len(tCrit95):
		return tCrit95[df-1]
	}
	return 1.96
}

// NewStat computes mean, sample standard deviation and the Student-t 95 %
// confidence half-interval of one sample set.
func NewStat(xs []float64) Stat {
	s := Stat{N: len(xs)}
	if s.N == 0 {
		return s
	}
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(s.N)
	if s.N == 1 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = tCritical(s.N-1) * s.Std / math.Sqrt(float64(s.N))
	return s
}

// AggregateCell reduces a complete cell's repeats to per-metric
// statistics. Repeats are indexed, not ordered by completion, so the
// aggregate is independent of worker scheduling and of how many runs were
// resumed from artifacts.
func AggregateCell(c *CellResult) Aggregate {
	agg := make(Aggregate, len(Metrics))
	xs := make([]float64, 0, len(c.Repeats))
	for _, name := range Metrics {
		xs = xs[:0]
		for _, r := range c.Repeats {
			if r != nil {
				xs = append(xs, MetricValue(r.Report, name))
			}
		}
		agg[name] = NewStat(xs)
	}
	return agg
}
