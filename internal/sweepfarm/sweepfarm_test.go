package sweepfarm_test

import (
	"bytes"
	"context"
	"encoding/csv"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sweepfarm"
)

// tiny keeps farm integration tests fast: the statistics machinery does
// not care about simulation scale, only the figure-shape tests elsewhere
// do.
const tinyRequests = 3000

func tinyConfig() sweepfarm.Config {
	return sweepfarm.Config{Requests: tinyRequests, Warmup: 0.2}
}

func tinyGrid(repeats int) sweepfarm.Grid {
	return sweepfarm.Grid{
		Apps:        []string{"CFM", "HoK"},
		Prefetchers: []string{"none", "stride"},
		Repeats:     repeats,
	}
}

func TestSeedForDeterministic(t *testing.T) {
	key := sweepfarm.CellKey{App: "CFM", Prefetcher: "planaria"}
	if got := sweepfarm.SeedFor(key, 0, 101); got != 101 {
		t.Fatalf("repeat 0 seed %d, want the catalog seed 101", got)
	}
	a := sweepfarm.SeedFor(key, 1, 101)
	b := sweepfarm.SeedFor(key, 1, 999) // base must not leak into derived seeds
	if a != b {
		t.Fatalf("derived seed depends on the base seed: %d vs %d", a, b)
	}
	if a == 101 || a == sweepfarm.SeedFor(key, 2, 101) {
		t.Fatal("derived seeds collide across repeats")
	}
	other := sweepfarm.CellKey{App: "HoK", Prefetcher: "planaria"}
	if sweepfarm.SeedFor(other, 1, 101) == a {
		t.Fatal("derived seeds collide across cells")
	}
	if a != sweepfarm.SeedFor(key, 1, 101) {
		t.Fatal("seed derivation not deterministic")
	}
	if a < 0 {
		t.Fatalf("derived seed %d negative", a)
	}
}

func TestConfigHashSensitivity(t *testing.T) {
	base := tinyConfig()
	h := base.Hash()
	if h != base.Hash() {
		t.Fatal("hash not deterministic")
	}
	mutations := []sweepfarm.Config{
		{Requests: tinyRequests + 1, Warmup: 0.2},
		{Requests: tinyRequests, Warmup: 0.3},
		{Requests: tinyRequests, Warmup: 0.2, Serial: true},
		{Requests: tinyRequests, Warmup: 0.2, SubShards: 2},
		{Requests: tinyRequests, Warmup: 0.2, SampleEvery: 500},
	}
	for i, m := range mutations {
		if m.Hash() == h {
			t.Fatalf("mutation %d did not change the hash", i)
		}
	}
	// NoStream is explicitly excluded: streamed and materialized runs are
	// pinned bit-identical, so artifacts remain valid across the switch.
	ns := base
	ns.NoStream = true
	if ns.Hash() != h {
		t.Fatal("NoStream changed the hash despite bit-identical reports")
	}
	// Warmup clamping: NaN and negatives normalise to 0 before hashing.
	nan := base
	nan.Warmup = math.NaN()
	neg := base
	neg.Warmup = -3
	if nan.Hash() != neg.Hash() {
		t.Fatal("degenerate warmups hash differently")
	}
}

func TestNewStat(t *testing.T) {
	st := sweepfarm.NewStat([]float64{1, 2, 3})
	if st.N != 3 || st.Mean != 2 {
		t.Fatalf("mean stat wrong: %+v", st)
	}
	if math.Abs(st.Std-1) > 1e-12 {
		t.Fatalf("std %v, want 1", st.Std)
	}
	// df=2 → t=4.303; CI = 4.303 * 1 / sqrt(3).
	want := 4.303 / math.Sqrt(3)
	if math.Abs(st.CI95-want) > 1e-9 {
		t.Fatalf("ci %v, want %v", st.CI95, want)
	}
	one := sweepfarm.NewStat([]float64{5})
	if one.N != 1 || one.Mean != 5 || one.Std != 0 || one.CI95 != 0 {
		t.Fatalf("single-sample stat wrong: %+v", one)
	}
	if z := sweepfarm.NewStat(nil); z.N != 0 {
		t.Fatalf("empty stat wrong: %+v", z)
	}
}

func TestGridValidate(t *testing.T) {
	cases := []struct {
		name string
		g    sweepfarm.Grid
	}{
		{"no prefetchers", sweepfarm.Grid{}},
		{"unknown app", sweepfarm.Grid{Apps: []string{"nope"}, Prefetchers: []string{"none"}}},
		{"unknown prefetcher", sweepfarm.Grid{Prefetchers: []string{"warp-drive"}}},
		{"dup app", sweepfarm.Grid{Apps: []string{"CFM", "CFM"}, Prefetchers: []string{"none"}}},
		{"dup prefetcher", sweepfarm.Grid{Prefetchers: []string{"none", "none"}}},
		{"dup variant", sweepfarm.Grid{Prefetchers: []string{"none"},
			Variants: []sweepfarm.Variant{{Name: "x"}, {Name: "x"}}}},
	}
	for _, tc := range cases {
		if err := tc.g.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := tinyGrid(3).Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
}

func TestLoadGrid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	spec := `{
		"apps": ["CFM"],
		"prefetchers": ["none", "planaria"],
		"variants": [{"name": "fast", "requests": 1000, "warmup": 0}],
		"repeats": 2
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := sweepfarm.LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Repeats != 2 || len(g.Variants) != 1 || g.Variants[0].Name != "fast" {
		t.Fatalf("grid parsed wrong: %+v", g)
	}
	if g.Variants[0].Warmup == nil || *g.Variants[0].Warmup != 0 {
		t.Fatal("explicit zero warmup lost (pointer semantics broken)")
	}

	// A typoed knob must fail loudly, not run the default silently.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"prefetchers":["none"],"repeat":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sweepfarm.LoadGrid(bad); err == nil {
		t.Fatal("unknown grid field accepted")
	}
	if _, err := sweepfarm.LoadGrid(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing grid file accepted")
	}
}

// TestRunnerRepeatsAndAggregates: an R=3 grid completes every cell with
// three distinct seeds, repeat 0 reproduces the catalog-seeded run, and
// aggregates carry N=3 statistics for every metric.
func TestRunnerRepeatsAndAggregates(t *testing.T) {
	r := &sweepfarm.Runner{Grid: tinyGrid(3), Base: tinyConfig()}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 12 || res.Resumed != 0 || res.Failed != 0 {
		t.Fatalf("scheduling counts wrong: %+v", res)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("planned %d cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if !c.Complete() {
			t.Fatalf("cell %s incomplete", c.Key)
		}
		seeds := map[int64]bool{}
		for _, rep := range c.Repeats {
			if seeds[rep.Seed] {
				t.Fatalf("cell %s: duplicate seed %d", c.Key, rep.Seed)
			}
			seeds[rep.Seed] = true
		}
		for _, m := range sweepfarm.Metrics {
			st, ok := c.Agg[m]
			if !ok || st.N != 3 {
				t.Fatalf("cell %s metric %s: stat %+v", c.Key, m, st)
			}
			if math.IsNaN(st.Mean) {
				t.Fatalf("cell %s metric %s: NaN mean", c.Key, m)
			}
		}
	}

	// Repeat 0 must be the catalog-seeded point estimate: identical to a
	// fresh single-repeat run of the same cell.
	single := &sweepfarm.Runner{
		Grid: sweepfarm.Grid{Apps: []string{"CFM"}, Prefetchers: []string{"stride"}},
		Base: tinyConfig(),
	}
	sres, err := single.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var multi metrics.Report
	for _, c := range res.Cells {
		if c.Key.App == "CFM" && c.Key.Prefetcher == "stride" {
			multi = c.Repeats[0].Report
		}
	}
	if !reflect.DeepEqual(multi, sres.Cells[0].Repeats[0].Report) {
		t.Fatal("repeat 0 differs from a fresh catalog-seeded run")
	}
}

// TestRunnerInterruptResume is the resume-correctness pin (run under -race
// in CI): an R=3 grid is cancelled mid-flight after K jobs checkpoint,
// then a second runner over the same artifact directory executes only the
// missing jobs (counted both by the scheduler and by RunCounters), and the
// final grouped CSV is byte-identical to an uninterrupted run of the same
// grid.
func TestRunnerInterruptResume(t *testing.T) {
	grid := tinyGrid(3)
	const totalJobs = 12

	// Reference: uninterrupted run.
	refDir := t.TempDir()
	ref := &sweepfarm.Runner{Grid: grid, Base: tinyConfig(), ArtifactDir: refDir}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := sweepfarm.WriteGroupedCSV(&refCSV, refRes); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after 4 jobs have checkpointed.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int32
	first := &sweepfarm.Runner{
		Grid: grid, Base: tinyConfig(), ArtifactDir: dir, Workers: 2,
		JobDone: func(sweepfarm.Job, metrics.Report) {
			if done.Add(1) == 4 {
				cancel()
			}
		},
	}
	firstRes, err := first.Run(ctx)
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interruption not surfaced: %v", err)
	}
	checkpointed := firstRes.Executed
	if checkpointed < 4 || checkpointed >= totalJobs {
		t.Fatalf("interrupted run executed %d jobs, want a strict subset ≥ 4", checkpointed)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != checkpointed {
		t.Fatalf("%d artifacts on disk, %d jobs reported executed", len(files), checkpointed)
	}

	// Resume: only the missing jobs may execute, counted by the runner
	// and cross-checked against the processed-record counters.
	counters := &events.RunCounters{}
	counters.Start()
	second := &sweepfarm.Runner{Grid: grid, Base: tinyConfig(), ArtifactDir: dir, Counters: counters}
	secondRes, err := second.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if secondRes.Resumed != checkpointed {
		t.Fatalf("resumed %d jobs, want %d", secondRes.Resumed, checkpointed)
	}
	if secondRes.Executed != totalJobs-checkpointed {
		t.Fatalf("executed %d jobs on resume, want %d", secondRes.Executed, totalJobs-checkpointed)
	}
	wantRecords := int64(secondRes.Executed) * tinyRequests
	if got := counters.Records(); got != wantRecords {
		t.Fatalf("counters saw %d records, want %d (only missing cells may run)", got, wantRecords)
	}

	// The resumed aggregate must be byte-identical to the uninterrupted
	// run.
	var resumedCSV bytes.Buffer
	if err := sweepfarm.WriteGroupedCSV(&resumedCSV, secondRes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refCSV.Bytes(), resumedCSV.Bytes()) {
		t.Fatalf("resumed aggregate differs from uninterrupted run:\n--- reference\n%s\n--- resumed\n%s",
			refCSV.String(), resumedCSV.String())
	}
}

// TestRunnerResumeStaleness: artifacts from a different configuration (or
// corrupted on disk) are re-executed, not trusted.
func TestRunnerResumeStaleness(t *testing.T) {
	dir := t.TempDir()
	grid := sweepfarm.Grid{Apps: []string{"CFM"}, Prefetchers: []string{"none"}, Repeats: 2}
	first := &sweepfarm.Runner{Grid: grid, Base: tinyConfig(), ArtifactDir: dir}
	if _, err := first.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Corrupt one artifact: only that job re-runs.
	files, err := filepath.Glob(filepath.Join(dir, "*_r0.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no r0 artifact found: %v", err)
	}
	if err := os.WriteFile(files[0], []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	again := &sweepfarm.Runner{Grid: grid, Base: tinyConfig(), ArtifactDir: dir}
	res, err := again.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 1 || res.Executed != 1 {
		t.Fatalf("corrupt artifact handling wrong: %+v", res)
	}

	// Same grid, different requests: nothing may resume (the re-run then
	// overwrites the checkpoints with the new configuration).
	changed := &sweepfarm.Runner{Grid: grid, Base: sweepfarm.Config{Requests: tinyRequests + 1, Warmup: 0.2}, ArtifactDir: dir}
	res, err = changed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 0 || res.Executed != 2 {
		t.Fatalf("stale artifacts resumed: %+v", res)
	}
}

// TestRunnerPartialOnUnresolvableCell: a grid naming an unknown prefetcher
// degrades per cell — the resolvable cells complete and the joined error
// names every failed job.
func TestRunnerPartialOnUnresolvableCell(t *testing.T) {
	r := &sweepfarm.Runner{
		Grid: sweepfarm.Grid{
			Apps:        []string{"CFM"},
			Prefetchers: []string{"none", "warp-drive"},
			Repeats:     2,
		},
		Base: tinyConfig(),
	}
	res, err := r.Run(context.Background())
	if err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
	for _, frag := range []string{"CFM/warp-drive r0", "CFM/warp-drive r1"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("joined error missing %q:\n%v", frag, err)
		}
	}
	if res.Failed != 2 || res.Executed != 2 {
		t.Fatalf("scheduling counts wrong: %+v", res)
	}
	grid := res.ReportGrid("")
	if _, ok := grid["CFM"]["none"]; !ok {
		t.Fatal("completed cell missing from partial results")
	}
	if _, ok := grid["CFM"]["warp-drive"]; ok {
		t.Fatal("failed cell present in partial results")
	}
}

// TestOutputs: the text tables, LaTeX table and grouped CSV render a
// complete R=2 grid with CI annotations and consistent shapes.
func TestOutputs(t *testing.T) {
	r := &sweepfarm.Runner{Grid: tinyGrid(2), Base: tinyConfig()}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var txt bytes.Buffer
	sweepfarm.TableHitRate(&txt, res)
	sweepfarm.TableAMAT(&txt, res)
	sweepfarm.TablePower(&txt, res)
	out := txt.String()
	for _, frag := range []string{"Figure 7 (farm)", "Figure 8 (farm)", "Figure 10 (farm)", "±", "R=2", "CFM", "stride"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("text tables missing %q:\n%s", frag, out)
		}
	}

	var tex bytes.Buffer
	if err := sweepfarm.WriteLaTeX(&tex, res, "amat_cycles"); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`\begin{tabular}{lrr}`, `\pm`, `\end{tabular}`} {
		if !strings.Contains(tex.String(), frag) {
			t.Fatalf("latex missing %q:\n%s", frag, tex.String())
		}
	}
	if err := sweepfarm.WriteLaTeX(io.Discard, res, "nope"); err == nil {
		t.Fatal("unknown latex metric accepted")
	}

	var buf bytes.Buffer
	if err := sweepfarm.WriteGroupedCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+4 {
		t.Fatalf("csv has %d rows, want header + 4 cells", len(rows))
	}
	wantCols := 4 + 3*len(sweepfarm.Metrics)
	for i, row := range rows {
		if len(row) != wantCols {
			t.Fatalf("csv row %d has %d columns, want %d", i, len(row), wantCols)
		}
	}
	if rows[1][3] != "2" {
		t.Fatalf("repeats column = %q, want 2", rows[1][3])
	}
}

// TestRunnerArtifactSchema: checkpoints carry the v3 provenance and
// validate under the standard artifact reader.
func TestRunnerArtifactSchema(t *testing.T) {
	dir := t.TempDir()
	r := &sweepfarm.Runner{
		Grid:        sweepfarm.Grid{Apps: []string{"CFM"}, Prefetchers: []string{"none"}, Repeats: 2},
		Base:        tinyConfig(),
		ArtifactDir: dir,
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	art, err := obs.ReadFile(filepath.Join(dir, "CFM_none_base_r1.json"))
	if err != nil {
		t.Fatal(err)
	}
	m := art.Manifest
	if m.SchemaVersion != obs.SchemaVersion || m.Repeat != 1 || m.ConfigHash == "" {
		t.Fatalf("v3 provenance missing: %+v", m)
	}
	want := sweepfarm.SeedFor(sweepfarm.CellKey{App: "CFM", Prefetcher: "none"}, 1, 0)
	if m.Seed != want {
		t.Fatalf("seed %d, want derived %d", m.Seed, want)
	}
	if m.Workload != "CFM" || m.Prefetcher != "none" || m.Requests != tinyRequests {
		t.Fatalf("manifest run fields wrong: %+v", m)
	}
	if art.Report == nil || art.Report.Truncated {
		t.Fatal("artifact report missing or truncated")
	}
}
