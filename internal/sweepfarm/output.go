package sweepfarm

// Paper-ready output renderers. All three consume a Result and emit only
// its complete cells in plan order, so output is deterministic across
// worker scheduling and across interrupted-then-resumed runs — the
// property the resume tests pin byte for byte.

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteGroupedCSV emits one row per complete cell with repeat count and
// mean/std/ci95 columns for every aggregated metric — the statistical
// counterpart of the single-run experiments CSV.
func WriteGroupedCSV(w io.Writer, res *Result) error {
	cw := csv.NewWriter(w)
	header := []string{"app", "prefetcher", "variant", "repeats"}
	for _, m := range Metrics {
		header = append(header, m+"_mean", m+"_std", m+"_ci95")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, c := range res.Cells {
		if !c.Complete() {
			continue
		}
		row := []string{c.Key.App, c.Key.Prefetcher, c.Key.Variant, strconv.Itoa(len(c.Repeats))}
		for _, m := range Metrics {
			st := c.Agg[m]
			row = append(row, f(st.Mean), f(st.Std), f(st.CI95))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sweepfarm: csv: %w", err)
	}
	return nil
}

// WriteLaTeX renders one metric as a LaTeX tabular per variant: rows are
// apps, columns prefetchers, each entry $mean \pm ci$ (the ± term is
// omitted for single-repeat grids).
func WriteLaTeX(w io.Writer, res *Result, metric string) error {
	known := false
	for _, m := range Metrics {
		if m == metric {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("sweepfarm: unknown metric %q (have %s)", metric, strings.Join(Metrics, ", "))
	}
	for _, v := range res.Grid.Variants {
		rows, pfs := variantGrid(res, v.Name)
		if len(rows) == 0 {
			continue
		}
		label := metric
		if v.Name != "" {
			label += ", variant " + v.Name
		}
		fmt.Fprintf(w, "%% sweep farm: %s (R=%d, 95%% CI, Student-t)\n", label, res.Grid.Repeats)
		fmt.Fprintf(w, "\\begin{tabular}{l%s}\n\\hline\n", strings.Repeat("r", len(pfs)))
		fmt.Fprintf(w, "app")
		for _, pf := range pfs {
			fmt.Fprintf(w, " & %s", latexEscape(pf))
		}
		fmt.Fprintf(w, " \\\\\n\\hline\n")
		for _, app := range rows {
			fmt.Fprintf(w, "%s", latexEscape(app))
			for _, pf := range pfs {
				c := findCell(res, CellKey{App: app, Prefetcher: pf, Variant: v.Name})
				st := c.Agg[metric]
				if st.N > 1 {
					fmt.Fprintf(w, " & $%.4g \\pm %.2g$", st.Mean, st.CI95)
				} else {
					fmt.Fprintf(w, " & $%.4g$", st.Mean)
				}
			}
			fmt.Fprintf(w, " \\\\\n")
		}
		fmt.Fprintf(w, "\\hline\n\\end{tabular}\n")
	}
	return nil
}

// TableHitRate prints the Figure 7-style SC hit-rate table, annotated with
// the 95 % confidence half-interval when the grid ran more than one repeat.
func TableHitRate(w io.Writer, res *Result) {
	farmTable(w, res, "Figure 7 (farm): SC hit rate", "hit_rate",
		func(st Stat) string { return pmPercent(st, 1) })
}

// TableAMAT prints the Figure 8-style AMAT table with ±CI annotation.
func TableAMAT(w io.Writer, res *Result) {
	farmTable(w, res, "Figure 8 (farm): AMAT (cycles)", "amat_cycles",
		func(st Stat) string { return pmPlain(st, 1) })
}

// TablePower prints the Figure 10-style memory-power overhead vs the
// no-prefetcher baseline. Each repeat's overhead is computed against the
// matching repeat of the "none" cell (same repeat index, hence the same
// derived workload seed), and the statistics summarise those paired
// ratios. Cells without a complete "none" baseline are skipped.
func TablePower(w io.Writer, res *Result) {
	for _, v := range res.Grid.Variants {
		rows, pfs := variantGrid(res, v.Name)
		var cols []string
		for _, pf := range pfs {
			if pf != "none" {
				cols = append(cols, pf)
			}
		}
		if len(rows) == 0 || len(cols) == len(pfs) {
			continue // nothing complete, or no baseline in the grid
		}
		farmHeader(w, res, "Figure 10 (farm): memory power overhead vs none", v.Name, cols)
		for _, app := range rows {
			base := findCell(res, CellKey{App: app, Prefetcher: "none", Variant: v.Name})
			fmt.Fprintf(w, "%-6s", app)
			for _, pf := range cols {
				c := findCell(res, CellKey{App: app, Prefetcher: pf, Variant: v.Name})
				var ratios []float64
				for i := range c.Repeats {
					if i >= len(base.Repeats) {
						break
					}
					b := MetricValue(base.Repeats[i].Report, "energy_uj")
					e := MetricValue(c.Repeats[i].Report, "energy_uj")
					if b != 0 {
						ratios = append(ratios, (e-b)/b)
					}
				}
				st := NewStat(ratios)
				if st.N > 1 {
					fmt.Fprintf(w, "%14s", fmt.Sprintf("%+.1f±%.1f%%", 100*st.Mean, 100*st.CI95))
				} else {
					fmt.Fprintf(w, "%14s", fmt.Sprintf("%+.1f%%", 100*st.Mean))
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// farmTable renders one metric per variant in the fixed-width text style
// of the experiments figures.
func farmTable(w io.Writer, res *Result, title, metric string, render func(Stat) string) {
	for _, v := range res.Grid.Variants {
		rows, pfs := variantGrid(res, v.Name)
		if len(rows) == 0 {
			continue
		}
		farmHeader(w, res, title, v.Name, pfs)
		for _, app := range rows {
			fmt.Fprintf(w, "%-6s", app)
			for _, pf := range pfs {
				c := findCell(res, CellKey{App: app, Prefetcher: pf, Variant: v.Name})
				fmt.Fprintf(w, "%14s", render(c.Agg[metric]))
			}
			fmt.Fprintln(w)
		}
	}
}

func farmHeader(w io.Writer, res *Result, title, variant string, cols []string) {
	if variant != "" {
		title += " @" + variant
	}
	if res.Grid.Repeats > 1 {
		title += fmt.Sprintf(" — mean ± 95%% CI over R=%d seeded repeats", res.Grid.Repeats)
	}
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-6s", "app")
	for _, c := range cols {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
}

// variantGrid lists the apps (row order) and prefetchers (column order)
// that have complete cells in the named variant, preserving plan order.
func variantGrid(res *Result, variant string) (apps, pfs []string) {
	haveApp := map[string]bool{}
	havePF := map[string]bool{}
	for _, c := range res.Cells {
		if c.Key.Variant != variant || !c.Complete() {
			continue
		}
		if !haveApp[c.Key.App] {
			haveApp[c.Key.App] = true
			apps = append(apps, c.Key.App)
		}
		if !havePF[c.Key.Prefetcher] {
			havePF[c.Key.Prefetcher] = true
			pfs = append(pfs, c.Key.Prefetcher)
		}
	}
	return apps, pfs
}

// findCell returns the planned cell for a key; never nil for keys obtained
// from variantGrid.
func findCell(res *Result, key CellKey) *CellResult {
	for _, c := range res.Cells {
		if c.Key == key {
			return c
		}
	}
	return &CellResult{Key: key, Agg: Aggregate{}}
}

func pmPercent(st Stat, prec int) string {
	if st.N > 1 {
		return fmt.Sprintf("%.*f±%.*f%%", prec, 100*st.Mean, prec, 100*st.CI95)
	}
	return fmt.Sprintf("%.*f%%", prec, 100*st.Mean)
}

func pmPlain(st Stat, prec int) string {
	if st.N > 1 {
		return fmt.Sprintf("%.*f±%.*f", prec, st.Mean, prec, st.CI95)
	}
	return fmt.Sprintf("%.*f", prec, st.Mean)
}

// latexEscape protects the characters that appear in prefetcher and app
// names (underscores from sanitized keys, & just in case).
func latexEscape(s string) string {
	s = strings.ReplaceAll(s, "_", `\_`)
	s = strings.ReplaceAll(s, "&", `\&`)
	s = strings.ReplaceAll(s, "%", `\%`)
	return s
}
