package events

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file exports recorded event rings as Chrome trace-event JSON — the
// "JSON Array/Object Format" understood by Perfetto (ui.perfetto.dev) and
// chrome://tracing. One track (tid) per channel: prefetch lifecycles render
// as complete ("X") slices from issue to fill, annotated with their
// terminal outcome (used / late / evicted-unused), and arbitration
// decisions, SLP learning milestones, TLP neighbour matches, demand misses
// and unmatched lifecycle events render as instant ("i") events on the same
// track. Timestamps are trace cycles written into the format's microsecond
// field, so "1 µs" in the viewer is one memory-controller cycle.

// TraceMeta labels an exported trace.
type TraceMeta struct {
	Tool       string // producing command, e.g. "planaria-sim"
	Workload   string
	Prefetcher string
}

// chromeEvent is one entry of the trace-event array. Args is a plain map:
// encoding/json sorts map keys, which keeps the export byte-deterministic
// for the golden-file test.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON Object Format envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the recorder's rings as Chrome trace-event JSON.
// It fails when the recorder has no rings (attribution-only mode records
// nothing to export). Call after the run has returned — rings are not safe
// to read mid-run.
func WriteChromeTrace(w io.Writer, r *Recorder, meta TraceMeta) error {
	if r == nil || !r.HasRings() {
		return fmt.Errorf("events: no event rings to export (tracing ran in attribution-only mode)")
	}
	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"tool":            meta.Tool,
			"workload":        meta.Workload,
			"prefetcher":      meta.Prefetcher,
			"time_unit":       "1 exported microsecond = 1 memory-controller cycle",
			"dropped_events":  fmt.Sprintf("%d", r.Dropped()),
			"events_retained": fmt.Sprintf("%d", retained(r)),
		},
	}
	procName := meta.Tool
	if meta.Workload != "" || meta.Prefetcher != "" {
		procName = fmt.Sprintf("%s %s/%s", meta.Tool, meta.Workload, meta.Prefetcher)
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M",
		Args: map[string]any{"name": procName},
	})
	for ch := 0; ch < r.Channels(); ch++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Tid: ch,
			Args: map[string]any{"name": fmt.Sprintf("channel %d", ch)},
		})
		out.TraceEvents = appendChannel(out.TraceEvents, ch, r.Channel(ch).Ring().Events())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("events: encode chrome trace: %w", err)
	}
	return nil
}

func retained(r *Recorder) int {
	n := 0
	for ch := 0; ch < r.Channels(); ch++ {
		if ring := r.Channel(ch).Ring(); ring != nil {
			n += ring.Len()
		}
	}
	return n
}

// appendChannel renders one channel's events. Issue events open "X" slices
// whose duration spans to the fill-ready cycle; later Fill / Used /
// EvictUnused events for the same block update the open slice's outcome
// argument instead of emitting separately, so a prefetch's whole life reads
// as one annotated slice. Lifecycle events whose issue was already dropped
// from the ring fall back to instants.
func appendChannel(dst []chromeEvent, ch int, evs []Event) []chromeEvent {
	open := make(map[uint64]int) // block → index in dst of its open slice
	for _, ev := range evs {
		blk := uint64(ev.Block)
		switch ev.Kind {
		case KindDemand:
			if ev.Flags&FlagHit != 0 {
				continue // hits are context-free noise at trace scale
			}
			dst = append(dst, instant(ch, ev, "miss", "demand", map[string]any{
				"block": hex(blk),
				"write": ev.Flags&FlagWrite != 0,
				"late":  ev.Flags&FlagLate != 0,
			}))
		case KindArbitration:
			dst = append(dst, instant(ch, ev, "arb "+ev.Origin.String(), "arbitration", map[string]any{
				"issued_by":  ev.Origin.String(),
				"suppressed": ev.Reason.String(),
				"candidates": ev.N,
				"block":      hex(blk),
			}))
		case KindSLPPromote:
			dst = append(dst, instant(ch, ev, "slp-promote", "learn", map[string]any{
				"page": hex(ev.Aux),
			}))
		case KindSLPSnapshot:
			dst = append(dst, instant(ch, ev, "slp-snapshot", "learn", map[string]any{
				"page": hex(ev.Aux),
				"bits": ev.N,
			}))
		case KindTLPNeighbor:
			dst = append(dst, instant(ch, ev, "tlp-neighbor", "learn", map[string]any{
				"neighbor": hex(ev.Aux),
				"transfer": ev.N,
				"block":    hex(blk),
			}))
		case KindIssue:
			dur := uint64(0)
			if ev.Aux > ev.Cycle {
				dur = ev.Aux - ev.Cycle
			}
			open[blk] = len(dst)
			dst = append(dst, chromeEvent{
				Name: "prefetch " + ev.Origin.String(), Cat: "prefetch",
				Ph: "X", Ts: ev.Cycle, Dur: dur, Tid: ch,
				Args: map[string]any{
					"block":   hex(blk),
					"origin":  ev.Origin.String(),
					"outcome": "in-flight",
				},
			})
		case KindFill:
			outcome := "filled"
			if ev.Flags&FlagLate != 0 {
				outcome = "late"
			}
			dst = updateOrInstant(dst, open, ch, ev, outcome)
		case KindUsed:
			dst = updateOrInstant(dst, open, ch, ev, "used")
		case KindLateHit:
			dst = append(dst, instant(ch, ev, "late-hit", "lifecycle", map[string]any{
				"block":  hex(blk),
				"origin": ev.Origin.String(),
				"ready":  ev.Aux,
			}))
		case KindEvictUnused:
			dst = updateOrInstant(dst, open, ch, ev, "evicted-unused")
		}
	}
	return dst
}

// updateOrInstant annotates the open slice for ev.Block with the outcome,
// or emits the event as a standalone instant when no slice is open (its
// issue was dropped from the ring before export).
func updateOrInstant(dst []chromeEvent, open map[uint64]int, ch int, ev Event, outcome string) []chromeEvent {
	if i, ok := open[uint64(ev.Block)]; ok {
		dst[i].Args["outcome"] = outcome
		return dst
	}
	return append(dst, instant(ch, ev, ev.Kind.String(), "lifecycle", map[string]any{
		"block":   hex(uint64(ev.Block)),
		"origin":  ev.Origin.String(),
		"outcome": outcome,
	}))
}

func instant(ch int, ev Event, name, cat string, args map[string]any) chromeEvent {
	return chromeEvent{Name: name, Cat: cat, Ph: "i", Ts: ev.Cycle, Tid: ch, S: "t", Args: args}
}

func hex(v uint64) string { return fmt.Sprintf("0x%x", v) }

// ValidateChromeTrace parses an exported trace and checks its structural
// invariants (non-empty event array, every event named with a known phase).
// It returns the event count — the CI smoke step and tests use it to assert
// a run actually produced a loadable trace.
func ValidateChromeTrace(rd io.Reader) (int, error) {
	var t chromeTrace
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&t); err != nil {
		return 0, fmt.Errorf("events: parse chrome trace: %w", err)
	}
	if len(t.TraceEvents) == 0 {
		return 0, fmt.Errorf("events: chrome trace has no events")
	}
	for i, ev := range t.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("events: trace event %d has no name", i)
		}
		switch ev.Ph {
		case "M", "X", "i", "C", "B", "E":
		default:
			return 0, fmt.Errorf("events: trace event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	return len(t.TraceEvents), nil
}
