package events

// ChannelSink is one channel's event sink: a ring buffer (optional) plus
// channel-local attribution counters. Emit is called by exactly one
// goroutine (the channel's worker); the attribution side uses atomics so
// concurrent readers (the debug endpoint) stay race-free.
type ChannelSink struct {
	ring    *Ring // nil when the recorder runs attribution-only
	at      attrib
	channel int
}

// Emit implements Sink.
func (s *ChannelSink) Emit(ev Event) {
	if s.ring != nil {
		s.ring.push(ev)
	}
	s.at.apply(ev)
}

// Channel returns the channel index this sink serves.
func (s *ChannelSink) Channel() int { return s.channel }

// Ring returns the channel's ring buffer, nil in attribution-only mode.
func (s *ChannelSink) Ring() *Ring { return s.ring }

// Recorder owns the per-channel sinks of one engine run. Construction is
// cheap; the per-channel rings are the only sizeable allocation
// (RingSize × 48 B each).
type Recorder struct {
	sinks []*ChannelSink
}

// NewRecorder builds a recorder with one sink per channel. ringSize ≤ 0
// disables the rings (attribution-only mode).
func NewRecorder(channels, ringSize int) *Recorder {
	r := &Recorder{sinks: make([]*ChannelSink, channels)}
	for ch := range r.sinks {
		s := &ChannelSink{channel: ch}
		if ringSize > 0 {
			s.ring = NewRing(ringSize)
		}
		r.sinks[ch] = s
	}
	return r
}

// Channels returns the number of per-channel sinks.
func (r *Recorder) Channels() int { return len(r.sinks) }

// Channel returns the sink for one channel.
func (r *Recorder) Channel(ch int) *ChannelSink { return r.sinks[ch] }

// HasRings reports whether event rings were enabled.
func (r *Recorder) HasRings() bool {
	return len(r.sinks) > 0 && r.sinks[0].ring != nil
}

// Dropped returns the total ring overwrites across channels. Safe to call
// live.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for _, s := range r.sinks {
		if s.ring != nil {
			n += s.ring.Dropped()
		}
	}
	return n
}

// ResetAttrib zeroes the attribution counters on every channel, leaving the
// event rings intact. The engine calls it at the warmup boundary so
// event-level attribution covers the same measured region as the aggregate
// report.
func (r *Recorder) ResetAttrib() {
	for _, s := range r.sinks {
		s.at.reset()
	}
}

// Attrib sums the channel-local attribution tables into one snapshot. Safe
// to call while the run is still in progress.
func (r *Recorder) Attrib() *AttribSnapshot {
	snap := &AttribSnapshot{PageBuckets: PageBuckets}
	var cells [numOrigins][PageBuckets]BucketAttrib
	var suppress [numReasons]uint64
	for _, s := range r.sinks {
		a := &s.at
		snap.Demand += a.demand.Load()
		snap.SLPPromotions += a.slpPromotes.Load()
		snap.SLPSnapshots += a.slpSnapshots.Load()
		snap.TLPNeighborMatches += a.tlpNeighbors.Load()
		for rsn := range a.suppress {
			suppress[rsn] += a.suppress[rsn].Load()
		}
		for o := range a.cells {
			for b := range a.cells[o] {
				c := &a.cells[o][b]
				dst := &cells[o][b]
				dst.Issued += c.issued.Load()
				dst.Filled += c.filled.Load()
				dst.Used += c.used.Load()
				dst.Late += c.late.Load()
				dst.EvictedUnused += c.evicted.Load()
			}
		}
	}
	for o := range cells {
		row := OriginAttrib{Origin: Origin(o).String()}
		for b := range cells[o] {
			c := cells[o][b]
			row.Issued += c.Issued
			row.Filled += c.Filled
			row.Used += c.Used
			row.Late += c.Late
			row.EvictedUnused += c.EvictedUnused
			if c.Issued|c.Filled|c.Used|c.Late|c.EvictedUnused != 0 {
				c.Bucket = b
				row.Buckets = append(row.Buckets, c)
			}
		}
		if row.Issued|row.Filled|row.Used|row.Late|row.EvictedUnused != 0 {
			snap.Origins = append(snap.Origins, row)
		}
	}
	for rsn := 1; rsn < len(suppress); rsn++ { // ReasonNone is not a decision
		if suppress[rsn] != 0 {
			if snap.Suppression == nil {
				snap.Suppression = make(map[string]uint64)
			}
			snap.Suppression[Reason(rsn).String()] = suppress[rsn]
		}
	}
	snap.DroppedEvents = r.Dropped()
	return snap
}
