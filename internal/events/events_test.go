package events

import (
	"testing"
	"time"

	"repro/internal/addr"
)

func TestRingOverflowDropsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.push(Event{Cycle: uint64(i)})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", r.Len(), r.Cap())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events returned %d events", len(evs))
	}
	// Oldest-first: cycles 2,3,4,5 survive.
	for i, ev := range evs {
		if ev.Cycle != uint64(i+2) {
			t.Fatalf("event %d has cycle %d, want %d (oldest dropped first)", i, ev.Cycle, i+2)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.push(Event{Cycle: uint64(i)})
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 3/0", r.Len(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Fatalf("partial ring events %v", evs)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", r.Cap())
	}
	r.push(Event{Cycle: 1})
	r.push(Event{Cycle: 2})
	if r.Len() != 1 || r.Dropped() != 1 || r.Events()[0].Cycle != 2 {
		t.Fatalf("1-slot ring: len=%d dropped=%d evs=%v", r.Len(), r.Dropped(), r.Events())
	}
}

func TestRecorderAttribLifecycle(t *testing.T) {
	r := NewRecorder(2, 0) // attribution-only: no rings
	if r.HasRings() {
		t.Fatal("ringSize 0 built rings")
	}
	b := addr.PageNum(0x40).Block(0) // page 0x40 → bucket (0x40>>6)&7 = 1
	s0, s1 := r.Channel(0), r.Channel(1)
	s0.Emit(Event{Kind: KindIssue, Block: b, Origin: OriginSLP})
	s0.Emit(Event{Kind: KindFill, Block: b, Origin: OriginSLP})
	s0.Emit(Event{Kind: KindUsed, Block: b, Origin: OriginSLP})
	s1.Emit(Event{Kind: KindIssue, Block: b, Origin: OriginTLP})
	s1.Emit(Event{Kind: KindFill, Block: b, Origin: OriginTLP, Flags: FlagLate})
	s1.Emit(Event{Kind: KindEvictUnused, Block: b, Origin: OriginTLP})
	s1.Emit(Event{Kind: KindArbitration, Origin: OriginTLP, Reason: ReasonNoMetadata})
	s0.Emit(Event{Kind: KindSLPPromote})
	s0.Emit(Event{Kind: KindSLPSnapshot})
	s1.Emit(Event{Kind: KindTLPNeighbor})
	s0.Emit(Event{Kind: KindDemand})

	snap := r.Attrib()
	if snap.Demand != 1 || snap.SLPPromotions != 1 || snap.SLPSnapshots != 1 || snap.TLPNeighborMatches != 1 {
		t.Fatalf("learning counters: %+v", snap)
	}
	if snap.Suppression["no-metadata"] != 1 {
		t.Fatalf("suppression = %v", snap.Suppression)
	}
	if len(snap.Origins) != 2 {
		t.Fatalf("origins = %+v, want slp and tlp rows", snap.Origins)
	}
	slp, tlp := snap.Origins[0], snap.Origins[1]
	if slp.Origin != "slp" || slp.Issued != 1 || slp.Filled != 1 || slp.Used != 1 || slp.Late != 0 {
		t.Fatalf("slp row %+v", slp)
	}
	if tlp.Origin != "tlp" || tlp.Issued != 1 || tlp.Filled != 1 || tlp.Late != 1 || tlp.EvictedUnused != 1 {
		t.Fatalf("tlp row %+v", tlp)
	}
	// Per-bucket breakdown: page 0x40 lands in bucket 1.
	if len(slp.Buckets) != 1 || slp.Buckets[0].Bucket != 1 || slp.Buckets[0].Used != 1 {
		t.Fatalf("slp buckets %+v", slp.Buckets)
	}
	if got := snap.UsefulByOrigin(); got["slp"] != 1 || got["tlp"] != 1 {
		t.Fatalf("UsefulByOrigin = %v (used+late per origin)", got)
	}
	if got := snap.IssuedByOrigin(); got["slp"] != 1 || got["tlp"] != 1 {
		t.Fatalf("IssuedByOrigin = %v", got)
	}

	// ResetAttrib zeroes everything.
	r.ResetAttrib()
	snap = r.Attrib()
	if len(snap.Origins) != 0 || snap.Demand != 0 || len(snap.Suppression) != 0 {
		t.Fatalf("attribution survived reset: %+v", snap)
	}
}

func TestRecorderDroppedSumsChannels(t *testing.T) {
	r := NewRecorder(2, 2)
	if !r.HasRings() {
		t.Fatal("rings missing")
	}
	for i := 0; i < 5; i++ { // 3 drops on channel 0
		r.Channel(0).Emit(Event{Cycle: uint64(i), Kind: KindDemand})
	}
	for i := 0; i < 3; i++ { // 1 drop on channel 1
		r.Channel(1).Emit(Event{Cycle: uint64(i), Kind: KindDemand})
	}
	if r.Dropped() != 4 {
		t.Fatalf("recorder dropped = %d, want 4", r.Dropped())
	}
	if snap := r.Attrib(); snap.DroppedEvents != 4 {
		t.Fatalf("snapshot dropped = %d, want 4", snap.DroppedEvents)
	}
	// Drops affect the ring only, never the attribution counters.
	if snap := r.Attrib(); snap.Demand != 8 {
		t.Fatalf("demand = %d, want all 8 events attributed", snap.Demand)
	}
}

func TestEnumStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindDemand: "demand", KindArbitration: "arbitration",
		KindSLPPromote: "slp-promote", KindSLPSnapshot: "slp-snapshot",
		KindTLPNeighbor: "tlp-neighbor", KindIssue: "issue", KindFill: "fill",
		KindUsed: "used", KindLateHit: "late-hit", KindEvictUnused: "evict-unused",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k, want)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("out-of-range kind = %q", Kind(200))
	}
	if OriginSLP.String() != "slp" || OriginNone.String() != "untagged" || Origin(99).String() != "origin(99)" {
		t.Error("origin strings")
	}
	if ReasonSLPPriority.String() != "slp-priority" || ReasonNoMetadata.String() != "no-metadata" ||
		ReasonDisabled.String() != "disabled" || Reason(99).String() != "reason(99)" {
		t.Error("reason strings")
	}
}

func TestOriginFromName(t *testing.T) {
	cases := map[string]Origin{
		"": OriginNone, "slp": OriginSLP, "tlp": OriginTLP, "custom": OriginOther,
	}
	for name, want := range cases {
		if got := OriginFromName(name); got != want {
			t.Errorf("OriginFromName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestRunCountersProgress(t *testing.T) {
	var c RunCounters
	c.Start()
	first := c.Progress()
	c.Start() // idempotent: the original start time sticks
	c.SetTotal(1000)
	c.Add(200)
	c.Add(300)
	time.Sleep(time.Millisecond)
	p := c.Progress()
	if p.Records != 500 || p.Total != 1000 {
		t.Fatalf("records/total = %d/%d", p.Records, p.Total)
	}
	if p.Fraction != 0.5 {
		t.Fatalf("fraction = %v", p.Fraction)
	}
	if p.ElapsedSec <= 0 || p.ElapsedSec < first.ElapsedSec {
		t.Fatalf("elapsed %v rewound (first %v): Start not idempotent", p.ElapsedSec, first.ElapsedSec)
	}
	if p.ReqPerSec <= 0 || p.ETASec <= 0 {
		t.Fatalf("rates: req/s %v, ETA %v", p.ReqPerSec, p.ETASec)
	}
	// Store overwrites (single-owner consumers).
	c.Store(1000)
	if p := c.Progress(); p.Records != 1000 || p.ETASec != 0 {
		t.Fatalf("completed progress %+v", p)
	}
}

func TestRunCountersUnknownTotal(t *testing.T) {
	var c RunCounters
	c.Add(42)
	p := c.Progress()
	if p.Total != 0 || p.Fraction != 0 || p.ETASec != 0 {
		t.Fatalf("unknown-total progress %+v", p)
	}
	if p.Records != 42 {
		t.Fatalf("records = %d", p.Records)
	}
	c.SetTotal(-5)
	if p := c.Progress(); p.Total != 0 {
		t.Fatalf("negative total surfaced as %d", p.Total)
	}
}
