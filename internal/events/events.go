// Package events is the decision-level tracing subsystem of the
// reproduction: a zero-cost-when-disabled, per-channel structured event
// stream that records the full prefetch lifecycle — demand access, SLP
// learning milestones, TLP neighbour matches, the coordinator's arbitration
// outcome, and issue → fill → used / late-hit / evicted-unused — so the
// paper's central claim ("parallel learning, serial issuing" arbitration is
// what makes the composite win) can be inspected decision by decision
// instead of only through end-of-run aggregates.
//
// Design constraints (docs/TRACING.md):
//
//   - Disabled tracing costs one nil check per emission site and zero
//     allocations; enabling it must stay within a ~10% req/s budget
//     (guarded by BenchmarkEngineStepTraced and cmd/benchguard).
//   - Each channel owns one Sink, driven by exactly one goroutine, so the
//     hot path takes no locks. Events land in fixed-capacity per-channel
//     ring buffers (drop-oldest, with a dropped counter) so bounded memory
//     is preserved under arbitrarily long streamed runs.
//   - The attribution table is updated with channel-local atomics so a
//     live consumer (the -debug-addr endpoint) can snapshot it mid-run
//     without stopping the workers.
//
// Consumers: WriteChromeTrace exports the rings as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing), and Recorder.Attrib produces
// the per-prefetcher / per-page-bucket attribution table embedded in obs
// run artifacts and served by the debug endpoint.
package events

import (
	"fmt"

	"repro/internal/addr"
)

// Kind identifies what a recorded Event describes.
type Kind uint8

// Event kinds, in rough lifecycle order.
const (
	// KindDemand is one demand access as the engine saw it (Flags carry
	// write/hit/late).
	KindDemand Kind = iota
	// KindArbitration is the coordinator's issuing decision for one
	// trigger: Origin is the sub-prefetcher that issued, Reason says why
	// the other one was suppressed, N counts the candidate blocks.
	KindArbitration
	// KindSLPPromote marks an SLP filter-table entry reaching the
	// promotion threshold and moving into the accumulation table
	// (learning milestone; Aux is the page number).
	KindSLPPromote
	// KindSLPSnapshot marks an accumulation-table entry retiring into
	// the pattern history table as a complete footprint snapshot (Aux is
	// the page number, N the snapshot's bit count).
	KindSLPSnapshot
	// KindTLPNeighbor marks a successful neighbour match: TLP found a
	// similar flagged neighbour to transfer from (Aux is the neighbour
	// page, N the number of transferred footprint bits).
	KindTLPNeighbor
	// KindIssue is one prefetch entering the DRAM queue (Aux is the
	// cycle the fill will be usable).
	KindIssue
	// KindFill is a prefetched block landing in the system cache.
	// FlagLate marks a fill whose demand already waited on it (the
	// usefulness credit was given as a late hit).
	KindFill
	// KindUsed is the first demand hit on a prefetched line — the
	// "useful prefetch" terminal state.
	KindUsed
	// KindLateHit is a demand read served by a prefetch still in flight
	// (Aux is the cycle the fill lands).
	KindLateHit
	// KindEvictUnused is a prefetched line evicted before any demand use
	// — the "wasted prefetch" terminal state.
	KindEvictUnused

	numKinds
)

var kindNames = [numKinds]string{
	"demand", "arbitration", "slp-promote", "slp-snapshot", "tlp-neighbor",
	"issue", "fill", "used", "late-hit", "evict-unused",
}

// String returns the kind mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Origin identifies which sub-prefetcher an event is attributed to.
type Origin uint8

// Origins. OriginNone covers untagged prefetches (every prefetch of a
// non-composite prefetcher such as BOP or SPP); OriginStride, OriginMarkov
// and OriginAccel are the tournament's PC-free delta-family components
// (docs/PREFETCHERS.md); OriginOther covers tagged origins that are none of
// the above (custom composites and custom tournament components).
const (
	OriginNone Origin = iota
	OriginSLP
	OriginTLP
	OriginStride
	OriginMarkov
	OriginAccel
	OriginOther

	numOrigins
)

var originNames = [numOrigins]string{"untagged", "slp", "tlp", "stride", "markov", "accel", "other"}

// String returns the origin mnemonic.
func (o Origin) String() string {
	if int(o) < len(originNames) {
		return originNames[o]
	}
	return fmt.Sprintf("origin(%d)", uint8(o))
}

// OriginFromName maps a prefetcher-reported origin name ("slp", "tlp", …)
// to the enum; the empty name maps to OriginNone.
func OriginFromName(name string) Origin {
	switch name {
	case "":
		return OriginNone
	case "slp":
		return OriginSLP
	case "tlp":
		return OriginTLP
	case "stride":
		return OriginStride
	case "markov":
		return OriginMarkov
	case "accel":
		return OriginAccel
	}
	return OriginOther
}

// Reason explains an arbitration outcome: why the sub-prefetcher that did
// NOT issue was suppressed for this trigger.
type Reason uint8

// Suppression reasons.
const (
	ReasonNone Reason = iota
	// ReasonSLPPriority: TLP was suppressed because SLP issued — the
	// paper's serial-issuing rule gives SLP priority.
	ReasonSLPPriority
	// ReasonNoMetadata: SLP had no usable pattern for the page (or the
	// pattern contributed nothing beyond the trigger), so the trigger
	// fell through to TLP.
	ReasonNoMetadata
	// ReasonDisabled: the suppressed sub-prefetcher is disabled by
	// configuration (the Figure 9 breakdown runs).
	ReasonDisabled
	// ReasonLeaderRegion: the tournament issued from the component that
	// permanently owns this page region's leader set — the set-dueling
	// exploration path, taken regardless of learned trust.
	ReasonLeaderRegion
	// ReasonMetaTrust: the tournament's meta-predictor selected the
	// issuing component because its per-region (or global) trust counters
	// beat every other component's.
	ReasonMetaTrust
	// ReasonMetaFallback: the meta-predictor's choice had nothing to
	// issue, so the trigger fell through the fixed priority order (the
	// composite first — the paper's SLP-priority rule as the fallback).
	ReasonMetaFallback

	numReasons
)

var reasonNames = [numReasons]string{
	"none", "slp-priority", "no-metadata", "disabled",
	"leader-region", "meta-trust", "meta-fallback",
}

// String returns the reason mnemonic.
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Flags is a per-event bitset.
type Flags uint8

// Flag bits.
const (
	FlagWrite Flags = 1 << iota // demand access was a write
	FlagHit                     // demand access hit in the SC
	FlagLate                    // demand was served by an in-flight prefetch / fill arrived pre-used
)

// Event is one structured trace event. The struct is fixed-size and
// value-copied into the ring buffer, so emission allocates nothing.
type Event struct {
	Cycle uint64        // trace clock when the event happened
	Block addr.BlockNum // subject block, zero when not applicable
	// Aux is kind-specific: the page number for SLP learning events, the
	// neighbour page for KindTLPNeighbor, the fill-ready cycle for
	// KindIssue and KindLateHit.
	Aux    uint64
	N      uint16 // kind-specific small count (candidates, footprint bits)
	Kind   Kind
	Origin Origin
	Reason Reason
	Flags  Flags
}

// Sink receives decision events. The engine installs one per channel;
// implementations must be cheap, as Emit sits on the simulation hot path,
// and need not be safe for concurrent Emit calls (each channel is driven by
// one goroutine).
type Sink interface {
	Emit(Event)
}

// Config parameterises a Recorder (see sim.Config.Events).
type Config struct {
	// RingSize is the per-channel ring-buffer capacity in events. Zero
	// keeps attribution and live counters but records no event ring —
	// the cheap mode behind -debug-addr / -attrib without -trace-out.
	RingSize int
}

// DefaultRingSize is the per-channel ring capacity used by the CLIs when
// event export is requested: 64k events ≈ 3 MB per channel.
const DefaultRingSize = 1 << 16
