package events

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/addr"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder builds a small deterministic recorder covering every event
// kind and both slice-annotation paths (fill/used updating an open issue
// slice, and a lifecycle event whose issue was dropped falling back to an
// instant).
func goldenRecorder() *Recorder {
	r := NewRecorder(2, 16)
	b := addr.PageNum(0x40).Block(1)
	c0 := r.Channel(0)
	c0.Emit(Event{Kind: KindDemand, Cycle: 10, Block: b})
	c0.Emit(Event{Kind: KindArbitration, Cycle: 10, Block: b, Origin: OriginSLP, Reason: ReasonSLPPriority, N: 3})
	c0.Emit(Event{Kind: KindIssue, Cycle: 10, Block: b + 1, Aux: 310, Origin: OriginSLP})
	c0.Emit(Event{Kind: KindFill, Cycle: 310, Block: b + 1, Origin: OriginSLP})
	c0.Emit(Event{Kind: KindUsed, Cycle: 400, Block: b + 1, Origin: OriginSLP})
	c0.Emit(Event{Kind: KindSLPPromote, Cycle: 50, Aux: 0x40})
	c0.Emit(Event{Kind: KindSLPSnapshot, Cycle: 500, Aux: 0x40, N: 4})
	// A demand hit: filtered out of the export.
	c0.Emit(Event{Kind: KindDemand, Cycle: 600, Block: b, Flags: FlagHit})

	c1 := r.Channel(1)
	c1.Emit(Event{Kind: KindTLPNeighbor, Cycle: 20, Block: b, Aux: 0x44, N: 2})
	c1.Emit(Event{Kind: KindArbitration, Cycle: 20, Block: b, Origin: OriginTLP, Reason: ReasonNoMetadata, N: 1})
	c1.Emit(Event{Kind: KindIssue, Cycle: 20, Block: b + 2, Aux: 320, Origin: OriginTLP})
	c1.Emit(Event{Kind: KindLateHit, Cycle: 100, Block: b + 2, Aux: 320, Origin: OriginTLP})
	c1.Emit(Event{Kind: KindFill, Cycle: 320, Block: b + 2, Origin: OriginTLP, Flags: FlagLate})
	// Lifecycle event without an open slice (its issue predates the ring).
	c1.Emit(Event{Kind: KindEvictUnused, Cycle: 900, Block: b + 3, Origin: OriginTLP})
	return r
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	meta := TraceMeta{Tool: "planaria-sim", Workload: "CFM", Prefetcher: "planaria"}
	if err := WriteChromeTrace(&buf, goldenRecorder(), meta); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/events -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace export drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteChromeTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenRecorder(), TraceMeta{Tool: "t"}); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatalf("round-trip validation failed: %v", err)
	}
	// process_name + two thread_name metadata events plus the rendered
	// payload; fill/used collapse into their issue slices and the demand
	// hit is filtered, so the exact count is an implementation detail —
	// the golden file pins it, this test only sanity-checks the floor.
	if n < 10 {
		t.Fatalf("validated %d events, implausibly few", n)
	}
}

func TestWriteChromeTraceSliceAnnotation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenRecorder(), TraceMeta{Tool: "t"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"outcome": "used"`,           // channel 0 slice reached its terminal state
		`"outcome": "late"`,           // channel 1 fill carried FlagLate
		`"outcome": "evicted-unused"`, // orphan lifecycle event fell back to an instant
		`"suppressed": "slp-priority"`,
		`"suppressed": "no-metadata"`,
		`"name": "late-hit"`,
		`"name": "slp-promote"`,
		`"name": "tlp-neighbor"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
	if strings.Contains(out, `"outcome": "in-flight"`) {
		t.Error("a matched issue slice kept its in-flight placeholder")
	}
	// The filtered demand hit must not appear.
	if strings.Count(out, `"name": "miss"`) != 1 {
		t.Errorf("demand-hit filtering broke: %d miss instants", strings.Count(out, `"name": "miss"`))
	}
}

func TestWriteChromeTraceRequiresRings(t *testing.T) {
	r := NewRecorder(2, 0)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r, TraceMeta{}); err == nil {
		t.Fatal("attribution-only recorder exported a trace")
	}
	if err := WriteChromeTrace(&buf, nil, TraceMeta{}); err == nil {
		t.Fatal("nil recorder exported a trace")
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"no events":     `{"traceEvents":[]}`,
		"unnamed event": `{"traceEvents":[{"ph":"i"}]}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"Z"}]}`,
	}
	for label, in := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	if n, err := ValidateChromeTrace(strings.NewReader(`{"traceEvents":[{"name":"x","ph":"M"}]}`)); err != nil || n != 1 {
		t.Errorf("minimal valid trace: n=%d err=%v", n, err)
	}
}
