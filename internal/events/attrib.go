package events

import "sync/atomic"

// PageBuckets is the number of coarse page-locality buckets the attribution
// table folds the page space into: pages map to buckets in 64-page groups
// cycling modulo PageBuckets, so each bucket samples the whole footprint at
// 64 KB granularity rather than pinning one address range.
const PageBuckets = 8

// bucketOf maps a block's page to its attribution bucket.
func bucketOf(ev Event) int {
	return int((uint64(ev.Block.Page()) >> 6) & (PageBuckets - 1))
}

// attribCell is one (origin × page-bucket) row of lifecycle counters. All
// fields are atomics so the debug endpoint can snapshot mid-run.
type attribCell struct {
	issued  atomic.Uint64
	filled  atomic.Uint64
	used    atomic.Uint64
	late    atomic.Uint64
	evicted atomic.Uint64
}

// attrib is one channel's attribution state. Channel-local so the hot-path
// atomic increments never contend across workers; Recorder sums channels at
// snapshot time.
type attrib struct {
	cells    [numOrigins][PageBuckets]attribCell
	suppress [numReasons]atomic.Uint64

	demand       atomic.Uint64
	slpPromotes  atomic.Uint64
	slpSnapshots atomic.Uint64
	tlpNeighbors atomic.Uint64
}

// reset zeroes every counter (the engine's warmup-boundary stats reset).
func (a *attrib) reset() {
	for o := range a.cells {
		for b := range a.cells[o] {
			c := &a.cells[o][b]
			c.issued.Store(0)
			c.filled.Store(0)
			c.used.Store(0)
			c.late.Store(0)
			c.evicted.Store(0)
		}
	}
	for r := range a.suppress {
		a.suppress[r].Store(0)
	}
	a.demand.Store(0)
	a.slpPromotes.Store(0)
	a.slpSnapshots.Store(0)
	a.tlpNeighbors.Store(0)
}

// apply folds one event into the attribution counters.
func (a *attrib) apply(ev Event) {
	switch ev.Kind {
	case KindDemand:
		a.demand.Add(1)
	case KindArbitration:
		a.suppress[ev.Reason].Add(1)
	case KindSLPPromote:
		a.slpPromotes.Add(1)
	case KindSLPSnapshot:
		a.slpSnapshots.Add(1)
	case KindTLPNeighbor:
		a.tlpNeighbors.Add(1)
	case KindIssue:
		a.cells[ev.Origin][bucketOf(ev)].issued.Add(1)
	case KindFill:
		c := &a.cells[ev.Origin][bucketOf(ev)]
		c.filled.Add(1)
		if ev.Flags&FlagLate != 0 {
			// The demand already waited on this fill: the usefulness
			// credit is a late hit, attributed here (fill time) so the
			// totals reconcile exactly with Report.UsefulByOrigin,
			// which credits late uses when the fill lands.
			c.late.Add(1)
		}
	case KindUsed:
		a.cells[ev.Origin][bucketOf(ev)].used.Add(1)
	case KindEvictUnused:
		a.cells[ev.Origin][bucketOf(ev)].evicted.Add(1)
	}
}

// BucketAttrib is one page bucket's lifecycle counters in a snapshot.
type BucketAttrib struct {
	Bucket        int    `json:"bucket"`
	Issued        uint64 `json:"issued"`
	Filled        uint64 `json:"filled"`
	Used          uint64 `json:"used"`
	Late          uint64 `json:"late"`
	EvictedUnused uint64 `json:"evicted_unused"`
}

// OriginAttrib is one sub-prefetcher's attribution row: lifecycle totals
// plus the non-empty per-page-bucket breakdown.
type OriginAttrib struct {
	Origin        string         `json:"origin"`
	Issued        uint64         `json:"issued"`
	Filled        uint64         `json:"filled"`
	Used          uint64         `json:"used"`
	Late          uint64         `json:"late"`
	EvictedUnused uint64         `json:"evicted_unused"`
	Buckets       []BucketAttrib `json:"buckets,omitempty"`
}

// AttribSnapshot is a point-in-time view of the attribution table, summed
// over channels. It is safe to take while the run is in progress; counters
// in one snapshot are individually consistent but not mutually atomic.
type AttribSnapshot struct {
	PageBuckets int `json:"page_buckets"`

	// Origins lists the lifecycle attribution per sub-prefetcher, in
	// enum order (untagged, slp, tlp, other); all-zero rows are omitted.
	Origins []OriginAttrib `json:"origins"`

	// Suppression histograms the coordinator's arbitration outcomes by
	// the reason the losing sub-prefetcher was suppressed.
	Suppression map[string]uint64 `json:"suppression,omitempty"`

	Demand             uint64 `json:"demand_events"`
	SLPPromotions      uint64 `json:"slp_promotions"`
	SLPSnapshots       uint64 `json:"slp_snapshots"`
	TLPNeighborMatches uint64 `json:"tlp_neighbor_matches"`

	// DroppedEvents counts ring-buffer overwrites across all channels
	// (zero when rings are disabled or sized generously enough).
	DroppedEvents uint64 `json:"dropped_events"`
}

// IssuedByOrigin returns the issued count per origin name (the debug
// endpoint's per-prefetcher issue counters).
func (s *AttribSnapshot) IssuedByOrigin() map[string]uint64 {
	out := make(map[string]uint64, len(s.Origins))
	for _, o := range s.Origins {
		out[o.Origin] = o.Issued
	}
	return out
}

// UsefulByOrigin returns used+late per origin name — the event-level
// counterpart of metrics.Report.UsefulByOrigin (which also counts late hits
// per origin); the two reconcile exactly at end of run.
func (s *AttribSnapshot) UsefulByOrigin() map[string]uint64 {
	out := make(map[string]uint64, len(s.Origins))
	for _, o := range s.Origins {
		out[o.Origin] = o.Used + o.Late
	}
	return out
}
