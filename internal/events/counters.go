package events

import (
	"sync/atomic"
	"time"
)

// RunCounters is the live progress state of one (or several sequential)
// engine runs: the engine updates Records at chunk granularity, so the cost
// with progress enabled is one atomic store or add per ~4096 records, and
// any goroutine — the -progress printer, the -debug-addr endpoint — can
// read a consistent snapshot at any time.
type RunCounters struct {
	records atomic.Int64
	total   atomic.Int64
	start   atomic.Int64 // wall-clock start, UnixNano; 0 = not started

	// latSrc optionally supplies a live p99 demand-latency reading for
	// Progress snapshots (set by the engine when telemetry is enabled;
	// see SetLatencySource). Stored as an atomic.Value so installing it
	// races safely with concurrent Progress readers.
	latSrc atomic.Value // func() (float64, bool)
}

// Start stamps the wall-clock start time (idempotent: only the first call
// sticks, so req/s stays meaningful across sequential runs sharing one
// counter set).
func (c *RunCounters) Start() {
	c.start.CompareAndSwap(0, time.Now().UnixNano())
}

// SetTotal declares the expected total record count (streams with a known
// RecordCount); ≤ 0 means unknown and disables fraction/ETA.
func (c *RunCounters) SetTotal(n int64) { c.total.Store(n) }

// Add advances the processed-record count by n (parallel channel workers,
// one call per chunk).
func (c *RunCounters) Add(n int64) { c.records.Add(n) }

// Store sets the processed-record count outright (single-owner consumers
// and tests; the engine's run paths use Add).
func (c *RunCounters) Store(n int64) { c.records.Store(n) }

// Records returns the records processed so far.
func (c *RunCounters) Records() int64 { return c.records.Load() }

// SetLatencySource installs a live latency probe: f returns the current
// p99 demand latency in cycles and whether a reading exists yet. Progress
// calls it on every snapshot, so the -progress printer and the /progress
// endpoint share one source (the telemetry registry's merged histogram).
// A nil f is ignored. The probe must be safe to call from any goroutine.
func (c *RunCounters) SetLatencySource(f func() (float64, bool)) {
	if f != nil {
		c.latSrc.Store(f)
	}
}

// Progress is one self-describing progress snapshot, JSON-shaped for the
// debug endpoint.
type Progress struct {
	Records    int64   `json:"records"`
	Total      int64   `json:"total,omitempty"`    // 0 = unknown
	Fraction   float64 `json:"fraction,omitempty"` // records/total when known
	ElapsedSec float64 `json:"elapsed_seconds"`
	ReqPerSec  float64 `json:"req_per_s"`
	ETASec     float64 `json:"eta_seconds,omitempty"` // remaining/req_per_s when total known

	// P99DemandLatCycles is the live p99 demand read latency in cycles,
	// present when a latency source was installed (telemetry-enabled
	// runs; see RunCounters.SetLatencySource) and at least one demand
	// read has been observed.
	P99DemandLatCycles float64 `json:"p99_demand_lat_cycles,omitempty"`
}

// Progress returns the current progress snapshot.
func (c *RunCounters) Progress() Progress {
	p := Progress{Records: c.records.Load(), Total: c.total.Load()}
	if p.Total < 0 {
		p.Total = 0
	}
	if start := c.start.Load(); start > 0 {
		p.ElapsedSec = time.Since(time.Unix(0, start)).Seconds()
	}
	if p.ElapsedSec > 0 {
		p.ReqPerSec = float64(p.Records) / p.ElapsedSec
	}
	if p.Total > 0 {
		p.Fraction = float64(p.Records) / float64(p.Total)
		if p.ReqPerSec > 0 && p.Total > p.Records {
			p.ETASec = float64(p.Total-p.Records) / p.ReqPerSec
		}
	}
	if f, ok := c.latSrc.Load().(func() (float64, bool)); ok {
		if v, have := f(); have {
			p.P99DemandLatCycles = v
		}
	}
	return p
}
