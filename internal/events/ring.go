package events

import "sync/atomic"

// Ring is a fixed-capacity drop-oldest event buffer. One goroutine pushes;
// the buffer contents are read only after the producing run has stopped
// (Events), while the drop counter is safe to read live (Dropped).
type Ring struct {
	buf     []Event
	pos     int  // next write index
	full    bool // the buffer has wrapped at least once
	dropped atomic.Uint64
}

// NewRing builds a ring with the given capacity (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// push appends ev, overwriting (and counting as dropped) the oldest event
// once the ring is full. No allocation after construction.
func (r *Ring) push(ev Event) {
	if r.full {
		r.dropped.Add(1)
	}
	r.buf[r.pos] = ev
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
		r.full = true
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.pos
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Dropped returns how many events were overwritten before being consumed.
// Safe to call while the producer is still pushing.
func (r *Ring) Dropped() uint64 { return r.dropped.Load() }

// Events returns the retained events oldest-first. Call only after the
// producing goroutine has stopped (the engine's run has returned).
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.pos]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.pos:]...)
	out = append(out, r.buf[:r.pos]...)
	return out
}
