package cache

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

// This file pins the struct-of-arrays Cache against refCache, a line-struct
// (AoS) port of the pre-SoA implementation kept here as an executable
// specification. The property test and the fuzz target drive both through
// identical operation sequences and demand equality of every return value,
// every statistics counter, the DRRIP duel state and the final residency map
// — so the packed tag lane, the way bitmasks and the mask-based victim paths
// cannot drift from the semantics the AoS scans defined.

type refLine struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool
	stamp      uint64
	rrpv       uint8
	origin     uint8
}

type refCache struct {
	cfg     Config
	sets    [][]refLine
	setMask uint64
	clock   uint64
	rng     *rand.Rand
	stats   Stats
	psel    int
	brip    int
}

func newRef(cfg Config) *refCache {
	blocks := cfg.SizeBytes / addr.BlockBytes
	nsets := blocks / cfg.Ways
	r := &refCache{
		cfg:     cfg,
		sets:    make([][]refLine, nsets),
		setMask: uint64(nsets - 1),
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	store := make([]refLine, blocks)
	for i := range r.sets {
		r.sets[i], store = store[:cfg.Ways], store[cfg.Ways:]
	}
	return r
}

func refLog2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func (c *refCache) index(b addr.BlockNum) (set []refLine, tag uint64) {
	idx := uint64(b) & c.setMask
	return c.sets[idx], uint64(b) >> uint(refLog2(c.setMask+1))
}

func (c *refCache) accessOrigin(b addr.BlockNum, write bool) (hit, firstUse bool, origin uint8) {
	c.clock++
	c.stats.DemandAccesses++
	set, tag := c.index(b)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.stats.DemandHits++
			if l.prefetched {
				c.stats.UsefulPrefetches++
				l.prefetched = false
				firstUse = true
				origin = l.origin
				l.origin = 0
			}
			if write {
				l.dirty = true
			}
			c.promote(l)
			return true, firstUse, origin
		}
	}
	c.stats.DemandMisses++
	if c.cfg.Policy == DRRIP {
		switch duelKind(uint64(b) & c.setMask) {
		case 0:
			if c.psel < 1024 {
				c.psel++
			}
		case 1:
			if c.psel > -1024 {
				c.psel--
			}
		}
	}
	return false, false, 0
}

func (c *refCache) contains(b addr.BlockNum) bool {
	set, tag := c.index(b)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

func (c *refCache) fillOrigin(b addr.BlockNum, prefetch, write bool, origin uint8) EvictInfo {
	c.clock++
	set, tag := c.index(b)
	victim := -1
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			if write {
				l.dirty = true
			}
			return EvictInfo{}
		}
		if !l.valid && victim == -1 {
			victim = i
		}
	}
	var ev EvictInfo
	if victim == -1 {
		victim = c.victim(set)
		v := &set[victim]
		ev = EvictInfo{Valid: true, Block: c.reconstruct(b, v.tag), Dirty: v.dirty, Prefetched: v.prefetched, Origin: v.origin}
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
		}
		if v.prefetched {
			c.stats.WastedPrefetches++
		} else if prefetch {
			c.stats.PollutionEvicts++
		}
	}
	l := &set[victim]
	*l = refLine{tag: tag, valid: true, dirty: write, prefetched: prefetch}
	l.stamp = c.clock
	switch {
	case prefetch:
		l.origin = origin
		c.stats.PrefetchFills++
		l.rrpv = maxRRPV
	default:
		c.stats.DemandFills++
		l.rrpv = c.insertRRPV(uint64(b) & c.setMask)
	}
	return ev
}

func (c *refCache) insertRRPV(idx uint64) uint8 {
	if c.cfg.Policy != DRRIP {
		return maxRRPV - 1
	}
	bimodal := false
	switch duelKind(idx) {
	case 0:
		bimodal = false
	case 1:
		bimodal = true
	default:
		bimodal = c.psel > 0
	}
	if !bimodal {
		return maxRRPV - 1
	}
	c.brip++
	if c.brip%32 == 0 {
		return maxRRPV - 1
	}
	return maxRRPV
}

func (c *refCache) invalidate(b addr.BlockNum) (wasDirty bool) {
	set, tag := c.index(b)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			wasDirty = l.dirty
			*l = refLine{}
			return wasDirty
		}
	}
	return false
}

func (c *refCache) reconstruct(incoming addr.BlockNum, tag uint64) addr.BlockNum {
	idx := uint64(incoming) & c.setMask
	return addr.BlockNum(tag<<uint(refLog2(c.setMask+1)) | idx)
}

func (c *refCache) promote(l *refLine) {
	switch c.cfg.Policy {
	case LRU, Random:
		l.stamp = c.clock
	case SRRIP, DRRIP:
		l.rrpv = 0
	}
}

func (c *refCache) victim(set []refLine) int {
	switch c.cfg.Policy {
	case LRU:
		best := 0
		for i := 1; i < len(set); i++ {
			if set[i].stamp < set[best].stamp {
				best = i
			}
		}
		return best
	case SRRIP, DRRIP:
		for {
			for i := range set {
				if set[i].rrpv >= maxRRPV {
					return i
				}
			}
			for i := range set {
				set[i].rrpv++
			}
		}
	case Random:
		return c.rng.Intn(len(set))
	}
	return 0
}

// runEquivOps drives a SoA Cache and the AoS reference through the operation
// stream encoded in ops (3 bytes per op: kind+flags, block lo, block hi) and
// fails on the first divergence of any return value or counter. The block
// domain is 4× capacity so fills evict constantly.
func runEquivOps(t testing.TB, cfg Config, ops []byte) {
	c := New(cfg)
	r := newRef(cfg)
	domain := uint64(cfg.SizeBytes/addr.BlockBytes) * 4
	for n := 0; n+3 <= len(ops); n += 3 {
		k := ops[n]
		b := addr.BlockNum((uint64(ops[n+1]) | uint64(ops[n+2])<<8) % domain)
		write := k&4 != 0
		prefetch := k&8 != 0
		origin := k >> 4
		switch k % 4 {
		case 0:
			gh, gf, go_ := c.AccessOrigin(b, write)
			wh, wf, wo := r.accessOrigin(b, write)
			if gh != wh || gf != wf || go_ != wo {
				t.Fatalf("op %d: AccessOrigin(%d, %v) = (%v,%v,%d), reference (%v,%v,%d)", n/3, b, write, gh, gf, go_, wh, wf, wo)
			}
		case 1:
			if got, want := c.Contains(b), r.contains(b); got != want {
				t.Fatalf("op %d: Contains(%d) = %v, reference %v", n/3, b, got, want)
			}
		case 2:
			if got, want := c.FillOrigin(b, prefetch, write, origin), r.fillOrigin(b, prefetch, write, origin); got != want {
				t.Fatalf("op %d: FillOrigin(%d, %v, %v, %d) = %+v, reference %+v", n/3, b, prefetch, write, origin, got, want)
			}
		case 3:
			if got, want := c.Invalidate(b), r.invalidate(b); got != want {
				t.Fatalf("op %d: Invalidate(%d) = %v, reference %v", n/3, b, got, want)
			}
		}
		if c.Stats() != r.stats {
			t.Fatalf("op %d (kind %d, block %d): stats diverged:\nSoA %+v\nref %+v", n/3, k%4, b, c.Stats(), r.stats)
		}
		if c.psel != r.psel || c.brip != r.brip {
			t.Fatalf("op %d: duel state diverged: psel %d/%d brip %d/%d", n/3, c.psel, r.psel, c.brip, r.brip)
		}
	}
	// Final residency sweep: every block in the domain agrees.
	for b := uint64(0); b < domain; b++ {
		if got, want := c.Contains(addr.BlockNum(b)), r.contains(addr.BlockNum(b)); got != want {
			t.Fatalf("final residency of block %d: SoA %v, reference %v", b, got, want)
		}
	}
}

// equivConfigs covers the unrolled scan exactly (4-way), the tail loop
// (6-way), and the production shape (16-way, fewer sets than default so
// evictions still happen).
func equivConfigs(p Policy) []Config {
	return []Config{
		{SizeBytes: 64 * addr.BlockBytes, Ways: 4, Policy: p, Seed: 11},
		{SizeBytes: 48 * addr.BlockBytes, Ways: 6, Policy: p, Seed: 11},
		{SizeBytes: 256 * addr.BlockBytes, Ways: 16, Policy: p, Seed: 11},
	}
}

// TestSoAMatchesReference is the property test: long seeded-random operation
// sequences over every policy and three set shapes.
func TestSoAMatchesReference(t *testing.T) {
	for _, p := range Policies() {
		for _, cfg := range equivConfigs(p) {
			t.Run(p.String()+"/"+itoa(cfg.Ways)+"way", func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(cfg.Ways)*1000 + int64(p)))
				ops := make([]byte, 3*20_000)
				rng.Read(ops)
				runEquivOps(t, cfg, ops)
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// FuzzSoAEquivalence lets the fuzzer hunt for operation sequences that split
// the SoA cache from the AoS reference. Run with
//
//	go test -fuzz=FuzzSoAEquivalence ./internal/cache/
func FuzzSoAEquivalence(f *testing.F) {
	f.Add(uint8(0), []byte{0, 1, 2, 2, 3, 4, 8, 5, 6})
	f.Add(uint8(2), []byte{2, 0, 0, 2, 0, 1, 0, 0, 0, 3, 0, 0})
	f.Add(uint8(3), []byte{10, 7, 7, 14, 7, 7, 0, 7, 7})
	f.Fuzz(func(t *testing.T, policy uint8, ops []byte) {
		if len(ops) > 3*4096 {
			ops = ops[:3*4096]
		}
		cfg := Config{SizeBytes: 48 * addr.BlockBytes, Ways: 6, Policy: Policy(policy % 4), Seed: 7}
		runEquivOps(t, cfg, ops)
	})
}
