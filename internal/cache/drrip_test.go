package cache

import (
	"testing"

	"repro/internal/addr"
)

func TestDRRIPBasicOperation(t *testing.T) {
	// 64 sets so both leader constituencies exist.
	c := New(Config{SizeBytes: 64 * 2 * 64, Ways: 2, Policy: DRRIP})
	b := addr.BlockNum(0)
	if c.Access(b, false) {
		t.Fatal("cold hit")
	}
	c.Fill(b, false, false)
	if !c.Access(b, false) {
		t.Fatal("miss after fill")
	}
}

func TestDRRIPPolicyRoundTrip(t *testing.T) {
	p, err := ParsePolicy("drrip")
	if err != nil || p != DRRIP {
		t.Fatal("parse drrip")
	}
	if DRRIP.String() != "drrip" {
		t.Fatal("string drrip")
	}
	found := false
	for _, p := range Policies() {
		if p == DRRIP {
			found = true
		}
	}
	if !found {
		t.Fatal("DRRIP missing from Policies()")
	}
}

func TestDuelKindDistribution(t *testing.T) {
	srrip, brrip, follower := 0, 0, 0
	for idx := uint64(0); idx < 1024; idx++ {
		switch duelKind(idx) {
		case 0:
			srrip++
		case 1:
			brrip++
		default:
			follower++
		}
	}
	if srrip != 32 || brrip != 32 || follower != 960 {
		t.Fatalf("duel distribution %d/%d/%d", srrip, brrip, follower)
	}
}

func TestDRRIPAdaptsToThrashing(t *testing.T) {
	// A cyclic working set larger than the cache thrashes LRU/SRRIP
	// completely (0 % hits); DRRIP's bimodal insertion retains a subset
	// of the lines and scores some hits.
	run := func(policy Policy) float64 {
		c := New(Config{SizeBytes: 64 * 4 * 64, Ways: 4, Policy: policy}) // 256 blocks
		// Working set of 512 blocks in the same set-population,
		// cycled repeatedly.
		for round := 0; round < 40; round++ {
			for i := 0; i < 512; i++ {
				b := addr.BlockNum(i)
				if !c.Access(b, false) {
					c.Fill(b, false, false)
				}
			}
		}
		return c.Stats().HitRate()
	}
	lru := run(LRU)
	drrip := run(DRRIP)
	if lru != 0 {
		t.Fatalf("LRU hit rate %.3f on a pure thrash loop, want 0", lru)
	}
	if drrip <= 0.05 {
		t.Fatalf("DRRIP hit rate %.3f; set dueling failed to adapt", drrip)
	}
}

func TestDRRIPNoWorseOnFriendlyPattern(t *testing.T) {
	// A cache-resident working set must stay ~100 % hits under DRRIP too.
	c := New(Config{SizeBytes: 64 * 4 * 64, Ways: 4, Policy: DRRIP})
	for round := 0; round < 10; round++ {
		for i := 0; i < 128; i++ {
			b := addr.BlockNum(i)
			if !c.Access(b, false) {
				c.Fill(b, false, false)
			}
		}
	}
	if hr := c.Stats().HitRate(); hr < 0.85 {
		t.Fatalf("DRRIP hit rate %.3f on resident set", hr)
	}
}

func TestPSELSaturates(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 2 * 64, Ways: 2, Policy: DRRIP})
	// Miss endlessly in an SRRIP leader set (set 0): psel must rise and
	// saturate without overflow.
	for i := 0; i < 5000; i++ {
		b := addr.BlockNum(i * 64) // all map to set 0
		c.Access(b, false)
	}
	if c.psel > 1024 || c.psel < -1024 {
		t.Fatalf("psel %d out of bounds", c.psel)
	}
	if c.psel <= 0 {
		t.Fatalf("psel %d; SRRIP-leader misses should favour bimodal", c.psel)
	}
}
