package cache

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

func benchCache(b *testing.B, policy Policy) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 16, Policy: policy})
	rng := rand.New(rand.NewSource(1))
	blocks := make([]addr.BlockNum, 1<<16)
	for i := range blocks {
		blocks[i] = addr.BlockNum(rng.Intn(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i&(len(blocks)-1)]
		if !c.Access(blk, i%5 == 0) {
			c.Fill(blk, i%7 == 0, false)
		}
	}
}

func BenchmarkCacheLRU(b *testing.B)   { benchCache(b, LRU) }
func BenchmarkCacheSRRIP(b *testing.B) { benchCache(b, SRRIP) }
func BenchmarkCacheDRRIP(b *testing.B) { benchCache(b, DRRIP) }

// fullCache builds a cache with every way of every set valid, so the tag
// scan in the benchmarks below always walks a full valid mask — the
// worst-case (and steady-state) shape of the packed-lane scan. Returns the
// resident blocks; their count is a power of two for cheap masking.
func fullCache() (*Cache, []addr.BlockNum) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 16, Policy: LRU})
	blocks := make([]addr.BlockNum, 0, c.nsets*c.ways)
	for tag := 1; tag <= c.ways; tag++ {
		for set := 0; set < c.nsets; set++ {
			blk := addr.BlockNum(uint64(set) | uint64(tag)<<c.tagShift)
			c.Fill(blk, false, false)
			blocks = append(blocks, blk)
		}
	}
	return c, blocks
}

// BenchmarkCacheAccessHit measures the hit path: packed tag-lane scan plus
// the hot replacement-state touch (LRU stamp), no eviction. Must stay
// allocation-free (pinned in BENCH_baseline.json).
func BenchmarkCacheAccessHit(b *testing.B) {
	c, blocks := fullCache()
	mask := len(blocks) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Access(blocks[i&mask], false) {
			b.Fatal("expected hit")
		}
	}
}

// BenchmarkCacheAccessMiss measures the miss path: a full-mask scan that
// matches nothing (tag 0 is never resident — fullCache fills tags 1..ways)
// plus miss accounting. Misses do not mutate residency, so every iteration
// stays a miss.
func BenchmarkCacheAccessMiss(b *testing.B) {
	c, _ := fullCache()
	mask := c.nsets - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Access(addr.BlockNum(i&mask), false) {
			b.Fatal("expected miss")
		}
	}
}

// BenchmarkCacheContains measures the stat-free probe: scan only, no
// replacement-state update (the prefetcher's dedup filter path).
func BenchmarkCacheContains(b *testing.B) {
	c, blocks := fullCache()
	mask := len(blocks) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Contains(blocks[i&mask]) {
			b.Fatal("expected resident")
		}
	}
}
