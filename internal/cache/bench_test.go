package cache

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

func benchCache(b *testing.B, policy Policy) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 16, Policy: policy})
	rng := rand.New(rand.NewSource(1))
	blocks := make([]addr.BlockNum, 1<<16)
	for i := range blocks {
		blocks[i] = addr.BlockNum(rng.Intn(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i&(len(blocks)-1)]
		if !c.Access(blk, i%5 == 0) {
			c.Fill(blk, i%7 == 0, false)
		}
	}
}

func BenchmarkCacheLRU(b *testing.B)   { benchCache(b, LRU) }
func BenchmarkCacheSRRIP(b *testing.B) { benchCache(b, SRRIP) }
func BenchmarkCacheDRRIP(b *testing.B) { benchCache(b, DRRIP) }
