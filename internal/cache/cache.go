// Package cache implements the system cache (SC) of the Planaria
// reproduction: a set-associative, write-back, write-allocate cache operating
// on 64-byte blocks. The paper's SC is 4 MB / 16-way, address-sliced across
// four DRAM channels, so the simulator instantiates one 1 MB Cache per
// channel.
//
// The cache tracks prefetched lines so the simulator can measure prefetch
// accuracy (useful vs. wasted prefetch fills) and pollution (demand lines
// evicted by prefetches). Three replacement policies are provided, both to
// serve the simulator and to back the paper's claim that replacement policy
// alone does not rescue SC performance.
//
// The storage layout is struct-of-arrays rather than a slice of line
// structs: the tag of every way lives in one contiguous packed lane
// ([]uint64) scanned by a branch-light unrolled loop, the valid/dirty/
// prefetched flags are per-set 64-bit way masks, and the cold per-line
// fields (replacement state, prefetch origin) sit in parallel arrays that
// are touched only on a hit or a fill. A demand access therefore reads
// exactly ways×8 bytes of tag lane plus one mask word — the whole probe for
// a 16-way set is two cache lines — instead of walking 40-byte line structs.
// See docs/PERFORMANCE.md, "Hot path anatomy".
package cache

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/addr"
)

// Policy selects the replacement policy.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	SRRIP
	// DRRIP dynamically selects between SRRIP and bimodal insertion via
	// set dueling (Jaleel et al., ISCA 2010) — one of the
	// "state-of-the-art cache replacement policies" the paper's
	// introduction reports as insufficient for the SC.
	DRRIP
	Random
)

// String returns the policy mnemonic.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case SRRIP:
		return "srrip"
	case DRRIP:
		return "drrip"
	case Random:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy is the inverse of String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "lru":
		return LRU, nil
	case "srrip":
		return SRRIP, nil
	case "drrip":
		return DRRIP, nil
	case "random":
		return Random, nil
	}
	return 0, fmt.Errorf("cache: unknown policy %q", s)
}

// Policies lists the selectable replacement policies.
func Policies() []Policy { return []Policy{LRU, SRRIP, DRRIP, Random} }

// Config sizes a Cache.
type Config struct {
	SizeBytes int    // total capacity in bytes
	Ways      int    // associativity
	Policy    Policy // replacement policy
	Seed      int64  // RNG seed (Random policy only)
}

// DefaultConfig is one channel slice of the paper's SC: 1 MB, 16-way, LRU.
func DefaultConfig() Config {
	return Config{SizeBytes: 1 << 20, Ways: 16, Policy: LRU}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive size or ways: %+v", c)
	}
	if c.Ways > 64 {
		// The valid/dirty/prefetched flags are per-set 64-bit way masks.
		return fmt.Errorf("cache: associativity %d exceeds the 64-way mask limit", c.Ways)
	}
	blocks := c.SizeBytes / addr.BlockBytes
	if blocks == 0 || blocks%c.Ways != 0 {
		return fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, c.Ways)
	}
	sets := blocks / c.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

const maxRRPV = 3 // 2-bit SRRIP

// Stats accumulates cache events. All counters are monotonically increasing.
type Stats struct {
	DemandAccesses   uint64 `json:"demand_accesses"`
	DemandHits       uint64 `json:"demand_hits"`
	DemandMisses     uint64 `json:"demand_misses"`
	PrefetchFills    uint64 `json:"prefetch_fills"`
	DemandFills      uint64 `json:"demand_fills"`
	UsefulPrefetches uint64 `json:"useful_prefetches"` // demand hit on a line filled by prefetch
	WastedPrefetches uint64 `json:"wasted_prefetches"` // prefetched line evicted before any demand hit
	Writebacks       uint64 `json:"writebacks"`        // dirty evictions
	Evictions        uint64 `json:"evictions"`
	PollutionEvicts  uint64 `json:"pollution_evicts"` // demand-resident line evicted to make room for a prefetch
}

// HitRate returns demand hits / demand accesses.
func (s Stats) HitRate() float64 {
	if s.DemandAccesses == 0 {
		return 0
	}
	return float64(s.DemandHits) / float64(s.DemandAccesses)
}

// Accuracy returns useful prefetch fills / prefetch fills.
func (s Stats) Accuracy() float64 {
	if s.PrefetchFills == 0 {
		return 0
	}
	return float64(s.UsefulPrefetches) / float64(s.PrefetchFills)
}

// Cache is a single set-associative cache slice. It is not safe for
// concurrent use; the simulator drives each channel slice from one goroutine.
//
// State is held struct-of-arrays. Set s owns ways [s*ways, (s+1)*ways) of
// every per-line lane; the flag lanes hold one 64-bit way mask per set.
type Cache struct {
	cfg      Config
	ways     int
	nsets    int
	setMask  uint64
	tagShift uint // log2(set count), precomputed: tag = block >> tagShift
	clock    uint64
	rng      *rand.Rand
	stats    Stats

	// Hot lane: the packed tags of every way, plus the per-set validity
	// masks the scan filters against. These are the only words a miss
	// (the common probe outcome under cache-hostile traffic) ever reads.
	tags  []uint64 // len nsets*ways
	valid []uint64 // len nsets; bit w = way w holds a valid line

	// Warm flag lanes: touched on hits, fills and evictions only.
	dirty []uint64 // len nsets; bit w = way w is dirty
	pref  []uint64 // len nsets; bit w = way w is an un-demanded prefetch

	// Cold lanes, parallel to tags: replacement state and prefetch origin.
	stamp  []uint64 // LRU recency stamps
	rrpv   []uint8  // SRRIP/DRRIP re-reference predictions
	origin []uint8  // opaque caller origin tag of prefetched lines (0 = untagged)

	// fillAt is the optional fill-timestamp lane behind the telemetry
	// first-use-gap histogram: nil unless EnableFillStamps was called (so
	// runs without telemetry allocate and touch nothing), it records the
	// simulation cycle a prefetched line was filled at (via StampFill —
	// the cache's own clock counts accesses, not cycles) until the line's
	// first demand use reads it back through FillStamp.
	fillAt []uint64

	// DRRIP set-dueling state: psel > 0 favours bimodal insertion,
	// ≤ 0 favours SRRIP insertion; brip counts fills for the 1-in-32
	// near insertions of the bimodal policy.
	psel int
	brip int
}

// New builds a cache; it panics on an invalid Config (a construction-time
// programming error, per the package contract).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	blocks := cfg.SizeBytes / addr.BlockBytes
	nsets := blocks / cfg.Ways
	c := &Cache{
		cfg:      cfg,
		ways:     cfg.Ways,
		nsets:    nsets,
		setMask:  uint64(nsets - 1),
		tagShift: uint(bits.TrailingZeros64(uint64(nsets))),
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	// Two backing allocations for the whole cache: one uint64 arena for
	// the tag lane, stamps and the three mask lanes, one uint8 arena for
	// the byte lanes. Keeps construction cost flat (the engine builds
	// 4 × SubShards caches per run) and the hot lanes contiguous.
	u64 := make([]uint64, 2*blocks+3*nsets)
	c.tags, u64 = u64[:blocks:blocks], u64[blocks:]
	c.stamp, u64 = u64[:blocks:blocks], u64[blocks:]
	c.valid, u64 = u64[:nsets:nsets], u64[nsets:]
	c.dirty, u64 = u64[:nsets:nsets], u64[nsets:]
	c.pref = u64[:nsets:nsets]
	u8 := make([]uint8, 2*blocks)
	c.rrpv, c.origin = u8[:blocks:blocks], u8[blocks:]
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// EnableFillStamps allocates the fill-timestamp lane read by FillStamp.
// Idempotent; called once at engine construction when telemetry is
// enabled. Without it, StampFill and FillStamp are no-ops.
func (c *Cache) EnableFillStamps() {
	if c.fillAt == nil {
		c.fillAt = make([]uint64, c.nsets*c.ways)
	}
}

// StampFill records that resident block b was filled at the given
// simulation cycle. No-op when the block is absent or EnableFillStamps
// was never called.
func (c *Cache) StampFill(b addr.BlockNum, cycle uint64) {
	if c.fillAt == nil {
		return
	}
	set, tag := c.index(b)
	base := int(set) * c.ways
	if w := c.findWay(base, tag, c.valid[set]); w >= 0 {
		c.fillAt[base+w] = cycle
	}
}

// FillStamp returns and clears block b's fill-cycle stamp. ok is false
// when the block is absent, was never stamped, or stamps are disabled.
func (c *Cache) FillStamp(b addr.BlockNum) (cycle uint64, ok bool) {
	if c.fillAt == nil {
		return 0, false
	}
	set, tag := c.index(b)
	base := int(set) * c.ways
	w := c.findWay(base, tag, c.valid[set])
	if w < 0 || c.fillAt[base+w] == 0 {
		return 0, false
	}
	cycle = c.fillAt[base+w]
	c.fillAt[base+w] = 0
	return cycle, true
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.nsets }

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics counters without touching cache contents
// (used to discard warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// index splits a block number into its set index and tag.
func (c *Cache) index(b addr.BlockNum) (set uint64, tag uint64) {
	return uint64(b) & c.setMask, uint64(b) >> c.tagShift
}

// findWay scans one set's slice of the packed tag lane for tag and returns
// the matching valid way, or -1. The scan is branch-light: a 4-way unrolled
// pass accumulates an equality mask over all ways (the per-way branches are
// almost-always-not-taken, so they predict perfectly), the set's valid mask
// filters stale tags of invalidated ways, and a single trailing-zeros pick
// resolves the way index. At most one valid way can match (Fill refuses
// duplicates), so lowest-bit pick equals the legacy first-match scan.
func (c *Cache) findWay(base int, tag, vmask uint64) int {
	tags := c.tags[base : base+c.ways : base+c.ways]
	var m uint64
	i := 0
	for ; i+4 <= len(tags); i += 4 {
		if tags[i] == tag {
			m |= 1 << uint(i)
		}
		if tags[i+1] == tag {
			m |= 2 << uint(i)
		}
		if tags[i+2] == tag {
			m |= 4 << uint(i)
		}
		if tags[i+3] == tag {
			m |= 8 << uint(i)
		}
	}
	for ; i < len(tags); i++ {
		if tags[i] == tag {
			m |= 1 << uint(i)
		}
	}
	m &= vmask
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(m)
}

// duelKind classifies a set for DRRIP set dueling: 0 = SRRIP leader,
// 1 = bimodal leader, 2 = follower. One set in 32 leads for each policy.
func duelKind(idx uint64) int {
	switch idx % 32 {
	case 0:
		return 0
	case 1:
		return 1
	}
	return 2
}

// Access performs a demand access for block b. It returns hit=true when the
// block is resident. On a hit the replacement state is promoted; misses do
// NOT allocate — the caller fills the line via Fill once the DRAM read
// completes, which keeps fill timing in the simulator's hands.
func (c *Cache) Access(b addr.BlockNum, write bool) (hit bool) {
	hit, _ = c.AccessInfo(b, write)
	return hit
}

// AccessInfo is Access with prefetch attribution: firstUse reports that the
// hit consumed a prefetched line for the first time (the event counted in
// Stats.UsefulPrefetches).
func (c *Cache) AccessInfo(b addr.BlockNum, write bool) (hit, firstUse bool) {
	hit, firstUse, _ = c.AccessOrigin(b, write)
	return hit, firstUse
}

// AccessOrigin is AccessInfo extended with the origin tag of the consumed
// prefetched line: when firstUse is true, origin carries the tag the line
// was filled with (see FillOrigin); it is 0 otherwise.
func (c *Cache) AccessOrigin(b addr.BlockNum, write bool) (hit, firstUse bool, origin uint8) {
	c.clock++
	c.stats.DemandAccesses++
	set, tag := c.index(b)
	base := int(set) * c.ways
	if w := c.findWay(base, tag, c.valid[set]); w >= 0 {
		c.stats.DemandHits++
		bit := uint64(1) << uint(w)
		if c.pref[set]&bit != 0 {
			c.stats.UsefulPrefetches++
			c.pref[set] &^= bit
			firstUse = true
			origin = c.origin[base+w]
			c.origin[base+w] = 0
		}
		if write {
			c.dirty[set] |= bit
		}
		c.promote(base + w)
		return true, firstUse, origin
	}
	c.stats.DemandMisses++
	if c.cfg.Policy == DRRIP {
		// Set dueling: a miss in a leader set votes against its policy.
		switch duelKind(set) {
		case 0: // SRRIP leader missed → bimodal gains favour
			if c.psel < 1024 {
				c.psel++
			}
		case 1: // bimodal leader missed → SRRIP gains favour
			if c.psel > -1024 {
				c.psel--
			}
		}
	}
	return false, false, 0
}

// Contains probes for block b without touching replacement state or
// statistics. Prefetchers use it to filter already-resident targets.
func (c *Cache) Contains(b addr.BlockNum) bool {
	set, tag := c.index(b)
	return c.findWay(int(set)*c.ways, tag, c.valid[set]) >= 0
}

// EvictInfo describes a victim line.
type EvictInfo struct {
	Valid      bool          // a valid line was evicted
	Block      addr.BlockNum // the evicted block
	Dirty      bool          // requires a writeback
	Prefetched bool          // was an unused prefetch
	Origin     uint8         // origin tag of the evicted prefetch (0 = untagged)
}

// Fill inserts block b after a miss (demand or prefetch). If the block is
// already resident the fill is a no-op (a racing fill), and the returned
// EvictInfo is zero. The victim, if any, is reported so the simulator can
// issue the writeback.
func (c *Cache) Fill(b addr.BlockNum, prefetch, write bool) EvictInfo {
	return c.FillOrigin(b, prefetch, write, 0)
}

// FillOrigin is Fill with an origin tag: a prefetch fill stores the opaque
// tag in the line, and the tag comes back from AccessOrigin when the line
// is demanded for the first time. Demand fills ignore the tag.
func (c *Cache) FillOrigin(b addr.BlockNum, prefetch, write bool, origin uint8) EvictInfo {
	c.clock++
	set, tag := c.index(b)
	base := int(set) * c.ways
	vmask := c.valid[set]
	if w := c.findWay(base, tag, vmask); w >= 0 {
		// Already present (e.g. prefetch landed after a demand fill).
		// Just merge the dirty bit.
		if write {
			c.dirty[set] |= 1 << uint(w)
		}
		return EvictInfo{}
	}
	var victim int
	var ev EvictInfo
	if free := ^vmask & (1<<uint(c.ways) - 1); free != 0 {
		// An invalid way exists: lowest index first, as the legacy
		// first-invalid scan chose.
		victim = bits.TrailingZeros64(free)
	} else {
		victim = c.victim(set, base)
		bit := uint64(1) << uint(victim)
		vDirty := c.dirty[set]&bit != 0
		vPref := c.pref[set]&bit != 0
		ev = EvictInfo{Valid: true, Block: c.reconstruct(b, c.tags[base+victim]), Dirty: vDirty, Prefetched: vPref, Origin: c.origin[base+victim]}
		c.stats.Evictions++
		if vDirty {
			c.stats.Writebacks++
		}
		if vPref {
			c.stats.WastedPrefetches++
		} else if prefetch {
			c.stats.PollutionEvicts++
		}
	}
	bit := uint64(1) << uint(victim)
	c.tags[base+victim] = tag
	if c.fillAt != nil {
		c.fillAt[base+victim] = 0 // new occupant: drop the victim's stamp
	}
	c.valid[set] |= bit
	if write {
		c.dirty[set] |= bit
	} else {
		c.dirty[set] &^= bit
	}
	c.origin[base+victim] = 0
	c.stamp[base+victim] = c.clock // LRU treats fills uniformly
	switch {
	case prefetch:
		c.pref[set] |= bit
		c.origin[base+victim] = origin
		c.stats.PrefetchFills++
		// RRIP-family policies insert prefetches with a distant
		// re-reference prediction so inaccurate prefetchers pollute
		// less.
		c.rrpv[base+victim] = maxRRPV
	default:
		c.pref[set] &^= bit
		c.stats.DemandFills++
		c.rrpv[base+victim] = c.insertRRPV(set)
	}
	return ev
}

// insertRRPV picks the demand-fill insertion RRPV under the active policy.
func (c *Cache) insertRRPV(idx uint64) uint8 {
	if c.cfg.Policy != DRRIP {
		return maxRRPV - 1 // SRRIP default (ignored by LRU/Random)
	}
	bimodal := false
	switch duelKind(idx) {
	case 0:
		bimodal = false
	case 1:
		bimodal = true
	default:
		bimodal = c.psel > 0
	}
	if !bimodal {
		return maxRRPV - 1
	}
	// Bimodal: mostly distant, occasionally near.
	c.brip++
	if c.brip%32 == 0 {
		return maxRRPV - 1
	}
	return maxRRPV
}

// Invalidate drops block b if resident, returning whether it was dirty.
func (c *Cache) Invalidate(b addr.BlockNum) (wasDirty bool) {
	set, tag := c.index(b)
	base := int(set) * c.ways
	w := c.findWay(base, tag, c.valid[set])
	if w < 0 {
		return false
	}
	bit := uint64(1) << uint(w)
	wasDirty = c.dirty[set]&bit != 0
	c.valid[set] &^= bit
	c.dirty[set] &^= bit
	c.pref[set] &^= bit
	c.tags[base+w] = 0
	c.stamp[base+w] = 0
	c.rrpv[base+w] = 0
	c.origin[base+w] = 0
	if c.fillAt != nil {
		c.fillAt[base+w] = 0
	}
	return wasDirty
}

// reconstruct rebuilds the block number of a victim from its tag and the set
// index of the incoming block (same set by construction).
func (c *Cache) reconstruct(incoming addr.BlockNum, tag uint64) addr.BlockNum {
	idx := uint64(incoming) & c.setMask
	return addr.BlockNum(tag<<c.tagShift | idx)
}

// promote refreshes the replacement state of the line at lane index w
// (set base + way) after a demand hit.
func (c *Cache) promote(w int) {
	switch c.cfg.Policy {
	case LRU, Random:
		c.stamp[w] = c.clock
	case SRRIP, DRRIP:
		c.rrpv[w] = 0
	}
}

// victim picks the way to evict from a full set under the active policy.
// Tie-breaks replicate the legacy AoS scans exactly: LRU takes the lowest
// way among minimal stamps, SRRIP/DRRIP the lowest way at maxRRPV (ageing
// every way until one reaches it), Random consumes the seeded RNG in the
// same sequence.
func (c *Cache) victim(set uint64, base int) int {
	switch c.cfg.Policy {
	case LRU:
		stamps := c.stamp[base : base+c.ways : base+c.ways]
		best := 0
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[best] {
				best = i
			}
		}
		return best
	case SRRIP, DRRIP:
		rr := c.rrpv[base : base+c.ways : base+c.ways]
		for {
			for i := range rr {
				if rr[i] >= maxRRPV {
					return i
				}
			}
			for i := range rr {
				rr[i]++
			}
		}
	case Random:
		return c.rng.Intn(c.ways)
	}
	return 0
}
