// Package cache implements the system cache (SC) of the Planaria
// reproduction: a set-associative, write-back, write-allocate cache operating
// on 64-byte blocks. The paper's SC is 4 MB / 16-way, address-sliced across
// four DRAM channels, so the simulator instantiates one 1 MB Cache per
// channel.
//
// The cache tracks prefetched lines so the simulator can measure prefetch
// accuracy (useful vs. wasted prefetch fills) and pollution (demand lines
// evicted by prefetches). Three replacement policies are provided, both to
// serve the simulator and to back the paper's claim that replacement policy
// alone does not rescue SC performance.
package cache

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
)

// Policy selects the replacement policy.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	SRRIP
	// DRRIP dynamically selects between SRRIP and bimodal insertion via
	// set dueling (Jaleel et al., ISCA 2010) — one of the
	// "state-of-the-art cache replacement policies" the paper's
	// introduction reports as insufficient for the SC.
	DRRIP
	Random
)

// String returns the policy mnemonic.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case SRRIP:
		return "srrip"
	case DRRIP:
		return "drrip"
	case Random:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy is the inverse of String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "lru":
		return LRU, nil
	case "srrip":
		return SRRIP, nil
	case "drrip":
		return DRRIP, nil
	case "random":
		return Random, nil
	}
	return 0, fmt.Errorf("cache: unknown policy %q", s)
}

// Policies lists the selectable replacement policies.
func Policies() []Policy { return []Policy{LRU, SRRIP, DRRIP, Random} }

// Config sizes a Cache.
type Config struct {
	SizeBytes int    // total capacity in bytes
	Ways      int    // associativity
	Policy    Policy // replacement policy
	Seed      int64  // RNG seed (Random policy only)
}

// DefaultConfig is one channel slice of the paper's SC: 1 MB, 16-way, LRU.
func DefaultConfig() Config {
	return Config{SizeBytes: 1 << 20, Ways: 16, Policy: LRU}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive size or ways: %+v", c)
	}
	blocks := c.SizeBytes / addr.BlockBytes
	if blocks == 0 || blocks%c.Ways != 0 {
		return fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, c.Ways)
	}
	sets := blocks / c.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

const maxRRPV = 3 // 2-bit SRRIP

type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool // filled by a prefetch and not yet demanded
	stamp      uint64
	rrpv       uint8
	// origin is an opaque caller-assigned tag for prefetched lines (the
	// simulator interns sub-prefetcher names to these ids); 0 means
	// untagged. It rides in the line so the caller needs no side table
	// keyed by block number.
	origin uint8
}

// Stats accumulates cache events. All counters are monotonically increasing.
type Stats struct {
	DemandAccesses   uint64 `json:"demand_accesses"`
	DemandHits       uint64 `json:"demand_hits"`
	DemandMisses     uint64 `json:"demand_misses"`
	PrefetchFills    uint64 `json:"prefetch_fills"`
	DemandFills      uint64 `json:"demand_fills"`
	UsefulPrefetches uint64 `json:"useful_prefetches"` // demand hit on a line filled by prefetch
	WastedPrefetches uint64 `json:"wasted_prefetches"` // prefetched line evicted before any demand hit
	Writebacks       uint64 `json:"writebacks"`        // dirty evictions
	Evictions        uint64 `json:"evictions"`
	PollutionEvicts  uint64 `json:"pollution_evicts"` // demand-resident line evicted to make room for a prefetch
}

// HitRate returns demand hits / demand accesses.
func (s Stats) HitRate() float64 {
	if s.DemandAccesses == 0 {
		return 0
	}
	return float64(s.DemandHits) / float64(s.DemandAccesses)
}

// Accuracy returns useful prefetch fills / prefetch fills.
func (s Stats) Accuracy() float64 {
	if s.PrefetchFills == 0 {
		return 0
	}
	return float64(s.UsefulPrefetches) / float64(s.PrefetchFills)
}

// Cache is a single set-associative cache slice. It is not safe for
// concurrent use; the simulator drives each channel slice from one goroutine.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	clock   uint64
	rng     *rand.Rand
	stats   Stats

	// DRRIP set-dueling state: psel > 0 favours bimodal insertion,
	// ≤ 0 favours SRRIP insertion; brip counts fills for the 1-in-32
	// near insertions of the bimodal policy.
	psel int
	brip int
}

// New builds a cache; it panics on an invalid Config (a construction-time
// programming error, per the package contract).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	blocks := cfg.SizeBytes / addr.BlockBytes
	nsets := blocks / cfg.Ways
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, nsets),
		setMask: uint64(nsets - 1),
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	store := make([]line, blocks)
	for i := range c.sets {
		c.sets[i], store = store[:cfg.Ways], store[cfg.Ways:]
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics counters without touching cache contents
// (used to discard warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(b addr.BlockNum) (set []line, tag uint64) {
	idx := uint64(b) & c.setMask
	return c.sets[idx], uint64(b) >> uint(log2(c.setMask+1))
}

// duelKind classifies a set for DRRIP set dueling: 0 = SRRIP leader,
// 1 = bimodal leader, 2 = follower. One set in 32 leads for each policy.
func duelKind(idx uint64) int {
	switch idx % 32 {
	case 0:
		return 0
	case 1:
		return 1
	}
	return 2
}

// Access performs a demand access for block b. It returns hit=true when the
// block is resident. On a hit the replacement state is promoted; misses do
// NOT allocate — the caller fills the line via Fill once the DRAM read
// completes, which keeps fill timing in the simulator's hands.
func (c *Cache) Access(b addr.BlockNum, write bool) (hit bool) {
	hit, _ = c.AccessInfo(b, write)
	return hit
}

// AccessInfo is Access with prefetch attribution: firstUse reports that the
// hit consumed a prefetched line for the first time (the event counted in
// Stats.UsefulPrefetches).
func (c *Cache) AccessInfo(b addr.BlockNum, write bool) (hit, firstUse bool) {
	hit, firstUse, _ = c.AccessOrigin(b, write)
	return hit, firstUse
}

// AccessOrigin is AccessInfo extended with the origin tag of the consumed
// prefetched line: when firstUse is true, origin carries the tag the line
// was filled with (see FillOrigin); it is 0 otherwise.
func (c *Cache) AccessOrigin(b addr.BlockNum, write bool) (hit, firstUse bool, origin uint8) {
	c.clock++
	c.stats.DemandAccesses++
	set, tag := c.index(b)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.stats.DemandHits++
			if l.prefetched {
				c.stats.UsefulPrefetches++
				l.prefetched = false
				firstUse = true
				origin = l.origin
				l.origin = 0
			}
			if write {
				l.dirty = true
			}
			c.promote(l)
			return true, firstUse, origin
		}
	}
	c.stats.DemandMisses++
	if c.cfg.Policy == DRRIP {
		// Set dueling: a miss in a leader set votes against its policy.
		switch duelKind(uint64(b) & c.setMask) {
		case 0: // SRRIP leader missed → bimodal gains favour
			if c.psel < 1024 {
				c.psel++
			}
		case 1: // bimodal leader missed → SRRIP gains favour
			if c.psel > -1024 {
				c.psel--
			}
		}
	}
	return false, false, 0
}

// Contains probes for block b without touching replacement state or
// statistics. Prefetchers use it to filter already-resident targets.
func (c *Cache) Contains(b addr.BlockNum) bool {
	set, tag := c.index(b)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// EvictInfo describes a victim line.
type EvictInfo struct {
	Valid      bool          // a valid line was evicted
	Block      addr.BlockNum // the evicted block
	Dirty      bool          // requires a writeback
	Prefetched bool          // was an unused prefetch
	Origin     uint8         // origin tag of the evicted prefetch (0 = untagged)
}

// Fill inserts block b after a miss (demand or prefetch). If the block is
// already resident the fill is a no-op (a racing fill), and the returned
// EvictInfo is zero. The victim, if any, is reported so the simulator can
// issue the writeback.
func (c *Cache) Fill(b addr.BlockNum, prefetch, write bool) EvictInfo {
	return c.FillOrigin(b, prefetch, write, 0)
}

// FillOrigin is Fill with an origin tag: a prefetch fill stores the opaque
// tag in the line, and the tag comes back from AccessOrigin when the line
// is demanded for the first time. Demand fills ignore the tag.
func (c *Cache) FillOrigin(b addr.BlockNum, prefetch, write bool, origin uint8) EvictInfo {
	c.clock++
	set, tag := c.index(b)
	victim := -1
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			// Already present (e.g. prefetch landed after a demand
			// fill). Just merge the dirty bit.
			if write {
				l.dirty = true
			}
			return EvictInfo{}
		}
		if !l.valid && victim == -1 {
			victim = i
		}
	}
	var ev EvictInfo
	if victim == -1 {
		victim = c.victim(set)
		v := &set[victim]
		ev = EvictInfo{Valid: true, Block: c.reconstruct(b, v.tag), Dirty: v.dirty, Prefetched: v.prefetched, Origin: v.origin}
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
		}
		if v.prefetched {
			c.stats.WastedPrefetches++
		} else if prefetch {
			c.stats.PollutionEvicts++
		}
	}
	l := &set[victim]
	*l = line{tag: tag, valid: true, dirty: write, prefetched: prefetch}
	l.stamp = c.clock // LRU treats fills uniformly
	switch {
	case prefetch:
		l.origin = origin
		c.stats.PrefetchFills++
		// RRIP-family policies insert prefetches with a distant
		// re-reference prediction so inaccurate prefetchers pollute
		// less.
		l.rrpv = maxRRPV
	default:
		c.stats.DemandFills++
		l.rrpv = c.insertRRPV(uint64(b) & c.setMask)
	}
	return ev
}

// insertRRPV picks the demand-fill insertion RRPV under the active policy.
func (c *Cache) insertRRPV(idx uint64) uint8 {
	if c.cfg.Policy != DRRIP {
		return maxRRPV - 1 // SRRIP default (ignored by LRU/Random)
	}
	bimodal := false
	switch duelKind(idx) {
	case 0:
		bimodal = false
	case 1:
		bimodal = true
	default:
		bimodal = c.psel > 0
	}
	if !bimodal {
		return maxRRPV - 1
	}
	// Bimodal: mostly distant, occasionally near.
	c.brip++
	if c.brip%32 == 0 {
		return maxRRPV - 1
	}
	return maxRRPV
}

// Invalidate drops block b if resident, returning whether it was dirty.
func (c *Cache) Invalidate(b addr.BlockNum) (wasDirty bool) {
	set, tag := c.index(b)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			wasDirty = l.dirty
			*l = line{}
			return wasDirty
		}
	}
	return false
}

// reconstruct rebuilds the block number of a victim from its tag and the set
// index of the incoming block (same set by construction).
func (c *Cache) reconstruct(incoming addr.BlockNum, tag uint64) addr.BlockNum {
	idx := uint64(incoming) & c.setMask
	return addr.BlockNum(tag<<uint(log2(c.setMask+1)) | idx)
}

func (c *Cache) promote(l *line) {
	switch c.cfg.Policy {
	case LRU, Random:
		l.stamp = c.clock
	case SRRIP, DRRIP:
		l.rrpv = 0
	}
}

func (c *Cache) victim(set []line) int {
	switch c.cfg.Policy {
	case LRU:
		best := 0
		for i := 1; i < len(set); i++ {
			if set[i].stamp < set[best].stamp {
				best = i
			}
		}
		return best
	case SRRIP, DRRIP:
		for {
			for i := range set {
				if set[i].rrpv >= maxRRPV {
					return i
				}
			}
			for i := range set {
				set[i].rrpv++
			}
		}
	case Random:
		return c.rng.Intn(len(set))
	}
	return 0
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
