package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func tiny(policy Policy) *Cache {
	// 4 sets × 2 ways × 64 B = 512 B.
	return New(Config{SizeBytes: 512, Ways: 2, Policy: policy})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 16},
		{SizeBytes: 1 << 20, Ways: 0},
		{SizeBytes: 3 * 64, Ways: 2},     // blocks not divisible by ways
		{SizeBytes: 6 * 64 * 2, Ways: 2}, // 6 sets: not a power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{SizeBytes: 1, Ways: 1})
}

func TestMissThenFillThenHit(t *testing.T) {
	c := tiny(LRU)
	b := addr.BlockNum(0x100)
	if c.Access(b, false) {
		t.Fatal("cold access hit")
	}
	if ev := c.Fill(b, false, false); ev.Valid {
		t.Fatalf("fill into empty set evicted %+v", ev)
	}
	if !c.Access(b, false) {
		t.Fatal("access after fill missed")
	}
	s := c.Stats()
	if s.DemandAccesses != 2 || s.DemandHits != 1 || s.DemandMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := tiny(LRU)
	b := addr.BlockNum(4)
	c.Fill(b, false, false)
	before := c.Stats()
	if !c.Contains(b) {
		t.Fatal("Contains false for resident block")
	}
	if c.Contains(b + 64) {
		t.Fatal("Contains true for absent block")
	}
	if c.Stats() != before {
		t.Fatal("Contains changed stats")
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny(LRU)
	// Set 0 holds blocks ≡ 0 mod 4. Fill two ways, then a third block
	// must evict the least recently used.
	b0, b1, b2 := addr.BlockNum(0), addr.BlockNum(4), addr.BlockNum(8)
	c.Fill(b0, false, false)
	c.Fill(b1, false, false)
	c.Access(b0, false) // b0 most recent
	ev := c.Fill(b2, false, false)
	if !ev.Valid || ev.Block != b1 {
		t.Fatalf("evicted %+v, want block %v", ev, b1)
	}
	if !c.Contains(b0) || c.Contains(b1) || !c.Contains(b2) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := tiny(LRU)
	b0, b1, b2 := addr.BlockNum(0), addr.BlockNum(4), addr.BlockNum(8)
	c.Fill(b0, false, true) // dirty fill
	c.Fill(b1, false, false)
	ev := c.Fill(b2, false, false)
	if !ev.Valid || !ev.Dirty || ev.Block != b0 {
		t.Fatalf("expected dirty eviction of b0, got %+v", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := tiny(LRU)
	b0, b1, b2 := addr.BlockNum(0), addr.BlockNum(4), addr.BlockNum(8)
	c.Fill(b0, false, false)
	c.Access(b0, true) // write hit dirties the line
	c.Fill(b1, false, false)
	c.Access(b1, false)
	ev := c.Fill(b2, false, false)
	if !ev.Dirty {
		t.Fatal("write-hit line evicted clean")
	}
}

func TestPrefetchAccounting(t *testing.T) {
	c := tiny(LRU)
	useful, wasted := addr.BlockNum(0), addr.BlockNum(4)
	c.Fill(useful, true, false)
	c.Fill(wasted, true, false)
	if !c.Access(useful, false) {
		t.Fatal("prefetched block missed")
	}
	// Evict both lines of set 0.
	c.Fill(addr.BlockNum(8), false, false)
	c.Fill(addr.BlockNum(12), false, false)
	s := c.Stats()
	if s.PrefetchFills != 2 {
		t.Fatalf("PrefetchFills = %d", s.PrefetchFills)
	}
	if s.UsefulPrefetches != 1 {
		t.Fatalf("UsefulPrefetches = %d", s.UsefulPrefetches)
	}
	if s.WastedPrefetches != 1 {
		t.Fatalf("WastedPrefetches = %d", s.WastedPrefetches)
	}
	if got := s.Accuracy(); got != 0.5 {
		t.Fatalf("Accuracy = %v", got)
	}
}

func TestUsefulCountedOnce(t *testing.T) {
	c := tiny(LRU)
	b := addr.BlockNum(0)
	c.Fill(b, true, false)
	c.Access(b, false)
	c.Access(b, false)
	if got := c.Stats().UsefulPrefetches; got != 1 {
		t.Fatalf("UsefulPrefetches = %d, want 1 (count first use only)", got)
	}
}

func TestPollutionEvicts(t *testing.T) {
	c := tiny(LRU)
	c.Fill(addr.BlockNum(0), false, false) // demand line
	c.Fill(addr.BlockNum(4), false, false)
	c.Fill(addr.BlockNum(8), true, false) // prefetch evicts a demand line
	if got := c.Stats().PollutionEvicts; got != 1 {
		t.Fatalf("PollutionEvicts = %d", got)
	}
}

func TestDoubleFillIsNoOp(t *testing.T) {
	c := tiny(LRU)
	b := addr.BlockNum(0)
	c.Fill(b, false, false)
	ev := c.Fill(b, true, false)
	if ev.Valid {
		t.Fatalf("double fill evicted %+v", ev)
	}
	if c.Stats().PrefetchFills != 0 {
		t.Fatal("racing prefetch fill counted")
	}
	// Dirty merge on double fill.
	c.Fill(b, false, true)
	c.Fill(addr.BlockNum(4), false, false)
	ev = c.Fill(addr.BlockNum(8), false, false)
	if !ev.Dirty {
		t.Fatal("dirty bit lost on merge fill")
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny(LRU)
	b := addr.BlockNum(0)
	c.Fill(b, false, true)
	if !c.Invalidate(b) {
		t.Fatal("Invalidate should report dirty")
	}
	if c.Contains(b) {
		t.Fatal("block still resident")
	}
	if c.Invalidate(b) {
		t.Fatal("second Invalidate reported dirty")
	}
}

func TestSRRIPBasic(t *testing.T) {
	c := tiny(SRRIP)
	b0, b1 := addr.BlockNum(0), addr.BlockNum(4)
	c.Fill(b0, false, false)
	c.Fill(b1, true, false) // prefetch inserted at distant RRPV
	// A new fill should evict the prefetched line first (distant RRPV).
	ev := c.Fill(addr.BlockNum(8), false, false)
	if !ev.Valid || ev.Block != b1 {
		t.Fatalf("SRRIP evicted %+v, want prefetched b1", ev)
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []addr.BlockNum {
		c := New(Config{SizeBytes: 512, Ways: 2, Policy: Random, Seed: seed})
		var evs []addr.BlockNum
		for i := 0; i < 20; i++ {
			ev := c.Fill(addr.BlockNum(i*4), false, false)
			if ev.Valid {
				evs = append(evs, ev.Block)
			}
		}
		return evs
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatal("same seed, different eviction count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different victims")
		}
	}
}

func TestEvictedBlockReconstruction(t *testing.T) {
	f := func(raw uint64) bool {
		c := tiny(LRU)
		b := addr.BlockNum(raw >> 16)
		c.Fill(b, false, false)
		// Force eviction by filling the same set with two more blocks.
		n1 := b + addr.BlockNum(c.Sets())
		n2 := b + addr.BlockNum(2*c.Sets())
		c.Fill(n1, false, false)
		ev := c.Fill(n2, false, false)
		return ev.Valid && ev.Block == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hit rate of repeated accesses to a working set smaller than
// capacity converges to 1 after the first pass.
func TestSmallWorkingSetAllHits(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 14, Ways: 4, Policy: LRU}) // 256 blocks
	blocks := make([]addr.BlockNum, 100)
	for i := range blocks {
		blocks[i] = addr.BlockNum(i * 7)
	}
	for _, b := range blocks {
		if !c.Access(b, false) {
			c.Fill(b, false, false)
		}
	}
	for pass := 0; pass < 3; pass++ {
		for _, b := range blocks {
			if !c.Access(b, false) {
				t.Fatalf("pass %d: block %v missed", pass, b)
			}
		}
	}
}

// Property: total fills - evictions == resident lines (conservation).
func TestResidencyConservation(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 12, Ways: 2, Policy: LRU}) // 64 blocks
	fills := 0
	for i := 0; i < 500; i++ {
		b := addr.BlockNum(i * 13 % 301)
		if !c.Contains(b) {
			c.Fill(b, i%3 == 0, false)
			fills++
		}
	}
	s := c.Stats()
	resident := 0
	for i := 0; i < 4096; i++ {
		if c.Contains(addr.BlockNum(i)) {
			resident++
		}
	}
	if int(s.Evictions) != fills-resident {
		t.Fatalf("evictions %d != fills %d - resident %d", s.Evictions, fills, resident)
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []Policy{LRU, SRRIP, Random} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("policy %v round trip failed: %v %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Error("expected error")
	}
}
