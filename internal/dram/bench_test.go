package dram

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

// BenchmarkControllerRandom measures service cost for row-miss-heavy
// traffic, the expensive path.
func BenchmarkControllerRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewController(DefaultConfig())
	clock := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock += uint64(rng.Intn(40))
		_ = c.Enqueue(&Request{
			Block:   addr.PageNum(rng.Intn(100000)).Block(rng.Intn(16)),
			Arrival: clock,
			Write:   i%5 == 0,
		})
	}
	c.Flush()
}

// BenchmarkControllerServiceOne measures the steady-state service path —
// FR-FCFS window scan over cached coordinates plus the analytic command
// schedule — under mixed traffic (3:1 row-local:random, a third prefetch
// priority) that exercises every scoring branch. Requests come from the
// controller's freelist, so the loop must stay allocation-free once the
// ring and freelist are warm (pinned at 0 allocs/op in BENCH_baseline.json).
func BenchmarkControllerServiceOne(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c := NewController(DefaultConfig())
	blocks := make([]addr.BlockNum, 4096)
	for i := range blocks {
		if i%4 == 0 {
			blocks[i] = addr.PageNum(rng.Intn(1 << 14)).Block(rng.Intn(16))
		} else {
			blocks[i] = addr.PageNum(i / 16).Block(i % 16)
		}
	}
	clock := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock += 8
		r := c.NewRequest()
		r.Block = blocks[i&4095]
		r.Arrival = clock
		r.Prefetch = i%3 == 0
		if err := c.Enqueue(r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Flush()
}

// BenchmarkControllerRowLocal measures the row-hit fast path (batched
// same-page traffic, Planaria's signature pattern).
func BenchmarkControllerRowLocal(b *testing.B) {
	c := NewController(DefaultConfig())
	clock := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock += 12
		_ = c.Enqueue(&Request{
			Block:   addr.PageNum(uint64(i) / 16).Block(i % 16),
			Arrival: clock,
		})
	}
	c.Flush()
}
