package dram

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

// BenchmarkControllerRandom measures service cost for row-miss-heavy
// traffic, the expensive path.
func BenchmarkControllerRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewController(DefaultConfig())
	clock := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock += uint64(rng.Intn(40))
		_ = c.Enqueue(&Request{
			Block:   addr.PageNum(rng.Intn(100000)).Block(rng.Intn(16)),
			Arrival: clock,
			Write:   i%5 == 0,
		})
	}
	c.Flush()
}

// BenchmarkControllerRowLocal measures the row-hit fast path (batched
// same-page traffic, Planaria's signature pattern).
func BenchmarkControllerRowLocal(b *testing.B) {
	c := NewController(DefaultConfig())
	clock := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock += 12
		_ = c.Enqueue(&Request{
			Block:   addr.PageNum(uint64(i) / 16).Block(i % 16),
			Arrival: clock,
		})
	}
	c.Flush()
}
