package dram

import (
	"sort"
	"testing"

	"repro/internal/addr"
)

func newCtl() *Controller { return NewController(DefaultConfig()) }

// block builds a channel-0 block for page p, segment offset so.
func block(p addr.PageNum, so int) addr.BlockNum { return p.Block(so) }

func service(c *Controller, reqs ...*Request) {
	for _, r := range reqs {
		if err := c.Enqueue(r); err != nil {
			panic(err)
		}
	}
	c.Flush()
}

func TestTable1TimingValid(t *testing.T) {
	if err := Table1Timing().Validate(); err != nil {
		t.Fatal(err)
	}
	if Table1Timing().BurstCycles() != 8 {
		t.Fatalf("BurstCycles = %d, want 8 for BL16", Table1Timing().BurstCycles())
	}
}

func TestTimingValidateRejects(t *testing.T) {
	tm := Table1Timing()
	tm.TRAS = 0
	if err := tm.Validate(); err == nil {
		t.Error("zero tRAS accepted")
	}
	tm = Table1Timing()
	tm.TRC = 10 // < tRAS+tRP
	if err := tm.Validate(); err == nil {
		t.Error("tRC < tRAS+tRP accepted")
	}
	tm = Table1Timing()
	tm.BL = 15
	if err := tm.Validate(); err == nil {
		t.Error("odd BL accepted")
	}
}

func TestColdReadLatency(t *testing.T) {
	c := newCtl()
	tm := Table1Timing()
	r := &Request{Block: block(1, 0), Arrival: 100}
	service(c, r)
	if !r.Serviced {
		t.Fatal("not serviced")
	}
	// Cold bank: ACT at 100, RD at 100+tRCD, data at +CL, done +BL/2.
	want := uint64(100 + tm.TRCD + tm.CL + tm.BurstCycles())
	if r.Done != want {
		t.Fatalf("Done = %d, want %d", r.Done, want)
	}
	if r.RowHit {
		t.Fatal("cold access reported row hit")
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	c := newCtl()
	p := addr.PageNum(1)
	r1 := &Request{Block: block(p, 0), Arrival: 0}
	r2 := &Request{Block: block(p, 1), Arrival: 2000} // same row, later
	service(c, r1, r2)
	if !r2.RowHit {
		t.Fatal("same-row access missed the open row")
	}
	hitLat := r2.Latency()

	c2 := newCtl()
	g := DefaultConfig().Geometry
	// Find a page mapping to the same bank but a different row.
	co1 := g.Map(block(p, 0))
	var conflict addr.BlockNum
	for q := p + 1; ; q++ {
		b := block(q, 0)
		co := g.Map(b)
		if co.Bank == co1.Bank && co.Row != co1.Row {
			conflict = b
			break
		}
	}
	r3 := &Request{Block: block(p, 0), Arrival: 0}
	r4 := &Request{Block: conflict, Arrival: 2000}
	service(c2, r3, r4)
	if r4.RowHit {
		t.Fatal("conflict reported as row hit")
	}
	if r4.Latency() <= hitLat {
		t.Fatalf("row conflict latency %d not greater than row hit latency %d", r4.Latency(), hitLat)
	}
}

func TestRowHitCounters(t *testing.T) {
	c := newCtl()
	p := addr.PageNum(9)
	var reqs []*Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, &Request{Block: block(p, i), Arrival: uint64(i * 10)})
	}
	service(c, reqs...)
	s := c.Stats()
	if s.RowEmpty != 1 || s.RowHits != 7 {
		t.Fatalf("stats %+v: want 1 empty + 7 hits", s)
	}
	if s.Activates != 1 {
		t.Fatalf("Activates = %d, want 1", s.Activates)
	}
}

func TestBusSerialisation(t *testing.T) {
	// Back-to-back row hits are limited by the burst rate: completions
	// must be at least BurstCycles apart.
	c := newCtl()
	p := addr.PageNum(3)
	var reqs []*Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, &Request{Block: block(p, i%16), Arrival: 0})
	}
	service(c, reqs...)
	burst := uint64(Table1Timing().BurstCycles())
	var prev uint64
	for i, r := range reqs {
		if i > 0 && r.Done < prev+burst {
			t.Fatalf("req %d done %d, previous %d: bursts overlap", i, r.Done, prev)
		}
		if r.Done > prev {
			prev = r.Done
		}
	}
}

func TestWriteReadTurnaround(t *testing.T) {
	c := newCtl()
	p := addr.PageNum(5)
	w := &Request{Block: block(p, 0), Write: true, Arrival: 0}
	r := &Request{Block: block(p, 1), Arrival: 0}
	// Enqueue write first and force in-order service via small window.
	service(c, w)
	service(c, r)
	tm := Table1Timing()
	// Read CAS must wait for write burst end + tWTR.
	minCAS := w.Done + uint64(tm.TWTR)
	if r.IssueAt < minCAS {
		t.Fatalf("read CAS %d violates tWTR after write burst end %d", r.IssueAt, w.Done)
	}
}

func TestDemandPriorityOverPrefetch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 8
	c := NewController(cfg)
	// Fill window with prefetches, then a demand: the demand should be
	// picked before queued prefetches once the window is considered.
	var pfs []*Request
	for i := 0; i < 8; i++ {
		pfs = append(pfs, &Request{Block: block(addr.PageNum(100+i*64), 0), Prefetch: true, Arrival: 0})
	}
	d := &Request{Block: block(addr.PageNum(5000), 0), Arrival: 0}
	for _, r := range pfs {
		if err := c.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Enqueue(d); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	// The demand must not be the last one serviced: it overtakes at
	// least the prefetches still queued when it arrived.
	later := 0
	for _, r := range pfs {
		if r.Done > d.Done {
			later++
		}
	}
	if later == 0 {
		t.Fatal("demand was serviced after every prefetch")
	}
}

func TestRefreshDelaysAndCounts(t *testing.T) {
	c := newCtl()
	tm := Table1Timing()
	// A request arriving exactly at the refresh boundary is pushed past tRFC.
	r := &Request{Block: block(1, 0), Arrival: uint64(tm.TREFI)}
	service(c, r)
	if c.Stats().Refreshes == 0 {
		t.Fatal("no refresh recorded")
	}
	minDone := uint64(tm.TREFI+tm.TRFC) + uint64(tm.TRCD+tm.CL+tm.BurstCycles())
	if r.Done < minDone {
		t.Fatalf("Done = %d, want >= %d (post-refresh)", r.Done, minDone)
	}
	// Refresh closes rows: a second access to the same row after a long
	// gap must re-activate.
	c2 := newCtl()
	r1 := &Request{Block: block(1, 0), Arrival: 0}
	r2 := &Request{Block: block(1, 1), Arrival: uint64(2 * tm.TREFI)}
	service(c2, r1, r2)
	if r2.RowHit {
		t.Fatal("row survived refresh")
	}
}

func TestOutOfOrderEnqueueRejected(t *testing.T) {
	c := newCtl()
	if err := c.Enqueue(&Request{Block: block(1, 0), Arrival: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(&Request{Block: block(1, 1), Arrival: 50}); err == nil {
		t.Fatal("out-of-order enqueue accepted")
	}
}

func TestTFAWLimitsActivateBursts(t *testing.T) {
	c := newCtl()
	tm := Table1Timing()
	g := DefaultConfig().Geometry
	// 5 requests to 5 different banks, all at time 0: the 5th ACT must
	// wait for the tFAW window.
	var reqs []*Request
	banksSeen := map[int]bool{}
	for q := addr.PageNum(0); len(reqs) < 5; q++ {
		b := block(q, 0)
		co := g.Map(b)
		if banksSeen[co.Bank] {
			continue
		}
		banksSeen[co.Bank] = true
		reqs = append(reqs, &Request{Block: b, Arrival: 0})
	}
	service(c, reqs...)
	// In ACT-time order, the 5th ACT must be >= first ACT + tFAW
	// (service order may differ from enqueue order under FR-FCFS).
	acts := make([]uint64, len(reqs))
	for i, r := range reqs {
		acts[i] = r.IssueAt - uint64(tm.TRCD)
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	if acts[4] < acts[0]+uint64(tm.TFAW) {
		t.Fatalf("5th ACT at %d violates tFAW after first ACT at %d", acts[4], acts[0])
	}
}

func TestMonotoneCompletionPerBankRow(t *testing.T) {
	// Sanity: servicing preserves causality — Done >= Arrival always.
	c := newCtl()
	var reqs []*Request
	for i := 0; i < 200; i++ {
		reqs = append(reqs, &Request{
			Block:    block(addr.PageNum(i*37%97), i%16),
			Arrival:  uint64(i * 5),
			Write:    i%7 == 0,
			Prefetch: i%3 == 0,
		})
	}
	service(c, reqs...)
	for i, r := range reqs {
		if !r.Serviced {
			t.Fatalf("req %d unserviced", i)
		}
		if r.Done < r.Arrival {
			t.Fatalf("req %d: Done %d < Arrival %d", i, r.Done, r.Arrival)
		}
		if r.IssueAt > r.Done {
			t.Fatalf("req %d: IssueAt %d > Done %d", i, r.IssueAt, r.Done)
		}
	}
	s := c.Stats()
	if s.Reads+s.Writes != 200 {
		t.Fatalf("serviced %d, want 200", s.Reads+s.Writes)
	}
	if s.RowHits+s.RowMisses+s.RowEmpty != 200 {
		t.Fatalf("row accounting %+v does not sum to 200", s)
	}
}

func TestBatchedPageReadsAreRowLocal(t *testing.T) {
	// Planaria's power story: prefetching a whole footprint back-to-back
	// yields row hits, while the same blocks accessed far apart in time
	// (interleaved with conflicting rows) cost extra activates.
	cBatch := newCtl()
	p := addr.PageNum(77)
	var batch []*Request
	for i := 0; i < 8; i++ {
		batch = append(batch, &Request{Block: block(p, i), Arrival: 0})
	}
	service(cBatch, batch...)

	cScatter := newCtl()
	g := DefaultConfig().Geometry
	co := g.Map(block(p, 0))
	var other addr.BlockNum
	for q := p + 1; ; q++ {
		b := block(q, 0)
		if c2 := g.Map(b); c2.Bank == co.Bank && c2.Row != co.Row {
			other = b
			break
		}
	}
	var scatter []*Request
	cycle := uint64(0)
	for i := 0; i < 8; i++ {
		scatter = append(scatter, &Request{Block: block(p, i), Arrival: cycle})
		cycle += 500
		scatter = append(scatter, &Request{Block: other, Arrival: cycle})
		cycle += 500
	}
	service(cScatter, scatter...)

	if cBatch.Stats().Activates >= cScatter.Stats().Activates {
		t.Fatalf("batched activates %d not fewer than scattered %d",
			cBatch.Stats().Activates, cScatter.Stats().Activates)
	}
}

func TestAvgDemandReadLatency(t *testing.T) {
	c := newCtl()
	r1 := &Request{Block: block(1, 0), Arrival: 0}
	r2 := &Request{Block: block(1, 1), Arrival: 1000}
	pf := &Request{Block: block(1, 2), Arrival: 1000, Prefetch: true}
	service(c, r1, r2, pf)
	s := c.Stats()
	if s.DemandReads != 2 || s.PrefReads != 1 {
		t.Fatalf("read split wrong: %+v", s)
	}
	want := float64(r1.Latency()+r2.Latency()) / 2
	if got := s.AvgDemandReadLatency(); got != want {
		t.Fatalf("AvgDemandReadLatency = %v, want %v", got, want)
	}
}
