// Package dram implements the LPDDR4 memory model of the Planaria
// reproduction — the role DRAMSim2 plays in the paper (Section 5, Table 1).
//
// The model is event-driven rather than cycle-ticked: requests are scheduled
// per channel in FR-FCFS order within a small reorder window, and every
// command's issue time is computed analytically from per-bank timestamps and
// channel-level constraints (CAS-to-CAS gap, write-to-read turnaround, the
// tFAW four-activate window, periodic refresh, and data-bus occupancy). This
// reproduces the first-order latency, bandwidth and row-buffer behaviour that
// drives the paper's AMAT, traffic and power results at a small fraction of a
// cycle-accurate simulator's cost.
package dram

import "fmt"

// Timing holds the LPDDR4 timing parameters in memory-controller cycles.
// Field names follow the JEDEC parameters quoted in Table 1 of the paper.
type Timing struct {
	TRAS  int // ACT → PRE minimum
	TRCD  int // ACT → CAS
	TRRD  int // ACT → ACT (different banks)
	TRC   int // ACT → ACT (same bank)
	TRP   int // PRE → ACT
	TCCD  int // CAS → CAS
	TRTP  int // RD → PRE
	TWTR  int // WR data end → RD
	TWR   int // WR data end → PRE
	TRTRS int // bus turnaround between read and write bursts
	TRFC  int // refresh cycle time
	TFAW  int // four-activate window
	TCKE  int // CKE minimum pulse width (power-down entry)
	TXP   int // power-down exit → valid command
	TCMD  int // command transport time
	BL    int // burst length (beats)

	CL    int // read CAS latency
	CWL   int // write CAS latency
	TREFI int // refresh interval
}

// Table1Timing returns the timing parameters exactly as listed in Table 1 of
// the paper, plus CAS latencies and refresh interval typical of LPDDR4-3200
// (which Table 1 omits).
func Table1Timing() Timing {
	return Timing{
		TRAS: 51, TRCD: 16, TRRD: 12, TRC: 76, TRP: 16,
		TCCD: 8, TRTP: 9, TWTR: 12, TWR: 22, TRTRS: 2,
		TRFC: 216, TFAW: 48, TCKE: 9, TXP: 9, TCMD: 1, BL: 16,
		CL: 28, CWL: 14, TREFI: 6240,
	}
}

// BurstCycles returns the number of cycles a data burst occupies the bus
// (double data rate: BL beats / 2).
func (t Timing) BurstCycles() int { return t.BL / 2 }

// Validate reports nonsensical parameter combinations.
func (t Timing) Validate() error {
	type check struct {
		name string
		v    int
	}
	for _, c := range []check{
		{"tRAS", t.TRAS}, {"tRCD", t.TRCD}, {"tRRD", t.TRRD}, {"tRC", t.TRC},
		{"tRP", t.TRP}, {"tCCD", t.TCCD}, {"tRTP", t.TRTP}, {"tWTR", t.TWTR},
		{"tWR", t.TWR}, {"tRFC", t.TRFC}, {"tFAW", t.TFAW}, {"BL", t.BL},
		{"CL", t.CL}, {"CWL", t.CWL}, {"tREFI", t.TREFI},
	} {
		if c.v <= 0 {
			return fmt.Errorf("dram: %s must be positive, got %d", c.name, c.v)
		}
	}
	if t.TRC < t.TRAS+t.TRP {
		return fmt.Errorf("dram: tRC (%d) < tRAS+tRP (%d)", t.TRC, t.TRAS+t.TRP)
	}
	if t.BL%2 != 0 {
		return fmt.Errorf("dram: burst length %d must be even", t.BL)
	}
	return nil
}
