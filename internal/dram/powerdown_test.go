package dram

import (
	"testing"

	"repro/internal/addr"
)

func TestPowerDownOnIdleGap(t *testing.T) {
	c := newCtl()
	tm := Table1Timing()
	r1 := &Request{Block: block(1, 0), Arrival: 0}
	// A long idle gap (well past the default threshold) before r2.
	r2 := &Request{Block: block(1, 1), Arrival: 50_000}
	service(c, r1)
	service(c, r2)
	s := c.Stats()
	if s.PowerDownEntries != 1 {
		t.Fatalf("PowerDownEntries = %d, want 1", s.PowerDownEntries)
	}
	if s.PowerDownCycles == 0 || s.PowerDownCycles > 50_000 {
		t.Fatalf("PowerDownCycles = %d implausible", s.PowerDownCycles)
	}
	// The wake-up costs tXP: the second request's issue is pushed past
	// arrival even though the bank row is open.
	if r2.IssueAt < r2.Arrival+uint64(tm.TXP) {
		t.Fatalf("no tXP wake-up penalty: issue %d, arrival %d", r2.IssueAt, r2.Arrival)
	}
}

func TestNoPowerDownUnderSteadyTraffic(t *testing.T) {
	c := newCtl()
	var reqs []*Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, &Request{Block: block(addr.PageNum(i%7), i%16), Arrival: uint64(i * 40)})
	}
	service(c, reqs...)
	if got := c.Stats().PowerDownEntries; got != 0 {
		t.Fatalf("powered down %d times under 40-cycle spacing", got)
	}
}

func TestPowerDownDisable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PowerDownIdle = -1
	c := NewController(cfg)
	service(c, &Request{Block: block(1, 0), Arrival: 0})
	service(c, &Request{Block: block(1, 1), Arrival: 500_000})
	if got := c.Stats().PowerDownEntries; got != 0 {
		t.Fatalf("power-down fired while disabled (%d entries)", got)
	}
}

func TestPowerDownCustomThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PowerDownIdle = 100
	c := NewController(cfg)
	service(c, &Request{Block: block(1, 0), Arrival: 0})
	service(c, &Request{Block: block(1, 1), Arrival: 400}) // > 100 + tCKE idle
	if got := c.Stats().PowerDownEntries; got != 1 {
		t.Fatalf("PowerDownEntries = %d with a 100-cycle threshold", got)
	}
}
