package dram

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/telemetry"
)

// Request is one block transfer handled by a channel controller. The engine
// fills the input fields and reads the output fields after the request has
// been serviced.
type Request struct {
	Block      addr.BlockNum // block to transfer (must belong to this channel)
	Write      bool          // write (fill writeback) vs read
	Prefetch   bool          // prefetch-originated (lower scheduling priority)
	WriteAlloc bool          // write-allocate fetch: demand priority, but not a demand read for latency stats
	Arrival    uint64        // cycle the request reaches the controller

	// Outputs, valid once serviced.
	IssueAt  uint64 // first command issue time
	Done     uint64 // data burst completion time
	RowHit   bool   // serviced from an open row
	Serviced bool

	// Cached DRAM coordinate, resolved once at Enqueue so neither the
	// FR-FCFS window scan nor execute re-derives Geometry.Map per visit
	// (a queued request used to be re-mapped on every serviceOne pass).
	bank int
	row  uint64
}

// Latency returns the request's total service latency including queueing.
func (r *Request) Latency() uint64 {
	if !r.Serviced || r.Done < r.Arrival {
		return 0
	}
	return r.Done - r.Arrival
}

// Stats counts commands and occupancy for performance and power analysis.
type Stats struct {
	Reads              uint64 `json:"reads"`
	Writes             uint64 `json:"writes"`
	Activates          uint64 `json:"activates"`
	Precharges         uint64 `json:"precharges"`
	Refreshes          uint64 `json:"refreshes"`
	RowHits            uint64 `json:"row_hits"`
	RowMisses          uint64 `json:"row_misses"` // row conflicts (PRE+ACT needed)
	RowEmpty           uint64 `json:"row_empty"`  // bank closed (ACT needed)
	DemandReads        uint64 `json:"demand_reads"`
	PrefReads          uint64 `json:"pref_reads"`
	AllocReads         uint64 `json:"alloc_reads"`           // write-allocate fetches
	TotalDemandReadLat uint64 `json:"total_demand_read_lat"` // sum of demand read latencies
	BusBusy            uint64 `json:"bus_busy"`              // cycles the data bus carried bursts
	LastDone           uint64 `json:"last_done"`             // completion time of the latest burst

	// Power-down residency (Table 1's tCKE/tXP): cycles spent with CKE
	// low, and the number of power-down entries. Background power drops
	// sharply while powered down; each exit costs tXP before the next
	// command.
	PowerDownCycles  uint64 `json:"power_down_cycles"`
	PowerDownEntries uint64 `json:"power_down_entries"`

	// LatencyHist buckets demand read latencies: <50, <100, <200, <400,
	// <800, <1600, <3200, rest.
	LatencyHist [8]uint64 `json:"latency_hist"`
}

// latencyBucket maps a latency to its LatencyHist index.
func latencyBucket(lat uint64) int {
	bound := uint64(50)
	for i := 0; i < 7; i++ {
		if lat < bound {
			return i
		}
		bound *= 2
	}
	return 7
}

// AvgDemandReadLatency returns the mean demand read latency in cycles.
func (s Stats) AvgDemandReadLatency() float64 {
	if s.DemandReads == 0 {
		return 0
	}
	return float64(s.TotalDemandReadLat) / float64(s.DemandReads)
}

// Config parameterises a channel controller.
type Config struct {
	Timing   Timing
	Geometry addr.DRAMGeometry
	Window   int // FR-FCFS reorder window (requests considered per pick)
	// StarveLimit caps how many times the oldest queued request may be
	// bypassed by younger row-hit/demand requests before it is forced to
	// issue (the standard FR-FCFS anti-starvation counter).
	StarveLimit int
	// Linger is the longest a queued request may wait for FR-FCFS
	// reordering candidates, in cycles. A request is serviced as soon as
	// a newer arrival proves that much time has passed, so at low load
	// requests issue (and are timed) essentially at their arrival.
	Linger uint64
	// PowerDownIdle is the idle-cycle threshold after which the channel
	// enters precharge power-down (CKE low). Zero selects the default of
	// 4 × tREFI/100 ≈ a few hundred cycles; negative disables power-down.
	PowerDownIdle int
}

// DefaultConfig returns Table 1 timings, the default geometry and a
// 16-request reorder window.
func DefaultConfig() Config {
	return Config{Timing: Table1Timing(), Geometry: addr.DefaultDRAMGeometry(), Window: 16, StarveLimit: 4, Linger: 64}
}

type bankState struct {
	acted       bool   // bank has been activated at least once
	lastActAt   uint64 // issue time of last ACT
	earliestPre uint64 // earliest time a PRE may issue
	earliestCAS uint64 // earliest time a RD/WR may issue
}

// timingU holds every Timing-derived quantity the scheduling arithmetic
// needs, widened to uint64 once at construction. The legacy code converted
// (and re-derived BurstCycles) inline at each of the dozen use sites in
// execute — per serviced request; these are now single field loads.
type timingU struct {
	ras, rcd, rrd, rc, rp uint64
	ccd, rtp, wtr, wr     uint64
	rtrs, rfc, faw        uint64
	cke, xp               uint64
	cl, cwl, refi         uint64
	burst                 uint64 // BurstCycles(): BL/2
}

func makeTimingU(t Timing) timingU {
	return timingU{
		ras: uint64(t.TRAS), rcd: uint64(t.TRCD), rrd: uint64(t.TRRD),
		rc: uint64(t.TRC), rp: uint64(t.TRP), ccd: uint64(t.TCCD),
		rtp: uint64(t.TRTP), wtr: uint64(t.TWTR), wr: uint64(t.TWR),
		rtrs: uint64(t.TRTRS), rfc: uint64(t.TRFC), faw: uint64(t.TFAW),
		cke: uint64(t.TCKE), xp: uint64(t.TXP),
		cl: uint64(t.CL), cwl: uint64(t.CWL), refi: uint64(t.TREFI),
		burst: uint64(t.BurstCycles()),
	}
}

// Controller services one DRAM channel. Requests must be enqueued in
// non-decreasing arrival order; servicing happens lazily once the reorder
// window fills, and Flush drains the remainder. Not safe for concurrent use.
type Controller struct {
	cfg   Config
	tm    timingU // precomputed Timing constants (see timingU)
	banks []bankState

	// Per-bank open-row snapshot, packed for the FR-FCFS window scan: bit
	// b of hasRowBits says bank b has an open row, openRows[b] says which.
	// This pair is the single source of row state (bankState carries only
	// the per-bank timestamps), so the scan touches one mask word and one
	// row word per candidate instead of a 5-field struct.
	hasRowBits uint64
	openRows   []uint64

	// actRing holds the last four ACT issue times for the tRRD/tFAW
	// constraints in a fixed ring (actCount grows monotonically; slot
	// actCount&3 is the one an ACT four ago used, i.e. the next overwrite).
	// A ring instead of an appended-and-resliced slice keeps noteAct — the
	// single hottest call site of the controller — allocation-free.
	actRing     [4]uint64
	actCount    uint64
	lastActBank int // bank of the most recent ACT (scheduler hint)
	lastCASAt     uint64   // last RD/WR issue (tCCD)
	lastBusyAt    uint64   // completion time of the most recent activity
	lastWasWrite  bool
	lastWrDataEnd uint64 // end of last write burst (tWTR/tWR interactions)
	busFreeAt     uint64 // data bus availability
	nextRefresh   uint64

	// queue is a power-of-two ring: qhead indexes the oldest request,
	// qlen counts occupants. Head dequeue is O(1) and a window pick at
	// position i shifts at most Window-1 pointers (the legacy slice
	// shifted the entire queue down on every head removal).
	queue      []*Request
	qhead      int
	qlen       int
	headBypass int // consecutive picks that bypassed the oldest request
	stats      Stats

	// free holds serviced requests available for reuse through NewRequest,
	// so the per-record hot path of the simulator allocates no Request at
	// steady state. Its size is bounded by the controller's peak queue
	// occupancy.
	free []*Request

	// TraceFn, when non-nil, is invoked with every request right after it
	// is serviced (debugging and tooling hook). While it is set, serviced
	// requests are NOT recycled into the NewRequest freelist — the hook
	// may retain the pointer.
	TraceFn func(*Request)

	// tel, when non-nil, receives live scrape-safe observations (atomic
	// instruments, readable from other goroutines mid-run) in addition to
	// the local Stats counters, which stay single-goroutine-owned. See
	// SetTelemetry.
	tel *Telemetry
}

// Telemetry is the controller's set of live instruments, registered by the
// engine when telemetry is enabled (internal/telemetry). All fields may be
// nil individually; the whole struct pointer is nil when telemetry is off,
// and the hot path then pays exactly one pointer check per serviced
// request.
type Telemetry struct {
	// DemandReadLatency observes each demand read's total service latency
	// (queueing included) in cycles.
	DemandReadLatency *telemetry.Histogram
	// QueueDepth observes the controller queue occupancy at each Enqueue,
	// before the new request is pushed.
	QueueDepth *telemetry.Histogram
	// RowHits/RowMisses/RowEmpty mirror the Stats row-buffer outcome
	// counters as scrape-safe atomics.
	RowHits   *telemetry.Counter
	RowMisses *telemetry.Counter
	RowEmpty  *telemetry.Counter
}

// SetTelemetry installs (or, with nil, removes) the controller's live
// instruments. Call before the run starts; the controller never mutates
// the struct.
func (c *Controller) SetTelemetry(t *Telemetry) { c.tel = t }

// NewController builds a channel controller; it panics on invalid timing
// (construction-time programming error).
func NewController(cfg Config) *Controller {
	if err := cfg.Timing.Validate(); err != nil {
		panic(err)
	}
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.StarveLimit <= 0 {
		cfg.StarveLimit = 4
	}
	if cfg.Linger == 0 {
		cfg.Linger = 64
	}
	g := cfg.Geometry
	if g.Banks == 0 {
		g = addr.DefaultDRAMGeometry()
		cfg.Geometry = g
	}
	return &Controller{
		cfg:         cfg,
		tm:          makeTimingU(cfg.Timing),
		banks:       make([]bankState, g.Banks),
		openRows:    make([]uint64, g.Banks),
		queue:       make([]*Request, 32),
		nextRefresh: uint64(cfg.Timing.TREFI),
	}
}

// Stats returns a snapshot of accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// NewRequest returns a zeroed Request, reusing a previously serviced one
// when available. Callers that enqueue per-event requests in a hot loop
// (the simulation engine) use this instead of allocating.
func (c *Controller) NewRequest() *Request {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free = c.free[:n-1]
		*r = Request{}
		return r
	}
	return &Request{}
}

// ResetStats zeroes the statistics counters without touching timing state
// (used to discard warmup).
func (c *Controller) ResetStats() { c.stats = Stats{} }

// QueueLen returns the number of unserviced requests.
func (c *Controller) QueueLen() int { return c.qlen }

// qat returns the queued request at logical position i (0 = oldest).
func (c *Controller) qat(i int) *Request {
	return c.queue[(c.qhead+i)&(len(c.queue)-1)]
}

// qpush appends a request at the ring's tail, doubling the ring when full.
func (c *Controller) qpush(r *Request) {
	if c.qlen == len(c.queue) {
		grown := make([]*Request, 2*len(c.queue))
		for i := 0; i < c.qlen; i++ {
			grown[i] = c.qat(i)
		}
		c.queue = grown
		c.qhead = 0
	}
	c.queue[(c.qhead+c.qlen)&(len(c.queue)-1)] = r
	c.qlen++
}

// qremove removes and returns the request at logical position i, preserving
// the order of the rest: positions [0, i) shift up by one and the head
// advances. Cost is i pointer moves — at most Window-1, and zero for the
// common oldest-request case.
func (c *Controller) qremove(i int) *Request {
	mask := len(c.queue) - 1
	r := c.queue[(c.qhead+i)&mask]
	for j := i; j > 0; j-- {
		c.queue[(c.qhead+j)&mask] = c.queue[(c.qhead+j-1)&mask]
	}
	c.queue[c.qhead] = nil
	c.qhead = (c.qhead + 1) & mask
	c.qlen--
	return r
}

// Enqueue adds a request. Requests must arrive in non-decreasing order of
// Arrival; violations are reported so the engine's merge logic cannot rot
// silently. The request's DRAM coordinate is resolved here, once, and rides
// on the request through every subsequent window scan.
func (c *Controller) Enqueue(r *Request) error {
	if c.qlen > 0 && r.Arrival < c.qat(c.qlen-1).Arrival {
		return fmt.Errorf("dram: out-of-order enqueue: %d after %d", r.Arrival, c.qat(c.qlen-1).Arrival)
	}
	co := c.cfg.Geometry.Map(r.Block)
	r.bank, r.row = co.Bank, co.Row
	if c.tel != nil {
		c.tel.QueueDepth.Record(uint64(c.qlen))
	}
	c.qpush(r)
	arrival := r.Arrival
	for c.qlen > c.cfg.Window ||
		(c.qlen > 0 && c.qat(0).Arrival+c.cfg.Linger <= arrival) {
		c.serviceOne()
	}
	return nil
}

// Flush services every queued request.
func (c *Controller) Flush() {
	for c.qlen > 0 {
		c.serviceOne()
	}
}

// serviceOne picks the best candidate within the reorder window under
// FR-FCFS with demand priority, computes its command schedule analytically
// and records completion. The scan reads only each candidate's cached
// coordinate and the packed open-row snapshot — no geometry arithmetic and
// no bank-struct walk per visit.
func (c *Controller) serviceOne() {
	w := c.qlen
	if w > c.cfg.Window {
		w = c.cfg.Window
	}
	if c.headBypass >= c.cfg.StarveLimit {
		c.headBypass = 0
		c.execute(c.qremove(0))
		return
	}
	best := 0
	bestScore := -1
	mask := len(c.queue) - 1
	for i := 0; i < w; i++ {
		r := c.queue[(c.qhead+i)&mask]
		// FR-FCFS: open-row hits first (they are cheap and keep the
		// row open for their siblings), then demands over prefetches,
		// then bank readiness (avoid back-to-back ACTs on one bank,
		// which serialise on tRC), then age.
		score := 0
		if c.hasRowBits&(1<<uint(r.bank)) != 0 && c.openRows[r.bank] == r.row {
			score += 8
		}
		if !r.Prefetch {
			score += 4
		}
		if r.bank != c.lastActBank {
			score++
		}
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	if best == 0 {
		c.headBypass = 0
	} else {
		c.headBypass++
	}
	c.execute(c.qremove(best))
}

// refreshDelay advances the refresh schedule up to time t and returns the
// earliest command time at or after t that does not collide with a refresh
// window. Refresh is modelled as an all-bank operation closing every row.
func (c *Controller) refreshDelay(t uint64) uint64 {
	for t >= c.nextRefresh {
		refEnd := c.nextRefresh + c.tm.rfc
		c.stats.Refreshes++
		c.hasRowBits = 0
		for i := range c.banks {
			if c.banks[i].earliestCAS < refEnd {
				c.banks[i].earliestCAS = refEnd
			}
			if c.banks[i].earliestPre < refEnd {
				c.banks[i].earliestPre = refEnd
			}
		}
		if t < refEnd {
			t = refEnd
		}
		c.nextRefresh += c.tm.refi
	}
	return t
}

// actConstraint returns the earliest time an ACT may issue at or after t,
// honouring tRRD against the previous ACT and the tFAW sliding window.
func (c *Controller) actConstraint(t uint64) uint64 {
	if c.actCount > 0 {
		if e := c.actRing[(c.actCount-1)&3] + c.tm.rrd; e > t {
			t = e
		}
	}
	if c.actCount >= 4 {
		// Four ACTs ago sits in the slot the next noteAct overwrites.
		if e := c.actRing[c.actCount&3] + c.tm.faw; e > t {
			t = e
		}
	}
	return t
}

func (c *Controller) noteAct(t uint64) {
	c.actRing[c.actCount&3] = t
	c.actCount++
	c.stats.Activates++
}

// powerDown models precharge power-down across an idle gap before time t:
// if the channel was idle long enough to pull CKE low (threshold + tCKE),
// the powered-down cycles are recorded and the wake-up costs tXP.
func (c *Controller) powerDown(t uint64) uint64 {
	if c.cfg.PowerDownIdle < 0 {
		return t
	}
	threshold := uint64(c.cfg.PowerDownIdle)
	if threshold == 0 {
		threshold = 4 * c.tm.refi / 100
	}
	if t > c.lastBusyAt && t-c.lastBusyAt > threshold+c.tm.cke {
		c.stats.PowerDownEntries++
		c.stats.PowerDownCycles += t - c.lastBusyAt - threshold
		t += c.tm.xp
	}
	return t
}

// execute schedules the commands for request r and fills its outputs,
// working entirely from the coordinate cached at Enqueue and the
// precomputed timing constants.
func (c *Controller) execute(r *Request) {
	tm := &c.tm
	bank, row := r.bank, r.row
	b := &c.banks[bank]

	t := c.refreshDelay(r.Arrival)
	t = c.powerDown(t)

	bankBit := uint64(1) << uint(bank)
	hasRow := c.hasRowBits&bankBit != 0
	rowHit := hasRow && c.openRows[bank] == row
	switch {
	case rowHit:
		c.stats.RowHits++
	case hasRow:
		c.stats.RowMisses++
	default:
		c.stats.RowEmpty++
	}
	if c.tel != nil {
		switch {
		case rowHit:
			c.tel.RowHits.Inc()
		case hasRow:
			c.tel.RowMisses.Inc()
		default:
			c.tel.RowEmpty.Inc()
		}
	}

	if !rowHit {
		if hasRow {
			// Row conflict: precharge, then activate.
			pre := maxU(t, b.earliestPre)
			c.stats.Precharges++
			actMin := pre + tm.rp
			if e := b.lastActAt + tm.rc; e > actMin {
				actMin = e
			}
			t = c.actConstraint(actMin)
		} else {
			if e := b.lastActAt + tm.rc; b.acted && e > t {
				t = e
			}
			t = c.actConstraint(t)
		}
		c.noteAct(t)
		c.lastActBank = bank
		b.acted = true
		b.lastActAt = t
		c.hasRowBits |= bankBit
		c.openRows[bank] = row
		b.earliestPre = t + tm.ras
		b.earliestCAS = t + tm.rcd
	}

	// CAS issue time: bank ready, channel CAS-to-CAS gap, turnaround and
	// data-bus availability.
	cas := maxU(t, b.earliestCAS)
	if e := c.lastCASAt + tm.ccd; e > cas && c.stats.Reads+c.stats.Writes > 0 {
		cas = e
	}
	burst := tm.burst
	if r.Write {
		// Data occupies the bus CWL after the WR command.
		if e := c.busFreeAt; e > cas+tm.cwl {
			cas = e - tm.cwl
		}
		if !c.lastWasWrite && c.stats.Reads > 0 {
			// read→write turnaround
			if e := c.busFreeAt + tm.rtrs; e > cas+tm.cwl {
				cas = e - tm.cwl
			}
		}
		dataStart := cas + tm.cwl
		dataEnd := dataStart + burst
		c.busFreeAt = dataEnd
		c.lastWrDataEnd = dataEnd
		c.lastWasWrite = true
		c.lastCASAt = cas
		// Write recovery gates future PRE.
		if e := dataEnd + tm.wr; e > b.earliestPre {
			b.earliestPre = e
		}
		c.stats.Writes++
		c.stats.BusBusy += burst
		r.IssueAt = cas
		r.Done = dataEnd
	} else {
		if c.lastWasWrite {
			// write→read turnaround: tWTR after the write burst.
			if e := c.lastWrDataEnd + tm.wtr; e > cas {
				cas = e
			}
		}
		if e := c.busFreeAt; e > cas+tm.cl {
			cas = e - tm.cl
		}
		dataStart := cas + tm.cl
		dataEnd := dataStart + burst
		c.busFreeAt = dataEnd
		c.lastWasWrite = false
		c.lastCASAt = cas
		// Read-to-precharge constraint.
		if e := cas + tm.rtp; e > b.earliestPre {
			b.earliestPre = e
		}
		c.stats.Reads++
		c.stats.BusBusy += burst
		switch {
		case r.Prefetch:
			c.stats.PrefReads++
		case r.WriteAlloc:
			c.stats.AllocReads++
		default:
			c.stats.DemandReads++
			c.stats.TotalDemandReadLat += dataEnd - r.Arrival
			c.stats.LatencyHist[latencyBucket(dataEnd-r.Arrival)]++
			if c.tel != nil {
				c.tel.DemandReadLatency.Record(dataEnd - r.Arrival)
			}
		}
		r.IssueAt = cas
		r.Done = dataEnd
	}
	if r.Done > c.stats.LastDone {
		c.stats.LastDone = r.Done
	}
	if r.Done > c.lastBusyAt {
		c.lastBusyAt = r.Done
	}
	r.RowHit = rowHit
	r.Serviced = true
	if c.TraceFn != nil {
		c.TraceFn(r) // hook may retain r: do not recycle
		return
	}
	c.free = append(c.free, r)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
