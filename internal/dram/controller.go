package dram

import (
	"fmt"

	"repro/internal/addr"
)

// Request is one block transfer handled by a channel controller. The engine
// fills the input fields and reads the output fields after the request has
// been serviced.
type Request struct {
	Block      addr.BlockNum // block to transfer (must belong to this channel)
	Write      bool          // write (fill writeback) vs read
	Prefetch   bool          // prefetch-originated (lower scheduling priority)
	WriteAlloc bool          // write-allocate fetch: demand priority, but not a demand read for latency stats
	Arrival    uint64        // cycle the request reaches the controller

	// Outputs, valid once serviced.
	IssueAt  uint64 // first command issue time
	Done     uint64 // data burst completion time
	RowHit   bool   // serviced from an open row
	Serviced bool
}

// Latency returns the request's total service latency including queueing.
func (r *Request) Latency() uint64 {
	if !r.Serviced || r.Done < r.Arrival {
		return 0
	}
	return r.Done - r.Arrival
}

// Stats counts commands and occupancy for performance and power analysis.
type Stats struct {
	Reads              uint64 `json:"reads"`
	Writes             uint64 `json:"writes"`
	Activates          uint64 `json:"activates"`
	Precharges         uint64 `json:"precharges"`
	Refreshes          uint64 `json:"refreshes"`
	RowHits            uint64 `json:"row_hits"`
	RowMisses          uint64 `json:"row_misses"` // row conflicts (PRE+ACT needed)
	RowEmpty           uint64 `json:"row_empty"`  // bank closed (ACT needed)
	DemandReads        uint64 `json:"demand_reads"`
	PrefReads          uint64 `json:"pref_reads"`
	AllocReads         uint64 `json:"alloc_reads"`           // write-allocate fetches
	TotalDemandReadLat uint64 `json:"total_demand_read_lat"` // sum of demand read latencies
	BusBusy            uint64 `json:"bus_busy"`              // cycles the data bus carried bursts
	LastDone           uint64 `json:"last_done"`             // completion time of the latest burst

	// Power-down residency (Table 1's tCKE/tXP): cycles spent with CKE
	// low, and the number of power-down entries. Background power drops
	// sharply while powered down; each exit costs tXP before the next
	// command.
	PowerDownCycles  uint64 `json:"power_down_cycles"`
	PowerDownEntries uint64 `json:"power_down_entries"`

	// LatencyHist buckets demand read latencies: <50, <100, <200, <400,
	// <800, <1600, <3200, rest.
	LatencyHist [8]uint64 `json:"latency_hist"`
}

// latencyBucket maps a latency to its LatencyHist index.
func latencyBucket(lat uint64) int {
	bound := uint64(50)
	for i := 0; i < 7; i++ {
		if lat < bound {
			return i
		}
		bound *= 2
	}
	return 7
}

// AvgDemandReadLatency returns the mean demand read latency in cycles.
func (s Stats) AvgDemandReadLatency() float64 {
	if s.DemandReads == 0 {
		return 0
	}
	return float64(s.TotalDemandReadLat) / float64(s.DemandReads)
}

// Config parameterises a channel controller.
type Config struct {
	Timing   Timing
	Geometry addr.DRAMGeometry
	Window   int // FR-FCFS reorder window (requests considered per pick)
	// StarveLimit caps how many times the oldest queued request may be
	// bypassed by younger row-hit/demand requests before it is forced to
	// issue (the standard FR-FCFS anti-starvation counter).
	StarveLimit int
	// Linger is the longest a queued request may wait for FR-FCFS
	// reordering candidates, in cycles. A request is serviced as soon as
	// a newer arrival proves that much time has passed, so at low load
	// requests issue (and are timed) essentially at their arrival.
	Linger uint64
	// PowerDownIdle is the idle-cycle threshold after which the channel
	// enters precharge power-down (CKE low). Zero selects the default of
	// 4 × tREFI/100 ≈ a few hundred cycles; negative disables power-down.
	PowerDownIdle int
}

// DefaultConfig returns Table 1 timings, the default geometry and a
// 16-request reorder window.
func DefaultConfig() Config {
	return Config{Timing: Table1Timing(), Geometry: addr.DefaultDRAMGeometry(), Window: 16, StarveLimit: 4, Linger: 64}
}

type bankState struct {
	hasRow      bool
	acted       bool // bank has been activated at least once
	openRow     uint64
	lastActAt   uint64 // issue time of last ACT
	earliestPre uint64 // earliest time a PRE may issue
	earliestCAS uint64 // earliest time a RD/WR may issue
}

// Controller services one DRAM channel. Requests must be enqueued in
// non-decreasing arrival order; servicing happens lazily once the reorder
// window fills, and Flush drains the remainder. Not safe for concurrent use.
type Controller struct {
	cfg   Config
	banks []bankState

	// actRing holds the last four ACT issue times for the tRRD/tFAW
	// constraints in a fixed ring (actCount grows monotonically; slot
	// actCount&3 is the one an ACT four ago used, i.e. the next overwrite).
	// A ring instead of an appended-and-resliced slice keeps noteAct — the
	// single hottest call site of the controller — allocation-free.
	actRing     [4]uint64
	actCount    uint64
	lastActBank int // bank of the most recent ACT (scheduler hint)
	lastCASAt     uint64   // last RD/WR issue (tCCD)
	lastBusyAt    uint64   // completion time of the most recent activity
	lastWasWrite  bool
	lastWrDataEnd uint64 // end of last write burst (tWTR/tWR interactions)
	busFreeAt     uint64 // data bus availability
	nextRefresh   uint64

	queue      []*Request
	headBypass int // consecutive picks that bypassed the oldest request
	stats      Stats

	// free holds serviced requests available for reuse through NewRequest,
	// so the per-record hot path of the simulator allocates no Request at
	// steady state. Its size is bounded by the controller's peak queue
	// occupancy.
	free []*Request

	// TraceFn, when non-nil, is invoked with every request right after it
	// is serviced (debugging and tooling hook). While it is set, serviced
	// requests are NOT recycled into the NewRequest freelist — the hook
	// may retain the pointer.
	TraceFn func(*Request)
}

// NewController builds a channel controller; it panics on invalid timing
// (construction-time programming error).
func NewController(cfg Config) *Controller {
	if err := cfg.Timing.Validate(); err != nil {
		panic(err)
	}
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.StarveLimit <= 0 {
		cfg.StarveLimit = 4
	}
	if cfg.Linger == 0 {
		cfg.Linger = 64
	}
	g := cfg.Geometry
	if g.Banks == 0 {
		g = addr.DefaultDRAMGeometry()
		cfg.Geometry = g
	}
	return &Controller{
		cfg:         cfg,
		banks:       make([]bankState, g.Banks),
		nextRefresh: uint64(cfg.Timing.TREFI),
	}
}

// Stats returns a snapshot of accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// NewRequest returns a zeroed Request, reusing a previously serviced one
// when available. Callers that enqueue per-event requests in a hot loop
// (the simulation engine) use this instead of allocating.
func (c *Controller) NewRequest() *Request {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free = c.free[:n-1]
		*r = Request{}
		return r
	}
	return &Request{}
}

// ResetStats zeroes the statistics counters without touching timing state
// (used to discard warmup).
func (c *Controller) ResetStats() { c.stats = Stats{} }

// QueueLen returns the number of unserviced requests.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Enqueue adds a request. Requests must arrive in non-decreasing order of
// Arrival; violations are reported so the engine's merge logic cannot rot
// silently.
func (c *Controller) Enqueue(r *Request) error {
	if n := len(c.queue); n > 0 && r.Arrival < c.queue[n-1].Arrival {
		return fmt.Errorf("dram: out-of-order enqueue: %d after %d", r.Arrival, c.queue[n-1].Arrival)
	}
	c.queue = append(c.queue, r)
	for len(c.queue) > c.cfg.Window ||
		(len(c.queue) > 0 && c.queue[0].Arrival+c.cfg.Linger <= r.Arrival) {
		c.serviceOne()
	}
	return nil
}

// Flush services every queued request.
func (c *Controller) Flush() {
	for len(c.queue) > 0 {
		c.serviceOne()
	}
}

// serviceOne picks the best candidate within the reorder window under
// FR-FCFS with demand priority, computes its command schedule analytically
// and records completion.
func (c *Controller) serviceOne() {
	w := len(c.queue)
	if w > c.cfg.Window {
		w = c.cfg.Window
	}
	if c.headBypass >= c.cfg.StarveLimit {
		c.headBypass = 0
		r := c.queue[0]
		// Shift-down removal (not a reslice): the backing array keeps its
		// front, so the queue reaches a stable capacity instead of
		// reallocating on every wraparound.
		c.queue = append(c.queue[:0], c.queue[1:]...)
		c.execute(r)
		return
	}
	best := 0
	bestScore := -1
	for i := 0; i < w; i++ {
		r := c.queue[i]
		co := c.cfg.Geometry.Map(r.Block)
		b := &c.banks[co.Bank]
		// FR-FCFS: open-row hits first (they are cheap and keep the
		// row open for their siblings), then demands over prefetches,
		// then bank readiness (avoid back-to-back ACTs on one bank,
		// which serialise on tRC), then age.
		score := 0
		if b.hasRow && b.openRow == co.Row {
			score += 8
		}
		if !r.Prefetch {
			score += 4
		}
		if co.Bank != c.lastActBank {
			score++
		}
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	if best == 0 {
		c.headBypass = 0
	} else {
		c.headBypass++
	}
	r := c.queue[best]
	c.queue = append(c.queue[:best], c.queue[best+1:]...)
	c.execute(r)
}

// refreshDelay advances the refresh schedule up to time t and returns the
// earliest command time at or after t that does not collide with a refresh
// window. Refresh is modelled as an all-bank operation closing every row.
func (c *Controller) refreshDelay(t uint64) uint64 {
	tm := c.cfg.Timing
	for t >= c.nextRefresh {
		refStart := c.nextRefresh
		refEnd := refStart + uint64(tm.TRFC)
		c.stats.Refreshes++
		for i := range c.banks {
			c.banks[i].hasRow = false
			if c.banks[i].earliestCAS < refEnd {
				c.banks[i].earliestCAS = refEnd
			}
			if c.banks[i].earliestPre < refEnd {
				c.banks[i].earliestPre = refEnd
			}
		}
		if t < refEnd {
			t = refEnd
		}
		c.nextRefresh += uint64(tm.TREFI)
	}
	return t
}

// actConstraint returns the earliest time an ACT may issue at or after t,
// honouring tRRD against the previous ACT and the tFAW sliding window.
func (c *Controller) actConstraint(t uint64) uint64 {
	tm := c.cfg.Timing
	if c.actCount > 0 {
		if e := c.actRing[(c.actCount-1)&3] + uint64(tm.TRRD); e > t {
			t = e
		}
	}
	if c.actCount >= 4 {
		// Four ACTs ago sits in the slot the next noteAct overwrites.
		if e := c.actRing[c.actCount&3] + uint64(tm.TFAW); e > t {
			t = e
		}
	}
	return t
}

func (c *Controller) noteAct(t uint64) {
	c.actRing[c.actCount&3] = t
	c.actCount++
	c.stats.Activates++
}

// powerDown models precharge power-down across an idle gap before time t:
// if the channel was idle long enough to pull CKE low (threshold + tCKE),
// the powered-down cycles are recorded and the wake-up costs tXP.
func (c *Controller) powerDown(t uint64) uint64 {
	if c.cfg.PowerDownIdle < 0 {
		return t
	}
	threshold := uint64(c.cfg.PowerDownIdle)
	if threshold == 0 {
		threshold = 4 * uint64(c.cfg.Timing.TREFI) / 100
	}
	tm := c.cfg.Timing
	if t > c.lastBusyAt && t-c.lastBusyAt > threshold+uint64(tm.TCKE) {
		c.stats.PowerDownEntries++
		c.stats.PowerDownCycles += t - c.lastBusyAt - threshold
		t += uint64(tm.TXP)
	}
	return t
}

// execute schedules the commands for request r and fills its outputs.
func (c *Controller) execute(r *Request) {
	tm := c.cfg.Timing
	co := c.cfg.Geometry.Map(r.Block)
	b := &c.banks[co.Bank]

	t := c.refreshDelay(r.Arrival)
	t = c.powerDown(t)

	rowHit := b.hasRow && b.openRow == co.Row
	switch {
	case rowHit:
		c.stats.RowHits++
	case b.hasRow:
		c.stats.RowMisses++
	default:
		c.stats.RowEmpty++
	}

	if !rowHit {
		if b.hasRow {
			// Row conflict: precharge, then activate.
			pre := maxU(t, b.earliestPre)
			c.stats.Precharges++
			actMin := pre + uint64(tm.TRP)
			if e := b.lastActAt + uint64(tm.TRC); e > actMin {
				actMin = e
			}
			t = c.actConstraint(actMin)
		} else {
			if e := b.lastActAt + uint64(tm.TRC); b.acted && e > t {
				t = e
			}
			t = c.actConstraint(t)
		}
		c.noteAct(t)
		c.lastActBank = co.Bank
		b.acted = true
		b.lastActAt = t
		b.hasRow = true
		b.openRow = co.Row
		b.earliestPre = t + uint64(tm.TRAS)
		b.earliestCAS = t + uint64(tm.TRCD)
	}

	// CAS issue time: bank ready, channel CAS-to-CAS gap, turnaround and
	// data-bus availability.
	cas := maxU(t, b.earliestCAS)
	if e := c.lastCASAt + uint64(tm.TCCD); e > cas && c.stats.Reads+c.stats.Writes > 0 {
		cas = e
	}
	burst := uint64(tm.BurstCycles())
	if r.Write {
		// Data occupies the bus CWL after the WR command.
		if e := c.busFreeAt; e+0 > cas+uint64(tm.CWL) {
			cas = e - uint64(tm.CWL)
		}
		if !c.lastWasWrite && c.stats.Reads > 0 {
			// read→write turnaround
			if e := c.busFreeAt + uint64(tm.TRTRS); e > cas+uint64(tm.CWL) {
				cas = e - uint64(tm.CWL)
			}
		}
		dataStart := cas + uint64(tm.CWL)
		dataEnd := dataStart + burst
		c.busFreeAt = dataEnd
		c.lastWrDataEnd = dataEnd
		c.lastWasWrite = true
		c.lastCASAt = cas
		// Write recovery gates future PRE.
		if e := dataEnd + uint64(tm.TWR); e > b.earliestPre {
			b.earliestPre = e
		}
		c.stats.Writes++
		c.stats.BusBusy += burst
		r.IssueAt = cas
		r.Done = dataEnd
	} else {
		if c.lastWasWrite {
			// write→read turnaround: tWTR after the write burst.
			if e := c.lastWrDataEnd + uint64(tm.TWTR); e > cas {
				cas = e
			}
		}
		if e := c.busFreeAt; e > cas+uint64(tm.CL) {
			cas = e - uint64(tm.CL)
		}
		dataStart := cas + uint64(tm.CL)
		dataEnd := dataStart + burst
		c.busFreeAt = dataEnd
		c.lastWasWrite = false
		c.lastCASAt = cas
		// Read-to-precharge constraint.
		if e := cas + uint64(tm.TRTP); e > b.earliestPre {
			b.earliestPre = e
		}
		c.stats.Reads++
		c.stats.BusBusy += burst
		switch {
		case r.Prefetch:
			c.stats.PrefReads++
		case r.WriteAlloc:
			c.stats.AllocReads++
		default:
			c.stats.DemandReads++
			c.stats.TotalDemandReadLat += dataEnd - r.Arrival
			c.stats.LatencyHist[latencyBucket(dataEnd-r.Arrival)]++
		}
		r.IssueAt = cas
		r.Done = dataEnd
	}
	if r.Done > c.stats.LastDone {
		c.stats.LastDone = r.Done
	}
	if r.Done > c.lastBusyAt {
		c.lastBusyAt = r.Done
	}
	r.RowHit = rowHit
	r.Serviced = true
	if c.TraceFn != nil {
		c.TraceFn(r) // hook may retain r: do not recycle
		return
	}
	c.free = append(c.free, r)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
