package dram

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/addr"
)

// TestDataBusExclusive: the data bus carries one burst at a time — sorted by
// completion, consecutive bursts never overlap.
func TestDataBusExclusive(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := newCtl()
		var done []uint64
		c.TraceFn = func(r *Request) { done = append(done, r.Done) }
		var reqs []*Request
		clock := uint64(0)
		for i := 0; i < 3000; i++ {
			clock += uint64(rng.Intn(30))
			reqs = append(reqs, &Request{
				Block:    addr.PageNum(rng.Intn(500)).Block(rng.Intn(16)),
				Arrival:  clock,
				Write:    rng.Intn(5) == 0,
				Prefetch: rng.Intn(3) == 0,
			})
		}
		service(c, reqs...)
		sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
		burst := uint64(Table1Timing().BurstCycles())
		for i := 1; i < len(done); i++ {
			if done[i]-done[i-1] < burst {
				t.Fatalf("seed %d: bursts %d and %d overlap (done %d, %d)",
					seed, i-1, i, done[i-1], done[i])
			}
		}
	}
}

// TestServiceCompleteAndCausal: every enqueued request is serviced exactly
// once, never before its arrival.
func TestServiceCompleteAndCausal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := newCtl()
	seen := map[*Request]int{}
	c.TraceFn = func(r *Request) { seen[r]++ }
	var reqs []*Request
	clock := uint64(0)
	for i := 0; i < 2000; i++ {
		clock += uint64(rng.Intn(50))
		reqs = append(reqs, &Request{
			Block:   addr.PageNum(rng.Intn(100)).Block(rng.Intn(16)),
			Arrival: clock,
			Write:   rng.Intn(4) == 0,
		})
	}
	service(c, reqs...)
	for i, r := range reqs {
		if seen[r] != 1 {
			t.Fatalf("request %d serviced %d times", i, seen[r])
		}
		if r.IssueAt < r.Arrival {
			t.Fatalf("request %d issued at %d before arrival %d", i, r.IssueAt, r.Arrival)
		}
	}
	s := c.Stats()
	if s.Reads+s.Writes != uint64(len(reqs)) {
		t.Fatalf("stats count %d != %d", s.Reads+s.Writes, len(reqs))
	}
}

// TestStatsConsistency: row bookkeeping and latency histogram totals agree
// with the command counts.
func TestStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := newCtl()
	var reqs []*Request
	clock := uint64(0)
	for i := 0; i < 2000; i++ {
		clock += uint64(rng.Intn(40))
		reqs = append(reqs, &Request{
			Block:    addr.PageNum(rng.Intn(200)).Block(rng.Intn(16)),
			Arrival:  clock,
			Write:    rng.Intn(6) == 0,
			Prefetch: rng.Intn(4) == 0,
		})
	}
	service(c, reqs...)
	s := c.Stats()
	if s.RowHits+s.RowMisses+s.RowEmpty != s.Reads+s.Writes {
		t.Fatalf("row classes %d don't sum to commands %d",
			s.RowHits+s.RowMisses+s.RowEmpty, s.Reads+s.Writes)
	}
	var histTotal uint64
	for _, n := range s.LatencyHist {
		histTotal += n
	}
	if histTotal != s.DemandReads {
		t.Fatalf("latency histogram %d entries != demand reads %d", histTotal, s.DemandReads)
	}
	if s.DemandReads+s.PrefReads+s.AllocReads != s.Reads {
		t.Fatalf("read classes don't sum: %d+%d+%d != %d",
			s.DemandReads, s.PrefReads, s.AllocReads, s.Reads)
	}
	if s.Activates != s.RowMisses+s.RowEmpty {
		t.Fatalf("activates %d != misses %d + empty %d", s.Activates, s.RowMisses, s.RowEmpty)
	}
}
