package telemetry

// Structured logging: thin helpers over the standard library's log/slog
// used by both CLIs, so ad-hoc fmt.Fprintf(os.Stderr, ...) prints become
// levelled, optionally-JSON records carrying run-scoped attributes (run
// id, app, prefetcher) that a log pipeline can filter on.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a slog.Logger writing to w at the given level, as
// line-oriented text or JSON. Timestamps are kept (operators correlate
// log lines with scrapes); everything else is plain slog.
func NewLogger(w io.Writer, level slog.Level, asJSON bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if asJSON {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// NewRunID returns a short random hex id identifying one run in log
// streams that interleave several (the experiments sweep, a farm).
func NewRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "run-unknown"
	}
	return hex.EncodeToString(b[:])
}
