package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help", Label{"channel", "0"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same instrument.
	if again := r.Counter("test_total", "help", Label{"channel", "0"}); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels → different child.
	c1 := r.Counter("test_total", "help", Label{"channel", "1"})
	if c1 == c {
		t.Fatal("distinct labels shared a child")
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x_total", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x_cycles", "h")
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Record(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded values")
	}
	if _, ok := r.Quantile("x_cycles", 0.5); ok {
		t.Fatal("nil registry answered a quantile")
	}
	if s := r.Summary(); s != nil {
		t.Fatalf("nil registry summary = %+v, want nil", s)
	}
	if err := WritePrometheus(&strings.Builder{}, r); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_cycles", "h")
	// v=0 → bucket 0 (le 0); v=1 → bucket 1 (le 1); v=2,3 → bucket 2
	// (le 3); v=255 → bucket 8 (le 255); v=256 → bucket 9 (le 511).
	for _, v := range []uint64{0, 1, 2, 3, 255, 256} {
		h.Record(v)
	}
	if h.Count() != 6 || h.Sum() != 0+1+2+3+255+256 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	b, _, _ := h.snapshot()
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 8: 1, 9: 1}
	for i, n := range b {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	// Overflow lands in the +Inf bucket.
	h.Record(math.MaxUint64)
	b, _, _ = h.snapshot()
	if b[HistBuckets-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", b[HistBuckets-1])
	}
}

func TestBucketLE(t *testing.T) {
	for i, want := range map[int]string{0: "0", 1: "1", 2: "3", 3: "7", HistBuckets - 1: "+Inf"} {
		if got := BucketLE(i); got != want {
			t.Errorf("BucketLE(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestQuantiles(t *testing.T) {
	r := NewRegistry()
	// Shard across two children like the engine does; Quantile merges.
	h0 := r.Histogram("lat_cycles", "h", Label{"channel", "0"})
	h1 := r.Histogram("lat_cycles", "h", Label{"channel", "1"})
	for i := 0; i < 50; i++ {
		h0.Record(100) // bucket le 127, range [64,127]
	}
	for i := 0; i < 50; i++ {
		h1.Record(1000) // bucket le 1023, range [512,1023]
	}
	p50, ok := r.Quantile("lat_cycles", 0.50)
	if !ok {
		t.Fatal("quantile not ok")
	}
	if p50 < 64 || p50 > 127 {
		t.Fatalf("p50 = %g, want within [64,127]", p50)
	}
	p99, _ := r.Quantile("lat_cycles", 0.99)
	if p99 < 512 || p99 > 1023 {
		t.Fatalf("p99 = %g, want within [512,1023]", p99)
	}
	if _, ok := r.Quantile("missing", 0.5); ok {
		t.Fatal("missing family answered")
	}
}

func TestWritePrometheusAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_reads_total", "Demand reads.", Label{"channel", "0"}).Add(10)
	r.Counter("demo_reads_total", "Demand reads.", Label{"channel", "1"}).Add(20)
	r.Gauge("demo_depth", "Queue depth.").Set(3)
	h := r.Histogram("demo_lat_cycles", "Latency.", Label{"channel", "0"})
	h.Record(5)
	h.Record(300)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE demo_reads_total counter",
		`demo_reads_total{channel="0"} 10`,
		`demo_reads_total{channel="1"} 20`,
		"# TYPE demo_depth gauge",
		"demo_depth 3",
		"# TYPE demo_lat_cycles histogram",
		`demo_lat_cycles_bucket{channel="0",le="7"} 1`,
		`demo_lat_cycles_bucket{channel="0",le="+Inf"} 2`,
		`demo_lat_cycles_sum{channel="0"} 305`,
		`demo_lat_cycles_count{channel="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition failed validation: %v", err)
	}
	// Families are emitted in sorted name order.
	if strings.Index(out, "demo_depth") > strings.Index(out, "demo_lat_cycles") {
		t.Error("families not sorted by name")
	}
}

func TestWritePrometheusEscapesLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", Label{"app", `we"ird\n` + "\n"}).Inc()
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("escaped exposition invalid: %v\n%s", err, sb.String())
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name":  "1bad_name 3\n",
		"missing value":    "good_name\n",
		"bad value":        "good_name notanumber\n",
		"bad TYPE":         "# TYPE t histogramm\n",
		"duplicate TYPE":   "# TYPE t counter\n# TYPE t counter\n",
		"TYPE after use":   "t 1\n# TYPE t counter\n",
		"unquoted label":   "t{a=b} 1\n",
		"bad label name":   `t{1a="b"} 1` + "\n",
		"non-cumulative":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf":     "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"missing _count":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\n",
		"count mismatch":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
		"bare hist sample": "# TYPE h histogram\nh 5\n",
	}
	for name, in := range cases {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted\n%s", name, in)
		}
	}
	// And a well-formed payload with timestamp + escapes passes.
	ok := "# HELP m help text\n# TYPE m gauge\nm{a=\"x\\\"y\\\\z\\n\"} 1.5 1700000000\n"
	if err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("valid payload rejected: %v", err)
	}
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("wins_total", "h", Label{"component", "stride"}).Add(3)
	r.Counter("wins_total", "h", Label{"component", "markov"}).Add(7)
	r.Counter("reads_total", "h", Label{"channel", "0"}).Add(10)
	r.Counter("reads_total", "h", Label{"channel", "1"}).Add(5)
	r.Gauge("psel", "h").Set(-2)
	h := r.Histogram("lat_cycles", "h")
	for i := 0; i < 100; i++ {
		h.Record(64)
	}
	s := r.Summary()
	if s.Counters["wins_total"] != 10 {
		t.Fatalf("wins_total = %d", s.Counters["wins_total"])
	}
	if s.Counters[`wins_total{component="stride"}`] != 3 {
		t.Fatalf("labeled wins missing: %v", s.Counters)
	}
	// Pure channel-sharded counters fold into the total only.
	if s.Counters["reads_total"] != 15 {
		t.Fatalf("reads_total = %d", s.Counters["reads_total"])
	}
	if _, ok := s.Counters[`reads_total{channel="0"}`]; ok {
		t.Fatal("per-channel shard leaked into summary")
	}
	if s.Gauges["psel"] != -2 {
		t.Fatalf("psel = %d", s.Gauges["psel"])
	}
	hs := s.Histograms["lat_cycles"]
	if hs.Count != 100 || hs.Sum != 6400 {
		t.Fatalf("hist summary %+v", hs)
	}
	if hs.P50 < 64 || hs.P50 > 127 || hs.P99 < 64 || hs.P99 > 127 {
		t.Fatalf("quantiles %+v", hs)
	}
	if len(hs.Buckets) != 1 || hs.Buckets[0].LE != "127" || hs.Buckets[0].Count != 100 {
		t.Fatalf("buckets %+v", hs.Buckets)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for ch := 0; ch < 4; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			c := r.Counter("conc_total", "h", Label{"channel", fmt.Sprint(ch)})
			h := r.Histogram("conc_cycles", "h", Label{"channel", fmt.Sprint(ch)})
			for i := 0; i < 10_000; i++ {
				c.Inc()
				h.Record(uint64(i))
			}
		}(ch)
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := WritePrometheus(&sb, r); err != nil {
				t.Error(err)
				return
			}
			if err := ValidateExposition(strings.NewReader(sb.String())); err != nil {
				t.Errorf("mid-run exposition invalid: %v", err)
				return
			}
			r.Quantile("conc_cycles", 0.99)
			r.Summary()
		}
	}()
	wg.Wait()
	s := r.Summary()
	if s.Counters["conc_total"] != 40_000 {
		t.Fatalf("conc_total = %d", s.Counters["conc_total"])
	}
	if s.Histograms["conc_cycles"].Count != 40_000 {
		t.Fatalf("hist count = %d", s.Histograms["conc_cycles"].Count)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{"debug": "DEBUG", "info": "INFO", "": "INFO", "WARN": "WARN", "error": "ERROR"} {
		lv, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lv.String() != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, lv, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, 0, true)
	lg.Info("hello", "run", "abc")
	if !strings.Contains(sb.String(), `"run":"abc"`) {
		t.Fatalf("json log: %s", sb.String())
	}
	sb.Reset()
	NewLogger(&sb, 0, false).Warn("text mode")
	if !strings.Contains(sb.String(), "level=WARN") {
		t.Fatalf("text log: %s", sb.String())
	}
	if id := NewRunID(); len(id) != 8 {
		t.Fatalf("run id %q", id)
	}
}
