// Package telemetry is a dependency-free, zero-cost-when-disabled metrics
// layer for long-lived runs: atomic counters, gauges and log₂-bucketed
// histograms behind a Registry that can render itself in the Prometheus
// text exposition format (WritePrometheus), fold into the run report as
// p50/p90/p99 summaries (Summary), and answer live quantile queries for
// the progress printer (Quantile).
//
// The design follows the repository's events.Sink pattern: instruments are
// registered once at engine construction, hot paths hold plain pointers
// and record through lock-free atomics, and a disabled run holds nil —
// every call site is gated by a single nil check, so the off path adds no
// allocations and no measurable cost. Sharding is by registration: the
// engine registers one child per execution unit (labels channel/shard),
// so hot-path atomics are uncontended; exposition and summaries merge the
// children, which is exact for log₂ buckets.
//
// Instrument methods are additionally nil-receiver-safe, so partially
// wired components (a DRAM controller with telemetry off) degrade to
// no-ops rather than panics.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Instrument types accepted by the Registry, matching the Prometheus
// exposition TYPE keywords.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Label is one name="value" pair attached to a child instrument.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that may go up or down.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (which may be negative). No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every Histogram: buckets
// 0..HistBuckets-2 hold values v with bits.Len64(v) == index (upper bound
// 2^index − 1, so bucket 0 is exactly v=0, bucket 1 exactly v=1, bucket 2
// is 2..3, ...), and the final bucket is the +Inf overflow. 2^26−1 ≈ 67M
// covers any cycle latency or queue depth the simulator produces.
const HistBuckets = 28

// Histogram is a fixed-shape log₂-bucketed histogram. Record is two
// uncontended atomic adds — cheap enough for per-request hot paths. The
// observation count is not stored separately: it is derived from the bucket
// vector at snapshot time, so `_count` can never disagree with the +Inf
// cumulative bucket in a mid-run scrape (a separate count atomic would race
// against the bucket reads and fail strict exposition validators).
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// Record adds one observation. No-op on a nil receiver.
func (h *Histogram) Record(v uint64) {
	if h == nil {
		return
	}
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of observations (0 for a nil receiver).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot atomically-ish loads the bucket vector (each bucket load is
// atomic; the vector as a whole is a point-in-time view, which is all a
// mid-run scrape can ask of lock-free instruments). The count is the bucket
// total, so it is internally consistent with the vector by construction.
func (h *Histogram) snapshot() (buckets [HistBuckets]uint64, count, sum uint64) {
	if h == nil {
		return
	}
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.sum.Load()
}

// bucketBounds returns the value range [lo, hi] covered by bucket i. The
// +Inf bucket reports hi = 2*lo as an interpolation anchor.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	lo = float64(uint64(1) << (i - 1))
	if i == HistBuckets-1 {
		return lo, 2 * lo
	}
	return lo, float64((uint64(1) << i) - 1)
}

// BucketLE renders bucket i's inclusive upper bound as a Prometheus `le`
// label value: "0", "1", "3", "7", ... and "+Inf" for the overflow bucket.
func BucketLE(i int) string {
	if i >= HistBuckets-1 {
		return "+Inf"
	}
	return fmt.Sprintf("%d", (uint64(1)<<i)-1)
}

// quantileFromBuckets estimates the q-quantile (0 < q < 1) by linear
// interpolation inside the first bucket whose cumulative count reaches
// rank q·count.
func quantileFromBuckets(buckets [HistBuckets]uint64, count uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - prev) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	// Unreachable when count matches the buckets, but a torn mid-run
	// snapshot may undercount: fall back to the largest bound seen.
	_, hi := bucketBounds(HistBuckets - 1)
	return hi
}

// family is one metric family: a name, HELP text, a TYPE, and one child
// instrument per distinct label set.
type family struct {
	name     string
	help     string
	typ      string
	mu       sync.Mutex
	children map[string]*child // keyed by canonical label signature
}

type child struct {
	labels  []Label
	sig     string // canonical rendered label signature, exposition-ready
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds metric families. The zero value is NOT usable; call
// NewRegistry. A nil *Registry is the "telemetry disabled" state: its
// registration methods return nil instruments, whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Enabled reports whether the registry is live (non-nil). Hot paths
// should instead cache instrument pointers and gate on those.
func (r *Registry) Enabled() bool { return r != nil }

// family returns the named family, creating it with the given type and
// help on first use. Type conflicts panic: they are programming errors
// caught at engine construction, never at scrape time.
func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]*child)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// child returns the family's child for the given labels, creating it on
// first use. Registration of the same (name, labels) pair is idempotent
// and returns the same instrument.
func (f *family) child(labels []Label) *child {
	sig := labelSignature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[sig]
	if !ok {
		cp := make([]Label, len(labels))
		copy(cp, labels)
		c = &child{labels: cp, sig: sig}
		switch f.typ {
		case TypeCounter:
			c.counter = &Counter{}
		case TypeGauge:
			c.gauge = &Gauge{}
		case TypeHistogram:
			c.hist = &Histogram{}
		}
		f.children[sig] = c
	}
	return c
}

// Counter registers (or finds) the counter name{labels} and returns it.
// Returns nil on a nil registry — and nil instruments are safe no-ops.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, TypeCounter).child(labels).counter
}

// Gauge registers (or finds) the gauge name{labels} and returns it.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, TypeGauge).child(labels).gauge
}

// Histogram registers (or finds) the histogram name{labels} and returns
// it. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, help, TypeHistogram).child(labels).hist
}

// Quantile merges the named histogram family's children and returns the
// q-quantile, with ok=false when the family is absent, empty or not a
// histogram. Safe to call mid-run from any goroutine, and on a nil
// registry (reports ok=false).
func (r *Registry) Quantile(name string, q float64) (v float64, ok bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.typ != TypeHistogram {
		return 0, false
	}
	var merged [HistBuckets]uint64
	var count uint64
	f.mu.Lock()
	for _, c := range f.children {
		b, n, _ := c.hist.snapshot()
		for i := range b {
			merged[i] += b[i]
		}
		count += n
	}
	f.mu.Unlock()
	if count == 0 {
		return 0, false
	}
	return quantileFromBuckets(merged, count, q), true
}

// sortedFamilies returns the families in name order — the stable iteration
// order shared by exposition and summaries.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren returns a family's children in label-signature order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	cs := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		cs = append(cs, c)
	}
	f.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].sig < cs[j].sig })
	return cs
}

// labelSignature renders labels in sorted-key order as a canonical,
// exposition-ready `k1="v1",k2="v2"` string ("" for no labels).
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format label escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
