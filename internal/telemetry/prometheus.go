package telemetry

// Prometheus text exposition (version 0.0.4): WritePrometheus renders the
// registry for a /metrics scrape, and ValidateExposition is the matching
// minimal promlint-style checker used by the exposition tests, by
// `experiments -validate-metrics`, and by the CI scrape smoke step.

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the text exposition format, in
// stable name order with children in label order: `# HELP` and `# TYPE`
// lines, then one sample line per child (histograms expand into the usual
// cumulative `_bucket{le=...}`, `_sum` and `_count` series). Safe to call
// mid-run: all reads are atomic snapshots.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range children {
			switch f.typ {
			case TypeCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, braceSig(c.sig), c.counter.Value())
			case TypeGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, braceSig(c.sig), c.gauge.Value())
			case TypeHistogram:
				writeHistogram(bw, f.name, c)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram child as cumulative buckets plus
// _sum and _count, merging the le label into any existing child labels.
func writeHistogram(w io.Writer, name string, c *child) {
	buckets, count, sum := c.hist.snapshot()
	cum := uint64(0)
	for i, b := range buckets {
		cum += b
		le := BucketLE(i)
		if c.sig == "" {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, c.sig, le, cum)
		}
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", name, braceSig(c.sig), sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, braceSig(c.sig), count)
}

// braceSig wraps a non-empty label signature in braces.
func braceSig(sig string) string {
	if sig == "" {
		return ""
	}
	return "{" + sig + "}"
}

// escapeHelp applies the exposition-format HELP escapes.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidateExposition parses a text-exposition payload and reports the
// first violation it finds: malformed sample or comment lines, invalid
// metric/label names, a TYPE appearing after its family's samples or
// repeated, unparseable values, histogram bucket series that are not
// cumulative, and histogram families missing their +Inf bucket or
// _count/_sum series. Empty input is valid (an idle registry).
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typeOf := map[string]string{} // family -> declared type
	seenSample := map[string]bool{}
	hists := map[string]*histState{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typeOf, seenSample); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(name, typeOf)
		seenSample[fam] = true
		if typeOf[fam] == TypeHistogram {
			h := hists[fam]
			if h == nil {
				h = &histState{lastCum: map[string]float64{}, sawInf: map[string]bool{}, sawCount: map[string]bool{}, sawSum: map[string]bool{}}
				hists[fam] = h
			}
			if err := h.observe(fam, name, labels, value); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: read exposition: %w", err)
	}
	for fam, h := range hists {
		for _, ls := range h.labelSets {
			if !h.sawInf[ls] {
				return fmt.Errorf("telemetry: histogram %s{%s} missing +Inf bucket", fam, ls)
			}
			if !h.sawCount[ls] {
				return fmt.Errorf("telemetry: histogram %s{%s} missing _count", fam, ls)
			}
			if !h.sawSum[ls] {
				return fmt.Errorf("telemetry: histogram %s{%s} missing _sum", fam, ls)
			}
		}
	}
	return nil
}

// validateComment checks a `# HELP` / `# TYPE` line (other comments pass).
func validateComment(line string, typeOf map[string]string, seenSample map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("telemetry: malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("telemetry: malformed TYPE comment %q", line)
		}
		name, typ := fields[2], fields[3]
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("telemetry: invalid metric name %q", name)
		}
		switch typ {
		case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
		default:
			return fmt.Errorf("telemetry: invalid TYPE %q for %s", typ, name)
		}
		if _, dup := typeOf[name]; dup {
			return fmt.Errorf("telemetry: duplicate TYPE for %s", name)
		}
		if seenSample[name] {
			return fmt.Errorf("telemetry: TYPE for %s after its samples", name)
		}
		typeOf[name] = typ
	}
	return nil
}

// histState tracks one histogram family's per-label-set invariants while
// validating: cumulative bucket order, the +Inf terminal bucket, and the
// presence and consistency of the _count/_sum series.
type histState struct {
	lastCum   map[string]float64 // per label-set (minus le) running cumulative
	sawInf    map[string]bool
	sawCount  map[string]bool
	sawSum    map[string]bool
	labelSets []string
}

// observe folds one histogram-family sample into the per-label-set state.
func (h *histState) observe(fam, name string, labels map[string]string, value float64) error {
	le, hasLE := labels["le"]
	delete(labels, "le")
	ls := canonicalLabels(labels)
	switch {
	case name == fam+"_bucket":
		if !hasLE {
			return fmt.Errorf("telemetry: %s without le label", name)
		}
		if !h.seen(ls) {
			h.labelSets = append(h.labelSets, ls)
		}
		if le == "+Inf" {
			h.sawInf[ls] = true
		} else if _, err := strconv.ParseFloat(le, 64); err != nil {
			return fmt.Errorf("telemetry: unparseable le=%q on %s", le, name)
		}
		if prev, ok := h.lastCum[ls]; ok && value < prev {
			return fmt.Errorf("telemetry: %s{%s} buckets not cumulative (%g after %g)", fam, ls, value, prev)
		}
		h.lastCum[ls] = value
	case name == fam+"_count":
		if !h.seen(ls) {
			h.labelSets = append(h.labelSets, ls)
		}
		h.sawCount[ls] = true
		if inf, ok := h.lastCum[ls]; ok && h.sawInf[ls] && value != inf {
			return fmt.Errorf("telemetry: %s{%s} _count %g != +Inf bucket %g", fam, ls, value, inf)
		}
	case name == fam+"_sum":
		if !h.seen(ls) {
			h.labelSets = append(h.labelSets, ls)
		}
		h.sawSum[ls] = true
	case name == fam:
		return fmt.Errorf("telemetry: bare sample %s for histogram family", name)
	}
	return nil
}

func (h *histState) seen(ls string) bool {
	_, ok := h.lastCum[ls]
	return ok || h.sawCount[ls] || h.sawSum[ls]
}

// canonicalLabels renders a parsed label map in sorted order.
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, 0, len(labels))
	for k, v := range labels {
		ls = append(ls, Label{k, v})
	}
	return labelSignature(ls)
}

// familyOf maps a sample name to its declared family: histogram series
// suffixes collapse onto the declared histogram family name.
func familyOf(name string, typeOf map[string]string) string {
	for _, suf := range []string{"_bucket", "_count", "_sum"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typeOf[base] == TypeHistogram {
			return base
		}
	}
	return name
}

// parseSample parses one exposition sample line into name, labels and
// value (an optional trailing timestamp is accepted and ignored).
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexAny(rest, " \t")
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		rest = rest[brace+1:]
		rest, err = parseLabels(rest, labels)
		if err != nil {
			return "", nil, 0, err
		}
	} else {
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("telemetry: sample %q missing value", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !metricNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("telemetry: invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("telemetry: sample %q: want value [timestamp]", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("telemetry: sample %q: bad value: %w", line, err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("telemetry: sample %q: bad timestamp", line)
		}
	}
	return name, labels, value, nil
}

// parseLabels consumes `k="v",...}` and returns the remainder after '}'.
func parseLabels(s string, out map[string]string) (rest string, err error) {
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return "", fmt.Errorf("telemetry: labels missing '=' in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(key) {
			return "", fmt.Errorf("telemetry: invalid label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return "", fmt.Errorf("telemetry: label %s value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return "", fmt.Errorf("telemetry: unterminated label value for %s", key)
			}
			ch := s[0]
			s = s[1:]
			if ch == '\\' {
				if s == "" {
					return "", fmt.Errorf("telemetry: dangling escape in label %s", key)
				}
				esc := s[0]
				s = s[1:]
				switch esc {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("telemetry: bad escape \\%c in label %s", esc, key)
				}
				continue
			}
			if ch == '"' {
				break
			}
			val.WriteByte(ch)
		}
		out[key] = val.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		return "", fmt.Errorf("telemetry: labels missing ',' or '}' after %s", key)
	}
}
