package telemetry

// Report embedding: Summary folds the registry into plain JSON-friendly
// values for metrics.Report and the obs artifact (schema v4). Histogram
// children are merged per family — exact for log₂ buckets — so the report
// carries the run-wide distribution; counters and gauges keep their label
// signature in the key so per-component values (tournament wins) survive.

// BucketCount is one non-empty histogram bucket in a summary: the
// inclusive upper bound as an exposition-style le string ("0", "1", "3",
// ..., "+Inf") and the plain (non-cumulative) count of observations in
// the bucket.
type BucketCount struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSummary is one merged histogram family: totals, interpolated
// quantiles, and the non-empty bucket vector.
type HistogramSummary struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Summary is the report-embeddable snapshot of a registry. Keys are
// metric names; counter and gauge keys carry a {label="value"} suffix
// when the child was registered with labels.
type Summary struct {
	Counters   map[string]uint64           `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// Summary snapshots the registry. Counter children with identical names
// but different labels (per-channel shards) are summed into the unlabeled
// name AND kept under their labeled key when the label is not a pure
// shard label (channel/shard), so per-component counters stay visible
// without 16 near-identical per-unit entries drowning the report.
// Returns nil on a nil registry (so the report field stays omitted).
func (r *Registry) Summary() *Summary {
	if r == nil {
		return nil
	}
	s := &Summary{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSummary{},
	}
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		switch f.typ {
		case TypeCounter:
			var total uint64
			for _, c := range children {
				total += c.counter.Value()
				if keepLabeledKey(c.labels) {
					s.Counters[f.name+braceSig(c.sig)] = c.counter.Value()
				}
			}
			s.Counters[f.name] = total
		case TypeGauge:
			for _, c := range children {
				s.Gauges[f.name+braceSig(c.sig)] = c.gauge.Value()
			}
		case TypeHistogram:
			var merged [HistBuckets]uint64
			var count, sum uint64
			for _, c := range children {
				b, n, sm := c.hist.snapshot()
				for i := range b {
					merged[i] += b[i]
				}
				count += n
				sum += sm
			}
			hs := HistogramSummary{Count: count, Sum: sum}
			if count > 0 {
				hs.P50 = quantileFromBuckets(merged, count, 0.50)
				hs.P90 = quantileFromBuckets(merged, count, 0.90)
				hs.P99 = quantileFromBuckets(merged, count, 0.99)
				for i, b := range merged {
					if b != 0 {
						hs.Buckets = append(hs.Buckets, BucketCount{LE: BucketLE(i), Count: b})
					}
				}
			}
			s.Histograms[f.name] = hs
		}
	}
	if len(s.Counters) == 0 {
		s.Counters = nil
	}
	if len(s.Gauges) == 0 {
		s.Gauges = nil
	}
	if len(s.Histograms) == 0 {
		s.Histograms = nil
	}
	return s
}

// keepLabeledKey reports whether a counter child's labeled value is worth
// keeping in the summary next to the family total. Pure execution-shard
// labels (channel/shard) are aggregation detail; anything else (component,
// origin) is semantic.
func keepLabeledKey(labels []Label) bool {
	if len(labels) == 0 {
		return false
	}
	for _, l := range labels {
		if l.Key != "channel" && l.Key != "shard" {
			return true
		}
	}
	return false
}
