package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func sampleTrace() Trace {
	return Trace{
		{Addr: 0x1000, Cycle: 10, Device: CPU0, Write: false},
		{Addr: 0x1040, Cycle: 12, Device: GPU, Write: true},
		{Addr: 0x2000, Cycle: 20, Device: DSP, Write: false},
		{Addr: 0x2fc0, Cycle: 25, Device: CPU3, Write: true},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleTrace()) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, sampleTrace())
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty trace, got %d records", len(got))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := ReadAllFrom(strings.NewReader("not a trace at all"))
	if err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(cut))
	var err error
	for err == nil {
		_, err = r.Read()
	}
	if err == io.EOF {
		t.Fatal("truncated trace read cleanly")
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleTrace()) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, sampleTrace())
	}
}

func TestTextParseErrors(t *testing.T) {
	cases := []string{
		"10 X 0x1000 cpu0",    // bad op
		"ten R 0x1000 cpu0",   // bad cycle
		"10 R zz cpu0",        // bad addr
		"10 R 0x1000 toaster", // bad device
		"10 R 0x1000",         // short line
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("line %q: expected error", c)
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n10 R 0x1000 cpu0\n   \n# trailing\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Addr != 0x1000 {
		t.Fatalf("got %v", got)
	}
}

func TestDeviceRoundTrip(t *testing.T) {
	for d := CPU0; d < numDevices; d++ {
		got, err := ParseDevice(d.String())
		if err != nil || got != d {
			t.Errorf("device %d: round trip got %v, %v", d, got, err)
		}
	}
	if _, err := ParseDevice("bogus"); err == nil {
		t.Error("expected error for unknown device")
	}
	if !CPU5.IsCPU() || GPU.IsCPU() {
		t.Error("IsCPU misclassifies")
	}
}

func TestSortAndSorted(t *testing.T) {
	tr := Trace{
		{Cycle: 5}, {Cycle: 3}, {Cycle: 9}, {Cycle: 3, Device: GPU},
	}
	if tr.Sorted() {
		t.Fatal("unsorted trace reported sorted")
	}
	tr.Sort()
	if !tr.Sorted() {
		t.Fatal("Sort did not sort")
	}
	// Stability: the two cycle-3 records keep their relative order.
	if tr[0].Device != CPU0 || tr[1].Device != GPU {
		t.Fatalf("sort not stable: %v", tr)
	}
}

func TestMerge(t *testing.T) {
	a := Trace{{Cycle: 1}, {Cycle: 4}, {Cycle: 9}}
	b := Trace{{Cycle: 2}, {Cycle: 4, Device: GPU}, {Cycle: 20}}
	m := Merge(a, b)
	if len(m) != 6 || !m.Sorted() {
		t.Fatalf("merge broken: %v", m)
	}
	// Ties go to the first trace.
	if m[2].Device != CPU0 || m[3].Device != GPU {
		t.Fatalf("tie order wrong: %v", m)
	}
}

func TestMergeProperty(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a := make(Trace, len(xs))
		for i, x := range xs {
			a[i] = Record{Cycle: uint64(x)}
		}
		b := make(Trace, len(ys))
		for i, y := range ys {
			b[i] = Record{Cycle: uint64(y)}
		}
		a.Sort()
		b.Sort()
		m := Merge(a, b)
		return len(m) == len(a)+len(b) && m.Sorted()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := make(Trace, 500)
	for i := range tr {
		tr[i] = Record{
			Addr:   addr.Addr(rng.Uint64() &^ 63),
			Cycle:  uint64(i * 3),
			Device: Device(rng.Intn(int(numDevices))),
			Write:  rng.Intn(4) == 0,
		}
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("property round trip mismatch")
	}
}

func TestAnalyze(t *testing.T) {
	tr := Trace{
		{Addr: 0x1000, Cycle: 0, Device: CPU0},              // page 1 block 0 (ch 0)
		{Addr: 0x1040, Cycle: 10, Device: CPU0},             // page 1 block 1 (ch 0)
		{Addr: 0x1400, Cycle: 20, Device: GPU, Write: true}, // page 1 block 16 (ch 1)
		{Addr: 0x2000, Cycle: 30, Device: DSP},              // page 2 block 0 (ch 0)
		{Addr: 0x1000, Cycle: 40, Device: CPU0},             // repeat
	}
	s := Analyze(tr)
	if s.Records != 5 || s.Reads != 4 || s.Writes != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.Pages != 2 || s.Blocks != 4 {
		t.Fatalf("footprint wrong: pages %d blocks %d", s.Pages, s.Blocks)
	}
	if s.PerDevice[CPU0] != 3 || s.PerDevice[GPU] != 1 || s.PerDevice[DSP] != 1 {
		t.Fatalf("device mix wrong: %v", s.PerDevice)
	}
	if s.ChannelLoad[0] != 4 || s.ChannelLoad[1] != 1 {
		t.Fatalf("channel load wrong: %v", s.ChannelLoad)
	}
	if s.MeanGap != 10 {
		t.Fatalf("mean gap %v, want 10", s.MeanGap)
	}
	if s.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(nil)
	if s.Records != 0 || s.Pages != 0 || s.MeanGap != 0 {
		t.Fatalf("empty stats wrong: %+v", s)
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Addr: 0x1040, Cycle: 7, Device: GPU, Write: true}
	if got := r.String(); got != "7 W 0x1040 gpu" {
		t.Fatalf("String = %q", got)
	}
}
