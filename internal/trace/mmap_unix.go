//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared (the kernel page cache
// backs the mapping, so concurrent replays of one trace share physical
// memory).
func mapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapping from mapFile.
func unmapFile(data []byte) {
	// The only Munmap failure modes are programming errors (a bad slice);
	// the mapping came from mapFile, so ignore the impossible error rather
	// than complicating every Close path.
	_ = syscall.Munmap(data)
}
