package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/addr"
)

func streamTrace(n int) Trace {
	t := make(Trace, n)
	for i := range t {
		t[i] = Record{
			Addr:   addr.Addr(0x40 * i * 3),
			Cycle:  uint64(i * 7),
			Device: Device(i % int(numDevices)),
			Write:  i%5 == 0,
		}
	}
	return t
}

// TestSliceStream: the slice-backed stream delivers exactly the backing
// records, via both Next and chunked reads, and counts down Len.
func TestSliceStream(t *testing.T) {
	tr := streamTrace(100)
	s := tr.Stream()
	if s.Len() != 100 {
		t.Fatalf("fresh Len = %d, want 100", s.Len())
	}
	var got Trace
	buf := make([]Record, 7) // deliberately not a divisor of 100
	for {
		n := ReadChunk(s, buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(tr) {
		t.Fatalf("stream delivered %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], tr[i])
		}
	}
	if s.Len() != 0 {
		t.Fatalf("drained Len = %d, want 0", s.Len())
	}
	if _, ok := s.Next(); ok {
		t.Fatal("drained stream still yields records")
	}
	if s.Err() != nil {
		t.Fatalf("slice stream reported error %v", s.Err())
	}
}

// TestReaderStream: the binary-file stream round-trips a written trace
// record-for-record without materializing it, and WithLen makes it Sized.
func TestReaderStream(t *testing.T) {
	tr := streamTrace(50)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	n := RecordCount(int64(buf.Len()))
	if n != 50 {
		t.Fatalf("RecordCount = %d, want 50", n)
	}
	s := NewReader(&buf).Stream()
	if s.Len() != -1 {
		t.Fatalf("undeclared Len = %d, want -1", s.Len())
	}
	s.WithLen(n)
	if s.Len() != 50 {
		t.Fatalf("declared Len = %d, want 50", s.Len())
	}
	for i := range tr {
		rec, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended early at %d: %v", i, s.Err())
		}
		if rec != tr[i] {
			t.Fatalf("record %d: %v != %v", i, rec, tr[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream yields records past the end")
	}
	if s.Err() != nil {
		t.Fatalf("clean EOF reported error %v", s.Err())
	}
}

// TestReaderStreamTruncated: a mid-record cut terminates the stream with a
// non-nil Err (clean EOF stays nil — previous test).
func TestReaderStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, streamTrace(3)); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	s := NewReader(bytes.NewReader(cut)).Stream()
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("truncated stream delivered %d records, want 2", n)
	}
	if s.Err() == nil {
		t.Fatal("truncated stream reported no error")
	}
}

// TestRecordCount rejects sizes that cannot be a whole header plus whole
// records.
func TestRecordCount(t *testing.T) {
	for _, tc := range []struct {
		size int64
		want int
	}{
		{0, -1}, {7, -1}, {8, 0}, {8 + 18, 1}, {8 + 18*1000, 1000}, {8 + 17, -1}, {9, -1},
	} {
		if got := RecordCount(tc.size); got != tc.want {
			t.Errorf("RecordCount(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

// TestStreamLen covers the Sized probe on all three producer kinds.
func TestStreamLen(t *testing.T) {
	tr := streamTrace(10)
	if n := StreamLen(tr.Stream()); n != 10 {
		t.Fatalf("slice StreamLen = %d", n)
	}
	var buf bytes.Buffer
	_ = WriteAll(&buf, tr)
	if n := StreamLen(NewReader(&buf).Stream()); n != -1 {
		t.Fatalf("unsized reader StreamLen = %d, want -1", n)
	}
}

// TestWithLenShortFile: a source that ends before delivering the declared
// record count must fail the stream with ErrLenMismatch — a silently short
// stream would mis-place every warmup boundary computed from Len.
func TestWithLenShortFile(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, streamTrace(50)); err != nil {
		t.Fatal(err)
	}
	s := NewReader(&buf).Stream().WithLen(60)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 50 {
		t.Fatalf("short source delivered %d records, want 50", n)
	}
	if !errors.Is(s.Err(), ErrLenMismatch) {
		t.Fatalf("short source Err = %v, want ErrLenMismatch", s.Err())
	}
}

// TestWithLenLongFile: a source that keeps decoding past the declared count
// stops at the declaration and fails, instead of silently delivering more
// records than the warmup arithmetic assumed.
func TestWithLenLongFile(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, streamTrace(50)); err != nil {
		t.Fatal(err)
	}
	s := NewReader(&buf).Stream().WithLen(40)
	var got Trace
	chunk := make([]Record, 16)
	for {
		n := ReadChunk(s, chunk)
		if n == 0 {
			break
		}
		got = append(got, chunk[:n]...)
	}
	if len(got) != 40 {
		t.Fatalf("long source delivered %d records, want 40", len(got))
	}
	if !errors.Is(s.Err(), ErrLenMismatch) {
		t.Fatalf("long source Err = %v, want ErrLenMismatch", s.Err())
	}
}

// lyingStream declares a length unrelated to what it delivers (it may even
// be negative) — consumers must treat Len as advisory, never as a promise.
type lyingStream struct {
	inner *SliceStream
	len   int
}

func (l *lyingStream) Next() (Record, bool) { return l.inner.Next() }
func (l *lyingStream) Err() error           { return l.inner.Err() }
func (l *lyingStream) Len() int             { return l.len }

// TestStreamLenLiar: StreamLen forwards a positive lie untouched (callers
// own the consequences) and maps any negative value to the single unknown
// sentinel -1.
func TestStreamLenLiar(t *testing.T) {
	tr := streamTrace(5)
	if n := StreamLen(&lyingStream{inner: tr.Stream(), len: 1000}); n != 1000 {
		t.Fatalf("positive lie StreamLen = %d, want 1000", n)
	}
	for _, lie := range []int{-1, -7, -1 << 40} {
		if n := StreamLen(&lyingStream{inner: tr.Stream(), len: lie}); n != -1 {
			t.Fatalf("negative Len %d: StreamLen = %d, want -1", lie, n)
		}
	}
}

// TestReadChunkLiar: ReadChunk delivers what the stream actually has, not
// what Len claims, and terminates cleanly either way.
func TestReadChunkLiar(t *testing.T) {
	tr := streamTrace(5)
	s := &lyingStream{inner: tr.Stream(), len: 1000}
	buf := make([]Record, 64)
	if n := ReadChunk(s, buf); n != 5 {
		t.Fatalf("over-declared stream: ReadChunk = %d, want 5", n)
	}
	if n := ReadChunk(s, buf); n != 0 {
		t.Fatalf("drained stream: ReadChunk = %d, want 0", n)
	}
	s2 := &lyingStream{inner: tr.Stream(), len: -3}
	if n := ReadChunk(s2, buf); n != 5 {
		t.Fatalf("negative-Len stream: ReadChunk = %d, want 5", n)
	}
}

// flakyReader fails exactly once with a transient-looking error after
// limit bytes, then would happily serve the rest — a source whose failure
// looks retryable.
type flakyReader struct {
	data   []byte
	pos    int
	limit  int
	failed bool
	reads  int
}

func (f *flakyReader) Read(p []byte) (int, error) {
	f.reads++
	if !f.failed && f.pos >= f.limit {
		f.failed = true
		return 0, errors.New("transient I/O error")
	}
	if f.pos >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.pos:])
	if !f.failed && f.pos+n > f.limit {
		n = f.limit - f.pos
	}
	f.pos += n
	return n, nil
}

// TestReaderStreamNoResume: after a mid-stream error the stream must stay
// stopped — never touching the source again — even though the source would
// serve more data on retry. A partial re-read would silently skip records.
func TestReaderStreamNoResume(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, streamTrace(30)); err != nil {
		t.Fatal(err)
	}
	fr := &flakyReader{data: buf.Bytes(), limit: 8 + 18*12 + 5} // dies mid-record 13
	s := NewReader(fr).Stream()
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if s.Err() == nil {
		t.Fatal("flaky source error swallowed")
	}
	if n > 13 {
		t.Fatalf("delivered %d records across a transient failure", n)
	}
	readsAtFailure := fr.reads
	for i := 0; i < 3; i++ {
		if _, ok := s.Next(); ok {
			t.Fatal("stopped stream resumed after a transient error")
		}
	}
	if fr.reads != readsAtFailure {
		t.Fatalf("stopped stream re-read the source (%d reads after failure)", fr.reads-readsAtFailure)
	}
	if s.Err() == nil {
		t.Fatal("error cleared after extra Next calls")
	}
}
