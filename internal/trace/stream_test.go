package trace

import (
	"bytes"
	"testing"

	"repro/internal/addr"
)

func streamTrace(n int) Trace {
	t := make(Trace, n)
	for i := range t {
		t[i] = Record{
			Addr:   addr.Addr(0x40 * i * 3),
			Cycle:  uint64(i * 7),
			Device: Device(i % int(numDevices)),
			Write:  i%5 == 0,
		}
	}
	return t
}

// TestSliceStream: the slice-backed stream delivers exactly the backing
// records, via both Next and chunked reads, and counts down Len.
func TestSliceStream(t *testing.T) {
	tr := streamTrace(100)
	s := tr.Stream()
	if s.Len() != 100 {
		t.Fatalf("fresh Len = %d, want 100", s.Len())
	}
	var got Trace
	buf := make([]Record, 7) // deliberately not a divisor of 100
	for {
		n := ReadChunk(s, buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(tr) {
		t.Fatalf("stream delivered %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], tr[i])
		}
	}
	if s.Len() != 0 {
		t.Fatalf("drained Len = %d, want 0", s.Len())
	}
	if _, ok := s.Next(); ok {
		t.Fatal("drained stream still yields records")
	}
	if s.Err() != nil {
		t.Fatalf("slice stream reported error %v", s.Err())
	}
}

// TestReaderStream: the binary-file stream round-trips a written trace
// record-for-record without materializing it, and WithLen makes it Sized.
func TestReaderStream(t *testing.T) {
	tr := streamTrace(50)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	n := RecordCount(int64(buf.Len()))
	if n != 50 {
		t.Fatalf("RecordCount = %d, want 50", n)
	}
	s := NewReader(&buf).Stream()
	if s.Len() != -1 {
		t.Fatalf("undeclared Len = %d, want -1", s.Len())
	}
	s.WithLen(n)
	if s.Len() != 50 {
		t.Fatalf("declared Len = %d, want 50", s.Len())
	}
	for i := range tr {
		rec, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended early at %d: %v", i, s.Err())
		}
		if rec != tr[i] {
			t.Fatalf("record %d: %v != %v", i, rec, tr[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream yields records past the end")
	}
	if s.Err() != nil {
		t.Fatalf("clean EOF reported error %v", s.Err())
	}
}

// TestReaderStreamTruncated: a mid-record cut terminates the stream with a
// non-nil Err (clean EOF stays nil — previous test).
func TestReaderStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, streamTrace(3)); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	s := NewReader(bytes.NewReader(cut)).Stream()
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("truncated stream delivered %d records, want 2", n)
	}
	if s.Err() == nil {
		t.Fatal("truncated stream reported no error")
	}
}

// TestRecordCount rejects sizes that cannot be a whole header plus whole
// records.
func TestRecordCount(t *testing.T) {
	for _, tc := range []struct {
		size int64
		want int
	}{
		{0, -1}, {7, -1}, {8, 0}, {8 + 18, 1}, {8 + 18*1000, 1000}, {8 + 17, -1}, {9, -1},
	} {
		if got := RecordCount(tc.size); got != tc.want {
			t.Errorf("RecordCount(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

// TestStreamLen covers the Sized probe on all three producer kinds.
func TestStreamLen(t *testing.T) {
	tr := streamTrace(10)
	if n := StreamLen(tr.Stream()); n != 10 {
		t.Fatalf("slice StreamLen = %d", n)
	}
	var buf bytes.Buffer
	_ = WriteAll(&buf, tr)
	if n := StreamLen(NewReader(&buf).Stream()); n != -1 {
		t.Fatalf("unsized reader StreamLen = %d, want -1", n)
	}
}
