package trace

import (
	"errors"
	"fmt"
	"io"
)

// This file defines the streaming side of the trace package: a pull-based
// record iterator that lets the simulation engine consume traces of any
// length in O(chunk) memory. The paper's own methodology is stream-shaped —
// bus-monitor records are fed one at a time into a modified DRAMSim2 — and
// the same property is what lets billion-access runs fit in bounded memory
// here (see docs/PERFORMANCE.md, "Streaming pipeline").
//
// Producers implement Stream (and usually the optional Chunker fast path);
// consumers pull records through ReadChunk so the per-record interface-call
// overhead is amortised over ChunkSize records.

// ChunkSize is the batch granularity of the streaming pipeline: consumers
// pull records in chunks of this many at a time (ReadChunk), and the
// parallel engine's splitter hands per-channel chunks of this capacity to
// the channel goroutines. 4096 records is 96 KB — large enough to amortise
// per-chunk costs to noise, small enough that a full splitter pipeline
// (building buffer + bounded queue + in-flight chunk, per channel) stays
// within a few megabytes.
const ChunkSize = 4096

// Stream is a pull-based record source. Implementations are not safe for
// concurrent use; the engine pulls from exactly one goroutine.
type Stream interface {
	// Next returns the next record; ok is false when the stream is
	// exhausted (or failed — check Err).
	Next() (rec Record, ok bool)
	// Err returns the error that terminated the stream, if any. It is
	// meaningful only after Next has returned ok == false; infallible
	// sources (slices, generators) always return nil.
	Err() error
}

// Sized is optionally implemented by streams that know how many records
// remain. A negative count means unknown (streams may embed a Len method
// unconditionally and report -1 until told their length). Engine warmup
// fractions need a sized stream.
type Sized interface {
	// Len returns the number of records remaining, or a negative value
	// when the count is unknown.
	Len() int
}

// Chunker is the optional batch fast path of a Stream: NextChunk fills dst
// with up to len(dst) records and returns how many were filled (zero at end
// of stream). ReadChunk prefers it over per-record Next calls.
type Chunker interface {
	NextChunk(dst []Record) int
}

// ReadChunk fills dst from s and returns the number of records delivered,
// zero at end of stream. It uses the Chunker fast path when s provides one.
func ReadChunk(s Stream, dst []Record) int {
	if c, ok := s.(Chunker); ok {
		return c.NextChunk(dst)
	}
	for i := range dst {
		rec, ok := s.Next()
		if !ok {
			return i
		}
		dst[i] = rec
	}
	return len(dst)
}

// StreamLen returns the remaining record count of s, or -1 when s is not
// Sized (or does not know its length).
func StreamLen(s Stream) int {
	if sz, ok := s.(Sized); ok {
		if n := sz.Len(); n >= 0 {
			return n
		}
	}
	return -1
}

// SliceStream adapts an in-memory Trace to the Stream interface without
// copying the backing array. It is how Run/RunWarm remain thin shims over
// the streaming engine.
type SliceStream struct {
	t   Trace
	pos int
}

// Stream returns a stream over the trace's records.
func (t Trace) Stream() *SliceStream { return &SliceStream{t: t} }

// Next implements Stream.
func (s *SliceStream) Next() (Record, bool) {
	if s.pos >= len(s.t) {
		return Record{}, false
	}
	rec := s.t[s.pos]
	s.pos++
	return rec, true
}

// NextChunk implements Chunker.
func (s *SliceStream) NextChunk(dst []Record) int {
	n := copy(dst, s.t[s.pos:])
	s.pos += n
	return n
}

// Err implements Stream; slice streams cannot fail.
func (s *SliceStream) Err() error { return nil }

// Len implements Sized.
func (s *SliceStream) Len() int { return len(s.t) - s.pos }

// ReaderStream adapts a binary trace Reader to the Stream interface:
// streaming file replay without ReadAll's whole-trace materialisation. The
// record count is unknown (Len returns -1) unless declared with WithLen —
// use RecordCount on the file size for regular binary trace files.
type ReaderStream struct {
	r        *Reader
	err      error
	done     bool
	remain   int
	declared int
	sized    bool
}

// Stream returns a record stream over the reader.
func (r *Reader) Stream() *ReaderStream { return &ReaderStream{r: r} }

// ErrLenMismatch reports a declared stream length (WithLen) that disagrees
// with the records the source actually decoded. Consumers that place a
// warmup boundary from Len would otherwise mis-place it silently.
var ErrLenMismatch = errors.New("trace: declared stream length mismatch")

// WithLen declares the total number of records the stream will deliver,
// making it Sized (warmup fractions need this). The declaration is
// enforced: a source that ends early, or keeps decoding past the declared
// count, stops the stream with an ErrLenMismatch from Err() instead of
// letting a mis-sized warmup boundary slip through. It returns the stream
// for chaining.
func (s *ReaderStream) WithLen(n int) *ReaderStream {
	s.remain, s.declared, s.sized = n, n, true
	return s
}

// Next implements Stream. Once the stream has stopped — end of trace,
// decode error, or length mismatch — it stays stopped: the underlying
// reader is never touched again, so a transient-looking source error
// cannot cause a partial re-read.
func (s *ReaderStream) Next() (Record, bool) {
	if s.done {
		return Record{}, false
	}
	rec, err := s.r.Read()
	if err != nil {
		s.done = true
		if err == io.EOF {
			if s.sized && s.remain > 0 {
				s.err = fmt.Errorf("%w: stream ended %d records short of the declared %d",
					ErrLenMismatch, s.remain, s.declared)
			}
		} else {
			s.err = err
		}
		return Record{}, false
	}
	if s.sized {
		if s.remain == 0 {
			// The source decodes more records than were declared; the
			// extra record is dropped and the stream fails.
			s.done = true
			s.err = fmt.Errorf("%w: source holds more than the declared %d records",
				ErrLenMismatch, s.declared)
			return Record{}, false
		}
		s.remain--
	}
	return rec, true
}

// NextChunk implements Chunker.
func (s *ReaderStream) NextChunk(dst []Record) int {
	for i := range dst {
		rec, ok := s.Next()
		if !ok {
			return i
		}
		dst[i] = rec
	}
	return len(dst)
}

// Err implements Stream: the first decode error, or nil on clean EOF.
func (s *ReaderStream) Err() error { return s.err }

// Len implements Sized: records remaining when declared via WithLen, else -1.
func (s *ReaderStream) Len() int {
	if !s.sized {
		return -1
	}
	return s.remain
}

// RecordCount returns the number of records in a binary trace file of the
// given size, or -1 when the size cannot be a whole header plus whole
// records (the stream will surface the decode error on read).
func RecordCount(fileSize int64) int {
	if fileSize < headerBytes || (fileSize-headerBytes)%recordBytes != 0 {
		return -1
	}
	return int((fileSize - headerBytes) / recordBytes)
}
