// Package trace defines the memory-trace format used throughout the
// reproduction, mirroring the paper's bus-monitor records (Section 5): each
// entry carries the physical address, the access type (read or write), the
// requesting device ID (CPU, GPU, DSP, ...) and the arrival time in memory
// cycles.
//
// Traces can be streamed through Reader/Writer in a compact binary encoding
// or a human-readable text encoding, or held in memory as a []Record.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/addr"
)

// Device identifies the SoC agent that issued a request. The trace-producing
// phone in the paper has 8 CPUs, a GPU, an NPU, an ISP and a DSP (Table 1).
type Device uint8

// Device IDs. CPU cores occupy 0..7; accelerators follow.
const (
	CPU0 Device = iota
	CPU1
	CPU2
	CPU3
	CPU4
	CPU5
	CPU6
	CPU7
	GPU
	NPU
	ISP
	DSP
	numDevices
)

var deviceNames = [numDevices]string{
	"cpu0", "cpu1", "cpu2", "cpu3", "cpu4", "cpu5", "cpu6", "cpu7",
	"gpu", "npu", "isp", "dsp",
}

// String returns the lower-case device mnemonic.
func (d Device) String() string {
	if int(d) < len(deviceNames) {
		return deviceNames[d]
	}
	return fmt.Sprintf("dev%d", uint8(d))
}

// ParseDevice is the inverse of String.
func ParseDevice(s string) (Device, error) {
	for i, n := range deviceNames {
		if n == s {
			return Device(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown device %q", s)
}

// IsCPU reports whether the device is one of the CPU cores.
func (d Device) IsCPU() bool { return d <= CPU7 }

// Record is one memory access observed on the memory bus.
type Record struct {
	Addr   addr.Addr // physical byte address (block aligned by convention)
	Cycle  uint64    // arrival time in memory-controller cycles
	Device Device    // requesting agent
	Write  bool      // true for a write, false for a read
}

// Block returns the accessed block number.
func (r Record) Block() addr.BlockNum { return r.Addr.Block() }

// Page returns the accessed page number.
func (r Record) Page() addr.PageNum { return r.Addr.Page() }

// String renders the record in the text-trace line format.
func (r Record) String() string {
	op := "R"
	if r.Write {
		op = "W"
	}
	return fmt.Sprintf("%d %s %#x %s", r.Cycle, op, uint64(r.Addr), r.Device)
}

// Trace is an in-memory trace.
type Trace []Record

// Sort orders the trace by arrival cycle (stable, preserving issue order of
// simultaneous requests).
func (t Trace) Sort() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].Cycle < t[j].Cycle })
}

// Sorted reports whether arrival cycles are non-decreasing.
func (t Trace) Sorted() bool {
	for i := 1; i < len(t); i++ {
		if t[i].Cycle < t[i-1].Cycle {
			return false
		}
	}
	return true
}

// Merge interleaves two cycle-sorted traces into one cycle-sorted trace.
func Merge(a, b Trace) Trace {
	out := make(Trace, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Cycle <= b[j].Cycle {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// binary encoding: little-endian
//   magic "PLTR" | version u8 | reserved [3]u8
//   per record: addr u64 | cycle u64 | device u8 | flags u8 (bit0 = write)

var magic = [4]byte{'P', 'L', 'T', 'R'}

const (
	binVersion  = 1
	headerBytes = 8  // magic + version + reserved
	recordBytes = 18 // addr + cycle + device + flags
)

// Writer streams records in the binary encoding.
type Writer struct {
	w     *bufio.Writer
	wrote bool
	buf   [recordBytes]byte
}

// NewWriter creates a binary trace writer on w. The header is emitted lazily
// before the first record (or by Flush on an empty trace).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	if _, err := w.w.Write(magic[:]); err != nil {
		return err
	}
	_, err := w.w.Write([]byte{binVersion, 0, 0, 0})
	return err
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if err := w.header(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(w.buf[0:8], uint64(r.Addr))
	binary.LittleEndian.PutUint64(w.buf[8:16], r.Cycle)
	w.buf[16] = uint8(r.Device)
	var flags uint8
	if r.Write {
		flags = 1
	}
	w.buf[17] = flags
	_, err := w.w.Write(w.buf[:])
	return err
}

// Flush writes any buffered data (and the header, if no record was written).
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader streams records from the binary encoding.
type Reader struct {
	r      *bufio.Reader
	header bool
	buf    [recordBytes]byte
}

// NewReader creates a binary trace reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ErrBadMagic reports that the stream is not a binary Planaria trace.
var ErrBadMagic = errors.New("trace: bad magic (not a Planaria binary trace)")

func (r *Reader) readHeader() error {
	if r.header {
		return nil
	}
	var h [8]byte
	if _, err := io.ReadFull(r.r, h[:]); err != nil {
		return err
	}
	if [4]byte{h[0], h[1], h[2], h[3]} != magic {
		return ErrBadMagic
	}
	if h[4] != binVersion {
		return fmt.Errorf("trace: unsupported version %d", h[4])
	}
	r.header = true
	return nil
}

// Read returns the next record, or io.EOF at end of trace.
func (r *Reader) Read() (Record, error) {
	if err := r.readHeader(); err != nil {
		return Record{}, err
	}
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Record{}, err
	}
	return Record{
		Addr:   addr.Addr(binary.LittleEndian.Uint64(r.buf[0:8])),
		Cycle:  binary.LittleEndian.Uint64(r.buf[8:16]),
		Device: Device(r.buf[16]),
		Write:  r.buf[17]&1 != 0,
	}, nil
}

// ReadAll drains the reader into memory.
func (r *Reader) ReadAll() (Trace, error) {
	var t Trace
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return t, err
		}
		t = append(t, rec)
	}
}

// WriteAll writes a whole trace and flushes.
func WriteAll(w io.Writer, t Trace) error {
	tw := NewWriter(w)
	for _, r := range t {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadAllFrom reads a whole binary trace from r.
func ReadAllFrom(r io.Reader) (Trace, error) {
	return NewReader(r).ReadAll()
}

// Text encoding: one record per line, "<cycle> <R|W> <hex addr> <device>".
// Lines starting with '#' and blank lines are ignored.

// WriteText writes the trace in the text encoding.
func WriteText(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# cycle op addr device"); err != nil {
		return err
	}
	for _, r := range t {
		if _, err := fmt.Fprintln(bw, r.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text encoding.
func ReadText(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 4 {
			return t, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(fields))
		}
		var rec Record
		cyc, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return t, fmt.Errorf("trace: line %d: bad cycle %q", line, fields[0])
		}
		rec.Cycle = cyc
		switch fields[1] {
		case "R", "r":
			rec.Write = false
		case "W", "w":
			rec.Write = true
		default:
			return t, fmt.Errorf("trace: line %d: bad op %q", line, fields[1])
		}
		a, err := strconv.ParseUint(fields[2], 0, 64)
		if err != nil {
			return t, fmt.Errorf("trace: line %d: bad address %q", line, fields[2])
		}
		rec.Addr = addr.Addr(a)
		dev, err := ParseDevice(fields[3])
		if err != nil {
			return t, fmt.Errorf("trace: line %d: %v", line, err)
		}
		rec.Device = dev
		t = append(t, rec)
	}
	return t, sc.Err()
}
