package trace

import "repro/internal/addr"

// FilterDevice returns the sub-trace issued by device d, preserving order.
func (t Trace) FilterDevice(d Device) Trace {
	var out Trace
	for _, r := range t {
		if r.Device == d {
			out = append(out, r)
		}
	}
	return out
}

// FilterPages returns the sub-trace touching pages for which keep returns
// true, preserving order.
func (t Trace) FilterPages(keep func(addr.PageNum) bool) Trace {
	var out Trace
	for _, r := range t {
		if keep(r.Page()) {
			out = append(out, r)
		}
	}
	return out
}

// Window returns the records with from ≤ Cycle < to. The trace must be
// cycle-sorted (binary search on both boundaries).
func (t Trace) Window(from, to uint64) Trace {
	lo := searchCycle(t, from)
	hi := searchCycle(t, to)
	return t[lo:hi]
}

// searchCycle returns the first index with Cycle >= c.
func searchCycle(t Trace, c uint64) int {
	lo, hi := 0, len(t)
	for lo < hi {
		mid := (lo + hi) / 2
		if t[mid].Cycle < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SplitChannels partitions the trace into the four per-channel streams the
// memory-side hardware sees, preserving order within each channel.
func (t Trace) SplitChannels() [addr.Channels]Trace {
	var out [addr.Channels]Trace
	for _, r := range t {
		ch := r.Block().Channel()
		out[ch] = append(out[ch], r)
	}
	return out
}

// Concat appends b after a on the time axis: b's cycles are shifted so its
// first record lands gap cycles after a's last. Used to build multi-phase
// traces from independently generated segments.
func Concat(a, b Trace, gap uint64) Trace {
	out := make(Trace, 0, len(a)+len(b))
	out = append(out, a...)
	if len(b) == 0 {
		return out
	}
	shift := gap
	if len(a) > 0 {
		shift += a[len(a)-1].Cycle
	}
	base := b[0].Cycle
	for _, r := range b {
		r.Cycle = r.Cycle - base + shift
		out = append(out, r)
	}
	return out
}

// ReadShare returns the fraction of read records.
func (t Trace) ReadShare() float64 {
	if len(t) == 0 {
		return 0
	}
	reads := 0
	for _, r := range t {
		if !r.Write {
			reads++
		}
	}
	return float64(reads) / float64(len(t))
}
