//go:build !unix

package trace

import (
	"errors"
	"os"
)

// errNoMmap makes OpenMapped fall back to the buffered Reader on platforms
// without a usable mmap syscall.
var errNoMmap = errors.New("trace: memory mapping not supported on this platform")

func mapFile(*os.File, int) ([]byte, error) { return nil, errNoMmap }

func unmapFile([]byte) {}
