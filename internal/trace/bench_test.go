package trace

import "testing"

// benchSink keeps the decoded records observable so the compiler cannot
// elide the decode loop.
var benchSink Record

// BenchmarkMappedBatchDecode measures the batch decode path behind
// MappedStream.NextChunk: one engine chunk (ChunkSize records) decoded per
// op straight from an in-memory record region, exactly the shape NextChunk
// sees over the mmap (the mapping is just bytes — the kernel page cache is
// not part of what this measures). Must stay allocation-free (pinned in
// BENCH_baseline.json); SetBytes makes the MB/s column the decode rate.
func BenchmarkMappedBatchDecode(b *testing.B) {
	const n = ChunkSize
	src := make([]byte, n*recordBytes)
	for i := range src {
		src[i] = byte(i * 2654435761)
	}
	dst := make([]Record, n)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := MappedStream{recs: src, n: n}
		if got := s.NextChunk(dst); got != n {
			b.Fatalf("NextChunk = %d records, want %d", got, n)
		}
	}
	benchSink = dst[n-1]
}
