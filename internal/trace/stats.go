package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/addr"
)

// Stats summarises a trace: volume, read/write mix, device mix, page
// footprint and arrival-rate figures. It is what `cmd/tracegen -stats` and
// the workload calibration tests inspect.
type Stats struct {
	Records     int
	Reads       int
	Writes      int
	FirstCycle  uint64
	LastCycle   uint64
	Pages       int            // distinct pages touched
	Blocks      int            // distinct blocks touched
	PerDevice   map[Device]int // record count per device
	MeanGap     float64        // mean inter-arrival gap in cycles
	BlocksPage  float64        // mean distinct blocks touched per page
	ChannelLoad [addr.Channels]int
}

// Analyze computes Stats over t.
func Analyze(t Trace) Stats {
	s := Stats{PerDevice: make(map[Device]int)}
	if len(t) == 0 {
		return s
	}
	s.Records = len(t)
	s.FirstCycle = t[0].Cycle
	s.LastCycle = t[0].Cycle
	pages := make(map[addr.PageNum]map[int]struct{})
	for _, r := range t {
		if r.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		if r.Cycle < s.FirstCycle {
			s.FirstCycle = r.Cycle
		}
		if r.Cycle > s.LastCycle {
			s.LastCycle = r.Cycle
		}
		s.PerDevice[r.Device]++
		p := r.Page()
		m := pages[p]
		if m == nil {
			m = make(map[int]struct{})
			pages[p] = m
		}
		m[r.Addr.Offset()] = struct{}{}
		s.ChannelLoad[r.Block().Channel()]++
	}
	s.Pages = len(pages)
	for _, m := range pages {
		s.Blocks += len(m)
	}
	if s.Pages > 0 {
		s.BlocksPage = float64(s.Blocks) / float64(s.Pages)
	}
	if s.Records > 1 && s.LastCycle > s.FirstCycle {
		s.MeanGap = float64(s.LastCycle-s.FirstCycle) / float64(s.Records-1)
	}
	return s
}

// String renders a multi-line human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records: %d (%.1f%% reads)\n", s.Records, pct(s.Reads, s.Records))
	fmt.Fprintf(&b, "cycles: %d .. %d (mean gap %.1f)\n", s.FirstCycle, s.LastCycle, s.MeanGap)
	fmt.Fprintf(&b, "pages: %d, distinct blocks: %d (%.1f blocks/page)\n", s.Pages, s.Blocks, s.BlocksPage)
	fmt.Fprintf(&b, "channel load:")
	for ch, n := range s.ChannelLoad {
		fmt.Fprintf(&b, " ch%d=%.1f%%", ch, pct(n, s.Records))
	}
	b.WriteByte('\n')
	devs := make([]Device, 0, len(s.PerDevice))
	for d := range s.PerDevice {
		devs = append(devs, d)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	fmt.Fprintf(&b, "devices:")
	for _, d := range devs {
		fmt.Fprintf(&b, " %s=%.1f%%", d, pct(s.PerDevice[d], s.Records))
	}
	b.WriteByte('\n')
	return b.String()
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
