package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func filterFixture() Trace {
	return Trace{
		{Addr: 0x1000, Cycle: 10, Device: CPU0},
		{Addr: 0x1400, Cycle: 20, Device: GPU, Write: true},
		{Addr: 0x2000, Cycle: 30, Device: CPU0},
		{Addr: 0x2800, Cycle: 40, Device: DSP},
		{Addr: 0x3c00, Cycle: 50, Device: GPU},
	}
}

func TestFilterDevice(t *testing.T) {
	got := filterFixture().FilterDevice(GPU)
	if len(got) != 2 || got[0].Cycle != 20 || got[1].Cycle != 50 {
		t.Fatalf("FilterDevice = %v", got)
	}
	if got := filterFixture().FilterDevice(NPU); len(got) != 0 {
		t.Fatalf("absent device returned %v", got)
	}
}

func TestFilterPages(t *testing.T) {
	got := filterFixture().FilterPages(func(p addr.PageNum) bool { return p == 2 })
	if len(got) != 2 {
		t.Fatalf("FilterPages = %v", got)
	}
	for _, r := range got {
		if r.Page() != 2 {
			t.Fatalf("wrong page %v", r.Page())
		}
	}
}

func TestWindow(t *testing.T) {
	tr := filterFixture()
	got := tr.Window(20, 50)
	if len(got) != 3 || got[0].Cycle != 20 || got[2].Cycle != 40 {
		t.Fatalf("Window = %v", got)
	}
	if len(tr.Window(0, 10)) != 0 {
		t.Fatal("empty window not empty")
	}
	if len(tr.Window(10, 11)) != 1 {
		t.Fatal("single-record window")
	}
	if got := tr.Window(0, 1<<60); len(got) != len(tr) {
		t.Fatal("full window")
	}
}

func TestWindowProperty(t *testing.T) {
	f := func(cycles []uint16, a, b uint16) bool {
		tr := make(Trace, len(cycles))
		for i, c := range cycles {
			tr[i] = Record{Cycle: uint64(c)}
		}
		tr.Sort()
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		w := tr.Window(lo, hi)
		for _, r := range w {
			if r.Cycle < lo || r.Cycle >= hi {
				return false
			}
		}
		// Count check: every qualifying record is present.
		n := 0
		for _, r := range tr {
			if r.Cycle >= lo && r.Cycle < hi {
				n++
			}
		}
		return n == len(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitChannels(t *testing.T) {
	tr := filterFixture()
	chs := tr.SplitChannels()
	total := 0
	for ch, sub := range chs {
		total += len(sub)
		for _, r := range sub {
			if r.Block().Channel() != ch {
				t.Fatalf("record %v in channel %d stream", r, ch)
			}
		}
		if !sub.Sorted() {
			t.Fatalf("channel %d stream unsorted", ch)
		}
	}
	if total != len(tr) {
		t.Fatalf("split lost records: %d of %d", total, len(tr))
	}
}

func TestConcat(t *testing.T) {
	a := Trace{{Cycle: 10}, {Cycle: 100}}
	b := Trace{{Cycle: 5000}, {Cycle: 5100}}
	got := Concat(a, b, 50)
	if len(got) != 4 || !got.Sorted() {
		t.Fatalf("Concat = %v", got)
	}
	if got[2].Cycle != 150 || got[3].Cycle != 250 {
		t.Fatalf("shifted cycles wrong: %v", got)
	}
	// Degenerate inputs.
	if got := Concat(nil, b, 7); got[0].Cycle != 7 {
		t.Fatalf("empty-a Concat = %v", got)
	}
	if got := Concat(a, nil, 7); len(got) != 2 {
		t.Fatalf("empty-b Concat = %v", got)
	}
}

func TestReadShare(t *testing.T) {
	if got := filterFixture().ReadShare(); got != 0.8 {
		t.Fatalf("ReadShare = %v", got)
	}
	if got := (Trace{}).ReadShare(); got != 0 {
		t.Fatalf("empty ReadShare = %v", got)
	}
}
