package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText exercises the text-trace parser: it must never panic, and
// anything it accepts must round-trip through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("10 R 0x1000 cpu0\n")
	f.Add("# comment\n\n5 W 0x40 gpu\n")
	f.Add("bogus line\n")
	f.Add("10 R 0x1000\n")
	f.Add("99999999999999999999 R 0x0 dsp\n")
	f.Add("1 r 64 isp\n2 w 128 npu\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadText(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("WriteText failed on accepted trace: %v", err)
		}
		tr2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(tr2) != len(tr) {
			t.Fatalf("round trip changed length: %d vs %d", len(tr2), len(tr))
		}
		for i := range tr {
			if tr[i] != tr2[i] {
				t.Fatalf("record %d changed: %v vs %v", i, tr[i], tr2[i])
			}
		}
	})
}

// FuzzReader exercises the record-at-a-time binary decoder directly (the
// streaming pipeline's file producer): on truncated or corrupt input,
// Reader.Read must return an error — never panic, and never spin by
// inventing records the input cannot hold. The corpus seeds a valid header
// plus records and several corruptions of it.
func FuzzReader(f *testing.F) {
	var good bytes.Buffer
	_ = WriteAll(&good, Trace{
		{Addr: 0x1000, Cycle: 5, Device: GPU},
		{Addr: 0x2040, Cycle: 9, Device: CPU3, Write: true},
	})
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:headerBytes])               // header only
	f.Add(good.Bytes()[:headerBytes+recordBytes-3]) // mid-record cut
	f.Add(append([]byte{}, good.Bytes()[1:]...))    // shifted magic
	f.Add([]byte("PLTR\xff\x00\x00\x00"))           // bad version
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		r := NewReader(bytes.NewReader(in))
		// The input can hold at most this many whole records; one slack
		// read allows the final EOF probe.
		max := len(in)/recordBytes + 1
		reads := 0
		for {
			_, err := r.Read()
			if err != nil {
				// io.EOF (clean end) or a decode error — both fine; a
				// panic or an unbounded loop is the failure mode.
				return
			}
			reads++
			if reads > max {
				t.Fatalf("reader produced %d records from %d bytes (spinning?)", reads, len(in))
			}
		}
	})
}

// FuzzReadBinary: the binary reader must never panic on arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	var good bytes.Buffer
	_ = WriteAll(&good, Trace{{Addr: 0x1000, Cycle: 5, Device: GPU}})
	f.Add(good.Bytes())
	f.Add([]byte("PLTR"))
	f.Add([]byte("PLTR\x01\x00\x00\x00short"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := ReadAllFrom(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Accepted traces re-encode cleanly.
		var buf bytes.Buffer
		if err := WriteAll(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
