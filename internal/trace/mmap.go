package trace

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/addr"
)

// MappedTrace is a binary trace file opened for memory-mapped replay: the
// whole file is mapped read-only and records decode straight out of the
// mapping, so replay touches no read buffers, performs no read syscalls
// after open, and shares the page cache across concurrent runs of the same
// trace. On platforms without mmap support (or when mapping fails — e.g. on
// a filesystem that cannot back a shared mapping) OpenMapped degrades to the
// ordinary buffered Reader transparently; Mapped reports which path is live.
type MappedTrace struct {
	f    *os.File
	data []byte // the mapped file; nil in fallback mode
	n    int    // record count
}

// OpenMapped opens a binary trace file for memory-mapped streaming. The
// file must be a regular binary trace (header plus whole records; see
// RecordCount) — unlike the buffered Reader, the mapped reader knows the
// file size up front and rejects a truncated file at open rather than
// mid-replay. Close the returned trace when done; its streams must not be
// used afterwards.
func OpenMapped(path string) (*MappedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	n := RecordCount(fi.Size())
	if n < 0 {
		f.Close()
		return nil, fmt.Errorf("trace: %s: size %d is not a whole trace header plus records", path, fi.Size())
	}
	m := &MappedTrace{f: f, n: n}
	if data, err := mapFile(f, int(fi.Size())); err == nil {
		if [4]byte{data[0], data[1], data[2], data[3]} != magic {
			unmapFile(data)
			f.Close()
			return nil, ErrBadMagic
		}
		if v := data[4]; v != binVersion {
			unmapFile(data)
			f.Close()
			return nil, fmt.Errorf("trace: unsupported version %d", v)
		}
		m.data = data
	}
	// mapFile failure is not fatal: m.data stays nil and Stream serves the
	// file through the buffered Reader instead.
	return m, nil
}

// Mapped reports whether the file is actually memory-mapped (false when the
// platform fallback is serving reads through the buffered Reader).
func (m *MappedTrace) Mapped() bool { return m.data != nil }

// Len returns the number of records in the file.
func (m *MappedTrace) Len() int { return m.n }

// Close unmaps the file and closes it. Streams taken from m must not be
// used after Close.
func (m *MappedTrace) Close() error {
	if m.data != nil {
		unmapFile(m.data)
		m.data = nil
	}
	return m.f.Close()
}

// Stream returns a sized record stream over the file. Each call returns an
// independent cursor positioned at the first record (fallback mode seeks
// the shared file handle, so take only one stream at a time there).
func (m *MappedTrace) Stream() (Stream, error) {
	if m.data != nil {
		return &MappedStream{recs: m.data[headerBytes:], n: m.n}, nil
	}
	if _, err := m.f.Seek(0, 0); err != nil {
		return nil, err
	}
	return NewReader(m.f).Stream().WithLen(m.n), nil
}

// MappedStream decodes records directly from a mapped trace file: NextChunk
// reads the mapping with no intermediate buffer, so a replay's only memory
// traffic is the page-cache pages of the file itself.
type MappedStream struct {
	recs []byte // the record region of the mapping (header stripped)
	pos  int    // records consumed
	n    int    // total records
}

// decodeAt decodes record i of the mapping.
func (s *MappedStream) decodeAt(i int) Record {
	b := s.recs[i*recordBytes : i*recordBytes+recordBytes]
	return Record{
		Addr:   addr.Addr(binary.LittleEndian.Uint64(b[0:8])),
		Cycle:  binary.LittleEndian.Uint64(b[8:16]),
		Device: Device(b[16]),
		Write:  b[17]&1 != 0,
	}
}

// decodeBatch decodes len(dst) records from src into dst. This is the batch
// fast path behind NextChunk: one up-front bounds assertion covers the whole
// batch, and each record is then two word-at-a-time little-endian loads plus
// two byte loads from a constant-size sub-slice — no per-record slice-header
// arithmetic the bounds checker has to re-prove. src must hold at least
// len(dst)*recordBytes bytes.
func decodeBatch(dst []Record, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[len(dst)*recordBytes-1] // one bounds assertion for the batch
	off := 0
	for k := range dst {
		b := src[off : off+recordBytes : off+recordBytes]
		dst[k] = Record{
			Addr:   addr.Addr(binary.LittleEndian.Uint64(b[0:8])),
			Cycle:  binary.LittleEndian.Uint64(b[8:16]),
			Device: Device(b[16]),
			Write:  b[17]&1 != 0,
		}
		off += recordBytes
	}
}

// Next implements Stream.
func (s *MappedStream) Next() (Record, bool) {
	if s.pos >= s.n {
		return Record{}, false
	}
	rec := s.decodeAt(s.pos)
	s.pos++
	return rec, true
}

// NextChunk implements Chunker: a whole engine chunk (trace.ChunkSize
// records when the engine drives it) decodes per call through decodeBatch,
// which is what RunStream's ReadChunk fast path consumes.
func (s *MappedStream) NextChunk(dst []Record) int {
	n := s.n - s.pos
	if n <= 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	decodeBatch(dst[:n], s.recs[s.pos*recordBytes:])
	s.pos += n
	return n
}

// Err implements Stream; a mapped stream cannot fail after open.
func (s *MappedStream) Err() error { return nil }

// Len implements Sized.
func (s *MappedStream) Len() int { return s.n - s.pos }
