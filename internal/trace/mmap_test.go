package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/addr"
)

// writeTempFile writes raw bytes to a file under the test's temp dir.
func writeTempFile(t *testing.T, raw []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeTempTrace encodes tr and writes it under the test's temp dir.
func writeTempTrace(t *testing.T, tr Trace) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return writeTempFile(t, buf.Bytes())
}

func randomTrace(n int, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := make(Trace, n)
	cycle := uint64(0)
	for i := range tr {
		cycle += uint64(rng.Intn(50))
		tr[i] = Record{
			Addr:   addr.Addr(rng.Uint64() &^ uint64(addr.BlockBytes-1)),
			Cycle:  cycle,
			Device: Device(rng.Intn(int(numDevices))),
			Write:  rng.Intn(4) == 0,
		}
	}
	return tr
}

func TestOpenMappedRoundTrip(t *testing.T) {
	want := randomTrace(3000, 7)
	m, err := OpenMapped(writeTempTrace(t, want))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(want))
	}
	// Both replay paths — record-at-a-time and chunked — must reproduce
	// the trace exactly, and a second Stream must start from the top.
	for pass := 0; pass < 2; pass++ {
		s, err := m.Stream()
		if err != nil {
			t.Fatal(err)
		}
		if got := StreamLen(s); got != len(want) {
			t.Fatalf("pass %d: StreamLen = %d, want %d", pass, got, len(want))
		}
		var got Trace
		if pass == 0 {
			for {
				rec, ok := s.Next()
				if !ok {
					break
				}
				got = append(got, rec)
			}
		} else {
			buf := make([]Record, 100) // deliberately not a divisor-friendly size
			for {
				n := ReadChunk(s, buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
		}
		if err := s.Err(); err != nil {
			t.Fatalf("pass %d: stream error: %v", pass, err)
		}
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d records, want %d", pass, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pass %d: record %d = %+v, want %+v", pass, i, got[i], want[i])
			}
		}
	}
}

func TestOpenMappedEmptyTrace(t *testing.T) {
	m, err := OpenMapped(writeTempTrace(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
	s, err := m.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("record from an empty trace")
	}
}

func TestOpenMappedRejectsCorruptFiles(t *testing.T) {
	var good bytes.Buffer
	if err := WriteAll(&good, randomTrace(3, 1)); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       good.Bytes()[:headerBytes-2],
		"mid-record":  good.Bytes()[:headerBytes+recordBytes+5],
		"bad magic":   append([]byte("XXXX"), good.Bytes()[4:]...),
		"bad version": append([]byte("PLTR\x63\x00\x00\x00"), good.Bytes()[headerBytes:]...),
	}
	for name, raw := range cases {
		if m, err := OpenMapped(writeTempFile(t, raw)); err == nil {
			m.Close()
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("missing file: accepted")
	}
}

// TestMappedMatchesReader pins decode parity between the mapped stream and
// the copying Reader on the same bytes.
func TestMappedMatchesReader(t *testing.T) {
	tr := randomTrace(500, 42)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	viaReader, err := ReadAllFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(writeTempFile(t, buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.Stream()
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaReader {
		rec, ok := s.Next()
		if !ok {
			t.Fatalf("mapped stream ended at %d of %d", i, len(viaReader))
		}
		if rec != viaReader[i] {
			t.Fatalf("record %d: mapped %+v, reader %+v", i, rec, viaReader[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("mapped stream is longer than the reader's")
	}
}

// FuzzMappedParity feeds arbitrary bytes to both decoders through a file:
// whenever OpenMapped accepts the file, its records must equal what the
// copying Reader decodes from the same bytes; whenever it rejects, the
// buffered path must not decode the whole input cleanly either (OpenMapped
// only pre-checks what the Reader would fault on mid-stream).
func FuzzMappedParity(f *testing.F) {
	var good bytes.Buffer
	_ = WriteAll(&good, Trace{
		{Addr: 0x1000, Cycle: 5, Device: GPU},
		{Addr: 0x2040, Cycle: 9, Device: CPU3, Write: true},
	})
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:headerBytes])
	f.Add(good.Bytes()[:headerBytes+recordBytes-3])
	f.Add([]byte("PLTR\xff\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.bin")
		if err := os.WriteFile(path, in, 0o644); err != nil {
			t.Skip() // filesystem hiccup, not a decoder property
		}
		viaReader, readerErr := ReadAllFrom(bytes.NewReader(in))
		m, err := OpenMapped(path)
		if err != nil {
			if readerErr == nil && len(in) >= headerBytes {
				t.Fatalf("OpenMapped rejected (%v) what the reader decodes cleanly", err)
			}
			return
		}
		defer m.Close()
		if readerErr != nil {
			t.Fatalf("OpenMapped accepted what the reader rejects: %v", readerErr)
		}
		s, err := m.Stream()
		if err != nil {
			t.Fatal(err)
		}
		var got Trace
		buf := make([]Record, 7)
		for {
			n := ReadChunk(s, buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if s.Err() != nil {
			t.Fatalf("mapped stream failed on accepted file: %v", s.Err())
		}
		if len(got) != len(viaReader) {
			t.Fatalf("mapped %d records, reader %d", len(got), len(viaReader))
		}
		for i := range got {
			if got[i] != viaReader[i] {
				t.Fatalf("record %d: mapped %+v, reader %+v", i, got[i], viaReader[i])
			}
		}
	})
}
