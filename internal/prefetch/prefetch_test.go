package prefetch

import (
	"testing"

	"repro/internal/addr"
)

func TestNoneBaseline(t *testing.T) {
	var p None
	if p.Name() != "none" || p.StorageBits() != 0 {
		t.Fatal("None metadata wrong")
	}
	p.Train(Access{})
	if got := p.Issue(Access{Miss: true}); got != nil {
		t.Fatalf("None issued %v", got)
	}
	p.Reset()
}

func TestQueuePushPop(t *testing.T) {
	q := NewQueue(2)
	b1, b2, b3 := addr.BlockNum(1), addr.BlockNum(2), addr.BlockNum(3)
	if !q.Push(b1, false) || !q.Push(b2, false) {
		t.Fatal("pushes into empty queue failed")
	}
	if q.Push(b3, false) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d", q.Stats().Dropped)
	}
	got, ok := q.Pop()
	if !ok || got != b1 {
		t.Fatalf("Pop = %v, %v", got, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQueueFiltersResident(t *testing.T) {
	q := NewQueue(4)
	if q.Push(addr.BlockNum(9), true) {
		t.Fatal("resident block queued")
	}
	s := q.Stats()
	if s.Filtered != 1 || s.Issued != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestQueueDedupInFlight(t *testing.T) {
	q := NewQueue(4)
	b := addr.BlockNum(5)
	if !q.Push(b, false) {
		t.Fatal("first push failed")
	}
	if q.Push(b, false) {
		t.Fatal("duplicate queued")
	}
	// Still in flight after Pop (outstanding at DRAM).
	q.Pop()
	if q.Push(b, false) {
		t.Fatal("outstanding duplicate queued")
	}
	if !q.InFlight(b) {
		t.Fatal("InFlight lost the block")
	}
	// After completion the block may be prefetched again.
	q.Complete(b)
	if !q.Push(b, false) {
		t.Fatal("push after Complete failed")
	}
}

func TestQueueDefaultCapacity(t *testing.T) {
	q := NewQueue(0)
	n := 0
	for i := 0; q.Push(addr.BlockNum(i), false); i++ {
		n++
	}
	if n != 32 {
		t.Fatalf("default capacity = %d, want 32", n)
	}
}

func TestQueuePopEmpty(t *testing.T) {
	q := NewQueue(1)
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
}

func TestNextLine(t *testing.T) {
	p := NewNextLine(2)
	page := addr.PageNum(10)
	a := Access{Block: page.Block(addr.OffsetOf(1, 3)), Miss: true}
	got := p.Issue(a)
	if len(got) != 2 {
		t.Fatalf("Issue returned %v", got)
	}
	if got[0] != page.Block(addr.OffsetOf(1, 4)) || got[1] != page.Block(addr.OffsetOf(1, 5)) {
		t.Fatalf("wrong targets %v", got)
	}
	// Targets stay on the same channel.
	for _, b := range got {
		if b.Channel() != 1 {
			t.Fatalf("target %v crossed channel", b)
		}
	}
	// No issue on hits.
	if p.Issue(Access{Block: a.Block, Miss: false}) != nil {
		t.Fatal("issued on hit")
	}
	// Clipped at segment end.
	edge := Access{Block: page.Block(addr.OffsetOf(1, 15)), Miss: true}
	if got := p.Issue(edge); len(got) != 0 {
		t.Fatalf("segment-edge issue %v", got)
	}
}

func TestNextLineDegreeClamp(t *testing.T) {
	if NewNextLine(0).Degree != 1 {
		t.Fatal("degree not clamped")
	}
}

func TestStrideLearnsAndIssues(t *testing.T) {
	p := NewStride(64, 2)
	page := addr.PageNum(42)
	// Stride of 2 within channel 0: offsets 0,2,4,6 confirm the stride.
	var last Access
	for _, off := range []int{0, 2, 4, 6} {
		last = Access{Block: page.Block(addr.OffsetOf(0, off)), Miss: true}
		p.Train(last)
	}
	got := p.Issue(last)
	if len(got) != 2 {
		t.Fatalf("Issue = %v, want 2 targets", got)
	}
	if got[0] != page.Block(addr.OffsetOf(0, 8)) || got[1] != page.Block(addr.OffsetOf(0, 10)) {
		t.Fatalf("targets %v", got)
	}
}

func TestStrideNoIssueWithoutConfidence(t *testing.T) {
	p := NewStride(64, 2)
	page := addr.PageNum(42)
	// Irregular deltas never build confidence.
	for _, off := range []int{0, 5, 1, 9, 2} {
		a := Access{Block: page.Block(addr.OffsetOf(0, off)), Miss: true}
		p.Train(a)
		if got := p.Issue(a); got != nil {
			t.Fatalf("issued %v on irregular pattern", got)
		}
	}
}

func TestStrideReset(t *testing.T) {
	p := NewStride(64, 2)
	page := addr.PageNum(42)
	var last Access
	for _, off := range []int{0, 2, 4, 6} {
		last = Access{Block: page.Block(addr.OffsetOf(0, off)), Miss: true}
		p.Train(last)
	}
	p.Reset()
	if got := p.Issue(last); got != nil {
		t.Fatalf("issued %v after Reset", got)
	}
}

func TestStrideStorage(t *testing.T) {
	if NewStride(64, 2).StorageBits() <= 0 {
		t.Fatal("stride storage must be positive")
	}
}
