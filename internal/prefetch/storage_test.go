package prefetch

import (
	"testing"

	"repro/internal/addr"
)

// TestStorageBitsHonesty pins every component's storage accounting against
// an independently computed budget from its table geometry, so a table that
// grows without its StorageBits following (or vice versa) fails loudly. The
// formulas mirror docs/PREFETCHERS.md.
func TestStorageBitsHonesty(t *testing.T) {
	markovDefault := DefaultMarkovConfig()
	accelDefault := DefaultAccelConfig()
	cases := []struct {
		name  string
		build func() Prefetcher
		want  int
	}{
		{
			name:  "nextline",
			build: func() Prefetcher { return NewNextLine(2) },
			want:  0, // stateless
		},
		{
			name:  "stride/64",
			build: func() Prefetcher { return NewStride(64, 2) },
			// 64 entries × (36 page tag + 4 offset + 5 stride + 2 conf + 1 valid)
			want: 64 * (36 + 4 + 5 + 2 + 1),
		},
		{
			name:  "markov/default",
			build: func() Prefetcher { return NewMarkov(markovDefault) },
			// trackers × (36 tag + 4 offset + 10 sig + 2 primed + 1 valid)
			// + patterns × ((10−10) sig tag + 5 delta + 2 conf + 1 valid)
			want: 128*(36+4+10+2+1) + 1024*(0+5+2+1),
		},
		{
			name:  "markov/small",
			build: func() Prefetcher { return NewMarkov(MarkovConfig{Trackers: 32, Patterns: 256}) },
			want:  32*(36+4+10+2+1) + 256*((10-8)+5+2+1),
		},
		{
			name:  "accel/default",
			build: func() Prefetcher { return NewAccel(accelDefault) },
			// entries × (36 tag + 4 offset + 5 delta + 6 accel + 2 conf + 1 primed + 1 valid)
			want: 128 * (36 + 4 + 5 + 6 + 2 + 1 + 1),
		},
		{
			name: "tournament/solo-stride",
			build: func() Prefetcher {
				return NewTournament(TournamentConfig{FilterEntries: 512}, NewStride(64, 2))
			},
			// component + meta (regions × n × 3-bit trust + n × 10-bit psel)
			// + n × filter entries × ((42−9) block tag + valid + consumed)
			want: 64*(36+4+5+2+1) + (256*1*3 + 1*10) + 1*512*((42-9)+2),
		},
		{
			name: "tournament/three-way",
			build: func() Prefetcher {
				return NewTournament(TournamentConfig{FilterEntries: 256},
					NewStride(64, 2), NewMarkov(markovDefault), NewAccel(accelDefault))
			},
			want: 64*(36+4+5+2+1) +
				128*(36+4+10+2+1) + 1024*(0+5+2+1) +
				128*(36+4+5+6+2+1+1) +
				(256*3*3 + 3*10) +
				3*256*((42-8)+2),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			if got := p.StorageBits(); got != tc.want {
				t.Errorf("StorageBits = %d, want %d", got, tc.want)
			}
			// The budget is hardware: it must not drift as the tables fill.
			before := p.StorageBits()
			for i := 0; i < 500; i++ {
				page := addr.PageNum(i % 37)
				a := Access{Block: page.Block(addr.OffsetOf(0, i%16)), Cycle: uint64(i), Miss: i%3 == 0}
				p.Train(a)
				p.Issue(a)
			}
			if after := p.StorageBits(); after != before {
				t.Errorf("StorageBits drifted under load: %d -> %d", before, after)
			}
			p.Reset()
			if after := p.StorageBits(); after != before {
				t.Errorf("StorageBits changed across Reset: %d -> %d", before, after)
			}
		})
	}
}

// TestMetaStorageBits pins the selector's own budget formula.
func TestMetaStorageBits(t *testing.T) {
	m := NewMeta(4, MetaConfig{})
	// 256 regions × 4 components × 3-bit trust + 4 × (8+1+1)-bit psel.
	if want := 256*4*3 + 4*10; m.StorageBits() != want {
		t.Errorf("Meta.StorageBits = %d, want %d", m.StorageBits(), want)
	}
}
