package prefetch

import "repro/internal/addr"

// NextLine prefetches the next Degree blocks after every demand miss. It is
// the classic sequential baseline; at the system-cache level its accuracy is
// poor because the higher-level caches have already absorbed most sequential
// locality.
type NextLine struct {
	Degree int
}

// NewNextLine returns a next-line prefetcher with the given degree (≥1).
func NewNextLine(degree int) *NextLine {
	if degree < 1 {
		degree = 1
	}
	return &NextLine{Degree: degree}
}

// Name implements Prefetcher.
func (p *NextLine) Name() string { return "nextline" }

// Train implements Prefetcher (stateless).
func (p *NextLine) Train(Access) {}

// Issue implements Prefetcher: on a miss, the next Degree blocks of the same
// channel segment (the unit this prefetcher instance owns).
func (p *NextLine) Issue(a Access) []addr.BlockNum {
	return p.IssueTo(a, nil)
}

// IssueTo implements BufferedIssuer.
func (p *NextLine) IssueTo(a Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	return p.Peek(a, dst)
}

// Peek implements Component. NextLine is stateless, so Peek and Issue
// predict identically.
func (p *NextLine) Peek(a Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	page := a.Block.Page()
	ch := a.Block.Channel()
	so := a.Block.SegOffset()
	for i := 1; i <= p.Degree; i++ {
		n := so + i
		if n >= addr.SegmentBlocks {
			break
		}
		dst = append(dst, page.Block(addr.OffsetOf(ch, n)))
	}
	return dst
}

// StorageBits implements Prefetcher.
func (p *NextLine) StorageBits() int { return 0 }

// Reset implements Prefetcher.
func (p *NextLine) Reset() {}

// strideEntry tracks one page's last segment offset and stride.
type strideEntry struct {
	page       addr.PageNum
	lastOff    int
	stride     int
	confidence int
	valid      bool
}

// Stride is a PC-free per-page stride prefetcher: it learns a constant
// segment-offset stride per page and prefetches ahead once the stride has
// been confirmed twice. Included as an additional delta-family baseline.
type Stride struct {
	table  []strideEntry
	degree int
}

// NewStride returns a stride prefetcher with the given table size (rounded
// up to a power of two) and prefetch degree.
func NewStride(tableSize, degree int) *Stride {
	if tableSize < 1 {
		tableSize = 64
	}
	n := 1
	for n < tableSize {
		n <<= 1
	}
	if degree < 1 {
		degree = 2
	}
	return &Stride{table: make([]strideEntry, n), degree: degree}
}

// Name implements Prefetcher.
func (p *Stride) Name() string { return "stride" }

func (p *Stride) slot(page addr.PageNum) *strideEntry {
	return &p.table[uint64(page)&uint64(len(p.table)-1)]
}

// Train implements Prefetcher.
func (p *Stride) Train(a Access) {
	e := p.slot(a.Page())
	off := a.Block.SegOffset()
	if !e.valid || e.page != a.Page() {
		*e = strideEntry{page: a.Page(), lastOff: off, valid: true}
		return
	}
	d := off - e.lastOff
	if d == 0 {
		return
	}
	if d == e.stride {
		if e.confidence < 3 {
			e.confidence++
		}
	} else {
		e.stride = d
		e.confidence = 0
	}
	e.lastOff = off
}

// Issue implements Prefetcher.
func (p *Stride) Issue(a Access) []addr.BlockNum {
	return p.IssueTo(a, nil)
}

// IssueTo implements BufferedIssuer: Peek into the caller's buffer (the
// stride table is only read, so Issue and Peek predict identically).
func (p *Stride) IssueTo(a Access, dst []addr.BlockNum) []addr.BlockNum {
	return p.Peek(a, dst)
}

// Peek implements Component: the same prediction as Issue, appended to dst,
// with no state mutation (the stride table is only read).
func (p *Stride) Peek(a Access, dst []addr.BlockNum) []addr.BlockNum {
	e := p.slot(a.Page())
	if !e.valid || e.page != a.Page() || e.confidence < 2 || e.stride == 0 {
		return dst
	}
	page := a.Page()
	ch := a.Block.Channel()
	off := a.Block.SegOffset()
	for i := 1; i <= p.degree; i++ {
		n := off + i*e.stride
		if n < 0 || n >= addr.SegmentBlocks {
			break
		}
		dst = append(dst, page.Block(addr.OffsetOf(ch, n)))
	}
	return dst
}

// StorageBits implements Prefetcher: page tag (36 b) + offset (4 b) +
// stride (5 b) + confidence (2 b) + valid (1 b) per entry.
func (p *Stride) StorageBits() int { return len(p.table) * (36 + 4 + 5 + 2 + 1) }

// Reset implements Prefetcher.
func (p *Stride) Reset() {
	for i := range p.table {
		p.table[i] = strideEntry{}
	}
}
