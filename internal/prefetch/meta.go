package prefetch

import "repro/internal/addr"

// MetaConfig parameterises the tournament's meta-predictor. The zero value
// of any field selects its default (shown in parentheses).
type MetaConfig struct {
	// Regions is the selector-table size — the number of page-region rows
	// of trust counters — rounded up to a power of two (256). Page
	// regions map to rows modulo Regions.
	Regions int
	// RegionShift is log2 of the pages per region (6: 64-page / 256 KB
	// regions, matching the attribution table's bucket granularity).
	RegionShift uint
	// LeaderMod is the set-dueling ratio: of every LeaderMod consecutive
	// region rows, the first one per component is that component's leader
	// (32, the DRRIP ratio used by internal/cache). Leader rows always
	// select their component, so every component keeps producing
	// shadow-scoreable predictions even when out of favour.
	LeaderMod int
	// TrustMax is the saturating ceiling of the per-region trust
	// counters (7: 3-bit counters).
	TrustMax uint8
	// PselMax clamps the global per-component score to ±PselMax
	// (511: 10-bit signed counters, the DRRIP PSEL width).
	PselMax int
}

// DefaultMetaConfig returns the meta-predictor configuration used by the
// built-in planaria-tournament.
func DefaultMetaConfig() MetaConfig {
	return MetaConfig{Regions: 256, RegionShift: 6, LeaderMod: 32, TrustMax: 7, PselMax: 511}
}

// Meta is the tournament's selector: it learns, per page region, which
// component to trust with the issuing slot. The mechanism mirrors DRRIP set
// dueling (the internal/cache template): a fixed 1-in-LeaderMod slice of
// region rows is permanently dedicated to each component (leader regions,
// the exploration path), while follower regions pick the component with the
// highest learned trust — per-region 3-bit counters first, the global
// PSEL-style score as the cold-row tiebreak, and the fixed priority order
// (component 0, the composite) when everything ties.
//
// Meta is driven single-threaded per channel, like every prefetcher.
type Meta struct {
	cfg   MetaConfig
	n     int
	trust [][]uint8 // [region row][component], saturating 0..TrustMax
	psel  []int     // [component], clamped to ±PselMax
}

// NewMeta builds a selector over n components; zero config fields take
// defaults. n must be ≥ 1.
func NewMeta(n int, cfg MetaConfig) *Meta {
	if cfg.Regions <= 0 {
		cfg.Regions = 256
	}
	if cfg.RegionShift == 0 {
		cfg.RegionShift = 6
	}
	if cfg.LeaderMod <= 0 {
		cfg.LeaderMod = 32
	}
	if cfg.LeaderMod < n {
		// Every component needs its own leader slot in the cycle.
		cfg.LeaderMod = n
	}
	if cfg.TrustMax == 0 {
		cfg.TrustMax = 7
	}
	if cfg.PselMax <= 0 {
		cfg.PselMax = 511
	}
	cfg.Regions = ceilPow2(cfg.Regions)
	m := &Meta{cfg: cfg, n: n, psel: make([]int, n)}
	m.trust = make([][]uint8, cfg.Regions)
	rows := make([]uint8, cfg.Regions*n)
	for i := range m.trust {
		m.trust[i], rows = rows[:n], rows[n:]
	}
	return m
}

// Components returns the number of components the selector arbitrates.
func (m *Meta) Components() int { return m.n }

// Region maps a page to its selector row.
func (m *Meta) Region(p addr.PageNum) int {
	return int((uint64(p) >> m.cfg.RegionShift) & uint64(len(m.trust)-1))
}

// Select returns the component that should issue for the region, and
// whether the row is a leader region (forced exploration) rather than a
// learned choice.
func (m *Meta) Select(region int) (comp int, leader bool) {
	if k := region % m.cfg.LeaderMod; k < m.n {
		return k, true
	}
	row := m.trust[region]
	best, bestTrust := 0, row[0]
	for c := 1; c < m.n; c++ {
		if row[c] > bestTrust {
			best, bestTrust = c, row[c]
		}
	}
	if bestTrust == 0 {
		// Cold row: fall back to the global score; ties (including the
		// all-zero start) resolve to component 0 — the fixed priority
		// order, i.e. the paper's SLP-priority rule.
		best = 0
		for c := 1; c < m.n; c++ {
			if m.psel[c] > m.psel[best] {
				best = c
			}
		}
	}
	return best, false
}

// Reward credits component comp in region: its shadow-predicted block was
// demanded while missing, so issuing it there would have covered the miss.
func (m *Meta) Reward(region, comp int) {
	if row := m.trust[region]; row[comp] < m.cfg.TrustMax {
		row[comp]++
	}
	if m.psel[comp] < m.cfg.PselMax {
		m.psel[comp]++
	}
}

// Penalize debits component comp in region: one of its predictions aged out
// of the shadow filter without ever being demanded (a would-be wasted
// prefetch).
func (m *Meta) Penalize(region, comp int) {
	if row := m.trust[region]; row[comp] > 0 {
		row[comp]--
	}
	if m.psel[comp] > -m.cfg.PselMax {
		m.psel[comp]--
	}
}

// Trust returns the region's trust counter for a component (tests and the
// debug endpoint).
func (m *Meta) Trust(region, comp int) uint8 { return m.trust[region][comp] }

// Score returns a component's global (PSEL-style) score.
func (m *Meta) Score(comp int) int { return m.psel[comp] }

// Reset clears all learned selector state.
func (m *Meta) Reset() {
	for _, row := range m.trust {
		for c := range row {
			row[c] = 0
		}
	}
	for c := range m.psel {
		m.psel[c] = 0
	}
}

// StorageBits returns the selector's hardware budget: one 3-bit (log2 of
// TrustMax+1) counter per region row per component, plus one PSEL-style
// counter (log2 of PselMax, plus a sign bit) per component.
func (m *Meta) StorageBits() int {
	trustBits := log2i(int(m.cfg.TrustMax) + 1)
	pselBits := log2i(m.cfg.PselMax) + 1 + 1
	return len(m.trust)*m.n*trustBits + m.n*pselBits
}
