package prefetch

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/events"
)

// fixed is a test component that always predicts the same in-segment offsets
// for any miss in its page set (nil = any page).
type fixed struct {
	name  string
	offs  []int
	mute  bool // predict nothing at all
	train int  // Train call count (checks all-components training)
}

func (f *fixed) Name() string     { return f.name }
func (f *fixed) Train(Access)     { f.train++ }
func (f *fixed) StorageBits() int { return 0 }
func (f *fixed) Reset()           { f.train = 0 }
func (f *fixed) Issue(a Access) []addr.BlockNum {
	return f.Peek(a, nil)
}
func (f *fixed) Peek(a Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss || f.mute {
		return dst
	}
	for _, o := range f.offs {
		dst = append(dst, a.Page().Block(addr.OffsetOf(a.Block.Channel(), o)))
	}
	return dst
}

// captureSink records emitted events for assertions.
type captureSink struct{ evs []events.Event }

func (c *captureSink) Emit(e events.Event) { c.evs = append(c.evs, e) }

func missAt(page addr.PageNum, off int) Access {
	return Access{Block: page.Block(addr.OffsetOf(0, off)), Miss: true}
}

// followerPage returns a page whose meta region is neither component's
// leader (region%LeaderMod >= n).
func followerPage(m *Meta, n int) addr.PageNum {
	for p := addr.PageNum(0); ; p += 64 {
		if r := m.Region(p); r%32 >= n {
			return p
		}
	}
}

func TestTournamentFallbackOrder(t *testing.T) {
	a := &fixed{name: "a", mute: true}
	b := &fixed{name: "b", offs: []int{7}}
	tour := NewTournament(TournamentConfig{}, a, b)
	sink := &captureSink{}
	tour.SetEventSink(sink)

	// Page 0 → region 0 → leader of component 0 (a), which is mute, so the
	// trigger falls through the priority order to b.
	out := tour.Issue(missAt(0, 1))
	if len(out) != 1 || out[0].SegOffset() != 7 {
		t.Fatalf("Issue = %v, want the fallback component's offset 7", out)
	}
	if tour.Origin() != "b" {
		t.Fatalf("Origin = %q, want b", tour.Origin())
	}
	if got := tour.IssuesByComponent(); got["a"] != 0 || got["b"] != 1 {
		t.Fatalf("IssuesByComponent = %v", got)
	}
	if len(sink.evs) != 1 || sink.evs[0].Kind != events.KindArbitration {
		t.Fatalf("events = %v, want one arbitration", sink.evs)
	}
	if sink.evs[0].Reason != events.ReasonMetaFallback {
		t.Fatalf("reason = %v, want meta-fallback", sink.evs[0].Reason)
	}

	// No issue at all on a hit.
	if out := tour.Issue(Access{Block: addr.PageNum(0).Block(addr.OffsetOf(0, 1))}); out != nil {
		t.Fatalf("issued %v on a hit", out)
	}
}

func TestTournamentLeaderRegionReason(t *testing.T) {
	a := &fixed{name: "a", offs: []int{3}}
	b := &fixed{name: "b", offs: []int{9}}
	tour := NewTournament(TournamentConfig{}, a, b)
	sink := &captureSink{}
	tour.SetEventSink(sink)

	// Page 64 → region 1 → leader of component 1 (b): b issues even though
	// a, the priority component, also has a prediction.
	out := tour.Issue(missAt(64, 0))
	if len(out) != 1 || out[0].SegOffset() != 9 {
		t.Fatalf("Issue = %v, want the leader component's offset 9", out)
	}
	if tour.Origin() != "b" {
		t.Fatalf("Origin = %q, want b", tour.Origin())
	}
	if sink.evs[len(sink.evs)-1].Reason != events.ReasonLeaderRegion {
		t.Fatalf("reason = %v, want leader-region", sink.evs[len(sink.evs)-1].Reason)
	}
}

// TestTournamentShadowFeedback closes the learning loop: a component whose
// shadow predictions keep getting demanded earns region trust, flips the
// follower-region selection its way (reason meta-trust), and the reverse
// penalty path drains the trust again.
func TestTournamentShadowFeedback(t *testing.T) {
	a := &fixed{name: "a", mute: true}
	b := &fixed{name: "b", offs: []int{5}}
	tour := NewTournament(TournamentConfig{}, a, b)
	sink := &captureSink{}
	tour.SetEventSink(sink)

	page := followerPage(tour.Meta(), 2)
	region := tour.Meta().Region(page)

	// Each miss on offset 0 makes b shadow-predict offset 5; the following
	// miss ON offset 5 consumes the prediction and rewards b.
	for i := 0; i < 3; i++ {
		av := missAt(page, 0)
		tour.Train(av)
		tour.Issue(av)
		hit := missAt(page, 5)
		tour.Train(hit)
		tour.Issue(hit)
	}
	if got := tour.Meta().Trust(region, 1); got == 0 {
		t.Fatal("rewarded component earned no region trust")
	}
	sel, leader := tour.Meta().Select(region)
	if sel != 1 || leader {
		t.Fatalf("Select = (%d, %v), want component 1 by trust", sel, leader)
	}
	out := tour.Issue(missAt(page, 0))
	if len(out) != 1 || tour.Origin() != "b" {
		t.Fatalf("trusted component did not issue: out=%v origin=%q", out, tour.Origin())
	}
	if last := sink.evs[len(sink.evs)-1]; last.Reason != events.ReasonMetaTrust {
		t.Fatalf("reason = %v, want meta-trust", last.Reason)
	}

	// Both components trained on every access throughout.
	if a.train == 0 || a.train != b.train {
		t.Fatalf("training not parallel: a=%d b=%d", a.train, b.train)
	}
}

// TestTournamentShadowPenalty: predictions that age out of the shadow filter
// unconsumed drain trust. A tiny filter forces evictions quickly.
func TestTournamentShadowPenalty(t *testing.T) {
	b := &fixed{name: "b", offs: []int{5}}
	tour := NewTournament(TournamentConfig{FilterEntries: 1}, &fixed{name: "a", mute: true}, b)
	page := followerPage(tour.Meta(), 2)
	region := tour.Meta().Region(page)

	// Seed some trust first.
	for i := 0; i < 2; i++ {
		tour.Train(missAt(page, 0))
		tour.Issue(missAt(page, 0))
		tour.Train(missAt(page, 5))
		tour.Issue(missAt(page, 5))
	}
	trust := tour.Meta().Trust(region, 1)
	if trust == 0 {
		t.Fatal("setup failed: no trust earned")
	}
	// Misses on other pages map to the same single filter slot; b's never
	// demanded predictions for them keep evicting each other unconsumed.
	for i := 1; i <= 8; i++ {
		other := page + addr.PageNum(i)
		tour.Train(missAt(other, 0))
		tour.Issue(missAt(other, 0))
	}
	if after := tour.Meta().Trust(region, 1); after >= trust {
		// The penalties land in the evicted blocks' regions; with single-slot
		// filters the page+1.. regions alias around, so at minimum the global
		// score must have been debited.
		if tour.Meta().Score(1) >= 0 {
			t.Fatalf("no penalty recorded anywhere: trust %d -> %d, score %d",
				trust, after, tour.Meta().Score(1))
		}
	}
}

func TestTournamentResetClearsEverything(t *testing.T) {
	b := &fixed{name: "b", offs: []int{5}}
	tour := NewTournament(TournamentConfig{}, &fixed{name: "a", mute: true}, b)
	for i := 0; i < 4; i++ {
		tour.Train(missAt(0, 0))
		tour.Issue(missAt(0, 0))
		tour.Train(missAt(0, 5))
	}
	tour.Reset()
	if tour.Origin() != "" {
		t.Fatal("Origin survived Reset")
	}
	for name, n := range tour.IssuesByComponent() {
		if n != 0 {
			t.Fatalf("issue counter %q=%d survived Reset", name, n)
		}
	}
	if b.train != 0 {
		t.Fatal("component Reset not propagated")
	}
	for c := 0; c < 2; c++ {
		if tour.Meta().Score(c) != 0 {
			t.Fatal("meta scores survived Reset")
		}
	}
}

// TestTournamentPeekPure: Peek must not disturb any state — issuing after a
// Peek gives exactly what issuing without it would have.
func TestTournamentPeekPure(t *testing.T) {
	build := func() *Tournament {
		return NewTournament(TournamentConfig{},
			&fixed{name: "a", mute: true}, &fixed{name: "b", offs: []int{5, 6}})
	}
	a, b := build(), build()
	acc := missAt(0, 1)
	for i := 0; i < 3; i++ {
		b.Peek(acc, nil) // extra peeks on b only
	}
	ja, jb := a.Issue(acc), b.Issue(acc)
	if len(ja) != len(jb) {
		t.Fatalf("Peek disturbed state: %v vs %v", ja, jb)
	}
	if ia, ib := a.IssuesByComponent(), b.IssuesByComponent(); ia["b"] != ib["b"] {
		t.Fatalf("Peek counted as issue: %v vs %v", ia, ib)
	}
}

func TestTournamentPanicsWithoutComponents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTournament with no components did not panic")
		}
	}()
	NewTournament(TournamentConfig{})
}
