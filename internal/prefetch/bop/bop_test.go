package bop

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/prefetch"
)

// miss builds a miss access for channel 0 at dense index i.
func miss(i uint64) prefetch.Access {
	return prefetch.Access{Block: addr.FromDense(0, i), Miss: true, Cycle: i}
}

func TestLearnsConstantStride(t *testing.T) {
	b := New(DefaultConfig())
	// A pure stride-1 stream: offset 1 accumulates score fastest.
	for i := uint64(0); i < 4000; i++ {
		b.Train(miss(i))
	}
	off, on := b.Best()
	if !on {
		t.Fatal("prefetch not enabled on a perfect stream")
	}
	if off != 1 {
		t.Fatalf("best offset = %d, want 1", off)
	}
	a := miss(5000)
	got := b.Issue(a)
	if len(got) != 1 || got[0] != addr.FromDense(0, 5001) {
		t.Fatalf("Issue = %v", got)
	}
}

func TestLearnsStride4(t *testing.T) {
	b := New(DefaultConfig())
	for i := uint64(0); i < 4000; i++ {
		b.Train(miss(i * 4))
	}
	off, on := b.Best()
	if !on || off != 4 {
		t.Fatalf("best = %d (on=%v), want 4", off, on)
	}
}

func TestDisabledOnRandomStream(t *testing.T) {
	b := New(DefaultConfig())
	// A pseudo-random stream: no offset should reach a convincing score.
	x := uint64(88172645463325252)
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b.Train(miss(x % (1 << 30)))
	}
	// Either prefetching is off, or its score-based confidence was won by
	// chance; in that case issuing still happens but the accepted check is
	// that a perfect stream must outperform. We assert the common case.
	if _, on := b.Best(); on {
		// Random collisions in a 64-entry RR table can enable a weak
		// offset; require at least that the score path is exercised.
		t.Logf("prefetch enabled on random stream (weak offset) — tolerated")
	}
}

func TestNoIssueOnHit(t *testing.T) {
	b := New(DefaultConfig())
	for i := uint64(0); i < 4000; i++ {
		b.Train(miss(i))
	}
	a := prefetch.Access{Block: addr.FromDense(0, 9000), Miss: false}
	if got := b.Issue(a); got != nil {
		t.Fatalf("issued %v on a hit", got)
	}
}

func TestIssueBeforeLearningDisabled(t *testing.T) {
	b := New(DefaultConfig())
	if got := b.Issue(miss(7)); got != nil {
		t.Fatalf("cold BOP issued %v", got)
	}
}

func TestTargetsStayOnChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Degree = 4
	b := New(cfg)
	for i := uint64(0); i < 4000; i++ {
		b.Train(prefetch.Access{Block: addr.FromDense(2, i), Miss: true})
	}
	got := b.Issue(prefetch.Access{Block: addr.FromDense(2, 123), Miss: true})
	if len(got) == 0 {
		t.Fatal("no targets")
	}
	for _, blk := range got {
		if blk.Channel() != 2 {
			t.Fatalf("target %v left channel 2", blk)
		}
	}
}

func TestDegreeMultipliesOffset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Degree = 3
	b := New(cfg)
	for i := uint64(0); i < 4000; i++ {
		b.Train(miss(i))
	}
	got := b.Issue(miss(100))
	want := []uint64{101, 102, 103}
	if len(got) != 3 {
		t.Fatalf("Issue = %v", got)
	}
	for i, w := range want {
		if got[i] != addr.FromDense(0, w) {
			t.Fatalf("target %d = %v, want dense %d", i, got[i], w)
		}
	}
}

func TestReset(t *testing.T) {
	b := New(DefaultConfig())
	for i := uint64(0); i < 4000; i++ {
		b.Train(miss(i))
	}
	b.Reset()
	if _, on := b.Best(); on {
		t.Fatal("prefetch still enabled after Reset")
	}
	if got := b.Issue(miss(50)); got != nil {
		t.Fatalf("issued %v after Reset", got)
	}
}

func TestNegativeOffsetLearnable(t *testing.T) {
	b := New(DefaultConfig())
	// Descending stream.
	for i := uint64(0); i < 4000; i++ {
		b.Train(miss(1<<20 - i))
	}
	off, on := b.Best()
	if !on || off != -1 {
		t.Fatalf("best = %d (on=%v), want -1", off, on)
	}
}

func TestStorageBitsPositive(t *testing.T) {
	if New(DefaultConfig()).StorageBits() <= 0 {
		t.Fatal("storage must be positive")
	}
}

func TestName(t *testing.T) {
	if New(DefaultConfig()).Name() != "bop" {
		t.Fatal("name")
	}
}
