// Package bop implements the Best-Offset Prefetcher (Pierre Michaud,
// "Best-Offset Hardware Prefetching", HPCA 2016), one of the two
// state-of-the-art baselines the Planaria paper evaluates against.
//
// BOP learns a single best block offset D by testing candidate offsets
// against a Recent Requests (RR) table: offset d scores a point whenever the
// current access X would have been covered by a prefetch issued at X-d. At
// the end of a learning round the highest-scoring offset becomes the active
// prefetch offset. BOP is delta-based, which is exactly the regularity the
// paper argues has been filtered away before the system cache — making it a
// traffic-heavy, low-accuracy prefetcher in this setting.
package bop

import (
	"repro/internal/addr"
	"repro/internal/prefetch"
)

// Offsets tested by the learner. Michaud uses offsets whose prime factors
// are ≤ 5 (they interact well with interleaved streams); we use the 5-smooth
// values up to half a page in both directions.
var defaultOffsets = []int{
	1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32,
	-1, -2, -3, -4, -5, -6, -8, -9, -10, -12, -15, -16, -18, -20, -24, -25, -27, -30, -32,
}

// Config parameterises BOP.
type Config struct {
	ScoreMax int   // stop a round early when a score reaches this (paper: 31)
	RoundMax int   // max test passes per round (paper: 100)
	BadScore int   // below this best score, prefetch is disabled (paper: 1)
	RRSize   int   // entries in the recent-requests table (power of two)
	Degree   int   // prefetches issued per trigger
	Offsets  []int // candidate offsets; nil for the default list
}

// DefaultConfig mirrors the HPCA'16 parameters, with a higher BadScore
// cut-off: at the system-cache level the RR table sees enough coincidental
// matches that the original threshold of 1 never turns prefetching off, so
// the off switch engages only below a score of 14.
func DefaultConfig() Config {
	return Config{ScoreMax: 31, RoundMax: 100, BadScore: 14, RRSize: 64, Degree: 1}
}

// BOP is the best-offset prefetcher state for one channel.
type BOP struct {
	cfg     Config
	offsets []int
	scores  []int
	testIdx int // next offset index to test
	passes  int // completed passes in this round

	rr     []uint64 // recent block numbers (direct-mapped, tag = full block)
	rrMask uint64

	best       int // active prefetch offset
	bestScore  int
	prefetchOn bool
}

// New builds a BOP instance.
func New(cfg Config) *BOP {
	if cfg.RRSize <= 0 {
		cfg.RRSize = 64
	}
	n := 1
	for n < cfg.RRSize {
		n <<= 1
	}
	offs := cfg.Offsets
	if offs == nil {
		offs = defaultOffsets
	}
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	b := &BOP{
		cfg:     cfg,
		offsets: offs,
		scores:  make([]int, len(offs)),
		rr:      make([]uint64, n),
		rrMask:  uint64(n - 1),
	}
	b.Reset()
	return b
}

// Name implements prefetch.Prefetcher.
func (b *BOP) Name() string { return "bop" }

// Reset implements prefetch.Prefetcher.
func (b *BOP) Reset() {
	for i := range b.rr {
		b.rr[i] = 0
	}
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.testIdx = 0
	b.passes = 0
	b.best = 1
	b.bestScore = 0
	b.prefetchOn = false
}

func (b *BOP) rrInsert(dense uint64) {
	b.rr[dense&b.rrMask] = dense | 1<<63 // bit 63 marks valid
}

func (b *BOP) rrHit(dense uint64) bool {
	return b.rr[dense&b.rrMask] == dense|1<<63
}

// Train implements prefetch.Prefetcher. Each miss (or hit on a prefetched
// line — approximated here by every demand access, as the engine does not
// expose the prefetched bit) tests one candidate offset against the RR table
// and advances the learning round.
func (b *BOP) Train(a prefetch.Access) {
	if !a.Miss {
		// Only misses drive learning at the SC level: hits were
		// filtered above and carry no DRAM-visible pattern.
		return
	}
	dense := addr.DenseIndex(a.Block)
	d := b.offsets[b.testIdx]
	base := int64(dense) - int64(d)
	if base >= 0 && b.rrHit(uint64(base)) {
		b.scores[b.testIdx]++
		if b.scores[b.testIdx] >= b.cfg.ScoreMax {
			b.endRound()
			b.rrInsert(dense)
			return
		}
	}
	b.testIdx++
	if b.testIdx == len(b.offsets) {
		b.testIdx = 0
		b.passes++
		if b.passes >= b.cfg.RoundMax {
			b.endRound()
		}
	}
	b.rrInsert(dense)
}

func (b *BOP) endRound() {
	bestI := 0
	for i, s := range b.scores {
		if s > b.scores[bestI] {
			bestI = i
		}
	}
	b.best = b.offsets[bestI]
	b.bestScore = b.scores[bestI]
	b.prefetchOn = b.bestScore > b.cfg.BadScore
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.testIdx = 0
	b.passes = 0
}

// Issue implements prefetch.Prefetcher: on a miss, prefetch X + k·D for
// k = 1..Degree while the learning phase has a confident offset.
func (b *BOP) Issue(a prefetch.Access) []addr.BlockNum {
	if !a.Miss || !b.prefetchOn {
		return nil
	}
	out := make([]addr.BlockNum, 0, b.cfg.Degree)
	dense := addr.DenseIndex(a.Block)
	ch := a.Block.Channel()
	for k := 1; k <= b.cfg.Degree; k++ {
		t := int64(dense) + int64(k*b.best)
		if t < 0 {
			break
		}
		out = append(out, addr.FromDense(ch, uint64(t)))
	}
	return out
}

// Best returns the currently selected offset and whether prefetching is on
// (exported for tests and the ablation harness).
func (b *BOP) Best() (offset int, on bool) { return b.best, b.prefetchOn }

// StorageBits implements prefetch.Prefetcher: RR entries (block tag 36 b +
// valid) + per-offset 5-bit scores + control state.
func (b *BOP) StorageBits() int {
	return len(b.rr)*(36+1) + len(b.offsets)*5 + 32
}
