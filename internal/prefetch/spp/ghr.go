package spp

import (
	"repro/internal/addr"
	"repro/internal/prefetch"
)

// ghrEntry is one in-flight cross-boundary lookahead: the signature and
// confidence a lookahead walk had when it ran off the end of its segment,
// plus where the walk would land in the next segment.
type ghrEntry struct {
	sig     uint16
	conf    float64
	landOff int8 // predicted first offset in the next page's segment
	delta   int8
	valid   bool
}

const ghrEntries = 8

// GHR is the Global History Register of the MICRO'16 SPP: it lets lookahead
// continue across page (here: channel-segment) boundaries by bootstrapping a
// fresh page's signature from a walk that predicted entry into it. Enable
// with Config.UseGHR (the "spp-ghr" prefetcher registration).
type ghr struct {
	entries [ghrEntries]ghrEntry
	next    int
}

func (g *ghr) record(sig uint16, conf float64, landOff, delta int) {
	g.entries[g.next] = ghrEntry{
		sig:     sig,
		conf:    conf,
		landOff: int8(landOff),
		delta:   int8(delta),
		valid:   true,
	}
	g.next = (g.next + 1) % ghrEntries
}

// lookup finds a recorded walk that predicted landing at offset off, and
// returns the signature to bootstrap the new page with.
func (g *ghr) lookup(off int) (sig uint16, ok bool) {
	for i := range g.entries {
		e := &g.entries[i]
		if e.valid && int(e.landOff) == off {
			e.valid = false
			return sigUpdate(e.sig, int(e.delta)), true
		}
	}
	return 0, false
}

func (g *ghr) reset() {
	*g = ghr{}
}

// trainGHR handles the ST-miss path when the GHR is enabled: a brand-new
// page checks whether a cross-boundary walk predicted its first access and,
// if so, inherits that walk's signature instead of starting cold.
func (s *SPP) trainGHR(e *stEntry, p addr.PageNum, off int) {
	sig := uint16(0)
	if g, ok := s.g.lookup(off); ok {
		sig = g
	}
	*e = stEntry{tag: uint64(p), lastOff: int8(off), sig: sig, valid: true}
}

// recordBoundary is called by Issue when a lookahead step would cross the
// segment boundary: the walk's state is parked in the GHR so the next page
// can pick it up.
func (s *SPP) recordBoundary(sig uint16, conf float64, off, delta int) {
	if s.g == nil {
		return
	}
	land := off + delta
	for land >= addr.SegmentBlocks {
		land -= addr.SegmentBlocks
	}
	for land < 0 {
		land += addr.SegmentBlocks
	}
	s.g.record(sig, conf, land, delta)
}

// NewGHR builds an SPP with the cross-page global history register enabled.
func NewGHR(cfg Config) *SPP {
	cfg.UseGHR = true
	return New(cfg)
}

var _ = prefetch.Prefetcher(nil)
