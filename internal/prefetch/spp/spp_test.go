package spp

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/prefetch"
)

func access(p addr.PageNum, ch, off int, miss bool) prefetch.Access {
	return prefetch.Access{Block: p.Block(addr.OffsetOf(ch, off)), Miss: miss}
}

func TestSignatureUpdateDistinguishesDeltas(t *testing.T) {
	s1 := sigUpdate(0, 1)
	s2 := sigUpdate(0, 2)
	if s1 == s2 {
		t.Fatal("different deltas produced the same signature")
	}
	if sigUpdate(s1, 3) == sigUpdate(s2, 3) {
		t.Fatal("signature lost its history after one step")
	}
}

func TestLearnsStridePattern(t *testing.T) {
	s := New(DefaultConfig())
	// Train the delta-1 path on many pages so the pattern table counters
	// build confidence.
	for p := addr.PageNum(0); p < 50; p++ {
		for off := 0; off < 8; off++ {
			s.Train(access(p, 0, off, true))
		}
	}
	// A fresh page starting the same walk should get lookahead targets.
	p := addr.PageNum(999)
	s.Train(access(p, 0, 0, true))
	s.Train(access(p, 0, 1, true))
	got := s.Issue(access(p, 0, 1, true))
	if len(got) == 0 {
		t.Fatal("no prefetches for a well-learned stride")
	}
	want := p.Block(addr.OffsetOf(0, 2))
	if got[0] != want {
		t.Fatalf("first target %v, want %v", got[0], want)
	}
	// Lookahead should go deeper than one block on a confident path.
	if len(got) < 2 {
		t.Fatalf("lookahead depth %d, want >= 2", len(got))
	}
}

func TestConfidenceDecaysLookahead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 0.9 // very strict: compound confidence dies quickly
	s := New(cfg)
	for p := addr.PageNum(0); p < 50; p++ {
		for off := 0; off < 8; off++ {
			s.Train(access(p, 0, off, true))
		}
	}
	p := addr.PageNum(999)
	s.Train(access(p, 0, 0, true))
	s.Train(access(p, 0, 1, true))
	strict := len(s.Issue(access(p, 0, 1, true)))

	cfg.Threshold = 0.1
	s2 := New(cfg)
	for p := addr.PageNum(0); p < 50; p++ {
		for off := 0; off < 8; off++ {
			s2.Train(access(p, 0, off, true))
		}
	}
	s2.Train(access(p, 0, 0, true))
	s2.Train(access(p, 0, 1, true))
	loose := len(s2.Issue(access(p, 0, 1, true)))
	if strict > loose {
		t.Fatalf("strict threshold issued more (%d) than loose (%d)", strict, loose)
	}
}

func TestStopsAtSegmentBoundary(t *testing.T) {
	s := New(DefaultConfig())
	for p := addr.PageNum(0); p < 50; p++ {
		for off := 0; off < addr.SegmentBlocks; off++ {
			s.Train(access(p, 0, off, true))
		}
	}
	p := addr.PageNum(777)
	s.Train(access(p, 0, 13, true))
	s.Train(access(p, 0, 14, true))
	got := s.Issue(access(p, 0, 14, true))
	for _, b := range got {
		if b.Page() != p {
			t.Fatalf("prefetch %v crossed the page boundary", b)
		}
		if b.Channel() != 0 {
			t.Fatalf("prefetch %v crossed the channel", b)
		}
	}
	if len(got) > 1 {
		t.Fatalf("issued %d targets past offset 15", len(got))
	}
}

func TestIrregularStreamLessCoveredThanRegular(t *testing.T) {
	// SPP keeps issuing on irregular traffic (that is exactly the excess
	// traffic the Planaria paper measures), but its lookahead depth per
	// access must be clearly lower than on a perfectly regular stream.
	irregular := New(DefaultConfig())
	x := uint32(2463534242)
	issuedIrr := 0
	const n = 5000
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		p := addr.PageNum(x % 64)
		off := int(x>>8) % addr.SegmentBlocks
		a := access(p, 0, off, true)
		irregular.Train(a)
		issuedIrr += len(irregular.Issue(a))
	}

	regular := New(DefaultConfig())
	issuedReg := 0
	for i := 0; i < n; i++ {
		p := addr.PageNum(i / addr.SegmentBlocks)
		a := access(p, 0, i%addr.SegmentBlocks, true)
		regular.Train(a)
		issuedReg += len(regular.Issue(a))
	}
	if issuedIrr >= issuedReg {
		t.Fatalf("irregular stream issued %d >= regular %d", issuedIrr, issuedReg)
	}
}

func TestColdPageNoIssue(t *testing.T) {
	s := New(DefaultConfig())
	if got := s.Issue(access(5, 0, 3, true)); got != nil {
		t.Fatalf("cold page issued %v", got)
	}
}

func TestReset(t *testing.T) {
	s := New(DefaultConfig())
	for p := addr.PageNum(0); p < 50; p++ {
		for off := 0; off < 8; off++ {
			s.Train(access(p, 0, off, true))
		}
	}
	s.Reset()
	p := addr.PageNum(999)
	s.Train(access(p, 0, 0, true))
	s.Train(access(p, 0, 1, true))
	if got := s.Issue(access(p, 0, 1, true)); len(got) != 0 {
		t.Fatalf("issued %v after Reset", got)
	}
}

func TestCounterSaturationRenormalises(t *testing.T) {
	s := New(DefaultConfig())
	// Hammer one signature far past saturation; counters must stay within
	// 4-bit bounds and the prefetcher must keep working.
	for p := addr.PageNum(0); p < 400; p++ {
		for off := 0; off < 4; off++ {
			s.Train(access(p, 0, off, true))
		}
	}
	for _, pe := range s.pt {
		if pe.cSig > maxCtr {
			t.Fatalf("cSig %d exceeds 4-bit max", pe.cSig)
		}
		for _, d := range pe.deltas {
			if d.ctr > maxCtr {
				t.Fatalf("delta ctr %d exceeds 4-bit max", d.ctr)
			}
		}
	}
}

func TestStorageBits(t *testing.T) {
	s := New(DefaultConfig())
	if s.StorageBits() <= 0 {
		t.Fatal("storage must be positive")
	}
	if s.Name() != "spp" {
		t.Fatal("name")
	}
}
