// Package spp implements the Signature Path Prefetcher (Jinchun Kim et al.,
// "Path Confidence based Lookahead Prefetching", MICRO 2016), the stronger
// of the two baselines in the Planaria paper.
//
// SPP is PC-free by construction — signatures are compressed histories of
// per-page offset deltas — which is why it can be deployed at the system
// cache at all. It remains delta-based, however: interleaved multi-device
// traffic at the memory side scrambles the delta sequences it keys on, which
// is the weakness Planaria's footprint approach sidesteps.
package spp

import (
	"repro/internal/addr"
	"repro/internal/prefetch"
)

const (
	sigBits    = 12
	sigMask    = (1 << sigBits) - 1
	sigShift   = 3
	maxCtr     = 15 // 4-bit saturating counters
	deltaSlots = 4
)

// Config parameterises SPP.
type Config struct {
	STSize    int     // signature-table entries (power of two)
	PTSize    int     // pattern-table entries (power of two, ≥ 1<<sigBits recommended)
	Threshold float64 // path-confidence floor for continuing lookahead (paper: 0.25)
	MaxDepth  int     // maximum lookahead depth (paper: unbounded in principle; 8 here)
	UseGHR    bool    // enable the cross-page global history register
}

// DefaultConfig mirrors the MICRO'16 sizing scaled to the 16-block channel
// segment.
func DefaultConfig() Config {
	return Config{STSize: 256, PTSize: 1 << sigBits, Threshold: 0.25, MaxDepth: 8}
}

type stEntry struct {
	tag     uint64
	lastOff int8
	sig     uint16
	valid   bool
}

type ptDelta struct {
	delta int8
	ctr   uint8
}

type ptEntry struct {
	cSig   uint8
	deltas [deltaSlots]ptDelta
}

// SPP is the prefetcher state for one channel.
type SPP struct {
	cfg    Config
	st     []stEntry
	stMask uint64
	pt     []ptEntry
	ptMask uint64
	g      *ghr // non-nil when Config.UseGHR
}

// New builds an SPP instance.
func New(cfg Config) *SPP {
	if cfg.STSize <= 0 {
		cfg.STSize = 256
	}
	if cfg.PTSize <= 0 {
		cfg.PTSize = 1 << sigBits
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.25
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 8
	}
	st := 1
	for st < cfg.STSize {
		st <<= 1
	}
	pt := 1
	for pt < cfg.PTSize {
		pt <<= 1
	}
	s := &SPP{
		cfg:    cfg,
		st:     make([]stEntry, st),
		stMask: uint64(st - 1),
		pt:     make([]ptEntry, pt),
		ptMask: uint64(pt - 1),
	}
	if cfg.UseGHR {
		s.g = &ghr{}
	}
	return s
}

// Name implements prefetch.Prefetcher.
func (s *SPP) Name() string {
	if s.cfg.UseGHR {
		return "spp-ghr"
	}
	return "spp"
}

// Reset implements prefetch.Prefetcher.
func (s *SPP) Reset() {
	for i := range s.st {
		s.st[i] = stEntry{}
	}
	for i := range s.pt {
		s.pt[i] = ptEntry{}
	}
	if s.g != nil {
		s.g.reset()
	}
}

func sigUpdate(sig uint16, delta int) uint16 {
	// Fold the signed delta into a small non-zero code, as in the paper.
	code := uint16(delta & 0x3F)
	return (sig<<sigShift ^ code) & sigMask
}

func (s *SPP) stSlot(p addr.PageNum) *stEntry { return &s.st[uint64(p)&s.stMask] }

func (s *SPP) ptSlot(sig uint16) *ptEntry { return &s.pt[uint64(sig)&s.ptMask] }

// Train implements prefetch.Prefetcher: update the per-page signature and
// record the observed delta under the page's previous signature.
func (s *SPP) Train(a prefetch.Access) {
	p := a.Page()
	off := a.Block.SegOffset()
	e := s.stSlot(p)
	if !e.valid || e.tag != uint64(p) {
		if s.g != nil {
			s.trainGHR(e, p, off)
		} else {
			*e = stEntry{tag: uint64(p), lastOff: int8(off), sig: 0, valid: true}
		}
		return
	}
	delta := off - int(e.lastOff)
	if delta == 0 {
		return
	}
	s.learn(e.sig, delta)
	e.sig = sigUpdate(e.sig, delta)
	e.lastOff = int8(off)
}

func (s *SPP) learn(sig uint16, delta int) {
	pe := s.ptSlot(sig)
	if pe.cSig < maxCtr {
		pe.cSig++
	} else {
		// Saturating renormalisation keeps ratios meaningful.
		pe.cSig = maxCtr/2 + 1
		for i := range pe.deltas {
			pe.deltas[i].ctr /= 2
		}
	}
	minI := 0
	for i := range pe.deltas {
		d := &pe.deltas[i]
		if d.ctr > 0 && int(d.delta) == delta {
			if d.ctr < maxCtr {
				d.ctr++
			}
			return
		}
		if d.ctr < pe.deltas[minI].ctr {
			minI = i
		}
	}
	pe.deltas[minI] = ptDelta{delta: int8(delta), ctr: 1}
}

// Issue implements prefetch.Prefetcher: walk the signature path, compounding
// confidence, and emit prefetches within the channel segment.
func (s *SPP) Issue(a prefetch.Access) []addr.BlockNum {
	p := a.Page()
	e := s.stSlot(p)
	if !e.valid || e.tag != uint64(p) {
		return nil
	}
	var out []addr.BlockNum
	sig := e.sig
	off := a.Block.SegOffset()
	conf := 1.0
	ch := a.Block.Channel()
	for depth := 0; depth < s.cfg.MaxDepth; depth++ {
		pe := s.ptSlot(sig)
		if pe.cSig == 0 {
			break
		}
		best := -1
		for i := range pe.deltas {
			if pe.deltas[i].ctr == 0 {
				continue
			}
			if best == -1 || pe.deltas[i].ctr > pe.deltas[best].ctr {
				best = i
			}
		}
		if best == -1 {
			break
		}
		d := pe.deltas[best]
		conf *= float64(d.ctr) / float64(pe.cSig)
		if conf < s.cfg.Threshold {
			break
		}
		prevOff := off
		off += int(d.delta)
		if off < 0 || off >= addr.SegmentBlocks {
			// Segment (page) boundary: park the walk in the GHR so a
			// neighbouring page can continue it; without a GHR the
			// walk simply ends.
			s.recordBoundary(sig, conf, prevOff, int(d.delta))
			break
		}
		out = append(out, p.Block(addr.OffsetOf(ch, off)))
		sig = sigUpdate(sig, int(d.delta))
	}
	return out
}

// StorageBits implements prefetch.Prefetcher: ST entry = tag 36 + lastOff 4 +
// sig 12 + valid 1; PT entry = cSig 4 + 4 × (delta 6 + ctr 4).
func (s *SPP) StorageBits() int {
	return len(s.st)*(36+4+12+1) + len(s.pt)*(4+deltaSlots*(6+4))
}
