package spp

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/prefetch"
)

// trainCrossPageStream walks a fixed-stride pattern through consecutive
// pages on channel 0, so every lookahead walk eventually crosses a segment
// boundary.
func trainCrossPageStream(s *SPP, basePage addr.PageNum, pages, stride int) {
	off := 0
	for p := 0; p < pages; {
		a := access(basePage+addr.PageNum(p), 0, off, true)
		s.Train(a)
		s.Issue(a)
		off += stride
		if off >= addr.SegmentBlocks {
			off -= addr.SegmentBlocks
			p++
		}
	}
}

func TestGHRBootstrapsNewPage(t *testing.T) {
	// Two concurrent behaviours: a dominant stride-1 stream (so the cold
	// sig-0 pattern entry predicts +1) and a rarer stride-5 stream. A
	// fresh page continuing the stride-5 stream is mispredicted by plain
	// SPP (cold signature ⇒ +1) but correctly continued by the GHR
	// bootstrap (inherited walk signature ⇒ +5).
	build := func(useGHR bool) *SPP {
		var s *SPP
		if useGHR {
			s = NewGHR(DefaultConfig())
		} else {
			s = New(DefaultConfig())
		}
		trainCrossPageStream(s, 4000, 12, 5) // rare, trained first
		trainCrossPageStream(s, 100, 60, 1)  // dominant, trained last so
		// the cold-signature pattern entry ends up favouring +1
		return s
	}

	// Replay the stride-5 stream up to a boundary crossing so the GHR
	// holds a fresh walk, then touch the landing page.
	probe := func(s *SPP) []addr.BlockNum {
		off := 0
		page := addr.PageNum(7000)
		for {
			a := access(page, 0, off, true)
			s.Train(a)
			s.Issue(a)
			off += 5
			if off >= addr.SegmentBlocks {
				off -= addr.SegmentBlocks
				page++
				break
			}
		}
		a := access(page, 0, off, true)
		s.Train(a)
		return s.Issue(a)
	}

	gotWith := probe(build(true))
	gotWithout := probe(build(false))

	// The landing offset of the stride-5 walk is deterministic: last
	// offset 15, +5 → 4 on the next page. The *first* prediction reveals
	// the signature in play: +5 under the inherited walk signature, +1
	// under the cold signature dominated by the stride-1 stream.
	const trigger = 4
	if len(gotWith) == 0 || gotWith[0].SegOffset() != trigger+5 {
		t.Fatalf("GHR-SPP did not continue the stride-5 walk: targets %v", gotWith)
	}
	if len(gotWithout) == 0 || gotWithout[0].SegOffset() != trigger+1 {
		t.Fatalf("plain SPP's cold prediction should be +1: %v", gotWithout)
	}
}

func TestGHRName(t *testing.T) {
	if NewGHR(DefaultConfig()).Name() != "spp-ghr" {
		t.Fatal("name")
	}
	if New(DefaultConfig()).Name() != "spp" {
		t.Fatal("plain name changed")
	}
}

func TestGHRRecycleAndReset(t *testing.T) {
	g := &ghr{}
	for i := 0; i < ghrEntries+3; i++ {
		g.record(uint16(i), 0.5, i%addr.SegmentBlocks, 1)
	}
	// Entries wrapped; the oldest were overwritten but lookups still work
	// on live ones.
	if _, ok := g.lookup((ghrEntries + 2) % addr.SegmentBlocks); !ok {
		t.Fatal("recent entry lost")
	}
	g.reset()
	for off := 0; off < addr.SegmentBlocks; off++ {
		if _, ok := g.lookup(off); ok {
			t.Fatal("entry survived reset")
		}
	}
}

func TestGHRLookupConsumesEntry(t *testing.T) {
	g := &ghr{}
	g.record(7, 0.5, 3, 1)
	if _, ok := g.lookup(3); !ok {
		t.Fatal("first lookup failed")
	}
	if _, ok := g.lookup(3); ok {
		t.Fatal("entry not consumed")
	}
}

func TestGHRResetViaPrefetcher(t *testing.T) {
	s := NewGHR(DefaultConfig())
	trainCrossPageStream(s, 100, 10, 1)
	s.Reset()
	p := addr.PageNum(900)
	a := access(p, 0, 0, true)
	s.Train(a)
	if got := s.Issue(a); len(got) != 0 {
		t.Fatalf("issued %v after Reset", got)
	}
}

var _ prefetch.Prefetcher = (*SPP)(nil)
