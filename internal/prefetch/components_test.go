package prefetch

import (
	"testing"

	"repro/internal/addr"
)

// TestMarkovLearnsAlternatingDeltas: the order-2 component captures the
// +1,+3 repeating walk that a constant-stride predictor cannot represent.
func TestMarkovLearnsAlternatingDeltas(t *testing.T) {
	m := NewMarkov(DefaultMarkovConfig())
	page := addr.PageNum(42)
	// One pass over 0,1,4,5,8,9,12,13 trains both transitions
	// ([+1,+3] → +1 and [+3,+1] → +3) to confidence ≥ 2.
	for _, off := range []int{0, 1, 4, 5, 8, 9, 12, 13} {
		m.Train(Access{Block: page.Block(addr.OffsetOf(0, off)), Miss: true})
	}
	// The pattern table is keyed by delta history alone, so the learning
	// transfers to a fresh page: priming page 43 up to offset 5 leaves the
	// history at [+3,+1] and the chain predicts +3,+1,+3,+1 → 8, 9, 12, 13.
	// (A fresh page matters: re-entering a stale tracker would first emit a
	// wrap-around delta that decays the learned transitions.)
	page2 := addr.PageNum(43)
	var last Access
	for _, off := range []int{0, 1, 4, 5} {
		last = Access{Block: page2.Block(addr.OffsetOf(0, off)), Miss: true}
		m.Train(last)
	}
	got := m.Issue(last)
	want := []int{8, 9, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("Issue = %v, want offsets %v", got, want)
	}
	for i, b := range got {
		if b.SegOffset() != want[i] || b.Page() != page2 || b.Channel() != 0 {
			t.Fatalf("target %d = %v (off %d), want offset %d on page %d channel 0",
				i, b, b.SegOffset(), want[i], page2)
		}
	}
	if m.Issues() != 1 {
		t.Fatalf("Issues = %d, want 1", m.Issues())
	}
	// No issue on hits; Peek equals Issue and repeated Peeks are stable.
	if m.Issue(Access{Block: last.Block}) != nil {
		t.Fatal("issued on a hit")
	}
	p1 := m.Peek(last, nil)
	p2 := m.Peek(last, nil)
	if len(p1) != len(got) || len(p2) != len(got) {
		t.Fatalf("Peek unstable: %v then %v, Issue was %v", p1, p2, got)
	}
}

func TestMarkovNoIssueUnprimed(t *testing.T) {
	m := NewMarkov(DefaultMarkovConfig())
	page := addr.PageNum(7)
	a := Access{Block: page.Block(addr.OffsetOf(0, 3)), Miss: true}
	m.Train(a)
	if got := m.Issue(a); got != nil {
		t.Fatalf("issued %v before the history primed", got)
	}
}

func TestMarkovReset(t *testing.T) {
	m := NewMarkov(DefaultMarkovConfig())
	for _, off := range []int{0, 1, 4, 5, 8, 9, 12, 13} {
		m.Train(Access{Block: addr.PageNum(42).Block(addr.OffsetOf(0, off)), Miss: true})
	}
	var last Access
	for _, off := range []int{0, 1, 4, 5} {
		last = Access{Block: addr.PageNum(43).Block(addr.OffsetOf(0, off)), Miss: true}
		m.Train(last)
	}
	if m.Issue(last) == nil {
		t.Fatal("setup failed: nothing learned")
	}
	m.Reset()
	if got := m.Issue(last); got != nil {
		t.Fatalf("issued %v after Reset", got)
	}
	if m.Issues() != 0 {
		t.Fatal("issue counter survived Reset")
	}
}

// TestAccelLearnsTriangularWalk: the delta-delta component extrapolates the
// growing-stride sweep 0,1,3,6,10 → 15.
func TestAccelLearnsTriangularWalk(t *testing.T) {
	p := NewAccel(DefaultAccelConfig())
	page := addr.PageNum(9)
	var last Access
	for _, off := range []int{0, 1, 3, 6, 10} {
		last = Access{Block: page.Block(addr.OffsetOf(2, off)), Miss: true}
		p.Train(last)
	}
	got := p.Issue(last)
	if len(got) != 1 || got[0].SegOffset() != 15 || got[0].Channel() != 2 {
		t.Fatalf("Issue = %v, want offset 15 on channel 2", got)
	}
	if p.Issues() != 1 {
		t.Fatalf("Issues = %d, want 1", p.Issues())
	}
}

// TestAccelConstantStride: with acceleration 0 the component degenerates to
// a confirmed stride predictor.
func TestAccelConstantStride(t *testing.T) {
	p := NewAccel(DefaultAccelConfig())
	page := addr.PageNum(11)
	var last Access
	for _, off := range []int{0, 2, 4, 6} {
		last = Access{Block: page.Block(addr.OffsetOf(0, off)), Miss: true}
		p.Train(last)
	}
	got := p.Issue(last)
	want := []int{8, 10, 12}
	if len(got) != len(want) {
		t.Fatalf("Issue = %v, want offsets %v", got, want)
	}
	for i, b := range got {
		if b.SegOffset() != want[i] {
			t.Fatalf("target %d offset = %d, want %d", i, b.SegOffset(), want[i])
		}
	}
}

func TestAccelNoIssueWithoutConfidence(t *testing.T) {
	p := NewAccel(DefaultAccelConfig())
	page := addr.PageNum(5)
	for _, off := range []int{0, 1, 5, 2, 11} {
		a := Access{Block: page.Block(addr.OffsetOf(0, off)), Miss: true}
		p.Train(a)
		if got := p.Issue(a); got != nil {
			t.Fatalf("issued %v on an irregular walk", got)
		}
	}
}

func TestAccelReset(t *testing.T) {
	p := NewAccel(DefaultAccelConfig())
	page := addr.PageNum(9)
	var last Access
	for _, off := range []int{0, 1, 3, 6, 10} {
		last = Access{Block: page.Block(addr.OffsetOf(0, off)), Miss: true}
		p.Train(last)
	}
	p.Reset()
	if got := p.Issue(last); got != nil {
		t.Fatalf("issued %v after Reset", got)
	}
}

// TestMetaSetDueling walks the selector contract: leader regions are fixed
// per component, follower regions follow trust, cold rows follow the global
// score, and everything ties to component 0.
func TestMetaSetDueling(t *testing.T) {
	m := NewMeta(3, MetaConfig{})
	// Regions 0..2 lead components 0..2; region 32 leads component 0 again.
	for r, want := range map[int]int{0: 0, 1: 1, 2: 2, 32: 0, 33: 1} {
		sel, leader := m.Select(r)
		if sel != want || !leader {
			t.Fatalf("Select(%d) = (%d, %v), want leader %d", r, sel, leader, want)
		}
	}
	// Follower region, all cold: ties resolve to component 0.
	const follower = 40
	if sel, leader := m.Select(follower); sel != 0 || leader {
		t.Fatalf("cold follower Select = (%d, %v), want (0, false)", sel, leader)
	}
	// Regional trust dominates.
	m.Reward(follower, 2)
	if sel, _ := m.Select(follower); sel != 2 {
		t.Fatalf("Select after reward = %d, want 2", sel)
	}
	// Draining the trust falls back to the global score, which the reward
	// above also bumped… so debit it below zero first.
	m.Penalize(follower, 2)
	m.Penalize(follower, 2) // trust floors at 0; psel keeps going down
	if m.Trust(follower, 2) != 0 {
		t.Fatalf("trust did not floor at 0: %d", m.Trust(follower, 2))
	}
	if m.Score(2) != -1 {
		t.Fatalf("Score(2) = %d, want -1 after one net penalty", m.Score(2))
	}
	m.Reward(100, 1) // global credit for component 1 via some other region
	if sel, _ := m.Select(follower); sel != 1 {
		t.Fatalf("cold-row Select = %d, want 1 by global score", sel)
	}
}

func TestMetaSaturation(t *testing.T) {
	m := NewMeta(2, MetaConfig{TrustMax: 3, PselMax: 4})
	const region = 40
	for i := 0; i < 10; i++ {
		m.Reward(region, 1)
	}
	if m.Trust(region, 1) != 3 {
		t.Fatalf("trust = %d, want saturation at 3", m.Trust(region, 1))
	}
	if m.Score(1) != 4 {
		t.Fatalf("score = %d, want clamp at 4", m.Score(1))
	}
	for i := 0; i < 20; i++ {
		m.Penalize(region, 1)
	}
	if m.Trust(region, 1) != 0 || m.Score(1) != -4 {
		t.Fatalf("after penalties: trust %d score %d, want 0 and -4", m.Trust(region, 1), m.Score(1))
	}
}

func TestMetaLeaderModClampedToComponents(t *testing.T) {
	// 5 components with LeaderMod 4 would leave component 4 leaderless;
	// the constructor widens the cycle.
	m := NewMeta(5, MetaConfig{LeaderMod: 4})
	seen := map[int]bool{}
	for r := 0; r < 256; r++ {
		if sel, leader := m.Select(r); leader {
			seen[sel] = true
		}
	}
	for c := 0; c < 5; c++ {
		if !seen[c] {
			t.Fatalf("component %d has no leader region", c)
		}
	}
}
