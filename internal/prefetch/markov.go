package prefetch

import "repro/internal/addr"

// MarkovConfig sizes the order-N delta-history component. The zero value of
// any field selects its default (shown in parentheses).
type MarkovConfig struct {
	// History is the Markov order N: how many consecutive per-page deltas
	// form the pattern-table signature (2, clamped to 1..3 — each delta
	// takes 5 signature bits).
	History int
	// Trackers is the page-tracker table size, rounded up to a power of
	// two (128). Each tracker carries one page's last segment offset and
	// its delta-history shift register.
	Trackers int
	// Patterns is the pattern-table size, rounded up to a power of two
	// (1024 — with the default order 2 that is one entry per possible
	// 2-delta history, a perfect map). Each entry maps a delta-history
	// signature to one predicted next delta with a 2-bit confidence
	// counter.
	Patterns int
	// Degree is how many chained predictions Issue follows through the
	// pattern table per trigger (4).
	Degree int
	// MinConf is the confidence a pattern entry needs before its
	// prediction is issued (2, of the 0..3 counter range).
	MinConf int
}

// DefaultMarkovConfig returns the configuration used by the built-in
// "markov" prefetcher and the planaria-tournament component.
func DefaultMarkovConfig() MarkovConfig {
	return MarkovConfig{History: 2, Trackers: 128, Patterns: 1024, Degree: 4, MinConf: 2}
}

// markovTracker is one page's delta-history state.
type markovTracker struct {
	page    addr.PageNum
	lastOff int
	sig     uint16 // shift register: the last History deltas, 5 bits each
	primed  int    // deltas folded into sig so far, saturating at History
	valid   bool
}

// markovPattern maps one delta-history signature to a next-delta prediction.
type markovPattern struct {
	tag   uint16
	delta int8
	conf  uint8 // 2-bit saturating confidence
	valid bool
}

// Markov is a PC-free order-N delta-history prefetcher ("Markov-N"): it
// learns which segment-offset delta tends to follow each observed sequence
// of N deltas within a page, and on a trigger walks the learned transitions
// Degree steps ahead. The signature is exactly the page's last N deltas
// packed 5 bits apiece — no program counter is involved, matching the
// paper's memory-side setting, and identical histories always index the
// same pattern entry.
//
// Unlike Stride (one constant delta per page) Markov captures repeating
// non-constant delta sequences (+1,+3,+1,+3,...); unlike SPP it has no
// global history register and keeps all state per channel.
type Markov struct {
	cfg      MarkovConfig
	trackers []markovTracker
	patterns []markovPattern

	// issues counts Issue calls that produced at least one prediction
	// (the component's internal confidence/usage statistic).
	issues uint64
}

// NewMarkov builds a Markov component; zero config fields take defaults.
func NewMarkov(cfg MarkovConfig) *Markov {
	if cfg.History <= 0 {
		cfg.History = 2
	}
	if cfg.History > 3 {
		cfg.History = 3 // 5 bits per delta; the signature register is 16 bits
	}
	if cfg.Trackers <= 0 {
		cfg.Trackers = 128
	}
	if cfg.Patterns <= 0 {
		cfg.Patterns = 1024
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 4
	}
	if cfg.MinConf <= 0 {
		cfg.MinConf = 2
	}
	cfg.Trackers = ceilPow2(cfg.Trackers)
	cfg.Patterns = ceilPow2(cfg.Patterns)
	return &Markov{
		cfg:      cfg,
		trackers: make([]markovTracker, cfg.Trackers),
		patterns: make([]markovPattern, cfg.Patterns),
	}
}

// Name implements Prefetcher.
func (m *Markov) Name() string { return "markov" }

// Reset implements Prefetcher.
func (m *Markov) Reset() {
	for i := range m.trackers {
		m.trackers[i] = markovTracker{}
	}
	for i := range m.patterns {
		m.patterns[i] = markovPattern{}
	}
	m.issues = 0
}

// sigStep shifts one delta into the history register: the oldest delta's
// 5 bits fall off the top, the new delta's enter at the bottom, so the
// register always holds exactly the last History deltas (sigMask keeps the
// width at 5×History bits). Segment offsets span [0, 16), so every possible
// delta (−15..15) has a distinct 5-bit two's-complement encoding and
// distinct histories never collide in the register.
func (m *Markov) sigStep(sig uint16, delta int) uint16 {
	return (sig<<5 | uint16(delta&0x1f)) & m.sigMask()
}

// sigMask is the history register's width mask: 5 bits per remembered delta.
func (m *Markov) sigMask() uint16 {
	return uint16(1)<<(5*m.cfg.History) - 1
}

func (m *Markov) tracker(p addr.PageNum) *markovTracker {
	return &m.trackers[uint64(p)&uint64(len(m.trackers)-1)]
}

func (m *Markov) pattern(sig uint16) *markovPattern {
	return &m.patterns[uint64(sig)&uint64(len(m.patterns)-1)]
}

// Train implements Prefetcher: update the page's tracker and train the
// pattern table on the (signature → delta) transition just observed.
func (m *Markov) Train(a Access) {
	t := m.tracker(a.Page())
	off := a.Block.SegOffset()
	if !t.valid || t.page != a.Page() {
		*t = markovTracker{page: a.Page(), lastOff: off, valid: true}
		return
	}
	delta := off - t.lastOff
	if delta == 0 {
		return
	}
	if t.primed >= m.cfg.History {
		// The signature covers a full N-delta history: train it.
		e := m.pattern(t.sig)
		switch {
		case e.valid && e.tag == t.sig && int(e.delta) == delta:
			if e.conf < 3 {
				e.conf++
			}
		case e.valid && e.tag == t.sig:
			// Same history, different outcome: decay, and only
			// repoint the prediction once confidence is exhausted.
			if e.conf > 0 {
				e.conf--
			} else {
				e.delta = int8(delta)
			}
		default:
			// Tag miss: allocate (direct-mapped, always-replace, like
			// the SLP pattern table).
			*e = markovPattern{tag: t.sig, delta: int8(delta), conf: 1, valid: true}
		}
	}
	t.sig = m.sigStep(t.sig, delta)
	if t.primed < m.cfg.History {
		t.primed++
	}
	t.lastOff = off
}

// Issue implements Prefetcher.
func (m *Markov) Issue(a Access) []addr.BlockNum {
	return m.IssueTo(a, nil)
}

// IssueTo implements BufferedIssuer.
func (m *Markov) IssueTo(a Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	out := m.Peek(a, dst)
	if len(out) > len(dst) {
		m.issues++
	}
	return out
}

// Peek implements Component: walk the pattern table from the page's current
// signature, chaining up to Degree confident transitions, without touching
// any state.
func (m *Markov) Peek(a Access, dst []addr.BlockNum) []addr.BlockNum {
	t := m.tracker(a.Page())
	if !t.valid || t.page != a.Page() || t.primed < m.cfg.History {
		return dst
	}
	page := a.Page()
	ch := a.Block.Channel()
	off := a.Block.SegOffset()
	sig := t.sig
	for i := 0; i < m.cfg.Degree; i++ {
		e := m.pattern(sig)
		if !e.valid || e.tag != sig || int(e.conf) < m.cfg.MinConf {
			break
		}
		off += int(e.delta)
		if off < 0 || off >= addr.SegmentBlocks {
			break
		}
		dst = append(dst, page.Block(addr.OffsetOf(ch, off)))
		sig = m.sigStep(sig, int(e.delta))
	}
	return dst
}

// Issues returns the number of Issue calls that produced predictions.
func (m *Markov) Issues() uint64 { return m.issues }

// StorageBits implements Prefetcher.
// Tracker entry: page tag (36) + offset (4) + signature (5×History) +
// primed (2) + valid (1). Pattern entry: signature tag above the index
// (5×History − log2(Patterns), ≥ 0) + delta (5) + confidence (2) + valid (1).
func (m *Markov) StorageBits() int {
	sigBits := 5 * m.cfg.History
	patTag := sigBits - log2i(len(m.patterns))
	if patTag < 0 {
		patTag = 0
	}
	return len(m.trackers)*(36+4+sigBits+2+1) + len(m.patterns)*(patTag+5+2+1)
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// log2i returns floor(log2(v)) for v ≥ 1.
func log2i(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
