package prefetch

import (
	"repro/internal/addr"
	"repro/internal/hashidx"
)

// Access is one demand access as seen at the system-cache level. There is
// deliberately no program counter: the paper's setting is the memory side,
// where a PC is unavailable (Section 3.2).
type Access struct {
	Block addr.BlockNum // accessed block
	Cycle uint64        // arrival cycle
	Write bool          // write access
	Miss  bool          // missed in the system cache
}

// Page returns the accessed page.
func (a Access) Page() addr.PageNum { return a.Block.Page() }

// Prefetcher is a memory-side prefetcher with decoupled learning and issuing
// phases. Implementations are driven single-threaded per channel.
type Prefetcher interface {
	// Name returns a short mnemonic ("slp", "bop", ...).
	Name() string
	// Train observes a demand access and updates internal pattern state.
	// Every demand access is passed to Train, hits and misses alike.
	Train(a Access)
	// Issue returns the blocks to prefetch in response to a demand
	// access, or nil. The engine calls Issue after Train for the same
	// access. Returned blocks may include already-resident targets; the
	// engine filters them.
	Issue(a Access) []addr.BlockNum
	// StorageBits returns the hardware metadata budget of this
	// prefetcher instance in bits, for the paper's storage accounting.
	StorageBits() int
	// Reset clears all learned state.
	Reset()
}

// BufferedIssuer is the allocation-free extension of Prefetcher: IssueTo
// appends the blocks Issue would return for a to dst and returns the
// extended slice, with exactly Issue's side effects (statistics, origin
// tracking, events). The engine discovers it by type assertion once at
// construction — like the origin and event-sink interfaces — and threads a
// persistent per-channel buffer through it, so implementations never
// allocate per trigger. Every built-in prefetcher implements it; Prefetcher
// alone remains sufficient for custom implementations, at the cost of one
// slice allocation per Issue.
type BufferedIssuer interface {
	IssueTo(a Access, dst []addr.BlockNum) []addr.BlockNum
}

// Component is a tournament entrant: a Prefetcher that can additionally
// predict without side effects. Peek appends to dst the blocks the
// component would issue for a and returns the extended slice; it must not
// mutate learned state, statistics or emit events, because the tournament
// calls it on every component for every trigger (shadow evaluation) to
// score the meta-predictor's trust counters. Implementations should treat
// dst as scratch owned by the caller and never retain it.
type Component interface {
	Prefetcher
	Peek(a Access, dst []addr.BlockNum) []addr.BlockNum
}

// None is the no-prefetcher baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// Train implements Prefetcher.
func (None) Train(Access) {}

// Issue implements Prefetcher.
func (None) Issue(Access) []addr.BlockNum { return nil }

// StorageBits implements Prefetcher.
func (None) StorageBits() int { return 0 }

// Reset implements Prefetcher.
func (None) Reset() {}

// Stats counts queue-level prefetch events for one channel.
type Stats struct {
	Candidates uint64 `json:"candidates"` // blocks proposed by the prefetcher
	Filtered   uint64 `json:"filtered"`   // dropped: already resident or in flight
	Issued     uint64 `json:"issued"`     // entered the prefetch queue
	Dropped    uint64 `json:"dropped"`    // queue full
}

// Queue is the bounded prefetch queue between a prefetcher and a DRAM
// channel (Figure 1: "the generated prefetch requests are inserted into the
// prefetch queue"). It deduplicates in-flight targets. The pending entries
// live in a fixed ring and the in-flight set is an open-addressing index,
// so steady-state Push/Pop/Complete never allocate (the old slice-reslice
// pop and map-backed set dominated the engine's allocation profile).
type Queue struct {
	capLimit int
	ring     []addr.BlockNum // fixed ring of capLimit slots
	head     int             // index of the oldest queued target
	count    int             // queued (not yet popped) targets
	inflight *hashidx.U64    // queued + popped-but-not-Completed targets
	stats    Stats
}

// NewQueue builds a queue with the given capacity (≤0 means a default of 32).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = 32
	}
	return &Queue{
		capLimit: capacity,
		ring:     make([]addr.BlockNum, capacity),
		inflight: hashidx.New(2 * capacity),
	}
}

// Stats returns a snapshot of the queue statistics.
func (q *Queue) Stats() Stats { return q.stats }

// ResetStats zeroes the counters without touching queue contents (used to
// discard warmup).
func (q *Queue) ResetStats() { q.stats = Stats{} }

// Len returns the number of queued (not yet popped) targets.
func (q *Queue) Len() int { return q.count }

// Push offers a candidate. resident reports whether the block is already in
// the cache (the engine passes a closure over the channel's cache slice).
// It returns true when the candidate was queued.
func (q *Queue) Push(b addr.BlockNum, resident bool) bool {
	q.stats.Candidates++
	if resident {
		q.stats.Filtered++
		return false
	}
	if _, ok := q.inflight.Get(uint64(b)); ok {
		q.stats.Filtered++
		return false
	}
	if q.count >= q.capLimit {
		q.stats.Dropped++
		return false
	}
	q.ring[(q.head+q.count)%q.capLimit] = b
	q.count++
	q.inflight.Put(uint64(b), 0)
	q.stats.Issued++
	return true
}

// Reject records a candidate refused before reaching the queue (e.g. the
// per-trigger insert bandwidth limit).
func (q *Queue) Reject() {
	q.stats.Candidates++
	q.stats.Dropped++
}

// Pop removes and returns the oldest queued target.
func (q *Queue) Pop() (addr.BlockNum, bool) {
	if q.count == 0 {
		return 0, false
	}
	b := q.ring[q.head]
	q.head = (q.head + 1) % q.capLimit
	q.count--
	return b, true
}

// Complete marks a previously popped target as filled into the cache,
// releasing its in-flight slot.
func (q *Queue) Complete(b addr.BlockNum) {
	q.inflight.Delete(uint64(b))
}

// InFlight reports whether b is queued or outstanding.
func (q *Queue) InFlight(b addr.BlockNum) bool {
	_, ok := q.inflight.Get(uint64(b))
	return ok
}
