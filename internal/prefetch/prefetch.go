package prefetch

import (
	"repro/internal/addr"
)

// Access is one demand access as seen at the system-cache level. There is
// deliberately no program counter: the paper's setting is the memory side,
// where a PC is unavailable (Section 3.2).
type Access struct {
	Block addr.BlockNum // accessed block
	Cycle uint64        // arrival cycle
	Write bool          // write access
	Miss  bool          // missed in the system cache
}

// Page returns the accessed page.
func (a Access) Page() addr.PageNum { return a.Block.Page() }

// Prefetcher is a memory-side prefetcher with decoupled learning and issuing
// phases. Implementations are driven single-threaded per channel.
type Prefetcher interface {
	// Name returns a short mnemonic ("slp", "bop", ...).
	Name() string
	// Train observes a demand access and updates internal pattern state.
	// Every demand access is passed to Train, hits and misses alike.
	Train(a Access)
	// Issue returns the blocks to prefetch in response to a demand
	// access, or nil. The engine calls Issue after Train for the same
	// access. Returned blocks may include already-resident targets; the
	// engine filters them.
	Issue(a Access) []addr.BlockNum
	// StorageBits returns the hardware metadata budget of this
	// prefetcher instance in bits, for the paper's storage accounting.
	StorageBits() int
	// Reset clears all learned state.
	Reset()
}

// Component is a tournament entrant: a Prefetcher that can additionally
// predict without side effects. Peek appends to dst the blocks the
// component would issue for a and returns the extended slice; it must not
// mutate learned state, statistics or emit events, because the tournament
// calls it on every component for every trigger (shadow evaluation) to
// score the meta-predictor's trust counters. Implementations should treat
// dst as scratch owned by the caller and never retain it.
type Component interface {
	Prefetcher
	Peek(a Access, dst []addr.BlockNum) []addr.BlockNum
}

// None is the no-prefetcher baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// Train implements Prefetcher.
func (None) Train(Access) {}

// Issue implements Prefetcher.
func (None) Issue(Access) []addr.BlockNum { return nil }

// StorageBits implements Prefetcher.
func (None) StorageBits() int { return 0 }

// Reset implements Prefetcher.
func (None) Reset() {}

// Stats counts queue-level prefetch events for one channel.
type Stats struct {
	Candidates uint64 `json:"candidates"` // blocks proposed by the prefetcher
	Filtered   uint64 `json:"filtered"`   // dropped: already resident or in flight
	Issued     uint64 `json:"issued"`     // entered the prefetch queue
	Dropped    uint64 `json:"dropped"`    // queue full
}

// Queue is the bounded prefetch queue between a prefetcher and a DRAM
// channel (Figure 1: "the generated prefetch requests are inserted into the
// prefetch queue"). It deduplicates in-flight targets.
type Queue struct {
	capLimit int
	pending  []addr.BlockNum
	inflight map[addr.BlockNum]struct{}
	stats    Stats
}

// NewQueue builds a queue with the given capacity (≤0 means a default of 32).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = 32
	}
	return &Queue{
		capLimit: capacity,
		inflight: make(map[addr.BlockNum]struct{}, capacity),
	}
}

// Stats returns a snapshot of the queue statistics.
func (q *Queue) Stats() Stats { return q.stats }

// ResetStats zeroes the counters without touching queue contents (used to
// discard warmup).
func (q *Queue) ResetStats() { q.stats = Stats{} }

// Len returns the number of queued (not yet popped) targets.
func (q *Queue) Len() int { return len(q.pending) }

// Push offers a candidate. resident reports whether the block is already in
// the cache (the engine passes a closure over the channel's cache slice).
// It returns true when the candidate was queued.
func (q *Queue) Push(b addr.BlockNum, resident bool) bool {
	q.stats.Candidates++
	if resident {
		q.stats.Filtered++
		return false
	}
	if _, ok := q.inflight[b]; ok {
		q.stats.Filtered++
		return false
	}
	if len(q.pending) >= q.capLimit {
		q.stats.Dropped++
		return false
	}
	q.pending = append(q.pending, b)
	q.inflight[b] = struct{}{}
	q.stats.Issued++
	return true
}

// Reject records a candidate refused before reaching the queue (e.g. the
// per-trigger insert bandwidth limit).
func (q *Queue) Reject() {
	q.stats.Candidates++
	q.stats.Dropped++
}

// Pop removes and returns the oldest queued target.
func (q *Queue) Pop() (addr.BlockNum, bool) {
	if len(q.pending) == 0 {
		return 0, false
	}
	b := q.pending[0]
	q.pending = q.pending[1:]
	return b, true
}

// Complete marks a previously popped target as filled into the cache,
// releasing its in-flight slot.
func (q *Queue) Complete(b addr.BlockNum) {
	delete(q.inflight, b)
}

// InFlight reports whether b is queued or outstanding.
func (q *Queue) InFlight(b addr.BlockNum) bool {
	_, ok := q.inflight[b]
	return ok
}
