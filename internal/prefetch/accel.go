package prefetch

import "repro/internal/addr"

// AccelConfig sizes the delta-delta "acceleration" component. The zero
// value of any field selects its default (shown in parentheses).
type AccelConfig struct {
	// Entries is the per-page table size, rounded up to a power of two
	// (128).
	Entries int
	// Degree is how many extrapolation steps Issue takes per trigger (3).
	Degree int
	// MinConf is the number of consecutive confirmations of the same
	// acceleration before predictions are issued (2, of 0..3).
	MinConf int
}

// DefaultAccelConfig returns the configuration used by the built-in
// "accel" prefetcher and the planaria-tournament component.
func DefaultAccelConfig() AccelConfig {
	return AccelConfig{Entries: 128, Degree: 3, MinConf: 2}
}

// accelEntry tracks one page's first- and second-order access deltas.
type accelEntry struct {
	page    addr.PageNum
	lastOff int
	delta   int  // last observed first-order delta
	accel   int  // last observed delta-of-deltas
	conf    int  // consecutive confirmations of accel, saturating at 3
	primed  bool // delta holds a real observation (two accesses seen)
	valid   bool
}

// Accel is a PC-free delta-delta ("acceleration") prefetcher: per page it
// tracks the first-order segment-offset delta and the second-order delta
// (how the delta itself changes), and once the acceleration has repeated
// MinConf times it extrapolates the arithmetically accelerating sequence
// Degree steps ahead. With acceleration 0 it behaves like a confirmed
// stride predictor; with nonzero acceleration it covers growing or
// shrinking sweeps (0,1,3,6,10... triangular walks) that defeat both
// Stride and order-1 Markov tables.
type Accel struct {
	cfg   AccelConfig
	table []accelEntry

	issues uint64
}

// NewAccel builds an Accel component; zero config fields take defaults.
func NewAccel(cfg AccelConfig) *Accel {
	if cfg.Entries <= 0 {
		cfg.Entries = 128
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 3
	}
	if cfg.MinConf <= 0 {
		cfg.MinConf = 2
	}
	cfg.Entries = ceilPow2(cfg.Entries)
	return &Accel{cfg: cfg, table: make([]accelEntry, cfg.Entries)}
}

// Name implements Prefetcher.
func (p *Accel) Name() string { return "accel" }

// Reset implements Prefetcher.
func (p *Accel) Reset() {
	for i := range p.table {
		p.table[i] = accelEntry{}
	}
	p.issues = 0
}

func (p *Accel) slot(page addr.PageNum) *accelEntry {
	return &p.table[uint64(page)&uint64(len(p.table)-1)]
}

// Train implements Prefetcher: fold the access into the page's first- and
// second-order delta state.
func (p *Accel) Train(a Access) {
	e := p.slot(a.Page())
	off := a.Block.SegOffset()
	if !e.valid || e.page != a.Page() {
		*e = accelEntry{page: a.Page(), lastOff: off, valid: true}
		return
	}
	d := off - e.lastOff
	if d == 0 {
		return
	}
	if e.primed {
		acc := d - e.delta
		if acc == e.accel {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			e.accel = acc
			e.conf = 0
		}
	}
	e.delta = d
	e.primed = true
	e.lastOff = off
}

// Issue implements Prefetcher.
func (p *Accel) Issue(a Access) []addr.BlockNum {
	return p.IssueTo(a, nil)
}

// IssueTo implements BufferedIssuer.
func (p *Accel) IssueTo(a Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	out := p.Peek(a, dst)
	if len(out) > len(dst) {
		p.issues++
	}
	return out
}

// Peek implements Component: extrapolate the accelerating sequence from the
// trigger offset without mutating the table.
func (p *Accel) Peek(a Access, dst []addr.BlockNum) []addr.BlockNum {
	e := p.slot(a.Page())
	if !e.valid || e.page != a.Page() || !e.primed || e.conf < p.cfg.MinConf {
		return dst
	}
	d := e.delta + e.accel
	if d == 0 && e.accel == 0 {
		return dst
	}
	page := a.Page()
	ch := a.Block.Channel()
	off := a.Block.SegOffset()
	for i := 0; i < p.cfg.Degree; i++ {
		off += d
		if off < 0 || off >= addr.SegmentBlocks {
			break
		}
		dst = append(dst, page.Block(addr.OffsetOf(ch, off)))
		d += e.accel
		if d == 0 {
			break // sequence stalled; further targets would repeat
		}
	}
	return dst
}

// Issues returns the number of Issue calls that produced predictions.
func (p *Accel) Issues() uint64 { return p.issues }

// StorageBits implements Prefetcher: page tag (36) + offset (4) + delta (5)
// + acceleration (6) + confidence (2) + primed (1) + valid (1) per entry.
func (p *Accel) StorageBits() int { return len(p.table) * (36 + 4 + 5 + 6 + 2 + 1 + 1) }
