// Package prefetch defines the prefetcher abstraction shared by Planaria and
// the baseline prefetchers, the bounded prefetch queue that feeds the DRAM
// controllers, and the tournament layer that arbitrates between multiple
// prefetcher components with a learned meta-predictor.
//
// # Components
//
// The central idea, taken from the paper's coordinator (Section 2), is that
// learning and issuing are separate operations: Train observes every demand
// access ("full-pattern directed" learning), while Issue is invoked
// selectively and returns the blocks to prefetch. Monolithic prefetchers
// simply do their bookkeeping in Train and their prediction in Issue. That
// contract is the Prefetcher interface; everything the engine drives — the
// Planaria composite, the BOP/SPP baselines, NextLine, Stride, and the
// tournament itself — implements it.
//
// Component extends Prefetcher with Peek, a side-effect-free prediction
// probe. Peek is what makes a prefetcher eligible for the tournament: the
// meta-predictor scores every component on every trigger by shadow
// evaluation (would this component have covered that miss?), which requires
// asking components what they would prefetch without letting the question
// disturb their learned state or statistics.
//
// The PC-free delta-family components defined here are:
//
//   - Stride (simple.go): per-page constant segment-offset stride with a
//     per-entry confirmation counter.
//   - Markov (markov.go): order-N delta-history prediction — a hashed
//     signature of the last N per-page deltas indexes a pattern table of
//     next-delta predictions with 2-bit confidence counters.
//   - Accel (accel.go): delta-delta "acceleration" — extrapolates
//     arithmetically accelerating per-page access sequences (delta grows or
//     shrinks by a constant each step).
//
// # Tournament and meta-predictor
//
// Tournament (tournament.go) composes N components. Every component trains
// on every access (the paper's decoupled "parallel training" generalised to
// N ways); exactly one issues per trigger ("serial issuing"). Which one is
// decided by Meta (meta.go), a per-page-region selector with set-dueling
// leader regions modelled on the DRRIP machinery in internal/cache: a fixed
// 1-in-LeaderMod slice of regions is permanently assigned to each component
// (forced exploration), follower regions go to the component with the best
// learned trust counters, and ties fall back to the fixed priority order —
// component 0 first, which preserves the paper's SLP-priority rule when the
// composite is component 0. Feedback comes from per-component shadow
// filters: a demand miss on a block a component recently predicted rewards
// it in that region; overwriting a never-consumed prediction penalises it.
//
// With no extra components registered the tournament degenerates to "always
// component 0" and the engine's reports are bit-identical to running the
// component bare (pinned by TestTournamentTransparency in internal/sim).
//
// Algorithms, table geometries, StorageBits budgets and tuning knobs for
// every component are documented in docs/PREFETCHERS.md.
package prefetch
