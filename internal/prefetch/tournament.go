package prefetch

import (
	"repro/internal/addr"
	"repro/internal/events"
	"repro/internal/telemetry"
)

// TournamentConfig parameterises a Tournament. The zero value of any field
// selects its default.
type TournamentConfig struct {
	// Name labels the tournament instance in reports ("tournament" when
	// empty; the built-in registry uses "planaria-tournament").
	Name string
	// Meta configures the set-dueling meta-predictor.
	Meta MetaConfig
	// FilterEntries is the per-component shadow-filter size, rounded up
	// to a power of two (512). The filter remembers each component's
	// recent predictions so the meta-predictor can score them against
	// subsequent demand misses.
	FilterEntries int
}

// filterEntry is one shadow-filter slot: a recently predicted block and
// whether a demand access has consumed (validated) the prediction.
type filterEntry struct {
	block    addr.BlockNum
	valid    bool
	consumed bool
}

// shadowFilter is a direct-mapped table of one component's recent
// predictions. It exists purely to generate meta-predictor feedback; it
// holds no prefetched data and never touches the cache.
type shadowFilter struct {
	entries []filterEntry
	mask    uint64
}

func newShadowFilter(n int) shadowFilter {
	n = ceilPow2(n)
	return shadowFilter{entries: make([]filterEntry, n), mask: uint64(n - 1)}
}

// consume marks the prediction for b validated, reporting whether an
// unconsumed prediction was present.
func (f *shadowFilter) consume(b addr.BlockNum) bool {
	e := &f.entries[uint64(b)&f.mask]
	if e.valid && e.block == b && !e.consumed {
		e.consumed = true
		return true
	}
	return false
}

// insert records a prediction. When it overwrites a different, never
// consumed prediction, the evicted block is returned so the caller can
// penalise the component (a would-be wasted prefetch aged out unproven).
func (f *shadowFilter) insert(b addr.BlockNum) (evicted addr.BlockNum, penalty bool) {
	e := &f.entries[uint64(b)&f.mask]
	if e.valid && e.block == b {
		return 0, false // re-predicted: keep the consumed state as is
	}
	evicted, penalty = e.block, e.valid && !e.consumed
	*e = filterEntry{block: b, valid: true}
	return evicted, penalty
}

func (f *shadowFilter) reset() {
	for i := range f.entries {
		f.entries[i] = filterEntry{}
	}
}

// Tournament composes N prefetcher components under a learned selector: all
// components train on every demand access (the paper's decoupled "parallel
// training" generalised to N ways) and exactly one issues per trigger
// ("serial issuing"), chosen by the set-dueling Meta predictor per page
// region. A selected component with nothing to issue falls through the
// fixed priority order — component 0 first — so with the Planaria composite
// as component 0 the paper's SLP-priority rule is the standing fallback,
// and with no extra components the tournament is behaviourally identical to
// running the composite bare (pinned by TestTournamentTransparency).
//
// Feedback is self-contained: every component's would-be predictions enter
// its shadow filter on each trigger (Peek — no state disturbed), a later
// demand miss on a filtered block rewards the component in that region, and
// predictions that age out of the filter unproven penalise it. No engine
// callback is needed, so the Tournament plugs into the simulator like any
// other Prefetcher.
type Tournament struct {
	cfg     TournamentConfig
	comps   []Component
	meta    *Meta
	filters []shadowFilter

	// scratch is the reusable Peek buffer (shadow evaluation must not
	// allocate per trigger).
	scratch []addr.BlockNum

	// issuesBy counts triggers answered per component (the Figure 9
	// style breakdown input).
	issuesBy []uint64

	// lastOrigin is the origin name of the component that answered the
	// most recent Issue, for the engine's attribution path; components
	// that are themselves composites (Planaria) are deferred to, so SLP
	// vs TLP attribution survives inside a tournament.
	lastOrigin string

	// sink receives arbitration events; nil when tracing is disabled.
	sink events.Sink

	// wins/scores are the live telemetry instruments (one per component),
	// nil when telemetry is disabled — the hot path pays one nil check per
	// winning trigger. See SetTelemetry.
	wins   []*telemetry.Counter
	scores []*telemetry.Gauge
}

// subOrigin is implemented by composite components (the Planaria
// coordinator) that attribute issues to an inner sub-prefetcher.
type subOrigin interface{ Origin() string }

// eventSinkSetter mirrors the engine-side discovery interface: components
// that emit their own decision events get the tournament's sink installed.
type eventSinkSetter interface{ SetEventSink(events.Sink) }

// NewTournament builds a tournament over the given components. Component 0
// is the priority/fallback component (the Planaria composite in the
// built-in registry). It panics when no components are given
// (construction-time programming error, per the package contract).
func NewTournament(cfg TournamentConfig, comps ...Component) *Tournament {
	if len(comps) == 0 {
		panic("prefetch: NewTournament needs at least one component")
	}
	if cfg.Name == "" {
		cfg.Name = "tournament"
	}
	if cfg.FilterEntries <= 0 {
		cfg.FilterEntries = 512
	}
	t := &Tournament{
		cfg:      cfg,
		comps:    comps,
		meta:     NewMeta(len(comps), cfg.Meta),
		filters:  make([]shadowFilter, len(comps)),
		issuesBy: make([]uint64, len(comps)),
	}
	for i := range t.filters {
		t.filters[i] = newShadowFilter(cfg.FilterEntries)
	}
	return t
}

// Name implements Prefetcher.
func (t *Tournament) Name() string { return t.cfg.Name }

// Meta exposes the selector (tests, analysis, the debug endpoint).
func (t *Tournament) Meta() *Meta { return t.meta }

// Components returns the component list in priority order.
func (t *Tournament) Components() []Component { return t.comps }

// IssuesByComponent returns how many triggers each component answered,
// keyed by component name.
func (t *Tournament) IssuesByComponent() map[string]uint64 {
	out := make(map[string]uint64, len(t.comps))
	for i, c := range t.comps {
		out[c.Name()] = t.issuesBy[i]
	}
	return out
}

// SetEventSink installs the decision-event sink on the tournament and every
// component that emits events (nil disables tracing).
func (t *Tournament) SetEventSink(s events.Sink) {
	t.sink = s
	for _, c := range t.comps {
		if es, ok := c.(eventSinkSetter); ok {
			es.SetEventSink(s)
		}
	}
}

// Origin reports the origin name of the component that answered the most
// recent Issue call ("" when none did). The engine uses it to attribute
// prefetch lifecycles per component in the event/attribution path.
func (t *Tournament) Origin() string { return t.lastOrigin }

// SetTelemetry registers the tournament's live instruments on reg — a
// wins counter and a selector-score (PSEL-style) gauge per component,
// labelled component=<name> plus whatever unit labels the engine passes —
// or removes them when reg is nil. Called at engine construction when
// telemetry is enabled (internal/telemetry).
func (t *Tournament) SetTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		t.wins, t.scores = nil, nil
		return
	}
	t.wins = make([]*telemetry.Counter, len(t.comps))
	t.scores = make([]*telemetry.Gauge, len(t.comps))
	for i, c := range t.comps {
		ls := make([]telemetry.Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, telemetry.Label{Key: "component", Value: c.Name()})
		t.wins[i] = reg.Counter("planaria_tournament_wins_total",
			"Triggers answered per tournament component.", ls...)
		t.scores[i] = reg.Gauge("planaria_tournament_score",
			"Live global (PSEL-style) selector score per tournament component.", ls...)
	}
}

// Reset implements Prefetcher.
func (t *Tournament) Reset() {
	for _, c := range t.comps {
		c.Reset()
	}
	t.meta.Reset()
	for i := range t.filters {
		t.filters[i].reset()
	}
	for i := range t.issuesBy {
		t.issuesBy[i] = 0
	}
	t.lastOrigin = ""
}

// Train implements Prefetcher: first settle shadow-filter feedback for this
// access (a miss on a predicted block rewards its predictor in this
// region), then train every component — full-pattern directed learning, N
// ways.
func (t *Tournament) Train(a Access) {
	region := t.meta.Region(a.Page())
	for c := range t.comps {
		if t.filters[c].consume(a.Block) && a.Miss {
			// The component predicted this block and the demand still
			// missed: issuing its prediction would have covered the
			// miss. (On a hit the prediction was redundant — consumed
			// without credit.)
			t.meta.Reward(region, c)
		}
	}
	for _, c := range t.comps {
		c.Train(a)
	}
}

// Issue implements Prefetcher: consult the meta-predictor for the trigger's
// region, let the chosen component issue, and fall through the fixed
// priority order when it has nothing. Every component's would-be
// predictions are then recorded in its shadow filter for scoring.
func (t *Tournament) Issue(a Access) []addr.BlockNum {
	return t.IssueTo(a, nil)
}

// issueComp lets component c issue into dst: through its BufferedIssuer
// fast path when implemented (all built-ins), otherwise by copying its
// Issue result (custom Components registered via the public API).
func issueComp(c Component, a Access, dst []addr.BlockNum) []addr.BlockNum {
	if bi, ok := c.(BufferedIssuer); ok {
		return bi.IssueTo(a, dst)
	}
	return append(dst, c.Issue(a)...)
}

// IssueTo implements BufferedIssuer; the engine's persistent per-channel
// buffer flows through the winning component, so a steady-state tournament
// trigger allocates nothing.
func (t *Tournament) IssueTo(a Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	region := t.meta.Region(a.Page())
	selected, leader := t.meta.Select(region)

	base := len(dst)
	winner := -1
	if dst = issueComp(t.comps[selected], a, dst); len(dst) > base {
		winner = selected
	} else {
		for c := range t.comps {
			if c == selected {
				continue
			}
			if dst = issueComp(t.comps[c], a, dst); len(dst) > base {
				winner = c
				break
			}
		}
	}
	out := dst[base:]

	// Shadow bookkeeping: what each component would have issued here.
	// The winner's actual candidates stand in for its Peek.
	for c := range t.comps {
		preds := t.scratch[:0]
		if c == winner {
			preds = out
		} else {
			preds = t.comps[c].Peek(a, preds)
			t.scratch = preds[:0]
		}
		for _, b := range preds {
			if evicted, penalty := t.filters[c].insert(b); penalty {
				t.meta.Penalize(t.meta.Region(evicted.Page()), c)
			}
		}
	}

	if winner < 0 {
		t.lastOrigin = ""
		return dst
	}
	t.issuesBy[winner]++
	if t.wins != nil {
		t.wins[winner].Inc()
		for c := range t.scores {
			t.scores[c].Set(int64(t.meta.Score(c)))
		}
	}
	t.lastOrigin = t.comps[winner].Name()
	if so, ok := t.comps[winner].(subOrigin); ok {
		if o := so.Origin(); o != "" {
			t.lastOrigin = o
		}
	}
	if t.sink != nil {
		reason := events.ReasonMetaFallback
		if winner == selected {
			if leader {
				reason = events.ReasonLeaderRegion
			} else {
				reason = events.ReasonMetaTrust
			}
		}
		t.sink.Emit(events.Event{
			Kind: events.KindArbitration, Cycle: a.Cycle, Block: a.Block,
			Origin: events.OriginFromName(t.lastOrigin), Reason: reason,
			N: uint16(len(out)),
		})
	}
	return dst
}

// Peek implements Component, so tournaments compose: the selected
// component's prediction, falling through the priority order, with no state
// disturbed anywhere.
func (t *Tournament) Peek(a Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	selected, _ := t.meta.Select(t.meta.Region(a.Page()))
	if out := t.comps[selected].Peek(a, dst); len(out) > len(dst) {
		return out
	}
	for c := range t.comps {
		if c == selected {
			continue
		}
		if out := t.comps[c].Peek(a, dst); len(out) > len(dst) {
			return out
		}
	}
	return dst
}

// StorageBits implements Prefetcher: the components' own budgets plus the
// tournament's metadata — the meta-predictor's counters and one shadow
// filter per component (block tag above the index bits, a valid bit and a
// consumed bit per slot).
func (t *Tournament) StorageBits() int {
	bits := t.meta.StorageBits()
	for _, c := range t.comps {
		bits += c.StorageBits()
	}
	// Block numbers carry a 36-bit page number plus the 6-bit in-page
	// offset; the filter index consumes log2(entries) of that.
	tag := 42 - log2i(len(t.filters[0].entries))
	if tag < 0 {
		tag = 0
	}
	bits += len(t.comps) * len(t.filters[0].entries) * (tag + 2)
	return bits
}

// Interface conformance checks.
var (
	_ Prefetcher     = (*Tournament)(nil)
	_ Component      = (*Tournament)(nil)
	_ Component      = (*Stride)(nil)
	_ Component      = (*NextLine)(nil)
	_ Component      = (*Markov)(nil)
	_ Component      = (*Accel)(nil)
	_ BufferedIssuer = (*Tournament)(nil)
	_ BufferedIssuer = (*Stride)(nil)
	_ BufferedIssuer = (*NextLine)(nil)
	_ BufferedIssuer = (*Markov)(nil)
	_ BufferedIssuer = (*Accel)(nil)
)
