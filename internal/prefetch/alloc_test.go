package prefetch

import (
	"testing"

	"repro/internal/addr"
)

// Steady-state allocation gates for the baseline components and the
// tournament: once warm, Train and IssueTo (with a reused buffer) allocate
// nothing. Strict zero — the queue's in-flight set, the tournament's
// shadow filters and every component table are fixed-footprint, so any
// allocation here is a regression.

// churnComp drives c through a deterministic access mix (strided pages
// with repeats, so stride/markov/accel all lock on) reusing dst.
func churnComp(c Component, rounds int, dst []addr.BlockNum) []addr.BlockNum {
	cycle := uint64(0)
	for r := 0; r < rounds; r++ {
		for i := 0; i < 200; i++ {
			p := addr.PageNum(0x40 + (i%23)*2)
			a := Access{
				Block: p.Block(addr.OffsetOf(i%addr.Channels, (i*3)%addr.SegmentBlocks)),
				Cycle: cycle,
				Miss:  true,
			}
			c.Train(a)
			if bi, ok := c.(BufferedIssuer); ok {
				dst = bi.IssueTo(a, dst[:0])
			} else {
				c.Issue(a)
			}
			cycle += 11
		}
	}
	return dst
}

func TestComponentSteadyStateAllocs(t *testing.T) {
	comps := map[string]Component{
		"nextline":   NewNextLine(2),
		"stride":     NewStride(256, 2),
		"markov":     NewMarkov(DefaultMarkovConfig()),
		"accel":      NewAccel(DefaultAccelConfig()),
		"tournament": NewTournament(TournamentConfig{}, NewStride(256, 2), NewMarkov(DefaultMarkovConfig()), NewAccel(DefaultAccelConfig())),
	}
	for name, c := range comps {
		dst := churnComp(c, 5, make([]addr.BlockNum, 0, 64))
		if avg := testing.AllocsPerRun(20, func() { dst = churnComp(c, 1, dst) }); avg != 0 {
			t.Errorf("%s: %.1f allocs per warm round, want 0", name, avg)
		}
	}
}

// TestQueueSteadyStateAllocs pins the prefetch queue's fixed footprint:
// push/pop/complete churn far past the capacity allocates nothing once the
// ring and the in-flight index are built.
func TestQueueSteadyStateAllocs(t *testing.T) {
	q := NewQueue(64)
	blk := func(i int) addr.BlockNum { return addr.PageNum(uint64(i % 97)).Block(i % 64) }
	churn := func() {
		for i := 0; i < 500; i++ {
			q.Push(blk(i), false)
			if b, ok := q.Pop(); ok {
				q.Complete(b)
			}
		}
	}
	churn()
	if avg := testing.AllocsPerRun(20, churn); avg != 0 {
		t.Errorf("queue churn: %.1f allocs per round, want 0", avg)
	}
}
