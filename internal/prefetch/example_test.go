package prefetch_test

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/prefetch"
)

// echo is a minimal custom component: on every miss it predicts the next
// block of the segment. Peek carries the whole prediction (it must be free
// of side effects); Issue simply reuses it.
type echo struct{}

func (echo) Name() string          { return "echo" }
func (echo) Train(prefetch.Access) {}
func (echo) StorageBits() int      { return 0 }
func (echo) Reset()                {}

func (e echo) Issue(a prefetch.Access) []addr.BlockNum {
	return e.Peek(a, nil)
}

func (echo) Peek(a prefetch.Access, dst []addr.BlockNum) []addr.BlockNum {
	off := a.Block.SegOffset()
	if !a.Miss || off+1 >= addr.SegmentBlocks {
		return dst
	}
	return append(dst, a.Page().Block(addr.OffsetOf(a.Block.Channel(), off+1)))
}

// ExampleNewTournament registers a custom component in a tournament next to
// a built-in one. Component 0 (here the stride predictor) is the priority
// fallback; the stride table is cold, so the trigger falls through to the
// custom component.
func ExampleNewTournament() {
	tour := prefetch.NewTournament(
		prefetch.TournamentConfig{},
		prefetch.NewStride(64, 2), // component 0: priority/fallback
		echo{},                    // custom entrant
	)
	a := prefetch.Access{
		Block: addr.PageNum(3).Block(addr.OffsetOf(0, 4)),
		Miss:  true,
	}
	tour.Train(a)
	targets := tour.Issue(a)
	fmt.Printf("%s issued %d block(s) at offset %d via %s\n",
		tour.Name(), len(targets), targets[0].SegOffset(), tour.Origin())
	// Output: tournament issued 1 block(s) at offset 5 via echo
}
