package core

import (
	"testing"

	"repro/internal/addr"
)

// buildPlanaria trains a Planaria instance so that page slpPage has an SLP
// snapshot and page tlpPage only has a TLP neighbour (0x100-based cluster).
func buildPlanaria(mode CoordMode) (*Planaria, addr.PageNum, addr.PageNum, uint64) {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.SLP.Timeout = 100
	p := New(cfg)
	slpPage := addr.PageNum(0x5000)
	cycle := uint64(0)
	for _, o := range []int{1, 4, 7, 9} {
		p.Train(acc(slpPage, 0, o, cycle, true))
		cycle += 5
	}
	// Expire the snapshot into the PT with sweep traffic far away.
	cycle += 200
	for i := 0; i < 200; i++ {
		p.Train(acc(addr.PageNum(0x9000)+addr.PageNum(i), 0, i%16, cycle, true))
		cycle++
	}
	// TLP cluster: neighbour with a rich footprint, then the target page
	// sharing part of it.
	nb := addr.PageNum(0x100)
	tgt := addr.PageNum(0x104)
	for _, o := range []int{1, 2, 3, 4, 5, 6} {
		p.Train(acc(nb, 0, o, cycle, true))
		cycle++
	}
	for _, o := range []int{1, 2, 3, 4} {
		p.Train(acc(tgt, 0, o, cycle, true))
		cycle++
	}
	return p, slpPage, tgt, cycle
}

func TestCoordinatorPrefersSLP(t *testing.T) {
	p, slpPage, _, cycle := buildPlanaria(Decoupled)
	got := p.Issue(acc(slpPage, 0, 4, cycle, true))
	if len(got) == 0 {
		t.Fatal("no prefetches for SLP-covered page")
	}
	slp, tlp := p.IssueShare()
	if slp != 1 || tlp != 0 {
		t.Fatalf("issue share slp=%d tlp=%d, want 1/0", slp, tlp)
	}
}

func TestCoordinatorFallsBackToTLP(t *testing.T) {
	p, _, tgt, cycle := buildPlanaria(Decoupled)
	got := p.Issue(acc(tgt, 0, 3, cycle, true))
	if len(got) == 0 {
		t.Fatal("no prefetches for TLP-covered page")
	}
	slp, tlp := p.IssueShare()
	if tlp != 1 {
		t.Fatalf("issue share slp=%d tlp=%d, want TLP to answer", slp, tlp)
	}
	// Targets must be the neighbour's surplus blocks on the target page.
	for _, b := range got {
		if b.Page() != tgt {
			t.Fatalf("target %v not on the triggering page", b)
		}
	}
}

func TestCoordinatorNoIssueOnHit(t *testing.T) {
	p, slpPage, _, cycle := buildPlanaria(Decoupled)
	if got := p.Issue(acc(slpPage, 0, 4, cycle, false)); got != nil {
		t.Fatalf("issued %v on a hit", got)
	}
}

func TestDisableSLPGivesPureTLP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableSLP = true
	p := New(cfg)
	if p.Name() != "planaria-tlp" {
		t.Fatalf("name = %q", p.Name())
	}
	cycle := uint64(0)
	for _, o := range []int{1, 2, 3, 4, 5, 6} {
		p.Train(acc(0x100, 0, o, cycle, true))
		cycle++
	}
	for _, o := range []int{1, 2, 3, 4} {
		p.Train(acc(0x104, 0, o, cycle, true))
		cycle++
	}
	got := p.Issue(acc(0x104, 0, 4, cycle, true))
	if len(got) == 0 {
		t.Fatal("TLP-only issued nothing")
	}
	slp, _ := p.IssueShare()
	if slp != 0 {
		t.Fatal("SLP issued while disabled")
	}
}

func TestDisableTLPGivesPureSLP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableTLP = true
	cfg.SLP.Timeout = 100
	p := New(cfg)
	if p.Name() != "planaria-slp" {
		t.Fatalf("name = %q", p.Name())
	}
	// TLP-style trigger must yield nothing.
	cycle := uint64(0)
	for _, o := range []int{1, 2, 3, 4, 5, 6} {
		p.Train(acc(0x100, 0, o, cycle, true))
		cycle++
	}
	for _, o := range []int{1, 2, 3} {
		p.Train(acc(0x104, 0, o, cycle, true))
		cycle++
	}
	if got := p.Issue(acc(0x104, 0, 3, cycle, true)); got != nil {
		t.Fatalf("TLP issued %v while disabled", got)
	}
}

func TestParallelModeUnionsAndDedups(t *testing.T) {
	p, _, tgt, cycle := buildPlanaria(Parallel)
	got := p.Issue(acc(tgt, 0, 3, cycle, true))
	seen := map[addr.BlockNum]bool{}
	for _, b := range got {
		if seen[b] {
			t.Fatalf("duplicate target %v in parallel mode", b)
		}
		seen[b] = true
	}
}

func TestSerialModeBlindsIdleSubPrefetcher(t *testing.T) {
	// In Serial (monolithic) mode, pages without SLP metadata train only
	// TLP and vice versa; the SLP therefore never learns pages it did not
	// already know — here no page has SLP metadata initially, so SLP
	// never accumulates anything.
	cfg := DefaultConfig()
	cfg.Mode = Serial
	p := New(cfg)
	cycle := uint64(0)
	for _, o := range []int{1, 2, 3, 4, 5} {
		p.Train(acc(0x100, 0, o, cycle, true))
		cycle++
	}
	promos, _, _ := p.SLP().Counters()
	if promos != 0 {
		t.Fatalf("serial coordinator trained SLP on an uncovered page (%d promotions)", promos)
	}
	// Decoupled mode trains SLP on the same stream.
	p2 := New(DefaultConfig())
	cycle = 0
	for _, o := range []int{1, 2, 3, 4, 5} {
		p2.Train(acc(0x100, 0, o, cycle, true))
		cycle++
	}
	promos, _, _ = p2.SLP().Counters()
	if promos == 0 {
		t.Fatal("decoupled coordinator did not train SLP")
	}
}

func TestModeString(t *testing.T) {
	if Decoupled.String() != "decoupled" || Serial.String() != "serial" || Parallel.String() != "parallel" {
		t.Fatal("mode strings")
	}
	if New(DefaultConfig()).Name() != "planaria" {
		t.Fatal("default name")
	}
	cfg := DefaultConfig()
	cfg.Mode = Parallel
	if New(cfg).Name() != "planaria-parallel" {
		t.Fatal("parallel name")
	}
}

func TestPlanariaReset(t *testing.T) {
	p, slpPage, _, cycle := buildPlanaria(Decoupled)
	p.Reset()
	if got := p.Issue(acc(slpPage, 0, 4, cycle, true)); got != nil {
		t.Fatalf("issued %v after Reset", got)
	}
	slp, tlp := p.IssueShare()
	if slp != 0 || tlp != 0 {
		t.Fatal("issue share survived Reset")
	}
}

func TestStorageBitsComposition(t *testing.T) {
	p := New(DefaultConfig())
	if p.StorageBits() != p.SLP().StorageBits()+p.TLP().StorageBits() {
		t.Fatal("storage not the sum of sub-prefetchers")
	}
}
