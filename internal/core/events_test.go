package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/events"
)

// captureSink records every emitted event for inspection.
type captureSink struct{ evs []events.Event }

func (c *captureSink) Emit(ev events.Event) { c.evs = append(c.evs, ev) }

func (c *captureSink) byKind(k events.Kind) []events.Event {
	var out []events.Event
	for _, ev := range c.evs {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// lastArbitration returns the most recent arbitration event, failing the
// test when none was emitted.
func lastArbitration(t *testing.T, c *captureSink) events.Event {
	t.Helper()
	arbs := c.byKind(events.KindArbitration)
	if len(arbs) == 0 {
		t.Fatal("no arbitration event emitted")
	}
	return arbs[len(arbs)-1]
}

func TestArbitrationSLPPriority(t *testing.T) {
	p, slpPage, _, cycle := buildPlanaria(Decoupled)
	sink := &captureSink{}
	p.SetEventSink(sink)
	got := p.Issue(acc(slpPage, 0, 4, cycle, true))
	if len(got) == 0 {
		t.Fatal("SLP-covered page issued nothing")
	}
	arb := lastArbitration(t, sink)
	if arb.Origin != events.OriginSLP || arb.Reason != events.ReasonSLPPriority {
		t.Fatalf("arbitration = origin %v reason %v, want slp/slp-priority", arb.Origin, arb.Reason)
	}
	if int(arb.N) != len(got) {
		t.Fatalf("candidate count N=%d, issued %d", arb.N, len(got))
	}
	if arb.Cycle != cycle {
		t.Fatalf("arbitration cycle %d, trigger at %d", arb.Cycle, cycle)
	}
}

func TestArbitrationNoMetadataFallsToTLP(t *testing.T) {
	p, _, tgt, cycle := buildPlanaria(Decoupled)
	sink := &captureSink{}
	p.SetEventSink(sink)
	got := p.Issue(acc(tgt, 0, 3, cycle, true))
	if len(got) == 0 {
		t.Fatal("TLP-covered page issued nothing")
	}
	arb := lastArbitration(t, sink)
	if arb.Origin != events.OriginTLP || arb.Reason != events.ReasonNoMetadata {
		t.Fatalf("arbitration = origin %v reason %v, want tlp/no-metadata", arb.Origin, arb.Reason)
	}
}

func TestArbitrationReasonDisabledTLP(t *testing.T) {
	// SLP wins while TLP is configured off: the suppression reason must say
	// "disabled", not "slp-priority" — there was no contest.
	cfg := DefaultConfig()
	cfg.DisableTLP = true
	cfg.SLP.Timeout = 100
	p := New(cfg)
	sink := &captureSink{}
	p.SetEventSink(sink)
	slpPage := addr.PageNum(0x5000)
	cycle := uint64(0)
	for _, o := range []int{1, 4, 7, 9} {
		p.Train(acc(slpPage, 0, o, cycle, true))
		cycle += 5
	}
	cycle += 200
	for i := 0; i < 200; i++ {
		p.Train(acc(addr.PageNum(0x9000)+addr.PageNum(i), 0, i%16, cycle, true))
		cycle++
	}
	if got := p.Issue(acc(slpPage, 0, 4, cycle, true)); len(got) == 0 {
		t.Fatal("SLP-only issued nothing")
	}
	arb := lastArbitration(t, sink)
	if arb.Origin != events.OriginSLP || arb.Reason != events.ReasonDisabled {
		t.Fatalf("arbitration = origin %v reason %v, want slp/disabled", arb.Origin, arb.Reason)
	}
}

func TestArbitrationReasonDisabledSLP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableSLP = true
	p := New(cfg)
	sink := &captureSink{}
	p.SetEventSink(sink)
	cycle := uint64(0)
	for _, o := range []int{1, 2, 3, 4, 5, 6} {
		p.Train(acc(0x100, 0, o, cycle, true))
		cycle++
	}
	for _, o := range []int{1, 2, 3, 4} {
		p.Train(acc(0x104, 0, o, cycle, true))
		cycle++
	}
	if got := p.Issue(acc(0x104, 0, 4, cycle, true)); len(got) == 0 {
		t.Fatal("TLP-only issued nothing")
	}
	arb := lastArbitration(t, sink)
	if arb.Origin != events.OriginTLP || arb.Reason != events.ReasonDisabled {
		t.Fatalf("arbitration = origin %v reason %v, want tlp/disabled", arb.Origin, arb.Reason)
	}
}

func TestNoArbitrationWithoutIssue(t *testing.T) {
	p, slpPage, _, cycle := buildPlanaria(Decoupled)
	sink := &captureSink{}
	p.SetEventSink(sink)
	// A hit never arbitrates; neither does a miss on an unknown page when
	// TLP finds no neighbour.
	p.Issue(acc(slpPage, 0, 4, cycle, false))
	p.Issue(acc(addr.PageNum(0xdead0), 0, 0, cycle, true))
	if arbs := sink.byKind(events.KindArbitration); len(arbs) != 0 {
		t.Fatalf("%d arbitration events for triggers that issued nothing", len(arbs))
	}
}

func TestSLPLearningEvents(t *testing.T) {
	// Train an SLP footprint with the sink attached from the start: the
	// filter-table promotion and the snapshot retirement into the PT must
	// both surface as learning events carrying the page number.
	cfg := DefaultConfig()
	cfg.SLP.Timeout = 100
	p := New(cfg)
	sink := &captureSink{}
	p.SetEventSink(sink)
	slpPage := addr.PageNum(0x5000)
	cycle := uint64(0)
	for _, o := range []int{1, 4, 7, 9} {
		p.Train(acc(slpPage, 0, o, cycle, true))
		cycle += 5
	}
	cycle += 200
	for i := 0; i < 200; i++ {
		p.Train(acc(addr.PageNum(0x9000)+addr.PageNum(i), 0, i%16, cycle, true))
		cycle++
	}
	promotes := sink.byKind(events.KindSLPPromote)
	if len(promotes) == 0 {
		t.Fatal("no slp-promote event")
	}
	found := false
	for _, ev := range promotes {
		if ev.Aux == uint64(slpPage) {
			found = true
			if ev.Origin != events.OriginSLP {
				t.Fatalf("promote origin %v", ev.Origin)
			}
		}
	}
	if !found {
		t.Fatalf("no promote for page %#x (got %v)", uint64(slpPage), promotes)
	}
	snaps := sink.byKind(events.KindSLPSnapshot)
	found = false
	for _, ev := range snaps {
		if ev.Aux == uint64(slpPage) {
			found = true
			if ev.N == 0 {
				t.Fatal("snapshot with an empty footprint bit count")
			}
		}
	}
	if !found {
		t.Fatalf("no snapshot for page %#x", uint64(slpPage))
	}
}

func TestTLPNeighborEvent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableSLP = true
	p := New(cfg)
	sink := &captureSink{}
	p.SetEventSink(sink)
	nb, tgt := addr.PageNum(0x100), addr.PageNum(0x104)
	cycle := uint64(0)
	for _, o := range []int{1, 2, 3, 4, 5, 6} {
		p.Train(acc(nb, 0, o, cycle, true))
		cycle++
	}
	for _, o := range []int{1, 2, 3, 4} {
		p.Train(acc(tgt, 0, o, cycle, true))
		cycle++
	}
	got := p.Issue(acc(tgt, 0, 4, cycle, true))
	if len(got) == 0 {
		t.Fatal("TLP issued nothing")
	}
	matches := sink.byKind(events.KindTLPNeighbor)
	if len(matches) == 0 {
		t.Fatal("no tlp-neighbor event for a successful transfer")
	}
	m := matches[len(matches)-1]
	if m.Aux != uint64(nb) {
		t.Fatalf("neighbour page %#x, want %#x", m.Aux, uint64(nb))
	}
	if int(m.N) != len(got) {
		t.Fatalf("transfer count N=%d, issued %d", m.N, len(got))
	}
}

func TestEventSinkDetach(t *testing.T) {
	// Installing a nil sink turns emission back off everywhere.
	p, slpPage, _, cycle := buildPlanaria(Decoupled)
	sink := &captureSink{}
	p.SetEventSink(sink)
	p.SetEventSink(nil)
	p.Issue(acc(slpPage, 0, 4, cycle, true))
	if len(sink.evs) != 0 {
		t.Fatalf("%d events after detaching the sink", len(sink.evs))
	}
}
