package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/bitmap"
	"repro/internal/prefetch"
)

func trainPage(t *TLP, p addr.PageNum, offs []int, cycle uint64) uint64 {
	for _, o := range offs {
		t.Train(acc(p, 0, o, cycle, true))
		cycle++
	}
	return cycle
}

func TestTLPTransfersFromSimilarNeighbor(t *testing.T) {
	tl := NewTLP(DefaultTLPConfig())
	// Neighbour page 0x100 has the full footprint.
	trainPage(tl, 0x100, []int{1, 2, 3, 4, 5, 6}, 0)
	// Page 0x110 (distance 16 ≤ 64) shares the first four blocks.
	trainPage(tl, 0x110, []int{1, 2, 3, 4}, 100)

	nb, transfer, ok := tl.BestNeighbor(0x110)
	if !ok {
		t.Fatal("no neighbour found")
	}
	if nb != 0x100 {
		t.Fatalf("neighbour = %#x, want 0x100", uint64(nb))
	}
	want := bitmap.Seg16(0).Set(5).Set(6)
	if transfer != want {
		t.Fatalf("transfer %s, want %s", transfer, want)
	}

	got := tl.Issue(acc(0x110, 0, 4, 200, true))
	if len(got) != 2 {
		t.Fatalf("Issue = %v", got)
	}
	wantBlocks := map[addr.BlockNum]bool{
		addr.PageNum(0x110).Block(addr.OffsetOf(0, 5)): true,
		addr.PageNum(0x110).Block(addr.OffsetOf(0, 6)): true,
	}
	for _, b := range got {
		if !wantBlocks[b] {
			t.Fatalf("unexpected target %v", b)
		}
	}
}

func TestTLPPicksMostSimilarNeighbor(t *testing.T) {
	// Figure 6: page A learns from B (6 common blocks), not C (3 common).
	tl := NewTLP(DefaultTLPConfig())
	b := addr.PageNum(0x100)
	c := addr.PageNum(0x120)
	a := addr.PageNum(0x110)
	trainPage(tl, b, []int{0, 1, 2, 3, 4, 5, 8}, 0) // B
	trainPage(tl, c, []int{0, 1, 2, 9}, 100)        // C
	trainPage(tl, a, []int{0, 1, 2, 3, 4, 5}, 200)  // A shares 6 with B, 3 with C

	nb, transfer, ok := tl.BestNeighbor(a)
	if !ok || nb != b {
		t.Fatalf("neighbour = %#x (ok=%v), want B=0x100", uint64(nb), ok)
	}
	if transfer != bitmap.Seg16(0).Set(8) {
		t.Fatalf("transfer %s, want only block 8", transfer)
	}
}

func TestTLPRespectsDistanceThreshold(t *testing.T) {
	cfg := DefaultTLPConfig()
	cfg.DistThreshold = 4
	tl := NewTLP(cfg)
	trainPage(tl, 0x100, []int{1, 2, 3, 4, 5}, 0)
	trainPage(tl, 0x200, []int{1, 2, 3, 4}, 100) // distance 256 > 4
	if _, _, ok := tl.BestNeighbor(0x200); ok {
		t.Fatal("far page accepted as neighbour")
	}
	trainPage(tl, 0x102, []int{1, 2, 3, 4}, 200) // distance 2 ≤ 4
	if _, _, ok := tl.BestNeighbor(0x102); !ok {
		t.Fatal("near page rejected")
	}
}

func TestTLPRequiresMinCommonBits(t *testing.T) {
	cfg := DefaultTLPConfig()
	cfg.MinCommon = 4
	tl := NewTLP(cfg)
	trainPage(tl, 0x100, []int{1, 2, 3, 4, 5, 6}, 0)
	trainPage(tl, 0x101, []int{1, 2}, 100) // only 2 common bits
	if _, _, ok := tl.BestNeighbor(0x101); ok {
		t.Fatal("dissimilar page accepted")
	}
	trainPage(tl, 0x101, []int{3, 4}, 200) // now 4 common bits
	if _, _, ok := tl.BestNeighbor(0x101); !ok {
		t.Fatal("similar page rejected")
	}
}

func TestTLPNoTransferWhenNothingNew(t *testing.T) {
	tl := NewTLP(DefaultTLPConfig())
	trainPage(tl, 0x100, []int{1, 2, 3}, 0)
	trainPage(tl, 0x101, []int{1, 2, 3, 4}, 100) // superset of neighbour
	if _, _, ok := tl.BestNeighbor(0x101); ok {
		t.Fatal("transfer offered with no surplus blocks")
	}
}

func TestTLPNoIssueOnHit(t *testing.T) {
	tl := NewTLP(DefaultTLPConfig())
	trainPage(tl, 0x100, []int{1, 2, 3, 4, 5, 6}, 0)
	trainPage(tl, 0x110, []int{1, 2, 3, 4}, 100)
	if got := tl.Issue(acc(0x110, 0, 4, 200, false)); got != nil {
		t.Fatalf("issued %v on a hit", got)
	}
}

func TestTLPEvictionRecyclesLRU(t *testing.T) {
	cfg := DefaultTLPConfig()
	cfg.RPTEntries = 4
	tl := NewTLP(cfg)
	for i := 0; i < 6; i++ {
		// Shared base footprint {1,2,3} plus a page-specific block so
		// every pair has a surplus to transfer.
		trainPage(tl, addr.PageNum(0x100+i), []int{1, 2, 3, 4, 8 + i}, uint64(i*100))
	}
	// The first two pages were evicted; their index entries must be gone.
	if _, ok := tl.idx.Get(0x100); ok {
		t.Fatal("evicted page still indexed")
	}
	// The last four are resident.
	for i := 2; i < 6; i++ {
		if _, ok := tl.idx.Get(uint64(0x100 + i)); !ok {
			t.Fatalf("recent page 0x%x missing", 0x100+i)
		}
	}
	// Ref bits of survivors must not point at stale slots incorrectly:
	// every surviving pair within distance 64 must see each other.
	for i := 2; i < 6; i++ {
		p := addr.PageNum(0x100 + i)
		if _, _, ok := tl.BestNeighbor(p); !ok {
			t.Fatalf("page 0x%x lost its neighbours after eviction churn", 0x100+i)
		}
	}
}

func TestTLPRefBitsSymmetric(t *testing.T) {
	tl := NewTLP(DefaultTLPConfig())
	trainPage(tl, 0x100, []int{1}, 0)
	trainPage(tl, 0x101, []int{1}, 10)
	i, _ := tl.idx.Get(0x100)
	j, _ := tl.idx.Get(0x101)
	if !tl.rpt[i].refs[j] || !tl.rpt[j].refs[i] {
		t.Fatal("Ref bits not symmetric for neighbours")
	}
	if tl.rpt[i].refs[i] {
		t.Fatal("self-reference set")
	}
}

func TestTLPReset(t *testing.T) {
	tl := NewTLP(DefaultTLPConfig())
	trainPage(tl, 0x100, []int{1, 2, 3, 4, 5, 6}, 0)
	trainPage(tl, 0x110, []int{1, 2, 3, 4}, 100)
	tl.Reset()
	if _, _, ok := tl.BestNeighbor(0x110); ok {
		t.Fatal("neighbour knowledge survived Reset")
	}
	if tl.Issues() != 0 {
		t.Fatal("issue counter survived Reset")
	}
}

func TestTLPStorageBits(t *testing.T) {
	tl := NewTLP(DefaultTLPConfig())
	// 128 × (36 + 16 + 16 + 1 + 127) bits.
	want := 128 * (36 + 16 + 16 + 1 + 127)
	if got := tl.StorageBits(); got != want {
		t.Fatalf("StorageBits = %d, want %d", got, want)
	}
}

var _ = prefetch.Prefetcher(nil)
