package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/prefetch"
)

// The steady-state allocation gates: once warm, the composite and both
// sub-prefetchers train, issue (through IssueTo with a reused buffer) and
// peek without allocating at all. These are strict zero gates — the hot
// path's indices are open-addressing tables and its buffers persist, so
// any allocation is a regression, not noise.

// churn drives pf through a deterministic mix of pages wide enough to
// exercise table eviction and neighbour matching, reusing one candidate
// buffer like the engine does.
func churn(pf interface {
	Train(prefetch.Access)
	IssueTo(prefetch.Access, []addr.BlockNum) []addr.BlockNum
}, rounds int, dst []addr.BlockNum) []addr.BlockNum {
	cycle := uint64(0)
	for r := 0; r < rounds; r++ {
		for pg := 0; pg < 40; pg++ {
			p := addr.PageNum(0x100 + pg*3)
			for _, off := range []int{1, 2, 5, 9, 12} {
				a := acc(p, 0, off, cycle, true)
				pf.Train(a)
				dst = pf.IssueTo(a, dst[:0])
				cycle += 7
			}
		}
	}
	return dst
}

func allocGate(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(20, f); avg != 0 {
		t.Errorf("%s: %.1f allocs per warm round, want 0", name, avg)
	}
}

func TestSLPSteadyStateAllocs(t *testing.T) {
	s := NewSLP(DefaultSLPConfig())
	dst := churn(s, 5, make([]addr.BlockNum, 0, 64))
	allocGate(t, "SLP Train+IssueTo", func() { dst = churn(s, 1, dst) })
}

func TestTLPSteadyStateAllocs(t *testing.T) {
	tl := NewTLP(DefaultTLPConfig())
	dst := churn(tl, 5, make([]addr.BlockNum, 0, 64))
	allocGate(t, "TLP Train+IssueTo", func() { dst = churn(tl, 1, dst) })
}

func TestPlanariaSteadyStateAllocs(t *testing.T) {
	for _, mode := range []CoordMode{Decoupled, Serial, Parallel} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		p := New(cfg)
		dst := churn(p, 5, make([]addr.BlockNum, 0, 64))
		allocGate(t, "planaria-"+mode.String()+" Train+IssueTo",
			func() { dst = churn(p, 1, dst) })
		a := acc(0x100, 0, 3, 1<<20, true)
		allocGate(t, "planaria-"+mode.String()+" Peek",
			func() { dst = p.Peek(a, dst[:0]) })
	}
}
