// Package core implements the Planaria paper's contribution: the
// Self-Learning directed Prefetcher (SLP, Section 3), the Transfer-Learning
// directed Prefetcher (TLP, Section 4) and the coordinator that composes
// them with decoupled learning and issuing phases (Section 2).
//
// One instance of each serves one DRAM channel and therefore works on
// 16-block page segments, exactly as in the paper's four-channel system.
package core

import (
	"math/bits"

	"repro/internal/addr"
	"repro/internal/bitmap"
	"repro/internal/events"
	"repro/internal/hashidx"
	"repro/internal/prefetch"
)

// SLPConfig sizes the three SLP tables and the accumulation timeout.
type SLPConfig struct {
	FTEntries int    // filter table entries
	ATEntries int    // accumulation table entries
	PTEntries int    // pattern history table entries (power of two)
	FTPromote int    // distinct offsets before FT→AT promotion (paper: 3)
	Timeout   uint64 // idle cycles before an AT entry is deemed a complete snapshot
}

// DefaultSLPConfig matches the storage budget reported in the paper
// (345.2 KB across four channels, dominated by the pattern history table).
func DefaultSLPConfig() SLPConfig {
	return SLPConfig{FTEntries: 64, ATEntries: 128, PTEntries: 16384, FTPromote: 3, Timeout: 50000}
}

type ftEntry struct {
	page  addr.PageNum
	bits  bitmap.Seg16
	last  uint64
	valid bool
}

type atEntry struct {
	page  addr.PageNum
	bits  bitmap.Seg16
	last  uint64
	valid bool
}

type ptEntry struct {
	tag   uint64
	bits  bitmap.Seg16
	valid bool
}

// SLP is the self-learning (intra-page) sub-prefetcher for one channel.
//
// Flow per the paper's Figure 1: a demand access first checks the
// Accumulation Table (AT, step 1); on an AT miss it goes to the Filter Table
// (FT, step 2), which weeds out pages that never accumulate three distinct
// blocks; an FT entry reaching three offsets is promoted into AT (step 3);
// an AT entry that times out is interpreted as a complete, stable footprint
// snapshot and written to the Pattern History Table (PT, step 4); a demand
// miss whose page hits in PT triggers prefetches for the rest of the
// snapshot (step 5). The page number is the only signature — no PC.
type SLP struct {
	cfg    SLPConfig
	ft     []ftEntry
	at     []atEntry
	pt     []ptEntry
	ptMask uint64
	sweep  int // round-robin AT timeout scan position

	// Software indices emulating the hardware CAM lookups in O(1). The FT
	// and AT entry arrays above are the pre-allocated slabs; these
	// open-addressing indices (allocation-free under churn, unlike Go
	// maps) find a page's slab slot, so a warm SLP never allocates.
	ftIdx *hashidx.U64
	atIdx *hashidx.U64

	// statistics
	promotions uint64 // FT→AT
	snapshots  uint64 // AT→PT
	issues     uint64 // Issue calls that produced prefetches

	// sink receives learning-milestone events (FT→AT promotions and
	// AT→PT snapshot captures); nil when tracing is disabled.
	sink events.Sink
}

// SetEventSink installs the decision-event sink (nil disables tracing).
func (s *SLP) SetEventSink(sk events.Sink) { s.sink = sk }

// NewSLP builds an SLP instance.
func NewSLP(cfg SLPConfig) *SLP {
	if cfg.FTEntries <= 0 {
		cfg.FTEntries = 64
	}
	if cfg.ATEntries <= 0 {
		cfg.ATEntries = 128
	}
	if cfg.PTEntries <= 0 {
		cfg.PTEntries = 16384
	}
	n := 1
	for n < cfg.PTEntries {
		n <<= 1
	}
	cfg.PTEntries = n
	if cfg.FTPromote <= 0 {
		cfg.FTPromote = 3
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 50000
	}
	return &SLP{
		cfg:    cfg,
		ft:     make([]ftEntry, cfg.FTEntries),
		at:     make([]atEntry, cfg.ATEntries),
		pt:     make([]ptEntry, n),
		ptMask: uint64(n - 1),
		ftIdx:  hashidx.New(cfg.FTEntries),
		atIdx:  hashidx.New(cfg.ATEntries),
	}
}

// Name implements prefetch.Prefetcher.
func (s *SLP) Name() string { return "slp" }

// Reset implements prefetch.Prefetcher.
func (s *SLP) Reset() {
	for i := range s.ft {
		s.ft[i] = ftEntry{}
	}
	for i := range s.at {
		s.at[i] = atEntry{}
	}
	for i := range s.pt {
		s.pt[i] = ptEntry{}
	}
	s.sweep, s.promotions, s.snapshots, s.issues = 0, 0, 0, 0
	s.ftIdx.Reset()
	s.atIdx.Reset()
}

// Train implements prefetch.Prefetcher (the SLP learning phase).
func (s *SLP) Train(a prefetch.Access) {
	s.expire(a.Cycle)
	p := a.Page()
	off := a.Block.SegOffset()

	// Step 1: accumulate into an existing AT entry.
	if i, ok := s.atIdx.Get(uint64(p)); ok {
		e := &s.at[i]
		e.bits = e.bits.Set(off)
		e.last = a.Cycle
		return
	}

	// Step 2/3: filter table.
	if i, ok := s.ftIdx.Get(uint64(p)); ok {
		e := &s.ft[i]
		e.bits = e.bits.Set(off)
		e.last = a.Cycle
		if e.bits.Count() >= s.cfg.FTPromote {
			s.promote(int(i), a.Cycle)
		}
		return
	}
	ftIdx := -1
	for i := range s.ft {
		if !s.ft[i].valid {
			ftIdx = i
			break
		}
	}
	if ftIdx == -1 {
		// Evict the stalest FT entry; sub-threshold snapshots are
		// dropped (that is the FT's filtering job).
		ftIdx = 0
		for i := 1; i < len(s.ft); i++ {
			if s.ft[i].last < s.ft[ftIdx].last {
				ftIdx = i
			}
		}
		s.ftIdx.Delete(uint64(s.ft[ftIdx].page))
	}
	s.ft[ftIdx] = ftEntry{page: p, bits: bitmap.Seg16(0).Set(off), last: a.Cycle, valid: true}
	s.ftIdx.Put(uint64(p), int32(ftIdx))
}

// promote moves FT entry i into the AT (step 3), evicting the stalest AT
// entry into PT if the AT is full.
func (s *SLP) promote(i int, now uint64) {
	f := s.ft[i]
	s.ft[i] = ftEntry{}
	s.ftIdx.Delete(uint64(f.page))
	s.promotions++
	if s.sink != nil {
		s.sink.Emit(events.Event{
			Kind: events.KindSLPPromote, Cycle: now, Aux: uint64(f.page),
			Origin: events.OriginSLP, N: uint16(f.bits.Count()),
		})
	}
	atIdx := -1
	for j := range s.at {
		if !s.at[j].valid {
			atIdx = j
			break
		}
	}
	if atIdx == -1 {
		atIdx = 0
		for j := 1; j < len(s.at); j++ {
			if s.at[j].last < s.at[atIdx].last {
				atIdx = j
			}
		}
		s.capture(s.at[atIdx])
		s.atIdx.Delete(uint64(s.at[atIdx].page))
	}
	s.at[atIdx] = atEntry{page: f.page, bits: f.bits, last: now, valid: true}
	s.atIdx.Put(uint64(f.page), int32(atIdx))
}

// expire scans a few AT entries per call (a hardware-realistic round-robin
// sweep) and retires timed-out snapshots into PT (step 4).
func (s *SLP) expire(now uint64) {
	const perCall = 4
	for k := 0; k < perCall; k++ {
		i := s.sweep
		s.sweep = (s.sweep + 1) % len(s.at)
		e := &s.at[i]
		if e.valid && now > e.last && now-e.last > s.cfg.Timeout {
			s.capture(*e)
			s.atIdx.Delete(uint64(e.page))
			*e = atEntry{}
		}
	}
}

// capture writes a completed snapshot into the PT (step 4).
func (s *SLP) capture(e atEntry) {
	if !e.valid || e.bits.Count() == 0 {
		return
	}
	s.snapshots++
	idx := uint64(e.page) & s.ptMask
	s.pt[idx] = ptEntry{tag: uint64(e.page), bits: e.bits, valid: true}
	if s.sink != nil {
		s.sink.Emit(events.Event{
			Kind: events.KindSLPSnapshot, Cycle: e.last, Aux: uint64(e.page),
			Origin: events.OriginSLP, N: uint16(e.bits.Count()),
		})
	}
}

// Pattern returns the recorded snapshot for page p, if any (exported for the
// coordinator's metadata probe and for tests).
func (s *SLP) Pattern(p addr.PageNum) (bitmap.Seg16, bool) {
	e := s.pt[uint64(p)&s.ptMask]
	if e.valid && e.tag == uint64(p) {
		return e.bits, true
	}
	return 0, false
}

// Issue implements prefetch.Prefetcher (the SLP issuing phase, step 5):
// on a demand miss to a page with a recorded snapshot, prefetch every other
// block of the snapshot.
func (s *SLP) Issue(a prefetch.Access) []addr.BlockNum {
	return s.IssueTo(a, nil)
}

// IssueTo implements prefetch.BufferedIssuer: Issue appending into the
// caller's buffer, iterating the snapshot bitmap directly (no Offsets
// slice) so a warm SLP issues without allocating.
func (s *SLP) IssueTo(a prefetch.Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	p := a.Page()
	pat, ok := s.Pattern(p)
	if !ok {
		return dst
	}
	// Even when the trigger lies outside the learned snapshot we still
	// prefetch the snapshot: the paper's overlap experiment (Figure 4)
	// shows footprints stay stable across phases.
	rest := pat.Clear(a.Block.SegOffset())
	if rest == 0 {
		return dst
	}
	ch := a.Block.Channel()
	for v := uint16(rest); v != 0; v &= v - 1 {
		dst = append(dst, p.Block(addr.OffsetOf(ch, bits.TrailingZeros16(v))))
	}
	s.issues++
	return dst
}

// HasMetadata reports whether SLP could issue for page p — the coordinator's
// selection rule (enable TLP only when SLP has no history for the page).
func (s *SLP) HasMetadata(p addr.PageNum) bool {
	_, ok := s.Pattern(p)
	return ok
}

// StorageBits implements prefetch.Prefetcher.
// FT entry: page tag 36 + bitmap 16 + time 16 + valid 1.
// AT entry: page tag 36 + bitmap 16 + time 16 + valid 1.
// PT entry: tag (page bits above index) 36−log2(PT) + bitmap 16 + valid 1.
func (s *SLP) StorageBits() int {
	ptTag := 36 - log2(uint64(len(s.pt)))
	if ptTag < 0 {
		ptTag = 0
	}
	return len(s.ft)*(36+16+16+1) +
		len(s.at)*(36+16+16+1) +
		len(s.pt)*(ptTag+16+1)
}

// Counters returns internal event counters (promotions, snapshots, issues).
func (s *SLP) Counters() (promotions, snapshots, issues uint64) {
	return s.promotions, s.snapshots, s.issues
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
