package core

import (
	"fmt"
	mbits "math/bits"

	"repro/internal/addr"
	"repro/internal/events"
	"repro/internal/prefetch"
)

// CoordMode selects the coordination strategy. Decoupled is Planaria's
// contribution; the other two model the prior-art coordinator families the
// paper compares against in Section 7 and back the abl-coord experiment.
type CoordMode int

// Coordination modes.
const (
	// Decoupled is "parallel training and serial issuing": every demand
	// access trains both sub-prefetchers (full-pattern directed
	// learning), while only one sub-prefetcher — SLP preferentially —
	// issues for a given trigger.
	Decoupled CoordMode = iota
	// Serial models a TPC-style serial coordinator with monolithic
	// sub-prefetchers: only the selected sub-prefetcher both learns and
	// issues, so the idle one goes blind.
	Serial
	// Parallel models an ISB-style parallel coordinator: both
	// sub-prefetchers learn and both issue; their requests are unioned.
	Parallel
)

// String returns the mode mnemonic.
func (m CoordMode) String() string {
	switch m {
	case Decoupled:
		return "decoupled"
	case Serial:
		return "serial"
	case Parallel:
		return "parallel"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config bundles the sub-prefetcher configurations and the coordinator mode.
type Config struct {
	SLP  SLPConfig
	TLP  TLPConfig
	Mode CoordMode
	// DisableSLP / DisableTLP turn a sub-prefetcher off entirely,
	// enabling the Figure 9 breakdown runs.
	DisableSLP bool
	DisableTLP bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{SLP: DefaultSLPConfig(), TLP: DefaultTLPConfig(), Mode: Decoupled}
}

// Planaria is the composite prefetcher for one channel: SLP + TLP under the
// coordinator (Figure 1).
type Planaria struct {
	cfg Config
	slp *SLP
	tlp *TLP

	slpIssues uint64 // triggers answered by SLP
	tlpIssues uint64 // triggers answered by TLP

	lastOrigin string // sub-prefetcher that answered the most recent Issue

	// sink receives decision events (arbitration outcomes here, learning
	// milestones from the sub-prefetchers); nil when tracing is disabled,
	// which keeps the hot path at one nil check per decision.
	sink events.Sink
}

// New builds a Planaria instance.
func New(cfg Config) *Planaria {
	return &Planaria{cfg: cfg, slp: NewSLP(cfg.SLP), tlp: NewTLP(cfg.TLP)}
}

// Name implements prefetch.Prefetcher.
func (p *Planaria) Name() string {
	switch {
	case p.cfg.DisableTLP && p.cfg.DisableSLP:
		return "planaria-off"
	case p.cfg.DisableTLP:
		return "planaria-slp"
	case p.cfg.DisableSLP:
		return "planaria-tlp"
	case p.cfg.Mode != Decoupled:
		return "planaria-" + p.cfg.Mode.String()
	}
	return "planaria"
}

// Reset implements prefetch.Prefetcher.
func (p *Planaria) Reset() {
	p.slp.Reset()
	p.tlp.Reset()
	p.slpIssues, p.tlpIssues = 0, 0
	p.lastOrigin = ""
}

// SetEventSink installs the decision-event sink on the coordinator and both
// sub-prefetchers (nil disables tracing). The engine calls it once per
// channel when event tracing is enabled; see docs/TRACING.md.
func (p *Planaria) SetEventSink(s events.Sink) {
	p.sink = s
	p.slp.SetEventSink(s)
	p.tlp.SetEventSink(s)
}

// SLP exposes the intra-page sub-prefetcher (for tests and analysis).
func (p *Planaria) SLP() *SLP { return p.slp }

// TLP exposes the inter-page sub-prefetcher (for tests and analysis).
func (p *Planaria) TLP() *TLP { return p.tlp }

// Train implements prefetch.Prefetcher — the learning phase.
//
// In Decoupled and Parallel modes both sub-prefetchers observe every demand
// access. In Serial (monolithic) mode only the sub-prefetcher currently
// selected for this page learns, reproducing the blindness of prior serial
// coordinators.
func (p *Planaria) Train(a prefetch.Access) {
	switch p.cfg.Mode {
	case Serial:
		if p.selectSLP(a) {
			if !p.cfg.DisableSLP {
				p.slp.Train(a)
			}
		} else if !p.cfg.DisableTLP {
			p.tlp.Train(a)
		}
	default:
		if !p.cfg.DisableSLP {
			p.slp.Train(a)
		}
		if !p.cfg.DisableTLP {
			p.tlp.Train(a)
		}
	}
}

// selectSLP applies the paper's selection rule: SLP issues preferentially;
// TLP is enabled only when SLP has no history for the page.
func (p *Planaria) selectSLP(a prefetch.Access) bool {
	if p.cfg.DisableSLP {
		return false
	}
	if p.cfg.DisableTLP {
		return true
	}
	return p.slp.HasMetadata(a.Page())
}

// Issue implements prefetch.Prefetcher — the issuing phase.
func (p *Planaria) Issue(a prefetch.Access) []addr.BlockNum {
	return p.IssueTo(a, nil)
}

// IssueTo implements prefetch.BufferedIssuer: Issue appending into the
// caller's buffer. The engine threads one persistent buffer per channel
// through here, making the composite's entire issuing phase allocation-free.
func (p *Planaria) IssueTo(a prefetch.Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	if p.cfg.Mode == Parallel {
		base := len(dst)
		if !p.cfg.DisableSLP {
			if dst = p.slp.IssueTo(a, dst); len(dst) > base {
				p.slpIssues++
			}
		}
		mid := len(dst)
		if !p.cfg.DisableTLP {
			if dst = p.tlp.IssueTo(a, dst); len(dst) > mid {
				p.tlpIssues++
			}
		}
		return dedupTail(dst, base, mid)
	}
	// Decoupled and Serial both issue serially: SLP first, TLP as the
	// fallback when SLP has nothing for this page.
	base := len(dst)
	if !p.cfg.DisableSLP {
		if dst = p.slp.IssueTo(a, dst); len(dst) > base {
			p.slpIssues++
			p.lastOrigin = "slp"
			if p.sink != nil {
				// SLP won the trigger: TLP was suppressed by the
				// serial-issuing priority rule (or is simply off).
				reason := events.ReasonSLPPriority
				if p.cfg.DisableTLP {
					reason = events.ReasonDisabled
				}
				p.sink.Emit(events.Event{
					Kind: events.KindArbitration, Cycle: a.Cycle, Block: a.Block,
					Origin: events.OriginSLP, Reason: reason, N: uint16(len(dst) - base),
				})
			}
			return dst
		}
	}
	if !p.cfg.DisableTLP {
		if dst = p.tlp.IssueTo(a, dst); len(dst) > base {
			p.tlpIssues++
			p.lastOrigin = "tlp"
			if p.sink != nil {
				// The trigger fell through to TLP: SLP had no usable
				// pattern for the page (or is disabled).
				reason := events.ReasonNoMetadata
				if p.cfg.DisableSLP {
					reason = events.ReasonDisabled
				}
				p.sink.Emit(events.Event{
					Kind: events.KindArbitration, Cycle: a.Cycle, Block: a.Block,
					Origin: events.OriginTLP, Reason: reason, N: uint16(len(dst) - base),
				})
			}
			return dst
		}
	}
	p.lastOrigin = ""
	return dst
}

// Peek implements prefetch.Component: the blocks Issue would return for a,
// computed from the same metadata probes (SLP's pattern table, TLP's best
// neighbour) without mutating any state, counters or events. The tournament
// calls it on every trigger for shadow evaluation.
func (p *Planaria) Peek(a prefetch.Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	page := a.Page()
	ch := a.Block.Channel()
	trigger := a.Block.SegOffset()
	if p.cfg.Mode == Parallel {
		// Union of both sub-prefetchers, deduplicated like IssueTo's
		// dedupTail (an offset mask; all candidates live in the trigger
		// page's segment).
		var seen uint16
		if !p.cfg.DisableSLP {
			if pat, ok := p.slp.Pattern(page); ok {
				rest := uint16(pat.Clear(trigger))
				seen = rest
				for v := rest; v != 0; v &= v - 1 {
					dst = append(dst, page.Block(addr.OffsetOf(ch, mbits.TrailingZeros16(v))))
				}
			}
		}
		if !p.cfg.DisableTLP {
			if _, transfer, ok := p.tlp.BestNeighbor(page); ok {
				for v := uint16(transfer) &^ seen; v != 0; v &= v - 1 {
					dst = append(dst, page.Block(addr.OffsetOf(ch, mbits.TrailingZeros16(v))))
				}
			}
		}
		return dst
	}
	// Decoupled and Serial: SLP's snapshot first, TLP as the fallback —
	// the same priority order as Issue.
	if !p.cfg.DisableSLP {
		if pat, ok := p.slp.Pattern(page); ok {
			if rest := uint16(pat.Clear(trigger)); rest != 0 {
				for v := rest; v != 0; v &= v - 1 {
					dst = append(dst, page.Block(addr.OffsetOf(ch, mbits.TrailingZeros16(v))))
				}
				return dst
			}
		}
	}
	if !p.cfg.DisableTLP {
		if _, transfer, ok := p.tlp.BestNeighbor(page); ok {
			for v := uint16(transfer); v != 0; v &= v - 1 {
				dst = append(dst, page.Block(addr.OffsetOf(ch, mbits.TrailingZeros16(v))))
			}
		}
	}
	return dst
}

// Origin reports which sub-prefetcher answered the most recent Issue call
// ("slp", "tlp", or "" for none/union). The engine uses it to attribute
// useful prefetches per sub-prefetcher (the Figure 9 in-system breakdown).
func (p *Planaria) Origin() string {
	if p.cfg.Mode == Parallel {
		return "" // union issues have no single origin
	}
	return p.lastOrigin
}

// IssueShare returns how many triggers each sub-prefetcher answered — the
// Figure 9 breakdown input.
func (p *Planaria) IssueShare() (slp, tlp uint64) { return p.slpIssues, p.tlpIssues }

// StorageBits implements prefetch.Prefetcher.
func (p *Planaria) StorageBits() int {
	return p.slp.StorageBits() + p.tlp.StorageBits()
}

// dedupTail removes from dst[mid:] (TLP's candidates) any block already
// present in dst[base:mid] (SLP's), compacting in place. Both
// sub-prefetchers target only the trigger page's own channel segment and
// never repeat an offset internally, so membership is a 16-bit mask of
// segment offsets — the allocation-free replacement for the per-call map
// the Parallel-mode union used to build.
func dedupTail(dst []addr.BlockNum, base, mid int) []addr.BlockNum {
	if mid == len(dst) || base == mid {
		return dst
	}
	var seen uint16
	for _, b := range dst[base:mid] {
		seen |= 1 << uint(b.SegOffset())
	}
	out := dst[:mid]
	for _, b := range dst[mid:] {
		if bit := uint16(1) << uint(b.SegOffset()); seen&bit == 0 {
			seen |= bit
			out = append(out, b)
		}
	}
	return out
}

// Interface conformance checks.
var (
	_ prefetch.Prefetcher     = (*Planaria)(nil)
	_ prefetch.Component      = (*Planaria)(nil)
	_ prefetch.Prefetcher     = (*SLP)(nil)
	_ prefetch.Prefetcher     = (*TLP)(nil)
	_ prefetch.BufferedIssuer = (*Planaria)(nil)
	_ prefetch.BufferedIssuer = (*SLP)(nil)
	_ prefetch.BufferedIssuer = (*TLP)(nil)
)
