package core

import (
	"math/bits"

	"repro/internal/addr"
	"repro/internal/bitmap"
	"repro/internal/events"
	"repro/internal/hashidx"
	"repro/internal/prefetch"
)

// TLPConfig parameterises the transfer-learning sub-prefetcher.
type TLPConfig struct {
	RPTEntries    int    // Recent Page Table entries (paper: 128)
	DistThreshold uint64 // max page-number distance for a learnable neighbour (paper: 64)
	MinCommon     int    // min common bits before a neighbour pattern is trusted (paper example: 4)
}

// DefaultTLPConfig matches Section 4.2.
func DefaultTLPConfig() TLPConfig {
	return TLPConfig{RPTEntries: 128, DistThreshold: 64, MinCommon: 4}
}

type rptEntry struct {
	page  addr.PageNum
	bits  bitmap.Seg16
	last  uint64
	valid bool
	refs  []bool // refs[j]: entry j is a neighbour of this entry
}

// TLP is the transfer-learning (inter-page) sub-prefetcher for one channel.
//
// Its Recent Page Table (RPT) keeps the footprints of recently observed
// pages. Each entry carries one "Ref" bit per other entry, set when the two
// pages are close in page-number space (within DistThreshold). When a page
// with little history of its own misses, TLP finds its most similar flagged
// neighbour — largest count of common footprint bits, at least MinCommon —
// and prefetches the blocks the neighbour accessed that this page has not.
//
// Note: the paper's prose inverts the Ref polarity in one sentence
// ("difference ... larger than a threshold" → set 1); every other part of
// Section 4 requires neighbours to be close, so Ref here means "within the
// distance threshold" (see DESIGN.md).
type TLP struct {
	cfg TLPConfig
	rpt []rptEntry
	// refSlab is the single backing array all per-entry Ref rows are sliced
	// from (one N×N slab instead of N row allocations — the RPT metadata
	// arena).
	refSlab []bool
	// idx is the page → RPT-slot index; open addressing keeps the lookup
	// allocation-free under entry churn.
	idx *hashidx.U64

	issues uint64

	// sink receives neighbour-match events; nil when tracing is disabled.
	sink events.Sink
}

// SetEventSink installs the decision-event sink (nil disables tracing).
func (t *TLP) SetEventSink(sk events.Sink) { t.sink = sk }

// NewTLP builds a TLP instance.
func NewTLP(cfg TLPConfig) *TLP {
	if cfg.RPTEntries <= 0 {
		cfg.RPTEntries = 128
	}
	if cfg.DistThreshold == 0 {
		cfg.DistThreshold = 64
	}
	if cfg.MinCommon <= 0 {
		cfg.MinCommon = 3
	}
	t := &TLP{cfg: cfg}
	n := cfg.RPTEntries
	t.rpt = make([]rptEntry, n)
	t.refSlab = make([]bool, n*n)
	for i := range t.rpt {
		t.rpt[i].refs = t.refSlab[i*n : (i+1)*n : (i+1)*n]
	}
	t.idx = hashidx.New(n)
	return t
}

// Name implements prefetch.Prefetcher.
func (t *TLP) Name() string { return "tlp" }

// Reset implements prefetch.Prefetcher.
func (t *TLP) Reset() {
	for i := range t.rpt {
		e := &t.rpt[i]
		e.page, e.bits, e.last, e.valid = 0, 0, 0, false
		for j := range e.refs {
			e.refs[j] = false
		}
	}
	t.idx.Reset()
	t.issues = 0
}

// Train implements prefetch.Prefetcher (the TLP learning phase): record the
// block in the page's RPT footprint, allocating an entry and recomputing its
// Ref bits on first sight.
func (t *TLP) Train(a prefetch.Access) {
	p := a.Page()
	off := a.Block.SegOffset()
	if i, ok := t.idx.Get(uint64(p)); ok {
		e := &t.rpt[i]
		e.bits = e.bits.Set(off)
		e.last = a.Cycle
		return
	}
	i := t.allocate()
	e := &t.rpt[i]
	if e.valid {
		t.idx.Delete(uint64(e.page))
	}
	e.page = p
	e.bits = bitmap.Seg16(0).Set(off)
	e.last = a.Cycle
	e.valid = true
	t.idx.Put(uint64(p), int32(i))
	// Recompute the Ref bits between the new entry and every other valid
	// entry (the hardware sets these with one comparator per entry).
	for j := range t.rpt {
		if j == i {
			e.refs[j] = false
			continue
		}
		o := &t.rpt[j]
		near := o.valid && p.Distance(o.page) <= t.cfg.DistThreshold
		e.refs[j] = near
		o.refs[i] = near
	}
}

// allocate returns the RPT slot for a new page: an invalid slot if one
// exists, otherwise the least recently used.
func (t *TLP) allocate() int {
	lru := 0
	for i := range t.rpt {
		if !t.rpt[i].valid {
			return i
		}
		if t.rpt[i].last < t.rpt[lru].last {
			lru = i
		}
	}
	return lru
}

// BestNeighbor returns the most similar flagged neighbour entry of page p
// and the blocks it would transfer (neighbour minus self), or ok=false.
func (t *TLP) BestNeighbor(p addr.PageNum) (neighbor addr.PageNum, transfer bitmap.Seg16, ok bool) {
	i, exists := t.idx.Get(uint64(p))
	if !exists {
		return 0, 0, false
	}
	self := &t.rpt[i]
	best := -1
	bestCommon := t.cfg.MinCommon - 1
	for j := range t.rpt {
		if !self.refs[j] || !t.rpt[j].valid {
			continue
		}
		c := self.bits.Common(t.rpt[j].bits)
		if c > bestCommon {
			bestCommon = c
			best = j
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	tr := t.rpt[best].bits.Minus(self.bits)
	if tr == 0 {
		return 0, 0, false
	}
	return t.rpt[best].page, tr, true
}

// Issue implements prefetch.Prefetcher (the TLP issuing phase): on a demand
// miss, transfer the best neighbour's surplus footprint onto this page.
func (t *TLP) Issue(a prefetch.Access) []addr.BlockNum {
	return t.IssueTo(a, nil)
}

// IssueTo implements prefetch.BufferedIssuer: Issue appending into the
// caller's buffer, iterating the transfer bitmap directly (no Offsets
// slice) so a warm TLP issues without allocating.
func (t *TLP) IssueTo(a prefetch.Access, dst []addr.BlockNum) []addr.BlockNum {
	if !a.Miss {
		return dst
	}
	p := a.Page()
	neighbor, transfer, ok := t.BestNeighbor(p)
	if !ok {
		return dst
	}
	ch := a.Block.Channel()
	for v := uint16(transfer); v != 0; v &= v - 1 {
		dst = append(dst, p.Block(addr.OffsetOf(ch, bits.TrailingZeros16(v))))
	}
	t.issues++
	if t.sink != nil {
		t.sink.Emit(events.Event{
			Kind: events.KindTLPNeighbor, Cycle: a.Cycle, Block: a.Block,
			Aux: uint64(neighbor), Origin: events.OriginTLP, N: uint16(transfer.Count()),
		})
	}
	return dst
}

// Issues returns the number of Issue calls that produced prefetches.
func (t *TLP) Issues() uint64 { return t.issues }

// StorageBits implements prefetch.Prefetcher: each RPT entry holds a page
// tag (36 b), a 16-bit bitmap, a 16-bit timestamp, a valid bit and N−1
// useful Ref bits (Section 4.2).
func (t *TLP) StorageBits() int {
	n := len(t.rpt)
	return n * (36 + 16 + 16 + 1 + (n - 1))
}
