package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/prefetch"
)

// TestSLPNeverIssuesTrigger: step 5 prefetches "all the *other* blocks" of
// the snapshot — the triggering block itself must never be re-requested.
func TestSLPNeverIssuesTrigger(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultSLPConfig()
		cfg.Timeout = 50
		s := NewSLP(cfg)
		cycle := uint64(0)
		for i := 0; i < 400; i++ {
			p := addr.PageNum(rng.Intn(20))
			off := rng.Intn(16)
			a := acc(p, 0, off, cycle, true)
			s.Train(a)
			for _, b := range s.Issue(a) {
				if b == a.Block {
					return false
				}
			}
			cycle += uint64(rng.Intn(200))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSLPIssuesStayOnPageAndChannel: every prefetch lands on the triggering
// page and the triggering channel.
func TestSLPIssuesStayOnPageAndChannel(t *testing.T) {
	f := func(seed int64, chRaw uint8) bool {
		ch := int(chRaw % 4)
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultSLPConfig()
		cfg.Timeout = 50
		s := NewSLP(cfg)
		cycle := uint64(0)
		for i := 0; i < 400; i++ {
			p := addr.PageNum(rng.Intn(20))
			a := acc(p, ch, rng.Intn(16), cycle, true)
			s.Train(a)
			for _, b := range s.Issue(a) {
				if b.Page() != p || b.Channel() != ch {
					return false
				}
			}
			cycle += uint64(rng.Intn(200))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestTLPNeverTransfersOwnedBlocks: the transfer set is always disjoint from
// the page's own observed footprint.
func TestTLPNeverTransfersOwnedBlocks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTLP(DefaultTLPConfig())
		// Dense cluster of pages so neighbours exist.
		base := addr.PageNum(1000)
		owned := map[addr.PageNum]map[int]bool{}
		cycle := uint64(0)
		for i := 0; i < 600; i++ {
			p := base + addr.PageNum(rng.Intn(8))
			off := rng.Intn(16)
			a := acc(p, 0, off, cycle, true)
			tl.Train(a)
			if owned[p] == nil {
				owned[p] = map[int]bool{}
			}
			owned[p][off] = true
			for _, b := range tl.Issue(a) {
				if owned[p][b.SegOffset()] {
					return false
				}
			}
			cycle++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPlanariaParallelSupersetOfDecoupled: with identical training, the
// parallel coordinator's issue set contains the decoupled coordinator's
// (serial issuing picks one of the two sets the parallel mode unions).
func TestPlanariaParallelSupersetOfDecoupled(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(mode CoordMode) *Planaria {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.SLP.Timeout = 50
			return New(cfg)
		}
		dec := mk(Decoupled)
		par := mk(Parallel)
		cycle := uint64(0)
		type ev struct {
			a prefetch.Access
		}
		var evs []ev
		for i := 0; i < 400; i++ {
			p := addr.PageNum(1000 + rng.Intn(12))
			a := acc(p, 0, rng.Intn(16), cycle, true)
			evs = append(evs, ev{a})
			cycle += uint64(rng.Intn(100))
		}
		for _, e := range evs {
			dec.Train(e.a)
			par.Train(e.a)
			d := dec.Issue(e.a)
			pp := par.Issue(e.a)
			set := map[addr.BlockNum]bool{}
			for _, b := range pp {
				set[b] = true
			}
			for _, b := range d {
				if !set[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestSLPDeterministic: identical access sequences produce identical issue
// streams (no hidden randomness in the hardware model).
func TestSLPDeterministic(t *testing.T) {
	run := func() []addr.BlockNum {
		cfg := DefaultSLPConfig()
		cfg.Timeout = 70
		s := NewSLP(cfg)
		var out []addr.BlockNum
		cycle := uint64(0)
		for i := 0; i < 500; i++ {
			p := addr.PageNum(i * 2654435761 % 31)
			a := acc(p, 0, i*7%16, cycle, true)
			s.Train(a)
			out = append(out, s.Issue(a)...)
			cycle += uint64(i % 97)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("issue counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("issue %d differs", i)
		}
	}
}
