package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/bitmap"
	"repro/internal/prefetch"
)

func acc(p addr.PageNum, ch, off int, cycle uint64, miss bool) prefetch.Access {
	return prefetch.Access{Block: p.Block(addr.OffsetOf(ch, off)), Cycle: cycle, Miss: miss}
}

// trainSnapshot feeds SLP a page footprint and lets the AT entry time out so
// the snapshot lands in the PT.
func trainSnapshot(s *SLP, p addr.PageNum, offs []int, start uint64) uint64 {
	cycle := start
	for _, o := range offs {
		s.Train(acc(p, 0, o, cycle, true))
		cycle += 10
	}
	// Advance time past the timeout with traffic on another page so the
	// sweep sees the expiry.
	cycle += s.cfg.Timeout + 1
	other := p + 100000
	for i := 0; i < len(s.at)+4; i++ {
		s.Train(acc(other, 0, i%16, cycle, true))
		cycle++
	}
	return cycle
}

func TestSLPFilterBlocksSmallSnapshots(t *testing.T) {
	s := NewSLP(DefaultSLPConfig())
	p := addr.PageNum(10)
	// Two distinct offsets: below the 3-offset promotion threshold.
	s.Train(acc(p, 0, 1, 0, true))
	s.Train(acc(p, 0, 2, 10, true))
	promos, _, _ := s.Counters()
	if promos != 0 {
		t.Fatalf("premature promotion after 2 offsets")
	}
	// Third distinct offset promotes.
	s.Train(acc(p, 0, 3, 20, true))
	promos, _, _ = s.Counters()
	if promos != 1 {
		t.Fatalf("promotions = %d, want 1", promos)
	}
}

func TestSLPRepeatedOffsetDoesNotPromote(t *testing.T) {
	s := NewSLP(DefaultSLPConfig())
	p := addr.PageNum(10)
	for i := 0; i < 10; i++ {
		s.Train(acc(p, 0, 5, uint64(i*10), true))
	}
	promos, _, _ := s.Counters()
	if promos != 0 {
		t.Fatal("repeated single offset promoted")
	}
}

func TestSLPSnapshotCaptureAndIssue(t *testing.T) {
	s := NewSLP(DefaultSLPConfig())
	p := addr.PageNum(77)
	offs := []int{1, 4, 7, 9}
	cycle := trainSnapshot(s, p, offs, 0)

	bits, ok := s.Pattern(p)
	if !ok {
		t.Fatal("snapshot not captured in PT")
	}
	want := bitmap.Seg16(0)
	for _, o := range offs {
		want = want.Set(o)
	}
	if bits != want {
		t.Fatalf("pattern %s, want %s", bits, want)
	}

	// A later miss on the page prefetches the rest of the snapshot.
	got := s.Issue(acc(p, 0, 4, cycle, true))
	if len(got) != 3 {
		t.Fatalf("Issue = %v, want 3 targets", got)
	}
	wantTargets := map[addr.BlockNum]bool{
		p.Block(addr.OffsetOf(0, 1)): true,
		p.Block(addr.OffsetOf(0, 7)): true,
		p.Block(addr.OffsetOf(0, 9)): true,
	}
	for _, b := range got {
		if !wantTargets[b] {
			t.Fatalf("unexpected target %v", b)
		}
	}
}

func TestSLPNoIssueOnHit(t *testing.T) {
	s := NewSLP(DefaultSLPConfig())
	p := addr.PageNum(77)
	cycle := trainSnapshot(s, p, []int{1, 4, 7}, 0)
	if got := s.Issue(acc(p, 0, 4, cycle, false)); got != nil {
		t.Fatalf("issued %v on a hit", got)
	}
}

func TestSLPNoIssueWithoutHistory(t *testing.T) {
	s := NewSLP(DefaultSLPConfig())
	if got := s.Issue(acc(12345, 0, 4, 0, true)); got != nil {
		t.Fatalf("cold SLP issued %v", got)
	}
	if s.HasMetadata(12345) {
		t.Fatal("HasMetadata true for unseen page")
	}
}

func TestSLPHasMetadata(t *testing.T) {
	s := NewSLP(DefaultSLPConfig())
	p := addr.PageNum(77)
	trainSnapshot(s, p, []int{1, 4, 7}, 0)
	if !s.HasMetadata(p) {
		t.Fatal("HasMetadata false after snapshot capture")
	}
}

func TestSLPATCapacityEvictionCaptures(t *testing.T) {
	cfg := DefaultSLPConfig()
	cfg.ATEntries = 2
	cfg.Timeout = 1 << 62 // effectively no timeout: force capacity path
	s := NewSLP(cfg)
	// Three pages each promoted (3 offsets): the third promotion evicts
	// the oldest AT entry into the PT.
	for pi, p := range []addr.PageNum{1, 2, 3} {
		base := uint64(pi * 100)
		s.Train(acc(p, 0, 1, base, true))
		s.Train(acc(p, 0, 2, base+1, true))
		s.Train(acc(p, 0, 3, base+2, true))
	}
	if _, ok := s.Pattern(1); !ok {
		t.Fatal("capacity eviction did not capture the snapshot")
	}
	_, snaps, _ := s.Counters()
	if snaps != 1 {
		t.Fatalf("snapshots = %d, want 1", snaps)
	}
}

func TestSLPTimeoutSeparatesEpochs(t *testing.T) {
	// Blocks accessed long after the snapshot timed out start a fresh
	// accumulation rather than polluting the old snapshot.
	cfg := DefaultSLPConfig()
	cfg.Timeout = 100
	s := NewSLP(cfg)
	p := addr.PageNum(5)
	s.Train(acc(p, 0, 1, 0, true))
	s.Train(acc(p, 0, 2, 5, true))
	s.Train(acc(p, 0, 3, 10, true))
	// Let it expire via sweep traffic.
	c := uint64(500)
	for i := 0; i < len(s.at)+4; i++ {
		s.Train(acc(addr.PageNum(90000), 0, i%16, c, true))
		c++
	}
	bits, ok := s.Pattern(p)
	if !ok {
		t.Fatal("snapshot missing")
	}
	if bits.Count() != 3 {
		t.Fatalf("snapshot has %d bits, want 3", bits.Count())
	}
}

func TestSLPResetClearsEverything(t *testing.T) {
	s := NewSLP(DefaultSLPConfig())
	p := addr.PageNum(77)
	trainSnapshot(s, p, []int{1, 4, 7}, 0)
	s.Reset()
	if s.HasMetadata(p) {
		t.Fatal("metadata survived Reset")
	}
	promos, snaps, issues := s.Counters()
	if promos != 0 || snaps != 0 || issues != 0 {
		t.Fatal("counters survived Reset")
	}
}

func TestSLPStorageBudgetMatchesPaper(t *testing.T) {
	// Four channels of default SLP+TLP must land in the neighbourhood of
	// the paper's 345.2 KB (we accept 250–450 KB; EXPERIMENTS.md records
	// the exact value).
	total := 0
	for ch := 0; ch < addr.Channels; ch++ {
		p := New(DefaultConfig())
		total += p.StorageBits()
	}
	kb := float64(total) / 8 / 1024
	if kb < 250 || kb > 450 {
		t.Fatalf("storage = %.1f KB, outside the plausible band around 345.2 KB", kb)
	}
}

// TestSLPRetrainsAfterPhaseChange drives the Section 3.2 retraining path
// directly: a page's footprint flips entirely; after one full visit under
// the new footprint (plus the accumulation timeout), the PT holds the new
// pattern instead of the stale one.
func TestSLPRetrainsAfterPhaseChange(t *testing.T) {
	cfg := DefaultSLPConfig()
	cfg.Timeout = 100
	s := NewSLP(cfg)
	p := addr.PageNum(33)
	cycle := trainSnapshot(s, p, []int{1, 2, 3}, 0)
	old, ok := s.Pattern(p)
	if !ok {
		t.Fatal("no pattern after first phase")
	}
	// Phase change: entirely different footprint.
	cycle = trainSnapshot(s, p, []int{10, 11, 12, 13}, cycle)
	now, ok := s.Pattern(p)
	if !ok {
		t.Fatal("pattern lost after phase change")
	}
	if now == old {
		t.Fatal("PT still holds the stale snapshot")
	}
	want := bitmap.Seg16(0).Set(10).Set(11).Set(12).Set(13)
	if now != want {
		t.Fatalf("retrained pattern %s, want %s", now, want)
	}
}

func TestSLPFTEvictionDropsStalest(t *testing.T) {
	cfg := DefaultSLPConfig()
	cfg.FTEntries = 2
	s := NewSLP(cfg)
	s.Train(acc(1, 0, 0, 0, true))  // page 1 @ t=0
	s.Train(acc(2, 0, 0, 10, true)) // page 2 @ t=10
	s.Train(acc(3, 0, 0, 20, true)) // page 3 evicts page 1 (stalest)
	// Page 2 must still accumulate.
	s.Train(acc(2, 0, 1, 30, true))
	s.Train(acc(2, 0, 2, 40, true))
	promos, _, _ := s.Counters()
	if promos != 1 {
		t.Fatalf("page 2 lost its FT entry: promotions = %d", promos)
	}
}
