package core

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/prefetch"
)

func benchAccesses(n int) []prefetch.Access {
	rng := rand.New(rand.NewSource(1))
	out := make([]prefetch.Access, n)
	cycle := uint64(0)
	for i := range out {
		p := addr.PageNum(rng.Intn(4096))
		out[i] = prefetch.Access{
			Block: p.Block(addr.OffsetOf(0, rng.Intn(16))),
			Cycle: cycle,
			Miss:  rng.Intn(3) != 0,
		}
		cycle += uint64(rng.Intn(60))
	}
	return out
}

// BenchmarkSLPTrainIssue measures the per-access cost of the intra-page
// sub-prefetcher.
func BenchmarkSLPTrainIssue(b *testing.B) {
	s := NewSLP(DefaultSLPConfig())
	accs := benchAccesses(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := accs[i&(len(accs)-1)]
		s.Train(a)
		s.Issue(a)
	}
}

// BenchmarkTLPTrainIssue measures the per-access cost of the inter-page
// sub-prefetcher (dominated by the 128-entry RPT bookkeeping).
func BenchmarkTLPTrainIssue(b *testing.B) {
	t := NewTLP(DefaultTLPConfig())
	accs := benchAccesses(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := accs[i&(len(accs)-1)]
		t.Train(a)
		t.Issue(a)
	}
}

// BenchmarkPlanariaTrainIssue measures the full composite prefetcher.
func BenchmarkPlanariaTrainIssue(b *testing.B) {
	p := New(DefaultConfig())
	accs := benchAccesses(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := accs[i&(len(accs)-1)]
		p.Train(a)
		p.Issue(a)
	}
}
