// Package addr defines the physical address model shared by every component
// of the Planaria reproduction: 4 KB pages split into 64-byte blocks, with
// each page statically partitioned into four 16-block segments, one per DRAM
// channel (DAC'24 paper, Section 3.2).
//
// All simulator components exchange block-aligned physical addresses
// (type Addr). The helpers here extract page numbers, block offsets, channel
// indices and DRAM coordinates so that the mapping lives in exactly one place.
package addr

import "fmt"

// Fundamental geometry constants. The paper fixes all of these (Table 1 and
// Section 3.1): 4 KB pages, 64 B blocks, four DRAM channels, each channel
// owning one 16-block segment of every page.
const (
	BlockBytes     = 64   // bytes per cache block
	PageBytes      = 4096 // bytes per memory page
	BlocksPerPage  = PageBytes / BlockBytes
	Channels       = 4
	SegmentBlocks  = BlocksPerPage / Channels // blocks per channel segment (16)
	BlockShift     = 6                        // log2(BlockBytes)
	PageShift      = 12                       // log2(PageBytes)
	SegmentShift   = 4                        // log2(SegmentBlocks)
	OffsetMask     = BlocksPerPage - 1
	SegOffsetMask  = SegmentBlocks - 1
	ChannelMask    = Channels - 1
	ChannelBitsLow = BlockShift + SegmentShift // bit position of the channel bits
)

// Addr is a byte-granular physical address. The simulator always works with
// block-aligned addresses; Align truncates arbitrary addresses.
type Addr uint64

// PageNum identifies a 4 KB memory page.
type PageNum uint64

// BlockNum is a block-granular address (Addr >> BlockShift). It is the unit
// the caches and prefetchers operate on.
type BlockNum uint64

// Align truncates a to the containing block boundary.
func (a Addr) Align() Addr { return a &^ (BlockBytes - 1) }

// Block returns the block number containing a.
func (a Addr) Block() BlockNum { return BlockNum(a >> BlockShift) }

// Page returns the page number containing a.
func (a Addr) Page() PageNum { return PageNum(a >> PageShift) }

// Offset returns the block offset within the page, in [0, BlocksPerPage).
func (a Addr) Offset() int { return int(a>>BlockShift) & OffsetMask }

// Addr reconstructs the byte address of the first byte of block b.
func (b BlockNum) Addr() Addr { return Addr(b) << BlockShift }

// Page returns the page containing block b.
func (b BlockNum) Page() PageNum { return PageNum(b >> (PageShift - BlockShift)) }

// Offset returns the block offset within its page, in [0, BlocksPerPage).
func (b BlockNum) Offset() int { return int(b) & OffsetMask }

// Channel returns the DRAM channel serving block b. The paper maps each of
// the four 16-block page segments to a fixed channel, so the channel index is
// the top two bits of the in-page block offset.
func (b BlockNum) Channel() int { return (int(b) >> SegmentShift) & ChannelMask }

// SegOffset returns the block's offset within its 16-block channel segment.
func (b BlockNum) SegOffset() int { return int(b) & SegOffsetMask }

// Base returns the first block of page p.
func (p PageNum) Base() BlockNum { return BlockNum(p) << (PageShift - BlockShift) }

// Addr returns the byte address of the first byte of page p.
func (p PageNum) Addr() Addr { return Addr(p) << PageShift }

// Block returns the block at the given in-page offset (0..63) of page p.
func (p PageNum) Block(offset int) BlockNum {
	return p.Base() + BlockNum(offset&OffsetMask)
}

// Distance returns |p - q| as a uint64, the page-number distance used by the
// TLP neighbour test.
func (p PageNum) Distance(q PageNum) uint64 {
	if p >= q {
		return uint64(p - q)
	}
	return uint64(q - p)
}

// MakeBlock builds the block number for (page, in-page offset).
func MakeBlock(p PageNum, offset int) BlockNum { return p.Block(offset) }

// SegmentOf maps an in-page block offset to (channel, segment offset).
func SegmentOf(offset int) (channel, segOffset int) {
	return (offset >> SegmentShift) & ChannelMask, offset & SegOffsetMask
}

// OffsetOf is the inverse of SegmentOf.
func OffsetOf(channel, segOffset int) int {
	return (channel&ChannelMask)<<SegmentShift | (segOffset & SegOffsetMask)
}

// DenseIndex collapses the two channel bits out of a block number, giving
// the block's index in its channel's dense, contiguous block space. Delta
// prefetchers (BOP, SPP, stride) do arithmetic in this space so that
// consecutive channel-local blocks differ by 1.
func DenseIndex(b BlockNum) uint64 {
	return (uint64(b)>>(SegmentShift+channelBits))<<SegmentShift | uint64(b)&uint64(SegOffsetMask)
}

// FromDense is the inverse of DenseIndex for the given channel.
func FromDense(channel int, dense uint64) BlockNum {
	hi := dense >> SegmentShift
	lo := dense & uint64(SegOffsetMask)
	return BlockNum(hi<<(SegmentShift+channelBits) |
		uint64(channel&ChannelMask)<<SegmentShift | lo)
}

const channelBits = 2 // log2(Channels)

// String implements fmt.Stringer for debugging.
func (b BlockNum) String() string {
	return fmt.Sprintf("blk{page=%#x off=%d ch=%d}", uint64(b.Page()), b.Offset(), b.Channel())
}

// DRAMGeometry describes the per-channel DRAM organisation used when mapping
// block addresses to bank/row/column coordinates (Table 1: 1 rank, 8 banks
// per channel).
type DRAMGeometry struct {
	Banks     int // banks per channel
	RowBytes  int // bytes per row (row buffer size)
	BankShift uint
	RowShift  uint
	bankMask  uint64
	rowInit   bool
}

// DefaultDRAMGeometry matches Table 1 of the paper: 8 banks per channel and a
// 2 KB row buffer (typical LPDDR4 x16 density).
func DefaultDRAMGeometry() DRAMGeometry {
	g := DRAMGeometry{Banks: 8, RowBytes: 2048}
	g.finish()
	return g
}

func (g *DRAMGeometry) finish() {
	g.BankShift = uint(log2(uint64(g.RowBytes / BlockBytes)))
	g.RowShift = g.BankShift + uint(log2(uint64(g.Banks)))
	g.bankMask = uint64(g.Banks - 1)
	g.rowInit = true
}

// Coord is a DRAM coordinate within one channel.
type Coord struct {
	Bank int
	Row  uint64
	Col  int
}

// Map converts a block number to its DRAM coordinate within the block's
// channel. Blocks that are consecutive within one channel segment map to
// consecutive columns of the same row, so a page's segment enjoys row-buffer
// locality — the property Planaria's batched footprint prefetches exploit.
func (g DRAMGeometry) Map(b BlockNum) Coord {
	if !g.rowInit {
		g = DefaultDRAMGeometry()
	}
	dense := DenseIndex(b)
	colBlocks := uint64(g.RowBytes / BlockBytes)
	return Coord{
		Col:  int(dense % colBlocks),
		Bank: int((dense >> g.BankShift) & g.bankMask),
		Row:  dense >> g.RowShift,
	}
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
