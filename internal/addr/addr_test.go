package addr

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if BlocksPerPage != 64 {
		t.Fatalf("BlocksPerPage = %d, want 64", BlocksPerPage)
	}
	if SegmentBlocks != 16 {
		t.Fatalf("SegmentBlocks = %d, want 16", SegmentBlocks)
	}
	if Channels != 4 {
		t.Fatalf("Channels = %d, want 4", Channels)
	}
}

func TestAlign(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{4095, 4032},
		{4096, 4096},
	}
	for _, c := range cases {
		if got := c.in.Align(); got != c.want {
			t.Errorf("Addr(%d).Align() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBlockPageOffset(t *testing.T) {
	a := Addr(0x12345678)
	b := a.Block()
	if got := b.Addr(); got != a.Align() {
		t.Errorf("round trip: got %#x want %#x", got, a.Align())
	}
	if b.Page() != a.Page() {
		t.Errorf("page mismatch: block %v addr %v", b.Page(), a.Page())
	}
	if b.Offset() != a.Offset() {
		t.Errorf("offset mismatch: %d vs %d", b.Offset(), a.Offset())
	}
}

func TestChannelMapping(t *testing.T) {
	p := PageNum(7)
	for off := 0; off < BlocksPerPage; off++ {
		b := p.Block(off)
		wantCh := off / SegmentBlocks
		if b.Channel() != wantCh {
			t.Errorf("offset %d: channel %d, want %d", off, b.Channel(), wantCh)
		}
		if b.SegOffset() != off%SegmentBlocks {
			t.Errorf("offset %d: segOffset %d, want %d", off, b.SegOffset(), off%SegmentBlocks)
		}
	}
}

func TestSegmentOfInverse(t *testing.T) {
	for off := 0; off < BlocksPerPage; off++ {
		ch, so := SegmentOf(off)
		if got := OffsetOf(ch, so); got != off {
			t.Errorf("OffsetOf(SegmentOf(%d)) = %d", off, got)
		}
	}
}

func TestPageDistance(t *testing.T) {
	if d := PageNum(10).Distance(PageNum(3)); d != 7 {
		t.Errorf("Distance = %d, want 7", d)
	}
	if d := PageNum(3).Distance(PageNum(10)); d != 7 {
		t.Errorf("Distance = %d, want 7", d)
	}
	if d := PageNum(5).Distance(PageNum(5)); d != 0 {
		t.Errorf("Distance = %d, want 0", d)
	}
}

// Property: block number round-trips through (page, offset) decomposition.
func TestBlockRoundTripProperty(t *testing.T) {
	f := func(raw uint64) bool {
		b := BlockNum(raw >> 8) // keep addresses in a plausible range
		return MakeBlock(b.Page(), b.Offset()) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Addr → Block → Addr is identity on aligned addresses.
func TestAddrBlockRoundTripProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw).Align()
		return a.Block().Addr() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDRAMGeometryMap(t *testing.T) {
	g := DefaultDRAMGeometry()
	// Blocks within one channel segment of one page share a row and bank
	// and occupy consecutive columns.
	p := PageNum(0x1234)
	first := g.Map(p.Block(0))
	for so := 1; so < SegmentBlocks; so++ {
		c := g.Map(p.Block(so))
		if c.Bank != first.Bank || c.Row != first.Row {
			t.Fatalf("segment not row-local: off %d → %+v vs %+v", so, c, first)
		}
		if c.Col != first.Col+so {
			t.Fatalf("columns not consecutive: off %d col %d (first %d)", so, c.Col, first.Col)
		}
	}
}

func TestDRAMGeometryDistinctRows(t *testing.T) {
	g := DefaultDRAMGeometry()
	// Pages far apart should not collide on (bank,row) for the same segment offset.
	seen := map[[2]uint64]PageNum{}
	collisions := 0
	for p := PageNum(0); p < 4096; p++ {
		c := g.Map(p.Block(0))
		key := [2]uint64{uint64(c.Bank), c.Row}
		if _, ok := seen[key]; ok {
			collisions++
		}
		seen[key] = p
	}
	// 4096 pages over 8 banks × many rows: with a 2 KB row holding 2
	// page-segments per channel, about half the pages must share (bank,row)
	// with a predecessor, but not all of them.
	if collisions == 0 || collisions == 4095 {
		t.Fatalf("implausible collision count %d", collisions)
	}
}

func TestDRAMGeometryZeroValueUsable(t *testing.T) {
	var g DRAMGeometry // zero value falls back to default geometry
	c := g.Map(PageNum(1).Block(3))
	d := DefaultDRAMGeometry().Map(PageNum(1).Block(3))
	if c != d {
		t.Fatalf("zero-value map %+v != default %+v", c, d)
	}
}

// Property: channel extraction is consistent between Addr and BlockNum paths.
func TestChannelConsistencyProperty(t *testing.T) {
	f := func(raw uint64) bool {
		b := BlockNum(raw >> 10)
		ch, _ := SegmentOf(b.Offset())
		return b.Channel() == ch
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
