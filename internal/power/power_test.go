package power

import (
	"math"
	"testing"

	"repro/internal/dram"
)

func TestDefaultsFilled(t *testing.T) {
	m := New(Params{})
	if m.Params() != DefaultParams() {
		t.Fatalf("zero params not defaulted: %+v", m.Params())
	}
	// Partial override keeps the rest defaulted.
	m = New(Params{ReadBurstPJ: 999})
	if m.Params().ReadBurstPJ != 999 || m.Params().ActPrePJ != DefaultParams().ActPrePJ {
		t.Fatalf("partial override broken: %+v", m.Params())
	}
}

func TestAccountLinear(t *testing.T) {
	m := New(Params{})
	ds := dram.Stats{Reads: 10, Writes: 5, Activates: 4, Refreshes: 2}
	b := m.Account(ds, 100, 50, 1000, 10000)
	p := m.Params()
	if b.Read != 10*p.ReadBurstPJ || b.Write != 5*p.WriteBurstPJ {
		t.Fatalf("burst energy wrong: %+v", b)
	}
	if b.Activate != 4*p.ActPrePJ || b.Refresh != 2*p.RefreshPJ {
		t.Fatalf("row/refresh energy wrong: %+v", b)
	}
	if b.Background != 10000*p.BackgroundPJ || b.SysCache != 100*p.SCAccessPJ {
		t.Fatalf("static energy wrong: %+v", b)
	}
	if b.Metadata != 50*p.MetaAccessPJ {
		t.Fatalf("small-array metadata should not be scaled: %+v", b)
	}
	sum := b.Activate + b.Read + b.Write + b.Refresh + b.Background + b.SysCache + b.Metadata
	if math.Abs(b.Total()-sum) > 1e-9 {
		t.Fatal("Total != sum of parts")
	}
}

func TestMetadataScalesWithArraySize(t *testing.T) {
	m := New(Params{})
	small := m.Account(dram.Stats{}, 0, 100, 65536, 0).Metadata
	big := m.Account(dram.Stats{}, 0, 100, 65536*16, 0).Metadata
	if math.Abs(big/small-4) > 1e-9 { // sqrt(16) = 4
		t.Fatalf("metadata scaling %v, want 4x", big/small)
	}
}

func TestAdd(t *testing.T) {
	a := Breakdown{Activate: 1, Read: 2, Write: 3, Refresh: 4, Background: 5, SysCache: 6, Metadata: 7}
	b := Add(a, a)
	if b.Total() != 2*a.Total() {
		t.Fatalf("Add broken: %v vs %v", b.Total(), a.Total())
	}
}

func TestAvgPowerMW(t *testing.T) {
	// 1 µJ over 1600 cycles at 1600 MHz = 1 µs → 1 W = 1000 mW.
	b := Breakdown{Read: 1e6} // 1e6 pJ = 1 µJ
	got := AvgPowerMW(b, 1600, 1600)
	if math.Abs(got-1000) > 1e-6 {
		t.Fatalf("AvgPowerMW = %v, want 1000", got)
	}
	if AvgPowerMW(b, 0, 1600) != 0 || AvgPowerMW(b, 100, 0) != 0 {
		t.Fatal("degenerate inputs must yield 0")
	}
}
