// Package power implements the memory-system power model of the
// reproduction, standing in for the proprietary vendor model the paper
// embeds in its simulator (Section 5).
//
// The model is an IDD-style energy-per-command account: every DRAM command
// class carries a fixed energy, background power accrues with wall-clock
// cycles, and the system cache and prefetcher metadata contribute per-access
// energies. The paper's power claims are driven by *extra DRAM traffic*
// (prefetch reads and the activates they cause), which is exactly what this
// model charges, so prefetcher-relative power follows the same mechanics as
// in the paper: inaccurate prefetchers pay for wasted bursts and activates,
// accurate batched prefetchers approach (or beat, via row-hit conversion)
// the no-prefetcher baseline.
package power

import (
	"math"

	"repro/internal/dram"
)

// Params holds per-event energies in picojoules and background power in
// picojoules per cycle. Defaults approximate LPDDR4 x16 datasheet-derived
// figures; only ratios matter for the reproduced comparisons.
type Params struct {
	ActPrePJ     float64 // one ACT+PRE pair (row activation energy)
	ReadBurstPJ  float64 // one 64 B read burst
	WriteBurstPJ float64 // one 64 B write burst
	RefreshPJ    float64 // one all-bank refresh
	BackgroundPJ float64 // per channel per active (CKE high) cycle
	PowerDownPJ  float64 // per channel per powered-down cycle (CKE low)
	SCAccessPJ   float64 // one system-cache lookup or fill
	MetaAccessPJ float64 // one prefetcher metadata access
}

// DefaultParams returns the default LPDDR4-class energy parameters.
func DefaultParams() Params {
	return Params{
		ActPrePJ:     1500,
		ReadBurstPJ:  1100,
		WriteBurstPJ: 1250,
		RefreshPJ:    28000,
		BackgroundPJ: 8,
		PowerDownPJ:  1.6,
		SCAccessPJ:   180,
		MetaAccessPJ: 12,
	}
}

// Breakdown is the energy decomposition of one simulation run, in picojoules.
type Breakdown struct {
	Activate   float64 `json:"activate"`
	Read       float64 `json:"read"`
	Write      float64 `json:"write"`
	Refresh    float64 `json:"refresh"`
	Background float64 `json:"background"`
	SysCache   float64 `json:"sys_cache"`
	Metadata   float64 `json:"metadata"`
}

// Total returns the summed energy in picojoules.
func (b Breakdown) Total() float64 {
	return b.Activate + b.Read + b.Write + b.Refresh + b.Background + b.SysCache + b.Metadata
}

// Model accumulates energy over DRAM statistics and cache/prefetcher event
// counts.
type Model struct {
	params Params
}

// New builds a power model; zero-valued fields of p fall back to defaults.
func New(p Params) *Model {
	d := DefaultParams()
	if p.ActPrePJ == 0 {
		p.ActPrePJ = d.ActPrePJ
	}
	if p.ReadBurstPJ == 0 {
		p.ReadBurstPJ = d.ReadBurstPJ
	}
	if p.WriteBurstPJ == 0 {
		p.WriteBurstPJ = d.WriteBurstPJ
	}
	if p.RefreshPJ == 0 {
		p.RefreshPJ = d.RefreshPJ
	}
	if p.BackgroundPJ == 0 {
		p.BackgroundPJ = d.BackgroundPJ
	}
	if p.PowerDownPJ == 0 {
		p.PowerDownPJ = d.PowerDownPJ
	}
	if p.SCAccessPJ == 0 {
		p.SCAccessPJ = d.SCAccessPJ
	}
	if p.MetaAccessPJ == 0 {
		p.MetaAccessPJ = d.MetaAccessPJ
	}
	return &Model{params: p}
}

// Params returns the effective parameters.
func (m *Model) Params() Params { return m.params }

// Account computes the energy breakdown for one channel given its DRAM
// statistics, the number of system-cache events (accesses + fills), the
// number of prefetcher metadata events (train + issue lookups), the
// prefetcher's metadata size in bits and the wall-clock duration of the run
// in cycles.
//
// Metadata access energy scales with the square root of the array size
// (SRAM wordline/bitline energy grows with array dimensions), normalised to
// a 64 Kbit array, so a large pattern table costs proportionally more per
// lookup than BOP's tiny recent-requests table.
func (m *Model) Account(ds dram.Stats, scEvents, metaEvents, metaBits, cycles uint64) Breakdown {
	p := m.params
	metaScale := 1.0
	if metaBits > 65536 {
		metaScale = math.Sqrt(float64(metaBits) / 65536)
	}
	pd := ds.PowerDownCycles
	if pd > cycles {
		pd = cycles
	}
	return Breakdown{
		Activate:   float64(ds.Activates) * p.ActPrePJ,
		Read:       float64(ds.Reads) * p.ReadBurstPJ,
		Write:      float64(ds.Writes) * p.WriteBurstPJ,
		Refresh:    float64(ds.Refreshes) * p.RefreshPJ,
		Background: float64(cycles-pd)*p.BackgroundPJ + float64(pd)*p.PowerDownPJ,
		SysCache:   float64(scEvents) * p.SCAccessPJ,
		Metadata:   float64(metaEvents) * p.MetaAccessPJ * metaScale,
	}
}

// Add merges two breakdowns (e.g. across channels).
func Add(a, b Breakdown) Breakdown {
	return Breakdown{
		Activate:   a.Activate + b.Activate,
		Read:       a.Read + b.Read,
		Write:      a.Write + b.Write,
		Refresh:    a.Refresh + b.Refresh,
		Background: a.Background + b.Background,
		SysCache:   a.SysCache + b.SysCache,
		Metadata:   a.Metadata + b.Metadata,
	}
}

// AvgPowerMW converts total energy over a cycle count into milliwatts,
// assuming the given clock frequency in MHz (LPDDR4-3200 command clock
// ≈ 1600 MHz).
func AvgPowerMW(b Breakdown, cycles uint64, clockMHz float64) float64 {
	if cycles == 0 || clockMHz <= 0 {
		return 0
	}
	seconds := float64(cycles) / (clockMHz * 1e6)
	watts := b.Total() * 1e-12 / seconds
	return watts * 1e3
}
