package sim

// Chaos matrix for the streaming/parallel pipeline (ISSUE 4): fault kind ×
// serial/parallel × sampled/warmed, run under -race in CI. The contract
// pinned here: no goroutine leaks on any failure path, errors attributed to
// the earliest failing global record, partial reports marked Truncated, and
// a faultless fault wrapper bit-identical to the bare stream.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// checkGoroutines fails the test when the goroutine count has not settled
// back to the pre-run baseline shortly after a run returns — a leaked
// channel worker or splitter.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chaosMode is one sampling/warmup cell of the matrix.
type chaosMode struct {
	name        string
	sampleEvery uint64
	warmup      float64
}

var chaosModes = []chaosMode{
	{name: "plain"},
	{name: "sampled", sampleEvery: 2_500},
	{name: "warmed", sampleEvery: 2_500, warmup: 0.25},
}

// TestChaosMatrix drives every fault kind through serial and parallel,
// plain, sampled and warmed runs. Stream-ending faults must surface their
// error with the failure position attributed and a Truncated partial
// report; non-fatal faults (corruption, truncation, a lying length) must
// leave a complete, healthy run. Every cell must return the goroutine
// count to its baseline.
func TestChaosMatrix(t *testing.T) {
	const n = 12_000
	p := workloads.Catalog()[0]
	kinds := []faults.Kind{faults.Corrupt, faults.ErrAt, faults.Truncate, faults.MisLen}
	for _, kind := range kinds {
		for _, parallel := range []bool{false, true} {
			for _, mode := range chaosModes {
				name := fmt.Sprintf("%v/parallel=%v/%s", kind, parallel, mode.name)
				t.Run(name, func(t *testing.T) {
					f := faults.Plan(kind, 0xC0FFEE, n)
					base := runtime.NumGoroutine()
					eng := engineFor(t, "planaria", parallel, mode.sampleEvery)
					rep, err := eng.RunWarmStream(
						faults.Wrap(p.Stream(n), f), p.Abbr, mode.warmup)
					if kind == faults.ErrAt {
						if !errors.Is(err, faults.ErrInjected) {
							t.Fatalf("err = %v, want ErrInjected", err)
						}
						if !rep.Truncated {
							t.Fatal("failed run returned a report not marked Truncated")
						}
						if rep.FailedAt != f.At {
							t.Fatalf("failure attributed to record %d, want %d", rep.FailedAt, f.At)
						}
					} else {
						if err != nil {
							t.Fatalf("%v fault must not fail the run: %v", kind, err)
						}
						if rep.Truncated {
							t.Fatal("healthy run marked Truncated")
						}
					}
					checkGoroutines(t, base)
				})
			}
		}
	}
}

// TestChaosCancellation: a cancelled context tears the run down — serial
// and parallel, mid-stall and pre-cancelled — returning ctx.Err() with a
// Truncated partial report and zero leaked goroutines.
func TestChaosCancellation(t *testing.T) {
	const n = 400_000
	p := workloads.Catalog()[1]
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("mid-stall/parallel=%v", parallel), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// The stream wedges for 250ms at record 10k; the cancel fires
			// during the stall, and the engine observes it at the next
			// chunk boundary.
			s := faults.Wrap(p.Stream(n),
				faults.Fault{Kind: faults.Stall, At: 10_000, StallFor: 250 * time.Millisecond})
			time.AfterFunc(25*time.Millisecond, cancel)
			rep, err := engineFor(t, "planaria", parallel, 0).RunStreamCtx(ctx, s, p.Abbr)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !rep.Truncated {
				t.Fatal("cancelled run returned a report not marked Truncated")
			}
			if rep.FailedAt < 0 || rep.FailedAt >= n {
				t.Fatalf("cancellation attributed to record %d, want before end of stream", rep.FailedAt)
			}
			checkGoroutines(t, base)
		})
		t.Run(fmt.Sprintf("pre-cancelled/parallel=%v", parallel), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			rep, err := engineFor(t, "planaria", parallel, 0).
				RunStreamCtx(ctx, p.Stream(n), p.Abbr)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !rep.Truncated || rep.FailedAt != 0 {
				t.Fatalf("pre-cancelled run: Truncated=%v FailedAt=%d, want true/0",
					rep.Truncated, rep.FailedAt)
			}
			checkGoroutines(t, base)
		})
	}
}

// panicAfter is a prefetcher that panics on its channel's nth Train call —
// a deterministic stand-in for a poisoned component inside a channel
// worker. n <= 0 never panics.
type panicAfter struct {
	prefetch.None
	n    int
	seen int
}

func (p *panicAfter) Train(prefetch.Access) {
	p.seen++
	if p.seen == p.n {
		panic(fmt.Sprintf("chaos: injected panic on train call %d", p.n))
	}
}

// nthOfChannel returns the global index of the nth (1-based) record of the
// given channel, or -1.
func nthOfChannel(tr trace.Trace, ch, n int) int64 {
	seen := 0
	for i, rec := range tr {
		if rec.Block().Channel() == ch {
			seen++
			if seen == n {
				return int64(i)
			}
		}
	}
	return -1
}

// TestChaosWorkerPanicRecovered: a panic inside a channel worker must come
// back as an error attributed to the panicking record — and when two
// channels blow up, the earliest global position wins, exactly where the
// serial engine would have stopped.
func TestChaosWorkerPanicRecovered(t *testing.T) {
	const n = 60_000
	p := workloads.Catalog()[0]
	tr := p.Generate(n)
	// Channel A dies on its 900th record, channel B on its 40th; B's is
	// the earlier global position.
	chA, chB := tr[0].Block().Channel(), -1
	for _, rec := range tr {
		if c := rec.Block().Channel(); c != chA {
			chB = c
			break
		}
	}
	if chB < 0 {
		t.Skip("single-channel trace")
	}
	posA, posB := nthOfChannel(tr, chA, 900), nthOfChannel(tr, chB, 40)
	want := posB
	if posA >= 0 && (want < 0 || posA < want) {
		want = posA
	}
	if want < 0 {
		t.Skip("trace too short for the armed panics")
	}

	for _, sampleEvery := range []uint64{0, 2_000} {
		t.Run(fmt.Sprintf("sampleEvery=%d", sampleEvery), func(t *testing.T) {
			base := runtime.NumGoroutine()
			cfg := DefaultConfig()
			cfg.SampleEvery = sampleEvery
			cfg.ParallelChannels = true
			cfg.NewPrefetcher = func(ch int) prefetch.Prefetcher {
				switch ch {
				case chA:
					return &panicAfter{n: 900}
				case chB:
					return &panicAfter{n: 40}
				}
				return &panicAfter{}
			}
			rep, err := New(cfg).RunStream(tr.Stream(), p.Abbr)
			if err == nil || !strings.Contains(err.Error(), "panic") {
				t.Fatalf("worker panic not surfaced as an error: %v", err)
			}
			if !rep.Truncated {
				t.Fatal("panicked run returned a report not marked Truncated")
			}
			if rep.FailedAt != want {
				t.Fatalf("panic attributed to record %d, want earliest failing record %d",
					rep.FailedAt, want)
			}
			checkGoroutines(t, base)
		})
	}
}

// TestChaosFirstRecordFault is the regression test for the splitter
// deadlock: a channel worker that dies on the very first record of its
// channel — with sampling enabled, so the splitter keeps scheduling
// barriers — must not wedge the splitter against the dead worker's bounded
// queue while the other workers barrier-wait. Before the drain-after-
// failure and panic-recovery fixes this hung; now it returns promptly with
// the failure attributed and no goroutines left behind.
func TestChaosFirstRecordFault(t *testing.T) {
	const n = 120_000
	p := workloads.Catalog()[2]
	tr := p.Generate(n)
	failCh := tr[0].Block().Channel()
	base := runtime.NumGoroutine()
	cfg := DefaultConfig()
	cfg.SampleEvery = 3_000
	cfg.ParallelChannels = true
	cfg.NewPrefetcher = func(ch int) prefetch.Prefetcher {
		if ch == failCh {
			return &panicAfter{n: 1}
		}
		return &panicAfter{}
	}
	done := make(chan struct{})
	var rep = struct {
		truncated bool
		failedAt  int64
		err       error
	}{}
	go func() {
		defer close(done)
		r, err := New(cfg).RunStream(tr.Stream(), p.Abbr)
		rep.truncated, rep.failedAt, rep.err = r.Truncated, r.FailedAt, err
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("first-record fault deadlocked the parallel splitter")
	}
	if rep.err == nil || !rep.truncated || rep.failedAt != 0 {
		t.Fatalf("first-record fault: err=%v truncated=%v failedAt=%d, want error/true/0",
			rep.err, rep.truncated, rep.failedAt)
	}
	checkGoroutines(t, base)
}

// TestFaultStreamTransparent is the acceptance bar for the wrapper itself:
// a no-fault faults.Stream must produce bit-identical reports to the bare
// stream — serial and parallel, plain and sampled+warmed.
func TestFaultStreamTransparent(t *testing.T) {
	const n = 18_000
	p := workloads.Catalog()[2]
	tr := p.Generate(n)
	for _, mode := range chaosModes {
		ref, err := engineFor(t, "planaria", false, mode.sampleEvery).
			RunWarmStream(tr.Stream(), p.Abbr, mode.warmup)
		if err != nil {
			t.Fatal(err)
		}
		want := reportJSON(t, ref)
		for _, parallel := range []bool{false, true} {
			rep, err := engineFor(t, "planaria", parallel, mode.sampleEvery).
				RunWarmStream(faults.Wrap(tr.Stream()), p.Abbr, mode.warmup)
			if err != nil {
				t.Fatalf("%s parallel=%v: %v", mode.name, parallel, err)
			}
			if got := reportJSON(t, rep); got != want {
				t.Errorf("%s parallel=%v: faultless wrapper diverges from bare stream\nbare:    %s\nwrapped: %s",
					mode.name, parallel, want, got)
			}
		}
	}
}

// TestClampWarmup table-tests the warmup clamp, in particular that NaN
// cannot slip through comparison-based clamping and poison the boundary
// arithmetic (int64(NaN * n) is undefined).
func TestClampWarmup(t *testing.T) {
	nan := func() float64 { var z float64; return z / z }()
	inf := func() float64 { var z float64; return 1 / z }()
	cases := []struct{ in, want float64 }{
		{nan, 0},
		{-1, 0},
		{0, 0},
		{0.5, 0.5},
		{1, 0.9},
		{2, 0.9},
		{inf, 0.9},
		{-inf, 0},
	}
	for _, c := range cases {
		if got := clampWarmup(c.in); got != c.want {
			t.Errorf("clampWarmup(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// End to end: a NaN warmup on a sized stream must behave exactly like
	// warmup 0, not corrupt the boundary.
	p := workloads.Catalog()[0]
	ref, err := engineFor(t, "planaria", false, 0).RunWarmStream(p.Stream(5_000), p.Abbr, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := engineFor(t, "planaria", false, 0).RunWarmStream(p.Stream(5_000), p.Abbr, nan)
	if err != nil {
		t.Fatalf("NaN warmup failed the run: %v", err)
	}
	if reportJSON(t, rep) != reportJSON(t, ref) {
		t.Error("NaN warmup diverges from warmup 0")
	}
}
