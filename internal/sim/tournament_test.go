package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/prefetch"
	"repro/internal/workloads"
)

// TestTournamentTransparency pins the degeneration contract: a Tournament
// holding only the Planaria composite must reproduce the bare composite's
// report bit for bit — same hits, same AMAT, same traffic, same per-origin
// attribution — serial and parallel alike (run under -race by CI). Only the
// prefetcher name and the storage budget may differ: the tournament's
// selector and shadow filters are real hardware it must account for.
func TestTournamentTransparency(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(30_000)
	bare, _ := NamedPrefetcher("planaria")
	solo := func(int) prefetch.Prefetcher {
		return prefetch.NewTournament(
			prefetch.TournamentConfig{},
			core.New(core.DefaultConfig()),
		)
	}
	for _, par := range []bool{false, true} {
		run := func(factory func(int) prefetch.Prefetcher) metrics.Report {
			cfg := DefaultConfig()
			cfg.NewPrefetcher = factory
			cfg.ParallelChannels = par
			rep, err := New(cfg).RunWarm(tr, p.Abbr, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		want := run(bare)
		got := run(solo)
		if got.Prefetcher != "tournament" {
			t.Fatalf("parallel=%v: solo tournament reports prefetcher %q", par, got.Prefetcher)
		}
		if got.StorageBits <= want.StorageBits {
			t.Errorf("parallel=%v: tournament storage %d bits does not account for selector+filters (composite alone: %d)",
				par, got.StorageBits, want.StorageBits)
		}
		// Everything else must match exactly. Metadata energy is derived
		// from StorageBits, so it rides along with the storage delta.
		got.Prefetcher, got.StorageBits = want.Prefetcher, want.StorageBits
		got.Energy.Metadata = want.Energy.Metadata
		if gj, wj := reportJSON(t, got), reportJSON(t, want); gj != wj {
			t.Errorf("parallel=%v: solo tournament diverges from bare planaria\ntournament: %s\nplanaria:   %s",
				par, gj, wj)
		}
	}
}

// TestTournamentAttribReconciles extends the cross-layer accounting
// invariant to the tournament: per-component event-level used+late totals
// must equal the aggregate report's UsefulByOrigin exactly, and issue events
// must match the queue counter — the per-component accuracy/coverage rows in
// the attribution table are real, not estimates.
func TestTournamentAttribReconciles(t *testing.T) {
	for _, p := range workloads.Catalog()[:3] {
		tr := p.Generate(40_000)
		for _, par := range []bool{false, true} {
			rep, eng := runTraced(t, "planaria-tournament", tr, p.Abbr, &events.Config{}, par, 0.25)
			snap := eng.Events().Attrib()
			useful := snap.UsefulByOrigin()
			if len(rep.UsefulByOrigin) == 0 {
				t.Fatalf("%s: no useful prefetches at all — workload too small to test", p.Abbr)
			}
			for origin, want := range rep.UsefulByOrigin {
				if got := useful[origin]; got != want {
					t.Errorf("%s parallel=%v origin %q: attrib used+late = %d, report useful = %d",
						p.Abbr, par, origin, got, want)
				}
			}
			for origin, got := range useful {
				if got != 0 && rep.UsefulByOrigin[origin] == 0 {
					t.Errorf("%s parallel=%v: origin %q has %d event-level useful but no report entry",
						p.Abbr, par, origin, got)
				}
			}
			var issued uint64
			for _, o := range snap.Origins {
				issued += o.Issued
			}
			if issued != rep.Prefetch.Issued {
				t.Errorf("%s parallel=%v: event-level issued %d != queue issued %d",
					p.Abbr, par, issued, rep.Prefetch.Issued)
			}
		}
	}
}

// TestTournamentComponentsContribute checks the tournament is a real N-way
// arbiter in system: across the first catalog apps, components beyond the
// composite answer triggers and earn useful-prefetch credit under their own
// origin names.
func TestTournamentComponentsContribute(t *testing.T) {
	contributors := map[string]uint64{}
	for _, p := range workloads.Catalog()[:3] {
		tr := p.Generate(40_000)
		rep, _ := runTraced(t, "planaria-tournament", tr, p.Abbr, nil, true, 0.25)
		for origin, n := range rep.UsefulByOrigin {
			contributors[origin] += n
		}
	}
	for _, want := range []string{"slp", "stride"} {
		if contributors[want] == 0 {
			t.Errorf("component origin %q earned no useful prefetches across apps (got %v)", want, contributors)
		}
	}
	extra := 0
	for _, origin := range []string{"stride", "markov", "accel"} {
		if contributors[origin] > 0 {
			extra++
		}
	}
	if extra < 2 {
		t.Errorf("want at least two non-composite components contributing, got %v", contributors)
	}
}
