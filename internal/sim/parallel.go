package sim

// This file implements the sharded parallel execution mode: the paper's
// system is four independent SC slices, one per LPDDR4 channel, and every
// trace record touches exactly one channel's cache, prefetcher, queue and
// DRAM controller. The engine therefore partitions the trace once by
// addr.Channel and drives each channel's record stream from its own
// goroutine.
//
// Determinism contract (see docs/PERFORMANCE.md): per-channel state after
// processing a channel's records up to global trace position i is identical
// to the serial engine's state at position i, because channels share
// nothing. The only cross-channel coupling is the metrics sampler, whose
// window boundaries depend on the global record stream — so boundaries are
// precomputed from the trace alone (planWindows mirrors metrics.Sampler.Due
// exactly), and all channels barrier at each boundary before the merged
// snapshot is taken. Reports are bit-identical to serial runs.

import (
	"sync"

	"repro/internal/addr"
	"repro/internal/trace"
)

// parallelOK reports whether Run/RunWarm should use the sharded mode.
func (e *Engine) parallelOK() bool {
	return e.cfg.ParallelChannels && addr.Channels > 1
}

// channelSplit is a trace partitioned by channel: recs[ch] holds channel
// ch's records in trace order, idx[ch] the matching global trace positions
// (used to attribute an error to the earliest failing record, as the serial
// engine would).
type channelSplit struct {
	recs [addr.Channels][]trace.Record
	idx  [addr.Channels][]int32
}

// splitTrace partitions a trace by channel in two passes (exact counts
// first, so the copies allocate once).
func splitTrace(t trace.Trace) *channelSplit {
	var counts [addr.Channels]int
	for _, rec := range t {
		counts[rec.Block().Channel()]++
	}
	s := &channelSplit{}
	for ch := range s.recs {
		s.recs[ch] = make([]trace.Record, 0, counts[ch])
		s.idx[ch] = make([]int32, 0, counts[ch])
	}
	for i, rec := range t {
		ch := rec.Block().Channel()
		s.recs[ch] = append(s.recs[ch], rec)
		s.idx[ch] = append(s.idx[ch], int32(i))
	}
	return s
}

// parWindow is one precomputed sampler window boundary: the per-channel
// record counts to process before the barrier, plus the cycle and global
// request count of the boundary record (the snapshot coordinates).
type parWindow struct {
	end      [addr.Channels]int // exclusive per-channel record counts
	cycle    uint64
	requests uint64
}

// planWindows replays the sampler's Due cadence over the trace without
// simulating anything: a window closes at exactly the records the serial
// engine's post-step Due check fires on. The scan starts from the live
// sampler base so a Run issued mid-window continues that window.
func (e *Engine) planWindows(t trace.Trace) []parWindow {
	everyReq, everyCyc := e.cfg.SampleEvery, e.cfg.SampleEveryCycles
	baseReq, baseCyc := e.sampler.Base()
	req := e.requests
	var wins []parWindow
	var counts [addr.Channels]int
	for _, rec := range t {
		counts[rec.Block().Channel()]++
		req++
		if (everyReq > 0 && req-baseReq >= everyReq) ||
			(everyCyc > 0 && rec.Cycle-baseCyc >= everyCyc) {
			wins = append(wins, parWindow{end: counts, cycle: rec.Cycle, requests: req})
			baseReq, baseCyc = req, rec.Cycle
		}
	}
	return wins
}

// runSegment advances every channel from its from-count to its to-count
// concurrently and waits for all of them. On failure it returns the error
// of the earliest failing record in global trace order, matching the error
// the serial engine would surface.
func (e *Engine) runSegment(s *channelSplit, from, to [addr.Channels]int) error {
	type chanErr struct {
		err    error
		global int32
	}
	var (
		wg   sync.WaitGroup
		errs [addr.Channels]chanErr // each goroutine writes only its slot
	)
	for ch := 0; ch < addr.Channels; ch++ {
		if from[ch] == to[ch] {
			continue
		}
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			cs := e.channels[ch]
			recs := s.recs[ch][from[ch]:to[ch]]
			for k := range recs {
				if err := cs.step(recs[k]); err != nil {
					errs[ch] = chanErr{err: err, global: s.idx[ch][from[ch]+k]}
					return
				}
			}
		}(ch)
	}
	wg.Wait()
	first := -1
	for ch := range errs {
		if errs[ch].err != nil && (first < 0 || errs[ch].global < errs[first].global) {
			first = ch
		}
	}
	if first >= 0 {
		return errs[first].err
	}
	return nil
}

// runParallel drives a whole trace through the sharded engine. Without
// sampling there are no barriers at all: the four channels run free from
// start to finish. With sampling, the channels barrier at every precomputed
// window boundary so the merged snapshot observes exactly the state the
// serial engine would have had there.
func (e *Engine) runParallel(t trace.Trace) error {
	if len(t) == 0 {
		return nil
	}
	s := splitTrace(t)
	var pos [addr.Channels]int
	if e.sampler != nil {
		for _, w := range e.planWindows(t) {
			if err := e.runSegment(s, pos, w.end); err != nil {
				return err
			}
			e.requests = w.requests
			e.sampler.Record(e.snapshot(w.cycle))
			pos = w.end
		}
	}
	var end [addr.Channels]int
	for ch := range end {
		end[ch] = len(s.recs[ch])
	}
	if err := e.runSegment(s, pos, end); err != nil {
		return err
	}
	if e.sampler != nil {
		// Mirror the serial engine's per-step request counter; the final
		// (partial) window closes in Finish.
		var reqs uint64
		for ch := range end {
			reqs += uint64(end[ch] - pos[ch])
		}
		e.requests += reqs
	}
	return nil
}
