package sim

// This file implements the sharded parallel execution mode: the paper's
// system is four independent SC slices, one per LPDDR4 channel, and every
// trace record touches exactly one channel's cache, prefetcher, queue and
// DRAM controller. The engine therefore runs one goroutine per channel and
// feeds each its records through a bounded queue of chunks, fanned out by a
// streaming splitter as the records arrive — no materialized per-channel
// slices, so a parallel run needs O(chunk) memory per channel regardless of
// trace length.
//
// Determinism contract (see docs/PERFORMANCE.md): per-channel state after
// processing a channel's records up to global trace position i is identical
// to the serial engine's state at position i, because channels share
// nothing. The only cross-channel coupling is the metrics sampler, whose
// window boundaries depend on the global record stream — the splitter sees
// that global order, so it plans boundaries on the fly by replaying
// metrics.Sampler.Due's exact arithmetic (the same computation the retired
// slice-based planWindows did up front), and all channels barrier at each
// boundary before the merged snapshot is taken. Reports are bit-identical
// to serial runs.
//
// Failure contract (docs/PERFORMANCE.md, "Failure model"): a worker that
// errors — or panics; panics are recovered into errors — never stops
// draining its queue, so the splitter can never block pushing into a dead
// worker's bounded queue and barriers always complete. The first failure
// trips a shared abort latch; the splitter stops reading the stream at the
// next chunk boundary, flushes what it already read (so an even earlier
// fault buffered for another channel is still discovered), closes the
// queues and joins every worker. The run's error is attributed to the
// earliest failing global record, exactly as the serial engine would stop.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/trace"
)

// parallelOK reports whether Run/RunWarm should use the sharded mode. The
// worker count is the engine's unit count — channels × sub-shards — so
// Config.SubShards scales a parallel run past one worker per channel.
func (e *Engine) parallelOK() bool {
	return e.cfg.ParallelChannels && len(e.units) > 1
}

// parcelQueueDepth bounds each channel's queue of in-flight chunks. With
// the building buffer and the chunk a worker is processing, a channel holds
// at most parcelQueueDepth+2 chunks at once — the memory bound of the
// parallel pipeline (≈ 6 × 96 KB per channel).
const parcelQueueDepth = 4

// parcelBuf is one recycled per-channel chunk: the records plus their
// global trace positions (used to attribute an error to the earliest
// failing record, as the serial engine would).
type parcelBuf struct {
	recs []trace.Record
	idx  []int64
}

// streamBarrier synchronises all channel workers with the splitter at a
// sampler window (or warmup) boundary: workers signal arrival and park
// until the splitter has taken its merged snapshot and closes resume.
type streamBarrier struct {
	arrived sync.WaitGroup
	resume  chan struct{}
}

// parcel is one message on a channel worker's queue: either a chunk of
// records or a barrier.
type parcel struct {
	buf     *parcelBuf
	barrier *streamBarrier
}

// stepAll drives every record of b through the channel slice. A step error
// — or a panic out of the channel's cache, prefetcher or controller, which
// is recovered here so one poisoned component cannot wedge the whole
// pipeline — is attributed to the global position of the record being
// processed.
func (cs *channelState) stepAll(b *parcelBuf) (at int64, err error) {
	k := 0
	defer func() {
		if r := recover(); r != nil {
			at = b.idx[k]
			err = fmt.Errorf("sim: channel worker panic at record %d: %v", at, r)
		}
	}()
	for k = range b.recs {
		if e := cs.step(b.recs[k]); e != nil {
			return b.idx[k], e
		}
	}
	return 0, nil
}

// runParallelStream drives a record stream through the sharded engine.
// warmAt >= 0 resets statistics immediately before global record warmAt
// (the warmup boundary); warmAt < 0 disables the reset. Without sampling
// and warmup there are no barriers at all: the four channels run free from
// start to finish behind the splitter. The returned position attributes any
// error (see consumeStream).
func (e *Engine) runParallelStream(ctx context.Context, s trace.Stream, warmAt int64) (int64, error) {
	type chanErr struct {
		err    error
		global int64
	}
	numUnits := len(e.units)
	var (
		queues  = make([]chan parcel, numUnits)
		errs    = make([]chanErr, numUnits) // each worker writes only its slot
		workers sync.WaitGroup
		abort   = make(chan struct{}) // closed once, on the first worker failure
		trip    sync.Once
	)
	pool := sync.Pool{New: func() any {
		return &parcelBuf{
			recs: make([]trace.Record, 0, trace.ChunkSize),
			idx:  make([]int64, 0, trace.ChunkSize),
		}
	}}
	for u := 0; u < numUnits; u++ {
		queues[u] = make(chan parcel, parcelQueueDepth)
		workers.Add(1)
		go func(u int) {
			defer workers.Done()
			cs := e.units[u]
			failed := false
			// The loop always runs to queue close: after a failure the
			// worker keeps draining chunks (discarding them) and keeps
			// honouring barriers, so the splitter never blocks pushing
			// into this queue and quiesce never deadlocks.
			for p := range queues[u] {
				if p.barrier != nil {
					p.barrier.arrived.Done()
					<-p.barrier.resume
					continue
				}
				if !failed {
					if at, err := cs.stepAll(p.buf); err != nil {
						errs[u] = chanErr{err: err, global: at}
						failed = true
						trip.Do(func() { close(abort) })
					} else if c := e.cfg.Counters; c != nil {
						// Chunk-granularity additive progress, like the
						// serial consumer.
						c.Add(int64(len(p.buf.recs)))
					}
				}
				p.buf.recs = p.buf.recs[:0]
				p.buf.idx = p.buf.idx[:0]
				pool.Put(p.buf)
			}
		}(u)
	}

	bufs := make([]*parcelBuf, numUnits)
	for u := range bufs {
		bufs[u] = pool.Get().(*parcelBuf)
	}
	flush := func(u int) {
		if len(bufs[u].recs) == 0 {
			return
		}
		queues[u] <- parcel{buf: bufs[u]}
		bufs[u] = pool.Get().(*parcelBuf)
	}
	// quiesce flushes every channel and parks all workers at a barrier;
	// the returned function releases them. Between the two calls the
	// splitter may read and mutate engine state freely: WaitGroup arrival
	// orders every prior step before the snapshot, and resume orders the
	// snapshot before every later step.
	quiesce := func() func() {
		b := &streamBarrier{resume: make(chan struct{})}
		b.arrived.Add(numUnits)
		for u := 0; u < numUnits; u++ {
			flush(u)
			queues[u] <- parcel{barrier: b}
		}
		b.arrived.Wait()
		return func() { close(b.resume) }
	}

	sampling := e.sampler != nil
	everyReq, everyCyc := e.cfg.SampleEvery, e.cfg.SampleEveryCycles
	var baseReq, baseCyc, req uint64
	if sampling {
		baseReq, baseCyc = e.sampler.Base()
		req = e.requests
	}

	in := make([]trace.Record, trace.ChunkSize)
	var global int64
	var cause error // cancellation, recorded at the splitter's position
splitting:
	for {
		select {
		case <-abort:
			// A worker failed; stop feeding the stream. The failing
			// record's position is in errs — attribution happens below.
			break splitting
		case <-ctx.Done():
			cause = ctx.Err()
			break splitting
		default:
		}
		n := trace.ReadChunk(s, in)
		if n == 0 {
			break
		}
		for _, rec := range in[:n] {
			if global == warmAt {
				resume := quiesce()
				e.ResetStats()
				if sampling {
					baseReq, baseCyc = e.sampler.Base()
					req = e.requests
				}
				resume()
			}
			u := unitIndex(rec.Block(), e.shards)
			b := bufs[u]
			b.recs = append(b.recs, rec)
			b.idx = append(b.idx, global)
			if len(b.recs) == trace.ChunkSize {
				flush(u)
			}
			global++
			if sampling {
				req++
				if (everyReq > 0 && req-baseReq >= everyReq) ||
					(everyCyc > 0 && rec.Cycle-baseCyc >= everyCyc) {
					resume := quiesce()
					e.requests = req
					e.sampler.Record(e.snapshot(rec.Cycle))
					resume()
					baseReq, baseCyc = req, rec.Cycle
				}
			}
		}
	}
	if cause == nil && warmAt >= global {
		// The whole (possibly empty) stream was warmup: the in-loop
		// boundary never fired, but RunWarm semantics still reset.
		resume := quiesce()
		e.ResetStats()
		if sampling {
			req = e.requests
		}
		resume()
	}
	// Flush everything already read — even when aborting. Workers keep
	// draining after a failure, the backlog is bounded by the queue depth,
	// and a fault at an earlier global position that was still buffered
	// for a healthy channel is discovered this way, keeping attribution at
	// the earliest failing record.
	for u := 0; u < numUnits; u++ {
		flush(u)
		close(queues[u])
	}
	workers.Wait()
	if sampling {
		// Mirror the serial engine's per-step request counter; the final
		// (partial) window closes in Finish.
		e.requests = req
	}
	first := -1
	for ch := range errs {
		if errs[ch].err != nil && (first < 0 || errs[ch].global < errs[first].global) {
			first = ch
		}
	}
	if first >= 0 {
		return errs[first].global, errs[first].err
	}
	if cause != nil {
		return global, cause
	}
	return global, s.Err()
}
