package sim

// This file is the streaming face of the engine: RunStream and
// RunWarmStream consume a trace.Stream with O(chunk) memory, so run length
// is bounded by throughput, not RAM. Run and RunWarm survive as thin
// compatibility shims over slice-backed streams; the record-processing code
// is shared, so streamed and materialized runs are bit-identical (pinned by
// internal/sim/stream_test.go).
//
// The Ctx variants add cooperative cancellation and are the primary entry
// points; on any failure — a stream fault, a simulation error or a
// cancelled context — the engine returns a *partial* report marked
// Truncated with the failure position in FailedAt, alongside the error,
// instead of discarding the work already done (docs/PERFORMANCE.md,
// "Failure model").

import (
	"context"
	"errors"
	"math"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrUnsizedWarmup reports a warmup fraction applied to a stream of unknown
// length: the engine cannot place the warmup boundary without a total
// record count. Wrap the stream with a known length (trace.Sized — e.g.
// ReaderStream.WithLen with trace.RecordCount of the file size) or run
// without warmup.
var ErrUnsizedWarmup = errors.New("sim: warmup fraction requires a sized stream (trace.Sized)")

// RunStream processes a whole record stream and returns the aggregated
// report. Memory use is O(chunk), independent of stream length. With
// Config.ParallelChannels set, a streaming splitter fans chunks out to one
// goroutine per channel as they arrive; the report is bit-identical to a
// serial run, and to Run on the materialized trace.
func (e *Engine) RunStream(s trace.Stream, workload string) (metrics.Report, error) {
	return e.RunStreamCtx(context.Background(), s, workload)
}

// RunStreamCtx is RunStream with cooperative cancellation: when ctx is
// cancelled the engine stops at the next chunk boundary, tears down the
// parallel splitter and every channel worker without leaking goroutines,
// and returns ctx.Err() with a partial report (Truncated set, FailedAt at
// the position the consumer had reached).
func (e *Engine) RunStreamCtx(ctx context.Context, s trace.Stream, workload string) (metrics.Report, error) {
	failedAt, err := e.consumeStream(ctx, s, -1)
	return e.finishPartial(workload, failedAt, err)
}

// RunWarmStream processes a stream with the first warmup fraction of
// records used only to warm caches and train prefetchers: statistics (and
// the metrics sampler, when enabled) are reset at the boundary, so the
// report covers the measured region alone. Fractions outside [0, 0.9] are
// clamped. A positive fraction needs a sized stream (ErrUnsizedWarmup
// otherwise); slice and generator streams always know their length.
func (e *Engine) RunWarmStream(s trace.Stream, workload string, warmup float64) (metrics.Report, error) {
	return e.RunWarmStreamCtx(context.Background(), s, workload, warmup)
}

// RunWarmStreamCtx is RunWarmStream with cooperative cancellation (see
// RunStreamCtx for the cancellation and partial-report contract).
func (e *Engine) RunWarmStreamCtx(ctx context.Context, s trace.Stream, workload string, warmup float64) (metrics.Report, error) {
	warmup = clampWarmup(warmup)
	var warmAt int64
	if warmup > 0 {
		n := trace.StreamLen(s)
		if n < 0 {
			// Nothing ran: no partial report to salvage.
			return metrics.Report{}, ErrUnsizedWarmup
		}
		warmAt = int64(float64(n) * warmup)
	}
	failedAt, err := e.consumeStream(ctx, s, warmAt)
	return e.finishPartial(workload, failedAt, err)
}

// finishPartial builds the report; on error it is marked as the partial
// result of a truncated run, with the failure position attached.
func (e *Engine) finishPartial(workload string, failedAt int64, err error) (metrics.Report, error) {
	rep := e.Finish(workload)
	if err != nil {
		rep.Truncated = true
		rep.FailedAt = failedAt
	}
	return rep, err
}

// clampWarmup maps a warmup fraction into [0, 0.9]; NaN and negatives
// disable warmup (a NaN must not survive the clamp — every comparison
// against it is false, so it would otherwise slip through and poison the
// warmup boundary arithmetic).
func clampWarmup(w float64) float64 {
	switch {
	case math.IsNaN(w) || w < 0:
		return 0
	case w > 0.9:
		return 0.9
	}
	return w
}

// consumeStream drives every record of s through the engine, resetting
// statistics immediately before global record warmAt (warmAt < 0 disables
// the reset; warmAt at or past the end of the stream resets after the last
// record, matching RunWarm's t[:w] / reset / t[w:] split for every w).
// Cancellation is observed at chunk boundaries. The returned position is
// where any error is attributed: the failing record for simulation errors,
// the records delivered for stream faults, the stop position for
// cancellation. It is meaningless when err is nil.
func (e *Engine) consumeStream(ctx context.Context, s trace.Stream, warmAt int64) (int64, error) {
	if c := e.cfg.Counters; c != nil {
		c.Start()
	}
	if e.parallelOK() {
		return e.runParallelStream(ctx, s, warmAt)
	}
	buf := make([]trace.Record, trace.ChunkSize)
	var global, counted int64
	for {
		select {
		case <-ctx.Done():
			return global, ctx.Err()
		default:
		}
		n := trace.ReadChunk(s, buf)
		if n == 0 {
			break
		}
		for _, rec := range buf[:n] {
			if global == warmAt {
				e.ResetStats()
			}
			if err := e.Step(rec); err != nil {
				return global, err
			}
			global++
		}
		// Progress is published at chunk granularity — one atomic add per
		// ~ChunkSize records keeps -progress and -debug-addr nearly free —
		// and additively, so sequential runs sharing one counter set (the
		// experiments CLI) accumulate instead of rewinding.
		if c := e.cfg.Counters; c != nil {
			c.Add(global - counted)
			counted = global
		}
	}
	if warmAt >= global {
		e.ResetStats()
	}
	return global, s.Err()
}
