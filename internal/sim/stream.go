package sim

// This file is the streaming face of the engine: RunStream and
// RunWarmStream consume a trace.Stream with O(chunk) memory, so run length
// is bounded by throughput, not RAM. Run and RunWarm survive as thin
// compatibility shims over slice-backed streams; the record-processing code
// is shared, so streamed and materialized runs are bit-identical (pinned by
// internal/sim/stream_test.go).

import (
	"errors"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrUnsizedWarmup reports a warmup fraction applied to a stream of unknown
// length: the engine cannot place the warmup boundary without a total
// record count. Wrap the stream with a known length (trace.Sized — e.g.
// ReaderStream.WithLen with trace.RecordCount of the file size) or run
// without warmup.
var ErrUnsizedWarmup = errors.New("sim: warmup fraction requires a sized stream (trace.Sized)")

// RunStream processes a whole record stream and returns the aggregated
// report. Memory use is O(chunk), independent of stream length. With
// Config.ParallelChannels set, a streaming splitter fans chunks out to one
// goroutine per channel as they arrive; the report is bit-identical to a
// serial run, and to Run on the materialized trace.
func (e *Engine) RunStream(s trace.Stream, workload string) (metrics.Report, error) {
	if err := e.consumeStream(s, -1); err != nil {
		return metrics.Report{}, err
	}
	return e.Finish(workload), nil
}

// RunWarmStream processes a stream with the first warmup fraction of
// records used only to warm caches and train prefetchers: statistics (and
// the metrics sampler, when enabled) are reset at the boundary, so the
// report covers the measured region alone. Fractions outside [0, 0.9] are
// clamped. A positive fraction needs a sized stream (ErrUnsizedWarmup
// otherwise); slice and generator streams always know their length.
func (e *Engine) RunWarmStream(s trace.Stream, workload string, warmup float64) (metrics.Report, error) {
	warmup = clampWarmup(warmup)
	var warmAt int64
	if warmup > 0 {
		n := trace.StreamLen(s)
		if n < 0 {
			return metrics.Report{}, ErrUnsizedWarmup
		}
		warmAt = int64(float64(n) * warmup)
	}
	if err := e.consumeStream(s, warmAt); err != nil {
		return metrics.Report{}, err
	}
	return e.Finish(workload), nil
}

// clampWarmup maps a warmup fraction into [0, 0.9]; NaN and negatives
// disable warmup.
func clampWarmup(w float64) float64 {
	switch {
	case w < 0 || w != w: // negative or NaN
		return 0
	case w > 0.9:
		return 0.9
	}
	return w
}

// consumeStream drives every record of s through the engine, resetting
// statistics immediately before global record warmAt (warmAt < 0 disables
// the reset; warmAt at or past the end of the stream resets after the last
// record, matching RunWarm's t[:w] / reset / t[w:] split for every w).
func (e *Engine) consumeStream(s trace.Stream, warmAt int64) error {
	if e.parallelOK() {
		return e.runParallelStream(s, warmAt)
	}
	buf := make([]trace.Record, trace.ChunkSize)
	var global int64
	for {
		n := trace.ReadChunk(s, buf)
		if n == 0 {
			break
		}
		for _, rec := range buf[:n] {
			if global == warmAt {
				e.ResetStats()
			}
			if err := e.Step(rec); err != nil {
				return err
			}
			global++
		}
	}
	if warmAt >= global {
		e.ResetStats()
	}
	return s.Err()
}
