package sim

import (
	"fmt"
	"runtime"
	"strconv"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bop"
	"repro/internal/prefetch/spp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config parameterises one simulation run.
type Config struct {
	Cache        cache.Config // per-channel SC slice
	DRAM         dram.Config
	SCHitLatency uint64 // cycles for an SC hit (tag + data)
	Power        power.Params

	// NewPrefetcher builds the per-channel prefetcher. The engine calls
	// it once per channel.
	NewPrefetcher func(channel int) prefetch.Prefetcher

	// MaxPerTrigger clamps the number of prefetches accepted per demand
	// trigger (hardware prefetch queue insert bandwidth).
	MaxPerTrigger int
	// QueueCapacity bounds each channel's prefetch queue.
	QueueCapacity int
	// PrefetchLatency is the delay before a prefetched block becomes
	// usable in the SC (queue + DRAM service). A demand arriving earlier
	// sees a "late prefetch": it waits out the remaining time instead of
	// paying a full miss. This is the timeliness model — without it,
	// shallow delta prefetchers would enjoy zero-lead-time coverage they
	// cannot have in hardware.
	PrefetchLatency uint64
	// ThrottleOutstanding caps the number of in-flight prefetches per
	// channel; candidates beyond the cap are rejected. Zero disables the
	// throttle. This is the utilization-aware extension: it bounds the
	// DRAM bandwidth any prefetcher can consume, a natural hardening for
	// the paper's power-constrained setting.
	ThrottleOutstanding int

	// ParallelChannels runs Run/RunWarm with one goroutine per DRAM
	// channel. The paper's system is four independent SC slices — each
	// trace record touches exactly one channel's cache, prefetcher, queue
	// and controller — so the trace is partitioned once by channel and
	// the per-channel streams execute concurrently. Reports are
	// bit-identical to the serial engine (see docs/PERFORMANCE.md for the
	// determinism/merge contract). DefaultConfig enables it; Step always
	// runs serially.
	ParallelChannels bool

	// SubShards splits each channel into this many address-hashed
	// execution units, so a parallel run scales past one worker per
	// channel on wide hosts. A unit owns a 1/SubShards slice of the
	// channel's SC capacity, its own DRAM controller (a bank-level
	// parallelism approximation), prefetcher instance and queue; records
	// route to units by a hash of the trigger's 64-page group, which
	// keeps TLP's distance-64 neighbourhoods — and with them every
	// built-in prefetcher's candidates — inside one unit. Values ≤ 1 (and
	// the zero value) mean one unit per channel, which is bit-identical
	// to the engine before sub-sharding existed. SubShards > 1 simulates
	// a different (more finely sliced) system geometry: reports are
	// deterministic and serial/parallel-identical at any fixed value, but
	// differ across values. Non-power-of-two values are rounded down so
	// per-unit set counts stay powers of two.
	SubShards int

	// SampleEvery closes a metrics time-series window every N trace
	// records; SampleEveryCycles closes one whenever the trace clock has
	// advanced by at least N cycles since the last window boundary.
	// Either cadence (or both) may be set; when both are zero, sampling
	// is disabled entirely and the engine's hot path pays only a nil
	// check per step. See metrics.Sampler and docs/OBSERVABILITY.md.
	SampleEvery       uint64
	SampleEveryCycles uint64

	// Events enables decision-level event tracing: the engine builds one
	// events.ChannelSink per channel, installs it on prefetchers that
	// implement SetEventSink(events.Sink), and emits the prefetch
	// lifecycle (demand, issue, fill, used, late-hit, evicted-unused)
	// itself. Nil disables tracing entirely — the hot path then pays one
	// nil check per emission site and zero allocations. Event emission
	// never mutates simulation state, so reports are bit-identical with
	// tracing on or off. See docs/TRACING.md.
	Events *events.Config

	// Counters, when non-nil, receives live processed-record counts at
	// chunk granularity from the streaming run paths (RunStream and the
	// parallel workers) — the backing state of -progress and -debug-addr.
	Counters *events.RunCounters

	// Telemetry, when non-nil, enables live production metrics: the
	// engine registers per-unit atomic counters and log₂-bucketed latency
	// histograms on the registry (demand mix, prefetch timeliness, DRAM
	// latency/queue/row-buffer, tournament component wins) and records
	// into them from the hot paths. The registry is scrape-safe mid-run —
	// it backs the -debug-addr /metrics handler — and its Summary lands
	// in the report (Report.Telemetry). Instruments cover the whole run
	// including warmup and are never reset (Prometheus counter
	// semantics); the report aggregates remain measured-region-only. Nil
	// disables everything: the hot path then pays one nil check per site,
	// zero allocations, and the report is bit-identical to a run without
	// telemetry (the events.Sink pattern).
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the paper's system: 4 × 1 MB 16-way SC slices,
// Table 1 LPDDR4 timing, 30-cycle SC hit latency, parallel per-channel
// execution.
func DefaultConfig() Config {
	return Config{
		Cache:            cache.DefaultConfig(),
		DRAM:             dram.DefaultConfig(),
		SCHitLatency:     30,
		NewPrefetcher:    func(int) prefetch.Prefetcher { return prefetch.None{} },
		MaxPerTrigger:    16,
		QueueCapacity:    64,
		PrefetchLatency:  110,
		ParallelChannels: true,
	}
}

// NamedPrefetcher returns a prefetcher factory for the given name:
// "none", "nextline", "stride", "markov", "accel", "bop", "spp",
// "planaria", "planaria-slp", "planaria-tlp", "planaria-serial",
// "planaria-parallel", "planaria-tournament".
func NamedPrefetcher(name string) (func(int) prefetch.Prefetcher, error) {
	switch name {
	case "none":
		return func(int) prefetch.Prefetcher { return prefetch.None{} }, nil
	case "nextline":
		return func(int) prefetch.Prefetcher { return prefetch.NewNextLine(2) }, nil
	case "stride":
		return func(int) prefetch.Prefetcher { return prefetch.NewStride(256, 2) }, nil
	case "bop":
		return func(int) prefetch.Prefetcher { return bop.New(bop.DefaultConfig()) }, nil
	case "spp":
		return func(int) prefetch.Prefetcher { return spp.New(spp.DefaultConfig()) }, nil
	case "spp-ghr":
		return func(int) prefetch.Prefetcher { return spp.NewGHR(spp.DefaultConfig()) }, nil
	case "planaria":
		return func(int) prefetch.Prefetcher { return core.New(core.DefaultConfig()) }, nil
	case "planaria-slp":
		cfg := core.DefaultConfig()
		cfg.DisableTLP = true
		return func(int) prefetch.Prefetcher { return core.New(cfg) }, nil
	case "planaria-tlp":
		cfg := core.DefaultConfig()
		cfg.DisableSLP = true
		return func(int) prefetch.Prefetcher { return core.New(cfg) }, nil
	case "planaria-serial":
		cfg := core.DefaultConfig()
		cfg.Mode = core.Serial
		return func(int) prefetch.Prefetcher { return core.New(cfg) }, nil
	case "planaria-parallel":
		cfg := core.DefaultConfig()
		cfg.Mode = core.Parallel
		return func(int) prefetch.Prefetcher { return core.New(cfg) }, nil
	case "markov":
		return func(int) prefetch.Prefetcher { return prefetch.NewMarkov(prefetch.DefaultMarkovConfig()) }, nil
	case "accel":
		return func(int) prefetch.Prefetcher { return prefetch.NewAccel(prefetch.DefaultAccelConfig()) }, nil
	case "planaria-tournament":
		return TournamentPrefetcher(), nil
	}
	return nil, fmt.Errorf("sim: unknown prefetcher %q", name)
}

// TournamentPrefetcher returns the factory behind "planaria-tournament":
// per channel, a prefetch.Tournament over the Planaria composite (component
// 0, the priority fallback — so the paper's SLP-priority rule survives as
// the default) plus the three PC-free delta-family components (stride,
// Markov-2, accel) under the default set-dueling meta-predictor. See
// docs/PREFETCHERS.md for the component algorithms and storage budgets.
func TournamentPrefetcher() func(int) prefetch.Prefetcher {
	return func(int) prefetch.Prefetcher {
		return prefetch.NewTournament(
			prefetch.TournamentConfig{Name: "planaria-tournament"},
			core.New(core.DefaultConfig()),
			prefetch.NewStride(256, 2),
			prefetch.NewMarkov(prefetch.DefaultMarkovConfig()),
			prefetch.NewAccel(prefetch.DefaultAccelConfig()),
		)
	}
}

// PrefetcherNames lists the names accepted by NamedPrefetcher.
func PrefetcherNames() []string {
	return []string{
		"none", "nextline", "stride", "markov", "accel", "bop", "spp", "spp-ghr",
		"planaria", "planaria-slp", "planaria-tlp",
		"planaria-serial", "planaria-parallel", "planaria-tournament",
	}
}

// channelState is the complete state of one execution unit — a channel's
// memory-system slice, or one sub-shard of it when Config.SubShards > 1.
// Units share nothing (the config pointer is read-only), which is what
// makes the sharded parallel mode safe: each instance is driven by exactly
// one goroutine at a time.
type channelState struct {
	cfg   *Config
	cache *cache.Cache
	dram  *dram.Controller
	pf    prefetch.Prefetcher
	queue *prefetch.Queue

	// unit is this state's index in Engine.units; shards is the per-channel
	// sub-shard count. Together they let step reject prefetch candidates
	// that belong to another unit without reaching into the engine.
	unit   int
	shards int

	// tracker is pf's origin interface, resolved once at construction so
	// the hot path pays no type assertion.
	tracker originTracker

	// issuer is pf's buffered-issue interface (nil when pf only implements
	// Issue), and cands the persistent candidate buffer threaded through
	// it — the issuing phase of every built-in prefetcher runs without a
	// single allocation this way.
	issuer prefetch.BufferedIssuer
	cands  []addr.BlockNum

	// In-flight prefetches, FIFO by readiness (constant latency).
	pending pendingRing

	// Origin interning: sub-prefetcher names ("slp", "tlp") are mapped to
	// small dense ids once, and the hot path deals only in ids —
	// usefulOrigin is indexed by id, and the id of a resident prefetched
	// line rides in the cache line itself (cache.FillOrigin), so there is
	// no per-block side map to maintain.
	originIDs    map[string]uint8
	originNames  []string // id → name; index 0 is the empty origin
	usefulOrigin []uint64 // useful-prefetch counts by origin id
	lateOrigin   []uint64 // late-prefetch-hit counts by origin id
	lastOrigin   string   // memoised last interned name (origins repeat)
	lastOriginID uint8

	// ev is this channel's event sink; nil when tracing is disabled.
	// originEv maps interned origin ids to the event-level Origin enum so
	// emission never re-parses names.
	ev       *events.ChannelSink
	originEv []events.Origin

	// tel holds this unit's telemetry instruments; nil when telemetry is
	// disabled (Config.Telemetry), in which case every recording site
	// below reduces to one pointer check.
	tel *unitTelemetry

	metaEvents uint64 // prefetcher table touches for the power model
	scEvents   uint64 // SC lookups + fills

	hitLatency   uint64 // accumulated demand-read hit latency
	lateLatency  uint64 // accumulated latency of late-prefetch read hits
	lateHits     uint64 // demand reads served by an in-flight prefetch
	demandReads  uint64
	demandWrites uint64
	lastCycle    uint64

	statsFrom uint64 // cycle of the last ResetStats (wall-clock baseline)
}

// originTracker is implemented by composite prefetchers (Planaria) that can
// say which sub-prefetcher answered the most recent Issue call.
type originTracker interface {
	Origin() string
}

// eventSinkSetter is implemented by prefetchers that emit decision events
// (Planaria and its sub-prefetchers). Discovered by type assertion, like
// originTracker, so prefetch.Prefetcher and the baselines stay untouched.
type eventSinkSetter interface {
	SetEventSink(events.Sink)
}

// telemetrySetter is implemented by prefetchers that expose their own live
// instruments (the Tournament's per-component win counters and selector
// scores). Discovered by type assertion, like eventSinkSetter.
type telemetrySetter interface {
	SetTelemetry(*telemetry.Registry, ...telemetry.Label)
}

// MetricDRAMDemandReadLatency is the telemetry family name of the DRAM
// demand-read latency histogram — the distribution behind the progress
// line's and /progress's live p99. Exported so tools can query
// Registry.Quantile against the same family the engine records into.
const MetricDRAMDemandReadLatency = "planaria_dram_demand_read_latency_cycles"

// unitTelemetry is one execution unit's set of engine-level instruments,
// registered on Config.Telemetry with channel/shard labels so hot-path
// atomics stay uncontended (the events.RunCounters sharding pattern).
// The DRAM controller's instruments are installed separately via
// dram.Controller.SetTelemetry.
type unitTelemetry struct {
	demandReads  *telemetry.Counter
	demandWrites *telemetry.Counter
	demandHits   *telemetry.Counter
	demandMisses *telemetry.Counter
	prefIssued   *telemetry.Counter
	lateHits     *telemetry.Counter
	lateWait     *telemetry.Histogram // cycles a late demand waited on an in-flight prefetch
	firstUseGap  *telemetry.Histogram // cycles between a prefetch fill and its first demand use
}

// newUnitTelemetry registers one unit's instruments. The metric taxonomy
// lives in docs/OBSERVABILITY.md; names are stable scrape API.
func newUnitTelemetry(reg *telemetry.Registry, ch, shard int) *unitTelemetry {
	ls := []telemetry.Label{
		{Key: "channel", Value: strconv.Itoa(ch)},
		{Key: "shard", Value: strconv.Itoa(shard)},
	}
	return &unitTelemetry{
		demandReads: reg.Counter("planaria_demand_reads_total",
			"Demand read requests observed by the system cache.", ls...),
		demandWrites: reg.Counter("planaria_demand_writes_total",
			"Demand write requests observed by the system cache.", ls...),
		demandHits: reg.Counter("planaria_demand_hits_total",
			"Demand accesses that hit in the system cache.", ls...),
		demandMisses: reg.Counter("planaria_demand_misses_total",
			"Demand accesses that missed in the system cache.", ls...),
		prefIssued: reg.Counter("planaria_prefetch_issued_total",
			"Prefetch requests issued to DRAM.", ls...),
		lateHits: reg.Counter("planaria_prefetch_late_hits_total",
			"Demand reads served by a prefetch still in flight.", ls...),
		lateWait: reg.Histogram("planaria_prefetch_late_wait_cycles",
			"Cycles a late-hit demand waited out of the in-flight prefetch's remaining latency.", ls...),
		firstUseGap: reg.Histogram("planaria_prefetch_first_use_gap_cycles",
			"Cycles between a prefetch fill landing and its first demand use (timeliness headroom).", ls...),
	}
}

// newDRAMTelemetry registers one unit's DRAM-controller instruments.
func newDRAMTelemetry(reg *telemetry.Registry, ch, shard int) *dram.Telemetry {
	ls := []telemetry.Label{
		{Key: "channel", Value: strconv.Itoa(ch)},
		{Key: "shard", Value: strconv.Itoa(shard)},
	}
	return &dram.Telemetry{
		DemandReadLatency: reg.Histogram(MetricDRAMDemandReadLatency,
			"Total DRAM service latency of demand reads, queueing included.", ls...),
		QueueDepth: reg.Histogram("planaria_dram_queue_depth",
			"Controller queue occupancy observed at each enqueue.", ls...),
		RowHits: reg.Counter("planaria_dram_row_hits_total",
			"DRAM accesses serviced from an open row.", ls...),
		RowMisses: reg.Counter("planaria_dram_row_misses_total",
			"DRAM accesses that hit a row conflict (precharge + activate).", ls...),
		RowEmpty: reg.Counter("planaria_dram_row_empty_total",
			"DRAM accesses to a closed bank (activate only).", ls...),
	}
}

// Engine is one simulation instance. Not safe for concurrent use by
// callers; with Config.ParallelChannels set, Run and RunWarm internally
// drive every execution unit (channel × sub-shard) from one goroutine each.
type Engine struct {
	cfg    Config
	units  []*channelState // len = addr.Channels × shards; unit u serves channel u/shards
	shards int             // sub-shards per channel (≥ 1, power of two)
	pfName string

	// Observability: requests counts records since the last statistics
	// reset; sampler is nil unless a sampling cadence was configured;
	// recorder is nil unless event tracing was configured.
	requests uint64
	sampler  *metrics.Sampler
	recorder *events.Recorder
}

// New builds an engine; it panics on an invalid configuration
// (construction-time programming error).
func New(cfg Config) *Engine {
	if cfg.NewPrefetcher == nil {
		cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.None{} }
	}
	if cfg.SCHitLatency == 0 {
		cfg.SCHitLatency = 30
	}
	if cfg.MaxPerTrigger <= 0 {
		cfg.MaxPerTrigger = 16
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.Cache.SizeBytes == 0 {
		cfg.Cache = cache.DefaultConfig()
	}
	if cfg.DRAM.Timing.TRAS == 0 {
		cfg.DRAM = dram.DefaultConfig()
	}
	shards := cfg.SubShards
	if shards < 1 {
		shards = 1
	}
	// Round down to a power of two, then halve until the per-unit cache
	// slice still validates (set counts must stay powers of two).
	for shards&(shards-1) != 0 {
		shards &= shards - 1
	}
	for shards > 1 {
		ccfg := cfg.Cache
		ccfg.SizeBytes /= shards
		if ccfg.Validate() == nil {
			break
		}
		shards >>= 1
	}
	e := &Engine{cfg: cfg, shards: shards}
	numUnits := addr.Channels * shards
	if cfg.Events != nil {
		// One event sink per unit: the recorder treats units as channels,
		// which every consumer (chrome trace, attribution) handles since
		// they iterate Recorder.Channels().
		e.recorder = events.NewRecorder(numUnits, cfg.Events.RingSize)
	}
	e.units = make([]*channelState, numUnits)
	for u := 0; u < numUnits; u++ {
		ch := u / shards
		ccfg := cfg.Cache
		ccfg.SizeBytes /= shards // constant total SC capacity per channel
		ccfg.Seed += int64(u)    // equals the old per-channel seeding when shards == 1
		pf := cfg.NewPrefetcher(ch)
		cs := &channelState{
			cfg:          &e.cfg,
			cache:        cache.New(ccfg),
			dram:         dram.NewController(cfg.DRAM),
			pf:           pf,
			queue:        prefetch.NewQueue(cfg.QueueCapacity),
			unit:         u,
			shards:       shards,
			originIDs:    make(map[string]uint8),
			originNames:  []string{""},
			usefulOrigin: []uint64{0},
			lateOrigin:   []uint64{0},
			originEv:     []events.Origin{events.OriginNone},
		}
		cs.tracker, _ = pf.(originTracker)
		cs.issuer, _ = pf.(prefetch.BufferedIssuer)
		if e.recorder != nil {
			cs.ev = e.recorder.Channel(u)
			if es, ok := pf.(eventSinkSetter); ok {
				es.SetEventSink(cs.ev)
			}
		}
		if cfg.Telemetry != nil {
			shard := u % shards
			cs.tel = newUnitTelemetry(cfg.Telemetry, ch, shard)
			cs.dram.SetTelemetry(newDRAMTelemetry(cfg.Telemetry, ch, shard))
			cs.cache.EnableFillStamps()
			if ts, ok := pf.(telemetrySetter); ok {
				ts.SetTelemetry(cfg.Telemetry,
					telemetry.Label{Key: "channel", Value: strconv.Itoa(ch)},
					telemetry.Label{Key: "shard", Value: strconv.Itoa(shard)})
			}
		}
		e.units[u] = cs
		if u == 0 {
			e.pfName = pf.Name()
		}
	}
	if cfg.SampleEvery > 0 || cfg.SampleEveryCycles > 0 {
		e.sampler = metrics.NewSampler(cfg.SampleEvery, cfg.SampleEveryCycles)
	}
	if cfg.Counters != nil && cfg.Telemetry != nil {
		// Progress snapshots (the -progress printer, /progress) gain the
		// live p99 demand latency from the merged telemetry histogram.
		reg := cfg.Telemetry
		cfg.Counters.SetLatencySource(func() (float64, bool) {
			return reg.Quantile(MetricDRAMDemandReadLatency, 0.99)
		})
	}
	return e
}

// AutoSubShards returns the sub-shard count the CLIs' "-subshards 0"
// (auto) resolves to on this host: the smallest power of two M such that
// channels × M covers GOMAXPROCS workers, capped at 8 — the deepest
// slicing the default 1 MB per-channel cache supports. A host with at most
// one worker per channel resolves to 1, i.e. the unsharded paper geometry.
// Note sub-sharding is a simulated-geometry choice, not just an execution
// knob: absolute numbers at M > 1 differ from M = 1, and the report header
// records the geometry so runs are always comparable knowingly.
func AutoSubShards() int {
	p := runtime.GOMAXPROCS(0)
	m := 1
	for m < 8 && addr.Channels*m < p {
		m <<= 1
	}
	return m
}

// unitIndex routes a block to its execution unit: the owning channel when
// the engine runs one unit per channel, otherwise one of the channel's
// sub-shards, selected by a multiplicative hash of the block's 64-page
// group. Hashing at page-group granularity (page >> 6) keeps TLP's
// distance-64 neighbourhoods — and with them every built-in prefetcher's
// cross-page candidates — inside a single unit; hashing at bank granularity
// would split SLP footprints because banks interleave within a page.
func unitIndex(b addr.BlockNum, shards int) int {
	ch := b.Channel()
	if shards == 1 {
		return ch
	}
	g := uint64(b.Page()) >> 6
	return ch*shards + int(((g*0x9E3779B97F4A7C15)>>32)%uint64(shards))
}

// PrefetcherName returns the name of the configured prefetcher.
func (e *Engine) PrefetcherName() string { return e.pfName }

// SubShards returns the effective per-channel sub-shard count (≥ 1; see
// Config.SubShards for how requested values are normalised).
func (e *Engine) SubShards() int { return e.shards }

// Channel exposes a channel's prefetcher (for breakdown analyses). With
// sub-sharding enabled it returns the channel's first unit.
func (e *Engine) Channel(ch int) prefetch.Prefetcher { return e.units[ch*e.shards].pf }

// Events returns the event recorder, nil unless Config.Events was set.
// Consumers read rings only after a run has returned; the attribution
// snapshot is safe to take live.
func (e *Engine) Events() *events.Recorder { return e.recorder }

// Counters returns the live progress counters, nil unless Config.Counters
// was set.
func (e *Engine) Counters() *events.RunCounters { return e.cfg.Counters }

// Telemetry returns the live metrics registry, nil unless Config.Telemetry
// was set. The registry is scrape-safe mid-run from any goroutine.
func (e *Engine) Telemetry() *telemetry.Registry { return e.cfg.Telemetry }

// DRAM exposes a channel's memory controller (debugging and tooling). With
// sub-sharding enabled it returns the controller of the channel's first unit.
func (e *Engine) DRAM(ch int) *dram.Controller { return e.units[ch*e.shards].dram }

// ResetStats discards all statistics gathered so far while preserving the
// functional and timing state of every component — the standard warmup
// mechanism: run the first part of a trace, call ResetStats, then measure
// the rest against warm caches and trained prefetchers.
func (e *Engine) ResetStats() {
	for _, cs := range e.units {
		cs.cache.ResetStats()
		cs.dram.ResetStats()
		cs.queue.ResetStats()
		cs.metaEvents = 0
		cs.scEvents = 0
		cs.hitLatency = 0
		cs.lateLatency = 0
		cs.lateHits = 0
		cs.demandReads = 0
		cs.demandWrites = 0
		for i := range cs.usefulOrigin {
			cs.usefulOrigin[i] = 0
		}
		for i := range cs.lateOrigin {
			cs.lateOrigin[i] = 0
		}
		cs.statsFrom = cs.lastCycle
	}
	if e.recorder != nil {
		// Event-level attribution must cover the same measured region as
		// the aggregate report, or the two stop reconciling. Rings are
		// left intact — warmup events are still useful context in a trace.
		e.recorder.ResetAttrib()
	}
	e.requests = 0
	if e.sampler != nil {
		var from uint64
		for _, cs := range e.units {
			if cs.lastCycle > from {
				from = cs.lastCycle
			}
		}
		e.sampler.Reset(from)
	}
}

// internOrigin maps a sub-prefetcher name to its per-channel dense id,
// growing the id space on first sight. Id 0 is the empty origin; an
// (implausible) 256th distinct origin degrades to untracked.
func (cs *channelState) internOrigin(name string) uint8 {
	if name == "" {
		return 0
	}
	if name == cs.lastOrigin {
		return cs.lastOriginID
	}
	id, ok := cs.originIDs[name]
	if !ok {
		if len(cs.originNames) > 255 {
			return 0
		}
		id = uint8(len(cs.originNames))
		cs.originNames = append(cs.originNames, name)
		cs.usefulOrigin = append(cs.usefulOrigin, 0)
		cs.lateOrigin = append(cs.lateOrigin, 0)
		cs.originEv = append(cs.originEv, events.OriginFromName(name))
		cs.originIDs[name] = id
	}
	cs.lastOrigin, cs.lastOriginID = name, id
	return id
}

// commitPending lands every in-flight prefetch whose latency has elapsed.
func (cs *channelState) commitPending(now uint64) error {
	for cs.pending.size() > 0 && cs.pending.front().ready <= now {
		p := *cs.pending.front()
		cs.pending.pop()
		// A fill whose demand already waited on it arrives "pre-used":
		// the usefulness credit was given as a late hit.
		ev := cs.cache.FillOrigin(p.block, !p.usedLate, false, p.origin)
		if err := cs.writeback(ev, now); err != nil {
			return err
		}
		cs.noteEvict(ev, p.ready)
		if cs.tel != nil && !p.usedLate {
			// Stamp the fill cycle so the first demand use can report the
			// fill→use gap (pre-used fills were already credited late).
			cs.cache.StampFill(p.block, p.ready)
		}
		if p.origin != 0 && p.usedLate {
			cs.usefulOrigin[p.origin]++
		}
		if cs.ev != nil {
			// FlagLate here is the fill-time half of the late-hit credit:
			// attribution counts "late" when the fill lands, matching
			// when usefulOrigin is credited above.
			var fl events.Flags
			if p.usedLate {
				fl = events.FlagLate
			}
			cs.ev.Emit(events.Event{
				Kind: events.KindFill, Cycle: p.ready, Block: p.block,
				Origin: cs.evOrigin(p.origin), Flags: fl,
			})
		}
		cs.queue.Complete(p.block)
		cs.scEvents++
	}
	return nil
}

// evOrigin maps an interned origin id to the event-level Origin enum.
func (cs *channelState) evOrigin(id uint8) events.Origin {
	if int(id) < len(cs.originEv) {
		return cs.originEv[id]
	}
	return events.OriginNone
}

// noteEvict emits the evicted-unused terminal event when a fill's victim was
// a never-demanded prefetch.
func (cs *channelState) noteEvict(ev cache.EvictInfo, cycle uint64) {
	if cs.ev == nil || !ev.Valid || !ev.Prefetched {
		return
	}
	cs.ev.Emit(events.Event{
		Kind: events.KindEvictUnused, Cycle: cycle, Block: ev.Block,
		Origin: cs.evOrigin(ev.Origin),
	})
}

// step processes one trace record belonging to this channel. It touches no
// engine-global state, which is the invariant the parallel mode rests on.
func (cs *channelState) step(rec trace.Record) error {
	blk := rec.Block()
	if rec.Cycle > cs.lastCycle {
		cs.lastCycle = rec.Cycle
	}
	if err := cs.commitPending(rec.Cycle); err != nil {
		return err
	}
	cs.scEvents++

	hit, firstUse, originID := cs.cache.AccessOrigin(blk, rec.Write)
	if firstUse {
		if originID != 0 {
			cs.usefulOrigin[originID]++
		}
		if cs.ev != nil {
			cs.ev.Emit(events.Event{
				Kind: events.KindUsed, Cycle: rec.Cycle, Block: blk,
				Origin: cs.evOrigin(originID),
			})
		}
		if cs.tel != nil {
			if at, ok := cs.cache.FillStamp(blk); ok && rec.Cycle >= at {
				cs.tel.firstUseGap.Record(rec.Cycle - at)
			}
		}
	}
	// late stays valid only until the next pending push; every use below
	// happens before the issuing phase appends.
	var late *pendingFill
	if !hit {
		late = cs.pending.find(blk)
	}
	if cs.ev != nil {
		var fl events.Flags
		if rec.Write {
			fl |= events.FlagWrite
		}
		if hit {
			fl |= events.FlagHit
		}
		if late != nil {
			fl |= events.FlagLate
		}
		cs.ev.Emit(events.Event{Kind: events.KindDemand, Cycle: rec.Cycle, Block: blk, Flags: fl})
	}
	if cs.tel != nil {
		if rec.Write {
			cs.tel.demandWrites.Inc()
		} else {
			cs.tel.demandReads.Inc()
		}
		if hit {
			cs.tel.demandHits.Inc()
		} else {
			cs.tel.demandMisses.Inc()
		}
	}
	if rec.Write {
		cs.demandWrites++
	} else {
		cs.demandReads++
		switch {
		case hit:
			cs.hitLatency += cs.cfg.SCHitLatency
		case late != nil:
			// Late prefetch: wait out the remaining fill time.
			cs.lateHits++
			cs.lateOrigin[late.origin]++
			cs.lateLatency += cs.cfg.SCHitLatency + (late.ready - rec.Cycle)
			if cs.ev != nil {
				cs.ev.Emit(events.Event{
					Kind: events.KindLateHit, Cycle: rec.Cycle, Block: blk,
					Aux: late.ready, Origin: cs.evOrigin(late.origin),
				})
			}
			if cs.tel != nil {
				cs.tel.lateHits.Inc()
				cs.tel.lateWait.Record(late.ready - rec.Cycle)
			}
		}
	}

	a := prefetch.Access{Block: blk, Cycle: rec.Cycle, Write: rec.Write, Miss: !hit}
	cs.pf.Train(a)
	cs.metaEvents++

	if !hit && late == nil {
		// Demand fill from DRAM (write misses are write-allocate
		// fetches: same priority, excluded from read AMAT).
		req := cs.dram.NewRequest()
		req.Block = blk
		req.Write = false
		req.WriteAlloc = rec.Write
		req.Arrival = rec.Cycle + cs.cfg.SCHitLatency
		if err := cs.dram.Enqueue(req); err != nil {
			return err
		}
		ev := cs.cache.Fill(blk, false, rec.Write)
		if err := cs.writeback(ev, rec.Cycle); err != nil {
			return err
		}
		cs.noteEvict(ev, rec.Cycle)
		cs.scEvents++
	}
	if late != nil {
		late.usedLate = true
		if rec.Write {
			// The write needs the line now; the in-flight fill merges
			// into it harmlessly when it lands.
			ev := cs.cache.Fill(blk, false, true)
			if err := cs.writeback(ev, rec.Cycle); err != nil {
				return err
			}
			cs.noteEvict(ev, rec.Cycle)
			cs.scEvents++
		}
	}

	// Issuing phase, through the persistent candidate buffer when the
	// prefetcher supports it (all built-ins do).
	var cands []addr.BlockNum
	if cs.issuer != nil {
		cs.cands = cs.issuer.IssueTo(a, cs.cands[:0])
		cands = cs.cands
	} else {
		cands = cs.pf.Issue(a)
	}
	var originID2 uint8
	if len(cands) > 0 {
		if cs.tracker != nil {
			originID2 = cs.internOrigin(cs.tracker.Origin())
		}
		cs.metaEvents++
	}
	issued := 0
	for _, c := range cands {
		if unitIndex(c, cs.shards) != cs.unit {
			// A prefetcher instance may only target its own unit (its
			// channel, and with sub-sharding its page-group slice of it);
			// drop foreign targets (defends against buggy custom
			// prefetchers rather than silently corrupting another unit's
			// cache). With shards == 1 this is exactly the old per-channel
			// ownership check.
			cs.queue.Reject()
			continue
		}
		if issued >= cs.cfg.MaxPerTrigger {
			cs.queue.Reject() // insert bandwidth exhausted this trigger
			continue
		}
		if n := cs.cfg.ThrottleOutstanding; n > 0 && cs.pending.size()+issued >= n {
			cs.queue.Reject() // outstanding-prefetch throttle engaged
			continue
		}
		if !cs.queue.Push(c, cs.cache.Contains(c)) {
			continue
		}
		issued++
	}
	// Drain the queue into DRAM; fills land PrefetchLatency later.
	for {
		c, ok := cs.queue.Pop()
		if !ok {
			break
		}
		req := cs.dram.NewRequest()
		req.Block = c
		req.Prefetch = true
		req.Arrival = rec.Cycle + cs.cfg.SCHitLatency
		if err := cs.dram.Enqueue(req); err != nil {
			return err
		}
		cs.pending.push(pendingFill{
			block:  c,
			ready:  rec.Cycle + cs.cfg.PrefetchLatency,
			origin: originID2,
		})
		if cs.tel != nil {
			cs.tel.prefIssued.Inc()
		}
		if cs.ev != nil {
			cs.ev.Emit(events.Event{
				Kind: events.KindIssue, Cycle: rec.Cycle, Block: c,
				Aux:    rec.Cycle + cs.cfg.PrefetchLatency,
				Origin: cs.evOrigin(originID2),
			})
		}
	}
	return nil
}

// writeback enqueues the dirty victim of a fill, if any.
func (cs *channelState) writeback(ev cache.EvictInfo, cycle uint64) error {
	if !ev.Valid || !ev.Dirty {
		return nil
	}
	req := cs.dram.NewRequest()
	req.Block = ev.Block
	req.Write = true
	req.Arrival = cycle + cs.cfg.SCHitLatency
	return cs.dram.Enqueue(req)
}

// addUsefulByOrigin folds this channel's per-id useful counts into a
// by-name map, allocating the map only when a count exists.
func (cs *channelState) addUsefulByOrigin(dst map[string]uint64) map[string]uint64 {
	for id, n := range cs.usefulOrigin {
		if id == 0 || n == 0 {
			continue
		}
		if dst == nil {
			dst = make(map[string]uint64)
		}
		dst[cs.originNames[id]] += n
	}
	return dst
}

// addLateByOrigin folds this channel's per-id late-hit counts the same way.
func (cs *channelState) addLateByOrigin(dst map[string]uint64) map[string]uint64 {
	for id, n := range cs.lateOrigin {
		if id == 0 || n == 0 {
			continue
		}
		if dst == nil {
			dst = make(map[string]uint64)
		}
		dst[cs.originNames[id]] += n
	}
	return dst
}

// Step processes one trace record (the incremental, always-serial API).
func (e *Engine) Step(rec trace.Record) error {
	cs := e.units[unitIndex(rec.Block(), e.shards)]
	if err := cs.step(rec); err != nil {
		return err
	}
	if e.sampler != nil {
		e.requests++
		if e.sampler.Due(e.requests, rec.Cycle) {
			e.sampler.Record(e.snapshot(rec.Cycle))
		}
	}
	return nil
}

// snapshot sums the live counters of every channel into one cumulative
// metrics snapshot; ReadLatency mirrors the AMAT numerator of Finish.
func (e *Engine) snapshot(cycle uint64) metrics.Snapshot {
	s := metrics.Snapshot{Cycle: cycle, Requests: e.requests}
	for _, cs := range e.units {
		cstats := cs.cache.Stats()
		dstats := cs.dram.Stats()
		qstats := cs.queue.Stats()
		s.DemandReads += cs.demandReads
		s.DemandWrites += cs.demandWrites
		s.DemandHits += cstats.DemandHits
		s.DemandMisses += cstats.DemandMisses
		s.PrefetchFills += cstats.PrefetchFills
		s.UsefulPrefetches += cstats.UsefulPrefetches
		s.LatePrefetchHits += cs.lateHits
		s.Issued += qstats.Issued
		s.DRAMReads += dstats.Reads
		s.DRAMWrites += dstats.Writes
		s.PrefReads += dstats.PrefReads
		s.ReadLatency += cs.hitLatency + cs.lateLatency +
			dstats.DemandReads*e.cfg.SCHitLatency +
			dstats.TotalDemandReadLat
		s.UsefulByOrigin = cs.addUsefulByOrigin(s.UsefulByOrigin)
		s.LateByOrigin = cs.addLateByOrigin(s.LateByOrigin)
	}
	return s
}

// Run processes a whole in-memory trace and returns the aggregated report.
// It is a compatibility shim over RunStream on a slice-backed stream: with
// Config.ParallelChannels set, chunks are fanned out to one goroutine per
// channel as the splitter walks the slice; the report is bit-identical to a
// serial run.
func (e *Engine) Run(t trace.Trace, workload string) (metrics.Report, error) {
	return e.RunStream(t.Stream(), workload)
}

// RunWarm processes a whole in-memory trace with the first warmup fraction
// of records used only to warm caches and train prefetchers: statistics
// (and the metrics sampler, when enabled) are reset at the boundary, so the
// report covers the measured region alone. Fractions outside [0, 0.9] are
// clamped. It is a compatibility shim over RunWarmStream.
func (e *Engine) RunWarm(t trace.Trace, workload string, warmup float64) (metrics.Report, error) {
	return e.RunWarmStream(t.Stream(), workload, warmup)
}

// Finish flushes the DRAM controllers and builds the report.
func (e *Engine) Finish(workload string) metrics.Report {
	rep := metrics.Report{
		Workload:       workload,
		Prefetcher:     e.pfName,
		Channels:       addr.Channels,
		SubShards:      e.shards,
		SCHitLatency:   e.cfg.SCHitLatency,
		UsefulByOrigin: make(map[string]uint64),
	}
	pm := power.New(e.cfg.Power)
	var totalReadLat, cycles, lastEnd uint64
	for _, cs := range e.units {
		// Land any still-in-flight prefetches so accounting is complete.
		_ = cs.commitPending(^uint64(0))
		cs.dram.Flush()
		cstats := cs.cache.Stats()
		dstats := cs.dram.Stats()
		qstats := cs.queue.Stats()

		rep.DemandReads += cs.demandReads
		rep.DemandWrites += cs.demandWrites
		addCache(&rep.Cache, cstats)
		addDRAM(&rep.DRAM, dstats)
		addPF(&rep.Prefetch, qstats)
		rep.StorageBits += cs.pf.StorageBits()

		// Read AMAT components: hit latency for read hits, late-
		// prefetch wait time, and lookup latency plus DRAM service for
		// true read misses (one demand DRAM read per such miss).
		totalReadLat += cs.hitLatency + cs.lateLatency +
			dstats.DemandReads*e.cfg.SCHitLatency +
			dstats.TotalDemandReadLat
		rep.LatePrefetchHits += cs.lateHits
		rep.UsefulByOrigin = cs.addUsefulByOrigin(rep.UsefulByOrigin)
		rep.LateByOrigin = cs.addLateByOrigin(rep.LateByOrigin)
		end := cs.lastCycle
		if dstats.LastDone > end {
			end = dstats.LastDone
		}
		if end > lastEnd {
			lastEnd = end
		}
		span := uint64(0)
		if end > cs.statsFrom {
			span = end - cs.statsFrom
		}
		if span > cycles {
			cycles = span
		}
	}
	rep.Cycles = cycles
	if e.sampler != nil {
		// Close the final (partial) window only now, after in-flight
		// prefetches landed and the controllers flushed, so the series
		// totals equal the report aggregates exactly.
		rep.Series = e.sampler.Finish(e.snapshot(lastEnd))
	}
	for _, cs := range e.units {
		rep.Energy = power.Add(rep.Energy,
			pm.Account(cs.dram.Stats(), cs.scEvents, cs.metaEvents,
				uint64(cs.pf.StorageBits()), cycles))
	}
	if rep.DemandReads > 0 {
		rep.AMAT = float64(totalReadLat) / float64(rep.DemandReads)
	}
	// Telemetry summary (nil when disabled, so the report JSON — and with
	// it the golden digests — is bit-identical to a telemetry-free run).
	rep.Telemetry = e.cfg.Telemetry.Summary()
	return rep
}

func addCache(dst *cache.Stats, s cache.Stats) {
	dst.DemandAccesses += s.DemandAccesses
	dst.DemandHits += s.DemandHits
	dst.DemandMisses += s.DemandMisses
	dst.PrefetchFills += s.PrefetchFills
	dst.DemandFills += s.DemandFills
	dst.UsefulPrefetches += s.UsefulPrefetches
	dst.WastedPrefetches += s.WastedPrefetches
	dst.Writebacks += s.Writebacks
	dst.Evictions += s.Evictions
	dst.PollutionEvicts += s.PollutionEvicts
}

func addDRAM(dst *dram.Stats, s dram.Stats) {
	dst.Reads += s.Reads
	dst.Writes += s.Writes
	dst.Activates += s.Activates
	dst.Precharges += s.Precharges
	dst.Refreshes += s.Refreshes
	dst.RowHits += s.RowHits
	dst.RowMisses += s.RowMisses
	dst.RowEmpty += s.RowEmpty
	dst.DemandReads += s.DemandReads
	dst.PrefReads += s.PrefReads
	dst.AllocReads += s.AllocReads
	dst.TotalDemandReadLat += s.TotalDemandReadLat
	dst.BusBusy += s.BusBusy
	dst.PowerDownCycles += s.PowerDownCycles
	dst.PowerDownEntries += s.PowerDownEntries
	for i := range s.LatencyHist {
		dst.LatencyHist[i] += s.LatencyHist[i]
	}
	if s.LastDone > dst.LastDone {
		dst.LastDone = s.LastDone
	}
}

func addPF(dst *prefetch.Stats, s prefetch.Stats) {
	dst.Candidates += s.Candidates
	dst.Filtered += s.Filtered
	dst.Issued += s.Issued
	dst.Dropped += s.Dropped
}
