package sim

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// runSharded drives tr through an engine with the given sub-shard count,
// serial or parallel, with sampling and warmup enabled so the parallel
// path's barrier merges are exercised too.
func runSharded(t *testing.T, pf string, tr trace.Trace, name string, m int, par bool) metrics.Report {
	t.Helper()
	factory, err := NamedPrefetcher(pf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.SubShards = m
	cfg.ParallelChannels = par
	cfg.SampleEvery = 5_000
	eng := New(cfg)
	rep, err := eng.RunWarm(tr, name, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSubShardEquivalenceMatrix pins the sub-sharding determinism contract:
// at every shard count, serial and parallel runs produce bit-identical
// reports — every counter, the float AMAT, per-origin attribution and the
// full sampler window sequence — for the composite and the tournament on
// every catalog app. Run under -race this also exercises the wider
// (channels × sub-shards) worker fleet's synchronisation.
func TestSubShardEquivalenceMatrix(t *testing.T) {
	const n = 20_000
	apps := workloads.Catalog()
	if testing.Short() {
		apps = apps[:2]
	}
	for _, p := range apps {
		tr := p.Generate(n)
		for _, pf := range []string{"planaria", "planaria-tournament"} {
			for _, m := range []int{1, 2, 8} {
				serial := runSharded(t, pf, tr, p.Abbr, m, false)
				parallel := runSharded(t, pf, tr, p.Abbr, m, true)
				sj, pj := reportJSON(t, serial), reportJSON(t, parallel)
				if sj != pj {
					t.Errorf("%s/%s m=%d: serial and parallel reports differ\nserial:   %s\nparallel: %s",
						p.Abbr, pf, m, sj, pj)
				}
				if serial.Channels != addr.Channels || serial.SubShards != m {
					t.Errorf("%s/%s m=%d: report geometry %d×%d", p.Abbr, pf, m, serial.Channels, serial.SubShards)
				}
			}
		}
	}
}

// TestSubShardOneMatchesLegacy pins that SubShards == 1 is not merely
// self-consistent but identical to the unsharded configuration (the zero
// value), i.e. sub-sharding changed nothing about the default geometry.
func TestSubShardOneMatchesLegacy(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(20_000)
	base := runSharded(t, "planaria", tr, p.Abbr, 0, true)
	one := runSharded(t, "planaria", tr, p.Abbr, 1, true)
	if bj, oj := reportJSON(t, base), reportJSON(t, one); bj != oj {
		t.Fatalf("SubShards 1 differs from the zero value\nzero: %s\none:  %s", bj, oj)
	}
}

// TestSubShardNormalisation pins how requested shard counts resolve: ≤ 0
// and 1 mean one unit per channel, non-powers-of-two round down, and
// counts too deep for the cache geometry halve until the per-unit slice
// validates.
func TestSubShardNormalisation(t *testing.T) {
	cases := []struct{ req, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 2}, {7, 4}, {8, 8},
		// The default 1 MB 16-way cache divides down to a single 16-way
		// set (1 KB) at 1024 shards; deeper requests halve back to it.
		{1024, 1024}, {4096, 1024},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.SubShards = c.req
		if got := New(cfg).SubShards(); got != c.want {
			t.Errorf("SubShards %d resolved to %d, want %d", c.req, got, c.want)
		}
	}
}

// TestSubShardRouting pins the unit-routing invariants the design rests
// on: a unit index always belongs to the block's channel, the whole
// 64-page group routes to one unit (TLP's distance-64 neighbourhoods and
// every built-in's candidates stay unit-local), and shards == 1 degrades
// to plain channel routing.
func TestSubShardRouting(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8} {
		for g := uint64(0); g < 64; g++ { // 64 page groups
			base := addr.PageNum(g << 6)
			want := -1
			for pg := uint64(0); pg < 64; pg += 7 { // pages within the group
				p := base + addr.PageNum(pg)
				for off := 0; off < addr.BlocksPerPage; off += 5 {
					b := p.Block(off)
					u := unitIndex(b, m)
					if u/m != b.Channel() {
						t.Fatalf("m=%d block %v: unit %d not in channel %d", m, b, u, b.Channel())
					}
					// Same channel + same page group ⇒ same unit.
					key := u % m
					if want == -1 {
						want = key
					} else if key != want {
						t.Fatalf("m=%d: page group %d split across sub-shards %d and %d", m, g, want, key)
					}
					if m == 1 && u != b.Channel() {
						t.Fatalf("m=1 block %v: unit %d ≠ channel %d", b, u, b.Channel())
					}
				}
			}
		}
	}
}
