package sim

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestPlanariaSurvivesPhaseChange stresses the paper's Section 3.2 design
// bet: using only the page number as the snapshot signature is safe because
// footprints change little across phases. Here we build an abrupt
// worst-case phase change — a second segment generated with a different
// seed, so every page's footprint is replaced — and require that Planaria
// (a) still improves AMAT over no prefetching across the whole run and
// (b) keeps its prefetch accuracy above 50 % (stale snapshots are retrained
// within one visit, so mispredictions are bounded).
func TestPlanariaSurvivesPhaseChange(t *testing.T) {
	p, _ := workloads.ByAbbr("KO")
	phase1 := p.Generate(120_000)
	p2 := p
	p2.Seed += 999 // a different universe of pages and footprints
	phase2 := p2.Generate(120_000)
	tr := trace.Concat(phase1, phase2, 1000)

	run := func(pf string) (amat float64, acc float64) {
		f, err := NamedPrefetcher(pf)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.NewPrefetcher = f
		eng := New(cfg)
		rep, err := eng.Run(tr, "phase")
		if err != nil {
			t.Fatal(err)
		}
		return rep.AMAT, rep.Accuracy()
	}

	baseAMAT, _ := run("none")
	plAMAT, plAcc := run("planaria")
	if plAMAT >= baseAMAT {
		t.Fatalf("phase change broke planaria: AMAT %.1f vs baseline %.1f", plAMAT, baseAMAT)
	}
	if plAcc < 0.5 {
		t.Fatalf("accuracy collapsed across the phase change: %.2f", plAcc)
	}
}
