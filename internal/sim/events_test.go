package sim

import (
	"encoding/json"
	"testing"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// runTraced runs one trace with the given event configuration (nil disables
// tracing) and hands back the report plus the engine for event inspection.
func runTraced(t *testing.T, pf string, tr trace.Trace, name string, evCfg *events.Config, par bool, warmup float64) (metrics.Report, *Engine) {
	t.Helper()
	factory, err := NamedPrefetcher(pf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.ParallelChannels = par
	cfg.Events = evCfg
	eng := New(cfg)
	rep, err := eng.RunWarm(tr, name, warmup)
	if err != nil {
		t.Fatal(err)
	}
	return rep, eng
}

// TestTracingTransparency is the observer-effect contract: enabling event
// tracing (rings and all) must not change a single counter of the report —
// the traced and untraced runs are bit-identical, serial and parallel alike.
func TestTracingTransparency(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(30_000)
	for _, pf := range []string{"planaria", "bop"} {
		for _, par := range []bool{false, true} {
			plain, _ := runTraced(t, pf, tr, p.Abbr, nil, par, 0.25)
			traced, _ := runTraced(t, pf, tr, p.Abbr, &events.Config{RingSize: 1 << 12}, par, 0.25)
			pj, tj := reportJSON(t, plain), reportJSON(t, traced)
			if pj != tj {
				t.Errorf("%s parallel=%v: tracing changed the report\nplain:  %s\ntraced: %s", pf, par, pj, tj)
			}
		}
	}
}

// TestTracingSerialParallelEquivalence extends the engine's determinism
// contract to the event subsystem: with tracing on, serial and parallel runs
// must agree on the report AND on the attribution snapshot.
func TestTracingSerialParallelEquivalence(t *testing.T) {
	p := workloads.Catalog()[1]
	tr := p.Generate(30_000)
	evCfg := &events.Config{}
	serialRep, serialEng := runTraced(t, "planaria", tr, p.Abbr, evCfg, false, 0.2)
	parRep, parEng := runTraced(t, "planaria", tr, p.Abbr, evCfg, true, 0.2)
	if sj, pj := reportJSON(t, serialRep), reportJSON(t, parRep); sj != pj {
		t.Fatalf("traced reports differ\nserial:   %s\nparallel: %s", sj, pj)
	}
	sSnap, err := json.Marshal(serialEng.Events().Attrib())
	if err != nil {
		t.Fatal(err)
	}
	pSnap, err := json.Marshal(parEng.Events().Attrib())
	if err != nil {
		t.Fatal(err)
	}
	if string(sSnap) != string(pSnap) {
		t.Fatalf("attribution snapshots differ\nserial:   %s\nparallel: %s", sSnap, pSnap)
	}
}

// TestAttribReconcilesWithReport pins the cross-layer accounting invariant:
// the event-level used+late totals per origin must equal the aggregate
// report's UsefulByOrigin exactly — over the same post-warmup region, since
// the engine resets attribution at the warmup boundary.
func TestAttribReconcilesWithReport(t *testing.T) {
	for _, p := range workloads.Catalog()[:3] {
		tr := p.Generate(40_000)
		for _, par := range []bool{false, true} {
			rep, eng := runTraced(t, "planaria", tr, p.Abbr, &events.Config{}, par, 0.25)
			snap := eng.Events().Attrib()
			useful := snap.UsefulByOrigin()
			if len(rep.UsefulByOrigin) == 0 {
				t.Fatalf("%s: no useful prefetches at all — workload too small to test", p.Abbr)
			}
			for origin, want := range rep.UsefulByOrigin {
				if got := useful[origin]; got != want {
					t.Errorf("%s parallel=%v origin %q: attrib used+late = %d, report useful = %d",
						p.Abbr, par, origin, got, want)
				}
			}
			// No phantom origins: every event-level row matching a report
			// origin was checked above; rows with useful credit but no
			// report entry would be attribution leaks.
			for origin, got := range useful {
				if got != 0 && rep.UsefulByOrigin[origin] == 0 {
					t.Errorf("%s parallel=%v: origin %q has %d event-level useful but no report entry",
						p.Abbr, par, origin, got)
				}
			}
			// Issue events and the prefetch queue count the same thing.
			var issued uint64
			for _, o := range snap.Origins {
				issued += o.Issued
			}
			if issued != rep.Prefetch.Issued {
				t.Errorf("%s parallel=%v: event-level issued %d != queue issued %d",
					p.Abbr, par, issued, rep.Prefetch.Issued)
			}
		}
	}
}

// TestLateByOrigin pins the satellite metric: per-origin late-hit counts sum
// to the report's LatePrefetchHits, and the windowed series folds them
// identically.
func TestLateByOrigin(t *testing.T) {
	var covered bool
	for _, p := range workloads.Catalog()[:3] {
		tr := p.Generate(40_000)
		factory, _ := NamedPrefetcher("planaria")
		cfg := DefaultConfig()
		cfg.NewPrefetcher = factory
		cfg.SampleEvery = 8_000
		eng := New(cfg)
		rep, err := eng.Run(tr, p.Abbr)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, n := range rep.LateByOrigin {
			sum += n
		}
		if sum != rep.LatePrefetchHits {
			t.Errorf("%s: LateByOrigin sums to %d, LatePrefetchHits = %d (%v)",
				p.Abbr, sum, rep.LatePrefetchHits, rep.LateByOrigin)
		}
		if rep.LatePrefetchHits > 0 {
			covered = true
			if len(rep.LateByOrigin) == 0 {
				t.Errorf("%s: %d late hits but empty LateByOrigin", p.Abbr, rep.LatePrefetchHits)
			}
		}
		if rep.Series != nil {
			tot := rep.Series.Totals()
			for o, n := range rep.LateByOrigin {
				if tot.LateByOrigin[o] != n {
					t.Errorf("%s origin %q: series late %d != report %d", p.Abbr, o, tot.LateByOrigin[o], n)
				}
			}
		}
	}
	if !covered {
		t.Fatal("no workload produced a late prefetch hit — the test exercised nothing")
	}
}

// TestLateByOriginUntracedMatchesTraced: the satellite counter lives in the
// aggregate path, not the event path — it must be present and identical with
// tracing off.
func TestLateByOriginUntracedMatchesTraced(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(30_000)
	plain, _ := runTraced(t, "planaria", tr, p.Abbr, nil, false, 0)
	traced, _ := runTraced(t, "planaria", tr, p.Abbr, &events.Config{RingSize: 256}, false, 0)
	if a, b := reportJSON(t, plain), reportJSON(t, traced); a != b {
		t.Fatalf("reports differ (LateByOrigin must not depend on tracing)\nplain:  %s\ntraced: %s", a, b)
	}
}

// TestEngineCountersProgress: both run paths advance the shared progress
// counters to exactly the record count, and sequential runs accumulate.
func TestEngineCountersProgress(t *testing.T) {
	p := workloads.Catalog()[0]
	const n = 20_000
	tr := p.Generate(n)
	for _, par := range []bool{false, true} {
		var c events.RunCounters
		factory, _ := NamedPrefetcher("planaria")
		cfg := DefaultConfig()
		cfg.NewPrefetcher = factory
		cfg.ParallelChannels = par
		cfg.Counters = &c
		eng := New(cfg)
		if _, err := eng.Run(tr, p.Abbr); err != nil {
			t.Fatal(err)
		}
		if got := c.Records(); got != n {
			t.Fatalf("parallel=%v: counters saw %d records, want %d", par, got, n)
		}
		// A second run on the same counter set accumulates (the
		// experiments sweep shares one set across cells).
		eng2 := New(cfg)
		if _, err := eng2.Run(tr, p.Abbr); err != nil {
			t.Fatal(err)
		}
		if got := c.Records(); got != 2*n {
			t.Fatalf("parallel=%v: sequential runs did not accumulate: %d, want %d", par, got, 2*n)
		}
	}
}

// TestEngineEventsDisabledByDefault: a default config records nothing and
// exposes a nil recorder.
func TestEngineEventsDisabledByDefault(t *testing.T) {
	eng := New(DefaultConfig())
	if eng.Events() != nil {
		t.Fatal("recorder present without cfg.Events")
	}
}

// TestEngineRingExportAfterRun: with rings enabled, a run leaves exportable
// events on every active channel and the Chrome exporter accepts them.
func TestEngineRingExportAfterRun(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(20_000)
	_, eng := runTraced(t, "planaria", tr, p.Abbr, &events.Config{RingSize: 1 << 10}, true, 0)
	rec := eng.Events()
	if rec == nil || !rec.HasRings() {
		t.Fatal("rings missing after a traced run")
	}
	total := 0
	for ch := 0; ch < rec.Channels(); ch++ {
		total += rec.Channel(ch).Ring().Len()
	}
	if total == 0 {
		t.Fatal("traced run retained no events")
	}
}
