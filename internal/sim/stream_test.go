package sim

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// engineFor builds a fresh engine for one equivalence cell.
func engineFor(t *testing.T, pf string, parallel bool, sampleEvery uint64) *Engine {
	t.Helper()
	factory, err := NamedPrefetcher(pf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.SampleEvery = sampleEvery
	cfg.ParallelChannels = parallel
	return New(cfg)
}

// TestStreamSliceEquivalence is the streaming pipeline's determinism
// contract: for every catalog app under the paper's evaluated prefetchers,
// RunStream — serial and parallel, fed by a slice-backed stream — must
// produce reports bit-identical to Run on the materialized trace. Running
// it under -race (CI does) also exercises the splitter's synchronisation.
func TestStreamSliceEquivalence(t *testing.T) {
	const n = 15_000
	for _, p := range workloads.Catalog() {
		tr := p.Generate(n)
		for _, pf := range []string{"planaria", "bop", "spp"} {
			ref, err := engineFor(t, pf, false, 0).Run(tr, p.Abbr)
			if err != nil {
				t.Fatal(err)
			}
			want := reportJSON(t, ref)
			for _, parallel := range []bool{false, true} {
				rep, err := engineFor(t, pf, parallel, 0).RunStream(tr.Stream(), p.Abbr)
				if err != nil {
					t.Fatal(err)
				}
				if got := reportJSON(t, rep); got != want {
					t.Errorf("%s/%s parallel=%v: RunStream diverges from Run\nslice:  %s\nstream: %s",
						p.Abbr, pf, parallel, want, got)
				}
			}
		}
	}
}

// TestStreamProducersEquivalence pins the three stream producers against
// each other: the generator-backed stream, the binary Reader-backed stream
// and the slice-backed stream of the same profile must all yield the same
// report as the materialized Run — so file replay, synthetic streaming and
// in-memory runs are interchangeable.
func TestStreamProducersEquivalence(t *testing.T) {
	const n = 20_000
	p := workloads.Catalog()[0]
	tr := p.Generate(n)
	want := reportJSON(t, mustRun(t, func(e *Engine) (metrics.Report, error) {
		return e.Run(tr, p.Abbr)
	}))

	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if got := trace.RecordCount(int64(buf.Len())); got != n {
		t.Fatalf("RecordCount(%d) = %d, want %d", buf.Len(), got, n)
	}

	producers := map[string]func() trace.Stream{
		"slice":     func() trace.Stream { return tr.Stream() },
		"generator": func() trace.Stream { return p.Stream(n) },
		"reader": func() trace.Stream {
			return trace.NewReader(bytes.NewReader(buf.Bytes())).Stream().WithLen(n)
		},
	}
	for name, mk := range producers {
		for _, parallel := range []bool{false, true} {
			rep, err := engineFor(t, "planaria", parallel, 0).RunStream(mk(), p.Abbr)
			if err != nil {
				t.Fatalf("%s parallel=%v: %v", name, parallel, err)
			}
			if got := reportJSON(t, rep); got != want {
				t.Errorf("%s parallel=%v: report diverges from materialized Run", name, parallel)
			}
		}
	}
}

// TestStreamSampledWarmEquivalence pins the on-the-fly window planning: a
// sampled (SampleEvery) warmed-up streamed run must reproduce RunWarm's
// report — including the full time series — bit-for-bit, serial and
// parallel, for both a mid-trace warmup boundary and the degenerate
// fractions 0 and 0.9+.
func TestStreamSampledWarmEquivalence(t *testing.T) {
	const n = 30_000
	p := workloads.Catalog()[1]
	tr := p.Generate(n)
	for _, warmup := range []float64{0, 0.25, 1.5} {
		ref, err := engineFor(t, "planaria", false, 6_000).RunWarm(tr, p.Abbr, warmup)
		if err != nil {
			t.Fatal(err)
		}
		want := reportJSON(t, ref)
		if warmup < 1 && ref.Series == nil {
			t.Fatalf("warmup %.2f: sampled reference run has no series", warmup)
		}
		for _, parallel := range []bool{false, true} {
			rep, err := engineFor(t, "planaria", parallel, 6_000).
				RunWarmStream(p.Stream(n), p.Abbr, warmup)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportJSON(t, rep); got != want {
				t.Errorf("warmup %.2f parallel=%v: RunWarmStream diverges from RunWarm\nslice:  %s\nstream: %s",
					warmup, parallel, want, got)
			}
		}
	}
}

// TestStreamErrorPropagation: a decode failure mid-stream must surface from
// RunStream (serial and parallel) instead of being swallowed — the engine
// reports the stream's own error when no simulation error precedes it.
func TestStreamErrorPropagation(t *testing.T) {
	p := workloads.Catalog()[0]
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, p.Generate(9_000)); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-7] // mid-record cut
	for _, parallel := range []bool{false, true} {
		s := trace.NewReader(bytes.NewReader(truncated)).Stream()
		_, err := engineFor(t, "planaria", parallel, 0).RunStream(s, p.Abbr)
		if err == nil {
			t.Fatalf("parallel=%v: truncated stream accepted", parallel)
		}
	}
}

// TestRunWarmStreamUnsized: a warmup fraction on a stream of unknown length
// must fail loudly rather than silently skipping warmup.
func TestRunWarmStreamUnsized(t *testing.T) {
	p := workloads.Catalog()[0]
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, p.Generate(1_000)); err != nil {
		t.Fatal(err)
	}
	unsized := trace.NewReader(bytes.NewReader(buf.Bytes())).Stream()
	_, err := engineFor(t, "planaria", true, 0).RunWarmStream(unsized, p.Abbr, 0.2)
	if !errors.Is(err, ErrUnsizedWarmup) {
		t.Fatalf("unsized warmup: got %v, want ErrUnsizedWarmup", err)
	}
	// Warmup 0 on the same unsized stream is fine.
	if _, err := engineFor(t, "planaria", true, 0).RunWarmStream(
		trace.NewReader(bytes.NewReader(buf.Bytes())).Stream(), p.Abbr, 0); err != nil {
		t.Fatalf("unsized warmup-0 run failed: %v", err)
	}
}

// mustRun runs f on a fresh planaria engine and fails the test on error.
func mustRun(t *testing.T, f func(*Engine) (metrics.Report, error)) metrics.Report {
	t.Helper()
	rep, err := f(engineFor(t, "planaria", false, 0))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}
