package sim

import "repro/internal/addr"

// pendingFill is one in-flight prefetch: issued to DRAM, not yet usable in
// the SC. Entries are FIFO by readiness because the fill latency is
// constant.
type pendingFill struct {
	block    addr.BlockNum
	ready    uint64
	usedLate bool  // a demand already waited on this fill
	origin   uint8 // issuing sub-prefetcher id (0 when unknown)
}

// pendingRing is a growable power-of-two circular buffer of in-flight
// prefetches. It replaces the earlier slice-plus-index-map scheme: the
// slice's pop-front (`pending = pending[1:]`) forced a reallocation every
// time append caught up with the shifted backing array, and the map cost a
// hash insert/delete per prefetch. The ring reaches a steady state with
// zero allocations, and lookups linear-scan the live entries — the queue's
// in-flight dedup guarantees at most one live entry per block, and
// profiles show the ring holding only the prefetches issued within the
// last PrefetchLatency cycles (a handful), so the scan beats hashing.
type pendingRing struct {
	buf  []pendingFill // len is a power of two (or zero before first push)
	head int
	n    int
}

// size returns the number of live entries.
func (r *pendingRing) size() int { return r.n }

// push appends an entry at the tail.
func (r *pendingRing) push(p pendingFill) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

// front returns the oldest entry; it must not be called on an empty ring.
func (r *pendingRing) front() *pendingFill { return &r.buf[r.head] }

// pop removes the oldest entry.
func (r *pendingRing) pop() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// find returns the live entry for block b, or nil. The returned pointer is
// invalidated by the next push (the buffer may be reallocated); callers
// finish with it before issuing new prefetches.
func (r *pendingRing) find(b addr.BlockNum) *pendingFill {
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		if p := &r.buf[(r.head+i)&mask]; p.block == b {
			return p
		}
	}
	return nil
}

// grow doubles the buffer, unwrapping the live entries to the front.
func (r *pendingRing) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 16
	}
	nb := make([]pendingFill, size)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&mask]
	}
	r.buf, r.head = nb, 0
}
