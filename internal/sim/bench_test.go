package sim

import (
	"testing"

	"repro/internal/events"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// benchEngine drives one pre-generated trace through a fresh engine per
// iteration; sampling cadence 0 is the baseline the observability layer
// must not slow down (the disabled path is a single nil check per step).
// allocs/op is reported so the hot-path allocation diet is guarded too
// (BENCH_baseline.json pins the expected numbers; see docs/PERFORMANCE.md).
func benchEngine(b *testing.B, sampleEvery uint64, parallel bool) {
	p := workloads.Catalog()[0]
	tr := p.Generate(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		factory, err := NamedPrefetcher("planaria")
		if err != nil {
			b.Fatal(err)
		}
		cfg.NewPrefetcher = factory
		cfg.SampleEvery = sampleEvery
		cfg.ParallelChannels = parallel
		eng := New(cfg)
		if _, err := eng.Run(tr, p.Abbr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr)*b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkEngineStep is the sampling-disabled serial baseline (the name
// predates the sharded mode and is kept so req/s history stays comparable).
func BenchmarkEngineStep(b *testing.B) { benchEngine(b, 0, false) }

// BenchmarkEngineStepParallel is the same run on the sharded engine: four
// goroutines, one per channel, no barriers (sampling is off).
func BenchmarkEngineStepParallel(b *testing.B) { benchEngine(b, 0, true) }

// BenchmarkEngineStepSampled measures the serial run with a 10k-request
// sampling cadence, bounding the cost of enabled observability.
func BenchmarkEngineStepSampled(b *testing.B) { benchEngine(b, 10_000, false) }

// BenchmarkEngineStepParallelSampled adds the barrier cost: the sharded
// engine synchronises all channels at every window boundary.
func BenchmarkEngineStepParallelSampled(b *testing.B) { benchEngine(b, 10_000, true) }

// BenchmarkEngineStepTraced is the event-tracing overhead guard: the same
// serial run as BenchmarkEngineStep with full decision-level tracing on
// (per-channel rings at the CLI default size plus attribution counters).
// BENCH_baseline.json pins it with "relative_to": "EngineStep", so
// cmd/benchguard fails CI when the traced run falls more than 10% below the
// untraced one — the overhead budget docs/TRACING.md promises. The untraced
// benchmarks above double as the tracing-off transparency guard: their
// pinned allocs/op predate the event subsystem, so any allocation added to
// the disabled path trips the existing absolute gate.
func BenchmarkEngineStepTraced(b *testing.B) {
	p := workloads.Catalog()[0]
	tr := p.Generate(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		factory, err := NamedPrefetcher("planaria")
		if err != nil {
			b.Fatal(err)
		}
		cfg.NewPrefetcher = factory
		cfg.Events = &events.Config{RingSize: events.DefaultRingSize}
		eng := New(cfg)
		if _, err := eng.Run(tr, p.Abbr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr)*b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkEngineStepTelemetry is the live-metrics overhead guard: the same
// serial run as BenchmarkEngineStep with the telemetry registry enabled, so
// every demand access bumps sharded atomic counters and every DRAM demand
// read, queue push and prefetch lifecycle event records into a log₂
// histogram. BENCH_baseline.json pins it with "relative_to": "EngineStep"
// and tolerance 0.10, so cmd/benchguard fails CI when the instrumented run
// falls more than 10% below the uninstrumented one — the overhead budget
// docs/OBSERVABILITY.md promises. The plain benchmarks above double as the
// telemetry-off transparency guard: their pinned allocs/op predate the
// telemetry subsystem, so any allocation added to the disabled path trips
// the existing absolute gates.
func BenchmarkEngineStepTelemetry(b *testing.B) {
	p := workloads.Catalog()[0]
	tr := p.Generate(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		factory, err := NamedPrefetcher("planaria")
		if err != nil {
			b.Fatal(err)
		}
		cfg.NewPrefetcher = factory
		cfg.Telemetry = telemetry.NewRegistry()
		eng := New(cfg)
		if _, err := eng.Run(tr, p.Abbr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr)*b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkEngineStepTournament is the N-way arbitration overhead guard: the
// serial BenchmarkEngineStep run under planaria-tournament (the composite
// plus the stride/markov/accel components and the set-dueling selector).
// Every component trains on every access and shadow-predicts on every miss,
// so this bounds the full tournament hot path; BENCH_baseline.json pins it
// with "relative_to": "EngineStep" so cmd/benchguard fails CI when the
// tournament falls below the pinned fraction of the bare composite's req/s.
func BenchmarkEngineStepTournament(b *testing.B) {
	p := workloads.Catalog()[0]
	tr := p.Generate(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		factory, err := NamedPrefetcher("planaria-tournament")
		if err != nil {
			b.Fatal(err)
		}
		cfg.NewPrefetcher = factory
		cfg.ParallelChannels = false
		eng := New(cfg)
		if _, err := eng.Run(tr, p.Abbr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr)*b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkEngineStepSubshard is the intra-channel scaling guard: the
// parallel engine at SubShards = 2, i.e. eight worker units (4 channels ×
// 2 sub-shards) instead of four. The shard count is fixed rather than
// AutoSubShards() so allocs/op is host-independent. BENCH_baseline.json
// pins it with "relative_to": "EngineStep" and a wide tolerance: on a
// single-core host the eight goroutines only add scheduling overhead, so
// the gate asserts the sub-sharded run never falls below the pinned
// fraction of the serial engine, while on multi-core hosts the ratio
// exceeds 1 and the pin is trivially met (see docs/PERFORMANCE.md,
// "Intra-channel sub-sharding").
func BenchmarkEngineStepSubshard(b *testing.B) {
	p := workloads.Catalog()[0]
	tr := p.Generate(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		factory, err := NamedPrefetcher("planaria")
		if err != nil {
			b.Fatal(err)
		}
		cfg.NewPrefetcher = factory
		cfg.ParallelChannels = true
		cfg.SubShards = 2
		eng := New(cfg)
		if _, err := eng.Run(tr, p.Abbr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr)*b.N)/b.Elapsed().Seconds(), "req/s")
}

// benchEngineStream is the streaming pipeline end to end: records flow from
// the workload generator through RunStream without ever materializing the
// trace, so each iteration pays generation + simulation (the slice
// benchmarks above pre-generate outside the timer). This is the number the
// O(chunk)-memory mode trades against BenchmarkEngineStep.
func benchEngineStream(b *testing.B, parallel bool) {
	p := workloads.Catalog()[0]
	const n = 100_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		factory, err := NamedPrefetcher("planaria")
		if err != nil {
			b.Fatal(err)
		}
		cfg.NewPrefetcher = factory
		cfg.ParallelChannels = parallel
		eng := New(cfg)
		if _, err := eng.RunStream(p.Stream(n), p.Abbr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkEngineStepStream: serial engine fed by the generator stream.
func BenchmarkEngineStepStream(b *testing.B) { benchEngineStream(b, false) }

// BenchmarkEngineStepStreamParallel: the streaming splitter fanning chunks
// to the four channel workers through bounded queues.
func BenchmarkEngineStepStreamParallel(b *testing.B) { benchEngineStream(b, true) }
