package sim

import (
	"testing"

	"repro/internal/workloads"
)

// benchEngine drives one pre-generated trace through a fresh engine per
// iteration; sampling cadence 0 is the baseline the observability layer
// must not slow down (the disabled path is a single nil check per step).
func benchEngine(b *testing.B, sampleEvery uint64) {
	p := workloads.Catalog()[0]
	tr := p.Generate(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		factory, err := NamedPrefetcher("planaria")
		if err != nil {
			b.Fatal(err)
		}
		cfg.NewPrefetcher = factory
		cfg.SampleEvery = sampleEvery
		eng := New(cfg)
		if _, err := eng.Run(tr, p.Abbr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr)*b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkEngineStep is the sampling-disabled baseline.
func BenchmarkEngineStep(b *testing.B) { benchEngine(b, 0) }

// BenchmarkEngineStepSampled measures the same run with a 10k-request
// sampling cadence, bounding the cost of enabled observability.
func BenchmarkEngineStepSampled(b *testing.B) { benchEngine(b, 10_000) }
