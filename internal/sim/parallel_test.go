package sim

import (
	"encoding/json"
	"testing"

	"repro/internal/addr"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// runBoth drives the same trace through a serial and a parallel engine
// built from otherwise identical configurations and returns both reports.
func runBoth(t *testing.T, pf string, tr trace.Trace, name string, sampleEvery, sampleCycles uint64, warmup float64) (serial, parallel metrics.Report) {
	t.Helper()
	run := func(par bool) metrics.Report {
		factory, err := NamedPrefetcher(pf)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.NewPrefetcher = factory
		cfg.SampleEvery = sampleEvery
		cfg.SampleEveryCycles = sampleCycles
		cfg.ParallelChannels = par
		eng := New(cfg)
		rep, err := eng.RunWarm(tr, name, warmup)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	return run(false), run(true)
}

// reportJSON renders a report deterministically (JSON map keys are sorted).
func reportJSON(t *testing.T, rep metrics.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSerialParallelEquivalence is the determinism contract of the sharded
// engine: for every catalog app under the paper's evaluated prefetchers,
// the serial and parallel engines must produce bit-identical reports —
// every counter, the float AMAT, the per-origin useful attribution and the
// full sampler window sequence. Running it under -race also exercises the
// parallel path's synchronisation (CI does).
func TestSerialParallelEquivalence(t *testing.T) {
	const n = 30_000
	for _, p := range workloads.Catalog() {
		tr := p.Generate(n)
		for _, pf := range []string{"planaria", "bop", "spp"} {
			serial, parallel := runBoth(t, pf, tr, p.Abbr, 6_000, 0, 0.25)
			sj, pj := reportJSON(t, serial), reportJSON(t, parallel)
			if sj != pj {
				t.Errorf("%s/%s: serial and parallel reports differ\nserial:   %s\nparallel: %s",
					p.Abbr, pf, sj, pj)
			}
		}
	}
}

// TestSerialParallelEquivalenceAllPrefetchers sweeps every registered
// prefetcher name on one app, with both sampling cadences exercised at
// once (request- and cycle-triggered windows interleave).
func TestSerialParallelEquivalenceAllPrefetchers(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(20_000)
	for _, pf := range PrefetcherNames() {
		serial, parallel := runBoth(t, pf, tr, p.Abbr, 4_000, 75_000, 0.2)
		sj, pj := reportJSON(t, serial), reportJSON(t, parallel)
		if sj != pj {
			t.Errorf("%s: serial and parallel reports differ\nserial:   %s\nparallel: %s", pf, sj, pj)
		}
	}
}

// TestSerialParallelEquivalenceNoSampling pins the barrier-free fast path
// (no sampler: the four channels run start-to-finish with no
// synchronisation points at all).
func TestSerialParallelEquivalenceNoSampling(t *testing.T) {
	p := workloads.Catalog()[1]
	tr := p.Generate(25_000)
	serial, parallel := runBoth(t, "planaria", tr, p.Abbr, 0, 0, 0)
	if sj, pj := reportJSON(t, serial), reportJSON(t, parallel); sj != pj {
		t.Errorf("no-sampling: serial and parallel reports differ\nserial:   %s\nparallel: %s", sj, pj)
	}
	if serial.Series != nil || parallel.Series != nil {
		t.Error("sampling disabled but a report carries a time series")
	}
}

// TestParallelSeriesInvariant re-checks PR 1's final-aggregate invariant on
// the parallel engine directly: the windowed series must sum exactly to the
// report aggregates even though the windows were merged at barriers.
func TestParallelSeriesInvariant(t *testing.T) {
	p := workloads.Catalog()[0]
	factory, _ := NamedPrefetcher("planaria")
	cfg := DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.SampleEvery = 5_000
	cfg.ParallelChannels = true
	eng := New(cfg)
	rep, err := eng.Run(p.Generate(40_000), p.Abbr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Series == nil || len(rep.Series.Samples) < 5 {
		t.Fatalf("parallel run produced %d samples, want >= 5", len(rep.Series.Samples))
	}
	tot := rep.Series.Totals()
	if tot.DemandReads != rep.DemandReads || tot.DRAMReads != rep.DRAM.Reads ||
		tot.UsefulPrefetches != rep.Cache.UsefulPrefetches {
		t.Fatalf("parallel series totals diverge from report: %+v vs reads=%d dram=%d useful=%d",
			tot, rep.DemandReads, rep.DRAM.Reads, rep.Cache.UsefulPrefetches)
	}
	if amat := float64(tot.ReadLatency) / float64(tot.DemandReads); amat != rep.AMAT {
		t.Fatalf("parallel series AMAT %v != report AMAT %v", amat, rep.AMAT)
	}
	for o, n := range rep.UsefulByOrigin {
		if tot.UsefulByOrigin[o] != n {
			t.Fatalf("origin %q: series %d != report %d", o, tot.UsefulByOrigin[o], n)
		}
	}
}

// TestParallelErrorMatchesSerial: an out-of-order trace must surface the
// same first error from both engines (the parallel engine attributes the
// failure to the earliest record in global trace order).
func TestParallelErrorMatchesSerial(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(5_000)
	// Corrupt the trace deep in: two channel-0 accesses to untouched pages
	// (guaranteed misses, so both reach the DRAM queue), the second with a
	// rewound cycle so the controller's enqueue-order invariant trips.
	bad := make(trace.Trace, len(tr))
	copy(bad, tr)
	bad[4_000] = trace.Record{Addr: addr.PageNum(1 << 30).Block(0).Addr(), Cycle: bad[3_999].Cycle}
	bad[4_001] = trace.Record{Addr: addr.PageNum(1<<30 + 1).Block(0).Addr(), Cycle: 1}

	run := func(par bool) error {
		cfg := DefaultConfig()
		cfg.ParallelChannels = par
		eng := New(cfg)
		_, err := eng.Run(bad, p.Abbr)
		return err
	}
	serr, perr := run(false), run(true)
	if serr == nil || perr == nil {
		t.Fatalf("out-of-order trace accepted: serial=%v parallel=%v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error mismatch: serial %q, parallel %q", serr, perr)
	}
}
