package sim

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// smallConfig returns an engine configuration with tiny caches so residency
// effects show up quickly in tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cache = cache.Config{SizeBytes: 1 << 14, Ways: 4, Policy: cache.LRU}
	return cfg
}

// visitTrace emits n sequential whole-page visits with the given footprint
// offsets, gap cycles apart.
func visitTrace(pages []addr.PageNum, offs []int, gap uint64) trace.Trace {
	var t trace.Trace
	cycle := uint64(0)
	for _, p := range pages {
		for _, o := range offs {
			t = append(t, trace.Record{Addr: p.Block(o).Addr(), Cycle: cycle})
			cycle += gap
		}
	}
	return t
}

func TestRunEmptyTrace(t *testing.T) {
	eng := New(smallConfig())
	rep, err := eng.Run(nil, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if rep.DemandReads != 0 || rep.AMAT != 0 {
		t.Fatalf("empty run produced %+v", rep)
	}
}

func TestColdMissesAndRevisitHits(t *testing.T) {
	eng := New(smallConfig())
	p := addr.PageNum(42)
	tr := visitTrace([]addr.PageNum{p, p}, []int{0, 1, 2, 3}, 100)
	rep, err := eng.Run(tr, "t")
	if err != nil {
		t.Fatal(err)
	}
	// First visit: 4 misses. Second visit: 4 hits (fits in cache).
	if rep.Cache.DemandMisses != 4 || rep.Cache.DemandHits != 4 {
		t.Fatalf("hits/misses = %d/%d, want 4/4", rep.Cache.DemandHits, rep.Cache.DemandMisses)
	}
	if rep.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", rep.HitRate())
	}
	// AMAT must be ≥ the hit latency and include miss cost.
	if rep.AMAT <= float64(rep.SCHitLatency) {
		t.Fatalf("AMAT %v implausibly low", rep.AMAT)
	}
}

func TestDemandMissesGoToDRAM(t *testing.T) {
	eng := New(smallConfig())
	tr := visitTrace([]addr.PageNum{1, 2, 3}, []int{0, 5, 9}, 50)
	rep, err := eng.Run(tr, "t")
	if err != nil {
		t.Fatal(err)
	}
	if rep.DRAM.DemandReads != rep.Cache.DemandMisses {
		t.Fatalf("DRAM demand reads %d != cache misses %d", rep.DRAM.DemandReads, rep.Cache.DemandMisses)
	}
}

func TestWriteAllocExcludedFromReadAMAT(t *testing.T) {
	eng := New(smallConfig())
	// All writes: no demand reads, so AMAT must be 0 and the DRAM reads
	// must be classified as write-allocates.
	var tr trace.Trace
	for i := 0; i < 10; i++ {
		tr = append(tr, trace.Record{Addr: addr.PageNum(i).Block(0).Addr(), Cycle: uint64(i * 50), Write: true})
	}
	rep, err := eng.Run(tr, "w")
	if err != nil {
		t.Fatal(err)
	}
	if rep.AMAT != 0 || rep.DemandReads != 0 {
		t.Fatalf("write-only run: AMAT %v, reads %d", rep.AMAT, rep.DemandReads)
	}
	if rep.DRAM.AllocReads != 10 || rep.DRAM.DemandReads != 0 {
		t.Fatalf("alloc/demand reads = %d/%d", rep.DRAM.AllocReads, rep.DRAM.DemandReads)
	}
}

func TestWritebackTraffic(t *testing.T) {
	cfg := smallConfig()
	cfg.Cache = cache.Config{SizeBytes: 1 << 12, Ways: 2, Policy: cache.LRU} // 64 blocks
	eng := New(cfg)
	// Dirty the whole tiny cache, then stream new blocks to force dirty
	// evictions.
	var tr trace.Trace
	cycle := uint64(0)
	for i := 0; i < 256; i++ {
		tr = append(tr, trace.Record{Addr: addr.BlockNum(i).Addr(), Cycle: cycle, Write: true})
		cycle += 50
	}
	rep, err := eng.Run(tr, "wb")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.Writebacks == 0 {
		t.Fatal("no writebacks recorded")
	}
	if rep.DRAM.Writes != rep.Cache.Writebacks {
		t.Fatalf("DRAM writes %d != writebacks %d", rep.DRAM.Writes, rep.Cache.Writebacks)
	}
}

// scriptedPrefetcher issues a fixed target on every miss.
type scriptedPrefetcher struct {
	target addr.BlockNum
	onHit  bool
}

func (s *scriptedPrefetcher) Name() string          { return "scripted" }
func (s *scriptedPrefetcher) Train(prefetch.Access) {}
func (s *scriptedPrefetcher) StorageBits() int      { return 1 }
func (s *scriptedPrefetcher) Reset()                {}
func (s *scriptedPrefetcher) Issue(a prefetch.Access) []addr.BlockNum {
	if a.Miss || s.onHit {
		return []addr.BlockNum{s.target}
	}
	return nil
}

func TestPrefetchTimeliness(t *testing.T) {
	// A prefetch issued at cycle 0 becomes usable PrefetchLatency later:
	// a demand arriving before that is a late hit, after that a full hit.
	mk := func(gap uint64) (hit, late bool) {
		cfg := smallConfig()
		cfg.PrefetchLatency = 200
		target := addr.PageNum(9).Block(1) // channel 0
		cfg.NewPrefetcher = func(int) prefetch.Prefetcher {
			return &scriptedPrefetcher{target: target}
		}
		eng := New(cfg)
		tr := trace.Trace{
			{Addr: addr.PageNum(9).Block(0).Addr(), Cycle: 0}, // miss → triggers prefetch
			{Addr: target.Addr(), Cycle: gap},                 // probe
		}
		rep, err := eng.Run(tr, "tl")
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cache.DemandHits == 1, rep.LatePrefetchHits == 1
	}
	if hit, late := mk(100); hit || !late {
		t.Fatalf("gap 100: hit=%v late=%v, want late prefetch", hit, late)
	}
	if hit, late := mk(500); !hit || late {
		t.Fatalf("gap 500: hit=%v late=%v, want full hit", hit, late)
	}
}

func TestLateWriteKeepsDirtyBit(t *testing.T) {
	cfg := smallConfig()
	cfg.PrefetchLatency = 200
	target := addr.PageNum(9).Block(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher {
		return &scriptedPrefetcher{target: target}
	}
	eng := New(cfg)
	tr := trace.Trace{
		{Addr: addr.PageNum(9).Block(0).Addr(), Cycle: 0},
		{Addr: target.Addr(), Cycle: 100, Write: true}, // late write
	}
	// After the run, evicting the line must produce a writeback. Drive
	// eviction by filling the set; simplest check: run and inspect that
	// the line is dirty via a full engine pass that evicts everything.
	for i := 0; i < 3000; i++ {
		tr = append(tr, trace.Record{Addr: addr.BlockNum(i).Addr(), Cycle: uint64(1000 + i*50)})
	}
	rep, err := eng.Run(tr, "lw")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.Writebacks == 0 {
		t.Fatal("late write lost its dirty bit (no writeback ever)")
	}
}

func TestPrefetchTrafficCounted(t *testing.T) {
	cfg := smallConfig()
	target := addr.PageNum(9).Block(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher {
		return &scriptedPrefetcher{target: target}
	}
	eng := New(cfg)
	tr := trace.Trace{{Addr: addr.PageNum(9).Block(0).Addr(), Cycle: 0}}
	rep, err := eng.Run(tr, "pt")
	if err != nil {
		t.Fatal(err)
	}
	if rep.DRAM.PrefReads != 1 {
		t.Fatalf("prefetch reads = %d, want 1", rep.DRAM.PrefReads)
	}
	if rep.Prefetch.Issued != 1 {
		t.Fatalf("queue issued = %d, want 1", rep.Prefetch.Issued)
	}
}

func TestMaxPerTriggerClamp(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxPerTrigger = 2
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher {
		return prefetch.NewNextLine(8)
	}
	eng := New(cfg)
	tr := trace.Trace{{Addr: addr.PageNum(9).Block(0).Addr(), Cycle: 0}}
	rep, err := eng.Run(tr, "clamp")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prefetch.Issued > 2 {
		t.Fatalf("issued %d > MaxPerTrigger 2", rep.Prefetch.Issued)
	}
	if rep.Prefetch.Dropped == 0 {
		t.Fatal("over-limit candidates not counted as dropped")
	}
}

func TestResidentTargetsFiltered(t *testing.T) {
	cfg := smallConfig()
	target := addr.PageNum(9).Block(1)
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher {
		return &scriptedPrefetcher{target: target, onHit: true}
	}
	eng := New(cfg)
	tr := trace.Trace{
		{Addr: target.Addr(), Cycle: 0},   // miss fills the target itself
		{Addr: target.Addr(), Cycle: 500}, // hit; prefetcher proposes resident block
	}
	rep, err := eng.Run(tr, "resfilter")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prefetch.Filtered == 0 {
		t.Fatal("resident prefetch target not filtered")
	}
}

// crossChannelPrefetcher maliciously targets a block on another channel.
type crossChannelPrefetcher struct{}

func (crossChannelPrefetcher) Name() string          { return "evil" }
func (crossChannelPrefetcher) Train(prefetch.Access) {}
func (crossChannelPrefetcher) StorageBits() int      { return 0 }
func (crossChannelPrefetcher) Reset()                {}
func (crossChannelPrefetcher) Issue(a prefetch.Access) []addr.BlockNum {
	if !a.Miss {
		return nil
	}
	// Same page, next segment: a different channel.
	off := (a.Block.Offset() + addr.SegmentBlocks) % addr.BlocksPerPage
	return []addr.BlockNum{a.Block.Page().Block(off)}
}

func TestForeignChannelTargetsDropped(t *testing.T) {
	cfg := smallConfig()
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return crossChannelPrefetcher{} }
	eng := New(cfg)
	tr := trace.Trace{{Addr: addr.PageNum(3).Block(0).Addr(), Cycle: 0}}
	rep, err := eng.Run(tr, "evil")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prefetch.Issued != 0 {
		t.Fatalf("foreign-channel prefetch issued (%d)", rep.Prefetch.Issued)
	}
	if rep.Prefetch.Dropped != 1 {
		t.Fatalf("foreign target not counted as dropped: %+v", rep.Prefetch)
	}
	if rep.DRAM.PrefReads != 0 {
		t.Fatal("foreign prefetch reached DRAM")
	}
}

func TestChannelRouting(t *testing.T) {
	eng := New(smallConfig())
	// One access per channel segment of one page.
	p := addr.PageNum(7)
	tr := trace.Trace{
		{Addr: p.Block(0).Addr(), Cycle: 0},
		{Addr: p.Block(16).Addr(), Cycle: 50},
		{Addr: p.Block(32).Addr(), Cycle: 100},
		{Addr: p.Block(48).Addr(), Cycle: 150},
	}
	rep, err := eng.Run(tr, "route")
	if err != nil {
		t.Fatal(err)
	}
	// Each channel saw exactly one demand read.
	for ch := 0; ch < addr.Channels; ch++ {
		if got := eng.DRAM(ch).Stats().DemandReads; got != 1 {
			t.Fatalf("channel %d demand reads = %d, want 1", ch, got)
		}
	}
	if rep.DemandReads != 4 {
		t.Fatalf("total demand reads %d", rep.DemandReads)
	}
}

func TestThrottleOutstanding(t *testing.T) {
	// Next-line degree 8 on back-to-back misses floods the pending set;
	// a throttle of 4 must bound outstanding prefetches.
	run := func(throttle int) uint64 {
		cfg := smallConfig()
		cfg.ThrottleOutstanding = throttle
		cfg.PrefetchLatency = 1 << 40 // fills never land: pending only grows
		cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return prefetch.NewNextLine(8) }
		eng := New(cfg)
		var tr trace.Trace
		for i := 0; i < 40; i++ {
			// Distinct pages, same channel (segment 0), all misses.
			tr = append(tr, trace.Record{Addr: addr.PageNum(i * 5).Block(0).Addr(), Cycle: uint64(i * 100)})
		}
		rep, err := eng.Run(tr, "throttle")
		if err != nil {
			t.Fatal(err)
		}
		return rep.Prefetch.Issued
	}
	unthrottled := run(0)
	throttled := run(4)
	if throttled > 4 {
		t.Fatalf("throttle of 4 let %d prefetches through", throttled)
	}
	if unthrottled <= throttled {
		t.Fatalf("throttle had no effect: %d vs %d", unthrottled, throttled)
	}
}

func TestNamedPrefetcherAll(t *testing.T) {
	for _, name := range PrefetcherNames() {
		f, err := NamedPrefetcher(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pf := f(0)
		if pf == nil {
			t.Fatalf("%s: nil prefetcher", name)
		}
		// Names round-trip loosely: factories for variants embed the base name.
		if pf.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
	if _, err := NamedPrefetcher("magic"); err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
}

func TestResetStatsDiscardsWarmup(t *testing.T) {
	eng := New(smallConfig())
	p := addr.PageNum(42)
	warm := visitTrace([]addr.PageNum{p}, []int{0, 1, 2, 3}, 100)
	for _, rec := range warm {
		if err := eng.Step(rec); err != nil {
			t.Fatal(err)
		}
	}
	eng.ResetStats()
	// Post-warmup: the same blocks now hit a warm cache.
	for i, rec := range warm {
		rec.Cycle += 10_000 + uint64(i*100)
		if err := eng.Step(rec); err != nil {
			t.Fatal(err)
		}
	}
	rep := eng.Finish("warm")
	if rep.Cache.DemandMisses != 0 || rep.Cache.DemandHits != 4 {
		t.Fatalf("warmup not discarded: hits/misses %d/%d", rep.Cache.DemandHits, rep.Cache.DemandMisses)
	}
	if rep.HitRate() != 1 {
		t.Fatalf("post-warmup hit rate %v", rep.HitRate())
	}
	// Wall-clock baseline restarts at the reset point.
	if rep.Cycles > 11_000 {
		t.Fatalf("cycles %d include the warmup span", rep.Cycles)
	}
}

func TestOutOfOrderTraceRejected(t *testing.T) {
	eng := New(smallConfig())
	// Two accesses to the same channel with decreasing cycles: the DRAM
	// enqueue-order invariant must surface as an error, not corruption.
	b := addr.PageNum(1).Block(0)
	if err := eng.Step(trace.Record{Addr: b.Addr(), Cycle: 1000}); err != nil {
		t.Fatal(err)
	}
	err := eng.Step(trace.Record{Addr: (b + 1).Addr(), Cycle: 10})
	if err == nil {
		t.Fatal("out-of-order trace accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := smallConfig()
		cfg.NewPrefetcher = func(int) prefetch.Prefetcher { return core.New(core.DefaultConfig()) }
		eng := New(cfg)
		var tr trace.Trace
		for i := 0; i < 2000; i++ {
			p := addr.PageNum(i * 7919 % 97)
			tr = append(tr, trace.Record{Addr: p.Block(i % 64).Addr(), Cycle: uint64(i * 17), Write: i%5 == 0})
		}
		rep, err := eng.Run(tr, "det")
		if err != nil {
			t.Fatal(err)
		}
		return rep.AMAT
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic AMAT: %v vs %v", a, b)
	}
}

func TestEnergyAccounted(t *testing.T) {
	eng := New(smallConfig())
	tr := visitTrace([]addr.PageNum{1, 2, 3, 4}, []int{0, 1, 2}, 50)
	rep, err := eng.Run(tr, "e")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if rep.Energy.Background <= 0 || rep.Energy.Read <= 0 {
		t.Fatalf("breakdown %+v missing components", rep.Energy)
	}
}

func TestPlanariaEndToEndCoverage(t *testing.T) {
	// End-to-end: revisit a page after the SLP timeout; the second visit
	// must be mostly covered by prefetches.
	cfg := smallConfig()
	cfg.NewPrefetcher = func(int) prefetch.Prefetcher {
		c := core.DefaultConfig()
		c.SLP.Timeout = 1000
		return core.New(c)
	}
	eng := New(cfg)
	p := addr.PageNum(5)
	offs := []int{0, 1, 2, 3, 4} // five blocks in channel 0's segment
	var tr trace.Trace
	cycle := uint64(0)
	for _, o := range offs {
		tr = append(tr, trace.Record{Addr: p.Block(o).Addr(), Cycle: cycle})
		cycle += 40
	}
	// Sweep traffic on other pages to expire the AT entry and evict page
	// 5 from the tiny cache.
	for i := 0; i < 600; i++ {
		cycle += 40
		tr = append(tr, trace.Record{Addr: addr.PageNum(100 + i).Block(i % 5).Addr(), Cycle: cycle})
	}
	// Revisit.
	first := true
	for _, o := range offs {
		cycle += 400
		tr = append(tr, trace.Record{Addr: p.Block(o).Addr(), Cycle: cycle})
		_ = first
	}
	rep, err := eng.Run(tr, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Cache.UsefulPrefetches + rep.LatePrefetchHits; got < 3 {
		t.Fatalf("revisit coverage: %d useful prefetches, want >= 3 (issued %d)",
			got, rep.Prefetch.Issued)
	}
}
