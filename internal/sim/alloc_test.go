package sim

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// stepSlices warms eng on the head of tr, then measures allocations while
// stepping the unseen tail in 2k-record slices. The tail is consumed
// strictly forward (cycles must stay monotonic for the DRAM controllers),
// so it must hold enough records for the warm slice plus every measured
// run.
func stepSlices(t *testing.T, eng *Engine, tr trace.Trace, warm int) float64 {
	t.Helper()
	for _, rec := range tr[:warm] {
		if err := eng.Step(rec); err != nil {
			t.Fatal(err)
		}
	}
	tail := tr[warm:]
	pos := 0
	step := func() {
		if pos+2_000 > len(tail) {
			t.Fatalf("tail exhausted at %d of %d — size the trace up", pos, len(tail))
		}
		for i := 0; i < 2_000; i++ {
			if err := eng.Step(tail[pos]); err != nil {
				t.Fatal(err)
			}
			pos++
		}
	}
	step() // grow anything the measured region would touch first
	return testing.AllocsPerRun(5, step)
}

// TestEngineStepSteadyStateAllocs pins the tentpole allocation property:
// once the engine is warm — tables populated, rings grown, the candidate
// buffer sized — stepping a record allocates nothing, for the composite
// and for the tournament path. Warm-up is the only allocating phase; see
// docs/PERFORMANCE.md ("Allocation behaviour").
func TestEngineStepSteadyStateAllocs(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(120_000)
	for _, pf := range []string{"planaria", "planaria-tournament"} {
		factory, err := NamedPrefetcher(pf)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.NewPrefetcher = factory
		cfg.ParallelChannels = false // Step is the always-serial API
		if avg := stepSlices(t, New(cfg), tr, 100_000); avg != 0 {
			t.Errorf("%s: %.2f allocs per 2k warm steps, want 0", pf, avg)
		}
	}
}

// TestEngineStepSteadyStateAllocsSubsharded repeats the gate at SubShards
// = 2: the per-unit scratch state must stay allocation-free when a channel
// is split.
func TestEngineStepSteadyStateAllocsSubsharded(t *testing.T) {
	p := workloads.Catalog()[1]
	tr := p.Generate(80_000)
	factory, _ := NamedPrefetcher("planaria")
	cfg := DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.ParallelChannels = false
	cfg.SubShards = 2
	if avg := stepSlices(t, New(cfg), tr, 60_000); avg != 0 {
		t.Errorf("subsharded: %.2f allocs per 2k warm steps, want 0", avg)
	}
}
