// Package sim ties the substrates together into the paper's evaluation
// vehicle: a trace-driven memory-system simulator in the mould of the
// modified DRAMSim2 used in Section 5.
//
// The memory side is organised per DRAM channel, as in the paper: each
// channel owns a slice of the system cache, its own prefetcher instance and
// its own LPDDR4 controller. Demand requests flow trace → SC slice →
// (on miss) DRAM; prefetchers observe every demand access (learning) and
// emit prefetch requests (issuing) that fill the SC and consume DRAM
// bandwidth at lower scheduling priority.
//
// The simulator is functionally eager and timing-lazy: cache state updates
// at trace order while DRAM latency, bandwidth and energy are accounted by
// the event-driven controller. This is the standard trace-driven
// "functional + timing" split; see DESIGN.md.
//
// # Observability
//
// Beyond the end-of-run metrics.Report, the engine can sample windowed
// metric deltas while a trace runs: setting Config.SampleEvery (records) or
// Config.SampleEveryCycles (trace cycles) attaches a metrics.TimeSeries to
// the report whose windows sum exactly to the final aggregates. Sampling is
// disabled by default and costs one nil check per Step when off. RunWarm
// runs a trace with a warmup fraction discarded from the statistics (and
// from the time series: the first window starts at the reset boundary).
// See docs/OBSERVABILITY.md for the artifact schema and worked examples.
package sim
