package sim

import (
	"testing"

	"repro/internal/workloads"
)

// sampledConfig returns the default engine config with Planaria and a
// request-based sampling cadence.
func sampledConfig(every uint64) Config {
	cfg := DefaultConfig()
	factory, _ := NamedPrefetcher("planaria")
	cfg.NewPrefetcher = factory
	cfg.SampleEvery = every
	return cfg
}

// TestSeriesNilWhenDisabled: without a cadence the report must carry no
// series (the zero-cost-when-disabled contract).
func TestSeriesNilWhenDisabled(t *testing.T) {
	p := workloads.Catalog()[0]
	eng := New(DefaultConfig())
	rep, err := eng.Run(p.Generate(20_000), p.Abbr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Series != nil {
		t.Fatal("sampling disabled but report carries a time series")
	}
}

// TestSeriesTotalsMatchReport is the core observability invariant: the sum
// of all window deltas equals the end-of-run aggregates exactly, for every
// counter the sampler tracks.
func TestSeriesTotalsMatchReport(t *testing.T) {
	p := workloads.Catalog()[0]
	eng := New(sampledConfig(5_000))
	rep, err := eng.Run(p.Generate(60_000), p.Abbr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Series == nil {
		t.Fatal("sampling enabled but no series")
	}
	if got := len(rep.Series.Samples); got < 10 {
		t.Fatalf("got %d samples for 60k requests at 5k cadence, want >= 10", got)
	}
	tot := rep.Series.Totals()
	checks := []struct {
		name      string
		got, want uint64
	}{
		{"requests", tot.Requests, rep.DemandReads + rep.DemandWrites},
		{"demand_reads", tot.DemandReads, rep.DemandReads},
		{"demand_writes", tot.DemandWrites, rep.DemandWrites},
		{"demand_hits", tot.DemandHits, rep.Cache.DemandHits},
		{"demand_misses", tot.DemandMisses, rep.Cache.DemandMisses},
		{"prefetch_fills", tot.PrefetchFills, rep.Cache.PrefetchFills},
		{"useful_prefetches", tot.UsefulPrefetches, rep.Cache.UsefulPrefetches},
		{"late_prefetch_hits", tot.LatePrefetchHits, rep.LatePrefetchHits},
		{"issued", tot.Issued, rep.Prefetch.Issued},
		{"dram_reads", tot.DRAMReads, rep.DRAM.Reads},
		{"dram_writes", tot.DRAMWrites, rep.DRAM.Writes},
		{"pref_reads", tot.PrefReads, rep.DRAM.PrefReads},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("series %s total = %d, report says %d", c.name, c.got, c.want)
		}
	}
	// AMAT from the series must reproduce the report's AMAT exactly
	// (same numerator and denominator, same division).
	if amat := float64(tot.ReadLatency) / float64(tot.DemandReads); amat != rep.AMAT {
		t.Errorf("series AMAT %v != report AMAT %v", amat, rep.AMAT)
	}
	// Per-origin attribution sums must match too.
	for o, n := range rep.UsefulByOrigin {
		if tot.UsefulByOrigin[o] != n {
			t.Errorf("series origin %q total = %d, report says %d", o, tot.UsefulByOrigin[o], n)
		}
	}
}

// TestSeriesWarmupReset: after RunWarm, the series must cover only the
// measured region — no warmup-era samples, first window starting at the
// reset cycle, totals matching the (post-warmup) report.
func TestSeriesWarmupReset(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(40_000)
	eng := New(sampledConfig(2_000))
	rep, err := eng.RunWarm(tr, p.Abbr, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Series == nil || len(rep.Series.Samples) == 0 {
		t.Fatal("no series after warmup run")
	}
	tot := rep.Series.Totals()
	if tot.DemandReads != rep.DemandReads || tot.DRAMReads != rep.DRAM.Reads {
		t.Fatalf("post-warmup series totals (%d reads, %d dram) do not match report (%d, %d)",
			tot.DemandReads, tot.DRAMReads, rep.DemandReads, rep.DRAM.Reads)
	}
	// The measured region is 75 % of the trace; the series must not
	// contain anywhere near the full-trace request count.
	if tot.Requests >= uint64(len(tr)) {
		t.Fatalf("series covers %d requests, warmup window was not discarded (trace %d)",
			tot.Requests, len(tr))
	}
	// The first window must start where the warmup ended, not at cycle 0.
	warmupEnd := tr[len(tr)/4-1].Cycle
	if first := rep.Series.Samples[0].StartCycle; first+1 < warmupEnd {
		t.Fatalf("first window starts at cycle %d, before the warmup boundary %d", first, warmupEnd)
	}
}

// TestSeriesCycleCadence exercises the cycle-based window trigger.
func TestSeriesCycleCadence(t *testing.T) {
	p := workloads.Catalog()[0]
	cfg := DefaultConfig()
	cfg.SampleEveryCycles = 50_000
	eng := New(cfg)
	tr := p.Generate(30_000)
	rep, err := eng.Run(tr, p.Abbr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Series == nil || len(rep.Series.Samples) < 2 {
		t.Fatalf("cycle cadence produced %v", rep.Series)
	}
	// Every full window must span at least the cadence (the final flush
	// window may be shorter).
	for i, s := range rep.Series.Samples[:len(rep.Series.Samples)-1] {
		if s.EndCycle-s.StartCycle < 50_000 {
			t.Fatalf("window %d spans %d cycles, cadence is 50000", i, s.EndCycle-s.StartCycle)
		}
	}
}
