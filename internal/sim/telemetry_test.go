package sim

// Tests for the live-telemetry wiring: the disabled path must be invisible
// (bit-identical reports), and the enabled path's counters must reconcile
// exactly with the report aggregates they mirror.

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// TestTelemetryTransparency pins the zero-cost-when-disabled contract at the
// report level: a run with telemetry enabled produces exactly the same
// report as the plain run, except for the attached summary. Any simulation
// state leaking from the instrument wiring (fill stamps, latency recording)
// would break the byte comparison.
func TestTelemetryTransparency(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(60_000)

	cfg := DefaultConfig()
	plain, err := New(cfg).Run(tr, p.Abbr)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Fatal("telemetry summary present on a telemetry-off run")
	}

	cfg = DefaultConfig()
	cfg.Telemetry = telemetry.NewRegistry()
	instrumented, err := New(cfg).Run(tr, p.Abbr)
	if err != nil {
		t.Fatal(err)
	}
	if instrumented.Telemetry == nil {
		t.Fatal("telemetry summary missing on a telemetry-on run")
	}

	instrumented.Telemetry = nil
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(instrumented)
	if string(a) != string(b) {
		t.Errorf("instrumented report differs from plain beyond the summary:\nplain: %s\ninstr: %s", a, b)
	}
}

// TestTelemetryReconcilesWithReport runs warmup-free (telemetry covers the
// whole run, report aggregates the measured region — with no warmup the two
// regions coincide) and checks every mirrored counter agrees exactly, the
// summary is internally consistent, and a serial re-run lands on identical
// instrument values.
func TestTelemetryReconcilesWithReport(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(80_000)

	run := func(parallel bool) (*telemetry.Registry, metricsReport) {
		cfg := DefaultConfig()
		cfg.ParallelChannels = parallel
		reg := telemetry.NewRegistry()
		cfg.Telemetry = reg
		rep, err := New(cfg).Run(tr, p.Abbr)
		if err != nil {
			t.Fatal(err)
		}
		return reg, metricsReport{rep.DemandReads, rep.DemandWrites,
			rep.Cache.DemandHits, rep.Cache.DemandMisses, rep.Cache.UsefulPrefetches,
			rep.Prefetch.Issued, rep.LatePrefetchHits,
			rep.DRAM.RowHits, rep.DRAM.RowMisses, rep.DRAM.RowEmpty,
			rep.Telemetry}
	}
	reg, got := run(true)
	sum := got.summary
	if sum == nil {
		t.Fatal("no telemetry summary")
	}

	for _, c := range []struct {
		family string
		want   uint64
	}{
		{"planaria_demand_reads_total", got.demandReads},
		{"planaria_demand_writes_total", got.demandWrites},
		{"planaria_demand_hits_total", got.demandHits},
		{"planaria_demand_misses_total", got.demandMisses},
		{"planaria_prefetch_issued_total", got.prefIssued},
		{"planaria_prefetch_late_hits_total", got.lateHits},
		{"planaria_dram_row_hits_total", got.rowHits},
		{"planaria_dram_row_misses_total", got.rowMisses},
		{"planaria_dram_row_empty_total", got.rowEmpty},
	} {
		if v := sum.Counters[c.family]; v != c.want {
			t.Errorf("%s = %d, want %d (report aggregate)", c.family, v, c.want)
		}
	}

	// Every useful (non-late) prefetch has a first-use gap observation: the
	// engine stamps the fill cycle and the first demand hit reads it back.
	gap, ok := sum.Histograms["planaria_prefetch_first_use_gap_cycles"]
	if !ok || gap.Count != got.usefulPrefetches {
		t.Errorf("first-use gap count = %v (present %v), want %d useful prefetches", gap.Count, ok, got.usefulPrefetches)
	}
	// Every late hit has a wait observation.
	wait := sum.Histograms["planaria_prefetch_late_wait_cycles"]
	if wait.Count != got.lateHits {
		t.Errorf("late wait count = %d, want %d late hits", wait.Count, got.lateHits)
	}
	// Demand read latency: one observation per DRAM demand read service;
	// quantiles must be ordered and live-readable mid- or post-run.
	lat := sum.Histograms[MetricDRAMDemandReadLatency]
	if lat.Count == 0 || !(lat.P50 <= lat.P90 && lat.P90 <= lat.P99) {
		t.Errorf("demand latency summary %+v not ordered", lat)
	}
	if v, ok := reg.Quantile(MetricDRAMDemandReadLatency, 0.99); !ok || v != lat.P99 {
		t.Errorf("Quantile p99 = %v (%v), want summary's %v", v, ok, lat.P99)
	}

	// The whole registry must render as valid exposition text.
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("post-run exposition invalid: %v", err)
	}

	// The simulation is deterministic and the instruments shard per unit, so
	// a serial run of the same trace must land on an identical summary.
	_, serial := run(false)
	sa, _ := json.Marshal(sum)
	sb, _ := json.Marshal(serial.summary)
	if string(sa) != string(sb) {
		t.Error("serial and parallel telemetry summaries differ")
	}
}

// metricsReport is the slice of report fields the telemetry counters mirror.
type metricsReport struct {
	demandReads, demandWrites    uint64
	demandHits, demandMisses     uint64
	usefulPrefetches             uint64
	prefIssued, lateHits         uint64
	rowHits, rowMisses, rowEmpty uint64
	summary                      *telemetry.Summary
}

// TestTelemetryWarmupCoverage pins the documented semantic difference: the
// report aggregates only the measured region, the instruments never reset,
// so with warmup the telemetry counters exceed the report's.
func TestTelemetryWarmupCoverage(t *testing.T) {
	p := workloads.Catalog()[0]
	tr := p.Generate(60_000)
	cfg := DefaultConfig()
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	rep, err := New(cfg).RunWarm(tr, p.Abbr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	total := rep.Telemetry.Counters["planaria_demand_reads_total"]
	if total <= rep.DemandReads {
		t.Errorf("whole-run demand reads %d not above measured-region %d (warmup must stay counted)",
			total, rep.DemandReads)
	}
}
