package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/workloads"
)

// goldenN is the trace length of every golden cell. Large enough that all
// hot paths (evictions, row conflicts, late prefetches, warmup reset) are
// exercised; small enough that the full matrix stays test-suite friendly.
const goldenN = 25_000

// goldenPath is the pinned digest file. Regenerate with
//
//	UPDATE_GOLDENS=1 go test -run TestReportGoldens ./internal/sim/
//
// ONLY when a report change is intentional (new report field, changed
// simulated semantics) — never to paper over an unexplained diff: these
// digests are the bit-identical contract that pure performance work
// (data layout, precomputation, batching) must not move a single counter.
const goldenPath = "testdata/report_goldens.json"

// goldenKey names one cell of the golden matrix.
func goldenKey(app, pf, mode string) string { return app + "/" + pf + "/" + mode }

// goldenDigest hashes a report's canonical JSON form. The full JSON (not a
// subset) is pinned: every counter, the float AMAT bits, per-origin
// attribution maps and the windowed series all participate.
func goldenDigest(t *testing.T, rep interface{}) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestReportGoldens pins the full-catalog × {planaria, planaria-tournament}
// report digests, serial and parallel, against checked-in pre-change
// goldens. Where the serial/parallel equivalence matrix proves the two
// execution modes agree with each other, this test proves both agree with
// the *past*: any change to simulated behaviour — however small — flips a
// digest and must be justified (and the file regenerated) explicitly.
func TestReportGoldens(t *testing.T) {
	want := map[string]string{}
	if data, err := os.ReadFile(goldenPath); err == nil {
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("%s: %v", goldenPath, err)
		}
	} else if os.Getenv("UPDATE_GOLDENS") == "" {
		t.Fatalf("missing golden file %s (run with UPDATE_GOLDENS=1 to create)", goldenPath)
	}

	got := map[string]string{}
	for _, p := range workloads.Catalog() {
		tr := p.Generate(goldenN)
		for _, pf := range []string{"planaria", "planaria-tournament"} {
			for _, mode := range []string{"serial", "parallel"} {
				factory, err := NamedPrefetcher(pf)
				if err != nil {
					t.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.NewPrefetcher = factory
				cfg.SampleEvery = 5_000
				cfg.ParallelChannels = mode == "parallel"
				eng := New(cfg)
				rep, err := eng.RunWarm(tr, p.Abbr, 0.2)
				if err != nil {
					t.Fatal(err)
				}
				got[goldenKey(p.Abbr, pf, mode)] = goldenDigest(t, rep)
			}
		}
	}

	if os.Getenv("UPDATE_GOLDENS") != "" {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var buf []byte
		buf = append(buf, "{\n"...)
		for i, k := range keys {
			sep := ","
			if i == len(keys)-1 {
				sep = ""
			}
			buf = append(buf, fmt.Sprintf("  %q: %q%s\n", k, got[k], sep)...)
		}
		buf = append(buf, "}\n"...)
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d goldens to %s", len(got), goldenPath)
		return
	}

	for k, h := range got {
		if want[k] == "" {
			t.Errorf("%s: no pinned golden (matrix grew? regenerate deliberately)", k)
			continue
		}
		if h != want[k] {
			t.Errorf("%s: report digest %s differs from pinned golden %s", k, h, want[k])
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: pinned golden no longer produced (matrix shrank?)", k)
		}
	}
}
