// Package bitmap implements the footprint bitmaps at the heart of Planaria.
//
// The paper represents the set of blocks accessed within a memory page as a
// bitmap ("footprint snapshot"). Each DRAM channel owns a 16-block segment of
// every 4 KB page, so the per-channel prefetchers use 16-bit bitmaps
// (Seg16); trace-analysis code that looks at whole pages uses 64-bit bitmaps
// (Page64). Both types provide the similarity operations the paper's
// algorithms rely on: population count, overlap (common bits) and Hamming
// difference.
package bitmap

import (
	"math/bits"
	"strconv"
	"strings"
)

// Seg16 is the footprint of one 16-block channel segment of a page.
type Seg16 uint16

// Set marks block offset i (0..15) as accessed.
func (b Seg16) Set(i int) Seg16 { return b | 1<<uint(i&15) }

// Clear unmarks block offset i.
func (b Seg16) Clear(i int) Seg16 { return b &^ (1 << uint(i&15)) }

// Has reports whether block offset i is marked.
func (b Seg16) Has(i int) bool { return b&(1<<uint(i&15)) != 0 }

// Count returns the number of marked blocks.
func (b Seg16) Count() int { return bits.OnesCount16(uint16(b)) }

// Common returns the number of blocks marked in both bitmaps — the
// "common pattern" size used by TLP's neighbour selection (Figure 6).
func (b Seg16) Common(o Seg16) int { return bits.OnesCount16(uint16(b & o)) }

// Diff returns the Hamming distance between the bitmaps — the
// "difference between the bitmap of two pages" used by the learnable-
// neighbour test (Section 4.1, threshold 4 bits).
func (b Seg16) Diff(o Seg16) int { return bits.OnesCount16(uint16(b ^ o)) }

// Minus returns the blocks marked in b but not in o. TLP prefetches
// neighbour.Minus(self): blocks the neighbour accessed that this page has not.
func (b Seg16) Minus(o Seg16) Seg16 { return b &^ o }

// Union returns the combined footprint.
func (b Seg16) Union(o Seg16) Seg16 { return b | o }

// Offsets returns the marked offsets in ascending order.
func (b Seg16) Offsets() []int {
	out := make([]int, 0, b.Count())
	for v := uint16(b); v != 0; {
		i := bits.TrailingZeros16(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// OverlapRate implements the Figure 3 metric: the fraction of blocks in the
// current window that were also accessed in the previous window. Returns 1
// for an empty current window (nothing contradicted the prediction).
func (b Seg16) OverlapRate(prev Seg16) float64 {
	n := b.Count()
	if n == 0 {
		return 1
	}
	return float64(b.Common(prev)) / float64(n)
}

// String renders the bitmap LSB-first, e.g. "1100000000000001".
func (b Seg16) String() string {
	var sb strings.Builder
	for i := 0; i < 16; i++ {
		if b.Has(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Page64 is the footprint of a whole 64-block page, used by the offline
// trace-analysis experiments (Figures 2, 4 and 5).
type Page64 uint64

// Set marks block offset i (0..63).
func (b Page64) Set(i int) Page64 { return b | 1<<uint(i&63) }

// Clear unmarks block offset i.
func (b Page64) Clear(i int) Page64 { return b &^ (1 << uint(i&63)) }

// Has reports whether block offset i is marked.
func (b Page64) Has(i int) bool { return b&(1<<uint(i&63)) != 0 }

// Count returns the number of marked blocks.
func (b Page64) Count() int { return bits.OnesCount64(uint64(b)) }

// Common returns the number of blocks marked in both bitmaps.
func (b Page64) Common(o Page64) int { return bits.OnesCount64(uint64(b & o)) }

// Diff returns the Hamming distance between the bitmaps.
func (b Page64) Diff(o Page64) int { return bits.OnesCount64(uint64(b ^ o)) }

// Minus returns the blocks marked in b but not in o.
func (b Page64) Minus(o Page64) Page64 { return b &^ o }

// Union returns the combined footprint.
func (b Page64) Union(o Page64) Page64 { return b | o }

// Offsets returns the marked offsets in ascending order.
func (b Page64) Offsets() []int {
	out := make([]int, 0, b.Count())
	for v := uint64(b); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// OverlapRate implements the Figure 3 metric on whole-page footprints.
func (b Page64) OverlapRate(prev Page64) float64 {
	n := b.Count()
	if n == 0 {
		return 1
	}
	return float64(b.Common(prev)) / float64(n)
}

// Segment extracts the 16-bit bitmap of channel segment ch (0..3).
func (b Page64) Segment(ch int) Seg16 {
	return Seg16(uint64(b) >> uint((ch&3)*16) & 0xFFFF)
}

// WithSegment returns b with channel segment ch replaced by s.
func (b Page64) WithSegment(ch int, s Seg16) Page64 {
	sh := uint((ch & 3) * 16)
	return b&^(Page64(0xFFFF)<<sh) | Page64(s)<<sh
}

// FromOffsets builds a Page64 from in-page block offsets.
func FromOffsets(offsets ...int) Page64 {
	var b Page64
	for _, o := range offsets {
		b = b.Set(o)
	}
	return b
}

// String renders the bitmap LSB-first as 64 characters.
func (b Page64) String() string {
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		if b.Has(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParsePage64 parses the String form (LSB-first '0'/'1', up to 64 chars).
func ParsePage64(s string) (Page64, error) {
	var b Page64
	for i, c := range s {
		if i >= 64 {
			break
		}
		switch c {
		case '1':
			b = b.Set(i)
		case '0':
		default:
			return 0, &ParseError{Input: s, Pos: i}
		}
	}
	return b, nil
}

// ParseError reports a malformed bitmap string.
type ParseError struct {
	Input string
	Pos   int
}

func (e *ParseError) Error() string {
	return "bitmap: invalid character at position " + strconv.Itoa(e.Pos) + " in " + strconv.Quote(e.Input)
}
