package bitmap

import "testing"

// FuzzParsePage64: the parser must never panic and must round-trip every
// bitmap it accepts.
func FuzzParsePage64(f *testing.F) {
	f.Add("0101")
	f.Add("")
	f.Add("1111111111111111111111111111111111111111111111111111111111111111")
	f.Add("0x10")
	f.Add("00000000000000000000000000000000000000000000000000000000000000001") // 65 chars
	f.Fuzz(func(t *testing.T, in string) {
		b, err := ParsePage64(in)
		if err != nil {
			return
		}
		b2, err := ParsePage64(b.String())
		if err != nil || b2 != b {
			t.Fatalf("round trip broke: %v, %v vs %v", err, b2, b)
		}
	})
}
