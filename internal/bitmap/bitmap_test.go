package bitmap

import (
	"testing"
	"testing/quick"
)

func TestSeg16Basics(t *testing.T) {
	var b Seg16
	b = b.Set(0).Set(5).Set(15)
	if !b.Has(0) || !b.Has(5) || !b.Has(15) {
		t.Fatalf("missing set bits in %s", b)
	}
	if b.Has(1) {
		t.Fatal("unexpected bit 1")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	b = b.Clear(5)
	if b.Has(5) || b.Count() != 2 {
		t.Fatalf("Clear failed: %s", b)
	}
}

func TestSeg16SetOutOfRangeWraps(t *testing.T) {
	// Offsets are masked to 4 bits; 16 aliases 0. This mirrors hardware
	// truncation of the segment offset field.
	b := Seg16(0).Set(16)
	if !b.Has(0) {
		t.Fatal("Set(16) should alias Set(0)")
	}
}

func TestSeg16SimilarityOps(t *testing.T) {
	a := Seg16(0).Set(1).Set(2).Set(3)
	b := Seg16(0).Set(2).Set(3).Set(4)
	if got := a.Common(b); got != 2 {
		t.Errorf("Common = %d, want 2", got)
	}
	if got := a.Diff(b); got != 2 {
		t.Errorf("Diff = %d, want 2", got)
	}
	if got := a.Minus(b); got != Seg16(0).Set(1) {
		t.Errorf("Minus = %s", got)
	}
	if got := a.Union(b).Count(); got != 4 {
		t.Errorf("Union count = %d, want 4", got)
	}
}

func TestSeg16Offsets(t *testing.T) {
	b := Seg16(0).Set(3).Set(0).Set(9)
	got := b.Offsets()
	want := []int{0, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("Offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Offsets = %v, want %v", got, want)
		}
	}
}

func TestOverlapRate(t *testing.T) {
	prev := Seg16(0).Set(1).Set(2).Set(3).Set(4)
	cur := Seg16(0).Set(2).Set(3).Set(4).Set(5)
	if got := cur.OverlapRate(prev); got != 0.75 {
		t.Errorf("OverlapRate = %v, want 0.75", got)
	}
	if got := Seg16(0).OverlapRate(prev); got != 1 {
		t.Errorf("empty window OverlapRate = %v, want 1", got)
	}
}

func TestPage64Segments(t *testing.T) {
	var b Page64
	b = b.Set(0).Set(15).Set(16).Set(63)
	if s := b.Segment(0); s != Seg16(0).Set(0).Set(15) {
		t.Errorf("segment 0 = %s", s)
	}
	if s := b.Segment(1); s != Seg16(0).Set(0) {
		t.Errorf("segment 1 = %s", s)
	}
	if s := b.Segment(3); s != Seg16(0).Set(15) {
		t.Errorf("segment 3 = %s", s)
	}
	b2 := b.WithSegment(2, Seg16(0xFFFF))
	if b2.Segment(2) != 0xFFFF {
		t.Error("WithSegment did not replace segment 2")
	}
	if b2.Segment(0) != b.Segment(0) || b2.Segment(3) != b.Segment(3) {
		t.Error("WithSegment disturbed other segments")
	}
}

func TestParsePage64RoundTrip(t *testing.T) {
	b := FromOffsets(0, 7, 13, 40, 63)
	got, err := ParsePage64(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip: got %s want %s", got, b)
	}
}

func TestParsePage64Invalid(t *testing.T) {
	_, err := ParsePage64("01x2")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok || pe.Pos != 2 {
		t.Fatalf("unexpected error %v", err)
	}
}

// Properties over both widths.

func TestSeg16Properties(t *testing.T) {
	// Count(a|b) + Count(a&b) == Count(a) + Count(b)
	f := func(a, b uint16) bool {
		x, y := Seg16(a), Seg16(b)
		return x.Union(y).Count()+x.Common(y) == x.Count()+y.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Diff is symmetric and Diff(a,a)==0.
	g := func(a, b uint16) bool {
		x, y := Seg16(a), Seg16(b)
		return x.Diff(y) == y.Diff(x) && x.Diff(x) == 0
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	// Minus removes exactly the common bits.
	h := func(a, b uint16) bool {
		x, y := Seg16(a), Seg16(b)
		return x.Minus(y).Count() == x.Count()-x.Common(y)
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

func TestPage64Properties(t *testing.T) {
	// Segment decomposition partitions the page bitmap.
	f := func(v uint64) bool {
		b := Page64(v)
		total := 0
		for ch := 0; ch < 4; ch++ {
			total += b.Segment(ch).Count()
		}
		return total == b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// WithSegment(ch, Segment(ch)) is identity.
	g := func(v uint64, ch uint8) bool {
		b := Page64(v)
		c := int(ch % 4)
		return b.WithSegment(c, b.Segment(c)) == b
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	// String/Parse round trip.
	h := func(v uint64) bool {
		b := Page64(v)
		got, err := ParsePage64(b.String())
		return err == nil && got == b
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
	// Offsets reconstructs the bitmap.
	k := func(v uint64) bool {
		b := Page64(v)
		return FromOffsets(b.Offsets()...) == b
	}
	if err := quick.Check(k, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapRateBounds(t *testing.T) {
	f := func(a, b uint64) bool {
		r := Page64(a).OverlapRate(Page64(b))
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
