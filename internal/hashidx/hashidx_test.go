package hashidx

import (
	"math/rand"
	"testing"
)

// TestOracle churns the index against a reference map through a long random
// schedule of inserts, overwrites, deletes and misses, checking full
// agreement after every operation burst. Backward-shift deletion is the
// subtle part; the heavy delete mix is deliberate.
func TestOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(8)
	ref := map[uint64]int32{}
	keys := make([]uint64, 0, 4096)
	for op := 0; op < 200_000; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // insert / overwrite
			var k uint64
			if len(keys) > 0 && rng.Intn(3) == 0 {
				k = keys[rng.Intn(len(keys))]
			} else {
				// Clustered keys mimic page numbers: long probe chains.
				k = uint64(rng.Intn(2048))
				keys = append(keys, k)
			}
			v := int32(rng.Intn(1 << 20))
			x.Put(k, v)
			ref[k] = v
		case r < 8: // delete (present or absent)
			k := uint64(rng.Intn(2048))
			if len(keys) > 0 && rng.Intn(2) == 0 {
				k = keys[rng.Intn(len(keys))]
			}
			x.Delete(k)
			delete(ref, k)
		default: // lookup of a random key
			k := uint64(rng.Intn(2048))
			v, ok := x.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, v, ok, rv, rok)
			}
		}
		if x.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d want %d", op, x.Len(), len(ref))
		}
	}
	for k, rv := range ref {
		if v, ok := x.Get(k); !ok || v != rv {
			t.Fatalf("final: Get(%d) = %d,%v want %d,true", k, v, ok, rv)
		}
	}
}

// TestReset verifies Reset empties in place and the index is reusable.
func TestReset(t *testing.T) {
	x := New(4)
	for k := uint64(0); k < 100; k++ {
		x.Put(k, int32(k))
	}
	x.Reset()
	if x.Len() != 0 {
		t.Fatalf("Len after Reset = %d", x.Len())
	}
	if _, ok := x.Get(7); ok {
		t.Fatal("Get(7) found a value after Reset")
	}
	x.Put(7, 70)
	if v, ok := x.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) after reuse = %d,%v", v, ok)
	}
}

// TestSteadyStateAllocs pins the zero-allocation contract: once the table
// has reached its high-water size, churn never allocates.
func TestSteadyStateAllocs(t *testing.T) {
	x := New(256)
	for k := uint64(0); k < 256; k++ {
		x.Put(k, int32(k))
	}
	k := uint64(0)
	allocs := testing.AllocsPerRun(10_000, func() {
		x.Delete(k)
		x.Put(k+1000, int32(k))
		x.Delete(k + 1000)
		x.Put(k, int32(k))
		k = (k + 1) % 256
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocated %.1f allocs/op, want 0", allocs)
	}
}
