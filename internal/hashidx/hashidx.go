// Package hashidx provides a small open-addressing uint64 → int32 index
// with deterministic, allocation-free steady-state behaviour.
//
// The simulator's hot paths (the SLP filter/accumulation table indices, the
// TLP recent-page-table index, the prefetch queue's in-flight set) need an
// O(1) key → slot lookup with frequent insert/delete churn. Go's built-in
// map is unsuitable for the zero-allocation contract: under sustained
// delete/insert churn it can still allocate overflow buckets long after
// warm-up, which trips the testing.AllocsPerRun gates. This index uses
// linear probing with backward-shift deletion (no tombstones), so after the
// backing arrays reach their high-water size, Put/Get/Delete never allocate.
package hashidx

// U64 maps uint64 keys to int32 values. The zero value is not usable; build
// instances with New. Not safe for concurrent use.
type U64 struct {
	keys []uint64
	vals []int32
	used []bool
	mask uint64
	n    int
}

// New returns an index pre-sized for the given number of live entries.
// Capacity is a sizing hint, not a limit: the table grows (reallocating)
// whenever the load factor would exceed 1/2, so pre-sizing merely moves all
// allocation to construction time.
func New(capacity int) *U64 {
	if capacity < 4 {
		capacity = 4
	}
	size := 8
	for size < 4*capacity {
		size <<= 1
	}
	x := &U64{}
	x.init(size)
	return x
}

func (x *U64) init(size int) {
	x.keys = make([]uint64, size)
	x.vals = make([]int32, size)
	x.used = make([]bool, size)
	x.mask = uint64(size - 1)
	x.n = 0
}

// home is the key's preferred slot: a Fibonacci multiplicative hash keeps
// clustered page numbers (the common key distribution here) well spread.
func (x *U64) home(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> 40 & x.mask // high bits carry the mixing
}

// Len returns the number of live entries.
func (x *U64) Len() int { return x.n }

// Get returns the value stored for k.
func (x *U64) Get(k uint64) (int32, bool) {
	for i := x.home(k); x.used[i]; i = (i + 1) & x.mask {
		if x.keys[i] == k {
			return x.vals[i], true
		}
	}
	return 0, false
}

// Put inserts or replaces the value for k.
func (x *U64) Put(k uint64, v int32) {
	if uint64(x.n+1)*2 > x.mask+1 {
		x.grow()
	}
	i := x.home(k)
	for x.used[i] {
		if x.keys[i] == k {
			x.vals[i] = v
			return
		}
		i = (i + 1) & x.mask
	}
	x.keys[i], x.vals[i], x.used[i] = k, v, true
	x.n++
}

// Delete removes k if present, using backward-shift deletion: every entry of
// the probe chain after the hole is moved back when doing so does not detach
// it from its own home slot, so lookups never need tombstones.
func (x *U64) Delete(k uint64) {
	i := x.home(k)
	for {
		if !x.used[i] {
			return
		}
		if x.keys[i] == k {
			break
		}
		i = (i + 1) & x.mask
	}
	x.n--
	j := i
	for {
		x.used[i] = false
		for {
			j = (j + 1) & x.mask
			if !x.used[j] {
				return
			}
			h := x.home(x.keys[j])
			// The entry at j may fill the hole at i only when its home h
			// does not lie cyclically within (i, j] — otherwise moving it
			// before its home would break its probe chain.
			if i <= j {
				if h <= i || h > j {
					break
				}
			} else if h <= i && h > j {
				break
			}
		}
		x.keys[i], x.vals[i], x.used[i] = x.keys[j], x.vals[j], true
		i = j
	}
}

// Reset empties the index in place, keeping the backing arrays.
func (x *U64) Reset() {
	for i := range x.used {
		x.used[i] = false
	}
	x.n = 0
}

// grow doubles the table and rehashes every live entry.
func (x *U64) grow() {
	keys, vals, used := x.keys, x.vals, x.used
	x.init(2 * len(keys))
	for i, u := range used {
		if u {
			x.Put(keys[i], vals[i])
		}
	}
}
