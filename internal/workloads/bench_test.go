package workloads

import "testing"

// BenchmarkGenerate measures trace-generation throughput (records/op are
// reported as ns/record via b.N records).
func BenchmarkGenerate(b *testing.B) {
	p, _ := ByAbbr("CFM")
	g := NewGenerator(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
