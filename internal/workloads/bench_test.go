package workloads

import (
	"testing"

	"repro/internal/trace"
)

// BenchmarkGenerate measures trace-generation throughput (records/op are
// reported as ns/record via b.N records).
func BenchmarkGenerate(b *testing.B) {
	p, _ := ByAbbr("CFM")
	g := NewGenerator(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkGenerateStream measures the chunked stream producer the engine
// consumes: ns/op is per record, and allocs/op must stay ~0 — the stream
// writes into the caller's buffer, which is what keeps RunStream's memory
// independent of trace length.
func BenchmarkGenerateStream(b *testing.B) {
	p, _ := ByAbbr("CFM")
	buf := make([]trace.Record, trace.ChunkSize)
	b.ReportAllocs()
	b.ResetTimer()
	s := p.Stream(b.N)
	for {
		if n := s.NextChunk(buf); n == 0 {
			break
		}
	}
}
