package workloads

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, p := range Catalog() {
		var buf bytes.Buffer
		if err := WriteProfile(&buf, p); err != nil {
			t.Fatalf("%s: write: %v", p.Abbr, err)
		}
		got, err := ReadProfile(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", p.Abbr, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", p.Abbr, got, p)
		}
	}
}

func TestProfileJSONUsesDeviceNames(t *testing.T) {
	var buf bytes.Buffer
	p, _ := ByAbbr("CFM")
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"device": "gpu"`) {
		t.Fatalf("device mnemonics missing from JSON:\n%s", buf.String())
	}
}

func TestReadProfileRejectsInvalid(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"FootprintMin": 0, "FootprintMax": 10, "Parallelism": 1, "MeanGap": 1}`, // fails validation
		`{"DeviceWeights": [{"device": "toaster", "weight": 1}]}`,                 // bad device
	}
	for i, c := range cases {
		if _, err := ReadProfile(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadProfileGeneratesDeterministically(t *testing.T) {
	var buf bytes.Buffer
	p, _ := ByAbbr("HoK")
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Generate(2000)
	b := got.Generate(2000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("JSON round-tripped profile generates a different trace")
	}
}
