package workloads

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
)

// deviceWeightJSON is the serialised device-mix entry; device mnemonics keep
// profile files hand-editable.
type deviceWeightJSON struct {
	Device string  `json:"device"`
	Weight float64 `json:"weight"`
}

// MarshalJSON implements json.Marshaler for Profile.
func (p Profile) MarshalJSON() ([]byte, error) {
	type alias Profile // drop methods to avoid recursion
	var devs []deviceWeightJSON
	for _, d := range p.Devices {
		devs = append(devs, deviceWeightJSON{Device: d.Device.String(), Weight: d.Weight})
	}
	a := alias(p)
	a.Devices = nil
	return json.Marshal(struct {
		alias
		Devices []deviceWeightJSON `json:"DeviceWeights,omitempty"`
	}{alias: a, Devices: devs})
}

// UnmarshalJSON implements json.Unmarshaler for Profile.
func (p *Profile) UnmarshalJSON(data []byte) error {
	type alias Profile
	var a struct {
		alias
		Devices []deviceWeightJSON `json:"DeviceWeights"`
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*p = Profile(a.alias)
	p.Devices = nil
	for _, d := range a.Devices {
		dev, err := trace.ParseDevice(d.Device)
		if err != nil {
			return fmt.Errorf("workloads: %w", err)
		}
		p.Devices = append(p.Devices, DeviceWeight{Device: dev, Weight: d.Weight})
	}
	return nil
}

// WriteProfile serialises a profile as indented JSON.
func WriteProfile(w io.Writer, p Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProfile parses a JSON profile and validates it.
func ReadProfile(r io.Reader) (Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("workloads: parse profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}
