package workloads

import "repro/internal/trace"

// Default sizing shared by the catalog. Individual apps override the fields
// that define their character. The knobs are calibrated against the paper's
// measured trace properties (Figures 4 and 5) and evaluation behaviour
// (Figures 7–10); see EXPERIMENTS.md for measured-vs-paper values.
func baseProfile() Profile {
	return Profile{
		HotPages:       6500,
		ClusterFrac:    0.50,
		Regions:        160,
		RegionSpanMin:  4,
		RegionSpanMax:  24,
		RegionNoise:    1,
		MaxPages:       6500,
		FootprintMin:   10,
		FootprintMax:   30,
		VisitNoise:     0.07,
		HaloRate:       0.10,
		ColdPageRate:   0.06,
		StreamRate:     0.05,
		RandomRate:     0.07,
		RandomPages:    5000,
		RegionAffinity: 0.6,
		HotSkew:        0.15,
		RecentWindow:   1500,
		Parallelism:    16,
		MeanGap:        11,
		WriteFraction:  0.2,
		Devices: []DeviceWeight{
			{trace.CPU0, 2}, {trace.CPU1, 2}, {trace.CPU2, 1.5}, {trace.CPU3, 1.5},
			{trace.CPU4, 1}, {trace.CPU5, 1}, {trace.CPU6, 0.7}, {trace.CPU7, 0.7},
			{trace.GPU, 5}, {trace.NPU, 0.3}, {trace.ISP, 0.3}, {trace.DSP, 0.8},
		},
	}
}

// Catalog returns the ten Table 2 applications as generative profiles.
func Catalog() []Profile {
	mk := func(name, abbr, desc string, seed int64, mut func(*Profile)) Profile {
		p := baseProfile()
		p.Name, p.Abbr, p.Description, p.Seed = name, abbr, desc, seed
		if mut != nil {
			mut(&p)
		}
		return p
	}
	return []Profile{
		mk("Cross Fire Mobile", "CFM", "First-person shooter", 101, func(p *Profile) {
			// Strong intra-page regularity: stable map/texture assets.
			p.HotPages = 7200
			p.VisitNoise = 0.05
			p.ColdPageRate = 0.04
			p.RandomRate = 0.12
		}),
		mk("Honor of Kings", "HoK", "Multiplayer MOBA", 102, func(p *Profile) {
			p.HotPages = 7000
			p.VisitNoise = 0.065
			p.ColdPageRate = 0.10
			p.Regions = 220
		}),
		mk("Identity V", "Id-V", "Asymmetric battle arena", 103, func(p *Profile) {
			p.VisitNoise = 0.05
			p.ColdPageRate = 0.12
			p.StreamRate = 0.12
		}),
		mk("QQ Speed Mobile", "QSM", "3D racing mobile game", 104, func(p *Profile) {
			// Racing: assets stream in along the track but repeat per lap.
			p.HotPages = 7800
			p.VisitNoise = 0.05
			p.ColdPageRate = 0.05
			p.StreamRate = 0.14
		}),
		mk("TikTok", "TikT", "Short video sharing app", 105, func(p *Profile) {
			// Scrolling feeds: more fresh content, more streaming DMA.
			p.HotPages = 4500
			p.ColdPageRate = 0.2
			p.StreamRate = 0.2
			p.Regions = 300
			p.VisitNoise = 0.075
			p.Devices = append(p.Devices, DeviceWeight{trace.ISP, 2})
		}),
		mk("Fortnite", "Fort", "Multiplayer battle royale", 106, func(p *Profile) {
			// Huge open world: pages are mostly seen once, but assets are
			// loaded in clusters — little self-history (SLP starves),
			// strong neighbour similarity (TLP shines).
			p.HotPages = 1200
			p.MaxPages = 11000
			p.Regions = 500
			p.RegionSpanMin = 8
			p.RegionSpanMax = 64
			p.ColdPageRate = 0.5
			p.RandomRate = 0.18
			p.StreamRate = 0.08
			p.RegionAffinity = 0.75
			p.VisitNoise = 0.065
		}),
		mk("Honkai Impact 3", "HI3", "3D action game", 107, func(p *Profile) {
			// Dense footprints: batched prefetch converts many activates
			// into row hits (the power win in Figure 10).
			p.FootprintMin = 12
			p.FootprintMax = 28
			p.HotPages = 6200
			p.VisitNoise = 0.05
			p.ColdPageRate = 0.05
			p.RandomRate = 0.10
		}),
		mk("Knives Out", "KO", "Multiplayer battle royale", 108, func(p *Profile) {
			p.HotPages = 6500
			p.VisitNoise = 0.05
			p.ColdPageRate = 0.09
			p.Regions = 240
		}),
		mk("NBA 2K19", "NBA2", "Basketball game", 109, func(p *Profile) {
			// Irregular engine traffic: BOP's offset guesses misfire.
			p.RandomRate = 0.34
			p.StreamRate = 0.10
			p.VisitNoise = 0.075
			p.HotPages = 6200
		}),
		mk("PUBG Mobile", "PM", "Multiplayer battle royale", 110, func(p *Profile) {
			p.RandomRate = 0.28
			p.ColdPageRate = 0.18
			p.StreamRate = 0.08
			p.Regions = 360
			p.RegionSpanMin = 8
			p.RegionSpanMax = 64
			p.HotPages = 4500
			p.MaxPages = 9000
		}),
	}
}

// ByAbbr finds a catalog profile by its Table 2 abbreviation.
func ByAbbr(abbr string) (Profile, bool) {
	for _, p := range Catalog() {
		if p.Abbr == abbr {
			return p, true
		}
	}
	return Profile{}, false
}

// Abbrs lists the catalog abbreviations in Table 2 order.
func Abbrs() []string {
	ps := Catalog()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Abbr
	}
	return out
}
