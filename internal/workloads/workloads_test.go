package workloads

import (
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

func testProfile() Profile {
	p := baseProfile()
	p.Name, p.Abbr, p.Seed = "Test", "TST", 42
	// Small sizes keep unit tests fast.
	p.HotPages = 400
	p.MaxPages = 400
	p.Regions = 12
	p.RandomPages = 200
	return p
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.HotPages = -1 },
		func(p *Profile) { p.FootprintMin = 0 },
		func(p *Profile) { p.FootprintMax = 65 },
		func(p *Profile) { p.FootprintMin = 30; p.FootprintMax = 10 },
		func(p *Profile) { p.ColdPageRate = 0.5; p.StreamRate = 0.4; p.RandomRate = 0.2 },
		func(p *Profile) { p.VisitNoise = 1.0 },
		func(p *Profile) { p.ClusterFrac = 1.5 },
		func(p *Profile) { p.Parallelism = 0 },
		func(p *Profile) { p.MeanGap = 0 },
	}
	for i, mut := range bad {
		p := testProfile()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad profile accepted", i)
		}
	}
	if err := testProfile().Validate(); err != nil {
		t.Fatalf("test profile invalid: %v", err)
	}
}

func TestCatalogValid(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d apps, want 10 (Table 2)", len(cat))
	}
	seen := map[string]bool{}
	for _, p := range cat {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Abbr, err)
		}
		if seen[p.Abbr] {
			t.Errorf("duplicate abbreviation %s", p.Abbr)
		}
		seen[p.Abbr] = true
		if p.Seed == 0 {
			t.Errorf("%s: zero seed", p.Abbr)
		}
	}
	for _, want := range []string{"CFM", "HoK", "Id-V", "QSM", "TikT", "Fort", "HI3", "KO", "NBA2", "PM"} {
		if !seen[want] {
			t.Errorf("missing Table 2 app %s", want)
		}
	}
}

func TestByAbbr(t *testing.T) {
	p, ok := ByAbbr("Fort")
	if !ok || p.Name != "Fortnite" {
		t.Fatalf("ByAbbr(Fort) = %v, %v", p.Name, ok)
	}
	if _, ok := ByAbbr("nope"); ok {
		t.Fatal("unknown abbr found")
	}
	if len(Abbrs()) != 10 {
		t.Fatal("Abbrs length")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := testProfile().Generate(5000)
	b := testProfile().Generate(5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	p2 := testProfile()
	p2.Seed = 43
	c := p2.Generate(5000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCyclesMonotone(t *testing.T) {
	tr := testProfile().Generate(10000)
	if !tr.Sorted() {
		t.Fatal("generated cycles not monotone")
	}
}

func TestBlockAlignment(t *testing.T) {
	tr := testProfile().Generate(5000)
	for _, r := range tr {
		if r.Addr != r.Addr.Align() {
			t.Fatalf("unaligned address %#x", uint64(r.Addr))
		}
	}
}

func TestEpisodeMixRoughlyHolds(t *testing.T) {
	// StreamRate etc. are record shares; verify the stream share lands
	// near the configured value despite stream episodes being longer.
	p := testProfile()
	p.StreamRate = 0.2
	tr := p.Generate(60000)
	s := trace.Analyze(tr)
	// Streams are the only accesses outside hot/region/random areas and
	// touch many sequential blocks; approximate their share by counting
	// accesses whose predecessor (same device) was the previous block.
	// Simpler proxy: mean distinct blocks per page — streams fill pages
	// fully. Instead, verify total page footprint looks sane and the
	// write fraction holds.
	writeFrac := float64(s.Writes) / float64(s.Records)
	if writeFrac < p.WriteFraction-0.03 || writeFrac > p.WriteFraction+0.03 {
		t.Fatalf("write fraction %.3f, want ≈ %.2f", writeFrac, p.WriteFraction)
	}
}

func TestMeanGapHolds(t *testing.T) {
	p := testProfile()
	tr := p.Generate(20000)
	s := trace.Analyze(tr)
	if s.MeanGap < p.MeanGap*0.9 || s.MeanGap > p.MeanGap*1.1 {
		t.Fatalf("mean gap %.2f, want ≈ %v", s.MeanGap, p.MeanGap)
	}
}

func TestDeviceMixUsed(t *testing.T) {
	tr := testProfile().Generate(30000)
	s := trace.Analyze(tr)
	if len(s.PerDevice) < 5 {
		t.Fatalf("only %d devices appear", len(s.PerDevice))
	}
	if s.PerDevice[trace.GPU] == 0 {
		t.Fatal("GPU absent despite largest weight")
	}
}

func TestChannelsBalanced(t *testing.T) {
	tr := testProfile().Generate(40000)
	s := trace.Analyze(tr)
	for ch, n := range s.ChannelLoad {
		frac := float64(n) / float64(s.Records)
		if frac < 0.18 || frac > 0.32 {
			t.Fatalf("channel %d load %.2f, want ≈ 0.25", ch, frac)
		}
	}
}

func TestFootprintRevisitStability(t *testing.T) {
	// The same page's accesses across the trace stay mostly within one
	// stable footprint: distinct blocks per hot page ≲ FootprintMax + halo.
	p := testProfile()
	tr := p.Generate(60000)
	perPage := map[addr.PageNum]map[int]struct{}{}
	counts := map[addr.PageNum]int{}
	for _, r := range tr {
		pg := r.Page()
		if perPage[pg] == nil {
			perPage[pg] = map[int]struct{}{}
		}
		perPage[pg][r.Addr.Offset()] = struct{}{}
		counts[pg]++
	}
	checked := 0
	for pg, blocks := range perPage {
		// Only revisited footprint pages are bounded; streams sweep
		// whole pages once (count ≈ distinct blocks) and are exempt.
		if counts[pg] < 2*len(blocks) {
			continue
		}
		checked++
		if len(blocks) > p.FootprintMax+4 {
			t.Fatalf("page %#x touched %d distinct blocks over %d accesses (footprint max %d)",
				uint64(pg), len(blocks), counts[pg], p.FootprintMax)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d revisited pages found; revisit machinery broken", checked)
	}
}

func TestColdPagesAppearNearRegions(t *testing.T) {
	p := testProfile()
	p.ColdPageRate = 0.3
	tr := p.Generate(40000)
	// At least some pages must be new during the run and close to other
	// pages (the TLP opportunity); proxy: count pages whose first access
	// is in the second half and that are within 64 of an earlier page.
	firstSeen := map[addr.PageNum]int{}
	var order []addr.PageNum
	for i, r := range tr {
		if _, ok := firstSeen[r.Page()]; !ok {
			firstSeen[r.Page()] = i
			order = append(order, r.Page())
		}
	}
	lateNear := 0
	for _, pg := range order {
		if firstSeen[pg] < len(tr)/2 {
			continue
		}
		for _, other := range order {
			if other != pg && firstSeen[other] < firstSeen[pg] && pg.Distance(other) <= 64 {
				lateNear++
				break
			}
		}
	}
	if lateNear < 20 {
		t.Fatalf("only %d late pages near earlier pages; cold-page machinery broken", lateNear)
	}
}

func TestGeneratorProgressOnDegenerateMix(t *testing.T) {
	p := testProfile()
	p.VisitNoise = 0.95 // nearly every footprint block skipped
	tr := p.Generate(2000)
	if len(tr) != 2000 {
		t.Fatalf("generated %d records", len(tr))
	}
}

func TestNewGeneratorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := testProfile()
	p.MeanGap = -1
	NewGenerator(p)
}
