// Package workloads synthesises memory-bus traces with the statistical
// structure the Planaria paper measures on real phones (Table 2 apps).
//
// The paper's traces are proprietary, so this package is the DESIGN.md
// substitution: each application is a parameterised generative model tuned
// to reproduce the trace *properties* the prefetchers key on —
//
//   - footprint visits: a page's blocks are touched once each, in
//     non-deterministic order, within a short interval (Figure 2), and the
//     footprint is stable across visits (Figure 4: >80 % overlap);
//   - inter-page similarity: pages cluster into regions whose members have
//     nearly identical footprints at nearby page numbers (Figure 5);
//   - interleaving: many episodes from different SoC devices are in flight
//     at once, so the bus-level delta sequence is scrambled even though
//     per-page footprints are intact (the reason delta prefetchers lose);
//   - filtered locality: a block is accessed once per visit (higher-level
//     caches absorb short-term reuse), so the SC sees long reuse distances.
//
// All generation is deterministic per profile seed.
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/bitmap"
	"repro/internal/trace"
)

// DeviceWeight gives a device's share of episodes.
type DeviceWeight struct {
	Device trace.Device
	Weight float64
}

// Profile is the generative model of one application.
type Profile struct {
	Name        string
	Abbr        string
	Description string
	Seed        int64

	// Address-space structure.
	HotPages      int     // resident hot pages (standalone + clustered)
	ClusterFrac   float64 // fraction of hot pages allocated inside clusters
	Regions       int     // live regions that spawn cold pages during the run
	RegionSpanMin int     // members per region, lower bound
	RegionSpanMax int     // members per region, upper bound
	RegionNoise   int     // footprint bits flipped between a member and its prototype
	MaxPages      int     // bound on the live page set (older pages retire)

	FootprintMin int     // blocks per page footprint, lower bound (of 64)
	FootprintMax int     // upper bound
	VisitNoise   float64 // per-visit probability a footprint block is skipped
	HaloRate     float64 // per-visit probability of touching a halo block

	// Episode mix. The rates are approximate *record* shares (fractions
	// of bus requests), not episode counts: episode-kind selection is
	// weighted by the reciprocal of each kind's expected length, so a
	// StreamRate of 0.10 yields about 10 % streaming requests even
	// though stream episodes are several times longer than page visits.
	ColdPageRate   float64 // visit a never-seen page of an active region
	StreamRate     float64 // sequential stream episode
	RandomRate     float64 // scattered accesses in the bounded random area
	RegionAffinity float64 // bias to keep new episodes in recently active regions

	// Revisit locality: with probability HotSkew a revisit targets one of
	// the RecentWindow most recently touched pages (phase working set);
	// otherwise any live page. This sets the baseline SC hit rate.
	HotSkew      float64
	RecentWindow int

	RandomPages int // distinct pages in the random ("heap churn") area

	Parallelism   int     // concurrently active episodes
	MeanGap       float64 // mean cycles between consecutive bus requests
	WriteFraction float64
	Devices       []DeviceWeight
}

// Validate reports implausible parameter combinations.
func (p Profile) Validate() error {
	switch {
	case p.HotPages < 0 || p.Regions < 0:
		return fmt.Errorf("workloads %s: negative structure sizes", p.Abbr)
	case p.FootprintMin < 1 || p.FootprintMax > addr.BlocksPerPage || p.FootprintMin > p.FootprintMax:
		return fmt.Errorf("workloads %s: bad footprint bounds [%d,%d]", p.Abbr, p.FootprintMin, p.FootprintMax)
	case p.ColdPageRate+p.StreamRate+p.RandomRate > 1:
		return fmt.Errorf("workloads %s: episode mix exceeds 1", p.Abbr)
	case p.VisitNoise < 0 || p.VisitNoise >= 1:
		return fmt.Errorf("workloads %s: visit noise %v out of range", p.Abbr, p.VisitNoise)
	case p.ClusterFrac < 0 || p.ClusterFrac > 1:
		return fmt.Errorf("workloads %s: cluster fraction %v out of range", p.Abbr, p.ClusterFrac)
	case p.Parallelism < 1:
		return fmt.Errorf("workloads %s: parallelism must be >= 1", p.Abbr)
	case p.MeanGap <= 0:
		return fmt.Errorf("workloads %s: mean gap must be positive", p.Abbr)
	}
	return nil
}

// pageInfo is the stable behaviour of one live page.
type pageInfo struct {
	stable bitmap.Page64 // footprint visited (almost) every time
	halo   bitmap.Page64 // occasionally visited extra blocks (shared per region)
}

// region is a cluster of pages with similar footprints at strided nearby
// page numbers. Cold pages allocate members lazily; hot clusters allocate
// them up front.
type region struct {
	base   addr.PageNum
	stride int // page-number gap between members (drives Figure 5's distance axis)
	span   int // member count
	proto  bitmap.Page64
	halo   bitmap.Page64
	// order is a permutation of member indices: cold pages materialise in
	// a shuffled order so no mechanical page-number sequence appears on
	// the bus for delta prefetchers to latch onto.
	order    []int
	nextCold int
}

// strideChoices weights member spacing so that roughly half of clustered
// pages have a neighbour within distance 4 and nearly all within 64,
// reproducing the growth of Figure 5's curve.
var strideChoices = []int{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 4, 4, 6, 8, 12, 32}

type episodeKind int

const (
	epVisit episodeKind = iota
	epStream
	epRandom
)

// episode is one in-flight access sequence (one device's activity burst).
type episode struct {
	kind   episodeKind
	device trace.Device
	// visit state
	page addr.PageNum
	offs []int // remaining in-page offsets, pre-shuffled
	// stream state
	next addr.BlockNum
	left int
	// random state
	rleft int
}

func (e *episode) done() bool {
	switch e.kind {
	case epVisit:
		return len(e.offs) == 0
	case epStream:
		return e.left == 0
	default:
		return e.rleft == 0
	}
}

// Generator produces the trace of one profile incrementally.
type Generator struct {
	p   Profile
	rng *rand.Rand

	clock    float64
	episodes []*episode

	pages      map[addr.PageNum]pageInfo
	known      []addr.PageNum // FIFO of live pages (revisit pool)
	regions    []region       // cold-page regions (lazily filled)
	active     []int          // recently active region indices
	randomBase addr.PageNum
}

// NewGenerator builds a generator; it panics on an invalid profile
// (profiles are compile-time catalog data).
func NewGenerator(p Profile) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		p:          p,
		rng:        rand.New(rand.NewSource(p.Seed)),
		pages:      make(map[addr.PageNum]pageInfo, p.HotPages+p.MaxPages),
		randomBase: addr.PageNum(1<<31) + addr.PageNum(rand.New(rand.NewSource(p.Seed^0x5eed)).Int63n(1<<20)),
	}
	// Standalone hot pages at scattered page numbers.
	standalone := int(float64(p.HotPages) * (1 - p.ClusterFrac))
	for i := 0; i < standalone; i++ {
		pn := g.randomPage()
		if _, dup := g.pages[pn]; dup {
			continue
		}
		g.addPage(pn, pageInfo{stable: g.randomFootprint(), halo: g.randomHalo()})
	}
	// Clustered hot pages: contiguous-ish strided runs sharing a
	// prototype footprint.
	for allocated := standalone; allocated < p.HotPages; {
		r := g.newRegion()
		for i := 0; i < r.span && allocated < p.HotPages; i++ {
			g.addPage(r.base+addr.PageNum(i*r.stride), g.memberInfo(&r))
			allocated++
		}
	}
	// Cold-page regions, each pre-seeded with one member so transfer
	// learning has something to see early.
	for i := 0; i < p.Regions; i++ {
		g.regions = append(g.regions, g.newRegion())
		g.coldPage(i)
	}
	for i := 0; i < p.Parallelism; i++ {
		g.episodes = append(g.episodes, g.newEpisode())
	}
	return g
}

func (g *Generator) randomPage() addr.PageNum {
	return addr.PageNum(g.rng.Int63n(1 << 30))
}

func (g *Generator) randomFootprint() bitmap.Page64 {
	n := g.p.FootprintMin
	if g.p.FootprintMax > g.p.FootprintMin {
		n += g.rng.Intn(g.p.FootprintMax - g.p.FootprintMin + 1)
	}
	var b bitmap.Page64
	for b.Count() < n {
		b = b.Set(g.rng.Intn(addr.BlocksPerPage))
	}
	return b
}

// randomHalo picks two occasional extra blocks.
func (g *Generator) randomHalo() bitmap.Page64 {
	return bitmap.FromOffsets(g.rng.Intn(addr.BlocksPerPage), g.rng.Intn(addr.BlocksPerPage))
}

func (g *Generator) newRegion() region {
	span := g.p.RegionSpanMin
	if g.p.RegionSpanMax > g.p.RegionSpanMin {
		span += g.rng.Intn(g.p.RegionSpanMax - g.p.RegionSpanMin + 1)
	}
	if span < 1 {
		span = 1
	}
	order := g.rng.Perm(span)
	return region{
		base:   g.randomPage(),
		stride: strideChoices[g.rng.Intn(len(strideChoices))],
		span:   span,
		proto:  g.randomFootprint(),
		halo:   g.randomHalo(),
		order:  order,
	}
}

// memberInfo derives a member page's stable footprint from the region
// prototype: RegionNoise bits flipped, halo shared (so observed footprints
// of two members differ by at most 2×RegionNoise bits).
func (g *Generator) memberInfo(r *region) pageInfo {
	fp := r.proto
	for i := 0; i < g.p.RegionNoise; i++ {
		fp = flip(fp, g.rng.Intn(addr.BlocksPerPage))
	}
	if fp.Count() == 0 {
		fp = fp.Set(g.rng.Intn(addr.BlocksPerPage))
	}
	return pageInfo{stable: fp, halo: r.halo}
}

// addPage registers a live page, retiring the oldest when over budget.
func (g *Generator) addPage(pn addr.PageNum, info pageInfo) {
	g.pages[pn] = info
	g.known = append(g.known, pn)
	limit := g.p.HotPages + g.p.MaxPages
	if limit > 0 && len(g.known) > limit {
		old := g.known[0]
		g.known = g.known[1:]
		delete(g.pages, old)
	}
}

// coldPage allocates the next member of region ri and returns its page.
// When the region is exhausted it is replaced in place by a fresh region.
func (g *Generator) coldPage(ri int) addr.PageNum {
	r := &g.regions[ri]
	if r.nextCold >= r.span {
		*r = g.newRegion()
	}
	pn := r.base + addr.PageNum(r.order[r.nextCold]*r.stride)
	r.nextCold++
	g.addPage(pn, g.memberInfo(r))
	g.noteActive(ri)
	return pn
}

func flip(b bitmap.Page64, i int) bitmap.Page64 {
	if b.Has(i) {
		return b.Clear(i)
	}
	return b.Set(i)
}

func (g *Generator) noteActive(ri int) {
	g.active = append(g.active, ri)
	if len(g.active) > 8 {
		g.active = g.active[1:]
	}
}

func (g *Generator) pickRegion() int {
	if len(g.active) > 0 && g.rng.Float64() < g.p.RegionAffinity {
		return g.active[g.rng.Intn(len(g.active))]
	}
	ri := g.rng.Intn(len(g.regions))
	g.noteActive(ri)
	return ri
}

func (g *Generator) pickDevice() trace.Device {
	ds := g.p.Devices
	if len(ds) == 0 {
		return trace.CPU0
	}
	total := 0.0
	for _, d := range ds {
		total += d.Weight
	}
	x := g.rng.Float64() * total
	for _, d := range ds {
		x -= d.Weight
		if x <= 0 {
			return d.Device
		}
	}
	return ds[len(ds)-1].Device
}

// visitFootprint derives this visit's observed access list from the page's
// stable footprint: each stable block is visited with probability
// 1−VisitNoise, and each halo block with probability HaloRate. Order is
// shuffled (Figure 2: non-deterministic access order within a snapshot).
func (g *Generator) visitFootprint(info pageInfo) []int {
	out := make([]int, 0, info.stable.Count()+2)
	for _, o := range info.stable.Offsets() {
		if g.rng.Float64() >= g.p.VisitNoise {
			out = append(out, o)
		}
	}
	for _, o := range info.halo.Minus(info.stable).Offsets() {
		if g.rng.Float64() < g.p.HaloRate {
			out = append(out, o)
		}
	}
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func (g *Generator) newEpisode() *episode {
	e := &episode{device: g.pickDevice()}
	// Convert record shares to episode probabilities by dividing by each
	// kind's expected length, so the rates hold at the request level.
	visitLen := float64(g.p.FootprintMin+g.p.FootprintMax) / 2 * (1 - g.p.VisitNoise)
	if visitLen < 1 {
		visitLen = 1
	}
	const streamLen, randomLen = 80.0, 9.5
	wCold := g.p.ColdPageRate / visitLen
	wStream := g.p.StreamRate / streamLen
	wRandom := g.p.RandomRate / randomLen
	wRevisit := (1 - g.p.ColdPageRate - g.p.StreamRate - g.p.RandomRate) / visitLen
	x := g.rng.Float64() * (wCold + wStream + wRandom + wRevisit)
	switch {
	case len(g.regions) > 0 && x < wCold:
		e.kind = epVisit
		e.page = g.coldPage(g.pickRegion())
		e.offs = g.visitFootprint(g.pages[e.page])
	case x < wCold+wStream:
		e.kind = epStream
		e.next = addr.Addr(g.rng.Int63n(1 << 42)).Block()
		e.left = 32 + g.rng.Intn(96)
	case x < wCold+wStream+wRandom:
		e.kind = epRandom
		e.rleft = 4 + g.rng.Intn(12)
	default:
		e.kind = epVisit
		e.page = g.revisitPage()
		e.offs = g.visitFootprint(g.pages[e.page])
	}
	if e.done() {
		// Degenerate episode (e.g. fully skipped footprint): fall back
		// to one random access so the generator always makes progress.
		e.kind = epRandom
		e.rleft = 1
	}
	return e
}

// revisitPage picks a live page, preferring members of recently active
// regions (asset clusters used together) under the affinity bias.
func (g *Generator) revisitPage() addr.PageNum {
	if len(g.active) > 0 && g.rng.Float64() < g.p.RegionAffinity {
		r := g.regions[g.active[g.rng.Intn(len(g.active))]]
		if r.nextCold > 0 {
			pn := r.base + addr.PageNum(r.order[g.rng.Intn(r.nextCold)]*r.stride)
			if _, ok := g.pages[pn]; ok {
				return pn
			}
		}
	}
	if len(g.known) == 0 {
		pn := g.randomPage()
		g.addPage(pn, pageInfo{stable: g.randomFootprint(), halo: g.randomHalo()})
		return pn
	}
	if w := g.p.RecentWindow; w > 0 && g.rng.Float64() < g.p.HotSkew {
		if w > len(g.known) {
			w = len(g.known)
		}
		return g.known[len(g.known)-1-g.rng.Intn(w)]
	}
	return g.known[g.rng.Intn(len(g.known))]
}

// randomBlock picks a block in the bounded random ("heap churn") area. The
// area holds RandomPages pages spaced 128 page numbers apart, so heap-churn
// pages are never within the Figure 5 distance window of each other and
// exhibit no stable snapshots.
func (g *Generator) randomBlock() addr.BlockNum {
	pages := g.p.RandomPages
	if pages <= 0 {
		pages = 4096
	}
	pn := g.randomBase + addr.PageNum(g.rng.Intn(pages)*128)
	return pn.Block(g.rng.Intn(addr.BlocksPerPage))
}

// Next produces the next trace record.
func (g *Generator) Next() trace.Record {
	idx := g.rng.Intn(len(g.episodes))
	e := g.episodes[idx]

	var a addr.Addr
	switch e.kind {
	case epVisit:
		off := e.offs[0]
		e.offs = e.offs[1:]
		a = e.page.Block(off).Addr()
	case epStream:
		a = e.next.Addr()
		e.next++
		e.left--
	default:
		a = g.randomBlock().Addr()
		e.rleft--
	}
	if e.done() {
		g.episodes[idx] = g.newEpisode()
	}

	g.clock += g.rng.ExpFloat64() * g.p.MeanGap
	return trace.Record{
		Addr:   a,
		Cycle:  uint64(g.clock),
		Device: e.device,
		Write:  g.rng.Float64() < g.p.WriteFraction,
	}
}

// Generate produces a trace of n records.
func (g *Generator) Generate(n int) trace.Trace {
	t := make(trace.Trace, n)
	for i := range t {
		t[i] = g.Next()
	}
	return t
}

// Generate is a convenience: a fresh generator's first n records.
func (p Profile) Generate(n int) trace.Trace {
	return NewGenerator(p).Generate(n)
}

// TraceStream streams a generator's records through the trace.Stream
// interface: synthetic traces feed the engine record-at-a-time in O(1)
// memory, so run length is bounded by throughput, not RAM. Generation is
// deterministic per profile seed, so streaming the same profile twice (or
// streaming after materialising with Generate) yields identical records.
type TraceStream struct {
	g    *Generator
	left int
}

// Stream returns a trace.Stream over the generator's next n records.
func (g *Generator) Stream(n int) *TraceStream {
	if n < 0 {
		n = 0
	}
	return &TraceStream{g: g, left: n}
}

// Stream returns a trace.Stream over a fresh generator's first n records.
func (p Profile) Stream(n int) *TraceStream {
	return NewGenerator(p).Stream(n)
}

// Next implements trace.Stream.
func (s *TraceStream) Next() (trace.Record, bool) {
	if s.left <= 0 {
		return trace.Record{}, false
	}
	s.left--
	return s.g.Next(), true
}

// NextChunk implements trace.Chunker.
func (s *TraceStream) NextChunk(dst []trace.Record) int {
	n := len(dst)
	if n > s.left {
		n = s.left
	}
	for i := 0; i < n; i++ {
		dst[i] = s.g.Next()
	}
	s.left -= n
	return n
}

// Err implements trace.Stream; generation cannot fail.
func (s *TraceStream) Err() error { return nil }

// Len implements trace.Sized: records remaining.
func (s *TraceStream) Len() int { return s.left }
