package analysis

import (
	"math"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

func rec(p addr.PageNum, off int, cycle uint64) trace.Record {
	return trace.Record{Addr: p.Block(off).Addr(), Cycle: cycle}
}

func TestPageTimeline(t *testing.T) {
	tr := trace.Trace{
		rec(1, 3, 10), rec(2, 5, 20), rec(1, 7, 30),
	}
	pts := PageTimeline(tr, 1)
	if len(pts) != 2 {
		t.Fatalf("timeline %v", pts)
	}
	if pts[0].Offset != 3 || pts[0].Cycle != 10 || pts[1].Offset != 7 {
		t.Fatalf("timeline %v", pts)
	}
	if PageTimeline(tr, 99) != nil {
		t.Fatal("absent page returned points")
	}
}

func TestHottestPages(t *testing.T) {
	tr := trace.Trace{
		rec(1, 0, 0), rec(1, 1, 1), rec(1, 2, 2),
		rec(2, 0, 3), rec(2, 1, 4),
		rec(3, 0, 5),
	}
	hot := HottestPages(tr, 2)
	if len(hot) != 2 || hot[0] != 1 || hot[1] != 2 {
		t.Fatalf("hottest = %v", hot)
	}
	if got := HottestPages(tr, 10); len(got) != 3 {
		t.Fatalf("want all 3 pages, got %v", got)
	}
}

func TestOverlapRatePerfectRepeat(t *testing.T) {
	// One page, footprint {0,1,2}, visited 4 times: every window matches
	// its predecessor exactly.
	var tr trace.Trace
	c := uint64(0)
	for v := 0; v < 4; v++ {
		for _, o := range []int{0, 1, 2} {
			tr = append(tr, rec(1, o, c))
			c += 10
		}
	}
	if got := OverlapRate(tr); got != 1 {
		t.Fatalf("OverlapRate = %v, want 1", got)
	}
}

func TestOverlapRateDisjointVisits(t *testing.T) {
	// Page visits two disjoint block sets alternately: window size is the
	// union (6), so each window holds one full visit of each set → the
	// windows actually repeat and overlap is high; use one page whose
	// second half differs to get a mid value instead.
	var tr trace.Trace
	c := uint64(0)
	// Six distinct blocks → window 6. First window {0,1,2,3,4,5},
	// second window {0,1,2,3,4,5} after reordering: full overlap;
	// instead: first window {0..5}, second {0,1,2,6...}: impossible
	// (6 would enlarge union). Use two separate sets of pages to verify
	// averaging: page 1 perfect repeat, page 2 never repeats within its
	// window count.
	for v := 0; v < 4; v++ {
		for _, o := range []int{0, 1, 2} {
			tr = append(tr, rec(1, o, c))
			c++
		}
	}
	got := OverlapRate(tr)
	if got != 1 {
		t.Fatalf("perfect-repeat subset gave %v", got)
	}
}

func TestOverlapRatePartial(t *testing.T) {
	// Page with distinct blocks {0,1,2} → window size 3.
	// Window 1 = [0,1,0] → footprint {0,1}; window 2 = [2,1,0] →
	// footprint {0,1,2}: overlap = |{0,1}| / |{0,1,2}| = 2/3.
	tr := trace.Trace{
		rec(1, 0, 0), rec(1, 1, 1), rec(1, 0, 2),
		rec(1, 2, 3), rec(1, 1, 4), rec(1, 0, 5),
	}
	got := OverlapRate(tr)
	want := 2.0 / 3.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("OverlapRate = %v, want %v", got, want)
	}
}

func TestOverlapRateEmptyTrace(t *testing.T) {
	if got := OverlapRate(nil); got != 1 {
		t.Fatalf("empty trace overlap = %v, want 1 (no evidence)", got)
	}
}

func TestNeighborProportionBasics(t *testing.T) {
	// Pages 100 and 102 share a footprint (diff 0) at distance 2; page
	// 500 is isolated.
	tr := trace.Trace{
		rec(100, 1, 0), rec(100, 2, 1),
		rec(102, 1, 2), rec(102, 2, 3),
		rec(500, 9, 4),
	}
	props := NeighborProportion(tr, []uint64{1, 2, 64}, 4)
	if props[0] != 0 {
		t.Fatalf("distance 1: %v, want 0", props[0])
	}
	want := 2.0 / 3.0
	if math.Abs(props[1]-want) > 1e-9 || math.Abs(props[2]-want) > 1e-9 {
		t.Fatalf("props = %v, want %v at d≥2", props, want)
	}
}

func TestNeighborProportionDiffThreshold(t *testing.T) {
	// Footprints differing by 6 bits never qualify at threshold 4.
	tr := trace.Trace{
		rec(100, 0, 0), rec(100, 1, 1), rec(100, 2, 2),
		rec(101, 10, 3), rec(101, 11, 4), rec(101, 12, 5),
	}
	props := NeighborProportion(tr, []uint64{64}, 4)
	if props[0] != 0 {
		t.Fatalf("dissimilar neighbours counted: %v", props)
	}
	props = NeighborProportion(tr, []uint64{64}, 6)
	if props[0] != 1 {
		t.Fatalf("threshold 6 should match: %v", props)
	}
}

func TestNeighborProportionMonotone(t *testing.T) {
	// The proportion is non-decreasing in the distance threshold.
	var tr trace.Trace
	c := uint64(0)
	for i := 0; i < 40; i++ {
		p := addr.PageNum(i * i % 257)
		tr = append(tr, rec(p, i%7, c))
		c++
	}
	dists := []uint64{1, 2, 4, 8, 16, 32, 64}
	props := NeighborProportion(tr, dists, 4)
	for i := 1; i < len(props); i++ {
		if props[i] < props[i-1] {
			t.Fatalf("not monotone: %v", props)
		}
	}
}

func TestNeighborProportionEmpty(t *testing.T) {
	props := NeighborProportion(nil, []uint64{4, 64}, 4)
	if props[0] != 0 || props[1] != 0 {
		t.Fatalf("empty trace props %v", props)
	}
}

func TestNeighborPicksNearestQualifying(t *testing.T) {
	// Page 100 has a qualifying neighbour at distance 3 (page 103) and a
	// non-qualifying at distance 1 (page 101 with a different footprint):
	// at threshold d=1 no match, at d=3 match.
	tr := trace.Trace{
		rec(100, 1, 0), rec(100, 2, 1),
		rec(101, 20, 2), rec(101, 21, 3), rec(101, 22, 4), rec(101, 23, 5),
		rec(103, 1, 6), rec(103, 2, 7),
	}
	props := NeighborProportion(tr, []uint64{1, 3}, 4)
	// Page 101 (4 bits vs 2-bit pages: diff 6) qualifies with nobody.
	if props[0] != 0 {
		t.Fatalf("d=1: %v", props)
	}
	if math.Abs(props[1]-2.0/3.0) > 1e-9 {
		t.Fatalf("d=3: %v, want 2/3", props)
	}
}
