// Package analysis implements the paper's offline trace-characterisation
// experiments: the footprint-snapshot scatter of Figure 2, the window
// overlap-rate method of Figures 3/4, and the learnable-neighbour proportion
// of Figure 5.
package analysis

import (
	"sort"

	"repro/internal/addr"
	"repro/internal/bitmap"
	"repro/internal/trace"
)

// SnapshotPoint is one access in a page's timeline (Figure 2: X = arrival
// cycle, Y = block offset within the page).
type SnapshotPoint struct {
	Cycle  uint64
	Offset int
}

// PageTimeline extracts the access scatter of one page from a trace.
func PageTimeline(t trace.Trace, page addr.PageNum) []SnapshotPoint {
	var out []SnapshotPoint
	for _, r := range t {
		if r.Page() == page {
			out = append(out, SnapshotPoint{Cycle: r.Cycle, Offset: r.Addr.Offset()})
		}
	}
	return out
}

// HottestPages returns the n most accessed pages of a trace, most accessed
// first — used to pick a representative page for Figure 2.
func HottestPages(t trace.Trace, n int) []addr.PageNum {
	counts := make(map[addr.PageNum]int)
	for _, r := range t {
		counts[r.Page()]++
	}
	pages := make([]addr.PageNum, 0, len(counts))
	for p := range counts {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool {
		if counts[pages[i]] != counts[pages[j]] {
			return counts[pages[i]] > counts[pages[j]]
		}
		return pages[i] < pages[j]
	})
	if len(pages) > n {
		pages = pages[:n]
	}
	return pages
}

// OverlapRate implements the Figure 3 method. For every page, the per-page
// window size equals the page's mean accessed-block count; the page's
// accesses are then chopped into consecutive windows and each window's
// footprint is compared against the preceding window's. The returned value
// is the average overlap rate over all windows of all pages (Figure 4 plots
// this per application).
func OverlapRate(t trace.Trace) float64 {
	type pageState struct {
		// pass 1: distinct blocks to size the window
		blocks map[int]struct{}
		// pass 2: windowing
		window  int
		seen    int
		cur     bitmap.Page64
		prev    bitmap.Page64
		hasPrev bool
	}
	pages := make(map[addr.PageNum]*pageState)
	for _, r := range t {
		ps := pages[r.Page()]
		if ps == nil {
			ps = &pageState{blocks: map[int]struct{}{}}
			pages[r.Page()] = ps
		}
		ps.blocks[r.Addr.Offset()] = struct{}{}
	}
	for _, ps := range pages {
		ps.window = len(ps.blocks)
	}
	var sum float64
	var windows int
	for _, r := range t {
		ps := pages[r.Page()]
		ps.cur = ps.cur.Set(r.Addr.Offset())
		ps.seen++
		if ps.seen >= ps.window {
			if ps.hasPrev {
				sum += ps.cur.OverlapRate(ps.prev)
				windows++
			}
			ps.prev, ps.hasPrev = ps.cur, true
			ps.cur, ps.seen = 0, 0
		}
	}
	if windows == 0 {
		return 1
	}
	return sum / float64(windows)
}

// NeighborProportion implements the Figure 5 experiment: the fraction of
// pages that have at least one "learnable neighbour" — another page whose
// observed footprint differs by at most diffBits and whose page number is
// within dist. The returned slice parallels dists.
//
// As in the paper, footprints are the per-page accessed-block bitmaps over
// the whole trace.
func NeighborProportion(t trace.Trace, dists []uint64, diffBits int) []float64 {
	foot := make(map[addr.PageNum]bitmap.Page64)
	for _, r := range t {
		foot[r.Page()] = foot[r.Page()].Set(r.Addr.Offset())
	}
	pages := make([]addr.PageNum, 0, len(foot))
	for p := range foot {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	maxDist := uint64(0)
	for _, d := range dists {
		if d > maxDist {
			maxDist = d
		}
	}
	// For each page, the smallest distance at which a learnable neighbour
	// exists (0 = none within maxDist).
	out := make([]float64, len(dists))
	if len(pages) == 0 {
		return out
	}
	counts := make([]int, len(dists))
	for i, p := range pages {
		best := uint64(0)
		found := false
		// Scan sorted neighbours outward within maxDist.
		for j := i - 1; j >= 0 && p.Distance(pages[j]) <= maxDist; j-- {
			if foot[p].Diff(foot[pages[j]]) <= diffBits {
				d := p.Distance(pages[j])
				if !found || d < best {
					best, found = d, true
				}
				break // sorted: nearest qualifying page first
			}
		}
		for j := i + 1; j < len(pages) && p.Distance(pages[j]) <= maxDist; j++ {
			if foot[p].Diff(foot[pages[j]]) <= diffBits {
				d := p.Distance(pages[j])
				if !found || d < best {
					best, found = d, true
				}
				break
			}
		}
		if !found {
			continue
		}
		for k, d := range dists {
			if best <= d {
				counts[k]++
			}
		}
	}
	for k := range dists {
		out[k] = float64(counts[k]) / float64(len(pages))
	}
	return out
}
