// Package faults provides a composable fault-injecting wrapper around
// trace.Stream for hardening the streaming engine and its consumers.
//
// A production memory-system pipeline has to survive malformed input and
// partial failure — corrupt records, producers that die mid-stream, files
// that lost their tail, streams that lie about their length, and wedged
// sources that stall. The Stream wrapper in this package injects exactly
// those faults at deterministic record positions, so the chaos tests in
// internal/sim can pin the engine's graceful-degradation contract
// (docs/PERFORMANCE.md, "Failure model"): no goroutine leaks, errors
// attributed to the earliest failing global record, and partial reports
// marked Truncated instead of discarded work.
//
// A Stream armed with no faults is fully transparent: it forwards records,
// chunked reads, Len and Err unchanged, and the engine's report over the
// wrapped stream is bit-identical to the bare stream (pinned by
// TestFaultStreamTransparent).
package faults

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/trace"
)

// Kind enumerates the fault classes the injector can arm.
type Kind int

const (
	// Corrupt overwrites the record at the fault point with deterministic
	// garbage: a scrambled address, an out-of-range device and a flipped
	// operation. The arrival cycle is preserved (the record is malformed,
	// not time-travelling), and the stream itself stays healthy — the
	// engine must absorb the record and run to completion.
	Corrupt Kind = iota
	// ErrAt terminates the stream just before the record at the fault
	// point and surfaces ErrInjected from Err() — a mid-stream decode
	// failure.
	ErrAt
	// Truncate silently ends the stream just before the fault point with
	// a nil Err(), like a producer that lost its tail.
	Truncate
	// Stall sleeps StallFor once, just before delivering the record at
	// the fault point — a wedged producer. The stall is bounded so
	// cancellation tests stay deterministic; the engine observes a
	// cancelled context at the next chunk boundary after the stall.
	Stall
	// MisLen leaves the records untouched but skews the Len() the
	// wrapper reports by LenSkew from the first call on — a stream that
	// lies about its size. Warmup-boundary placement must degrade
	// gracefully, never crash or deadlock.
	MisLen
)

var kindNames = [...]string{"corrupt", "err-at", "truncate", "stall", "mis-len"}

// String returns the kind's mnemonic.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is the error an ErrAt fault surfaces from Err(); the wrapped
// instance carries the firing position in its message.
var ErrInjected = errors.New("faults: injected stream failure")

// Fault arms one fault at a deterministic record position.
type Fault struct {
	Kind Kind
	// At is the 0-based global record index the fault fires at. ErrAt
	// and Truncate end the stream instead of delivering record At;
	// Corrupt garbles record At; Stall sleeps before delivering it.
	// MisLen ignores At (the skew applies from the first Len call).
	At int64
	// StallFor bounds the Stall sleep; zero defaults to 50ms.
	StallFor time.Duration
	// LenSkew is added to the inner stream's record count for MisLen.
	// A skew that drives the count negative makes the stream report an
	// unknown length.
	LenSkew int
}

func (f Fault) stallFor() time.Duration {
	if f.StallFor <= 0 {
		return 50 * time.Millisecond
	}
	return f.StallFor
}

// Stream wraps an inner trace.Stream and injects the armed faults at their
// record positions. It implements trace.Stream, trace.Chunker and
// trace.Sized; like every trace.Stream it is not safe for concurrent use.
type Stream struct {
	inner  trace.Stream
	faults []Fault // in firing order (stable-sorted by At at Wrap time)
	fi     int     // next fault to consider
	pos    int64   // index of the next record to deliver
	err    error
	done   bool

	misLen  bool
	lenSkew int
}

// Wrap arms the given faults on inner. Faults are fired in position order;
// several faults may share a position (a stall followed by an error, say).
// Wrap with no faults is a transparent pass-through.
func Wrap(inner trace.Stream, fs ...Fault) *Stream {
	s := &Stream{inner: inner}
	for _, f := range fs {
		if f.Kind == MisLen {
			s.misLen = true
			s.lenSkew += f.LenSkew
			continue
		}
		s.faults = append(s.faults, f)
	}
	// Insertion sort keeps equal-position faults in argument order.
	for i := 1; i < len(s.faults); i++ {
		for j := i; j > 0 && s.faults[j].At < s.faults[j-1].At; j-- {
			s.faults[j], s.faults[j-1] = s.faults[j-1], s.faults[j]
		}
	}
	return s
}

// arm fires every fault scheduled at the current position. It returns
// corrupt=true when the record about to be delivered must be garbled, and
// stop=true when the stream ends here (ErrAt or Truncate).
func (s *Stream) arm() (corrupt, stop bool) {
	for s.fi < len(s.faults) && s.faults[s.fi].At == s.pos {
		f := s.faults[s.fi]
		s.fi++
		switch f.Kind {
		case ErrAt:
			s.done = true
			s.err = fmt.Errorf("%w at record %d", ErrInjected, s.pos)
			return false, true
		case Truncate:
			s.done = true
			return false, true
		case Stall:
			time.Sleep(f.stallFor())
		case Corrupt:
			corrupt = true
		}
	}
	return corrupt, false
}

// corruptRecord garbles a record deterministically from its position: the
// address is scrambled (still a valid physical address, mapping to an
// arbitrary channel), the device is out of range and the operation flips.
// The cycle is preserved so the record is malformed, not reordered in time.
func corruptRecord(rec trace.Record, pos int64) trace.Record {
	rec.Addr = addr.Addr(uint64(rec.Addr) ^ (uint64(pos)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9))
	rec.Device = trace.Device(0xFF)
	rec.Write = !rec.Write
	return rec
}

// Next implements trace.Stream.
func (s *Stream) Next() (trace.Record, bool) {
	if s.done {
		return trace.Record{}, false
	}
	corrupt, stop := s.arm()
	if stop {
		return trace.Record{}, false
	}
	rec, ok := s.inner.Next()
	if !ok {
		s.done = true
		s.err = s.inner.Err()
		return trace.Record{}, false
	}
	if corrupt {
		rec = corruptRecord(rec, s.pos)
	}
	s.pos++
	return rec, true
}

// NextChunk implements trace.Chunker: between fault positions it forwards
// whole chunks to the inner stream's fast path; a chunk never crosses the
// next armed fault, which is delivered through the per-record path instead.
func (s *Stream) NextChunk(dst []trace.Record) int {
	if s.done || len(dst) == 0 {
		return 0
	}
	if s.fi < len(s.faults) {
		if room := s.faults[s.fi].At - s.pos; room <= 0 {
			// The next record is a fault point: take the slow path.
			rec, ok := s.Next()
			if !ok {
				return 0
			}
			dst[0] = rec
			return 1
		} else if int64(len(dst)) > room {
			dst = dst[:room]
		}
	}
	n := trace.ReadChunk(s.inner, dst)
	if n == 0 {
		s.done = true
		s.err = s.inner.Err()
		return 0
	}
	s.pos += int64(n)
	return n
}

// Err implements trace.Stream: the injected error, or the inner stream's.
func (s *Stream) Err() error { return s.err }

// Len implements trace.Sized: the inner stream's remaining count, skewed by
// any armed MisLen fault. Without one it is a faithful pass-through,
// including the "unknown" (-1) convention for unsized inner streams.
func (s *Stream) Len() int {
	n := trace.StreamLen(s.inner)
	if !s.misLen || n < 0 {
		return n
	}
	n += s.lenSkew
	if n < 0 {
		return -1
	}
	return n
}

// Plan derives one deterministic fault of the given kind for an n-record
// stream from a seed: the firing position lands strictly inside the stream
// (never record 0, so the fault interrupts a run in progress rather than
// preventing it), and MisLen gets a skew of about a third of the stream in
// a seed-determined direction. The same (kind, seed, n) always produces the
// same fault — chaos runs are reproducible from their seed.
func Plan(kind Kind, seed, n int64) Fault {
	// SplitMix64 step: cheap, stateless, and good enough to spread fault
	// positions across the stream.
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	f := Fault{Kind: kind, At: 1}
	if n > 2 {
		f.At = 1 + int64(z%uint64(n-1))
	}
	if kind == MisLen {
		f.LenSkew = int(n / 3)
		if z&1 == 1 {
			f.LenSkew = -f.LenSkew
		}
	}
	return f
}
