package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/trace"
)

func testTrace(n int) trace.Trace {
	t := make(trace.Trace, n)
	for i := range t {
		t[i] = trace.Record{
			Addr:   addr.Addr(0x40 * uint64(i) * 5),
			Cycle:  uint64(i) * 3,
			Device: trace.Device(i % 4),
			Write:  i%7 == 0,
		}
	}
	return t
}

// drain pulls every record through ReadChunk with a deliberately awkward
// buffer size so chunk boundaries and fault positions interleave.
func drain(s trace.Stream) (trace.Trace, error) {
	var out trace.Trace
	buf := make([]trace.Record, 13)
	for {
		n := trace.ReadChunk(s, buf)
		if n == 0 {
			return out, s.Err()
		}
		out = append(out, buf[:n]...)
	}
}

// TestTransparent: a wrapper with no faults forwards every record, the
// length and the (nil) error unchanged.
func TestTransparent(t *testing.T) {
	tr := testTrace(100)
	s := Wrap(tr.Stream())
	if got := s.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	out, err := drain(s)
	if err != nil {
		t.Fatalf("faultless wrapper errored: %v", err)
	}
	if len(out) != len(tr) {
		t.Fatalf("delivered %d records, want %d", len(out), len(tr))
	}
	for i := range tr {
		if out[i] != tr[i] {
			t.Fatalf("record %d: %v != %v", i, out[i], tr[i])
		}
	}
	if s.Len() != 0 {
		t.Fatalf("drained Len = %d, want 0", s.Len())
	}
}

// TestTransparentUnsized: the wrapper forwards the unknown-length
// convention instead of inventing a size.
func TestTransparentUnsized(t *testing.T) {
	s := Wrap(unsized{})
	if got := s.Len(); got != -1 {
		t.Fatalf("unsized inner: Len = %d, want -1", got)
	}
}

type unsized struct{}

func (unsized) Next() (trace.Record, bool) { return trace.Record{}, false }
func (unsized) Err() error                 { return nil }

// TestErrAt: the stream ends just before the fault position and surfaces
// ErrInjected.
func TestErrAt(t *testing.T) {
	tr := testTrace(100)
	s := Wrap(tr.Stream(), Fault{Kind: ErrAt, At: 37})
	out, err := drain(s)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if len(out) != 37 {
		t.Fatalf("delivered %d records before the fault, want 37", len(out))
	}
	// A stopped stream stays stopped.
	if _, ok := s.Next(); ok {
		t.Fatal("failed stream yielded another record")
	}
}

// TestTruncate: silent early end — fewer records, nil error.
func TestTruncate(t *testing.T) {
	tr := testTrace(100)
	s := Wrap(tr.Stream(), Fault{Kind: Truncate, At: 64})
	out, err := drain(s)
	if err != nil {
		t.Fatalf("truncation must be silent, got %v", err)
	}
	if len(out) != 64 {
		t.Fatalf("delivered %d records, want 64", len(out))
	}
}

// TestCorrupt: exactly the armed record differs from the source, the
// stream stays healthy, and the same position corrupts the same way twice.
func TestCorrupt(t *testing.T) {
	tr := testTrace(100)
	out, err := drain(Wrap(tr.Stream(), Fault{Kind: Corrupt, At: 50}))
	if err != nil {
		t.Fatalf("corrupt record must not fail the stream: %v", err)
	}
	if len(out) != 100 {
		t.Fatalf("delivered %d records, want 100", len(out))
	}
	for i := range tr {
		if (out[i] != tr[i]) != (i == 50) {
			t.Fatalf("record %d: corruption at wrong position (%v vs %v)", i, out[i], tr[i])
		}
	}
	if out[50].Cycle != tr[50].Cycle {
		t.Fatalf("corruption rewound time: cycle %d -> %d", tr[50].Cycle, out[50].Cycle)
	}
	again, _ := drain(Wrap(tr.Stream(), Fault{Kind: Corrupt, At: 50}))
	if again[50] != out[50] {
		t.Fatalf("corruption not deterministic: %v vs %v", again[50], out[50])
	}
}

// TestMisLen: the reported length is skewed, the records are not; a skew
// past zero degrades to the unknown-length convention.
func TestMisLen(t *testing.T) {
	tr := testTrace(90)
	s := Wrap(tr.Stream(), Fault{Kind: MisLen, LenSkew: 30})
	if got := s.Len(); got != 120 {
		t.Fatalf("skewed Len = %d, want 120", got)
	}
	out, err := drain(s)
	if err != nil || len(out) != 90 {
		t.Fatalf("MisLen altered delivery: %d records, err %v", len(out), err)
	}
	if got := Wrap(tr.Stream(), Fault{Kind: MisLen, LenSkew: -1000}).Len(); got != -1 {
		t.Fatalf("negative skewed Len = %d, want -1 (unknown)", got)
	}
}

// TestStall: the stall delays delivery once but drops nothing.
func TestStall(t *testing.T) {
	tr := testTrace(40)
	start := time.Now()
	out, err := drain(Wrap(tr.Stream(), Fault{Kind: Stall, At: 20, StallFor: 30 * time.Millisecond}))
	if err != nil || len(out) != 40 {
		t.Fatalf("stalled stream: %d records, err %v", len(out), err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stall not observed: drained in %v", d)
	}
}

// TestStackedFaults: faults at the same position fire in argument order
// (here: the stall happens, then the error lands at the same record).
func TestStackedFaults(t *testing.T) {
	tr := testTrace(50)
	s := Wrap(tr.Stream(),
		Fault{Kind: Stall, At: 10, StallFor: time.Millisecond},
		Fault{Kind: ErrAt, At: 10})
	out, err := drain(s)
	if !errors.Is(err, ErrInjected) || len(out) != 10 {
		t.Fatalf("stacked faults: %d records, err %v", len(out), err)
	}
}

// TestPlanDeterministic: the same (kind, seed, n) yields the same fault,
// inside the stream; different seeds move it.
func TestPlanDeterministic(t *testing.T) {
	a := Plan(ErrAt, 42, 10_000)
	if b := Plan(ErrAt, 42, 10_000); a != b {
		t.Fatalf("Plan not deterministic: %+v vs %+v", a, b)
	}
	if a.At < 1 || a.At >= 10_000 {
		t.Fatalf("Plan placed fault at %d, want within [1, 10000)", a.At)
	}
	moved := false
	for seed := int64(0); seed < 8; seed++ {
		if Plan(ErrAt, seed, 10_000).At != a.At {
			moved = true
		}
	}
	if !moved {
		t.Fatal("fault position ignores the seed")
	}
	if m := Plan(MisLen, 7, 900); m.LenSkew == 0 {
		t.Fatal("MisLen plan has no skew")
	}
}
