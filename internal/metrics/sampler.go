package metrics

// This file implements the windowed time-series side of the metrics
// package: a Sampler that turns cumulative counter snapshots taken by the
// simulation engine into per-window deltas, and the TimeSeries container
// attached to Report when sampling is enabled.
//
// The paper reports end-of-run aggregates, but its claims about SLP/TLP
// issue-share drift, warmup sensitivity and DRAM bandwidth behaviour are
// time-resolved; the sampler makes those phases observable without touching
// the hot counters themselves (the engine only snapshots at window
// boundaries).

// Snapshot is a cumulative counter snapshot of one run at a point in time,
// summed over all channels. The engine produces one per window boundary;
// the Sampler diffs consecutive snapshots into Samples. All fields are
// monotonically non-decreasing between statistics resets.
type Snapshot struct {
	Cycle    uint64 // trace clock at the snapshot
	Requests uint64 // records processed since the last statistics reset

	DemandReads  uint64
	DemandWrites uint64
	DemandHits   uint64
	DemandMisses uint64

	PrefetchFills    uint64
	UsefulPrefetches uint64
	LatePrefetchHits uint64
	Issued           uint64

	DRAMReads  uint64
	DRAMWrites uint64
	PrefReads  uint64

	// ReadLatency is the accumulated demand-read latency (the AMAT
	// numerator): hit latency, late-prefetch wait time, and lookup plus
	// DRAM service time for true read misses.
	ReadLatency uint64

	// UsefulByOrigin is the cumulative per-origin useful-prefetch
	// attribution ("slp"/"tlp" for Planaria); nil for other prefetchers.
	UsefulByOrigin map[string]uint64
	// LateByOrigin is the cumulative per-origin late-prefetch-hit
	// attribution (a subset of UsefulByOrigin's late-hit credits).
	LateByOrigin map[string]uint64
}

// Sample is one window of a run: the delta between two consecutive
// snapshots, plus the ratio metrics computed over that window alone.
type Sample struct {
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`
	Requests   uint64 `json:"requests"`

	DemandReads  uint64 `json:"demand_reads"`
	DemandWrites uint64 `json:"demand_writes"`
	DemandHits   uint64 `json:"demand_hits"`
	DemandMisses uint64 `json:"demand_misses"`

	PrefetchFills    uint64 `json:"prefetch_fills"`
	UsefulPrefetches uint64 `json:"useful_prefetches"`
	LatePrefetchHits uint64 `json:"late_prefetch_hits"`
	Issued           uint64 `json:"issued"`

	DRAMReads  uint64 `json:"dram_reads"`
	DRAMWrites uint64 `json:"dram_writes"`
	PrefReads  uint64 `json:"pref_reads"`

	ReadLatency uint64 `json:"read_latency_cycles"`

	UsefulByOrigin map[string]uint64 `json:"useful_by_origin,omitempty"`
	LateByOrigin   map[string]uint64 `json:"late_by_origin,omitempty"`

	HitRate  float64 `json:"hit_rate"`
	Accuracy float64 `json:"accuracy"`
	Coverage float64 `json:"coverage"`
	AMAT     float64 `json:"amat_cycles"`
}

// TimeSeries is the ordered window sequence of one run. Counter fields sum
// exactly to the enclosing Report's aggregates (the final, possibly
// partial, window is always emitted at Finish).
type TimeSeries struct {
	EveryRequests uint64   `json:"every_requests,omitempty"`
	EveryCycles   uint64   `json:"every_cycles,omitempty"`
	Samples       []Sample `json:"samples"`
}

// Totals sums the windows back into one Sample covering the whole series,
// with the ratio metrics recomputed over the full span. By construction its
// counters equal the Report aggregates.
func (ts *TimeSeries) Totals() Sample {
	var t Sample
	if len(ts.Samples) == 0 {
		return t
	}
	t.StartCycle = ts.Samples[0].StartCycle
	t.EndCycle = ts.Samples[len(ts.Samples)-1].EndCycle
	for _, s := range ts.Samples {
		t.Requests += s.Requests
		t.DemandReads += s.DemandReads
		t.DemandWrites += s.DemandWrites
		t.DemandHits += s.DemandHits
		t.DemandMisses += s.DemandMisses
		t.PrefetchFills += s.PrefetchFills
		t.UsefulPrefetches += s.UsefulPrefetches
		t.LatePrefetchHits += s.LatePrefetchHits
		t.Issued += s.Issued
		t.DRAMReads += s.DRAMReads
		t.DRAMWrites += s.DRAMWrites
		t.PrefReads += s.PrefReads
		t.ReadLatency += s.ReadLatency
		for o, n := range s.UsefulByOrigin {
			if t.UsefulByOrigin == nil {
				t.UsefulByOrigin = make(map[string]uint64)
			}
			t.UsefulByOrigin[o] += n
		}
		for o, n := range s.LateByOrigin {
			if t.LateByOrigin == nil {
				t.LateByOrigin = make(map[string]uint64)
			}
			t.LateByOrigin[o] += n
		}
	}
	t.fillRatios()
	return t
}

// Sampler converts cumulative snapshots into windowed samples. A window
// closes when either cadence fires: EveryRequests records since the last
// boundary, or EveryCycles of trace clock since the last boundary. The
// engine owns the cadence check (Due) so disabled sampling costs one nil
// comparison per step.
type Sampler struct {
	everyRequests uint64
	everyCycles   uint64
	base          Snapshot // snapshot at the current window's start
	samples       []Sample
}

// NewSampler builds a sampler with the given cadences; either may be zero
// (that cadence is then ignored), but at least one should be set for the
// sampler to ever fire.
func NewSampler(everyRequests, everyCycles uint64) *Sampler {
	return &Sampler{everyRequests: everyRequests, everyCycles: everyCycles}
}

// Base returns the cumulative request count and trace cycle at the start
// of the currently open window. The parallel engine uses it to precompute
// window boundaries from the trace alone, so its barrier-merged samples
// close at exactly the records the serial engine's Due checks fire on.
func (s *Sampler) Base() (requests, cycle uint64) {
	return s.base.Requests, s.base.Cycle
}

// Due reports whether the current window should close, given the
// cumulative request count and the trace clock.
func (s *Sampler) Due(requests, cycle uint64) bool {
	if s.everyRequests > 0 && requests-s.base.Requests >= s.everyRequests {
		return true
	}
	if s.everyCycles > 0 && cycle-s.base.Cycle >= s.everyCycles {
		return true
	}
	return false
}

// Record closes the current window at snap: the delta between snap and the
// window's starting snapshot becomes a Sample, and snap starts the next
// window.
func (s *Sampler) Record(snap Snapshot) {
	s.samples = append(s.samples, delta(s.base, snap))
	s.base = snap
}

// Reset discards all samples and restarts the first window at the given
// cycle with zeroed counters. Called at the warmup boundary, where the
// engine resets every statistic but the trace clock keeps running: the
// first post-warmup window starts at the reset cycle, not at zero, and no
// warmup-era sample survives.
func (s *Sampler) Reset(cycle uint64) {
	s.samples = nil
	s.base = Snapshot{Cycle: cycle}
}

// Finish closes the final (possibly partial) window at snap, if it saw any
// activity, and returns the completed series. Engines call this after
// landing in-flight prefetches and flushing the DRAM controllers so the
// series totals match the run's final aggregates exactly.
func (s *Sampler) Finish(snap Snapshot) *TimeSeries {
	if d := delta(s.base, snap); !d.empty() {
		s.samples = append(s.samples, d)
		s.base = snap
	}
	return &TimeSeries{
		EveryRequests: s.everyRequests,
		EveryCycles:   s.everyCycles,
		Samples:       s.samples,
	}
}

// delta computes the window between two cumulative snapshots.
func delta(base, cur Snapshot) Sample {
	d := Sample{
		StartCycle:       base.Cycle,
		EndCycle:         cur.Cycle,
		Requests:         cur.Requests - base.Requests,
		DemandReads:      cur.DemandReads - base.DemandReads,
		DemandWrites:     cur.DemandWrites - base.DemandWrites,
		DemandHits:       cur.DemandHits - base.DemandHits,
		DemandMisses:     cur.DemandMisses - base.DemandMisses,
		PrefetchFills:    cur.PrefetchFills - base.PrefetchFills,
		UsefulPrefetches: cur.UsefulPrefetches - base.UsefulPrefetches,
		LatePrefetchHits: cur.LatePrefetchHits - base.LatePrefetchHits,
		Issued:           cur.Issued - base.Issued,
		DRAMReads:        cur.DRAMReads - base.DRAMReads,
		DRAMWrites:       cur.DRAMWrites - base.DRAMWrites,
		PrefReads:        cur.PrefReads - base.PrefReads,
		ReadLatency:      cur.ReadLatency - base.ReadLatency,
	}
	for o, n := range cur.UsefulByOrigin {
		if dn := n - base.UsefulByOrigin[o]; dn > 0 {
			if d.UsefulByOrigin == nil {
				d.UsefulByOrigin = make(map[string]uint64)
			}
			d.UsefulByOrigin[o] = dn
		}
	}
	for o, n := range cur.LateByOrigin {
		if dn := n - base.LateByOrigin[o]; dn > 0 {
			if d.LateByOrigin == nil {
				d.LateByOrigin = make(map[string]uint64)
			}
			d.LateByOrigin[o] = dn
		}
	}
	d.fillRatios()
	return d
}

// fillRatios computes the window-local ratio metrics from the counters,
// mirroring the Report definitions (hit rate over demand accesses, accuracy
// over prefetch fills, coverage over eliminated misses, AMAT over demand
// reads).
func (d *Sample) fillRatios() {
	if acc := d.DemandHits + d.DemandMisses; acc > 0 {
		d.HitRate = float64(d.DemandHits) / float64(acc)
	}
	if d.PrefetchFills > 0 {
		d.Accuracy = float64(d.UsefulPrefetches) / float64(d.PrefetchFills)
	}
	if den := d.DemandMisses + d.UsefulPrefetches; den > 0 {
		d.Coverage = float64(d.UsefulPrefetches+d.LatePrefetchHits) / float64(den)
	}
	if d.DemandReads > 0 {
		d.AMAT = float64(d.ReadLatency) / float64(d.DemandReads)
	}
}

// empty reports whether the window recorded no activity at all (used to
// suppress a zero final window at Finish).
func (d Sample) empty() bool {
	return d.Requests == 0 && d.DemandReads == 0 && d.DemandWrites == 0 &&
		d.PrefetchFills == 0 && d.LatePrefetchHits == 0 && d.Issued == 0 &&
		d.DRAMReads == 0 && d.DRAMWrites == 0 && d.ReadLatency == 0
}
