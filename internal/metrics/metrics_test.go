package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/prefetch"
)

func sampleReport() Report {
	return Report{
		Workload:     "CFM",
		Prefetcher:   "planaria",
		DemandReads:  1000,
		DemandWrites: 200,
		Cache: cache.Stats{
			DemandAccesses: 1200, DemandHits: 600, DemandMisses: 600,
			PrefetchFills: 100, UsefulPrefetches: 80, WastedPrefetches: 10,
		},
		DRAM:             dram.Stats{Reads: 700, Writes: 100, PrefReads: 100},
		Prefetch:         prefetch.Stats{Issued: 100, Candidates: 150, Filtered: 40},
		LatePrefetchHits: 20,
		SCHitLatency:     30,
		AMAT:             95,
		Cycles:           100000,
	}
}

func TestReportDerivedMetrics(t *testing.T) {
	r := sampleReport()
	if r.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", r.HitRate())
	}
	if r.Traffic() != 800 {
		t.Errorf("Traffic = %v", r.Traffic())
	}
	if r.Accuracy() != 0.8 {
		t.Errorf("Accuracy = %v", r.Accuracy())
	}
	wantCov := (80.0 + 20.0) / (600.0 + 80.0)
	if math.Abs(r.Coverage()-wantCov) > 1e-12 {
		t.Errorf("Coverage = %v, want %v", r.Coverage(), wantCov)
	}
	s := r.String()
	for _, frag := range []string{"CFM", "planaria", "AMAT"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}

func TestZeroReportSafe(t *testing.T) {
	var r Report
	if r.HitRate() != 0 || r.Accuracy() != 0 || r.Coverage() != 0 {
		t.Fatal("zero report produced NaN-adjacent metrics")
	}
	if r.PowerMW(1600) != 0 {
		t.Fatal("zero report power")
	}
}

func TestIPCModelMonotone(t *testing.T) {
	m := DefaultIPCModel()
	if m.IPC(50) <= m.IPC(100) {
		t.Fatal("IPC not decreasing in AMAT")
	}
	if m.IPC(0) <= 0 {
		t.Fatal("IPC at zero AMAT should be positive")
	}
	bad := IPCModel{CoreCyclesPerAccess: -5, InstrPerAccess: 1}
	if bad.IPC(5) != 0 {
		t.Fatal("non-positive denominator must yield 0")
	}
}

func TestIPCModelMatchesPaperCoupling(t *testing.T) {
	// The paper couples AMAT −24.3 % to IPC +28.9 %. With the default
	// model, a 24.3 % AMAT cut from a typical baseline must give an IPC
	// uplift in the 25–33 % band.
	m := DefaultIPCModel()
	base := 120.0
	uplift := Improvement(m.IPC(base), m.IPC(base*(1-0.243)))
	if uplift < 0.25 || uplift > 0.33 {
		t.Fatalf("uplift %v outside the paper-consistent band", uplift)
	}
}

func TestImprovementReduction(t *testing.T) {
	if Improvement(100, 120) != 0.2 {
		t.Fatal("Improvement")
	}
	if Reduction(100, 80) != 0.2 {
		t.Fatal("Reduction")
	}
	if Improvement(0, 5) != 0 || Reduction(0, 5) != 0 {
		t.Fatal("zero base must yield 0")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty inputs")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("non-positive input must yield 0")
	}
}

func TestGeoMeanLeqMeanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		for i, v := range raw {
			vs[i] = float64(v) + 1
		}
		return GeoMean(vs) <= Mean(vs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
