// Package metrics aggregates simulation statistics into the figures the
// paper reports: system-cache hit rate, AMAT, DRAM traffic, prefetch
// accuracy/coverage, energy and an analytic IPC estimate.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/prefetch"
	"repro/internal/telemetry"
)

// Report is the result of one simulation run (one workload × one
// prefetcher), aggregated over all four channels.
type Report struct {
	Workload   string `json:"workload"`
	Prefetcher string `json:"prefetcher"`

	DemandReads  uint64 `json:"demand_reads"`
	DemandWrites uint64 `json:"demand_writes"`

	Cache    cache.Stats    `json:"cache"`    // summed over channels
	DRAM     dram.Stats     `json:"dram"`     // summed over channels
	Prefetch prefetch.Stats `json:"prefetch"` // summed over channels

	// LatePrefetchHits counts demand reads served by a prefetch still in
	// flight (the demand waited out the remaining fill latency).
	LatePrefetchHits uint64 `json:"late_prefetch_hits"`

	// UsefulByOrigin attributes useful prefetches (including late hits)
	// to the issuing sub-prefetcher for composite prefetchers that report
	// an origin ("slp"/"tlp" for Planaria). Empty for other prefetchers.
	UsefulByOrigin map[string]uint64 `json:"useful_by_origin,omitempty"`

	// LateByOrigin attributes the LatePrefetchHits above to the issuing
	// sub-prefetcher, so a composite's late hits — previously folded into
	// UsefulByOrigin invisibly — can be separated per origin. Empty for
	// prefetchers that report no origin.
	LateByOrigin map[string]uint64 `json:"late_by_origin,omitempty"`

	// Channels and SubShards record the simulated geometry that produced
	// this report: Channels independent SC slices, each split into
	// SubShards address-hashed execution units (sim.Config.SubShards).
	// The geometry is a property of the simulated system, not of the
	// execution mode, so serial and parallel runs of the same geometry
	// produce byte-identical reports. Zero in reports from older runs.
	Channels  int `json:"channels,omitempty"`
	SubShards int `json:"sub_shards,omitempty"`

	SCHitLatency uint64  `json:"sc_hit_latency"` // cycles charged for an SC hit
	AMAT         float64 `json:"amat_cycles"`    // average memory access time for demand reads, cycles
	Cycles       uint64  `json:"cycles"`         // wall-clock duration of the run

	Energy power.Breakdown `json:"energy_pj"`

	StorageBits int `json:"storage_bits"` // prefetcher metadata across channels

	// Series is the windowed time-series of the run, present when
	// sampling was enabled (sim.Config.SampleEvery*); nil otherwise. Its
	// window counters sum exactly to the aggregates above.
	Series *TimeSeries `json:"series,omitempty"`

	// Telemetry is the run's live-metrics summary — counter totals and
	// p50/p90/p99 + bucket vectors of every latency histogram — present
	// when telemetry was enabled (sim.Config.Telemetry); nil otherwise
	// (obs artifact schema v4). Unlike the aggregates above, it covers
	// the whole run including warmup: instruments follow Prometheus
	// counter semantics and are never reset mid-run.
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`

	// Truncated marks a partial report: the run ended early on a stream
	// fault, a simulation error or a cancelled context, and the counters
	// cover only the records processed up to that point. The error
	// returned alongside the report says why.
	Truncated bool `json:"truncated,omitempty"`
	// FailedAt is the 0-based global trace position the failure is
	// attributed to — the earliest failing record for simulation errors,
	// the number of records delivered for stream faults, and the
	// position the consumer had reached for cancellations. Meaningful
	// only when Truncated is set.
	FailedAt int64 `json:"failed_at,omitempty"`
}

// HitRate returns the demand hit rate of the system cache.
func (r Report) HitRate() float64 { return r.Cache.HitRate() }

// Traffic returns the total DRAM traffic in block transfers (reads + writes,
// demand + prefetch) — the quantity behind the paper's "extra memory
// traffic" percentages.
func (r Report) Traffic() uint64 { return r.DRAM.Reads + r.DRAM.Writes }

// Accuracy returns the prefetch accuracy (useful fills / fills).
func (r Report) Accuracy() float64 { return r.Cache.Accuracy() }

// Coverage returns the fraction of would-be demand misses eliminated (fully
// or partially) by prefetching: (useful + late prefetch hits) /
// (demand misses + useful prefetches). Late hits are a subset of the demand
// misses in the denominator.
func (r Report) Coverage() float64 {
	den := float64(r.Cache.DemandMisses) + float64(r.Cache.UsefulPrefetches)
	if den == 0 {
		return 0
	}
	return (float64(r.Cache.UsefulPrefetches) + float64(r.LatePrefetchHits)) / den
}

// PowerMW returns the average memory-system power in milliwatts at the given
// clock (MHz).
func (r Report) PowerMW(clockMHz float64) float64 {
	return power.AvgPowerMW(r.Energy, r.Cycles, clockMHz)
}

// String renders a one-run summary table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s:\n", r.Workload, r.Prefetcher)
	if r.SubShards > 0 {
		fmt.Fprintf(&b, "  parallel: %d×%d (channels × sub-shards)\n", r.Channels, r.SubShards)
	}
	fmt.Fprintf(&b, "  demand: %d reads, %d writes\n", r.DemandReads, r.DemandWrites)
	fmt.Fprintf(&b, "  SC hit rate: %.2f%%   AMAT: %.1f cycles\n", 100*r.HitRate(), r.AMAT)
	fmt.Fprintf(&b, "  DRAM traffic: %d transfers (%d prefetch reads)\n", r.Traffic(), r.DRAM.PrefReads)
	fmt.Fprintf(&b, "  prefetch: issued %d, accuracy %.1f%%, coverage %.1f%%\n",
		r.Prefetch.Issued, 100*r.Accuracy(), 100*r.Coverage())
	fmt.Fprintf(&b, "  energy: %.2f uJ   storage: %.1f KB\n",
		r.Energy.Total()/1e6, float64(r.StorageBits)/8/1024)
	return b.String()
}

// IPCModel estimates relative IPC from AMAT, standing in for the paper's
// full-system IPC measurements (see DESIGN.md, substitution table). The
// model is IPC = IPB / (CoreCyclesPerAccess + AMAT): each memory access
// costs its AMAT plus a fixed core-side component, and instructions per
// block access (IPB) is constant per workload. Only ratios between
// prefetchers are meaningful.
type IPCModel struct {
	// CoreCyclesPerAccess is the average non-memory core time attributed
	// to each SC-level access. The paper's system is memory-dominated
	// (IPC deltas ≈ 1.2 × AMAT deltas), so this is small relative to
	// typical AMAT values.
	CoreCyclesPerAccess float64
	// InstrPerAccess scales the absolute IPC value (cosmetic).
	InstrPerAccess float64
}

// DefaultIPCModel matches the memory-dominance implied by the paper's
// numbers (AMAT −24.3 % → IPC +28.9 % ⇒ core component ≈ 8 % of AMAT).
func DefaultIPCModel() IPCModel {
	return IPCModel{CoreCyclesPerAccess: 14, InstrPerAccess: 120}
}

// IPC estimates instructions per cycle for a run with the given AMAT.
func (m IPCModel) IPC(amat float64) float64 {
	den := m.CoreCyclesPerAccess + amat
	if den <= 0 {
		return 0
	}
	return m.InstrPerAccess / den
}

// Improvement returns (new − base)/base, e.g. IPC uplift. Positive means
// new is larger.
func Improvement(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (new - base) / base
}

// Reduction returns (base − new)/base, e.g. AMAT reduction. Positive means
// new is smaller.
func Reduction(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - new) / base
}

// GeoMean returns the geometric mean of positive values (used for averaging
// ratios across workloads, as architecture papers do).
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vs)))
}

// Mean returns the arithmetic mean.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
