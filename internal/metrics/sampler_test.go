package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
)

// snap builds a cumulative snapshot with the counters most window tests
// care about; latency is 100 cycles per read so AMAT is easy to predict.
func snap(cycle, requests, reads, hits, misses uint64) Snapshot {
	return Snapshot{
		Cycle:        cycle,
		Requests:     requests,
		DemandReads:  reads,
		DemandHits:   hits,
		DemandMisses: misses,
		ReadLatency:  reads * 100,
	}
}

func TestSamplerDueCadences(t *testing.T) {
	s := NewSampler(10, 0)
	if s.Due(9, 1000) {
		t.Fatal("due before request cadence reached")
	}
	if !s.Due(10, 1000) {
		t.Fatal("not due at request cadence")
	}

	c := NewSampler(0, 500)
	if c.Due(1, 499) {
		t.Fatal("due before cycle cadence reached")
	}
	if !c.Due(1, 500) {
		t.Fatal("not due at cycle cadence")
	}

	// After a sample, the cadence restarts from the recorded snapshot.
	c.Record(snap(500, 3, 3, 2, 1))
	if c.Due(4, 999) {
		t.Fatal("cycle cadence did not restart at the window boundary")
	}
	if !c.Due(4, 1000) {
		t.Fatal("cycle cadence lost the new base")
	}
}

func TestSamplerWindowDeltas(t *testing.T) {
	s := NewSampler(10, 0)
	s.Record(snap(1000, 10, 8, 6, 2))
	s.Record(snap(2000, 20, 15, 12, 3))
	ts := s.Finish(snap(2000, 20, 15, 12, 3)) // nothing new since last window

	if len(ts.Samples) != 2 {
		t.Fatalf("got %d samples, want 2 (no empty final window)", len(ts.Samples))
	}
	w0, w1 := ts.Samples[0], ts.Samples[1]
	if w0.StartCycle != 0 || w0.EndCycle != 1000 || w0.Requests != 10 {
		t.Fatalf("window 0 bounds wrong: %+v", w0)
	}
	if w1.StartCycle != 1000 || w1.EndCycle != 2000 || w1.Requests != 10 {
		t.Fatalf("window 1 bounds wrong: %+v", w1)
	}
	// Second window is the delta, not the cumulative value.
	if w1.DemandReads != 7 || w1.DemandHits != 6 || w1.DemandMisses != 1 {
		t.Fatalf("window 1 deltas wrong: %+v", w1)
	}
	if w1.HitRate != 6.0/7.0 {
		t.Fatalf("window 1 hit rate %v, want %v", w1.HitRate, 6.0/7.0)
	}
	if w1.AMAT != 100 {
		t.Fatalf("window 1 AMAT %v, want 100", w1.AMAT)
	}
}

func TestSamplerFinalPartialWindow(t *testing.T) {
	s := NewSampler(10, 0)
	s.Record(snap(1000, 10, 8, 6, 2))
	ts := s.Finish(snap(1300, 13, 11, 8, 3))
	if len(ts.Samples) != 2 {
		t.Fatalf("got %d samples, want full + partial", len(ts.Samples))
	}
	last := ts.Samples[1]
	if last.Requests != 3 || last.DemandReads != 3 || last.EndCycle != 1300 {
		t.Fatalf("partial window wrong: %+v", last)
	}
	tot := ts.Totals()
	if tot.Requests != 13 || tot.DemandReads != 11 || tot.DemandHits != 8 || tot.DemandMisses != 3 {
		t.Fatalf("totals do not match cumulative counters: %+v", tot)
	}
	if tot.StartCycle != 0 || tot.EndCycle != 1300 {
		t.Fatalf("totals span wrong: %+v", tot)
	}
}

func TestSamplerResetAtWarmupBoundary(t *testing.T) {
	s := NewSampler(10, 0)
	// Warmup era: samples accumulate...
	s.Record(snap(1000, 10, 8, 6, 2))
	s.Record(snap(2000, 20, 16, 12, 4))
	// ...then the engine resets statistics at cycle 2000: counters
	// restart at zero but the trace clock keeps running.
	s.Reset(2000)
	s.Record(snap(3000, 10, 9, 7, 2))
	ts := s.Finish(snap(3000, 10, 9, 7, 2))

	if len(ts.Samples) != 1 {
		t.Fatalf("warmup samples survived the reset: %d samples", len(ts.Samples))
	}
	w := ts.Samples[0]
	if w.StartCycle != 2000 {
		t.Fatalf("post-reset window starts at %d, want the reset cycle 2000", w.StartCycle)
	}
	if w.DemandReads != 9 || w.Requests != 10 {
		t.Fatalf("post-reset window treated counters as deltas from warmup: %+v", w)
	}
}

func TestSamplerOriginDeltas(t *testing.T) {
	s := NewSampler(5, 0)
	a := snap(100, 5, 5, 3, 2)
	a.UsefulByOrigin = map[string]uint64{"slp": 4, "tlp": 1}
	s.Record(a)
	b := snap(200, 10, 10, 7, 3)
	b.UsefulByOrigin = map[string]uint64{"slp": 9, "tlp": 1}
	s.Record(b)
	ts := s.Finish(b)

	if got := ts.Samples[0].UsefulByOrigin["slp"]; got != 4 {
		t.Fatalf("window 0 slp = %d, want 4", got)
	}
	w1 := ts.Samples[1].UsefulByOrigin
	if w1["slp"] != 5 {
		t.Fatalf("window 1 slp = %d, want delta 5", w1["slp"])
	}
	if _, ok := w1["tlp"]; ok {
		t.Fatal("zero-delta origin should be omitted from the window map")
	}
	tot := ts.Totals()
	if tot.UsefulByOrigin["slp"] != 9 || tot.UsefulByOrigin["tlp"] != 1 {
		t.Fatalf("origin totals wrong: %+v", tot.UsefulByOrigin)
	}
}

// TestReportJSONRoundTrip marshals a fully-populated Report (including a
// TimeSeries) and checks the unmarshalled value is identical — the artifact
// schema must not lose or rename fields silently.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := Report{
		Workload:         "CFM",
		Prefetcher:       "planaria",
		DemandReads:      100,
		DemandWrites:     25,
		LatePrefetchHits: 7,
		UsefulByOrigin:   map[string]uint64{"slp": 30, "tlp": 9},
		SCHitLatency:     30,
		AMAT:             123.5,
		Cycles:           99999,
		StorageBits:      2_700_000,
		Series: &TimeSeries{
			EveryRequests: 10,
			Samples: []Sample{
				{StartCycle: 0, EndCycle: 1000, Requests: 10, DemandReads: 8,
					DemandHits: 6, DemandMisses: 2, ReadLatency: 800,
					HitRate: 0.75, AMAT: 100,
					UsefulByOrigin: map[string]uint64{"slp": 2}},
				{StartCycle: 1000, EndCycle: 2000, Requests: 10, DemandReads: 7,
					DemandHits: 6, DemandMisses: 1, ReadLatency: 700,
					HitRate: 6.0 / 7.0, AMAT: 100},
			},
		},
	}
	rep.Cache.DemandAccesses = 125
	rep.Cache.DemandHits = 90
	rep.Cache.DemandMisses = 35
	rep.Cache.PrefetchFills = 40
	rep.Cache.UsefulPrefetches = 39
	rep.DRAM.Reads = 70
	rep.DRAM.Writes = 12
	rep.DRAM.LatencyHist = [8]uint64{1, 2, 3, 4, 5, 6, 7, 8}
	rep.Prefetch.Candidates = 80
	rep.Prefetch.Issued = 44
	rep.Energy.Read = 1.5e6
	rep.Energy.Background = 2.25e6

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip changed the report:\n before %+v\n after  %+v", rep, back)
	}
}
