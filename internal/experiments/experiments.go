package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweepfarm"
	"repro/internal/workloads"
)

// Options controls experiment scale.
type Options struct {
	Requests int // trace length per app (paper: ~68 M; default here: 800k)
	// Warmup is the fraction of each trace run before statistics are
	// reset (standard trace-simulation warmup; negative disables, zero
	// selects the default of 0.2).
	Warmup  float64
	Verbose bool

	// Serial forces the single-goroutine engine for every simulated run;
	// the default is the sharded per-channel parallel engine, which
	// produces bit-identical reports (see docs/PERFORMANCE.md).
	Serial bool

	// SubShards splits each channel of every simulated run into this
	// many address-hashed execution units (sim.Config.SubShards). Zero
	// and one mean the unsharded paper geometry; values above one change
	// the simulated geometry (reports record it) and let a parallel run
	// scale past one worker per channel.
	SubShards int

	// NoStream materializes each trace in memory (via the byte-capped
	// TraceFor cache) before running it, instead of the default O(chunk)
	// streaming from the generator. Reports are bit-identical either way;
	// the switch exists for debugging and A/B benchmarking.
	NoStream bool

	// SampleEvery enables windowed time-series sampling inside every
	// simulated run: one metrics sample per N trace records (zero
	// disables). Reports then carry a Series, and JSON artifacts include
	// it. See docs/OBSERVABILITY.md.
	SampleEvery uint64

	// ArtifactDir, when non-empty, makes Sweep write one JSON run
	// artifact per (app × prefetcher) cell into the directory, named
	// "<app>_<prefetcher>.json", alongside whatever text tables the
	// caller prints.
	ArtifactDir string

	// Counters, when non-nil, receives additive processed-record progress
	// from every simulated run — the backing state of cmd/experiments'
	// -debug-addr endpoint. Safe across the concurrent sweep: the counter
	// set is atomic and runs only add.
	Counters *events.RunCounters

	// ExtraPrefetchers adds named prefetchers (sim.PrefetcherNames) to the
	// Figure 7 / CSV sweep set beyond EvalPrefetchers — the way to put
	// "planaria-tournament" (or "markov", "accel", …) side by side with
	// the paper's comparison points. Duplicates of the base set are
	// ignored. The fixed-column paper tables (Fig8, Fig10, IPC, traffic)
	// keep their original columns; extras appear in the Fig7 table, the
	// CSV and the sweep artifacts.
	ExtraPrefetchers []string
}

// EvalSet returns EvalPrefetchers plus the options' extra prefetchers,
// original order preserved and duplicates dropped — the sweep set used by
// Fig7 and the CSV export.
func (o Options) EvalSet() []string {
	out := append([]string(nil), EvalPrefetchers...)
	have := make(map[string]bool, len(out))
	for _, pf := range out {
		have[pf] = true
	}
	for _, pf := range o.ExtraPrefetchers {
		if pf == "" || have[pf] {
			continue
		}
		have[pf] = true
		out = append(out, pf)
	}
	return out
}

// DefaultOptions returns the default experiment scale: large enough for
// stable shapes, small enough to run in seconds per app.
func DefaultOptions() Options { return Options{Requests: 800_000} }

func (o Options) requests() int {
	if o.Requests <= 0 {
		return 800_000
	}
	return o.Requests
}

func (o Options) warmup() float64 {
	switch {
	case math.IsNaN(o.Warmup):
		// NaN compares false against everything, so without this guard it
		// would fall through every case below and poison the warmup
		// boundary arithmetic downstream. Treat it like "disabled".
		return 0
	case o.Warmup < 0:
		return 0
	case o.Warmup == 0:
		return 0.2
	case o.Warmup > 0.9:
		return 0.9
	}
	return o.Warmup
}

// runProfile drives one app through an engine with the options' warmup
// window discarded from the statistics. By default the records stream
// straight from the workload generator — O(chunk) memory regardless of
// opts.Requests — and the report is bit-identical to a materialized
// RunWarm (pinned by the sim equivalence tests). NoStream materializes
// through the byte-capped TraceFor cache instead.
func runProfile(eng *sim.Engine, p workloads.Profile, opts Options) (metrics.Report, error) {
	if opts.NoStream {
		return eng.RunWarm(TraceFor(p, opts.requests()), p.Abbr, opts.warmup())
	}
	return eng.RunWarmStream(p.Stream(opts.requests()), p.Abbr, opts.warmup())
}

// RunOne simulates one app trace under one named prefetcher.
func RunOne(p workloads.Profile, pf string, opts Options) (metrics.Report, error) {
	factory, err := sim.NamedPrefetcher(pf)
	if err != nil {
		return metrics.Report{}, err
	}
	cfg := sim.DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.SampleEvery = opts.SampleEvery
	cfg.ParallelChannels = !opts.Serial
	cfg.SubShards = opts.SubShards
	cfg.Counters = opts.Counters
	return runProfile(sim.New(cfg), p, opts)
}

// Sweep runs every catalog app under every named prefetcher. Since the
// sweep farm landed it is a thin wrapper over sweepfarm.Runner with one
// repeat, no config variants and no resume directory — the output is bit
// for bit what the original hand-rolled worker pool produced (runs are
// deterministic and repeat 0 keeps each profile's catalog seed), which the
// golden/equivalence tests pin. Callers that want repeats, resumability or
// CI statistics use the farm directly (or cmd/experiments -repeats/-grid).
//
// On failure Sweep degrades instead of discarding the sweep: the returned
// map holds every cell that completed cleanly (failed cells are simply
// absent), and the error joins one entry per failed cell — each prefixed
// with its cell key — so a multi-cell failure diagnoses in a single pass
// instead of one error per re-run. Callers that need an all-or-nothing
// result should treat a non-nil error as fatal; callers surfacing partial
// progress (cmd/experiments) can still write artifacts for the completed
// cells.
func Sweep(prefetchers []string, opts Options) (map[string]map[string]metrics.Report, error) {
	// The old pool tolerated duplicates (map writes made them redundant)
	// and an empty set (empty sweep); keep both behaviours.
	uniq := make([]string, 0, len(prefetchers))
	seen := make(map[string]bool, len(prefetchers))
	for _, pf := range prefetchers {
		if !seen[pf] {
			seen[pf] = true
			uniq = append(uniq, pf)
		}
	}
	if len(uniq) == 0 {
		return map[string]map[string]metrics.Report{}, nil
	}
	runner := &sweepfarm.Runner{
		Grid: sweepfarm.Grid{Prefetchers: uniq},
		Base: sweepfarm.Config{
			Requests:    opts.requests(),
			Warmup:      opts.warmup(),
			Serial:      opts.Serial,
			SubShards:   opts.SubShards,
			NoStream:    opts.NoStream,
			SampleEvery: opts.SampleEvery,
		},
		Counters:    opts.Counters,
		Materialize: TraceFor,
	}
	res, runErr := runner.Run(context.Background())
	if res == nil {
		return nil, runErr
	}
	out := res.ReportGrid("")
	var errs []error
	if runErr != nil {
		errs = append(errs, runErr)
	}
	if opts.ArtifactDir != "" {
		// Completed cells are written even on a partial sweep — their
		// reports are valid; any write error joins the run errors rather
		// than shadowing (or being shadowed by) them.
		if werr := writeCellArtifacts(opts.ArtifactDir, out, opts); werr != nil {
			errs = append(errs, werr)
		}
	}
	return out, errors.Join(errs...)
}

// EvalPrefetchers is the prefetcher set of Figures 7, 8 and 10.
var EvalPrefetchers = []string{"none", "bop", "spp", "planaria"}

// Row formatting helpers shared by the runners.

func header(w io.Writer, title string, cols []string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-6s", "app")
	for _, c := range cols {
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}

func appOrder(m map[string]map[string]metrics.Report) []string {
	abbrs := workloads.Abbrs()
	out := abbrs[:0:0]
	for _, a := range abbrs {
		if _, ok := m[a]; ok {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		for a := range m {
			out = append(out, a)
		}
		sort.Strings(out)
	}
	return out
}

// Fig4 computes the per-app overlap rate (paper: average > 80 %).
func Fig4(w io.Writer, opts Options) (avg float64) {
	fmt.Fprintf(w, "\n== Figure 4: footprint overlap rate ==\n")
	var rates []float64
	for _, p := range workloads.Catalog() {
		r := analysis.OverlapRate(TraceFor(p, opts.requests()))
		rates = append(rates, r)
		fmt.Fprintf(w, "%-6s %6.1f%%\n", p.Abbr, 100*r)
	}
	avg = metrics.Mean(rates)
	fmt.Fprintf(w, "%-6s %6.1f%%   (paper: > 80%% on average)\n", "avg", 100*avg)
	return avg
}

// Fig5 computes the learnable-neighbour proportion per distance threshold
// (paper: 26.95 % at distance 4, 39.26 % at distance 64 on average).
func Fig5(w io.Writer, opts Options) (avgAt4, avgAt64 float64) {
	dists := []uint64{4, 8, 16, 32, 64}
	fmt.Fprintf(w, "\n== Figure 5: learnable neighbouring pages ==\n")
	fmt.Fprintf(w, "%-6s", "app")
	for _, d := range dists {
		fmt.Fprintf(w, "%9s%d", "d=", d)
	}
	fmt.Fprintln(w)
	sums := make([]float64, len(dists))
	n := 0
	for _, p := range workloads.Catalog() {
		props := analysis.NeighborProportion(TraceFor(p, opts.requests()), dists, 4)
		fmt.Fprintf(w, "%-6s", p.Abbr)
		for i, pr := range props {
			fmt.Fprintf(w, "%9.1f%%", 100*pr)
			sums[i] += pr
		}
		fmt.Fprintln(w)
		n++
	}
	fmt.Fprintf(w, "%-6s", "avg")
	for i := range dists {
		fmt.Fprintf(w, "%9.1f%%", 100*sums[i]/float64(n))
	}
	fmt.Fprintf(w, "   (paper avg: 26.95%% @4, 39.26%% @64)\n")
	return sums[0] / float64(n), sums[len(dists)-1] / float64(n)
}

// Fig7 prints the per-app SC hit rate per prefetcher and returns the
// reports for further use. On a partial sweep the completed cells come
// back with the error; the table (which assumes a full grid) is only
// printed for a clean sweep.
func Fig7(w io.Writer, opts Options) (map[string]map[string]metrics.Report, error) {
	set := opts.EvalSet()
	reps, err := Sweep(set, opts)
	if err != nil {
		return reps, err
	}
	header(w, "Figure 7: SC hit rate", set)
	for _, a := range appOrder(reps) {
		fmt.Fprintf(w, "%-6s", a)
		for _, pf := range set {
			fmt.Fprintf(w, "%11.1f%%", 100*reps[a][pf].HitRate())
		}
		fmt.Fprintln(w)
	}
	return reps, nil
}

// Fig8 prints per-app AMAT and the headline reductions (paper: Planaria
// −24.3 % vs none, −21.3 % vs BOP, −15.1 % vs SPP; SPP −10.8 % and BOP
// −3.3 % vs none).
func Fig8(w io.Writer, reps map[string]map[string]metrics.Report) (vsNone, vsBOP, vsSPP float64) {
	header(w, "Figure 8: AMAT (cycles)", EvalPrefetchers)
	var rNone, rBOP, rSPP []float64
	for _, a := range appOrder(reps) {
		fmt.Fprintf(w, "%-6s", a)
		for _, pf := range EvalPrefetchers {
			fmt.Fprintf(w, "%12.1f", reps[a][pf].AMAT)
		}
		fmt.Fprintln(w)
		pl := reps[a]["planaria"].AMAT
		rNone = append(rNone, metrics.Reduction(reps[a]["none"].AMAT, pl))
		rBOP = append(rBOP, metrics.Reduction(reps[a]["bop"].AMAT, pl))
		rSPP = append(rSPP, metrics.Reduction(reps[a]["spp"].AMAT, pl))
	}
	vsNone, vsBOP, vsSPP = metrics.Mean(rNone), metrics.Mean(rBOP), metrics.Mean(rSPP)
	fmt.Fprintf(w, "Planaria AMAT reduction: %.1f%% vs none, %.1f%% vs BOP, %.1f%% vs SPP\n",
		100*vsNone, 100*vsBOP, 100*vsSPP)
	fmt.Fprintf(w, "(paper: 24.3%%, 21.3%%, 15.1%%)\n")
	return vsNone, vsBOP, vsSPP
}

// fig9Prefetchers is the Figure 9 sweep set — a variable (not a literal in
// Fig9) so the RunAll partial-results test can inject a failing cell.
var fig9Prefetchers = []string{"none", "planaria-slp", "planaria-tlp", "planaria"}

// fig9bPrefetcher is the configuration Fig9b attributes; a variable for
// the same fault-injection reason.
var fig9bPrefetcher = "planaria"

// Fig9 runs the Planaria breakdown (SLP-only, TLP-only, full) and prints
// each variant's share of the AMAT improvement (paper: SLP ≈ 80 % overall,
// TLP dominant on Fort).
func Fig9(w io.Writer, opts Options) (slpShareAvg float64, slpShare map[string]float64, err error) {
	reps, err := Sweep(fig9Prefetchers, opts)
	if err != nil {
		return 0, nil, err
	}
	header(w, "Figure 9: breakdown (AMAT reduction share)", []string{"slp-only", "tlp-only", "slp-share"})
	slpShare = map[string]float64{}
	var shares []float64
	for _, a := range appOrder(reps) {
		base := reps[a]["none"].AMAT
		full := metrics.Reduction(base, reps[a]["planaria"].AMAT)
		slp := metrics.Reduction(base, reps[a]["planaria-slp"].AMAT)
		tlp := metrics.Reduction(base, reps[a]["planaria-tlp"].AMAT)
		share := 0.0
		if slp+tlp > 0 {
			share = slp / (slp + tlp)
		}
		slpShare[a] = share
		shares = append(shares, share)
		fmt.Fprintf(w, "%-6s%11.1f%%%11.1f%%%11.1f%%   (full %.1f%%)\n",
			a, 100*slp, 100*tlp, 100*share, 100*full)
	}
	slpShareAvg = metrics.Mean(shares)
	fmt.Fprintf(w, "average SLP share: %.1f%%   (paper: ~80%%)\n", 100*slpShareAvg)
	return slpShareAvg, slpShare, nil
}

// Fig9b prints the in-system breakdown: useful prefetches attributed to
// each sub-prefetcher inside the full Planaria configuration (a second,
// attribution-based view of Figure 9; Fig9 uses the standalone-variant
// method).
func Fig9b(w io.Writer, opts Options) (slpShareAvg float64, err error) {
	fmt.Fprintf(w, "\n== Figure 9 (in-system attribution): useful prefetches per sub-prefetcher ==\n")
	fmt.Fprintf(w, "%-6s %12s %12s %12s\n", "app", "slp", "tlp", "slp-share")
	var shares []float64
	for _, p := range workloads.Catalog() {
		rep, err := RunOne(p, fig9bPrefetcher, opts)
		if err != nil {
			return 0, err
		}
		slp := rep.UsefulByOrigin["slp"]
		tlp := rep.UsefulByOrigin["tlp"]
		share := 0.0
		if slp+tlp > 0 {
			share = float64(slp) / float64(slp+tlp)
		}
		shares = append(shares, share)
		fmt.Fprintf(w, "%-6s %12d %12d %11.1f%%\n", p.Abbr, slp, tlp, 100*share)
	}
	slpShareAvg = metrics.Mean(shares)
	fmt.Fprintf(w, "average SLP share of useful prefetches: %.1f%%   (paper: ~80%%)\n", 100*slpShareAvg)
	return slpShareAvg, nil
}

// Fig10 prints per-app memory-system energy overhead vs no prefetcher
// (paper: Planaria +0.5 % avg, BOP +13.5 %, SPP +9.7 %).
func Fig10(w io.Writer, reps map[string]map[string]metrics.Report) (plAvg, bopAvg, sppAvg float64) {
	header(w, "Figure 10: memory power overhead vs none", []string{"bop", "spp", "planaria"})
	var pl, bo, sp []float64
	for _, a := range appOrder(reps) {
		base := reps[a]["none"].Energy.Total()
		ovh := func(pf string) float64 {
			return metrics.Improvement(base, reps[a][pf].Energy.Total())
		}
		fmt.Fprintf(w, "%-6s%11.1f%%%11.1f%%%11.1f%%\n", a, 100*ovh("bop"), 100*ovh("spp"), 100*ovh("planaria"))
		bo = append(bo, ovh("bop"))
		sp = append(sp, ovh("spp"))
		pl = append(pl, ovh("planaria"))
	}
	plAvg, bopAvg, sppAvg = metrics.Mean(pl), metrics.Mean(bo), metrics.Mean(sp)
	fmt.Fprintf(w, "average: BOP %+.1f%%, SPP %+.1f%%, Planaria %+.1f%%   (paper: +13.5%%, +9.7%%, +0.5%%)\n",
		100*bopAvg, 100*sppAvg, 100*plAvg)
	return plAvg, bopAvg, sppAvg
}

// TableIPC prints the estimated IPC uplift (paper: +28.9 % vs none,
// +21.9 % vs BOP, +15.3 % vs SPP).
func TableIPC(w io.Writer, reps map[string]map[string]metrics.Report) (vsNone, vsBOP, vsSPP float64) {
	model := metrics.DefaultIPCModel()
	header(w, "IPC estimate (model, see DESIGN.md)", EvalPrefetchers)
	var uNone, uBOP, uSPP []float64
	for _, a := range appOrder(reps) {
		fmt.Fprintf(w, "%-6s", a)
		for _, pf := range EvalPrefetchers {
			fmt.Fprintf(w, "%12.3f", model.IPC(reps[a][pf].AMAT))
		}
		fmt.Fprintln(w)
		pl := model.IPC(reps[a]["planaria"].AMAT)
		uNone = append(uNone, metrics.Improvement(model.IPC(reps[a]["none"].AMAT), pl))
		uBOP = append(uBOP, metrics.Improvement(model.IPC(reps[a]["bop"].AMAT), pl))
		uSPP = append(uSPP, metrics.Improvement(model.IPC(reps[a]["spp"].AMAT), pl))
	}
	vsNone, vsBOP, vsSPP = metrics.Mean(uNone), metrics.Mean(uBOP), metrics.Mean(uSPP)
	fmt.Fprintf(w, "Planaria IPC uplift: %.1f%% vs none, %.1f%% vs BOP, %.1f%% vs SPP\n",
		100*vsNone, 100*vsBOP, 100*vsSPP)
	fmt.Fprintf(w, "(paper: 28.9%%, 21.9%%, 15.3%%)\n")
	return vsNone, vsBOP, vsSPP
}

// TableTraffic prints DRAM traffic overhead vs none (paper: SPP +15.9 %,
// BOP +23.4 %).
func TableTraffic(w io.Writer, reps map[string]map[string]metrics.Report) (bopAvg, sppAvg, plAvg float64) {
	header(w, "Traffic overhead vs none", []string{"bop", "spp", "planaria"})
	var bo, sp, pl []float64
	for _, a := range appOrder(reps) {
		base := float64(reps[a]["none"].Traffic())
		ovh := func(pf string) float64 {
			return metrics.Improvement(base, float64(reps[a][pf].Traffic()))
		}
		fmt.Fprintf(w, "%-6s%11.1f%%%11.1f%%%11.1f%%\n", a, 100*ovh("bop"), 100*ovh("spp"), 100*ovh("planaria"))
		bo = append(bo, ovh("bop"))
		sp = append(sp, ovh("spp"))
		pl = append(pl, ovh("planaria"))
	}
	bopAvg, sppAvg, plAvg = metrics.Mean(bo), metrics.Mean(sp), metrics.Mean(pl)
	fmt.Fprintf(w, "average: BOP %+.1f%%, SPP %+.1f%%, Planaria %+.1f%%   (paper: +23.4%%, +15.9%%, small)\n",
		100*bopAvg, 100*sppAvg, 100*plAvg)
	return bopAvg, sppAvg, plAvg
}

// TableStorage prints the prefetcher metadata budget (paper: 345.2 KB).
func TableStorage(w io.Writer) (float64, error) {
	return tableStorage(w, "planaria")
}

func tableStorage(w io.Writer, name string) (float64, error) {
	factory, err := sim.NamedPrefetcher(name)
	if err != nil {
		// A registry rename must surface as an error, not as a nil factory
		// dereference on the next line.
		return 0, fmt.Errorf("storage table: %w", err)
	}
	bits := 0
	for ch := 0; ch < 4; ch++ {
		bits += factory(ch).StorageBits()
	}
	kb := float64(bits) / 8 / 1024
	fmt.Fprintf(w, "\n== Storage ==\nPlanaria metadata: %.1f KB across 4 channels (paper: 345.2 KB = 8.4%% of 4 MB SC)\n", kb)
	return kb, nil
}

// RunAll strings the full evaluation; used by cmd/experiments -run all. It
// returns the Figure 7 sweep reports so callers can derive artifacts from
// the same runs the tables printed.
func RunAll(w io.Writer, opts Options) (map[string]map[string]metrics.Report, error) {
	Fig4(w, opts)
	Fig5(w, opts)
	reps, err := Fig7(w, opts)
	if err != nil {
		return reps, err
	}
	Fig8(w, reps)
	// Every error path below returns reps, never nil: Fig7's sweep has
	// already completed by this point and discarding it would throw away
	// the partial results cmd/experiments writes artifacts from (the same
	// degrade-don't-discard contract Sweep itself keeps).
	if _, _, err := Fig9(w, opts); err != nil {
		return reps, err
	}
	if _, err := Fig9b(w, opts); err != nil {
		return reps, err
	}
	Fig10(w, reps)
	TableIPC(w, reps)
	TableTraffic(w, reps)
	if _, err := TableStorage(w); err != nil {
		return reps, err
	}
	return reps, nil
}

// Fig2 extracts the snapshot timeline of a hot page (rendered as text).
func Fig2(w io.Writer, opts Options) int {
	p := workloads.Catalog()[0]
	t := TraceFor(p, opts.requests())
	hot := analysis.HottestPages(t, 1)
	if len(hot) == 0 {
		return 0
	}
	pts := analysis.PageTimeline(t, hot[0])
	fmt.Fprintf(w, "\n== Figure 2: footprint snapshot of page %#x (%s) ==\n", uint64(hot[0]), p.Abbr)
	limit := pts
	if len(limit) > 64 {
		limit = limit[:64]
	}
	for _, pt := range limit {
		fmt.Fprintf(w, "cycle %10d  block %2d %s\n", pt.Cycle, pt.Offset, strings.Repeat(" ", pt.Offset)+"*")
	}
	if len(pts) > 64 {
		fmt.Fprintf(w, "... (%d more accesses)\n", len(pts)-64)
	}
	return len(pts)
}
