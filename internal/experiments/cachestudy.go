package experiments

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// CacheVariant is one configuration of the cache study.
type CacheVariant struct {
	Label      string
	SizeBytes  int // per-channel slice
	Policy     cache.Policy
	Prefetcher string
}

// DefaultCacheVariants reproduces the Section 1 claim: neither
// state-of-the-art replacement policies nor extra capacity significantly
// improve the SC, while a suitable prefetcher on the baseline cache does.
//
// Capacity stops at 2× the baseline: the synthetic working sets are sized
// for the paper's 4 MB SC, so capacities that swallow the whole live page
// set (trivially solving the problem in a way the paper's much larger real
// working sets do not allow) are out of scope.
func DefaultCacheVariants() []CacheVariant {
	return []CacheVariant{
		{"4MB lru", 1 << 20, cache.LRU, "none"},
		{"4MB srrip", 1 << 20, cache.SRRIP, "none"},
		{"4MB drrip", 1 << 20, cache.DRRIP, "none"},
		{"8MB lru", 2 << 20, cache.LRU, "none"},
		{"8MB drrip", 2 << 20, cache.DRRIP, "none"},
		{"4MB+planaria", 1 << 20, cache.LRU, "planaria"},
	}
}

// CacheStudy runs each variant over the catalog and prints per-variant mean
// hit rate and AMAT. It returns the mean AMAT per variant label.
func CacheStudy(w io.Writer, opts Options, variants []CacheVariant) (map[string]float64, error) {
	if variants == nil {
		variants = DefaultCacheVariants()
	}
	fmt.Fprintf(w, "\n== Cache study: replacement & capacity vs prefetching (Section 1 claim) ==\n")
	fmt.Fprintf(w, "%-14s %10s %10s\n", "variant", "hit rate", "AMAT")
	out := make(map[string]float64, len(variants))
	for _, v := range variants {
		factory, err := sim.NamedPrefetcher(v.Prefetcher)
		if err != nil {
			return nil, err
		}
		var hit, amat float64
		n := 0
		for _, p := range workloads.Catalog() {
			cfg := sim.DefaultConfig()
			cfg.Cache.SizeBytes = v.SizeBytes
			cfg.Cache.Policy = v.Policy
			cfg.NewPrefetcher = factory
			cfg.SubShards = opts.SubShards
			cfg.Counters = opts.Counters
			rep, err := runProfile(sim.New(cfg), p, opts)
			if err != nil {
				return nil, err
			}
			hit += rep.HitRate()
			amat += rep.AMAT
			n++
		}
		hit /= float64(n)
		amat /= float64(n)
		out[v.Label] = amat
		fmt.Fprintf(w, "%-14s %9.1f%% %10.1f\n", v.Label, 100*hit, amat)
	}
	if base, ok := out["4MB lru"]; ok {
		if pl, ok := out["4MB+planaria"]; ok {
			fmt.Fprintf(w, "planaria on the 4MB cache: %.1f%% AMAT reduction", 100*metrics.Reduction(base, pl))
			if big, ok := out["8MB drrip"]; ok {
				fmt.Fprintf(w, " — vs %.1f%% from doubling capacity + DRRIP", 100*metrics.Reduction(base, big))
			}
			fmt.Fprintln(w)
		}
	}
	return out, nil
}
