package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestWriteCSVDeterministic: two CSV renderings of the same sweep result
// must be byte-identical — row order may not depend on map iteration.
func TestWriteCSVDeterministic(t *testing.T) {
	reps, err := Sweep([]string{"planaria", "none", "bop"}, Options{Requests: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteCSV(&a, reps); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, reps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("CSV output differs between renderings of the same sweep")
	}
}

// TestCellsOrdering: cells come out in Table 2 app order with prefetchers
// sorted within each app.
func TestCellsOrdering(t *testing.T) {
	reps, err := Sweep([]string{"planaria", "none"}, Options{Requests: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(reps)
	if len(cells) != len(reps)*2 {
		t.Fatalf("got %d cells, want %d", len(cells), len(reps)*2)
	}
	for i := 0; i+1 < len(cells); i += 2 {
		if cells[i].App != cells[i+1].App {
			t.Fatalf("cells %d/%d not grouped by app: %s vs %s", i, i+1, cells[i].App, cells[i+1].App)
		}
		if cells[i].Prefetcher != "none" || cells[i+1].Prefetcher != "planaria" {
			t.Fatalf("prefetchers not sorted within app %s: %s, %s",
				cells[i].App, cells[i].Prefetcher, cells[i+1].Prefetcher)
		}
	}
}

// TestSweepArtifactDir: with ArtifactDir set, Sweep writes one valid
// artifact per cell, and sampled runs carry their time series through.
func TestSweepArtifactDir(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Requests: 20_000, SampleEvery: 5_000, ArtifactDir: dir}
	reps, err := Sweep([]string{"none", "planaria"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := len(reps) * 2
	if len(entries) != want {
		t.Fatalf("wrote %d artifacts, want %d", len(entries), want)
	}
	path := filepath.Join(dir, "CFM_planaria.json")
	art, err := obs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if art.Manifest.Workload != "CFM" || art.Manifest.Prefetcher != "planaria" {
		t.Fatalf("manifest cell fields wrong: %+v", art.Manifest)
	}
	if art.Manifest.SampleEvery != 5_000 || art.Manifest.Requests != 20_000 {
		t.Fatalf("manifest run fields wrong: %+v", art.Manifest)
	}
	if art.Report == nil || art.Report.Series == nil || len(art.Report.Series.Samples) == 0 {
		t.Fatal("artifact report missing the sampled time series")
	}
	// The artifact's report must agree with the in-memory sweep result.
	if art.Report.AMAT != reps["CFM"]["planaria"].AMAT {
		t.Fatalf("artifact AMAT %v != sweep AMAT %v",
			art.Report.AMAT, reps["CFM"]["planaria"].AMAT)
	}
}
