package experiments

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// small keeps integration tests tractable. The evaluation shapes (prefetcher
// ordering, breakdown shares) need enough revisit traffic to stabilise;
// 150k requests per app is the smallest scale at which they hold reliably.
func small() Options { return Options{Requests: 150_000} }

func TestTraceForMemoised(t *testing.T) {
	p, _ := workloads.ByAbbr("CFM")
	a := TraceFor(p, 1000)
	b := TraceFor(p, 1000)
	if &a[0] != &b[0] {
		t.Fatal("trace not memoised")
	}
	c := TraceFor(p, 2000)
	if len(c) != 2000 {
		t.Fatal("length key ignored")
	}
}

func TestRunOneUnknownPrefetcher(t *testing.T) {
	p, _ := workloads.ByAbbr("CFM")
	if _, err := RunOne(p, "warp-drive", small()); err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
}

// TestWarmupClamp: the options-level warmup fraction maps every degenerate
// input (NaN included — it compares false against everything, so a plain
// comparison chain would let it through) into [0, 0.9], with 0 selecting
// the 0.2 default.
func TestWarmupClamp(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{math.NaN(), 0},
		{math.Inf(-1), 0},
		{-1, 0},
		{0, 0.2},
		{0.5, 0.5},
		{1, 0.9},
		{2, 0.9},
		{math.Inf(1), 0.9},
	} {
		if got := (Options{Warmup: tc.in}).warmup(); got != tc.want {
			t.Errorf("warmup(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestSweepPartialOnError: a sweep with one broken prefetcher name still
// returns the completed cells next to the error instead of discarding the
// whole grid.
func TestSweepPartialOnError(t *testing.T) {
	opts := small()
	reps, err := Sweep([]string{"none", "warp-drive"}, opts)
	if err == nil {
		t.Fatal("unknown prefetcher accepted by Sweep")
	}
	if len(reps) == 0 {
		t.Fatal("partial sweep discarded the completed cells")
	}
	for app, cells := range reps {
		if _, ok := cells["warp-drive"]; ok {
			t.Fatalf("%s: failed cell present in partial results", app)
		}
		if _, ok := cells["none"]; !ok {
			t.Fatalf("%s: completed cell missing from partial results", app)
		}
	}
}

// TestSweepMatchesRunOne: the farm-backed Sweep is a pure wrapper — its
// single-repeat cells are bit-identical to the direct RunOne path the old
// worker pool used (repeat 0 keeps the catalog seed, and the streamed
// context run is the same code path as RunWarmStream).
func TestSweepMatchesRunOne(t *testing.T) {
	opts := Options{Requests: 20_000}
	reps, err := Sweep([]string{"planaria"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, abbr := range []string{"CFM", "Fort"} {
		p, _ := workloads.ByAbbr(abbr)
		direct, err := RunOne(p, "planaria", opts)
		if err != nil {
			t.Fatal(err)
		}
		got := reps[abbr]["planaria"]
		if !reflect.DeepEqual(got, direct) {
			t.Fatalf("%s: farm-backed sweep diverged from RunOne:\nfarm:   %+v\ndirect: %+v", abbr, got, direct)
		}
	}
}

// TestSweepJoinedErrors: a multi-cell failure reports every failed cell —
// each tagged with its cell key — in one joined error, not just the first
// scheduler-ordered loser, while the completed cells still come back.
func TestSweepJoinedErrors(t *testing.T) {
	reps, err := Sweep([]string{"none", "warp-drive", "hyper-lane"}, Options{Requests: 20_000})
	if err == nil {
		t.Fatal("unknown prefetchers accepted by Sweep")
	}
	msg := err.Error()
	// Every failed cell is identified: both bad prefetchers appear, keyed
	// by cell (spot-check two apps — one per bad prefetcher).
	for _, frag := range []string{"CFM/warp-drive", "CFM/hyper-lane", "PM/warp-drive"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("joined error missing cell %q:\n%s", frag, msg)
		}
	}
	if len(reps) != 10 {
		t.Fatalf("completed cells discarded: %d apps, want 10", len(reps))
	}
	for app, cells := range reps {
		if _, ok := cells["none"]; !ok {
			t.Fatalf("%s: completed cell missing from partial results", app)
		}
		if len(cells) != 1 {
			t.Fatalf("%s: failed cells leaked into results: %v", app, cells)
		}
	}
}

// TestRunAllPartialOnFig9Failure: when a figure after Fig7 fails, RunAll
// must hand back the completed Fig7 sweep with the error instead of
// discarding it — cmd/experiments writes its artifacts from that map.
func TestRunAllPartialOnFig9Failure(t *testing.T) {
	oldSet := fig9Prefetchers
	fig9Prefetchers = []string{"none", "warp-drive"}
	defer func() { fig9Prefetchers = oldSet }()

	reps, err := RunAll(io.Discard, Options{Requests: 20_000})
	if err == nil {
		t.Fatal("injected Fig9 failure did not surface")
	}
	if len(reps) != 10 {
		t.Fatalf("Fig7 sweep discarded on Fig9 failure: %d apps, want 10", len(reps))
	}
	for _, pf := range EvalPrefetchers {
		if _, ok := reps["CFM"][pf]; !ok {
			t.Fatalf("Fig7 report for CFM/%s missing from partial results", pf)
		}
	}
}

// TestRunAllPartialOnFig9bFailure: same contract for the Fig9b error path.
func TestRunAllPartialOnFig9bFailure(t *testing.T) {
	oldSet, oldPF := fig9Prefetchers, fig9bPrefetcher
	fig9Prefetchers = []string{"none"} // keep the healthy figures cheap
	fig9bPrefetcher = "warp-drive"
	defer func() { fig9Prefetchers, fig9bPrefetcher = oldSet, oldPF }()

	reps, err := RunAll(io.Discard, Options{Requests: 20_000})
	if err == nil {
		t.Fatal("injected Fig9b failure did not surface")
	}
	if len(reps) != 10 {
		t.Fatalf("Fig7 sweep discarded on Fig9b failure: %d apps, want 10", len(reps))
	}
}

func TestFig4Bounds(t *testing.T) {
	avg := Fig4(io.Discard, small())
	if avg < 0.6 || avg > 1 {
		t.Fatalf("overlap average %.3f outside sane band", avg)
	}
}

func TestFig5MonotoneAndPositive(t *testing.T) {
	at4, at64 := Fig5(io.Discard, small())
	if at4 <= 0 || at64 < at4 {
		t.Fatalf("neighbour proportions broken: %.3f @4, %.3f @64", at4, at64)
	}
}

func TestFig7And8Shape(t *testing.T) {
	var buf bytes.Buffer
	reps, err := Fig7(&buf, small())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 10 {
		t.Fatalf("expected 10 apps, got %d", len(reps))
	}
	// Core ordering claim on the mean: planaria has the highest hit rate
	// and the lowest AMAT of the four.
	mean := func(pf string, f func(app string) float64) float64 {
		s := 0.0
		for app := range reps {
			s += f(app)
		}
		return s / float64(len(reps))
	}
	hit := map[string]float64{}
	amat := map[string]float64{}
	for _, pf := range EvalPrefetchers {
		pf := pf
		hit[pf] = mean(pf, func(app string) float64 { return reps[app][pf].HitRate() })
		amat[pf] = mean(pf, func(app string) float64 { return reps[app][pf].AMAT })
	}
	// Scale-robust claims only: Planaria is best on both axes at any
	// trace length. The full BOP/SPP-vs-none orderings need the paper's
	// long traces and are validated by the full-scale experiment run
	// (EXPERIMENTS.md), not at this reduced test scale.
	if !(hit["planaria"] > hit["none"]) {
		t.Fatalf("planaria mean hit rate %.3f not above baseline %.3f", hit["planaria"], hit["none"])
	}
	for _, pf := range []string{"none", "bop", "spp"} {
		if amat["planaria"] >= amat[pf] {
			t.Fatalf("planaria mean AMAT %.1f not below %s's %.1f", amat["planaria"], pf, amat[pf])
		}
	}

	vsNone, _, vsSPP := Fig8(&buf, reps)
	if vsNone <= 0 || vsSPP <= 0 {
		t.Fatalf("planaria does not win: vsNone=%.3f vsSPP=%.3f", vsNone, vsSPP)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "Figure 8") {
		t.Fatal("output missing headers")
	}
}

func TestFig9TLPDominatesFort(t *testing.T) {
	_, shares, err := Fig9(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative claim: TLP contributes most on Fort, so
	// Fort's SLP share must sit clearly below the all-app mean.
	mean := 0.0
	for _, s := range shares {
		mean += s
	}
	mean /= float64(len(shares))
	if shares["Fort"] >= mean {
		t.Fatalf("Fort SLP share %.2f not below the mean %.2f", shares["Fort"], mean)
	}
}

func TestFig10AndTrafficOrdering(t *testing.T) {
	reps, err := Sweep(EvalPrefetchers, small())
	if err != nil {
		t.Fatal(err)
	}
	// Scale-robust claim: Planaria's power and traffic overheads are far
	// below both baselines' (the BOP-vs-SPP gap needs full-scale traces).
	pl, bop, spp := Fig10(io.Discard, reps)
	if pl >= spp || pl >= bop {
		t.Fatalf("planaria power %.3f not below bop %.3f / spp %.3f", pl, bop, spp)
	}
	if pl > 0.03 {
		t.Fatalf("planaria power overhead %.3f exceeds 3%%", pl)
	}
	tBop, tSpp, tPl := TableTraffic(io.Discard, reps)
	if tPl >= tSpp || tPl >= tBop {
		t.Fatalf("planaria traffic %.3f not below bop %.3f / spp %.3f", tPl, tBop, tSpp)
	}
	if tPl > 0.10 {
		t.Fatalf("planaria traffic overhead %.3f exceeds 10%%", tPl)
	}
}

func TestTableIPCPositiveUplift(t *testing.T) {
	reps, err := Sweep(EvalPrefetchers, small())
	if err != nil {
		t.Fatal(err)
	}
	vsNone, _, vsSPP := TableIPC(io.Discard, reps)
	if vsNone <= 0 || vsSPP <= 0 {
		t.Fatalf("IPC uplift not positive: %.3f / %.3f", vsNone, vsSPP)
	}
}

func TestTableStorageNearPaper(t *testing.T) {
	kb, err := TableStorage(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if kb < 250 || kb > 450 {
		t.Fatalf("storage %.1f KB outside the paper's neighbourhood", kb)
	}
}

func TestTableStorageUnknownPrefetcher(t *testing.T) {
	if _, err := tableStorage(io.Discard, "warp-drive"); err == nil {
		t.Fatal("tableStorage accepted an unknown prefetcher instead of returning the registry error")
	}
}

func TestFig2ProducesTimeline(t *testing.T) {
	if n := Fig2(io.Discard, small()); n == 0 {
		t.Fatal("no accesses in the hottest page's timeline")
	}
}

func TestAblationCoordinatorDecoupledWins(t *testing.T) {
	reps, err := AblationCoordinator(io.Discard, small())
	if err != nil {
		t.Fatal(err)
	}
	// Decoupled coordination should not lose to the serial (monolithic)
	// coordinator on mean AMAT, and should beat parallel on accuracy.
	var dec, ser, decAcc, parAcc float64
	for _, m := range reps {
		dec += m[core.Decoupled].AMAT
		ser += m[core.Serial].AMAT
		decAcc += m[core.Decoupled].Accuracy()
		parAcc += m[core.Parallel].Accuracy()
	}
	if dec > ser*1.02 {
		t.Fatalf("decoupled mean AMAT %.1f worse than serial %.1f", dec, ser)
	}
	if decAcc < parAcc {
		t.Fatalf("decoupled accuracy %.3f below parallel %.3f", decAcc, parAcc)
	}
}

func TestAblationDistance(t *testing.T) {
	reps, err := AblationDistance(io.Discard, small(), []uint64{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	// A larger distance threshold gives TLP more donors: Fort (the
	// TLP-bound app) must not get worse going 4 → 64.
	f := reps["Fort"]
	if f[64].AMAT > f[4].AMAT*1.02 {
		t.Fatalf("Fort AMAT worse at d=64 (%.1f) than d=4 (%.1f)", f[64].AMAT, f[4].AMAT)
	}
}

func TestAblationPTSize(t *testing.T) {
	reps, err := AblationPTSize(io.Discard, small(), []int{512, 16384})
	if err != nil {
		t.Fatal(err)
	}
	for app, m := range reps {
		if m[512].StorageBits >= m[16384].StorageBits {
			t.Fatalf("%s: storage not increasing with PT size", app)
		}
		if m[16384].AMAT > m[512].AMAT*1.05 {
			t.Fatalf("%s: bigger PT clearly worse (%.1f vs %.1f)", app, m[16384].AMAT, m[512].AMAT)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	reps, err := Sweep([]string{"none", "planaria"}, Options{Requests: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+10*2 {
		t.Fatalf("csv has %d lines, want header + 20 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "app,prefetcher,") {
		t.Fatalf("bad header %q", lines[0])
	}
	cols := strings.Count(lines[0], ",") + 1
	for i, l := range lines[1:] {
		if strings.Count(l, ",")+1 != cols {
			t.Fatalf("row %d has wrong column count: %q", i, l)
		}
	}
}

func TestCacheStudyClaim(t *testing.T) {
	// The capacity-vs-prefetching crossover needs more revisit traffic
	// than the other shape tests; 300k is the stable scale.
	amats, err := CacheStudy(io.Discard, Options{Requests: 300_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := amats["4MB lru"]
	// Replacement policies buy only a few percent...
	for _, lbl := range []string{"4MB srrip", "4MB drrip"} {
		if amats[lbl] < base*0.90 {
			t.Fatalf("%s AMAT %.1f improves more than 10%% over LRU %.1f", lbl, amats[lbl], base)
		}
	}
	// ...while prefetching on the baseline cache beats doubled capacity
	// with the best policy.
	if amats["4MB+planaria"] >= amats["8MB drrip"] {
		t.Fatalf("planaria on 4MB (%.1f) does not beat 8MB drrip (%.1f)",
			amats["4MB+planaria"], amats["8MB drrip"])
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full runner in -short mode")
	}
	var buf bytes.Buffer
	reps, err := RunAll(&buf, Options{Requests: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) == 0 {
		t.Fatal("RunAll returned no sweep reports")
	}
	for _, frag := range []string{"Figure 4", "Figure 5", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Storage"} {
		if !strings.Contains(buf.String(), frag) {
			t.Fatalf("RunAll output missing %q", frag)
		}
	}
}
