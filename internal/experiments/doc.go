// Package experiments contains one runner per figure and table of the
// paper's evaluation, shared by cmd/experiments and the benchmark harness
// in bench_test.go. Each runner generates the workload traces, drives the
// simulator and returns the same rows/series the paper reports.
//
// Sweeps run every catalog app under every requested prefetcher
// concurrently (results are deterministic and identical to a serial
// sweep); Options controls the trace length, warmup fraction and the
// observability knobs. With Options.SampleEvery set, every simulated run
// carries a windowed metrics time series; with Options.ArtifactDir set,
// Sweep additionally writes one JSON run artifact per (app × prefetcher)
// cell — see the internal/obs package and docs/OBSERVABILITY.md. All
// rendered output (text tables, CSV rows, artifact cells) uses a
// deterministic app and prefetcher order, so reruns are diff-stable.
package experiments
