package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// RunOneWith simulates one app trace under an arbitrary prefetcher factory
// (the hook the ablation sweeps use).
func RunOneWith(p workloads.Profile, factory func(int) prefetch.Prefetcher, opts Options) (metrics.Report, error) {
	cfg := sim.DefaultConfig()
	cfg.NewPrefetcher = factory
	cfg.SampleEvery = opts.SampleEvery
	cfg.SubShards = opts.SubShards
	cfg.Counters = opts.Counters
	return runProfile(sim.New(cfg), p, opts)
}

// AblationCoordinator compares the three coordination strategies of
// Section 2/7: Planaria's decoupled "parallel learning + serial issuing"
// against a TPC-style serial coordinator (monolithic sub-prefetchers) and an
// ISB-style parallel coordinator (both issue). It backs the design claim
// that decoupling buys accuracy and coverage simultaneously.
func AblationCoordinator(w io.Writer, opts Options) (map[string]map[core.CoordMode]metrics.Report, error) {
	modes := []core.CoordMode{core.Decoupled, core.Serial, core.Parallel}
	fmt.Fprintf(w, "\n== Ablation: coordinator mode (AMAT / accuracy / traffic overhead) ==\n")
	fmt.Fprintf(w, "%-6s", "app")
	for _, m := range modes {
		fmt.Fprintf(w, "%24s", m)
	}
	fmt.Fprintln(w)
	out := make(map[string]map[core.CoordMode]metrics.Report)
	for _, p := range workloads.Catalog() {
		base, err := RunOne(p, "none", opts)
		if err != nil {
			return nil, err
		}
		out[p.Abbr] = make(map[core.CoordMode]metrics.Report)
		fmt.Fprintf(w, "%-6s", p.Abbr)
		for _, m := range modes {
			mode := m
			rep, err := RunOneWith(p, func(int) prefetch.Prefetcher {
				cfg := core.DefaultConfig()
				cfg.Mode = mode
				return core.New(cfg)
			}, opts)
			if err != nil {
				return nil, err
			}
			out[p.Abbr][m] = rep
			ovh := metrics.Improvement(float64(base.Traffic()), float64(rep.Traffic()))
			fmt.Fprintf(w, "  %7.1f %5.1f%% %+5.1f%%", rep.AMAT, 100*rep.Accuracy(), 100*ovh)
		}
		fmt.Fprintln(w)
	}
	return out, nil
}

// AblationDistance sweeps TLP's neighbour distance threshold (Section 4.2
// fixes it at 64; Figure 5 motivates the range).
func AblationDistance(w io.Writer, opts Options, dists []uint64) (map[string]map[uint64]metrics.Report, error) {
	if len(dists) == 0 {
		dists = []uint64{4, 16, 64, 128}
	}
	fmt.Fprintf(w, "\n== Ablation: TLP distance threshold (AMAT) ==\n")
	fmt.Fprintf(w, "%-6s", "app")
	for _, d := range dists {
		fmt.Fprintf(w, "%11s%d", "d=", d)
	}
	fmt.Fprintln(w)
	out := make(map[string]map[uint64]metrics.Report)
	for _, p := range workloads.Catalog() {
		out[p.Abbr] = make(map[uint64]metrics.Report)
		fmt.Fprintf(w, "%-6s", p.Abbr)
		for _, d := range dists {
			dist := d
			rep, err := RunOneWith(p, func(int) prefetch.Prefetcher {
				cfg := core.DefaultConfig()
				cfg.TLP.DistThreshold = dist
				return core.New(cfg)
			}, opts)
			if err != nil {
				return nil, err
			}
			out[p.Abbr][d] = rep
			fmt.Fprintf(w, "%12.1f", rep.AMAT)
		}
		fmt.Fprintln(w)
	}
	return out, nil
}

// AblationPTSize sweeps SLP's pattern-history-table capacity, trading
// storage (the paper's 345.2 KB budget) against coverage.
func AblationPTSize(w io.Writer, opts Options, sizes []int) (map[string]map[int]metrics.Report, error) {
	if len(sizes) == 0 {
		sizes = []int{1024, 4096, 16384, 65536}
	}
	fmt.Fprintf(w, "\n== Ablation: SLP pattern table size (AMAT / storage KB) ==\n")
	fmt.Fprintf(w, "%-6s", "app")
	for _, s := range sizes {
		fmt.Fprintf(w, "%16d", s)
	}
	fmt.Fprintln(w)
	// Representative apps: one SLP-friendly, one TLP-heavy, one irregular.
	apps := []string{"CFM", "Fort", "NBA2"}
	out := make(map[string]map[int]metrics.Report)
	for _, abbr := range apps {
		p, ok := workloads.ByAbbr(abbr)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown app %q", abbr)
		}
		out[abbr] = make(map[int]metrics.Report)
		fmt.Fprintf(w, "%-6s", abbr)
		for _, s := range sizes {
			size := s
			rep, err := RunOneWith(p, func(int) prefetch.Prefetcher {
				cfg := core.DefaultConfig()
				cfg.SLP.PTEntries = size
				return core.New(cfg)
			}, opts)
			if err != nil {
				return nil, err
			}
			out[abbr][s] = rep
			fmt.Fprintf(w, "%9.1f %5.0fKB", rep.AMAT, float64(rep.StorageBits)/8/1024)
		}
		fmt.Fprintln(w)
	}
	return out, nil
}
