package experiments

import (
	"path/filepath"
	"sort"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Cells flattens a sweep result into sorted (app, prefetcher) cells: apps
// in Table 2 order (unknown apps sorted last), prefetchers sorted by name
// within each app. The order is deterministic across runs so JSON artifacts
// built from it are diff-stable.
func Cells(reps map[string]map[string]metrics.Report) []obs.Cell {
	var cells []obs.Cell
	for _, app := range appOrder(reps) {
		for _, pf := range prefetcherOrder(reps[app]) {
			cells = append(cells, obs.Cell{
				App:        app,
				Prefetcher: pf,
				Report:     reps[app][pf],
			})
		}
	}
	return cells
}

// prefetcherOrder returns the sorted prefetcher keys of one sweep row.
func prefetcherOrder(row map[string]metrics.Report) []string {
	out := make([]string, 0, len(row))
	for pf := range row {
		out = append(out, pf)
	}
	sort.Strings(out)
	return out
}

// sweepManifest builds the shared manifest for artifacts produced from one
// sweep (git describe and environment captured once).
func sweepManifest(opts Options) obs.Manifest {
	man := obs.NewManifest("experiments")
	man.Requests = opts.requests()
	man.Warmup = opts.warmup()
	man.SampleEvery = opts.SampleEvery
	return man
}

// writeCellArtifacts writes one JSON run artifact per sweep cell into dir,
// named "<app>_<prefetcher>.json", in deterministic order.
func writeCellArtifacts(dir string, reps map[string]map[string]metrics.Report, opts Options) error {
	man := sweepManifest(opts)
	for _, c := range Cells(reps) {
		m := man
		m.Workload, m.Prefetcher = c.App, c.Prefetcher
		rep := c.Report
		art := obs.Artifact{Manifest: m, Report: &rep}
		path := filepath.Join(dir, c.App+"_"+c.Prefetcher+".json")
		if err := obs.WriteFile(path, art); err != nil {
			return err
		}
	}
	return nil
}
