package experiments

import (
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// withCacheCap runs f under a temporary cache cap and a clean cache, restoring
// both afterwards so other tests see the default configuration.
func withCacheCap(t *testing.T, cap int64, f func()) {
	t.Helper()
	old := TraceCacheBytes
	TraceCacheBytes = cap
	resetTraceCache()
	defer func() {
		TraceCacheBytes = old
		resetTraceCache()
	}()
	f()
}

// TestTraceCacheEviction: inserts beyond the byte cap evict largest-idle
// first, the most recently used entry survives, and the byte accounting
// matches the live entries.
func TestTraceCacheEviction(t *testing.T) {
	apps := workloads.Catalog()
	recBytes := traceBytes(apps[0].Generate(1))
	// Cap fits one 3000-record trace plus one 1000-record trace, not more.
	withCacheCap(t, 4100*recBytes, func() {
		TraceFor(apps[0], 3000) // large
		TraceFor(apps[1], 1000) // small, most recent
		if n, b := traceCacheStats(); n != 2 || b != 4000*recBytes {
			t.Fatalf("after 2 inserts: %d entries, %d bytes", n, b)
		}
		// A second large insert overflows the cap. The largest idle entry
		// (apps[0]/3000) must go; the new insert is most recent and the
		// small entry fits alongside it.
		TraceFor(apps[2], 3000)
		n, b := traceCacheStats()
		if n != 2 || b != 4000*recBytes {
			t.Fatalf("after eviction: %d entries, %d bytes", n, b)
		}
		// The small entry survived: a hit must not regenerate (same backing
		// array ⇒ same first-element address).
		small := TraceFor(apps[1], 1000)
		small2 := TraceFor(apps[1], 1000)
		if &small[0] != &small2[0] {
			t.Fatal("surviving entry was regenerated on hit")
		}
	})
}

// TestTraceCacheOversized: a single trace larger than the cap still memoises
// (the most recent entry is never evicted), so repeated calls within one
// figure share a backing array instead of regenerating.
func TestTraceCacheOversized(t *testing.T) {
	p := workloads.Catalog()[0]
	withCacheCap(t, 10, func() {
		a := TraceFor(p, 2000)
		b := TraceFor(p, 2000)
		if &a[0] != &b[0] {
			t.Fatal("oversized entry was not retained")
		}
		if n, _ := traceCacheStats(); n != 1 {
			t.Fatalf("oversized cache holds %d entries, want 1", n)
		}
	})
}

// TestTraceCacheSingleFlight: concurrent first requests for the same key
// share one generator run and one backing array.
func TestTraceCacheSingleFlight(t *testing.T) {
	p := workloads.Catalog()[2]
	withCacheCap(t, TraceCacheBytes, func() {
		const goroutines = 8
		ptrs := make([]*trace.Record, goroutines)
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tr := TraceFor(p, 5000)
				ptrs[i] = &tr[0]
			}(i)
		}
		wg.Wait()
		for i := 1; i < goroutines; i++ {
			if ptrs[i] != ptrs[0] {
				t.Fatalf("goroutine %d got a different backing array", i)
			}
		}
	})
}
