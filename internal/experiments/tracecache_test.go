package experiments

import (
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// withCacheCap runs f under a temporary cache cap and a clean cache, restoring
// both afterwards so other tests see the default configuration.
func withCacheCap(t *testing.T, cap int64, f func()) {
	t.Helper()
	old := TraceCacheBytes
	TraceCacheBytes = cap
	resetTraceCache()
	defer func() {
		TraceCacheBytes = old
		resetTraceCache()
	}()
	f()
}

// TestTraceCacheEviction: inserts beyond the byte cap evict largest-idle
// first, the most recently used entry survives, and the byte accounting
// matches the live entries.
func TestTraceCacheEviction(t *testing.T) {
	apps := workloads.Catalog()
	recBytes := traceBytes(apps[0].Generate(1))
	// Cap fits one 3000-record trace plus one 1000-record trace, not more.
	withCacheCap(t, 4100*recBytes, func() {
		TraceFor(apps[0], 3000) // large
		TraceFor(apps[1], 1000) // small, most recent
		if n, b := traceCacheStats(); n != 2 || b != 4000*recBytes {
			t.Fatalf("after 2 inserts: %d entries, %d bytes", n, b)
		}
		// A second large insert overflows the cap. The largest idle entry
		// (apps[0]/3000) must go; the new insert is most recent and the
		// small entry fits alongside it.
		TraceFor(apps[2], 3000)
		n, b := traceCacheStats()
		if n != 2 || b != 4000*recBytes {
			t.Fatalf("after eviction: %d entries, %d bytes", n, b)
		}
		// The small entry survived: a hit must not regenerate (same backing
		// array ⇒ same first-element address).
		small := TraceFor(apps[1], 1000)
		small2 := TraceFor(apps[1], 1000)
		if &small[0] != &small2[0] {
			t.Fatal("surviving entry was regenerated on hit")
		}
	})
}

// TestTraceCacheOversized: a single trace larger than the cap still memoises
// (the most recent entry is never evicted), so repeated calls within one
// figure share a backing array instead of regenerating.
func TestTraceCacheOversized(t *testing.T) {
	p := workloads.Catalog()[0]
	withCacheCap(t, 10, func() {
		a := TraceFor(p, 2000)
		b := TraceFor(p, 2000)
		if &a[0] != &b[0] {
			t.Fatal("oversized entry was not retained")
		}
		if n, _ := traceCacheStats(); n != 1 {
			t.Fatalf("oversized cache holds %d entries, want 1", n)
		}
	})
}

// TestTraceCacheSeedKey: the cache key includes the profile seed, so two
// runs of the same app at the same length but different seeds (the sweep
// farm's derived-seed repeats) get distinct traces instead of sharing one
// entry.
func TestTraceCacheSeedKey(t *testing.T) {
	p := workloads.Catalog()[0]
	withCacheCap(t, TraceCacheBytes, func() {
		a := TraceFor(p, 1000)
		p2 := p
		p2.Seed = p.Seed + 12345
		b := TraceFor(p2, 1000)
		if &a[0] == &b[0] {
			t.Fatal("different seeds shared one cache entry")
		}
		if n, _ := traceCacheStats(); n != 2 {
			t.Fatalf("cache holds %d entries after two seeds, want 2", n)
		}
		// Same profile again is still a hit, not a regeneration.
		a2 := TraceFor(p, 1000)
		if &a[0] != &a2[0] {
			t.Fatal("original seed entry was regenerated")
		}
	})
}

// TestTraceForPanicCleanup: a generator panic must not strand the
// single-flight record — the panic propagates to every caller (including
// concurrent waiters, which retry and hit the same deterministic panic)
// and the inflight map ends empty, so later calls for other keys are
// unaffected.
func TestTraceForPanicCleanup(t *testing.T) {
	// The zero profile fails Validate, so Generate panics via NewGenerator.
	bad := workloads.Profile{Abbr: "BAD-PANIC"}
	withCacheCap(t, TraceCacheBytes, func() {
		const goroutines = 4
		panics := make(chan any, goroutines)
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { panics <- recover() }()
				TraceFor(bad, 500)
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("a waiter blocked forever after the generator panicked")
		}
		for i := 0; i < goroutines; i++ {
			if p := <-panics; p == nil {
				t.Fatal("a caller returned normally from a panicking generation")
			}
		}
		traces.mu.Lock()
		stranded := len(traces.gen)
		traces.mu.Unlock()
		if stranded != 0 {
			t.Fatalf("%d single-flight records stranded after panic", stranded)
		}
		// The key is fully released: a later valid generation under an
		// unrelated key proceeds normally.
		good := workloads.Catalog()[0]
		if tr := TraceFor(good, 100); len(tr) != 100 {
			t.Fatalf("cache unusable after panic: got %d records", len(tr))
		}
	})
}

// TestResetTraceCacheClearsInflight: resetTraceCache must drop in-flight
// generation records along with the entries; a stale record whose done
// channel never closes would otherwise block every later TraceFor for
// that key forever.
func TestResetTraceCacheClearsInflight(t *testing.T) {
	p := workloads.Catalog()[1]
	withCacheCap(t, TraceCacheBytes, func() {
		key := traceKey{Abbr: p.Abbr, N: 750, Seed: p.Seed}
		traces.mu.Lock()
		traces.gen[key] = &inflight{done: make(chan struct{})} // never closed
		traces.mu.Unlock()

		resetTraceCache()

		traces.mu.Lock()
		left := len(traces.gen)
		traces.mu.Unlock()
		if left != 0 {
			t.Fatalf("resetTraceCache left %d inflight records", left)
		}
		// The same key must generate fresh instead of joining the dead
		// record; bound the wait so a regression fails instead of hanging.
		got := make(chan trace.Trace, 1)
		go func() { got <- TraceFor(p, 750) }()
		select {
		case tr := <-got:
			if len(tr) != 750 {
				t.Fatalf("post-reset trace has %d records, want 750", len(tr))
			}
		case <-time.After(30 * time.Second):
			t.Fatal("TraceFor joined a stale inflight record after reset")
		}
	})
}

// TestTraceCacheSingleFlight: concurrent first requests for the same key
// share one generator run and one backing array.
func TestTraceCacheSingleFlight(t *testing.T) {
	p := workloads.Catalog()[2]
	withCacheCap(t, TraceCacheBytes, func() {
		const goroutines = 8
		ptrs := make([]*trace.Record, goroutines)
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tr := TraceFor(p, 5000)
				ptrs[i] = &tr[0]
			}(i)
		}
		wg.Wait()
		for i := 1; i < goroutines; i++ {
			if ptrs[i] != ptrs[0] {
				t.Fatalf("goroutine %d got a different backing array", i)
			}
		}
	})
}
