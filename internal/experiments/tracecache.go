package experiments

// This file bounds the per-process trace memoisation. Simulated *runs*
// stream their records straight from the workload generator (O(1) memory;
// see docs/PERFORMANCE.md), so the cache now serves only the trace-shape
// analyses (Fig. 2/4/5) and callers that explicitly materialize — and it is
// byte-capped so long sweeps at mixed lengths cannot grow memory without
// limit. Eviction is largest-idle first: the entry costing the most bytes
// among those not in active use goes first, with older last-use breaking
// ties. Generation stays single-flight per key: concurrent callers of the
// same (app, length) share one generator run and one backing array.

import (
	"sync"
	"unsafe"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// TraceCacheBytes caps the memoised-trace cache. 128 MiB holds a handful of
// default-scale (800k-record, ~19 MB) traces — enough for the analysis
// figures to reuse traces within a run — while bounding worst-case sweep
// memory. The most recently used entry is never evicted, so a single trace
// larger than the cap still memoises (and is evicted by the next insert).
var TraceCacheBytes int64 = 128 << 20

// traceKey identifies one memoised trace: comparable struct keys avoid the
// fmt.Sprintf allocation a string key would pay on every lookup. The seed
// is part of the key because the sweep farm reseeds catalog profiles per
// repeat — two repeats of the same app at the same length are different
// traces and must not share a cache entry.
type traceKey struct {
	Abbr string
	N    int
	Seed int64
}

type cacheEntry struct {
	t       trace.Trace
	bytes   int64
	lastUse uint64 // logical clock of the most recent TraceFor hit
}

// inflight is one single-flight generation: latecomers wait on done and
// read t. failed is written before done is closed (so the close provides
// the happens-before edge) and marks a generation whose generator
// panicked: waiters must retry instead of consuming the zero trace.
type inflight struct {
	done   chan struct{}
	t      trace.Trace
	failed bool
}

type traceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*cacheEntry
	gen     map[traceKey]*inflight
	size    int64
	clock   uint64
}

var traces = traceCache{
	entries: map[traceKey]*cacheEntry{},
	gen:     map[traceKey]*inflight{},
}

func traceBytes(t trace.Trace) int64 {
	return int64(len(t)) * int64(unsafe.Sizeof(trace.Record{}))
}

// TraceFor returns the deterministic trace of an app at the given length,
// memoised under the byte cap.
func TraceFor(p workloads.Profile, n int) trace.Trace {
	key := traceKey{Abbr: p.Abbr, N: n, Seed: p.Seed}
	traces.mu.Lock()
	if e, ok := traces.entries[key]; ok {
		traces.clock++
		e.lastUse = traces.clock
		traces.mu.Unlock()
		return e.t
	}
	if f, ok := traces.gen[key]; ok {
		// Another goroutine is generating this trace; share its result.
		traces.mu.Unlock()
		<-f.done
		if f.failed {
			// The generator panicked and its cleanup removed the inflight
			// record; retry — this caller may become the new generator,
			// so a deterministic panic surfaces here too instead of
			// being swallowed.
			return TraceFor(p, n)
		}
		return f.t
	}
	f := &inflight{done: make(chan struct{})}
	f.failed = true // cleared only when generation completes
	traces.gen[key] = f
	// The single-flight record must not outlive a panicking generator:
	// without this cleanup the record would stay in gen with done never
	// closed, and every later caller for the key would block forever.
	// The deferred cleanup runs on success and on panic alike (the panic
	// then propagates to the caller unchanged).
	defer func() {
		traces.mu.Lock()
		// resetTraceCache may have swapped the gen map mid-generation;
		// only remove our own record.
		if traces.gen[key] == f {
			delete(traces.gen, key)
		}
		if !f.failed {
			traces.insert(key, f.t)
		}
		traces.mu.Unlock()
		close(f.done)
	}()
	traces.mu.Unlock()

	f.t = p.Generate(n)
	f.failed = false
	return f.t
}

// insert stores a freshly generated trace and evicts largest-idle-first
// until the cache fits the cap again. Called with mu held.
func (c *traceCache) insert(key traceKey, t trace.Trace) {
	c.clock++
	e := &cacheEntry{t: t, bytes: traceBytes(t), lastUse: c.clock}
	c.entries[key] = e
	c.size += e.bytes
	for c.size > TraceCacheBytes && len(c.entries) > 1 {
		var victimKey traceKey
		var victim *cacheEntry
		var newest uint64
		for _, ce := range c.entries {
			if ce.lastUse > newest {
				newest = ce.lastUse
			}
		}
		for k, ce := range c.entries {
			if ce.lastUse == newest {
				continue // never evict the most recently used entry
			}
			if victim == nil || ce.bytes > victim.bytes ||
				(ce.bytes == victim.bytes && ce.lastUse < victim.lastUse) {
				victimKey, victim = k, ce
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victimKey)
		c.size -= victim.bytes
	}
}

// traceCacheStats reports the live entry count and byte total (test hook).
func traceCacheStats() (entries int, bytes int64) {
	traces.mu.Lock()
	defer traces.mu.Unlock()
	return len(traces.entries), traces.size
}

// resetTraceCache drops every memoised trace and every in-flight
// generation record (test hook). Clearing gen matters: a reset that left a
// stale inflight behind would hand later TraceFor calls a record whose
// done channel may never close (blocking them forever) or whose trace is
// absent from the cache accounting. A generation actually running across
// the reset is unaffected — its deferred cleanup only deletes its own
// record from whichever map it still appears in, and its waiters hold a
// direct pointer to the inflight record, not a map lookup.
func resetTraceCache() {
	traces.mu.Lock()
	defer traces.mu.Unlock()
	traces.entries = map[traceKey]*cacheEntry{}
	traces.gen = map[traceKey]*inflight{}
	traces.size = 0
}
