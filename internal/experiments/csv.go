package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/metrics"
)

// WriteCSV emits one row per (app, prefetcher) run with every metric the
// figures draw on, for external plotting.
func WriteCSV(w io.Writer, reps map[string]map[string]metrics.Report) error {
	cw := csv.NewWriter(w)
	header := []string{
		"app", "prefetcher", "demand_reads", "demand_writes",
		"hit_rate", "amat_cycles", "ipc_est", "coverage", "accuracy",
		"dram_reads", "dram_writes", "prefetch_reads", "activates",
		"row_hits", "refreshes", "energy_uj", "storage_kb", "cycles",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	model := metrics.DefaultIPCModel()
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	// Sorted app and prefetcher order keeps the CSV diff-stable across
	// runs (map iteration order would shuffle rows otherwise).
	for _, app := range appOrder(reps) {
		for _, pf := range prefetcherOrder(reps[app]) {
			rep := reps[app][pf]
			row := []string{
				app, pf, u(rep.DemandReads), u(rep.DemandWrites),
				f(rep.HitRate()), f(rep.AMAT), f(model.IPC(rep.AMAT)),
				f(rep.Coverage()), f(rep.Accuracy()),
				u(rep.DRAM.Reads), u(rep.DRAM.Writes), u(rep.DRAM.PrefReads),
				u(rep.DRAM.Activates), u(rep.DRAM.RowHits), u(rep.DRAM.Refreshes),
				f(rep.Energy.Total() / 1e6), f(float64(rep.StorageBits) / 8 / 1024),
				u(rep.Cycles),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	return nil
}
