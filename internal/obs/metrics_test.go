package obs

// Tests for the /metrics endpoint: static serving semantics, and the real
// mid-run concurrency pattern under -race — a live engine hammering the
// sharded instruments while an HTTP client scrapes and validates the
// exposition.

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/events"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// TestMetricsEndpoint pins the serving contract: a populated registry is
// exposed in valid Prometheus text format with the run-progress families
// appended from the counters; a counters-only server still serves the
// progress families; a server with neither source 404s.
func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("test_ops_total", "Operations.").Add(42)
	reg.Histogram("test_latency_cycles", "Latency.").Record(100)
	counters := &events.RunCounters{}
	counters.Start()
	counters.Add(250)

	d, err := StartDebugServer("127.0.0.1:0", DebugConfig{
		Counters: counters, Telemetry: reg, Tool: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want the 0.0.4 exposition version", ct)
	}
	body := getBody(t, d, "/metrics", http.StatusOK)
	for _, want := range []string{
		"test_ops_total 42",
		"test_latency_cycles_count 1",
		"planaria_run_records_total 250",
		"planaria_run_req_per_s",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if err := telemetry.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
	if !strings.Contains(getBody(t, d, "/", http.StatusOK), "/metrics") {
		t.Error("index missing /metrics")
	}

	// Counters-only: the progress families alone are still a valid payload.
	d2, err := StartDebugServer("127.0.0.1:0", DebugConfig{Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	body2 := getBody(t, d2, "/metrics", http.StatusOK)
	if err := telemetry.ValidateExposition(strings.NewReader(body2)); err != nil {
		t.Errorf("counters-only exposition invalid: %v", err)
	}

	// Neither source: 404, like /progress and /attrib.
	d3, err := StartDebugServer("127.0.0.1:0", DebugConfig{Tool: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	getBody(t, d3, "/metrics", http.StatusNotFound)
}

// TestMetricsScrapeLiveRun is the mid-run scrape pattern under -race: a
// telemetry-enabled engine run in flight while an HTTP client scrapes
// /metrics in a loop, validating every payload against the exposition
// grammar. Engine workers record into the sharded instruments concurrently
// with WritePrometheus snapshotting them.
func TestMetricsScrapeLiveRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	counters := &events.RunCounters{}
	counters.Start()

	d, err := StartDebugServer("127.0.0.1:0", DebugConfig{
		Counters: counters, Telemetry: reg, Tool: "live",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cfg := sim.DefaultConfig()
	cfg.Telemetry = reg
	cfg.Counters = counters
	p := workloads.Catalog()[0]
	const n = 400_000

	var run sync.WaitGroup
	run.Add(1)
	runErr := make(chan error, 1)
	finished := make(chan struct{})
	go func() {
		defer run.Done()
		defer close(finished)
		eng := sim.New(cfg)
		if _, err := eng.RunStream(p.Stream(n), p.Abbr); err != nil {
			runErr <- err
		}
	}()

	// Scrape until the run completes (a fast host may only fit a scrape or
	// two mid-run; the -race CI leg slows the run enough for many).
	scrapes := 0
	for done := false; !done; {
		select {
		case <-finished:
			done = true
		default:
		}
		body := getBody(t, d, "/metrics", http.StatusOK)
		scrapes++
		if err := telemetry.ValidateExposition(strings.NewReader(body)); err != nil {
			t.Errorf("scrape %d invalid: %v", scrapes, err)
		}
	}
	run.Wait()
	select {
	case err := <-runErr:
		t.Fatal(err)
	default:
	}
	if counters.Records() != n {
		t.Fatalf("run processed %d records, want %d", counters.Records(), n)
	}
	// The final scrape must reflect the whole run.
	body := getBody(t, d, "/metrics", http.StatusOK)
	if !strings.Contains(body, "planaria_demand_reads_total") {
		t.Error("final scrape missing demand read counters")
	}
	if v, ok := reg.Quantile(sim.MetricDRAMDemandReadLatency, 0.99); !ok || v <= 0 {
		t.Errorf("p99 demand latency = %v, %v; want a positive live reading", v, ok)
	}
	if p := counters.Progress(); p.P99DemandLatCycles <= 0 {
		t.Errorf("progress p99 = %v, want positive (latency source installed by the engine)", p.P99DemandLatCycles)
	}
}
