package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
)

// SchemaVersion identifies the artifact schema; bump it on any breaking
// change to Manifest, Artifact or the embedded metrics types.
//
// History: v1 = manifest + report/summary/cells; v2 adds the optional
// event-level attribution table (Artifact.Attribution) and the per-origin
// late-hit breakdown inside reports; v3 adds repeat/seed/config-hash
// provenance to the manifest (Repeat, ConfigHash — Seed predates v3) for
// the sweep farm's repeated, resumable grids (internal/sweepfarm); v4 adds
// the optional telemetry summary inside reports (Report.Telemetry —
// counter totals plus p50/p90/p99 histogram summaries from
// internal/telemetry, present when the run enabled live metrics). Readers
// accept any version in [1, SchemaVersion] — the additions are strictly
// optional fields.
const SchemaVersion = 4

// Manifest records the provenance of one run: everything needed to
// reproduce the numbers in the artifact it accompanies.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"` // producing command, e.g. "planaria-sim"

	Workload   string `json:"workload,omitempty"`
	Prefetcher string `json:"prefetcher,omitempty"`

	TraceLen    int     `json:"trace_len,omitempty"` // records simulated
	Requests    int     `json:"requests,omitempty"`  // configured trace length
	Warmup      float64 `json:"warmup,omitempty"`    // warmup fraction
	SampleEvery uint64  `json:"sample_every,omitempty"`
	Seed        int64   `json:"seed,omitempty"`

	// Repeat and ConfigHash are the sweep farm's provenance (schema v3):
	// Repeat is the 0-based repeat index of this run within its grid
	// cell, and ConfigHash fingerprints the full simulation configuration
	// that produced it. A resume scan accepts a cell artifact only when
	// both (plus Seed and the run shape) match the planned job — anything
	// else is stale and re-executed (internal/sweepfarm).
	Repeat     int    `json:"repeat,omitempty"`
	ConfigHash string `json:"config_hash,omitempty"`

	GitDescribe string    `json:"git_describe,omitempty"`
	GoVersion   string    `json:"go_version"`
	OS          string    `json:"os"`
	Arch        string    `json:"arch"`
	StartTime   time.Time `json:"start_time"`
	WallTimeSec float64   `json:"wall_time_seconds"`

	// Failure fields: set when the run degraded instead of completing —
	// the artifact then carries the partial results that were salvaged
	// (see docs/OBSERVABILITY.md, "Failure model"). Failure is the error
	// text; Truncated mirrors metrics.Report.Truncated; FailedAt is the
	// global trace position the failure was attributed to.
	Failure   string `json:"failure,omitempty"`
	Truncated bool   `json:"truncated,omitempty"`
	FailedAt  int64  `json:"failed_at,omitempty"`
}

// RecordFailure marks the manifest as describing a degraded run: err
// becomes the Failure text, and when the (possibly partial) report was
// truncated mid-run its position metadata is copied over. A nil err is a
// no-op so callers can invoke it unconditionally.
func (m *Manifest) RecordFailure(err error, rep *metrics.Report) {
	if err == nil {
		return
	}
	m.Failure = err.Error()
	if rep != nil && rep.Truncated {
		m.Truncated = true
		m.FailedAt = rep.FailedAt
	}
}

// NewManifest builds a manifest for the named tool with the environment
// fields (git describe, Go version, platform, start time) filled in.
func NewManifest(tool string) Manifest {
	return Manifest{
		SchemaVersion: SchemaVersion,
		Tool:          tool,
		GitDescribe:   GitDescribe(),
		GoVersion:     runtime.Version(),
		OS:            runtime.GOOS,
		Arch:          runtime.GOARCH,
		StartTime:     time.Now().UTC(),
	}
}

// Cell is one (app × prefetcher) result of a sweep.
type Cell struct {
	App        string         `json:"app"`
	Prefetcher string         `json:"prefetcher"`
	Report     metrics.Report `json:"report"`
}

// Artifact is the complete JSON run artifact: a manifest plus whichever
// result shapes the producing tool has — a single report, sweep cells,
// headline scalars, or any combination.
type Artifact struct {
	Manifest Manifest           `json:"manifest"`
	Report   *metrics.Report    `json:"report,omitempty"`
	Summary  map[string]float64 `json:"summary,omitempty"`
	Cells    []Cell             `json:"cells,omitempty"`

	// Attribution is the event-level lifecycle attribution table of the
	// run (per sub-prefetcher × page bucket, plus the arbitration
	// suppression histogram), present when the run traced events
	// (schema v2; see docs/TRACING.md).
	Attribution *events.AttribSnapshot `json:"attribution,omitempty"`
}

// Validate checks the structural invariants every artifact must satisfy.
func (a Artifact) Validate() error {
	if a.Manifest.SchemaVersion < 1 || a.Manifest.SchemaVersion > SchemaVersion {
		return fmt.Errorf("obs: schema version %d, want 1..%d",
			a.Manifest.SchemaVersion, SchemaVersion)
	}
	if a.Manifest.Tool == "" {
		return errors.New("obs: manifest missing tool")
	}
	if a.Manifest.GoVersion == "" {
		return errors.New("obs: manifest missing go_version")
	}
	for _, c := range a.Cells {
		if c.App == "" || c.Prefetcher == "" {
			return fmt.Errorf("obs: cell missing app/prefetcher: %+v", c)
		}
	}
	return nil
}

// Encode writes the artifact as indented JSON.
func Encode(w io.Writer, a Artifact) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("obs: encode: %w", err)
	}
	return nil
}

// Decode reads one artifact and validates it.
func Decode(r io.Reader) (Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return Artifact{}, fmt.Errorf("obs: decode: %w", err)
	}
	if err := a.Validate(); err != nil {
		return Artifact{}, err
	}
	return a, nil
}

// WriteFile writes the artifact to path, creating parent directories as
// needed.
func WriteFile(path string, a Artifact) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := Encode(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads and validates the artifact at path.
func ReadFile(path string) (Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return Artifact{}, fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// GitDescribe returns `git describe --always --dirty` for the working
// directory, or "" when git or the repository is unavailable. Best-effort
// provenance only — artifacts stay valid without it.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
