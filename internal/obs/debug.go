package obs

// This file implements the live introspection endpoint behind the CLIs'
// -debug-addr flag: a small HTTP server exposing run progress, the live
// attribution snapshot, expvar-style counters and the net/http/pprof
// profiling handlers while a (possibly hours-long) streamed run is in
// flight. Everything served here reads atomics or takes point-in-time
// snapshots, so the simulation hot path is never blocked by a request.
//
// The server deliberately avoids the expvar and pprof packages' global
// DefaultServeMux side effects: counters live in a private expvar.Map and
// the pprof handlers are registered explicitly on a private mux, so tests
// (and processes embedding several servers) never hit duplicate-registration
// panics.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/events"
	"repro/internal/telemetry"
)

// DebugConfig wires a DebugServer to a run's live state. Any source may
// be nil: the corresponding endpoints then report "not enabled".
type DebugConfig struct {
	// Counters is the run's live progress state (records, req/s, ETA).
	Counters *events.RunCounters
	// Recorder is the run's event recorder; its attribution snapshot is
	// safe to take mid-run.
	Recorder *events.Recorder
	// Telemetry is the run's live metrics registry, served in Prometheus
	// text exposition format at /metrics. Scrape-safe mid-run.
	Telemetry *telemetry.Registry

	// Labels echoed on the index page and in /progress.
	Tool       string
	Workload   string
	Prefetcher string
}

// DebugServer is a live introspection HTTP server. Start with
// StartDebugServer, stop with Close; both CLIs close it on run end,
// cancellation and failure alike.
type DebugServer struct {
	cfg DebugConfig
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (e.g. "localhost:6060"; an empty port
// picks a free one) and serves the introspection endpoints in a background
// goroutine until Close.
func StartDebugServer(addr string, cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	d := &DebugServer{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", d.handleIndex)
	mux.HandleFunc("/progress", d.handleProgress)
	mux.HandleFunc("/attrib", d.handleAttrib)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.Handle("/debug/vars", d.varsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// Addr returns the listen address actually bound (useful with port 0).
func (d *DebugServer) Addr() string {
	return d.ln.Addr().String()
}

// Close shuts the server down immediately, closing the listener and any
// open connections. Safe to call more than once.
func (d *DebugServer) Close() error {
	return d.srv.Close()
}

// handleIndex serves a minimal plain-text directory of the endpoints.
func (d *DebugServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%s %s/%s — live run introspection\n\n", d.cfg.Tool, d.cfg.Workload, d.cfg.Prefetcher)
	fmt.Fprintln(w, "/progress      run progress (records, req/s, ETA) as JSON")
	fmt.Fprintln(w, "/attrib        live prefetch-lifecycle attribution snapshot as JSON")
	fmt.Fprintln(w, "/metrics       live metrics in Prometheus text exposition format")
	fmt.Fprintln(w, "/debug/vars    expvar counters as JSON")
	fmt.Fprintln(w, "/debug/pprof/  net/http/pprof profiling handlers")
}

// handleProgress serves the live progress snapshot.
func (d *DebugServer) handleProgress(w http.ResponseWriter, _ *http.Request) {
	if d.cfg.Counters == nil {
		http.Error(w, "progress counters not enabled for this run", http.StatusNotFound)
		return
	}
	writeJSON(w, struct {
		Tool       string `json:"tool,omitempty"`
		Workload   string `json:"workload,omitempty"`
		Prefetcher string `json:"prefetcher,omitempty"`
		events.Progress
	}{d.cfg.Tool, d.cfg.Workload, d.cfg.Prefetcher, d.cfg.Counters.Progress()})
}

// handleAttrib serves a point-in-time attribution snapshot.
func (d *DebugServer) handleAttrib(w http.ResponseWriter, _ *http.Request) {
	if d.cfg.Recorder == nil {
		http.Error(w, "event tracing not enabled for this run", http.StatusNotFound)
		return
	}
	writeJSON(w, d.cfg.Recorder.Attrib())
}

// handleMetrics serves the run's registry in the Prometheus text
// exposition format, appending run-progress families from the live
// counters when available. Every read is an atomic snapshot, so scraping
// mid-run never blocks the simulation.
func (d *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if d.cfg.Telemetry == nil && d.cfg.Counters == nil {
		http.Error(w, "telemetry not enabled for this run", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.WritePrometheus(w, d.cfg.Telemetry); err != nil {
		return // client went away; nothing useful to do
	}
	if c := d.cfg.Counters; c != nil {
		p := c.Progress()
		fmt.Fprintf(w, "# HELP planaria_run_records_total Trace records processed so far.\n")
		fmt.Fprintf(w, "# TYPE planaria_run_records_total counter\n")
		fmt.Fprintf(w, "planaria_run_records_total %d\n", p.Records)
		fmt.Fprintf(w, "# HELP planaria_run_req_per_s Live processing rate in records per second.\n")
		fmt.Fprintf(w, "# TYPE planaria_run_req_per_s gauge\n")
		fmt.Fprintf(w, "planaria_run_req_per_s %g\n", p.ReqPerSec)
	}
}

// varsHandler builds the /debug/vars handler over a private expvar.Map (no
// global expvar registration, so repeated server starts in one process —
// tests, the experiments sweep — cannot panic on duplicate names).
func (d *DebugServer) varsHandler() http.Handler {
	m := new(expvar.Map).Init()
	if c := d.cfg.Counters; c != nil {
		m.Set("records", expvar.Func(func() any { return c.Records() }))
		m.Set("req_per_s", expvar.Func(func() any { return c.Progress().ReqPerSec }))
	}
	if r := d.cfg.Recorder; r != nil {
		m.Set("dropped_events", expvar.Func(func() any { return r.Dropped() }))
		m.Set("issued_by_origin", expvar.Func(func() any { return r.Attrib().IssuedByOrigin() }))
		m.Set("useful_by_origin", expvar.Func(func() any { return r.Attrib().UsefulByOrigin() }))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{")
		first := true
		m.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",")
			}
			first = false
			fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value)
		})
		fmt.Fprintf(w, "\n}\n")
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort response write
}
