// Package obs is the observability layer of the Planaria reproduction: it
// turns simulation results into machine-readable, diff-stable run artifacts
// and hosts the profiling hooks shared by the command-line tools.
//
// An artifact is one JSON document with three parts:
//
//   - a Manifest recording how the run was produced (tool, workload,
//     prefetcher, trace length, warmup fraction, sampling cadence, seed,
//     git describe output, Go version, platform and wall time), so any
//     number in the artifact can be traced back to a reproducible
//     invocation;
//   - an optional metrics.Report (with its windowed TimeSeries when
//     sampling was enabled) for single-run tools, or a list of Cells —
//     one (app × prefetcher) report each — for sweeps;
//   - an optional flat Summary of headline scalars for experiments whose
//     output is not a report (e.g. the Figure 4 overlap rate).
//
// Artifacts are written with sorted keys and a fixed indentation by
// encoding/json, and cells are emitted in sorted (app, prefetcher) order by
// the callers, so artifacts produced from identical runs are byte-identical
// — they can be committed, diffed and used as benchmark baselines
// (BENCH_*.json). The schema is versioned by Manifest.SchemaVersion and
// documented in docs/OBSERVABILITY.md.
//
// The profiling hooks (StartCPUProfile, WriteHeapProfile) are thin wrappers
// over runtime/pprof used by cmd/planaria-sim and cmd/experiments behind
// their -cpuprofile/-memprofile flags.
package obs
