package obs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

var errTest = errors.New("sim: injected stream failure at record 4242")

func sampleArtifact() Artifact {
	man := NewManifest("planaria-sim")
	man.Workload, man.Prefetcher = "CFM", "planaria"
	man.TraceLen, man.Requests = 800_000, 800_000
	man.SampleEvery = 50_000
	man.Seed = 101
	man.Repeat = 2
	man.ConfigHash = "a1b2c3d4e5f60718"
	man.WallTimeSec = 1.25
	rep := metrics.Report{
		Workload:    "CFM",
		Prefetcher:  "planaria",
		DemandReads: 640_000,
		AMAT:        150.25,
		Series: &metrics.TimeSeries{
			EveryRequests: 50_000,
			Samples:       []metrics.Sample{{EndCycle: 100, Requests: 50_000}},
		},
	}
	return Artifact{
		Manifest: man,
		Report:   &rep,
		Summary:  map[string]float64{"hit_rate": 0.82},
	}
}

func TestManifestEnvironmentFields(t *testing.T) {
	man := NewManifest("experiments")
	if man.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d", man.SchemaVersion)
	}
	if man.GoVersion == "" || man.OS == "" || man.Arch == "" {
		t.Fatalf("environment fields missing: %+v", man)
	}
	if man.StartTime.IsZero() {
		t.Fatal("start time not set")
	}
}

// TestRecordFailure: a degraded run's manifest carries the error text and
// the truncation metadata of the partial report; a nil error leaves the
// manifest untouched, and the failure fields survive a JSON round trip.
func TestRecordFailure(t *testing.T) {
	man := NewManifest("planaria-sim")
	man.RecordFailure(nil, nil)
	if man.Failure != "" || man.Truncated || man.FailedAt != 0 {
		t.Fatalf("nil error mutated the manifest: %+v", man)
	}

	rep := metrics.Report{Truncated: true, FailedAt: 4242}
	man.RecordFailure(errTest, &rep)
	if man.Failure != errTest.Error() {
		t.Fatalf("Failure = %q", man.Failure)
	}
	if !man.Truncated || man.FailedAt != 4242 {
		t.Fatalf("truncation metadata not copied: %+v", man)
	}

	art := Artifact{Manifest: man, Report: &rep}
	var buf bytes.Buffer
	if err := Encode(&buf, art); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); !strings.Contains(s, `"failure"`) || !strings.Contains(s, `"failed_at": 4242`) {
		t.Fatalf("failure fields missing from JSON:\n%s", s)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(art, back) {
		t.Fatal("failure round trip changed the artifact")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	art := sampleArtifact()
	var buf bytes.Buffer
	if err := Encode(&buf, art); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(art, back) {
		t.Fatalf("round trip changed the artifact:\n before %+v\n after  %+v", art, back)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	// Nested path exercises directory creation.
	path := filepath.Join(dir, "artifacts", "CFM_planaria.json")
	art := sampleArtifact()
	if err := WriteFile(path, art); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(art, back) {
		t.Fatal("file round trip changed the artifact")
	}
	// The on-disk form must use the documented snake_case schema.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"schema_version"`, `"manifest"`, `"amat_cycles"`, `"every_requests"`, `"repeat"`, `"config_hash"`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("artifact JSON missing key %s", key)
		}
	}
}

// TestSchemaV3Provenance: the v3 repeat/seed/config-hash provenance fields
// survive a round trip, and repeat 0 with no hash (a pre-v3 producer shape)
// stays omitted from the JSON — older artifacts remain byte-stable.
func TestSchemaV3Provenance(t *testing.T) {
	art := sampleArtifact()
	art.Manifest.Repeat = 4
	art.Manifest.Seed = -7
	art.Manifest.ConfigHash = "deadbeef00112233"
	var buf bytes.Buffer
	if err := Encode(&buf, art); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Manifest.Repeat != 4 || back.Manifest.Seed != -7 || back.Manifest.ConfigHash != "deadbeef00112233" {
		t.Fatalf("v3 provenance lost in round trip: %+v", back.Manifest)
	}

	plain := sampleArtifact()
	plain.Manifest.Repeat = 0
	plain.Manifest.ConfigHash = ""
	buf.Reset()
	if err := Encode(&buf, plain); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, `"repeat"`) || strings.Contains(s, `"config_hash"`) {
		t.Fatalf("zero-valued v3 fields not omitted:\n%s", s)
	}
}

func TestValidateRejectsBadArtifacts(t *testing.T) {
	good := sampleArtifact()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}

	bad := good
	bad.Manifest.SchemaVersion = 99
	if err := bad.Validate(); err == nil {
		t.Fatal("wrong schema version accepted")
	}

	bad = good
	bad.Manifest.Tool = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("missing tool accepted")
	}

	bad = good
	bad.Cells = []Cell{{App: "CFM"}} // no prefetcher
	if err := bad.Validate(); err == nil {
		t.Fatal("incomplete cell accepted")
	}

	// Decode must also reject garbage.
	if _, err := Decode(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	art := sampleArtifact()
	var a, b bytes.Buffer
	if err := Encode(&a, art); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, art); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same artifact encoded differently twice")
	}
}

func TestProfileHooks(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}

	mem := filepath.Join(dir, "mem.out")
	if err := WriteHeapProfile(mem); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(mem); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}
}
