package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/addr"
	"repro/internal/events"
)

// getBody fetches one endpoint from the server, asserting the status code.
func getBody(t *testing.T, d *DebugServer, path string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr(), path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDebugServerEndpoints(t *testing.T) {
	counters := &events.RunCounters{}
	counters.Start()
	counters.SetTotal(1000)
	counters.Add(250)
	rec := events.NewRecorder(addr.Channels, 0)
	b := addr.PageNum(7).Block(0)
	rec.Channel(0).Emit(events.Event{Kind: events.KindIssue, Block: b, Origin: events.OriginSLP})
	rec.Channel(0).Emit(events.Event{Kind: events.KindFill, Block: b, Origin: events.OriginSLP})
	rec.Channel(0).Emit(events.Event{Kind: events.KindUsed, Block: b, Origin: events.OriginSLP})

	d, err := StartDebugServer("127.0.0.1:0", DebugConfig{
		Counters: counters, Recorder: rec,
		Tool: "test", Workload: "CFM", Prefetcher: "planaria",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	index := getBody(t, d, "/", http.StatusOK)
	for _, want := range []string{"/progress", "/attrib", "/debug/vars", "/debug/pprof/"} {
		if !strings.Contains(index, want) {
			t.Errorf("index missing %s", want)
		}
	}

	var prog struct {
		Tool string `json:"tool"`
		events.Progress
	}
	if err := json.Unmarshal([]byte(getBody(t, d, "/progress", http.StatusOK)), &prog); err != nil {
		t.Fatal(err)
	}
	if prog.Tool != "test" || prog.Records != 250 || prog.Total != 1000 || prog.Fraction != 0.25 {
		t.Fatalf("progress %+v", prog)
	}

	var snap events.AttribSnapshot
	if err := json.Unmarshal([]byte(getBody(t, d, "/attrib", http.StatusOK)), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Origins) != 1 || snap.Origins[0].Origin != "slp" || snap.Origins[0].Used != 1 {
		t.Fatalf("attrib snapshot %+v", snap)
	}

	var vars map[string]any
	if err := json.Unmarshal([]byte(getBody(t, d, "/debug/vars", http.StatusOK)), &vars); err != nil {
		t.Fatal(err)
	}
	if vars["records"] != float64(250) {
		t.Fatalf("vars records = %v", vars["records"])
	}
	if _, ok := vars["issued_by_origin"].(map[string]any); !ok {
		t.Fatalf("vars issued_by_origin = %v", vars["issued_by_origin"])
	}

	if body := getBody(t, d, "/debug/pprof/", http.StatusOK); !strings.Contains(body, "goroutine") {
		t.Error("pprof index not served")
	}

	getBody(t, d, "/nonexistent", http.StatusNotFound)
}

func TestDebugServerNilSources(t *testing.T) {
	d, err := StartDebugServer("127.0.0.1:0", DebugConfig{Tool: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	getBody(t, d, "/progress", http.StatusNotFound)
	getBody(t, d, "/attrib", http.StatusNotFound)
	// /debug/vars still serves, just with no counters registered.
	if body := getBody(t, d, "/debug/vars", http.StatusOK); !strings.HasPrefix(body, "{") {
		t.Fatalf("vars body %q", body)
	}
}

// TestDebugServerLiveRun exercises the real concurrency pattern under -race:
// channel workers emitting events and advancing counters while HTTP clients
// snapshot attribution and progress mid-run.
func TestDebugServerLiveRun(t *testing.T) {
	counters := &events.RunCounters{}
	counters.Start()
	counters.SetTotal(int64(addr.Channels) * 5_000)
	rec := events.NewRecorder(addr.Channels, 64)
	d, err := StartDebugServer("127.0.0.1:0", DebugConfig{Counters: counters, Recorder: rec, Tool: "live"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var producers sync.WaitGroup
	for ch := 0; ch < addr.Channels; ch++ {
		producers.Add(1)
		go func(ch int) { // one producer per channel, as the engine runs it
			defer producers.Done()
			sink := rec.Channel(ch)
			b := addr.PageNum(ch * 64).Block(0)
			for i := 0; i < 5_000; i++ {
				sink.Emit(events.Event{Kind: events.KindIssue, Cycle: uint64(i), Block: b, Origin: events.OriginTLP})
				if i%100 == 99 {
					counters.Add(100)
				}
			}
			counters.Add(int64(5_000 % 100))
		}(ch)
	}
	readErr := make(chan error, 1)
	stop := make(chan struct{})
	polled := make(chan struct{})
	go func() { // a client polling while the producers run
		defer close(polled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/progress", "/attrib", "/debug/vars"} {
				resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr(), path))
				if err != nil {
					select {
					case readErr <- fmt.Errorf("GET %s: %w", path, err):
					default:
					}
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
	}()
	producers.Wait()
	close(stop)
	<-polled
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	if got := counters.Records(); got != int64(addr.Channels)*5_000 {
		t.Fatalf("records = %d", got)
	}
	snap := rec.Attrib()
	var issued uint64
	for _, o := range snap.Origins {
		issued += o.Issued
	}
	if issued != uint64(addr.Channels)*5_000 {
		t.Fatalf("attributed %d issues, want %d", issued, uint64(addr.Channels)*5_000)
	}
	if snap.DroppedEvents == 0 {
		t.Fatal("64-slot rings under 5k events dropped nothing")
	}
}

func TestDebugServerCloseIdempotent(t *testing.T) {
	d, err := StartDebugServer("127.0.0.1:0", DebugConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d.Close() // second close must not panic
	if _, err := http.Get(fmt.Sprintf("http://%s/", d.Addr())); err == nil {
		t.Fatal("server still serving after Close")
	}
}
